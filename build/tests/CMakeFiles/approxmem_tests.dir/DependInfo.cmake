
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/approx_array_test.cc" "tests/CMakeFiles/approxmem_tests.dir/approx_array_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/approx_array_test.cc.o.d"
  "/root/repo/tests/approx_refine_test.cc" "tests/CMakeFiles/approxmem_tests.dir/approx_refine_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/approx_refine_test.cc.o.d"
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/approxmem_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/calibration_test.cc" "tests/CMakeFiles/approxmem_tests.dir/calibration_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/calibration_test.cc.o.d"
  "/root/repo/tests/cell_test.cc" "tests/CMakeFiles/approxmem_tests.dir/cell_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/cell_test.cc.o.d"
  "/root/repo/tests/check_test.cc" "tests/CMakeFiles/approxmem_tests.dir/check_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/check_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/approxmem_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/dbops_test.cc" "tests/CMakeFiles/approxmem_tests.dir/dbops_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/dbops_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/approxmem_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/extsort_test.cc" "tests/CMakeFiles/approxmem_tests.dir/extsort_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/extsort_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/approxmem_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/approxmem_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/lis_test.cc" "tests/CMakeFiles/approxmem_tests.dir/lis_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/lis_test.cc.o.d"
  "/root/repo/tests/measures_test.cc" "tests/CMakeFiles/approxmem_tests.dir/measures_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/measures_test.cc.o.d"
  "/root/repo/tests/memory_system_test.cc" "tests/CMakeFiles/approxmem_tests.dir/memory_system_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/memory_system_test.cc.o.d"
  "/root/repo/tests/mlc_config_test.cc" "tests/CMakeFiles/approxmem_tests.dir/mlc_config_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/mlc_config_test.cc.o.d"
  "/root/repo/tests/pcm_test.cc" "tests/CMakeFiles/approxmem_tests.dir/pcm_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/pcm_test.cc.o.d"
  "/root/repo/tests/radix_common_test.cc" "tests/CMakeFiles/approxmem_tests.dir/radix_common_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/radix_common_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/approxmem_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/refine_listing_test.cc" "tests/CMakeFiles/approxmem_tests.dir/refine_listing_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/refine_listing_test.cc.o.d"
  "/root/repo/tests/sort_property_test.cc" "tests/CMakeFiles/approxmem_tests.dir/sort_property_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/sort_property_test.cc.o.d"
  "/root/repo/tests/sort_test.cc" "tests/CMakeFiles/approxmem_tests.dir/sort_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/sort_test.cc.o.d"
  "/root/repo/tests/spintronic_test.cc" "tests/CMakeFiles/approxmem_tests.dir/spintronic_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/spintronic_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/approxmem_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/approxmem_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/table_printer_test.cc" "tests/CMakeFiles/approxmem_tests.dir/table_printer_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/table_printer_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/approxmem_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/word_codec_test.cc" "tests/CMakeFiles/approxmem_tests.dir/word_codec_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/word_codec_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/approxmem_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/write_combining_test.cc" "tests/CMakeFiles/approxmem_tests.dir/write_combining_test.cc.o" "gcc" "tests/CMakeFiles/approxmem_tests.dir/write_combining_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/approxmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
