# Empty dependencies file for approxmem_tests.
# This may be replaced when dependencies are built.
