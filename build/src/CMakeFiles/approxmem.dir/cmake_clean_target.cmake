file(REMOVE_RECURSE
  "libapproxmem.a"
)
