# Empty dependencies file for approxmem.
# This may be replaced when dependencies are built.
