
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/approx/approx_array.cc" "src/CMakeFiles/approxmem.dir/approx/approx_array.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/approx/approx_array.cc.o.d"
  "/root/repo/src/approx/approx_memory.cc" "src/CMakeFiles/approxmem.dir/approx/approx_memory.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/approx/approx_memory.cc.o.d"
  "/root/repo/src/approx/memory_stats.cc" "src/CMakeFiles/approxmem.dir/approx/memory_stats.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/approx/memory_stats.cc.o.d"
  "/root/repo/src/approx/spintronic.cc" "src/CMakeFiles/approxmem.dir/approx/spintronic.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/approx/spintronic.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/approxmem.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/common/flags.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/approxmem.dir/common/random.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/approxmem.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/approxmem.dir/common/status.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/common/status.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/approxmem.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/common/table_printer.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/approxmem.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/core/engine.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/CMakeFiles/approxmem.dir/core/workload.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/core/workload.cc.o.d"
  "/root/repo/src/dbops/aggregate.cc" "src/CMakeFiles/approxmem.dir/dbops/aggregate.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/dbops/aggregate.cc.o.d"
  "/root/repo/src/dbops/join.cc" "src/CMakeFiles/approxmem.dir/dbops/join.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/dbops/join.cc.o.d"
  "/root/repo/src/extsort/disk_model.cc" "src/CMakeFiles/approxmem.dir/extsort/disk_model.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/extsort/disk_model.cc.o.d"
  "/root/repo/src/extsort/external_sort.cc" "src/CMakeFiles/approxmem.dir/extsort/external_sort.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/extsort/external_sort.cc.o.d"
  "/root/repo/src/extsort/loser_tree.cc" "src/CMakeFiles/approxmem.dir/extsort/loser_tree.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/extsort/loser_tree.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/approxmem.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/approxmem.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/mem/pcm.cc" "src/CMakeFiles/approxmem.dir/mem/pcm.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/mem/pcm.cc.o.d"
  "/root/repo/src/mem/trace.cc" "src/CMakeFiles/approxmem.dir/mem/trace.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/mem/trace.cc.o.d"
  "/root/repo/src/mlc/calibration.cc" "src/CMakeFiles/approxmem.dir/mlc/calibration.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/mlc/calibration.cc.o.d"
  "/root/repo/src/mlc/cell.cc" "src/CMakeFiles/approxmem.dir/mlc/cell.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/mlc/cell.cc.o.d"
  "/root/repo/src/mlc/mlc_config.cc" "src/CMakeFiles/approxmem.dir/mlc/mlc_config.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/mlc/mlc_config.cc.o.d"
  "/root/repo/src/mlc/word_codec.cc" "src/CMakeFiles/approxmem.dir/mlc/word_codec.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/mlc/word_codec.cc.o.d"
  "/root/repo/src/refine/approx_refine.cc" "src/CMakeFiles/approxmem.dir/refine/approx_refine.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/refine/approx_refine.cc.o.d"
  "/root/repo/src/refine/cost_model.cc" "src/CMakeFiles/approxmem.dir/refine/cost_model.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/refine/cost_model.cc.o.d"
  "/root/repo/src/sort/mergesort.cc" "src/CMakeFiles/approxmem.dir/sort/mergesort.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sort/mergesort.cc.o.d"
  "/root/repo/src/sort/quicksort.cc" "src/CMakeFiles/approxmem.dir/sort/quicksort.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sort/quicksort.cc.o.d"
  "/root/repo/src/sort/radix_common.cc" "src/CMakeFiles/approxmem.dir/sort/radix_common.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sort/radix_common.cc.o.d"
  "/root/repo/src/sort/radix_histogram.cc" "src/CMakeFiles/approxmem.dir/sort/radix_histogram.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sort/radix_histogram.cc.o.d"
  "/root/repo/src/sort/radix_lsd.cc" "src/CMakeFiles/approxmem.dir/sort/radix_lsd.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sort/radix_lsd.cc.o.d"
  "/root/repo/src/sort/radix_msd.cc" "src/CMakeFiles/approxmem.dir/sort/radix_msd.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sort/radix_msd.cc.o.d"
  "/root/repo/src/sort/sort_kind.cc" "src/CMakeFiles/approxmem.dir/sort/sort_kind.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sort/sort_kind.cc.o.d"
  "/root/repo/src/sort/write_combining.cc" "src/CMakeFiles/approxmem.dir/sort/write_combining.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sort/write_combining.cc.o.d"
  "/root/repo/src/sortedness/inversions.cc" "src/CMakeFiles/approxmem.dir/sortedness/inversions.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sortedness/inversions.cc.o.d"
  "/root/repo/src/sortedness/lis.cc" "src/CMakeFiles/approxmem.dir/sortedness/lis.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sortedness/lis.cc.o.d"
  "/root/repo/src/sortedness/measures.cc" "src/CMakeFiles/approxmem.dir/sortedness/measures.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sortedness/measures.cc.o.d"
  "/root/repo/src/sortedness/shape.cc" "src/CMakeFiles/approxmem.dir/sortedness/shape.cc.o" "gcc" "src/CMakeFiles/approxmem.dir/sortedness/shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
