file(REMOVE_RECURSE
  "CMakeFiles/approxmem_cli.dir/approxmem_cli.cc.o"
  "CMakeFiles/approxmem_cli.dir/approxmem_cli.cc.o.d"
  "approxmem_cli"
  "approxmem_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxmem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
