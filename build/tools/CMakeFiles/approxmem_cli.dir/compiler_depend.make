# Empty compiler generated dependencies file for approxmem_cli.
# This may be replaced when dependencies are built.
