# Empty compiler generated dependencies file for db_orderby.
# This may be replaced when dependencies are built.
