file(REMOVE_RECURSE
  "CMakeFiles/db_orderby.dir/db_orderby.cpp.o"
  "CMakeFiles/db_orderby.dir/db_orderby.cpp.o.d"
  "db_orderby"
  "db_orderby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_orderby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
