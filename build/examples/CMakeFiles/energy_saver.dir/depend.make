# Empty dependencies file for energy_saver.
# This may be replaced when dependencies are built.
