file(REMOVE_RECURSE
  "CMakeFiles/energy_saver.dir/energy_saver.cpp.o"
  "CMakeFiles/energy_saver.dir/energy_saver.cpp.o.d"
  "energy_saver"
  "energy_saver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_saver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
