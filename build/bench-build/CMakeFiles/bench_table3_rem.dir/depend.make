# Empty dependencies file for bench_table3_rem.
# This may be replaced when dependencies are built.
