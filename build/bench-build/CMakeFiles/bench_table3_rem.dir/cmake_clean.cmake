file(REMOVE_RECURSE
  "../bench/bench_table3_rem"
  "../bench/bench_table3_rem.pdb"
  "CMakeFiles/bench_table3_rem.dir/bench_table3_rem.cc.o"
  "CMakeFiles/bench_table3_rem.dir/bench_table3_rem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
