file(REMOVE_RECURSE
  "../bench/bench_fig13_spintronic_wr"
  "../bench/bench_fig13_spintronic_wr.pdb"
  "CMakeFiles/bench_fig13_spintronic_wr.dir/bench_fig13_spintronic_wr.cc.o"
  "CMakeFiles/bench_fig13_spintronic_wr.dir/bench_fig13_spintronic_wr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_spintronic_wr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
