# Empty dependencies file for bench_fig13_spintronic_wr.
# This may be replaced when dependencies are built.
