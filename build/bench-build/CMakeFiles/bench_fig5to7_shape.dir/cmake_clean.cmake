file(REMOVE_RECURSE
  "../bench/bench_fig5to7_shape"
  "../bench/bench_fig5to7_shape.pdb"
  "CMakeFiles/bench_fig5to7_shape.dir/bench_fig5to7_shape.cc.o"
  "CMakeFiles/bench_fig5to7_shape.dir/bench_fig5to7_shape.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5to7_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
