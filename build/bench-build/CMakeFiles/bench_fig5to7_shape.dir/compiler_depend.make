# Empty compiler generated dependencies file for bench_fig5to7_shape.
# This may be replaced when dependencies are built.
