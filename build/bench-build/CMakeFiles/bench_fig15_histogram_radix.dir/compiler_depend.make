# Empty compiler generated dependencies file for bench_fig15_histogram_radix.
# This may be replaced when dependencies are built.
