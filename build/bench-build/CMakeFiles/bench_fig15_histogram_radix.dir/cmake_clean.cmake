file(REMOVE_RECURSE
  "../bench/bench_fig15_histogram_radix"
  "../bench/bench_fig15_histogram_radix.pdb"
  "CMakeFiles/bench_fig15_histogram_radix.dir/bench_fig15_histogram_radix.cc.o"
  "CMakeFiles/bench_fig15_histogram_radix.dir/bench_fig15_histogram_radix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_histogram_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
