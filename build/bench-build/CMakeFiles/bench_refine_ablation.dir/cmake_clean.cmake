file(REMOVE_RECURSE
  "../bench/bench_refine_ablation"
  "../bench/bench_refine_ablation.pdb"
  "CMakeFiles/bench_refine_ablation.dir/bench_refine_ablation.cc.o"
  "CMakeFiles/bench_refine_ablation.dir/bench_refine_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refine_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
