# Empty dependencies file for bench_refine_ablation.
# This may be replaced when dependencies are built.
