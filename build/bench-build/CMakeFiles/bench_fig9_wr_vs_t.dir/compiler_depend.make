# Empty compiler generated dependencies file for bench_fig9_wr_vs_t.
# This may be replaced when dependencies are built.
