file(REMOVE_RECURSE
  "../bench/bench_fig9_wr_vs_t"
  "../bench/bench_fig9_wr_vs_t.pdb"
  "CMakeFiles/bench_fig9_wr_vs_t.dir/bench_fig9_wr_vs_t.cc.o"
  "CMakeFiles/bench_fig9_wr_vs_t.dir/bench_fig9_wr_vs_t.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_wr_vs_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
