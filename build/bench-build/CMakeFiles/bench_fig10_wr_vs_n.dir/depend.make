# Empty dependencies file for bench_fig10_wr_vs_n.
# This may be replaced when dependencies are built.
