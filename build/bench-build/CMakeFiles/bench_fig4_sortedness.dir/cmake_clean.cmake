file(REMOVE_RECURSE
  "../bench/bench_fig4_sortedness"
  "../bench/bench_fig4_sortedness.pdb"
  "CMakeFiles/bench_fig4_sortedness.dir/bench_fig4_sortedness.cc.o"
  "CMakeFiles/bench_fig4_sortedness.dir/bench_fig4_sortedness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sortedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
