# Empty dependencies file for bench_fig4_sortedness.
# This may be replaced when dependencies are built.
