file(REMOVE_RECURSE
  "../bench/bench_memory_system"
  "../bench/bench_memory_system.pdb"
  "CMakeFiles/bench_memory_system.dir/bench_memory_system.cc.o"
  "CMakeFiles/bench_memory_system.dir/bench_memory_system.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
