# Empty compiler generated dependencies file for bench_memory_system.
# This may be replaced when dependencies are built.
