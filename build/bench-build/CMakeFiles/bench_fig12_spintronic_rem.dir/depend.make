# Empty dependencies file for bench_fig12_spintronic_rem.
# This may be replaced when dependencies are built.
