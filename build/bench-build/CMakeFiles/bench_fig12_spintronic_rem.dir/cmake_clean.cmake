file(REMOVE_RECURSE
  "../bench/bench_fig12_spintronic_rem"
  "../bench/bench_fig12_spintronic_rem.pdb"
  "CMakeFiles/bench_fig12_spintronic_rem.dir/bench_fig12_spintronic_rem.cc.o"
  "CMakeFiles/bench_fig12_spintronic_rem.dir/bench_fig12_spintronic_rem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_spintronic_rem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
