file(REMOVE_RECURSE
  "../bench/bench_wear"
  "../bench/bench_wear.pdb"
  "CMakeFiles/bench_wear.dir/bench_wear.cc.o"
  "CMakeFiles/bench_wear.dir/bench_wear.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
