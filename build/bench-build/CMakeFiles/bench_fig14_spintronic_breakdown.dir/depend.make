# Empty dependencies file for bench_fig14_spintronic_breakdown.
# This may be replaced when dependencies are built.
