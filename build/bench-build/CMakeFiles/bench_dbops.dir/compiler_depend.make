# Empty compiler generated dependencies file for bench_dbops.
# This may be replaced when dependencies are built.
