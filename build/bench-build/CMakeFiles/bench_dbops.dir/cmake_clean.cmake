file(REMOVE_RECURSE
  "../bench/bench_dbops"
  "../bench/bench_dbops.pdb"
  "CMakeFiles/bench_dbops.dir/bench_dbops.cc.o"
  "CMakeFiles/bench_dbops.dir/bench_dbops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
