file(REMOVE_RECURSE
  "../bench/bench_extsort"
  "../bench/bench_extsort.pdb"
  "CMakeFiles/bench_extsort.dir/bench_extsort.cc.o"
  "CMakeFiles/bench_extsort.dir/bench_extsort.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
