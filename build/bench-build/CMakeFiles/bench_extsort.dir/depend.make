# Empty dependencies file for bench_extsort.
# This may be replaced when dependencies are built.
