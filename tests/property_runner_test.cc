// Tests for the property-based runner: deterministic generation,
// thread-count-independent digests, and greedy shrinking.
#include "testing/property_runner.h"

#include <memory>

#include <gtest/gtest.h>

#include "mlc/calibration.h"
#include "mlc/mlc_config.h"

namespace approxmem::testing {
namespace {

// A real oracle check with a per-run shared calibration cache (fixed
// cache seed, so two runs built the same way are comparable).
CaseCheck OracleCheck(std::shared_ptr<mlc::CalibrationCache> cache) {
  return [cache](const OracleCase& oracle_case) {
    OracleOptions options;
    options.calibration_trials = 3000;
    options.shared_calibration = cache;
    return RunDifferentialOracle(oracle_case, options);
  };
}

std::shared_ptr<mlc::CalibrationCache> NewCache() {
  return std::make_shared<mlc::CalibrationCache>(mlc::MlcConfig{}, 3000,
                                                 0xfeedULL);
}

TEST(property_runner, MakeRandomCaseIsPureInSeedAndIndex) {
  RunnerOptions options;
  options.seed = 77;
  for (uint64_t index = 0; index < 50; ++index) {
    const OracleCase a = MakeRandomCase(options, index);
    const OracleCase b = MakeRandomCase(options, index);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.paper_t, b.paper_t);
    EXPECT_EQ(a.algorithm.kind, b.algorithm.kind);
    EXPECT_EQ(a.algorithm.radix_bits, b.algorithm.radix_bits);
    EXPECT_EQ(a.shape, b.shape);
  }
  // Different indices draw different cases (not a constant generator).
  const OracleCase first = MakeRandomCase(options, 0);
  bool any_different = false;
  for (uint64_t index = 1; index < 20 && !any_different; ++index) {
    const OracleCase other = MakeRandomCase(options, index);
    any_different = other.n != first.n || other.seed != first.seed;
  }
  EXPECT_TRUE(any_different);
}

TEST(property_runner, TwoConsecutiveRunsGiveIdenticalDigests) {
  RunnerOptions options;
  options.seed = 5;
  options.max_n = 128;
  const RunnerResult first = RunRandom(options, 20, OracleCheck(NewCache()));
  const RunnerResult second = RunRandom(options, 20, OracleCheck(NewCache()));
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.cases_failed, second.cases_failed);
}

TEST(property_runner, SerialAndParallelExecutionsAgree) {
  RunnerOptions serial;
  serial.seed = 6;
  serial.max_n = 128;
  serial.threads = 1;
  RunnerOptions parallel = serial;
  parallel.threads = 0;  // Hardware concurrency.
  const RunnerResult a = RunRandom(serial, 24, OracleCheck(NewCache()));
  const RunnerResult b = RunRandom(parallel, 24, OracleCheck(NewCache()));
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.digest, b.digest);
}

TEST(property_runner, MatrixCoversEveryCombination) {
  RunnerOptions options;
  options.algorithms = {sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
                        sort::AlgorithmId{sort::SortKind::kLsdRadix, 3}};
  options.t_labels = {0, 55};
  options.shapes = {InputShape::kUniform, InputShape::kReverse,
                    InputShape::kDupHeavy};
  const std::vector<OracleCase> cases = MatrixCases(options, 64);
  EXPECT_EQ(cases.size(), 2u * 2u * 3u);
  for (const OracleCase& oracle_case : cases) {
    EXPECT_EQ(oracle_case.n, 64u);
  }
}

TEST(property_runner, DefaultPoolCoversAllSixKinds) {
  bool seen[6] = {false, false, false, false, false, false};
  for (const sort::AlgorithmId& algorithm : AllKindAlgorithms()) {
    seen[static_cast<int>(algorithm.kind)] = true;
  }
  for (int kind = 0; kind < 6; ++kind) {
    EXPECT_TRUE(seen[kind]) << "kind " << kind << " missing from pool";
  }
}

// Synthetic property: fails iff n >= 40. The shrinker must walk the case
// down to the smallest failing neighborhood without losing the failure.
TEST(property_runner, ShrinkerMinimizesFailingCase) {
  const CaseCheck check = [](const OracleCase& oracle_case) {
    OracleReport report;
    report.oracle_case = oracle_case;
    report.ok = oracle_case.n < 40;
    if (!report.ok) {
      report.failures.push_back(OracleFailure{"synthetic", "n >= 40"});
    }
    report.digest = oracle_case.n;
    return report;
  };

  OracleCase failing;
  failing.n = 500;
  failing.paper_t = 100;
  failing.shape = InputShape::kAdversarialPivot;
  const OracleReport minimized = ShrinkFailure(failing, check, 200);
  EXPECT_FALSE(minimized.ok);
  // Greedy halving/decrementing lands exactly on the threshold.
  EXPECT_EQ(minimized.oracle_case.n, 40u);
  // Orthogonal dimensions shrank toward their simplest values too.
  EXPECT_EQ(minimized.oracle_case.paper_t, 0);
  EXPECT_EQ(minimized.oracle_case.shape, InputShape::kUniform);
}

TEST(property_runner, RunnerReportsAndMinimizesRealFailures) {
  // Synthetic check again (engine-free), wired through RunCases to cover
  // the failure-collection and minimized-report plumbing.
  const CaseCheck check = [](const OracleCase& oracle_case) {
    OracleReport report;
    report.oracle_case = oracle_case;
    report.ok = oracle_case.n < 100;
    if (!report.ok) {
      report.failures.push_back(OracleFailure{"synthetic", "n >= 100"});
    }
    report.digest = oracle_case.n * 3;
    return report;
  };
  RunnerOptions options;
  options.threads = 1;
  std::vector<OracleCase> cases;
  for (size_t n : {10, 20, 400, 30}) {
    OracleCase oracle_case;
    oracle_case.n = n;
    cases.push_back(oracle_case);
  }
  const RunnerResult result = RunCases(options, cases, check);
  EXPECT_EQ(result.cases_run, 4u);
  EXPECT_EQ(result.cases_failed, 1u);
  ASSERT_TRUE(result.minimized.has_value());
  EXPECT_EQ(result.minimized->oracle_case.n, 100u);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace approxmem::testing
