#include "mem/memory_system.h"

#include <gtest/gtest.h>

namespace approxmem::mem {
namespace {

TEST(MemorySystemTest, FirstReadGoesToMemorySecondHitsL1) {
  MemorySystem system = MemorySystem::PaperDefault();
  const double cold = system.Read(0x1000);
  EXPECT_GE(cold, 50.0);  // At least the PCM read latency.
  const double warm = system.Read(0x1000);
  EXPECT_DOUBLE_EQ(warm, 1.0);  // L1 hit latency.
  const MemorySystemStats stats = system.Finish();
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.memory_reads, 1u);
  EXPECT_EQ(stats.l1_read_hits, 1u);
}

TEST(MemorySystemTest, WritesAreWriteThrough) {
  MemorySystem system = MemorySystem::PaperDefault();
  for (int i = 0; i < 100; ++i) system.Write(0x40 * i);
  const MemorySystemStats stats = system.Finish();
  EXPECT_EQ(stats.writes, 100u);
  // Every write reaches PCM: total service time is writes x 1us.
  EXPECT_DOUBLE_EQ(stats.total_write_latency_ns, 100 * 1000.0);
}

TEST(MemorySystemTest, ApproximateWriteLatencyPassesThrough) {
  MemorySystem system = MemorySystem::PaperDefault();
  system.Write(0, 660.0);  // Approximate bank write at p(t)=0.66.
  const MemorySystemStats stats = system.Finish();
  EXPECT_DOUBLE_EQ(stats.total_write_latency_ns, 660.0);
}

TEST(MemorySystemTest, ReplayCountsHitsAndMisses) {
  MemorySystem system = MemorySystem::PaperDefault();
  TraceBuffer trace;
  trace.AppendRead(0);
  trace.AppendRead(0);
  trace.AppendRead(64);
  trace.AppendWrite(0);
  const MemorySystemStats stats = system.Replay(trace);
  EXPECT_EQ(stats.reads, 3u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.memory_reads, 2u);
  EXPECT_EQ(stats.l1_read_hits, 1u);
  EXPECT_GT(stats.total_read_latency_ns, 0.0);
}

TEST(MemorySystemTest, SequentialScanMostlyHitsAfterFirstTouch) {
  MemorySystem system = MemorySystem::PaperDefault();
  // Two passes over a 64KB buffer (fits L2/L3, not L1).
  TraceBuffer trace;
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t addr = 0; addr < 64 * 1024; addr += 4) {
      trace.AppendRead(addr);
    }
  }
  const MemorySystemStats stats = system.Replay(trace);
  // 64KB / 64B = 1024 cold line misses; everything else hits some level.
  EXPECT_EQ(stats.memory_reads, 1024u);
  EXPECT_GT(stats.l1_read_hits, 15000u);  // 15/16 accesses hit the line.
}

TEST(MemorySystemTest, RowBufferAcceleratesSequentialScan) {
  auto run = [](double factor) {
    PcmConfig pcm;
    pcm.row_buffer_hit_factor = factor;
    MemorySystem system(CacheHierarchy::PaperDefault(), pcm);
    for (uint64_t addr = 0; addr < 256 * 1024; addr += 4) {
      system.Write(addr);
    }
    return system.Finish().completion_time_ns;
  };
  EXPECT_LT(run(0.5), 0.6 * run(1.0));
}

}  // namespace
}  // namespace approxmem::mem
