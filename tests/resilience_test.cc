// The resilient execution layer's contract:
//   * a fault-free run stops after one attempt and the monitor's canary
//     probes are the only overhead (<= 2% extra write cost);
//   * any approx-domain fault plan is absorbed by the refine guarantee
//     without a single retry;
//   * precise-domain faults climb the ladder — transient read flips are
//     cured by refine-only retries, persistent region faults by guard-band
//     escalation or the precise fallback — and the final output is exactly
//     sorted either way;
//   * with health monitoring on, a persistently bad region is quarantined
//     at allocation time so the ladder never has to climb at all;
//   * the cumulative ledger is exactly the sum of every attempt's marginal
//     cost plus the canary traffic (no cost is ever dropped, including an
//     approx stage that aborts mid-sort);
//   * for a fixed (seed, plan) the whole ladder replays bit-identically at
//     every thread count.
#include "core/resilience.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/workload.h"
#include "mlc/calibration.h"
#include "testing/differential_oracle.h"
#include "testing/fault_injection.h"

namespace approxmem::core {
namespace {

constexpr sort::AlgorithmId kLsd3{sort::SortKind::kLsdRadix, 3};
constexpr sort::AlgorithmId kQuick{sort::SortKind::kQuicksort, 0};

EngineOptions FastOptions(uint64_t seed = 31) {
  EngineOptions options;
  options.calibration_trials = 20000;
  options.seed = seed;
  return options;
}

std::vector<uint32_t> SortedCopy(std::vector<uint32_t> keys) {
  std::sort(keys.begin(), keys.end());
  return keys;
}

// A persistent precise-domain fault over the low address region: every
// precise write below `end` suffers an extra single-bit error with
// `probability`. The bump allocator starts at address 0, so the baseline
// and the first attempt's Key0/ID arrays land inside the region; later
// attempts (and the fallback) allocate past it.
testing::FaultPlan LowRegionPreciseFaults(uint64_t end, double probability) {
  testing::FaultPlan plan;
  plan.seed = 7;
  plan.rate_overrides.push_back(testing::ErrorRateOverride{
      testing::AddressRegion{0, end}, testing::FaultDomain::kPreciseOnly,
      probability});
  return plan;
}

TEST(ResilienceTest, NoFaultRunStopsAtOneAttempt) {
  EngineOptions options = FastOptions();
  options.health.enabled = true;
  ApproxSortEngine engine(options);
  const auto keys = MakeKeys(WorkloadKind::kUniform, 20000, 1);

  std::vector<uint32_t> out_keys;
  std::vector<uint32_t> out_ids;
  const auto report =
      SortResilient(engine, keys, kLsd3, 0.055, {}, &out_keys, &out_ids);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified);
  ASSERT_EQ(report->attempts.size(), 1u);
  EXPECT_EQ(report->final_policy, AttemptPolicy::kInitial);
  EXPECT_EQ(out_keys, SortedCopy(keys));
  EXPECT_EQ(out_ids.size(), keys.size());

  // Overhead is measured against the run's own single attempt: cumulative
  // minus attempt cost is exactly the canary probe traffic, and must stay
  // within the 2% acceptance budget.
  const double attempt_cost = report->refine.TotalWriteCost();
  ASSERT_GT(attempt_cost, 0.0);
  EXPECT_LE(report->cumulative.write_cost / attempt_cost - 1.0, 0.02);
  EXPECT_GT(report->canary_costs.word_writes, 0u);
  EXPECT_EQ(report->health.regions_quarantined, 0u);
  EXPECT_GT(report->write_reduction, 0.0);
}

TEST(ResilienceTest, MonitoringOffAddsNoCostAtAll) {
  // With monitoring off and no faults, the single attempt IS the whole
  // cumulative ledger: no canary traffic, no probes, nothing hidden. The
  // reported write reduction stays close to the plain engine path's (the
  // two runs consume different RNG substreams — the resilient path sorts
  // its baseline first — so the costs are statistically, not bitwise,
  // equal).
  const auto keys = MakeKeys(WorkloadKind::kUniform, 10000, 2);
  ApproxSortEngine plain(FastOptions(5));
  const auto outcome = plain.SortApproxRefine(keys, kLsd3, 0.055);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  ApproxSortEngine resilient(FastOptions(5));
  std::vector<uint32_t> res_keys;
  const auto report =
      SortResilient(resilient, keys, kLsd3, 0.055, {}, &res_keys, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->attempts.size(), 1u);
  EXPECT_EQ(res_keys, SortedCopy(keys));
  EXPECT_EQ(report->canary_costs.word_writes, 0u);
  EXPECT_EQ(report->canary_costs.word_reads, 0u);
  EXPECT_EQ(report->health.regions_probed, 0u);
  EXPECT_DOUBLE_EQ(report->cumulative.write_cost,
                   report->refine.TotalWriteCost());
  EXPECT_NEAR(report->write_reduction, outcome->write_reduction, 0.02);
}

TEST(ResilienceTest, ApproxDomainStormIsAbsorbedWithoutRetries) {
  // The paper's guarantee, restated through the ladder: any corruption of
  // the approximate domain — storms, stuck cells — costs Rem~, never a
  // retry.
  for (const uint64_t storm_seed : {11u, 12u, 13u}) {
    testing::FaultPlan plan = testing::FaultPlan::ApproxStorm(storm_seed);
    plan.stuck_at.push_back(testing::StuckAtFault{
        testing::AddressRegion::All(), testing::FaultDomain::kApproxOnly,
        /*mask=*/0x00010000u, /*value=*/0});
    testing::FaultInjector injector(plan);

    EngineOptions options = FastOptions(100 + storm_seed);
    options.fault_hook = &injector;
    ApproxSortEngine engine(options);
    const auto keys = MakeKeys(WorkloadKind::kUniform, 10000, storm_seed);

    std::vector<uint32_t> out_keys;
    const auto report =
        SortResilient(engine, keys, kLsd3, 0.055, {}, &out_keys, nullptr);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->verified) << "storm seed " << storm_seed;
    EXPECT_EQ(report->attempts.size(), 1u) << "storm seed " << storm_seed;
    EXPECT_EQ(out_keys, SortedCopy(keys)) << "storm seed " << storm_seed;
  }
}

TEST(ResilienceTest, TransientPreciseReadFaultsAreCuredByTheLadder) {
  // Precise-domain read flips over the low address region: the first
  // attempt's Key0/ID arrays live there, so its refine runs keep observing
  // flipped reads (re-sampled each replay). A guard-band escalation
  // re-runs the pipeline on fresh arrays past the region and verifies.
  testing::FaultPlan plan;
  plan.seed = 21;
  plan.read_flips.push_back(testing::TransientReadFault{
      testing::AddressRegion{0, 256 * 1024},
      testing::FaultDomain::kPreciseOnly, 2e-4});
  testing::FaultInjector injector(plan);

  EngineOptions options = FastOptions(77);
  options.fault_hook = &injector;
  ApproxSortEngine engine(options);
  const auto keys = MakeKeys(WorkloadKind::kUniform, 5000, 9);

  std::vector<uint32_t> out_keys;
  std::vector<uint32_t> out_ids;
  const auto report =
      SortResilient(engine, keys, kQuick, 0.055, {}, &out_keys, &out_ids);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified);
  EXPECT_GT(report->attempts.size(), 1u);
  EXPECT_FALSE(report->attempts.front().verified);
  EXPECT_NE(report->attempts.front().verification.failure,
            refine::VerifyFailureKind::kNone);
  EXPECT_EQ(out_keys, SortedCopy(keys));
  // Failed attempts stay in the ledger: cumulative cost exceeds the final
  // attempt's own cost.
  EXPECT_GT(report->cumulative.write_cost, report->refine.TotalWriteCost());
}

TEST(ResilienceTest, PersistentPreciseRegionFaultForcesPreciseFallback) {
  // Unreliable precise memory at the bottom of the address space,
  // escalations disabled: the initial attempt's Key0/ID arrays are
  // corrupted at write time, so refine retries (which re-read the same
  // stored values) cannot cure it — only the precise fallback, whose
  // fresh allocations land past the bad region, can.
  testing::FaultPlan plan = LowRegionPreciseFaults(96 * 1024, 0.5);
  testing::FaultInjector injector(plan);

  EngineOptions options = FastOptions(41);
  options.fault_hook = &injector;
  ApproxSortEngine engine(options);
  const auto keys = MakeKeys(WorkloadKind::kUniform, 2000, 6);

  ResilienceOptions resilience;
  resilience.max_refine_retries = 1;
  resilience.max_escalations = 0;

  std::vector<uint32_t> out_keys;
  std::vector<uint32_t> out_ids;
  const auto report = SortResilient(engine, keys, kQuick, 0.055, resilience,
                                    &out_keys, &out_ids);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified);
  EXPECT_EQ(report->final_policy, AttemptPolicy::kPreciseFallback);
  // Initial + refine retry + fallback, at least.
  EXPECT_GE(report->attempts.size(), 3u);
  EXPECT_EQ(out_keys, SortedCopy(keys));
  // Honest accounting: the rescue was more expensive than sorting
  // precisely outright, and the report must say so.
  EXPECT_LT(report->write_reduction, 0.0);
}

TEST(ResilienceTest, GuardBandEscalationEscapesTheBadRegion) {
  // Same bad region, escalations enabled: the first escalation re-runs the
  // whole pipeline with fresh allocations past the region and verifies —
  // the fallback is never needed and approximation is preserved.
  testing::FaultPlan plan = LowRegionPreciseFaults(96 * 1024, 0.5);
  testing::FaultInjector injector(plan);

  EngineOptions options = FastOptions(41);
  options.fault_hook = &injector;
  ApproxSortEngine engine(options);
  const auto keys = MakeKeys(WorkloadKind::kUniform, 2000, 6);

  std::vector<uint32_t> out_keys;
  const auto report =
      SortResilient(engine, keys, kQuick, 0.055, {}, &out_keys, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified);
  EXPECT_EQ(report->final_policy, AttemptPolicy::kGuardBandEscalation);
  EXPECT_LT(report->final_t, 0.055);
  EXPECT_EQ(out_keys, SortedCopy(keys));
}

TEST(ResilienceTest, QuarantineRescuesAllocationsFromTheBadRegion) {
  // A bad region again, but with the health monitor on: the canary probes
  // see a ~50% word-error rate against a near-zero precise model rate,
  // quarantine the region at allocation time, and the very first attempt
  // runs on healthy memory — no retries, no fallback. (The region is sized
  // to cover where the attempt's Key0/ID arrays would have landed.)
  testing::FaultPlan plan = LowRegionPreciseFaults(112 * 1024, 0.5);
  testing::FaultInjector injector(plan);

  EngineOptions options = FastOptions(41);
  options.fault_hook = &injector;
  options.health.enabled = true;
  ApproxSortEngine engine(options);
  const auto keys = MakeKeys(WorkloadKind::kUniform, 6000, 6);

  std::vector<uint32_t> out_keys;
  const auto report =
      SortResilient(engine, keys, kLsd3, 0.055, {}, &out_keys, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified);
  EXPECT_EQ(report->attempts.size(), 1u);
  EXPECT_EQ(report->final_policy, AttemptPolicy::kInitial);
  EXPECT_GT(report->health.regions_quarantined, 0u);
  EXPECT_GT(report->health.allocation_retries, 0u);
  EXPECT_EQ(out_keys, SortedCopy(keys));
  // The quarantine marker propagates into the cumulative ledger.
  EXPECT_GT(report->cumulative.degraded_regions, 0u);
  // Approximation survived: write reduction stays positive.
  EXPECT_GT(report->write_reduction, 0.0);
}

TEST(ResilienceTest, CumulativeIsSumOfAttemptCostsPlusCanaries) {
  // Run a faulty, monitored configuration so every term is non-trivial:
  // multiple attempts AND canary traffic.
  testing::FaultPlan plan;
  plan.seed = 33;
  plan.read_flips.push_back(testing::TransientReadFault{
      testing::AddressRegion{0, 256 * 1024},
      testing::FaultDomain::kPreciseOnly, 2e-4});
  testing::FaultInjector injector(plan);

  EngineOptions options = FastOptions(77);
  options.fault_hook = &injector;
  options.health.enabled = true;
  ApproxSortEngine engine(options);
  const auto keys = MakeKeys(WorkloadKind::kUniform, 5000, 9);

  const auto report = SortResilient(engine, keys, kQuick, 0.055);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified);

  approx::MemoryStats sum = report->canary_costs;
  for (const AttemptRecord& attempt : report->attempts) {
    sum += attempt.cost;
  }
  EXPECT_EQ(report->cumulative.word_writes, sum.word_writes);
  EXPECT_EQ(report->cumulative.word_reads, sum.word_reads);
  EXPECT_DOUBLE_EQ(report->cumulative.write_cost, sum.write_cost);
  EXPECT_DOUBLE_EQ(report->cumulative.read_cost, sum.read_cost);
}

TEST(ResilienceTest, AbortedApproxStageStillChargesItsCosts) {
  // Regression: an approx stage that dies mid-run (here: an invalid radix
  // width rejected by RunSort after the preparation writes) must still
  // report the preparation traffic it paid, not drop it.
  ApproxSortEngine engine(FastOptions());
  refine::RefineOptions ro;
  ro.algorithm = sort::AlgorithmId{sort::SortKind::kLsdRadix, 0};
  ro.approx_alloc = [&engine](size_t n) {
    return engine.memory().NewApproxArray(n, 0.055);
  };
  ro.precise_alloc = [&engine](size_t n) {
    return engine.memory().NewPreciseArray(n);
  };
  const auto keys = MakeKeys(WorkloadKind::kUniform, 4000, 3);

  refine::ApproxStageState state;
  const Status status = refine::RunApproxStage(keys, ro, &state);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The prep ledgers hold the Key0 reads and Key~ writes that happened
  // before the sort was rejected.
  EXPECT_EQ(state.report.prep_approx.word_writes, keys.size());
  EXPECT_EQ(state.report.prep_precise.word_reads, keys.size());
  EXPECT_GT(state.report.TotalStats().write_cost, 0.0);
}

TEST(ResilienceTest, ExhaustedLadderReportsUnverifiedHonestly) {
  // Fallback disabled and every rung pinned inside the bad region: the
  // ladder must run dry and say so (verified == false, ok status) instead
  // of pretending or erroring out.
  testing::FaultPlan plan = LowRegionPreciseFaults(64 * 1024 * 1024, 0.5);
  testing::FaultInjector injector(plan);

  EngineOptions options = FastOptions(41);
  options.fault_hook = &injector;
  ApproxSortEngine engine(options);
  const auto keys = MakeKeys(WorkloadKind::kUniform, 2000, 6);

  ResilienceOptions resilience;
  resilience.max_refine_retries = 0;
  resilience.max_escalations = 0;
  resilience.allow_precise_fallback = false;

  const auto report = SortResilient(engine, keys, kQuick, 0.055, resilience);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->verified);
  ASSERT_EQ(report->attempts.size(), 1u);
  EXPECT_FALSE(report->attempts.back().verified);
}

TEST(ResilienceTest, RejectsInvalidHalfWidth) {
  ApproxSortEngine engine(FastOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 100, 1);
  const auto report = SortResilient(engine, keys, kLsd3, -1.0);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// One resilient run per corpus case, under a shared calibration cache and
// `threads` workers; returns one digest line per case covering the attempt
// ladder and the final output.
std::vector<std::string> RunResilientSweep(int threads) {
  const std::vector<uint64_t> case_seeds = {3, 4, 5, 6};
  ThreadPool pool(threads);
  auto cache = std::make_shared<mlc::CalibrationCache>(
      mlc::MlcConfig(), 20000, /*seed=*/42 ^ 0xca11b7a7e5eedULL, &pool);

  std::vector<std::string> rows(case_seeds.size());
  pool.ParallelFor(0, rows.size(), [&](size_t i) {
    // Storm plus region-scoped precise read flips, so some cases climb
    // the ladder (and every one can escape it).
    testing::FaultPlan plan =
        testing::FaultPlan::ApproxStorm(case_seeds[i]);
    plan.read_flips.push_back(testing::TransientReadFault{
        testing::AddressRegion{0, 256 * 1024},
        testing::FaultDomain::kPreciseOnly, 2e-4});
    testing::FaultInjector injector(plan);

    EngineOptions options;
    options.calibration_trials = 20000;
    options.seed = 1000 + case_seeds[i];
    options.shared_calibration = cache;
    options.fault_hook = &injector;
    options.health.enabled = true;
    ApproxSortEngine engine(options);
    const auto keys =
        MakeKeys(WorkloadKind::kUniform, 5000, case_seeds[i]);

    std::vector<uint32_t> out_keys;
    std::vector<uint32_t> out_ids;
    const auto report = SortResilient(engine, keys, kQuick, 0.055, {},
                                      &out_keys, &out_ids);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->verified) << "case seed " << case_seeds[i];
    EXPECT_EQ(out_keys, SortedCopy(keys)) << "case seed " << case_seeds[i];

    uint64_t digest = report->AttemptDigest();
    digest = testing::Fnv1a64(out_keys.data(),
                              out_keys.size() * sizeof(uint32_t), digest);
    digest = testing::Fnv1a64(out_ids.data(),
                              out_ids.size() * sizeof(uint32_t), digest);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%016llx,%zu",
                  static_cast<unsigned long long>(digest),
                  report->attempts.size());
    rows[i] = buffer;
  });
  return rows;
}

TEST(ResilienceTest, LadderIsDeterministicAcrossThreadCounts) {
  const std::vector<std::string> serial = RunResilientSweep(1);
  const std::vector<std::string> parallel = RunResilientSweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "case " << i;
  }
}

}  // namespace
}  // namespace approxmem::core
