#include "sortedness/lis.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace approxmem::sortedness {
namespace {

TEST(LisTest, EmptyAndSingleton) {
  EXPECT_EQ(LongestNonDecreasingSubsequence({}), 0u);
  EXPECT_EQ(LongestNonDecreasingSubsequence({5}), 1u);
  EXPECT_EQ(Rem({}), 0u);
  EXPECT_EQ(RemRatio({}), 0.0);
}

TEST(LisTest, SortedSequenceHasZeroRem) {
  std::vector<uint32_t> values = {1, 2, 3, 4, 5};
  EXPECT_EQ(LongestNonDecreasingSubsequence(values), 5u);
  EXPECT_EQ(Rem(values), 0u);
}

TEST(LisTest, DuplicatesCountAsNonDecreasing) {
  std::vector<uint32_t> values = {1, 2, 2, 2, 3};
  EXPECT_EQ(LongestNonDecreasingSubsequence(values), 5u);
  EXPECT_EQ(Rem(std::vector<uint32_t>(100, 7)), 0u);
}

TEST(LisTest, ReversedSequence) {
  std::vector<uint32_t> values = {5, 4, 3, 2, 1};
  EXPECT_EQ(LongestNonDecreasingSubsequence(values), 1u);
  EXPECT_EQ(Rem(values), 4u);
  EXPECT_DOUBLE_EQ(RemRatio(values), 0.8);
}

TEST(LisTest, KnownExample) {
  // LIS of the classic example is {10, 22, 33, 50, 60, 80}.
  std::vector<uint32_t> values = {10, 22, 9, 33, 21, 50, 41, 60, 80};
  EXPECT_EQ(LongestNonDecreasingSubsequence(values), 6u);
  EXPECT_EQ(Rem(values), 3u);
}

TEST(LisTest, PaperRunningExample) {
  // Figure 8: Key after the approx stage; the two disordered pairs are
  // (35, 33) and (928, 168).
  std::vector<uint32_t> values = {1, 6, 35, 33, 96, 928, 168, 528};
  EXPECT_EQ(Rem(values), 2u);
}

TEST(LisTest, SingleOutlierCostsOne) {
  std::vector<uint32_t> values = {1, 2, 3, 1000000, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(Rem(values), 1u);
}

TEST(LisTest, MatchesBruteForceOnRandomInputs) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.UniformInt(60);
    std::vector<uint32_t> values(n);
    // Small alphabet to force many duplicates.
    for (auto& v : values) v = static_cast<uint32_t>(rng.UniformInt(8));
    EXPECT_EQ(LongestNonDecreasingSubsequence(values),
              LongestNonDecreasingSubsequenceBruteForce(values))
        << "trial " << trial;
  }
}

TEST(LisTest, MatchesBruteForceOnWideAlphabet) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.UniformInt(50);
    std::vector<uint32_t> values(n);
    for (auto& v : values) v = rng.NextU32();
    EXPECT_EQ(LongestNonDecreasingSubsequence(values),
              LongestNonDecreasingSubsequenceBruteForce(values));
  }
}

TEST(LisPropertyTest, RemInvariantUnderValueScaling) {
  Rng rng(44);
  std::vector<uint32_t> values(300);
  for (auto& v : values) v = static_cast<uint32_t>(rng.UniformInt(1000));
  std::vector<uint32_t> scaled = values;
  for (auto& v : scaled) v = v * 4 + 2;  // Strictly monotone transform.
  EXPECT_EQ(Rem(values), Rem(scaled));
}

TEST(LisPropertyTest, RemBoundedByNMinusOne) {
  Rng rng(45);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> values(1 + rng.UniformInt(100));
    for (auto& v : values) v = rng.NextU32();
    EXPECT_LE(Rem(values), values.size() - 1);
  }
}

TEST(LisMembershipTest, MarksExactlyLisLengthElements) {
  Rng rng(47);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint32_t> values(1 + rng.UniformInt(200));
    for (auto& v : values) v = static_cast<uint32_t>(rng.UniformInt(32));
    const auto member = LongestNonDecreasingMembership(values);
    size_t marked = 0;
    for (const uint8_t m : member) marked += m;
    EXPECT_EQ(marked, LongestNonDecreasingSubsequence(values));
  }
}

TEST(LisMembershipTest, MarkedSubsequenceIsNonDecreasing) {
  Rng rng(48);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint32_t> values(1 + rng.UniformInt(200));
    for (auto& v : values) v = rng.NextU32();
    const auto member = LongestNonDecreasingMembership(values);
    uint32_t tail = 0;
    bool first = true;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!member[i]) continue;
      if (!first) {
        EXPECT_GE(values[i], tail);
      }
      tail = values[i];
      first = false;
    }
  }
}

TEST(LisMembershipTest, EmptyAndSorted) {
  EXPECT_TRUE(LongestNonDecreasingMembership({}).empty());
  const auto member = LongestNonDecreasingMembership({1, 2, 2, 3});
  for (const uint8_t m : member) EXPECT_EQ(m, 1);
}

TEST(LisPropertyTest, SortingDrivesRemToZero) {
  Rng rng(46);
  std::vector<uint32_t> values(1000);
  for (auto& v : values) v = rng.NextU32();
  EXPECT_GT(Rem(values), 0u);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(Rem(values), 0u);
}

}  // namespace
}  // namespace approxmem::sortedness
