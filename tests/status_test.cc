#include "common/status.h"

#include <gtest/gtest.h>

namespace approxmem {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad T");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad T");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad T");
}

TEST(StatusTest, EveryCodeHasAName) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusTest, UnavailableFactoryCarriesCodeAndMessage) {
  const Status status = Status::Unavailable("verification failed");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.ToString(), "UNAVAILABLE: verification failed");
}

TEST(StatusTest, OnlyTransientCodesAreRetryable) {
  // The resilience ladder climbs on these two...
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::Internal("x").IsRetryable());
  // ...and aborts on everything else (including Ok, which never retries).
  EXPECT_FALSE(Status::Ok().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::OutOfRange("x").IsRetryable());
  EXPECT_FALSE(Status::FailedPrecondition("x").IsRetryable());
  EXPECT_FALSE(Status::Unimplemented("x").IsRetryable());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::OutOfRange("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::OutOfRange("index"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ArrowOperatorReachesMembers) {
  StatusOr<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace approxmem
