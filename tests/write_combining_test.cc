#include "sort/write_combining.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "core/workload.h"
#include "sort/radix_common.h"
#include "sort/radix_lsd.h"
#include "sortedness/measures.h"

namespace approxmem::sort {
namespace {

class WriteCombiningTest : public ::testing::Test {
 protected:
  WriteCombiningTest() : memory_(MakeOptions()) {}

  static approx::ApproxMemory::Options MakeOptions() {
    approx::ApproxMemory::Options options;
    options.calibration_trials = 5000;
    // A strong sequential discount so the pattern difference is visible.
    options.sequential_write_discount = 0.5;
    return options;
  }

  approx::ApproxMemory memory_;
};

TEST_F(WriteCombiningTest, ArenaCapacityBounds) {
  // 100 elements, 4 buckets, chunks of 8: <= ceil(100/8)+4 = 17 chunks.
  EXPECT_EQ(WriteCombiningQueues::ArenaCapacity(100, 4, 8), 17u * 8);
}

TEST_F(WriteCombiningTest, DrainPreservesBucketFifoOrder) {
  const size_t capacity = WriteCombiningQueues::ArenaCapacity(10, 2, 4);
  approx::ApproxArrayU32 arena = memory_.NewPreciseArray(capacity);
  approx::ApproxArrayU32 out = memory_.NewPreciseArray(10);
  WriteCombiningQueues queues(2, &arena, nullptr, 4);
  // Interleave pushes so chunks of the two buckets interleave in the arena.
  for (uint32_t i = 0; i < 5; ++i) {
    queues.Push(1, 100 + i, 0);
    queues.Push(0, i, 0);
  }
  EXPECT_EQ(queues.BucketSize(0), 5u);
  EXPECT_EQ(queues.BucketSize(1), 5u);
  EXPECT_EQ(queues.DrainTo(out, nullptr, 0), 10u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out.PeekActual(i), i);
    EXPECT_EQ(out.PeekActual(5 + i), 100 + i);
  }
}

TEST_F(WriteCombiningTest, FlushesAreSequentialBursts) {
  const size_t capacity = WriteCombiningQueues::ArenaCapacity(64, 4, 16);
  approx::ApproxArrayU32 arena = memory_.NewPreciseArray(capacity);
  WriteCombiningQueues queues(4, &arena, nullptr, 16);
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    queues.Push(static_cast<uint32_t>(rng.UniformInt(4)), rng.NextU32(), 0);
  }
  approx::ApproxArrayU32 out = memory_.NewPreciseArray(64);
  queues.DrainTo(out, nullptr, 0);
  // Within each 16-element chunk every write after the first is
  // sequential, so at least 15/16 of arena writes are sequential.
  const auto& stats = arena.stats();
  EXPECT_GE(stats.sequential_writes * 16, stats.word_writes * 15 - 16);
}

TEST_F(WriteCombiningTest, PlainQueuesOnRandomBucketsAreNotSequential) {
  approx::ApproxArrayU32 arena = memory_.NewPreciseArray(64);
  BucketQueues queues(4, &arena, nullptr);
  Rng rng(2);
  for (int i = 0; i < 64; ++i) {
    queues.Push(static_cast<uint32_t>(rng.UniformInt(4)), rng.NextU32(), 0);
  }
  // The plain bump arena writes every slot in order: fully sequential too!
  // (The write-combining benefit appears at the *drain* side and in chunk
  // reuse across passes; see the LSD comparison below.)
  EXPECT_EQ(arena.stats().sequential_writes, 63u);
}

TEST_F(WriteCombiningTest, LsdWithCombiningStillSortsExactly) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 5000, 3);
  for (const size_t chunk : {1u, 16u, 64u}) {
    approx::ApproxArrayU32 array = memory_.NewPreciseArray(keys.size());
    array.Store(keys);
    SortSpec spec;
    spec.keys = &array;
    spec.alloc_key_buffer = [this](size_t n) {
      return memory_.NewPreciseArray(n);
    };
    LsdRadixOptions options;
    options.bits = 4;
    options.write_combining = true;
    options.combine_chunk_elements = chunk;
    ASSERT_TRUE(LsdRadixSort(spec, options).ok());
    const auto out = array.Snapshot();
    EXPECT_TRUE(sortedness::IsSorted(out)) << "chunk=" << chunk;
    EXPECT_TRUE(sortedness::IsPermutationOf(keys, out));
  }
}

TEST_F(WriteCombiningTest, SameWriteCountDifferentCost) {
  // Write combining does not change how many writes happen — only what
  // they cost under the sequential discount.
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 8000, 4);
  auto run = [&](bool combine) {
    approx::ApproxArrayU32 array = memory_.NewPreciseArray(keys.size());
    array.Store(keys);
    array.ResetStats();
    approx::MemoryStats scratch;
    SortSpec spec;
    spec.keys = &array;
    spec.alloc_key_buffer = [this, &scratch](size_t n) {
      approx::ApproxArrayU32 buffer = memory_.NewPreciseArray(n);
      buffer.SetStatsSink(&scratch);
      return buffer;
    };
    LsdRadixOptions options;
    options.bits = 6;
    options.write_combining = combine;
    EXPECT_TRUE(LsdRadixSort(spec, options).ok());
    const approx::MemoryStats total = array.stats() + scratch;
    return std::make_pair(total.word_writes, total.write_cost);
  };
  const auto [plain_writes, plain_cost] = run(false);
  const auto [combined_writes, combined_cost] = run(true);
  EXPECT_EQ(plain_writes, combined_writes);
  // Plain LSD's drain writes are already sequential; combining additionally
  // sequentializes nothing at the main array but must not cost more.
  EXPECT_LE(combined_cost, plain_cost * 1.01);
}

TEST_F(WriteCombiningTest, ResetReusesChunks) {
  const size_t capacity = WriteCombiningQueues::ArenaCapacity(8, 2, 4);
  approx::ApproxArrayU32 arena = memory_.NewPreciseArray(capacity);
  approx::ApproxArrayU32 out = memory_.NewPreciseArray(8);
  WriteCombiningQueues queues(2, &arena, nullptr, 4);
  for (int round = 0; round < 3; ++round) {
    for (uint32_t i = 0; i < 8; ++i) queues.Push(i % 2, i, 0);
    EXPECT_EQ(queues.DrainTo(out, nullptr, 0), 8u);
    queues.Reset();
    EXPECT_EQ(queues.TotalPushed(), 0u);
  }
}

}  // namespace
}  // namespace approxmem::sort
