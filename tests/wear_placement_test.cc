// Unit tests for service::WearPlacement: the ChargeJobCost attribution
// edge cases (no spans, zero-byte spans, proportional split), the
// WearImbalance boundary conditions, and the endurance wiring that skips
// retired banks while keeping the PlaceSpan progress contract.
#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "approx/endurance.h"
#include "service/wear_placement.h"

namespace approxmem::service {
namespace {

WearLevelOptions FourBanks() {
  WearLevelOptions options;
  options.banks = 4;
  return options;
}

approx::EnduranceOptions LedgerOptions() {
  approx::EnduranceOptions options;
  options.enabled = true;
  options.banks = 4;
  options.bank_lane_bytes = WearPlacement::kBankLaneBytes;
  options.bank_budget_pv = 1000.0;
  options.retire_after_quarantines = 2;
  return options;
}

TEST(WearPlacementChargeTest, JobWithNoSpansAccruesUnattributedWear) {
  WearPlacement placement(FourBanks());
  placement.BeginJob();
  placement.ChargeJobCost(250.0);
  placement.ChargeJobCost(0.0);    // Zero charges are dropped outright.
  placement.ChargeJobCost(-10.0);  // So are negative (defensive) ones.
  EXPECT_DOUBLE_EQ(placement.unattributed_wear(), 250.0);
  for (const BankWear& bank : placement.banks()) {
    EXPECT_DOUBLE_EQ(bank.wear, 0.0);
  }
}

TEST(WearPlacementChargeTest, ZeroByteSpansSplitTheChargeEqually) {
  WearPlacement placement(FourBanks());
  placement.BeginJob();
  // Two zero-byte allocations: zero placed bytes, yet the charge must
  // neither divide by zero nor be dropped — it splits equally per span.
  placement.PlaceSpan(0);
  placement.PlaceSpan(0);
  placement.ChargeJobCost(100.0);
  double total = 0.0;
  for (const BankWear& bank : placement.banks()) total += bank.wear;
  EXPECT_DOUBLE_EQ(total, 100.0);
  EXPECT_DOUBLE_EQ(placement.unattributed_wear(), 0.0);
}

TEST(WearPlacementChargeTest, MixedSpansChargeProportionalToBytes) {
  WearPlacement placement(FourBanks());
  placement.BeginJob();
  const uint64_t small = placement.PlaceSpan(100);
  const uint64_t large = placement.PlaceSpan(300);
  placement.ChargeJobCost(400.0);
  EXPECT_DOUBLE_EQ(placement.banks()[placement.BankOf(small)].wear, 100.0);
  EXPECT_DOUBLE_EQ(placement.banks()[placement.BankOf(large)].wear, 300.0);

  // A zero-byte span riding along with real bytes gets a zero share: the
  // proportional rule covers it without the equal-split fallback.
  placement.BeginJob();
  const uint64_t empty = placement.PlaceSpan(0);
  const uint64_t full = placement.PlaceSpan(64);
  const double before = placement.banks()[placement.BankOf(empty)].wear;
  placement.ChargeJobCost(50.0);
  if (placement.BankOf(empty) != placement.BankOf(full)) {
    EXPECT_DOUBLE_EQ(placement.banks()[placement.BankOf(empty)].wear, before);
  }
}

TEST(WearPlacementChargeTest, BeginJobResetsAttributionTargets) {
  WearPlacement placement(FourBanks());
  placement.BeginJob();
  placement.PlaceSpan(128);
  placement.BeginJob();  // Previous job's spans must not absorb this charge.
  placement.ChargeJobCost(75.0);
  EXPECT_DOUBLE_EQ(placement.unattributed_wear(), 75.0);
}

TEST(WearPlacementImbalanceTest, NoAllocationsReportsPerfectlyLevel) {
  WearPlacement placement(FourBanks());
  EXPECT_DOUBLE_EQ(placement.WearImbalance(), 1.0);
}

TEST(WearPlacementImbalanceTest, SingleUsedBankIsLevelByDefinition) {
  WearPlacement placement(FourBanks());
  placement.BeginJob();
  placement.PlaceSpan(64);
  placement.ChargeJobCost(500.0);
  EXPECT_DOUBLE_EQ(placement.WearImbalance(), 1.0);
}

TEST(WearPlacementImbalanceTest, AllocatedButUnchargedBanksStayLevel) {
  WearPlacement placement(FourBanks());
  placement.BeginJob();
  placement.PlaceSpan(64);
  placement.PlaceSpan(64);
  // Allocations landed but no wear was ever charged: total wear is zero,
  // which must read as level, not as a division by zero.
  EXPECT_DOUBLE_EQ(placement.WearImbalance(), 1.0);
}

TEST(WearPlacementImbalanceTest, ConcentrationReadsAsMaxOverMean) {
  WearPlacement placement(FourBanks());
  placement.BeginJob();
  const uint64_t heavy = placement.PlaceSpan(300);
  const uint64_t light = placement.PlaceSpan(100);
  placement.ChargeJobCost(400.0);
  ASSERT_NE(placement.BankOf(heavy), placement.BankOf(light));
  // Wear 300 and 100 over two used banks: mean 200, max 300 -> 1.5.
  EXPECT_DOUBLE_EQ(placement.WearImbalance(), 1.5);
}

TEST(WearPlacementEnduranceTest, RetiredBanksAreSkippedByPlacement) {
  approx::EnduranceLedger ledger(LedgerOptions());
  WearPlacement placement(FourBanks(), &ledger);
  ledger.ChargeBank(0, 2000.0);  // Retire bank 0 directly.
  ASSERT_TRUE(ledger.IsRetired(0));
  EXPECT_EQ(placement.LiveBankCount(), 3);
  EXPECT_FALSE(placement.SubstrateExhausted());

  placement.BeginJob();
  for (int i = 0; i < 12; ++i) {
    EXPECT_NE(placement.BankOf(placement.PlaceSpan(64)), 0);
  }
  EXPECT_EQ(placement.banks()[0].allocations, 0u);
}

TEST(WearPlacementEnduranceTest, ExhaustedSubstrateStillMakesProgress) {
  approx::EnduranceLedger ledger(LedgerOptions());
  WearPlacement placement(FourBanks(), &ledger);
  for (int b = 0; b < 4; ++b) ledger.ChargeBank(b, 2000.0);
  EXPECT_TRUE(placement.SubstrateExhausted());
  EXPECT_EQ(placement.LiveBankCount(), 0);

  // A job already mid-flight may still allocate (precise fallback); the
  // policy contract demands a valid placement even off a dead substrate.
  placement.BeginJob();
  const uint64_t base = placement.PlaceSpan(64);
  const int bank = placement.BankOf(base);
  EXPECT_GE(bank, 0);
  EXPECT_LT(bank, 4);
  EXPECT_EQ(placement.banks()[bank].allocations, 1u);
}

TEST(WearPlacementEnduranceTest, ChargesFlowIntoTheLedgerWithAging) {
  approx::EnduranceOptions aged = LedgerOptions();
  aged.age_multiplier = 10.0;
  approx::EnduranceLedger ledger(aged);
  WearPlacement placement(FourBanks(), &ledger);

  placement.BeginJob();
  EXPECT_EQ(ledger.virtual_time(), 1u);  // BeginJob ticks virtual time.
  const uint64_t base = placement.PlaceSpan(64);
  const int bank = placement.BankOf(base);
  placement.ChargeJobCost(150.0);  // 150 observed * 10x = 1500 > budget.
  EXPECT_TRUE(ledger.IsRetired(bank));
  ASSERT_EQ(ledger.retirements().size(), 1u);
  EXPECT_EQ(ledger.retirements()[0].virtual_time, 1u);
}

TEST(WearPlacementEnduranceTest, QuarantinesCondemnViaTheCanaryPath) {
  approx::EnduranceLedger ledger(LedgerOptions());  // Condemn after 2.
  WearPlacement placement(FourBanks(), &ledger);

  placement.BeginJob();
  const uint64_t span = 64;
  const uint64_t base = placement.PlaceSpan(span);
  const int bank = placement.BankOf(base);
  placement.OnQuarantine(base, span);
  EXPECT_EQ(placement.quarantine_events(), 1u);
  EXPECT_EQ(ledger.bank(bank).quarantines, 1u);
  EXPECT_FALSE(ledger.IsRetired(bank));
  // The quarantined span is dropped from attribution: a charge now has no
  // targets and lands on the unattributed ledger.
  placement.ChargeJobCost(30.0);
  EXPECT_DOUBLE_EQ(placement.unattributed_wear(), 30.0);

  placement.OnQuarantine(base + 128, span);  // Same bank, different region.
  EXPECT_TRUE(ledger.IsRetired(bank));
  EXPECT_EQ(ledger.retirements()[0].reason,
            approx::RetirementReason::kCanaryCondemned);
}

}  // namespace
}  // namespace approxmem::service
