#include "mem/trace.h"

#include <gtest/gtest.h>

namespace approxmem::mem {
namespace {

TEST(TraceBufferTest, StartsEmpty) {
  TraceBuffer trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.read_count(), 0u);
  EXPECT_EQ(trace.write_count(), 0u);
}

TEST(TraceBufferTest, AppendsAndCounts) {
  TraceBuffer trace;
  trace.AppendRead(0x1000);
  trace.AppendWrite(0x2000);
  trace.AppendWrite(0x3000, 8);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.read_count(), 1u);
  EXPECT_EQ(trace.write_count(), 2u);
  EXPECT_EQ(trace[0].kind, AccessKind::kRead);
  EXPECT_EQ(trace[0].address, 0x1000u);
  EXPECT_EQ(trace[2].size, 8u);
}

TEST(TraceBufferTest, ClearResetsEverything) {
  TraceBuffer trace;
  trace.AppendRead(1);
  trace.AppendWrite(2);
  trace.Clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.read_count(), 0u);
  EXPECT_EQ(trace.write_count(), 0u);
}

TEST(TraceBufferTest, PreservesOrder) {
  TraceBuffer trace;
  for (uint64_t i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      trace.AppendWrite(i);
    } else {
      trace.AppendRead(i);
    }
  }
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(trace[i].address, i);
    EXPECT_EQ(trace[i].kind,
              i % 3 == 0 ? AccessKind::kWrite : AccessKind::kRead);
  }
}

}  // namespace
}  // namespace approxmem::mem
