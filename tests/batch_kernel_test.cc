// Bit parity of the batched hot-loop kernels against their scalar
// counterparts: the span word codec, the calibrated batch error sampler's
// block-uniform first-error scan, and WriteModel::WriteBatch on the fast
// PCM and spintronic models. The batched paths exist purely for speed —
// every observable (outcomes, costs, RNG stream position) must be
// bit-identical to the per-word loops they replace.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "approx/memory_backend.h"
#include "approx/write_model.h"
#include "common/random.h"
#include "mlc/calibration.h"
#include "mlc/mlc_config.h"
#include "mlc/word_codec.h"

namespace approxmem {
namespace {

std::vector<uint32_t> RandomWords(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> words(count);
  for (auto& word : words) word = rng.NextU32();
  // Make sure the degenerate patterns are always present.
  if (count > 3) {
    words[0] = 0;
    words[1] = 0xffffffffu;
    words[2] = 0x55555555u;
  }
  return words;
}

void ExpectCodecParity(const mlc::MlcConfig& config, size_t count) {
  const std::vector<uint32_t> words = RandomWords(count, 0xc0dec + count);
  const size_t cells = static_cast<size_t>(config.CellsPerWord());

  std::vector<uint8_t> batched(count * cells);
  mlc::EncodeWords(words.data(), count, config, batched.data());
  for (size_t w = 0; w < count; ++w) {
    const mlc::WordLevels scalar = mlc::EncodeWord(words[w], config);
    for (size_t c = 0; c < cells; ++c) {
      ASSERT_EQ(batched[w * cells + c], scalar[c])
          << "word " << w << " cell " << c;
    }
  }

  std::vector<uint32_t> decoded(count);
  mlc::DecodeWords(batched.data(), count, config, decoded.data());
  EXPECT_EQ(decoded, words);
}

TEST(WordCodecBatchTest, SpanCodecMatchesScalarOnEveryLayout) {
  // 2-bit MLC (the paper's layout, 16x2 fast path), 4-bit, and SLC. Odd
  // counts exercise the partial tail of any internal chunking.
  ExpectCodecParity(mlc::MlcConfig(), 1013);
  mlc::MlcConfig four_bit;
  four_bit.levels = 16;
  ExpectCodecParity(four_bit, 517);
  mlc::MlcConfig slc;
  slc.levels = 2;
  ExpectCodecParity(slc, 129);
}

TEST(BatchErrorSamplerTest, WordStatsMatchCalibrationTables) {
  const mlc::MlcConfig config = mlc::MlcConfig().WithT(0.07);
  const mlc::CellCalibration calibration =
      mlc::CellCalibration::Run(config, 20000, /*seed=*/5, nullptr);
  const mlc::BatchErrorSampler sampler(calibration);
  EXPECT_TRUE(sampler.fast_layout());

  const std::vector<uint32_t> words = RandomWords(512, 0x7ab1e);
  std::vector<mlc::BatchErrorSampler::WordStats> batch(words.size());
  sampler.StatsForWords(words.data(), words.size(), batch.data());
  for (size_t w = 0; w < words.size(); ++w) {
    // The batch call must equal the single-word entry point exactly...
    const auto single = sampler.StatsFor(words[w]);
    ASSERT_EQ(batch[w].pv_sum, single.pv_sum) << "word " << w;
    ASSERT_EQ(batch[w].no_error, single.no_error) << "word " << w;
    // ...and both must agree with a per-cell walk over the calibration's
    // public tables (to rounding, since the byte tables pre-fold partials).
    const mlc::WordLevels levels = mlc::EncodeWord(words[w], config);
    double pv = 0.0;
    double stay = 1.0;
    for (int c = 0; c < config.CellsPerWord(); ++c) {
      pv += calibration.AvgPvForLevel(levels[static_cast<size_t>(c)]);
      stay *= 1.0 - calibration.ErrorProbForLevel(
                        levels[static_cast<size_t>(c)]);
    }
    ASSERT_DOUBLE_EQ(batch[w].pv_sum, pv) << "word " << w;
    ASSERT_DOUBLE_EQ(batch[w].no_error, stay) << "word " << w;
  }
}

TEST(BatchErrorSamplerTest, FirstCorruptedMatchesScalarDrawSequence) {
  Rng gen(0xf17e);
  for (int round = 0; round < 64; ++round) {
    const size_t count = 1 + gen.UniformInt(200);
    std::vector<double> word_error(count);
    for (double& e : word_error) {
      const double kind = gen.UniformDouble();
      // Mix of non-drawing words, rare errors, and near-certain errors so
      // the scan ends both inside blocks and past the last block.
      e = kind < 0.3 ? 0.0
                     : (kind < 0.95 ? gen.UniformDouble() * 0.02 : 0.9);
    }
    const uint64_t seed = gen.Next64();
    Rng batched(seed);
    Rng scalar(seed);
    const size_t got = mlc::BatchErrorSampler::FirstCorrupted(
        word_error.data(), count, batched);

    size_t want = count;
    for (size_t i = 0; i < count; ++i) {
      if (word_error[i] <= 0.0) continue;
      if (scalar.UniformDouble() < word_error[i]) {
        want = i;
        break;
      }
    }
    ASSERT_EQ(got, want) << "round " << round;
    // The block refills must leave the stream exactly where the scalar
    // loop left it.
    for (int k = 0; k < 4; ++k) {
      ASSERT_EQ(batched.Next64(), scalar.Next64()) << "round " << round;
    }
  }
}

void ExpectWriteBatchParity(const std::string& backend_name, double knob) {
  approx::BackendContext context;
  context.calibration_trials = 5000;
  auto backend = approx::CreateMemoryBackend(backend_name, context);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  // 64-word blocks internally; the odd count exercises the partial tail.
  const size_t count = 2048 + 17;
  auto model = (*backend)->ModelFor(approx::AllocSpec::Approx(knob, count));
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  const std::vector<uint32_t> words = RandomWords(count, 0xba7c4);
  const uint64_t seed = 31337;
  Rng batched_rng(seed);
  Rng scalar_rng(seed);
  std::vector<approx::WordWriteOutcome> batched(count);
  std::vector<approx::WordWriteOutcome> scalar(count);
  (*model)->WriteBatch(words.data(), count, batched_rng, batched.data());
  for (size_t i = 0; i < count; ++i) {
    scalar[i] = (*model)->Write(words[i], scalar_rng);
  }

  uint64_t corrupted = 0;
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(batched[i].stored, scalar[i].stored) << "word " << i;
    ASSERT_EQ(batched[i].cost, scalar[i].cost) << "word " << i;
    ASSERT_EQ(batched[i].pv_iterations, scalar[i].pv_iterations)
        << "word " << i;
    if (batched[i].stored != words[i]) ++corrupted;
  }
  // The operating point is hot enough that the parity is not vacuous.
  EXPECT_GT(corrupted, 0u) << backend_name;
  for (int k = 0; k < 4; ++k) {
    ASSERT_EQ(batched_rng.Next64(), scalar_rng.Next64());
  }
}

TEST(WriteModelBatchTest, FastPcmWriteBatchMatchesScalarWrites) {
  ExpectWriteBatchParity(std::string(approx::kPcmBackendName), 0.08);
}

TEST(WriteModelBatchTest, SpintronicWriteBatchMatchesScalarWrites) {
  ExpectWriteBatchParity(std::string(approx::kSpintronicBackendName), 1e-4);
}

}  // namespace
}  // namespace approxmem
