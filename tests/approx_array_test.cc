#include "approx/approx_array.h"

#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "common/random.h"

namespace approxmem::approx {
namespace {

ApproxMemory::Options DefaultOptions() {
  ApproxMemory::Options options;
  options.calibration_trials = 20000;
  options.seed = 11;
  return options;
}

TEST(ApproxArrayTest, PreciseArrayStoresExactly) {
  ApproxMemory memory(DefaultOptions());
  ApproxArrayU32 array = memory.NewPreciseArray(100);
  Rng rng(1);
  for (size_t i = 0; i < 100; ++i) {
    const uint32_t v = rng.NextU32();
    array.Set(i, v);
    EXPECT_EQ(array.Get(i), v);
  }
  EXPECT_EQ(array.DeviatingElements(), 0u);
  EXPECT_DOUBLE_EQ(array.ErrorRate(), 0.0);
  EXPECT_TRUE(array.precise());
}

TEST(ApproxArrayTest, PreciseWriteCostsOneMicrosecond) {
  ApproxMemory memory(DefaultOptions());
  ApproxArrayU32 array = memory.NewPreciseArray(10);
  for (size_t i = 0; i < 10; ++i) array.Set(i, 1);
  array.Get(0);
  EXPECT_EQ(array.stats().word_writes, 10u);
  EXPECT_EQ(array.stats().word_reads, 1u);
  EXPECT_DOUBLE_EQ(array.stats().write_cost, 10 * 1000.0);
  EXPECT_DOUBLE_EQ(array.stats().read_cost, 50.0);
}

TEST(ApproxArrayTest, ApproxWritesAreCheaperThanPrecise) {
  ApproxMemory memory(DefaultOptions());
  ApproxArrayU32 array = memory.NewApproxArray(1000, 0.055);
  Rng rng(2);
  for (size_t i = 0; i < 1000; ++i) array.Set(i, rng.NextU32());
  const double per_write = array.stats().write_cost / 1000.0;
  // p(0.055) ~ 0.66 of the 1us precise write.
  EXPECT_LT(per_write, 750.0);
  EXPECT_GT(per_write, 500.0);
  EXPECT_FALSE(array.precise());
}

TEST(ApproxArrayTest, NearPreciseTHasNoCorruption) {
  ApproxMemory memory(DefaultOptions());
  ApproxArrayU32 array = memory.NewApproxArray(20000, 0.03);
  Rng rng(3);
  for (size_t i = 0; i < array.size(); ++i) array.Set(i, rng.NextU32());
  EXPECT_EQ(array.stats().corrupted_writes, 0u);
}

TEST(ApproxArrayTest, NoGuardBandCorruptsHeavily) {
  ApproxMemory memory(DefaultOptions());
  ApproxArrayU32 array = memory.NewApproxArray(20000, 0.12);
  Rng rng(4);
  for (size_t i = 0; i < array.size(); ++i) array.Set(i, rng.NextU32());
  // Figure 2(b): word error rate past 50% without guard bands.
  EXPECT_GT(array.ErrorRate(), 0.30);
  EXPECT_EQ(array.DeviatingElements(), array.stats().corrupted_writes);
}

TEST(ApproxArrayTest, ReadsAreStickyBetweenWrites) {
  ApproxMemory memory(DefaultOptions());
  ApproxArrayU32 array = memory.NewApproxArray(1, 0.12);
  array.Set(0, 0x12345678);
  const uint32_t first = array.Get(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(array.Get(0), first);
}

TEST(ApproxArrayTest, CorruptionRateMatchesCalibration) {
  ApproxMemory memory(DefaultOptions());
  const double t = 0.085;
  ApproxArrayU32 array = memory.NewApproxArray(50000, t);
  Rng rng(5);
  for (size_t i = 0; i < array.size(); ++i) array.Set(i, rng.NextU32());
  const double expected =
      memory.calibration().ForT(t).WordErrorRate(16);
  EXPECT_NEAR(array.ErrorRate(), expected, 0.15 * expected + 0.005);
}

TEST(ApproxArrayTest, StoreAndCopyFromCountAccesses) {
  ApproxMemory memory(DefaultOptions());
  ApproxArrayU32 src = memory.NewPreciseArray(50);
  src.Store(std::vector<uint32_t>(50, 7));
  EXPECT_EQ(src.stats().word_writes, 50u);
  ApproxArrayU32 dst = memory.NewApproxArray(50, 0.055);
  dst.CopyFrom(src);
  EXPECT_EQ(dst.stats().word_writes, 50u);
  EXPECT_EQ(src.stats().word_reads, 50u);
}

TEST(ApproxArrayTest, StatsSinkReceivesOnDestruction) {
  ApproxMemory memory(DefaultOptions());
  MemoryStats sink;
  {
    ApproxArrayU32 array = memory.NewPreciseArray(10);
    array.SetStatsSink(&sink);
    for (size_t i = 0; i < 10; ++i) array.Set(i, 1);
  }
  EXPECT_EQ(sink.word_writes, 10u);
  EXPECT_DOUBLE_EQ(sink.write_cost, 10 * 1000.0);
}

TEST(ApproxArrayTest, MoveDoesNotDoubleFlush) {
  ApproxMemory memory(DefaultOptions());
  MemoryStats sink;
  {
    ApproxArrayU32 array = memory.NewPreciseArray(10);
    array.SetStatsSink(&sink);
    array.Set(0, 1);
    ApproxArrayU32 moved = std::move(array);
    moved.Set(1, 2);
  }
  EXPECT_EQ(sink.word_writes, 2u);
}

TEST(ApproxArrayTest, TraceRecordsAddresses) {
  mem::TraceBuffer trace;
  ApproxMemory::Options options = DefaultOptions();
  options.trace = &trace;
  ApproxMemory memory(options);
  ApproxArrayU32 a = memory.NewPreciseArray(4);
  ApproxArrayU32 b = memory.NewPreciseArray(4);
  a.Set(0, 1);
  b.Set(0, 1);
  a.Get(1);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].kind, mem::AccessKind::kWrite);
  EXPECT_EQ(trace[0].address, a.base_address());
  EXPECT_EQ(trace[1].address, b.base_address());
  EXPECT_NE(a.base_address(), b.base_address());
  EXPECT_EQ(trace[2].kind, mem::AccessKind::kRead);
  EXPECT_EQ(trace[2].address, a.base_address() + 4);
}

TEST(ApproxArrayTest, ExactModeMatchesFastModeStatistically) {
  const double t = 0.09;
  auto run = [&](SimulationMode mode) {
    ApproxMemory::Options options = DefaultOptions();
    options.mode = mode;
    ApproxMemory memory(options);
    ApproxArrayU32 array = memory.NewApproxArray(30000, t);
    Rng rng(6);
    for (size_t i = 0; i < array.size(); ++i) array.Set(i, rng.NextU32());
    return std::make_pair(array.ErrorRate(),
                          array.stats().write_cost /
                              static_cast<double>(array.size()));
  };
  const auto [fast_error, fast_cost] = run(SimulationMode::kFast);
  const auto [exact_error, exact_cost] = run(SimulationMode::kExact);
  EXPECT_NEAR(fast_error, exact_error, 0.1 * exact_error + 0.01);
  EXPECT_NEAR(fast_cost, exact_cost, 0.05 * exact_cost);
}

}  // namespace
}  // namespace approxmem::approx
