// Property suite for the sort service's admission control and trace
// tooling: random bursty traces with mixed knobs and tight queues must
// uphold the service invariants (bounded backlog, every job terminal with
// an honest status, ledgers that add up), a mid-flight quarantine storm
// must degrade gracefully, and a failing trace must shrink to a minimal
// repro (see TESTING.md for the replay workflow).
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/job_plan.h"
#include "mlc/calibration.h"
#include "service/sort_service.h"
#include "testing/fault_injection.h"

namespace approxmem {
namespace {

constexpr uint64_t kCalibrationTrials = 5000;

std::shared_ptr<mlc::CalibrationCache> SharedCache() {
  static std::shared_ptr<mlc::CalibrationCache> cache =
      std::make_shared<mlc::CalibrationCache>(mlc::MlcConfig{},
                                              kCalibrationTrials,
                                              42 ^ 0xca11b7a7e5eedULL);
  return cache;
}

struct PropertyConfig {
  int shards = 2;
  size_t queue_capacity = 8;
  int shard_batch_quota = 2;
  int max_deferrals = 2;
  bool storm = false;
};

service::ServiceOptions MakeOptions(const PropertyConfig& config,
                                    uint64_t seed) {
  service::ServiceOptions options;
  options.shards = config.shards;
  options.threads = 2;
  options.seed = seed;
  options.calibration_trials = kCalibrationTrials;
  options.shared_calibration = SharedCache();
  options.admission.queue_capacity = config.queue_capacity;
  options.admission.shard_batch_quota = config.shard_batch_quota;
  options.admission.max_deferrals = config.max_deferrals;
  if (config.storm) {
    // A hot region at the bottom of bank lane 0: canary probes placed
    // there observe a ~90% word error rate, far beyond any calibrated
    // model, so the health monitor quarantines mid-flight and the wear
    // policy must steer subsequent placements around it.
    options.fault_hook_factory =
        [seed](int shard) -> std::unique_ptr<approx::MemoryFaultHook> {
      testing::FaultPlan plan;
      plan.seed = seed ^ (0xbadULL + static_cast<uint64_t>(shard));
      testing::ErrorRateOverride hot;
      hot.region = testing::AddressRegion{0, uint64_t{64} << 20};
      hot.probability = 0.9;
      plan.rate_overrides.push_back(hot);
      return std::make_unique<testing::FaultInjector>(plan);
    };
  }
  return options;
}

std::vector<service::TenantSpec> PropertyTenants() {
  // Mixed knobs on one backend plus a second technology: admission and
  // ledger invariants must hold across heterogeneous per-tenant profiles.
  std::vector<service::TenantSpec> tenants(3);
  tenants[0].name = "hot";
  tenants[0].backend = "mlc-pcm";
  tenants[0].knob = 0.075;
  tenants[1].name = "cold";
  tenants[1].backend = "mlc-pcm";
  tenants[1].knob = 0.035;
  tenants[2].name = "spin";
  tenants[2].backend = "spintronic";
  return tenants;
}

service::TraceGenOptions PropertyGen(uint64_t seed,
                                     double extsort_fraction = 0.0) {
  service::TraceGenOptions gen;
  gen.seed = seed;
  gen.tenants = {"hot", "cold", "spin"};
  gen.bursts = 3;
  gen.max_burst_jobs = 12;  // Bursts can overflow the 8-slot queue.
  gen.min_n = 16;
  gen.max_n = 96;
  gen.extsort_fraction = extsort_fraction;
  return gen;
}

/// Runs `trace` through a fresh service and returns the first violated
/// invariant as a message, or "" when all hold. Pure function of (config,
/// seed, trace) — exactly what ShrinkTrace needs.
std::string CheckInvariants(const PropertyConfig& config, uint64_t seed,
                            const service::RequestTrace& trace) {
  service::SortService sort_service(MakeOptions(config, seed));
  for (const service::TenantSpec& tenant : PropertyTenants()) {
    const Status status = sort_service.RegisterTenant(tenant);
    if (!status.ok()) return "RegisterTenant: " + status.ToString();
  }
  const service::ServiceStats stats = sort_service.Run(trace);

  if (stats.backlog_high_water > config.queue_capacity) {
    return "backlog high water " + std::to_string(stats.backlog_high_water) +
           " exceeds queue capacity " +
           std::to_string(config.queue_capacity);
  }
  if (stats.jobs_submitted != trace.TotalJobs()) {
    return "submitted " + std::to_string(stats.jobs_submitted) + " of " +
           std::to_string(trace.TotalJobs()) + " trace jobs";
  }
  if (stats.jobs_completed + stats.jobs_failed + stats.jobs_shed !=
      stats.jobs_submitted) {
    return "terminal states do not add up to submissions";
  }
  for (const service::JobRecord& record : sort_service.jobs()) {
    const std::string label =
        "ticket " + std::to_string(record.ticket) + " (" +
        record.request.Name() + "): ";
    switch (record.state) {
      case service::JobState::kQueued:
      case service::JobState::kDeferred:
        return label + "not terminal after RunUntilIdle";
      case service::JobState::kCompleted:
        if (!record.verified || !record.status.ok()) {
          return label + "completed but unverified or non-OK status";
        }
        if (record.keys_digest == 0 || record.shard < 0 ||
            record.batch < 0) {
          return label + "completed without digest or placement";
        }
        if (record.service_us <= 0.0 || record.virtual_latency_us <= 0.0) {
          return label + "completed without a virtual-time latency";
        }
        if (record.request.job_class == core::JobClass::kExtSort &&
            record.ids_digest == 0) {
          return label + "extsort completed without a rowid digest";
        }
        break;
      case service::JobState::kFailed:
        if (record.status.ok()) return label + "failed with an OK status";
        break;
      case service::JobState::kShed:
        if (record.status.ok()) return label + "shed with an OK status";
        if (record.service_us != 0.0) {
          return label + "shed but charged virtual service time";
        }
        if (record.deferrals != 0 &&
            record.deferrals <= config.max_deferrals) {
          return label + "shed before exhausting its deferral budget";
        }
        break;
    }
  }
  uint64_t ledger_total = 0;
  for (const std::string& name : sort_service.tenant_names()) {
    const service::TenantLedger ledger = sort_service.tenant_ledger(name);
    ledger_total +=
        ledger.jobs_completed + ledger.jobs_failed + ledger.jobs_shed;
    // Quota bookkeeping: with endurance off there is only wear epoch 0, so
    // the epoch charge must equal the tenant ledger's write cost (both sum
    // the same per-job costs; addition order may differ, hence the
    // tolerance).
    const double charged = sort_service.tenant_epoch_cost(name, 0);
    const double expected = ledger.cost.write_cost;
    if (std::abs(charged - expected) >
        1e-6 * std::max(1.0, std::abs(expected))) {
      return "tenant " + name + " epoch-0 charge " + std::to_string(charged) +
             " != ledger write cost " + std::to_string(expected);
    }
  }
  if (ledger_total != stats.jobs_submitted) {
    return "tenant ledgers cover " + std::to_string(ledger_total) + " of " +
           std::to_string(stats.jobs_submitted) + " jobs";
  }
  for (int s = 0; s < config.shards; ++s) {
    const service::WearPlacement* wear = sort_service.shard_wear(s);
    if (wear == nullptr) return "shard wear ledger missing";
    if (wear->quarantine_events() !=
        sort_service.shard_health(s).regions_quarantined) {
      return "shard " + std::to_string(s) +
             ": wear policy saw a different quarantine count than the "
             "health monitor";
    }
  }
  return std::string();
}

// On an invariant violation, shrink to a minimal failing trace and print
// the replay recipe; the assertion message is the whole repro.
void ExpectInvariantsHold(const PropertyConfig& config, uint64_t seed,
                          double extsort_fraction = 0.0) {
  const service::RequestTrace trace =
      service::MakeRandomTrace(PropertyGen(seed, extsort_fraction));
  const std::string failure = CheckInvariants(config, seed, trace);
  if (failure.empty()) return;
  const service::RequestTrace minimal = service::ShrinkTrace(
      trace, [&](const service::RequestTrace& variant) {
        return !CheckInvariants(config, seed, variant).empty();
      });
  FAIL() << "invariant violated at gen seed " << seed << ": " << failure
         << "\nminimal failing trace (" << minimal.TotalJobs()
         << " jobs):\n"
         << service::TraceToString(minimal);
}

TEST(ServiceProperty, AdmissionInvariantsOnRandomBurstyTraces) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ExpectInvariantsHold(PropertyConfig{}, seed);
  }
}

TEST(ServiceProperty, InvariantsHoldThroughMidFlightQuarantine) {
  PropertyConfig config;
  config.storm = true;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ExpectInvariantsHold(config, seed);
  }
}

TEST(ServiceProperty, QuarantineStormActuallyQuarantines) {
  PropertyConfig config;
  config.storm = true;
  service::SortService sort_service(MakeOptions(config, 1));
  for (const service::TenantSpec& tenant : PropertyTenants()) {
    ASSERT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  sort_service.Run(service::MakeRandomTrace(PropertyGen(1)));
  EXPECT_GT(sort_service.stats().quarantined_regions, 0u)
      << "the 90% hot region was never quarantined — the storm is not "
         "reaching the canary probes";
}

TEST(ServiceProperty, OverflowingSubmissionsAreShedAtTheGate) {
  PropertyConfig config;
  config.queue_capacity = 4;
  service::SortService sort_service(MakeOptions(config, 3));
  for (const service::TenantSpec& tenant : PropertyTenants()) {
    ASSERT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  service::SortRequest request;
  request.tenant = "hot";
  request.n = 32;
  for (uint64_t i = 0; i < 12; ++i) {
    request.seed = i + 1;
    ASSERT_TRUE(sort_service.Submit(request).ok());
  }
  EXPECT_EQ(sort_service.stats().jobs_shed, 8u);
  EXPECT_EQ(sort_service.stats().backlog_high_water, 4u);
  sort_service.RunUntilIdle();
  EXPECT_EQ(sort_service.stats().jobs_completed, 4u);
  for (const service::JobRecord& record : sort_service.jobs()) {
    if (record.state == service::JobState::kShed) {
      EXPECT_FALSE(record.status.ok());
    }
  }
}

TEST(ServiceProperty, StarvedJobsShedHonestlyAfterDeferralBudget) {
  PropertyConfig config;
  config.shards = 1;
  config.shard_batch_quota = 1;
  config.queue_capacity = 16;
  config.max_deferrals = 2;
  service::SortService sort_service(MakeOptions(config, 5));
  for (const service::TenantSpec& tenant : PropertyTenants()) {
    ASSERT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  service::SortRequest request;
  request.tenant = "cold";
  request.n = 24;
  for (uint64_t i = 0; i < 10; ++i) {
    request.seed = i + 1;
    ASSERT_TRUE(sort_service.Submit(request).ok());
  }
  sort_service.RunUntilIdle();
  const service::ServiceStats& stats = sort_service.stats();
  EXPECT_EQ(stats.jobs_completed + stats.jobs_failed + stats.jobs_shed,
            10u);
  EXPECT_GT(stats.jobs_shed, 0u) << "a 1-job-per-batch shard draining a "
                                    "10-job queue must exhaust some "
                                    "deferral budgets";
  EXPECT_GT(stats.deferral_events, 0u);
  for (const service::JobRecord& record : sort_service.jobs()) {
    if (record.state == service::JobState::kShed) {
      EXPECT_GT(record.deferrals, config.max_deferrals);
      EXPECT_FALSE(record.status.ok());
    }
  }
}

TEST(ServiceProperty, MixedClassInvariantsOnRandomTraces) {
  // The tentpole invariants: in-memory and extsort jobs share one
  // admission queue, and backlog / terminal-state / ledger / quota
  // bookkeeping must hold across both classes.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ExpectInvariantsHold(PropertyConfig{}, seed, /*extsort_fraction=*/0.4);
  }
}

TEST(ServiceProperty, MixedTraceActuallyMixesClasses) {
  const service::RequestTrace trace =
      service::MakeRandomTrace(PropertyGen(2, /*extsort_fraction=*/0.4));
  size_t in_memory = 0;
  size_t extsort_jobs = 0;
  for (const auto& burst : trace.bursts) {
    for (const service::SortRequest& request : burst) {
      (request.job_class == core::JobClass::kExtSort ? extsort_jobs
                                                     : in_memory)++;
    }
  }
  EXPECT_GT(in_memory, 0u);
  EXPECT_GT(extsort_jobs, 0u);
}

TEST(ServiceProperty, QuotaExhaustionShedsHonestly) {
  // A tenant whose Eq. 2 write-cost quota is far below one job's cost:
  // the first batch runs (charges land at merge-on-report), every later
  // admission sheds with an honest quota status.
  PropertyConfig config;
  service::SortService sort_service(MakeOptions(config, 7));
  std::vector<service::TenantSpec> tenants = PropertyTenants();
  tenants[0].epoch_cost_quota = 1.0;  // Simulated ns; one job costs more.
  for (const service::TenantSpec& tenant : tenants) {
    ASSERT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  service::SortRequest request;
  request.tenant = "hot";
  request.n = 64;
  request.seed = 1;
  ASSERT_TRUE(sort_service.Submit(request).ok());
  sort_service.RunUntilIdle();
  ASSERT_EQ(sort_service.stats().jobs_completed, 1u);
  EXPECT_GT(sort_service.tenant_epoch_cost("hot", 0), 1.0);

  for (uint64_t i = 0; i < 3; ++i) {
    request.seed = i + 2;
    request.job_class = i == 0 ? core::JobClass::kExtSort
                               : core::JobClass::kInMemory;
    ASSERT_TRUE(sort_service.Submit(request).ok());
  }
  sort_service.RunUntilIdle();
  const service::ServiceStats& stats = sort_service.stats();
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.jobs_shed, 3u);
  EXPECT_EQ(stats.jobs_shed_quota, 3u);
  for (const service::JobRecord& record : sort_service.jobs()) {
    if (record.state != service::JobState::kShed) continue;
    EXPECT_FALSE(record.status.ok());
    EXPECT_NE(record.status.message().find("quota"), std::string::npos)
        << record.status.ToString();
  }
  // Other tenants are unaffected by hot's quota.
  request.tenant = "cold";
  request.job_class = core::JobClass::kInMemory;
  request.seed = 99;
  ASSERT_TRUE(sort_service.Submit(request).ok());
  sort_service.RunUntilIdle();
  EXPECT_EQ(sort_service.stats().jobs_completed, 2u);
}

TEST(ServiceProperty, ExtsortLeaseContentionDefersNotDrops) {
  // A tenant budget that holds exactly one lease: concurrent extsort jobs
  // serialize through deferrals and all still complete.
  PropertyConfig config;
  config.shards = 4;
  service::SortService sort_service(MakeOptions(config, 9));
  std::vector<service::TenantSpec> tenants = PropertyTenants();
  tenants[0].extsort_budget_bytes = tenants[0].extsort.lease_bytes;
  for (const service::TenantSpec& tenant : tenants) {
    ASSERT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  service::SortRequest request;
  request.tenant = "hot";
  request.job_class = core::JobClass::kExtSort;
  request.n = 48;
  for (uint64_t i = 0; i < 3; ++i) {
    request.seed = i + 1;
    ASSERT_TRUE(sort_service.Submit(request).ok());
  }
  sort_service.RunUntilIdle();
  const service::ServiceStats& stats = sort_service.stats();
  EXPECT_EQ(stats.jobs_completed, 3u);
  EXPECT_EQ(stats.jobs_shed, 0u);
  EXPECT_GT(stats.deferral_events, 0u)
      << "three one-lease jobs should not all fit one batch";
  // At most one extsort job per batch under a single lease.
  std::map<int, int> per_batch;
  for (const service::JobRecord& record : sort_service.jobs()) {
    EXPECT_LE(++per_batch[record.batch], 1)
        << "two extsort jobs shared batch " << record.batch
        << " despite a one-lease budget";
  }
}

// A failure that only reproduces with an extsort job must shrink to a
// single extsort job — the demote-to-in-memory shrink family keeps the
// class only while it matters.
TEST(ServiceProperty, ShrinkTraceKeepsExtsortOnlyWhileItMatters) {
  service::TraceGenOptions gen = PropertyGen(13, /*extsort_fraction=*/0.5);
  gen.max_n = 512;
  const service::RequestTrace trace = service::MakeRandomTrace(gen);
  const auto predicate = [](const service::RequestTrace& variant) {
    for (const auto& burst : variant.bursts) {
      for (const service::SortRequest& request : burst) {
        if (request.job_class == core::JobClass::kExtSort &&
            request.n >= 64) {
          return true;
        }
      }
    }
    return false;
  };
  ASSERT_TRUE(predicate(trace));
  const service::RequestTrace minimal =
      service::ShrinkTrace(trace, predicate, /*max_steps=*/2048);
  ASSERT_EQ(minimal.TotalJobs(), 1u) << service::TraceToString(minimal);
  const service::SortRequest& survivor = minimal.bursts[0][0];
  EXPECT_EQ(survivor.job_class, core::JobClass::kExtSort);
  EXPECT_GE(survivor.n, 64u);
  EXPECT_LT(survivor.n, 128u);
}

// The shrinker itself: an artificial predicate ("some job has n >= 64")
// must reduce a many-job trace to a single job whose n cannot halve
// without the predicate flipping.
TEST(ServiceProperty, ShrinkTraceFindsMinimalFailingTrace) {
  service::TraceGenOptions gen = PropertyGen(11);
  gen.max_n = 512;
  const service::RequestTrace trace = service::MakeRandomTrace(gen);
  const auto predicate = [](const service::RequestTrace& variant) {
    for (const auto& burst : variant.bursts) {
      for (const service::SortRequest& request : burst) {
        if (request.n >= 64) return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(predicate(trace));
  const service::RequestTrace minimal =
      service::ShrinkTrace(trace, predicate, /*max_steps=*/512);
  EXPECT_EQ(minimal.TotalJobs(), 1u) << service::TraceToString(minimal);
  const service::SortRequest& survivor = minimal.bursts[0][0];
  EXPECT_GE(survivor.n, 64u);
  EXPECT_LT(survivor.n, 128u) << "halving once more should have flipped "
                                 "the predicate";
}

}  // namespace
}  // namespace approxmem
