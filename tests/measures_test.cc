#include "sortedness/measures.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "common/random.h"
#include "sortedness/inversions.h"
#include "sortedness/shape.h"

namespace approxmem::sortedness {
namespace {

TEST(InversionsTest, SortedHasZero) {
  EXPECT_EQ(InversionCount({1, 2, 3, 4}), 0u);
  EXPECT_EQ(InversionCount({}), 0u);
  EXPECT_EQ(InversionCount({7}), 0u);
}

TEST(InversionsTest, ReversedHasMaximum) {
  EXPECT_EQ(InversionCount({4, 3, 2, 1}), 6u);
  EXPECT_DOUBLE_EQ(InversionRatio({4, 3, 2, 1}), 1.0);
}

TEST(InversionsTest, KnownSmallCases) {
  EXPECT_EQ(InversionCount({2, 1}), 1u);
  EXPECT_EQ(InversionCount({3, 1, 2}), 2u);
  EXPECT_EQ(InversionCount({1, 3, 2, 4}), 1u);
  EXPECT_EQ(InversionCount({5, 5, 5}), 0u);  // Equal pairs don't invert.
}

TEST(InversionsTest, MatchesBruteForce) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint32_t> values(1 + rng.UniformInt(80));
    for (auto& v : values) v = static_cast<uint32_t>(rng.UniformInt(16));
    uint64_t brute = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      for (size_t j = i + 1; j < values.size(); ++j) {
        if (values[i] > values[j]) ++brute;
      }
    }
    EXPECT_EQ(InversionCount(values), brute);
  }
}

TEST(InversionsTest, RandomSequenceRatioNearHalf) {
  Rng rng(2);
  std::vector<uint32_t> values(5000);
  for (auto& v : values) v = rng.NextU32();
  EXPECT_NEAR(InversionRatio(values), 0.5, 0.03);
}

TEST(MeasuresTest, IsSorted) {
  EXPECT_TRUE(IsSorted({}));
  EXPECT_TRUE(IsSorted({1}));
  EXPECT_TRUE(IsSorted({1, 1, 2}));
  EXPECT_FALSE(IsSorted({2, 1}));
}

TEST(MeasuresTest, ReportConsistency) {
  const std::vector<uint32_t> values = {1, 6, 35, 33, 96, 928, 168, 528};
  const SortednessReport report = Measure(values);
  EXPECT_EQ(report.n, 8u);
  EXPECT_EQ(report.rem, 2u);
  EXPECT_DOUBLE_EQ(report.rem_ratio, 0.25);
  EXPECT_EQ(report.inversions, InversionCount(values));
  EXPECT_FALSE(report.sorted);

  std::vector<uint32_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const SortednessReport sorted_report = Measure(sorted);
  EXPECT_TRUE(sorted_report.sorted);
  EXPECT_EQ(sorted_report.rem, 0u);
  EXPECT_EQ(sorted_report.inversions, 0u);
}

TEST(MeasuresTest, ReportFromArrayIncludesErrorRate) {
  approx::ApproxMemory::Options options;
  options.calibration_trials = 20000;
  approx::ApproxMemory memory(options);
  approx::ApproxArrayU32 array = memory.NewApproxArray(5000, 0.12);
  Rng rng(3);
  for (size_t i = 0; i < array.size(); ++i) array.Set(i, rng.NextU32());
  const SortednessReport report = Measure(array);
  EXPECT_GT(report.error_rate, 0.1);
  EXPECT_DOUBLE_EQ(report.error_rate, array.ErrorRate());
}

TEST(MeasuresTest, IsPermutationOf) {
  EXPECT_TRUE(IsPermutationOf({3, 1, 2}, {1, 2, 3}));
  EXPECT_TRUE(IsPermutationOf({}, {}));
  EXPECT_FALSE(IsPermutationOf({1, 2}, {1, 2, 3}));
  EXPECT_FALSE(IsPermutationOf({1, 1, 2}, {1, 2, 2}));
}

TEST(ShapeTest, SortedSequenceHasNoDisplacement) {
  const ShapeSummary summary = SummarizeShape({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(summary.displaced_fraction, 0.0);
  EXPECT_DOUBLE_EQ(summary.deviation_max, 0.0);
}

TEST(ShapeTest, RandomSequenceIsMostlyDisplaced) {
  Rng rng(4);
  std::vector<uint32_t> values(10000);
  for (auto& v : values) v = rng.NextU32();
  const ShapeSummary summary = SummarizeShape(values);
  EXPECT_GT(summary.displaced_fraction, 0.99);
  EXPECT_GT(summary.deviation_p50, 0.05);
}

TEST(ShapeTest, SparklineOfSortedDataIsMonotone) {
  std::vector<uint32_t> values(6400);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<uint32_t>(i * (4294967295.0 / values.size()));
  }
  const std::string line = ShapeSparkline(values, 64);
  ASSERT_EQ(line.size(), 64u);
  EXPECT_TRUE(std::is_sorted(line.begin(), line.end()));
  EXPECT_EQ(line.front(), '0');
  EXPECT_EQ(line.back(), '9');
}

TEST(ShapeTest, CsvExportDownsamples) {
  std::vector<uint32_t> values(10000, 1);
  const std::string path = ::testing::TempDir() + "/shape_test.csv";
  ASSERT_TRUE(WriteShapeCsv(values, path, 100));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  int lines = 0;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') ++lines;
  }
  std::fclose(f);
  EXPECT_GE(lines, 100);
  EXPECT_LE(lines, 102);  // Header + ~100 samples.
}

}  // namespace
}  // namespace approxmem::sortedness
