#include "sort/sort_common.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "common/random.h"
#include "refine/cost_model.h"
#include "sort/mergesort.h"
#include "sort/quicksort.h"
#include "sort/radix_lsd.h"
#include "sortedness/measures.h"

namespace approxmem::sort {
namespace {

class SortFixture : public ::testing::Test {
 protected:
  SortFixture() : memory_(MakeOptions()) {}

  static approx::ApproxMemory::Options MakeOptions() {
    approx::ApproxMemory::Options options;
    options.calibration_trials = 20000;
    options.seed = 5;
    return options;
  }

  // Sorts `keys` on precise memory with `algorithm`; returns output and
  // checks ids follow their keys.
  std::vector<uint32_t> SortPrecise(const std::vector<uint32_t>& keys,
                                    const AlgorithmId& algorithm,
                                    bool with_ids) {
    approx::ApproxArrayU32 key_array = memory_.NewPreciseArray(keys.size());
    key_array.Store(keys);
    approx::ApproxArrayU32 id_array =
        memory_.NewPreciseArray(with_ids ? keys.size() : 0);
    for (size_t i = 0; i < keys.size() && with_ids; ++i) {
      id_array.Set(i, static_cast<uint32_t>(i));
    }
    SortSpec spec;
    spec.keys = &key_array;
    spec.ids = with_ids ? &id_array : nullptr;
    spec.alloc_key_buffer = [this](size_t n) {
      return memory_.NewPreciseArray(n);
    };
    spec.alloc_id_buffer = spec.alloc_key_buffer;
    Rng rng(7);
    const Status status = RunSort(spec, algorithm, rng);
    EXPECT_TRUE(status.ok()) << status.ToString();

    const std::vector<uint32_t> out = key_array.Snapshot();
    if (with_ids) {
      const std::vector<uint32_t> ids = id_array.Snapshot();
      for (size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(out[i], keys[ids[i]]) << "id does not follow key at " << i;
      }
    }
    return out;
  }

  approx::ApproxMemory memory_;
};

TEST_F(SortFixture, AllAlgorithmsSortRandomInput) {
  Rng rng(1);
  const std::vector<uint32_t> keys = UniformKeys(3000, rng);
  std::vector<uint32_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  for (const AlgorithmId& algorithm : StudyAlgorithms()) {
    EXPECT_EQ(SortPrecise(keys, algorithm, /*with_ids=*/false), expected)
        << algorithm.Name();
  }
  for (int bits = 3; bits <= 6; ++bits) {
    EXPECT_EQ(SortPrecise(keys, {SortKind::kLsdHistogram, bits}, false),
              expected);
    EXPECT_EQ(SortPrecise(keys, {SortKind::kMsdHistogram, bits}, false),
              expected);
  }
}

TEST_F(SortFixture, AllAlgorithmsCarryPayload) {
  Rng rng(2);
  const std::vector<uint32_t> keys = UniformKeys(1500, rng);
  std::vector<uint32_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  for (const AlgorithmId& algorithm : HeadlineAlgorithms()) {
    EXPECT_EQ(SortPrecise(keys, algorithm, /*with_ids=*/true), expected)
        << algorithm.Name();
  }
}

TEST_F(SortFixture, EdgeCaseInputs) {
  const std::vector<std::vector<uint32_t>> inputs = {
      {},                          // Empty.
      {42},                        // Singleton.
      {2, 1},                      // Pair.
      {7, 7, 7, 7, 7, 7},          // All equal.
      {5, 4, 3, 2, 1, 0},          // Reversed.
      {0, 1, 2, 3, 4, 5},          // Already sorted.
      {0xFFFFFFFF, 0, 0xFFFFFFFF, 1},  // Extremes and duplicates.
  };
  for (const auto& input : inputs) {
    std::vector<uint32_t> expected = input;
    std::sort(expected.begin(), expected.end());
    for (const AlgorithmId& algorithm : StudyAlgorithms()) {
      EXPECT_EQ(SortPrecise(input, algorithm, /*with_ids=*/true), expected)
          << algorithm.Name() << " on input size " << input.size();
    }
  }
}

TEST_F(SortFixture, MergesortRespectsBaseRunOption) {
  Rng rng(3);
  const std::vector<uint32_t> keys = UniformKeys(500, rng);
  approx::ApproxArrayU32 key_array = memory_.NewPreciseArray(keys.size());
  key_array.Store(keys);
  SortSpec spec;
  spec.keys = &key_array;
  spec.alloc_key_buffer = [this](size_t n) {
    return memory_.NewPreciseArray(n);
  };
  MergesortOptions options;
  options.base_run_elements = 16;
  ASSERT_TRUE(Mergesort(spec, options).ok());
  EXPECT_TRUE(sortedness::IsSorted(key_array.Snapshot()));
}

TEST_F(SortFixture, ValidateSpecRejectsMissingPieces) {
  SortSpec empty;
  EXPECT_FALSE(ValidateSpec(empty, false).ok());

  approx::ApproxArrayU32 keys = memory_.NewPreciseArray(4);
  approx::ApproxArrayU32 ids = memory_.NewPreciseArray(3);  // Wrong size.
  SortSpec mismatched;
  mismatched.keys = &keys;
  mismatched.ids = &ids;
  EXPECT_FALSE(ValidateSpec(mismatched, false).ok());

  SortSpec no_buffers;
  no_buffers.keys = &keys;
  EXPECT_FALSE(ValidateSpec(no_buffers, true).ok());
  EXPECT_TRUE(ValidateSpec(no_buffers, false).ok());
}

TEST_F(SortFixture, RadixRejectsBadBitWidths) {
  approx::ApproxArrayU32 keys = memory_.NewPreciseArray(4);
  SortSpec spec;
  spec.keys = &keys;
  spec.alloc_key_buffer = [this](size_t n) {
    return memory_.NewPreciseArray(n);
  };
  LsdRadixOptions options;
  options.bits = 0;
  EXPECT_FALSE(LsdRadixSort(spec, options).ok());
  options.bits = 17;
  EXPECT_FALSE(LsdRadixSort(spec, options).ok());
}

TEST_F(SortFixture, AlgorithmNamesMatchPaperLabels) {
  EXPECT_EQ((AlgorithmId{SortKind::kQuicksort, 0}).Name(), "Quicksort");
  EXPECT_EQ((AlgorithmId{SortKind::kMergesort, 0}).Name(), "Mergesort");
  EXPECT_EQ((AlgorithmId{SortKind::kLsdRadix, 3}).Name(), "3-bit LSD");
  EXPECT_EQ((AlgorithmId{SortKind::kMsdRadix, 6}).Name(), "6-bit MSD");
  EXPECT_EQ((AlgorithmId{SortKind::kLsdHistogram, 4}).Name(),
            "4-bit hist-LSD");
}

TEST_F(SortFixture, WriteCountsTrackAlphaModel) {
  Rng rng(4);
  const size_t n = 4096;
  const std::vector<uint32_t> keys = UniformKeys(n, rng);
  for (const AlgorithmId& algorithm : HeadlineAlgorithms()) {
    approx::ApproxArrayU32 key_array = memory_.NewPreciseArray(n);
    key_array.Store(keys);
    key_array.ResetStats();
    approx::MemoryStats scratch;
    SortSpec spec;
    spec.keys = &key_array;
    spec.alloc_key_buffer = [this, &scratch](size_t size) {
      approx::ApproxArrayU32 buffer = memory_.NewPreciseArray(size);
      buffer.SetStatsSink(&scratch);
      return buffer;
    };
    Rng sort_rng(8);
    ASSERT_TRUE(RunSort(spec, algorithm, sort_rng).ok());
    const double measured = static_cast<double>(
        key_array.stats().word_writes + scratch.word_writes);
    const double predicted = refine::AlphaWrites(algorithm, n);
    EXPECT_GT(measured, 0.5 * predicted) << algorithm.Name();
    EXPECT_LT(measured, 2.0 * predicted) << algorithm.Name();
  }
}

TEST_F(SortFixture, HistogramRadixWritesLessThanQueueRadix) {
  Rng rng(5);
  const size_t n = 8192;
  const std::vector<uint32_t> keys = UniformKeys(n, rng);
  auto count_writes = [&](const AlgorithmId& algorithm) {
    approx::ApproxArrayU32 key_array = memory_.NewPreciseArray(n);
    key_array.Store(keys);
    key_array.ResetStats();
    approx::MemoryStats scratch;
    SortSpec spec;
    spec.keys = &key_array;
    spec.alloc_key_buffer = [this, &scratch](size_t size) {
      approx::ApproxArrayU32 buffer = memory_.NewPreciseArray(size);
      buffer.SetStatsSink(&scratch);
      return buffer;
    };
    Rng sort_rng(9);
    EXPECT_TRUE(RunSort(spec, algorithm, sort_rng).ok());
    return key_array.stats().word_writes + scratch.word_writes;
  };
  // Appendix B: histogram-based partitioning halves the writes per pass.
  EXPECT_LT(count_writes({SortKind::kLsdHistogram, 6}),
            count_writes({SortKind::kLsdRadix, 6}));
  EXPECT_LT(count_writes({SortKind::kMsdHistogram, 6}),
            count_writes({SortKind::kMsdRadix, 6}));
}

}  // namespace
}  // namespace approxmem::sort
