// End-to-end scenarios crossing every module: engine sweeps that reproduce
// the paper's qualitative claims at reduced scale, trace-driven replay of a
// real sort through the cache+PCM substrate, and exact-vs-fast agreement of
// the whole pipeline.
#include <algorithm>

#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "core/engine.h"
#include "core/workload.h"
#include "mem/memory_system.h"
#include "refine/cost_model.h"
#include "sort/sort_common.h"

namespace approxmem {
namespace {

core::EngineOptions FastOptions() {
  core::EngineOptions options;
  options.calibration_trials = 20000;
  options.seed = 77;
  return options;
}

TEST(IntegrationTest, Figure4Shape_SortednessDegradesWithT) {
  core::ApproxSortEngine engine(FastOptions());
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 50000, 1);
  const sort::AlgorithmId quicksort{sort::SortKind::kQuicksort, 0};
  double previous_rem = -1.0;
  double previous_wr = -1.0;
  for (double t : {0.03, 0.055, 0.08, 0.1}) {
    const auto result = engine.SortApproxOnly(keys, quicksort, t);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->sortedness.rem_ratio, previous_rem) << "t=" << t;
    EXPECT_GE(result->write_reduction, previous_wr) << "t=" << t;
    previous_rem = result->sortedness.rem_ratio;
    previous_wr = result->write_reduction;
  }
  // The end points of Figure 4: nearly sorted at 0.03, chaos at 0.1.
  EXPECT_GT(previous_rem, 0.3);
}

TEST(IntegrationTest, Figure9Shape_ReductionPeaksInTheMiddle) {
  core::ApproxSortEngine engine(FastOptions());
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 100000, 2);
  const sort::AlgorithmId lsd3{sort::SortKind::kLsdRadix, 3};
  const auto low = engine.SortApproxRefine(keys, lsd3, 0.03);
  const auto mid = engine.SortApproxRefine(keys, lsd3, 0.055);
  const auto high = engine.SortApproxRefine(keys, lsd3, 0.09);
  ASSERT_TRUE(low.ok() && mid.ok() && high.ok());
  EXPECT_GT(mid->write_reduction, low->write_reduction);
  EXPECT_GT(mid->write_reduction, high->write_reduction);
  EXPECT_GT(mid->write_reduction, 0.0);
  EXPECT_LT(high->write_reduction, 0.0);
}

TEST(IntegrationTest, Figure10Shape_GainGrowsWithN) {
  core::ApproxSortEngine engine(FastOptions());
  const sort::AlgorithmId quicksort{sort::SortKind::kQuicksort, 0};
  double previous = -1e9;
  for (size_t n : {1600u, 16000u, 160000u}) {
    const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 3);
    const auto outcome = engine.SortApproxRefine(keys, quicksort, 0.055);
    ASSERT_TRUE(outcome.ok());
    EXPECT_GT(outcome->write_reduction, previous) << "n=" << n;
    previous = outcome->write_reduction;
  }
}

TEST(IntegrationTest, CostModelTracksMeasurementNearSweetSpot) {
  core::ApproxSortEngine engine(FastOptions());
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 200000, 4);
  for (const auto& algorithm :
       {sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
        sort::AlgorithmId{sort::SortKind::kLsdRadix, 3}}) {
    const auto outcome = engine.SortApproxRefine(keys, algorithm, 0.055);
    ASSERT_TRUE(outcome.ok());
    EXPECT_NEAR(outcome->write_reduction,
                outcome->predicted_write_reduction, 0.06)
        << algorithm.Name();
  }
}

TEST(IntegrationTest, TraceReplayThroughMemorySystem) {
  // Run a real quicksort against traced arrays, then replay the trace
  // through the cache hierarchy + banked PCM substrate.
  mem::TraceBuffer trace;
  approx::ApproxMemory::Options options;
  options.calibration_trials = 20000;
  options.trace = &trace;
  approx::ApproxMemory memory(options);

  const size_t n = 20000;
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 5);
  approx::ApproxArrayU32 array = memory.NewPreciseArray(n);
  array.Store(keys);
  sort::SortSpec spec;
  spec.keys = &array;
  Rng rng(6);
  ASSERT_TRUE(
      sort::RunSort(spec, {sort::SortKind::kQuicksort, 0}, rng).ok());

  ASSERT_GT(trace.size(), 2 * n);
  mem::MemorySystem system = mem::MemorySystem::PaperDefault();
  const mem::MemorySystemStats stats = system.Replay(trace);
  EXPECT_EQ(stats.reads + stats.writes, trace.size());
  EXPECT_EQ(stats.writes, trace.write_count());
  // Write-through: every write is serviced by PCM at 1us.
  EXPECT_DOUBLE_EQ(stats.total_write_latency_ns,
                   static_cast<double>(trace.write_count()) * 1000.0);
  // The sort has locality: most reads hit cache.
  EXPECT_GT(stats.l1_read_hits + stats.l2_read_hits + stats.l3_read_hits,
            stats.memory_reads);
}

TEST(IntegrationTest, ExactModeRefineAgreesWithFastMode) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 7);
  auto run = [&keys](approx::SimulationMode mode) {
    core::EngineOptions options = FastOptions();
    options.mode = mode;
    core::ApproxSortEngine engine(options);
    const auto outcome = engine.SortApproxRefine(
        keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0}, 0.055);
    EXPECT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->refine.verified());
    return outcome->write_reduction;
  };
  const double fast = run(approx::SimulationMode::kFast);
  const double exact = run(approx::SimulationMode::kExact);
  EXPECT_NEAR(fast, exact, 0.03);
}

TEST(IntegrationTest, SkewedAndNearlySortedWorkloadsAlsoVerify) {
  core::ApproxSortEngine engine(FastOptions());
  for (const auto workload :
       {core::WorkloadKind::kSkewed, core::WorkloadKind::kNearlySorted,
        core::WorkloadKind::kReversed}) {
    const auto keys = core::MakeKeys(workload, 30000, 8);
    for (const auto& algorithm : sort::HeadlineAlgorithms()) {
      std::vector<uint32_t> out;
      const auto outcome =
          engine.SortApproxRefine(keys, algorithm, 0.055, &out);
      ASSERT_TRUE(outcome.ok());
      EXPECT_TRUE(outcome->refine.verified())
          << algorithm.Name() << " on " << core::WorkloadName(workload);
      EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    }
  }
}

}  // namespace
}  // namespace approxmem
