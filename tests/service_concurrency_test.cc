// Stress matrix for the multi-tenant sort service's determinism contract:
// for a fixed trace and shard count, every job's output digests, cost
// ledger, and placement, and every tenant's cumulative ledger must be
// byte-identical at threads 1/2/4/8 — the threads-1 run IS the serial
// replay the others are compared against. The matrix crosses tenants on
// all four registered backends with clean and fault-storm substrates, and
// is part of the TSan CI job (service-stress), so a data race between
// shards fails loudly rather than as a flaky digest.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "mlc/calibration.h"
#include "service/sort_service.h"
#include "testing/differential_oracle.h"
#include "testing/fault_injection.h"

namespace approxmem {
namespace {

constexpr uint64_t kSeed = 7;
constexpr uint64_t kCalibrationTrials = 5000;

// One calibration cache for the whole binary: each T calibrates once no
// matter how many service instances the matrix spins up.
std::shared_ptr<mlc::CalibrationCache> SharedCache() {
  static std::shared_ptr<mlc::CalibrationCache> cache =
      std::make_shared<mlc::CalibrationCache>(
          mlc::MlcConfig{}, kCalibrationTrials, kSeed ^ 0xca11b7a7e5eedULL);
  return cache;
}

uint64_t CostDigest(const approx::MemoryStats& stats) {
  uint64_t h = testing::Fnv1a64(&stats.word_reads, sizeof(stats.word_reads));
  h = testing::Fnv1a64(&stats.word_writes, sizeof(stats.word_writes), h);
  h = testing::Fnv1a64(&stats.write_cost, sizeof(stats.write_cost), h);
  h = testing::Fnv1a64(&stats.read_cost, sizeof(stats.read_cost), h);
  h = testing::Fnv1a64(&stats.corrupted_writes,
                       sizeof(stats.corrupted_writes), h);
  h = testing::Fnv1a64(&stats.pv_iterations, sizeof(stats.pv_iterations), h);
  h = testing::Fnv1a64(&stats.degraded_regions,
                       sizeof(stats.degraded_regions), h);
  return h;
}

/// Everything about one job that must replay identically across thread
/// counts. Wall-clock latency is deliberately absent — but the
/// virtual-time latency is included: it is computed from the cost ledgers
/// alone, so it must replay bit-exactly too.
struct JobSummary {
  service::JobState state = service::JobState::kQueued;
  int shard = -1;
  int batch = -1;
  size_t attempts = 0;
  bool verified = false;
  uint64_t keys_digest = 0;
  uint64_t ids_digest = 0;
  uint64_t cost_digest = 0;
  double virtual_latency_us = 0.0;
  double service_us = 0.0;
  uint64_t bytes_spilled = 0;
  size_t merge_passes = 0;

  bool operator==(const JobSummary& other) const {
    return state == other.state && shard == other.shard &&
           batch == other.batch && attempts == other.attempts &&
           verified == other.verified && keys_digest == other.keys_digest &&
           ids_digest == other.ids_digest &&
           cost_digest == other.cost_digest &&
           virtual_latency_us == other.virtual_latency_us &&
           service_us == other.service_us &&
           bytes_spilled == other.bytes_spilled &&
           merge_passes == other.merge_passes;
  }
};

struct MatrixRun {
  std::vector<JobSummary> jobs;
  std::map<std::string, uint64_t> ledger_digests;
  service::ServiceStats stats;
};

std::vector<service::TenantSpec> MatrixTenants() {
  std::vector<service::TenantSpec> tenants(4);
  tenants[0].name = "alice";
  tenants[0].backend = "mlc-pcm";
  tenants[1].name = "bob";
  tenants[1].backend = "mlc-pcm-banked";
  tenants[1].knob = 0.045;
  tenants[2].name = "carol";
  tenants[2].backend = "spintronic";
  tenants[3].name = "dan";
  tenants[3].backend = "dram-precise";
  tenants[3].resilient = false;
  return tenants;
}

service::RequestTrace MatrixTrace() {
  service::TraceGenOptions gen;
  gen.seed = kSeed;
  gen.tenants = {"alice", "bob", "carol", "dan"};
  gen.bursts = 4;
  gen.max_burst_jobs = 6;
  gen.min_n = 16;
  gen.max_n = 128;
  // Mix in out-of-core jobs: both plan classes must uphold the same
  // replay contract through one admission queue.
  gen.extsort_fraction = 0.3;
  return service::MakeRandomTrace(gen);
}

MatrixRun RunMatrix(int threads, bool inject) {
  service::ServiceOptions options;
  options.shards = 3;
  options.threads = threads;
  options.seed = kSeed;
  options.calibration_trials = kCalibrationTrials;
  options.shared_calibration = SharedCache();
  if (inject) {
    options.fault_hook_factory =
        [](int shard) -> std::unique_ptr<approx::MemoryFaultHook> {
      return std::make_unique<testing::FaultInjector>(
          testing::FaultPlan::ApproxStorm(
              kSeed ^ (0x5eedULL + static_cast<uint64_t>(shard))));
    };
  }
  service::SortService sort_service(options);
  for (const service::TenantSpec& tenant : MatrixTenants()) {
    EXPECT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  MatrixRun run;
  run.stats = sort_service.Run(MatrixTrace());
  for (const service::JobRecord& record : sort_service.jobs()) {
    JobSummary summary;
    summary.state = record.state;
    summary.shard = record.shard;
    summary.batch = record.batch;
    summary.attempts = record.attempts;
    summary.verified = record.verified;
    summary.keys_digest = record.keys_digest;
    summary.ids_digest = record.ids_digest;
    summary.cost_digest = CostDigest(record.cost);
    summary.virtual_latency_us = record.virtual_latency_us;
    summary.service_us = record.service_us;
    summary.bytes_spilled = record.bytes_spilled;
    summary.merge_passes = record.merge_passes;
    run.jobs.push_back(summary);
  }
  for (const std::string& name : sort_service.tenant_names()) {
    run.ledger_digests[name] = sort_service.tenant_ledger(name).Digest();
  }
  return run;
}

void ExpectIdentical(const MatrixRun& reference, const MatrixRun& run,
                     int threads) {
  ASSERT_EQ(reference.jobs.size(), run.jobs.size());
  for (size_t i = 0; i < reference.jobs.size(); ++i) {
    EXPECT_TRUE(reference.jobs[i] == run.jobs[i])
        << "job " << i << " diverged at threads=" << threads;
  }
  EXPECT_EQ(reference.ledger_digests, run.ledger_digests)
      << "tenant ledger diverged at threads=" << threads;
  EXPECT_EQ(reference.stats.batches, run.stats.batches);
  EXPECT_EQ(reference.stats.jobs_completed, run.stats.jobs_completed);
  EXPECT_EQ(reference.stats.jobs_failed, run.stats.jobs_failed);
  EXPECT_EQ(reference.stats.jobs_shed, run.stats.jobs_shed);
  EXPECT_EQ(reference.stats.deferral_events, run.stats.deferral_events);
}

TEST(ServiceConcurrency, ThreadMatrixMatchesSerialReplay) {
  const MatrixRun serial = RunMatrix(1, /*inject=*/false);
  EXPECT_GT(serial.stats.jobs_completed, 0u);
  EXPECT_EQ(serial.stats.jobs_failed, 0u);
  for (const int threads : {2, 4, 8}) {
    ExpectIdentical(serial, RunMatrix(threads, /*inject=*/false), threads);
  }
}

TEST(ServiceConcurrency, FaultStormThreadMatrixMatchesSerialReplay) {
  const MatrixRun serial = RunMatrix(1, /*inject=*/true);
  for (const int threads : {2, 4, 8}) {
    ExpectIdentical(serial, RunMatrix(threads, /*inject=*/true), threads);
  }
}

TEST(ServiceConcurrency, RepeatedRunsAreBitIdentical) {
  const MatrixRun first = RunMatrix(4, /*inject=*/false);
  ExpectIdentical(first, RunMatrix(4, /*inject=*/false), 4);
}

// Completed jobs are not just internally consistent: their key digest must
// equal the digest of std::sort over the job's generated input.
TEST(ServiceConcurrency, CompletedJobsMatchGoldenSort) {
  service::ServiceOptions options;
  options.shards = 3;
  options.threads = 4;
  options.seed = kSeed;
  options.calibration_trials = kCalibrationTrials;
  options.shared_calibration = SharedCache();
  service::SortService sort_service(options);
  for (const service::TenantSpec& tenant : MatrixTenants()) {
    ASSERT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  sort_service.Run(MatrixTrace());
  size_t completed = 0;
  for (const service::JobRecord& record : sort_service.jobs()) {
    if (record.state != service::JobState::kCompleted) continue;
    ++completed;
    std::vector<uint32_t> golden = core::MakeKeys(
        record.request.workload, record.request.n, record.request.seed);
    std::sort(golden.begin(), golden.end());
    const uint64_t golden_digest =
        testing::Fnv1a64(golden.data(), golden.size() * sizeof(uint32_t));
    EXPECT_EQ(record.keys_digest, golden_digest)
        << "ticket " << record.ticket << " (" << record.request.Name()
        << ") is not the sorted input";
    EXPECT_TRUE(record.verified);
    EXPECT_TRUE(record.status.ok());
  }
  EXPECT_GT(completed, 0u);
}

}  // namespace
}  // namespace approxmem
