#include "extsort/disk_model.h"

#include <vector>

#include <gtest/gtest.h>

namespace approxmem::extsort {
namespace {

TEST(SimulatedDiskTest, AppendAndReadRoundTrip) {
  SimulatedDisk disk;
  const int file = disk.CreateFile();
  disk.Append(file, {1, 2, 3, 4, 5});
  EXPECT_EQ(disk.FileSize(file), 5u);
  EXPECT_EQ(disk.Read(file, 1, 3), (std::vector<uint32_t>{2, 3, 4}));
  EXPECT_EQ(disk.Read(file, 4, 100), (std::vector<uint32_t>{5}));  // Clamped.
  EXPECT_TRUE(disk.Read(file, 10, 5).empty());
}

TEST(SimulatedDiskTest, BlockAccounting) {
  DiskConfig config;
  config.block_elements = 4;
  SimulatedDisk disk(config);
  const int file = disk.CreateFile();
  disk.Append(file, {1, 2, 3, 4, 5});  // Covers blocks 0 and 1.
  EXPECT_EQ(disk.stats().blocks_written, 2u);
  disk.Append(file, {6});  // Rewrites the partial block 1.
  EXPECT_EQ(disk.stats().blocks_written, 3u);
  disk.Read(file, 0, 6);  // Blocks 0 and 1.
  EXPECT_EQ(disk.stats().blocks_read, 2u);
  disk.Read(file, 3, 2);  // Straddles blocks 0 and 1.
  EXPECT_EQ(disk.stats().blocks_read, 4u);
}

TEST(SimulatedDiskTest, LatencyFollowsBlocks) {
  DiskConfig config;
  config.block_elements = 8;
  config.read_latency_us_per_block = 10.0;
  config.write_latency_us_per_block = 25.0;
  SimulatedDisk disk(config);
  const int file = disk.CreateFile();
  disk.Append(file, std::vector<uint32_t>(16, 7));  // 2 blocks.
  disk.Read(file, 0, 16);
  EXPECT_DOUBLE_EQ(disk.stats().write_time_us, 50.0);
  EXPECT_DOUBLE_EQ(disk.stats().read_time_us, 20.0);
  EXPECT_DOUBLE_EQ(disk.stats().TotalTimeUs(), 70.0);
}

TEST(SimulatedDiskTest, CostScalesLinearlyWithAppendedBlocks) {
  DiskConfig config;
  config.block_elements = 4;
  config.write_latency_us_per_block = 7.5;
  SimulatedDisk disk(config);
  const int file = disk.CreateFile();
  for (int i = 0; i < 10; ++i) {
    disk.Append(file, {1, 2, 3, 4});  // Exactly one full block each.
  }
  EXPECT_EQ(disk.stats().blocks_written, 10u);
  EXPECT_DOUBLE_EQ(disk.stats().write_time_us, 75.0);
  EXPECT_DOUBLE_EQ(disk.stats().read_time_us, 0.0);
}

TEST(SimulatedDiskTest, PartialTailBlockIsChargedOnEveryAppend) {
  // Sub-block appends each rewrite the partial tail block: 1 block per
  // append, never free — the cost-model property that makes unbuffered
  // element-at-a-time spilling visibly expensive.
  DiskConfig config;
  config.block_elements = 8;
  config.write_latency_us_per_block = 1.0;
  SimulatedDisk disk(config);
  const int file = disk.CreateFile();
  for (uint32_t i = 0; i < 8; ++i) disk.Append(file, {i});
  EXPECT_EQ(disk.FileSize(file), 8u);
  EXPECT_EQ(disk.stats().blocks_written, 8u);
  EXPECT_DOUBLE_EQ(disk.stats().write_time_us, 8.0);
  // One buffered append of the same 8 elements costs a single block.
  SimulatedDisk buffered(config);
  const int other = buffered.CreateFile();
  buffered.Append(other, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(buffered.stats().blocks_written, 1u);
}

TEST(SimulatedDiskTest, ReadCostIndependentOfAlignmentWithinBlocks) {
  DiskConfig config;
  config.block_elements = 4;
  config.read_latency_us_per_block = 2.0;
  SimulatedDisk disk(config);
  const int file = disk.CreateFile();
  disk.Append(file, std::vector<uint32_t>(12, 3));  // 3 blocks.
  disk.ResetStats();
  disk.Read(file, 0, 4);  // Exactly block 0.
  EXPECT_EQ(disk.stats().blocks_read, 1u);
  disk.Read(file, 3, 2);  // Straddles blocks 0-1: charged both.
  EXPECT_EQ(disk.stats().blocks_read, 3u);
  disk.Read(file, 4, 8);  // Blocks 1-2.
  EXPECT_EQ(disk.stats().blocks_read, 5u);
  EXPECT_DOUBLE_EQ(disk.stats().read_time_us, 10.0);
}

TEST(SimulatedDiskTest, ResetStatsClearsAccountingNotContents) {
  SimulatedDisk disk;
  const int file = disk.CreateFile();
  disk.Append(file, {1, 2, 3});
  disk.ResetStats();
  EXPECT_EQ(disk.stats().blocks_written, 0u);
  EXPECT_DOUBLE_EQ(disk.stats().TotalTimeUs(), 0.0);
  EXPECT_EQ(disk.FileSize(file), 3u);
  EXPECT_EQ(disk.PeekData(file), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(SimulatedDiskTest, MultipleFilesAreIndependent) {
  SimulatedDisk disk;
  const int a = disk.CreateFile();
  const int b = disk.CreateFile();
  disk.Append(a, {1});
  disk.Append(b, {2, 3});
  EXPECT_EQ(disk.FileSize(a), 1u);
  EXPECT_EQ(disk.FileSize(b), 2u);
  disk.Truncate(a);
  EXPECT_EQ(disk.FileSize(a), 0u);
  EXPECT_EQ(disk.FileSize(b), 2u);
}

TEST(SimulatedDiskTest, ValidateRejectsDegenerateConfigs) {
  DiskConfig config;
  config.block_elements = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = DiskConfig();
  config.read_latency_us_per_block = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(DiskConfig().Validate().ok());
}

}  // namespace
}  // namespace approxmem::extsort
