#include "common/table_printer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace approxmem {
namespace {

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(TablePrinter::FmtPercent(0.1234, 1), "12.3%");
  EXPECT_EQ(TablePrinter::FmtInt(-42), "-42");
}

TEST(TablePrinterTest, PrintsAlignedColumns) {
  TablePrinter table("Test table");
  table.SetHeader({"T", "value"});
  table.AddRow({"0.055", "1"});
  table.AddRow({"0.1", "12345"});

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  table.Print(f);
  std::rewind(f);
  char buffer[4096] = {};
  const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  ASSERT_GT(read, 0u);
  const std::string out(buffer);
  EXPECT_NE(out.find("== Test table =="), std::string::npos);
  EXPECT_NE(out.find("T      value"), std::string::npos);
  EXPECT_NE(out.find("0.055  1"), std::string::npos);
  EXPECT_NE(out.find("0.1    12345"), std::string::npos);
}

TEST(TablePrinterTest, WritesCsv) {
  TablePrinter table("csv");
  table.SetHeader({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  const std::string path = ::testing::TempDir() + "/table_printer_test.csv";
  ASSERT_TRUE(table.WriteCsv(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinterTest, CsvFailsOnBadPath) {
  TablePrinter table("csv");
  EXPECT_FALSE(table.WriteCsv("/nonexistent-dir/x/y.csv"));
}

}  // namespace
}  // namespace approxmem
