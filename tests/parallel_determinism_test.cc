// The parallel experiment layer's contract: for a fixed seed, calibrations
// and whole sweep results are bit-identical for every thread count, and the
// shared CalibrationCache stays consistent under concurrent ForT calls.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/workload.h"
#include "mlc/calibration.h"

namespace approxmem {
namespace {

std::string SerializeToString(const mlc::CellCalibration& calib) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  calib.Serialize(f);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string text(static_cast<size_t>(size), '\0');
  EXPECT_EQ(std::fread(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
  return text;
}

TEST(ParallelCalibrationTest, BitIdenticalAcrossThreadCounts) {
  const mlc::MlcConfig config = mlc::MlcConfig().WithT(0.055);
  ThreadPool pool4(4);
  const mlc::CellCalibration serial =
      mlc::CellCalibration::Run(config, 20000, /*seed=*/7, nullptr);
  const mlc::CellCalibration parallel =
      mlc::CellCalibration::Run(config, 20000, /*seed=*/7, &pool4);
  // Full state — every CDF bucket included — must match bit for bit.
  EXPECT_EQ(SerializeToString(serial), SerializeToString(parallel));

  ThreadPool pool2(2);
  const mlc::CellCalibration two_threads =
      mlc::CellCalibration::Run(config, 20000, /*seed=*/7, &pool2);
  EXPECT_EQ(SerializeToString(serial), SerializeToString(two_threads));
}

TEST(ParallelCalibrationTest, SeedAndTrialCountChangeTheResult) {
  const mlc::MlcConfig config = mlc::MlcConfig().WithT(0.055);
  const mlc::CellCalibration base =
      mlc::CellCalibration::Run(config, 20000, /*seed=*/7, nullptr);
  const mlc::CellCalibration other_seed =
      mlc::CellCalibration::Run(config, 20000, /*seed=*/8, nullptr);
  EXPECT_NE(SerializeToString(base), SerializeToString(other_seed));
}

TEST(ParallelCalibrationTest, CacheEntriesAreCallOrderIndependent) {
  const mlc::MlcConfig config;
  mlc::CalibrationCache forward(config, 5000, /*seed=*/21);
  mlc::CalibrationCache backward(config, 5000, /*seed=*/21);
  const std::vector<double> ts = {0.03, 0.055, 0.08, 0.1};
  for (size_t i = 0; i < ts.size(); ++i) forward.ForT(ts[i]);
  for (size_t i = ts.size(); i-- > 0;) backward.ForT(ts[i]);
  for (const double t : ts) {
    EXPECT_EQ(SerializeToString(forward.ForT(t)),
              SerializeToString(backward.ForT(t)))
        << "t=" << t;
  }
}

TEST(CalibrationCacheConcurrencyTest, ConcurrentForTIsOnceAndConsistent) {
  const mlc::MlcConfig config;
  ThreadPool pool(4);
  mlc::CalibrationCache cache(config, 3000, /*seed=*/99, &pool);
  const std::vector<double> ts = {0.03, 0.055, 0.08, 0.1};
  constexpr int kThreads = 8;
  std::vector<const mlc::CellCalibration*> seen(
      static_cast<size_t>(kThreads) * ts.size(), nullptr);
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      // Each thread walks the grid from a different starting point, so
      // every T sees concurrent first requests across the run.
      for (size_t i = 0; i < ts.size(); ++i) {
        const size_t slot = (static_cast<size_t>(th) + i) % ts.size();
        seen[static_cast<size_t>(th) * ts.size() + slot] =
            &cache.ForT(ts[slot]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every thread got the same object per T: calibrated exactly once.
  for (size_t slot = 0; slot < ts.size(); ++slot) {
    for (int th = 1; th < kThreads; ++th) {
      EXPECT_EQ(seen[static_cast<size_t>(th) * ts.size() + slot],
                seen[slot])
          << "t=" << ts[slot];
    }
  }
  // And the concurrent cache matches a serial cache with the same seed.
  mlc::CalibrationCache serial(config, 3000, /*seed=*/99);
  for (const double t : ts) {
    EXPECT_EQ(SerializeToString(cache.ForT(t)),
              SerializeToString(serial.ForT(t)))
        << "t=" << t;
  }
}

// One sweep cell of a miniature (T x algorithm) grid, formatted the way the
// bench binaries build their CSV rows.
std::vector<std::string> RunMiniSweep(int threads) {
  const std::vector<double> ts = {0.045, 0.055};
  const std::vector<sort::AlgorithmId> algorithms = {
      {sort::SortKind::kLsdRadix, 3},
      {sort::SortKind::kQuicksort, 0},
      {sort::SortKind::kMergesort, 0}};
  ThreadPool pool(threads);
  auto cache = std::make_shared<mlc::CalibrationCache>(
      mlc::MlcConfig(), 5000, /*seed=*/42 ^ 0xca11b7a7e5eedULL, &pool);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 2000, 42);

  std::vector<std::string> rows(ts.size() * algorithms.size());
  pool.ParallelFor(0, rows.size(), [&](size_t cell) {
    const size_t row = cell / algorithms.size();
    const size_t col = cell % algorithms.size();
    core::EngineOptions options;
    options.seed = 42 ^ (row * 1000 + col + 1);
    options.calibration_trials = 5000;
    options.shared_calibration = cache;
    core::ApproxSortEngine engine(options);
    const auto outcome =
        engine.SortApproxRefine(keys, algorithms[col], ts[row]);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g,%d", outcome->write_reduction,
                  outcome->refine.verified() ? 1 : 0);
    rows[cell] = buffer;
  });
  return rows;
}

TEST(ParallelSweepTest, RowsAreIdenticalAcrossThreadCounts) {
  const std::vector<std::string> serial = RunMiniSweep(1);
  const std::vector<std::string> parallel = RunMiniSweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
  }
  // Sanity: the sweep produced verified, non-trivial results.
  for (const std::string& row : serial) {
    EXPECT_NE(row.find(",1"), std::string::npos) << row;
  }
}

}  // namespace
}  // namespace approxmem
