// Differential tests: engine workloads vs. the precise golden model,
// clean and under injected faults.
#include "testing/differential_oracle.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dbops/aggregate.h"
#include "dbops/join.h"
#include "extsort/disk_model.h"
#include "extsort/external_sort.h"
#include "testing/fault_injection.h"
#include "testing/golden.h"

namespace approxmem::testing {
namespace {

OracleCase BaseCase() {
  OracleCase oracle_case;
  oracle_case.seed = 4242;
  oracle_case.n = 220;
  oracle_case.paper_t = 55;
  oracle_case.algorithm = sort::AlgorithmId{sort::SortKind::kLsdRadix, 4};
  oracle_case.shape = InputShape::kUniform;
  return oracle_case;
}

TEST(differential_oracle, CleanRunsPassForEveryKindAndT) {
  for (const sort::SortKind kind :
       {sort::SortKind::kQuicksort, sort::SortKind::kMergesort,
        sort::SortKind::kLsdRadix, sort::SortKind::kMsdRadix,
        sort::SortKind::kLsdHistogram, sort::SortKind::kMsdHistogram}) {
    for (const int paper_t : {0, 55, 100}) {
      OracleCase oracle_case = BaseCase();
      oracle_case.algorithm = sort::AlgorithmId{kind, 5};
      oracle_case.paper_t = paper_t;
      oracle_case.shape = InputShape::kZipf;
      const OracleReport report =
          RunDifferentialOracle(oracle_case, OracleOptions{});
      EXPECT_TRUE(report.ok) << report.FailureSummary();
    }
  }
}

TEST(differential_oracle, TraceConservationHoldsOnCleanRun) {
  OracleOptions options;
  options.check_trace_conservation = true;
  const OracleReport report = RunDifferentialOracle(BaseCase(), options);
  EXPECT_TRUE(report.ok) << report.FailureSummary();
}

TEST(differential_oracle, SameCaseTwiceGivesIdenticalDigest) {
  OracleCase oracle_case = BaseCase();
  oracle_case.paper_t = 100;
  oracle_case.shape = InputShape::kAdversarialPivot;
  const OracleReport first =
      RunDifferentialOracle(oracle_case, OracleOptions{});
  const OracleReport second =
      RunDifferentialOracle(oracle_case, OracleOptions{});
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.rem_estimate, second.rem_estimate);
}

TEST(differential_oracle, ApproxDomainFaultStormNeverBreaksRefine) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    OracleCase oracle_case = BaseCase();
    oracle_case.seed = seed * 1000003;
    oracle_case.algorithm = sort::AlgorithmId{
        seed % 2 == 0 ? sort::SortKind::kMsdHistogram
                      : sort::SortKind::kQuicksort,
        6};
    FaultPlan plan = FaultPlan::ApproxStorm(oracle_case.seed);
    FaultInjector injector(plan);
    OracleOptions options;
    options.injector = &injector;
    const OracleReport report = RunDifferentialOracle(oracle_case, options);
    EXPECT_TRUE(report.ok) << report.FailureSummary();
  }
}

// The oracle's own negative test: a stuck-at cell inside precise memory
// violates the refine guarantee's one assumption, and the oracle MUST
// notice. A harness that stays green here would be vacuous.
TEST(differential_oracle, StuckAtInPreciseMemoryIsCaught) {
  OracleCase oracle_case = BaseCase();
  FaultPlan plan;
  plan.seed = oracle_case.seed;
  StuckAtFault stuck;
  stuck.domain = FaultDomain::kPreciseOnly;
  stuck.mask = 0x10u;
  stuck.value = 0x10u;
  plan.stuck_at.push_back(stuck);
  FaultInjector injector(plan);
  OracleOptions options;
  options.injector = &injector;

  const OracleReport report = RunDifferentialOracle(oracle_case, options);
  EXPECT_FALSE(report.ok);
  EXPECT_GT(injector.injected_write_faults() + injector.injected_read_faults(),
            0u);
  // Stuck-at forcing is idempotent on values that were read back through
  // the same stuck region, so the measured write ledgers can stay clean;
  // the corruption must surface through the output invariants instead.
  bool output_invariant_failed = false;
  for (const OracleFailure& failure : report.failures) {
    if (failure.invariant == "golden-keys" ||
        failure.invariant == "ids-permutation" ||
        failure.invariant == "refine-verified") {
      output_invariant_failed = true;
    }
  }
  EXPECT_TRUE(output_invariant_failed) << report.FailureSummary();
}

// Non-idempotent corruption (random bit flips on precise writes) must be
// flagged by the cost-accounting invariant: the ledgers' corrupted-write
// counters are the precise domain's canary.
TEST(differential_oracle, DriftBurstInPreciseMemoryBreaksCostAccounting) {
  OracleCase oracle_case = BaseCase();
  FaultPlan plan;
  plan.seed = oracle_case.seed;
  DriftBurstFault burst;
  burst.domain = FaultDomain::kPreciseOnly;
  burst.start_write = 0;
  burst.length = 1u << 20;  // Effectively the whole run.
  burst.probability = 0.05;
  plan.drift_bursts.push_back(burst);
  FaultInjector injector(plan);
  OracleOptions options;
  options.injector = &injector;

  const OracleReport report = RunDifferentialOracle(oracle_case, options);
  EXPECT_FALSE(report.ok);
  EXPECT_GT(injector.injected_write_faults(), 0u);
  bool accounting_failed = false;
  for (const OracleFailure& failure : report.failures) {
    if (failure.invariant == "precise-cost-accounting") {
      accounting_failed = true;
    }
  }
  EXPECT_TRUE(accounting_failed) << report.FailureSummary();
}

// ---- dbops differentials: exact results under approx-domain faults ----

TEST(differential_oracle, GroupByMatchesGoldenUnderApproxFaults) {
  const size_t n = 500;
  const std::vector<uint32_t> keys = MakeInput(InputShape::kZipf, n, 31);
  const std::vector<uint32_t> values = MakeInput(InputShape::kUniform, n, 32);

  FaultPlan plan = FaultPlan::ApproxStorm(77);
  FaultInjector injector(plan);
  core::EngineOptions engine_options;
  engine_options.calibration_trials = 5000;
  engine_options.fault_hook = &injector;
  core::ApproxSortEngine engine(engine_options);

  dbops::GroupByOptions options;
  const auto result = dbops::GroupByAggregate(engine, keys, values, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->verified);

  const std::vector<dbops::GroupRow> golden = GoldenGroupBy(keys, values);
  ASSERT_EQ(result->groups.size(), golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(result->groups[i].group_key, golden[i].group_key);
    EXPECT_EQ(result->groups[i].count, golden[i].count);
    EXPECT_EQ(result->groups[i].sum, golden[i].sum);
    EXPECT_EQ(result->groups[i].min, golden[i].min);
    EXPECT_EQ(result->groups[i].max, golden[i].max);
  }
}

TEST(differential_oracle, JoinMatchesGoldenUnderApproxFaults) {
  const std::vector<uint32_t> left = MakeInput(InputShape::kDupHeavy, 150, 41);
  const std::vector<uint32_t> right = MakeInput(InputShape::kDupHeavy, 120, 42);

  FaultPlan plan = FaultPlan::ApproxStorm(99);
  FaultInjector injector(plan);
  core::EngineOptions engine_options;
  engine_options.calibration_trials = 5000;
  engine_options.fault_hook = &injector;
  core::ApproxSortEngine engine(engine_options);

  dbops::JoinOptions options;
  const auto result = dbops::SortMergeJoin(engine, left, right, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->verified);
  EXPECT_FALSE(result->truncated);

  std::vector<dbops::JoinPair> pairs = result->pairs;
  CanonicalizeJoinPairs(pairs);
  const std::vector<dbops::JoinPair> golden = GoldenJoinPairs(left, right);
  ASSERT_EQ(pairs.size(), golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(pairs[i].left_row, golden[i].left_row);
    EXPECT_EQ(pairs[i].right_row, golden[i].right_row);
  }
}

TEST(differential_oracle, ExternalSortMatchesGoldenUnderApproxFaults) {
  const size_t n = 5000;
  const std::vector<uint32_t> keys = MakeInput(InputShape::kUniform, n, 51);

  FaultPlan plan = FaultPlan::ApproxStorm(123);
  FaultInjector injector(plan);
  core::EngineOptions engine_options;
  engine_options.calibration_trials = 5000;
  engine_options.fault_hook = &injector;
  core::ApproxSortEngine engine(engine_options);

  extsort::AsyncDevice device;
  const int input_file = device.CreateFile();
  device.Wait(device.SubmitWrite(input_file, keys, 0.0));
  device.ResetClock();

  extsort::ExternalSortOptions options;
  options.run_elements = 512;
  options.merge_fan_in = 4;
  options.merge_buffer_elements = 64;
  int output_file = -1;
  const auto report =
      extsort::ExternalSort(engine, device, input_file, options, &output_file);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified);
  EXPECT_GT(report->initial_runs, 1u);

  std::vector<uint32_t> golden = keys;
  std::sort(golden.begin(), golden.end());
  EXPECT_EQ(device.PeekData(output_file), golden);
}

}  // namespace
}  // namespace approxmem::testing
