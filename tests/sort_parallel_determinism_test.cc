// The intra-sort parallelism contract: for a fixed seed, the striped radix
// engine produces identical final keys/IDs, write counts, corruption
// counts, and cost ledgers at every sort_threads setting — on both the MLC
// PCM and spintronic backends, and in both LSD arena modes. Only
// wall-clock may change with the thread count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/workload.h"
#include "sort/sort_common.h"

namespace approxmem {
namespace {

// Large enough for several stripes (8192 / 2048 = 4), so parallel runs
// genuinely split the passes instead of inlining a single stripe.
constexpr size_t kN = 8192;

struct RunSummary {
  std::vector<uint32_t> keys;
  std::vector<uint32_t> ids;
  uint64_t approx_writes = 0;
  uint64_t approx_corrupted = 0;
  double approx_write_cost = 0.0;
  uint64_t refine_writes = 0;
  double total_write_cost = 0.0;
  size_t rem_estimate = 0;
  double write_reduction = 0.0;
};

RunSummary RunOnce(const std::string& backend, double knob,
                   const sort::AlgorithmId& algorithm, int sort_threads,
                   bool sqrt_arena, ThreadPool* sort_pool = nullptr) {
  core::EngineOptions options;
  options.backend = backend;
  options.seed = 77;
  options.calibration_trials = 5000;
  options.sort_threads = sort_threads;
  options.sort_pool = sort_pool;
  options.lsd_sqrt_arena = sqrt_arena;
  core::ApproxSortEngine engine(options);
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, kN, 7);

  RunSummary summary;
  const auto outcome = engine.SortApproxRefine(input, algorithm, knob,
                                               &summary.keys, &summary.ids);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (!outcome.ok()) return summary;
  EXPECT_TRUE(outcome->refine.verified());

  const approx::MemoryStats approx_side =
      outcome->refine.prep_approx + outcome->refine.sort_approx;
  summary.approx_writes = approx_side.word_writes;
  summary.approx_corrupted = approx_side.corrupted_writes;
  summary.approx_write_cost = approx_side.write_cost;
  summary.refine_writes = outcome->refine.RefineWriteOps();
  summary.total_write_cost = outcome->refine.TotalWriteCost();
  summary.rem_estimate = outcome->refine.rem_estimate;
  summary.write_reduction = outcome->write_reduction;
  return summary;
}

// Every comparison is exact — including the floating-point cost ledgers,
// which must accumulate in the same order regardless of thread count.
void ExpectIdentical(const RunSummary& serial, const RunSummary& parallel) {
  EXPECT_EQ(serial.keys, parallel.keys);
  EXPECT_EQ(serial.ids, parallel.ids);
  EXPECT_EQ(serial.approx_writes, parallel.approx_writes);
  EXPECT_EQ(serial.approx_corrupted, parallel.approx_corrupted);
  EXPECT_EQ(serial.approx_write_cost, parallel.approx_write_cost);
  EXPECT_EQ(serial.refine_writes, parallel.refine_writes);
  EXPECT_EQ(serial.total_write_cost, parallel.total_write_cost);
  EXPECT_EQ(serial.rem_estimate, parallel.rem_estimate);
  EXPECT_EQ(serial.write_reduction, parallel.write_reduction);
}

TEST(SortThreadsDeterminismTest, MatrixIdenticalAcrossThreadCounts) {
  const struct {
    const char* backend;
    double knob;
  } backends[] = {{"mlc-pcm", 0.07}, {"spintronic", 1e-5}};
  const sort::AlgorithmId algorithms[] = {
      {sort::SortKind::kLsdRadix, 3},
      {sort::SortKind::kLsdHistogram, 6},
  };

  for (const auto& b : backends) {
    for (const sort::AlgorithmId& algorithm : algorithms) {
      for (const bool sqrt_arena : {false, true}) {
        const RunSummary serial =
            RunOnce(b.backend, b.knob, algorithm, /*sort_threads=*/1,
                    sqrt_arena);
        // The operating points are hot enough that corruption actually
        // happens — the parity below is not vacuous.
        EXPECT_GT(serial.approx_corrupted, 0u) << b.backend;
        // 0 = hardware concurrency, whatever that is on the CI host.
        for (const int threads : {2, 4, 8, 0}) {
          std::ostringstream label;
          label << b.backend << " " << algorithm.Name()
                << (sqrt_arena ? " sqrt" : " full")
                << " sort_threads=" << threads;
          SCOPED_TRACE(label.str());
          ExpectIdentical(serial, RunOnce(b.backend, b.knob, algorithm,
                                          threads, sqrt_arena));
        }
      }
    }
  }
}

TEST(SortThreadsDeterminismTest, ExternalPoolMatchesOwnedPool) {
  const sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};
  const RunSummary serial =
      RunOnce("mlc-pcm", 0.07, algorithm, /*sort_threads=*/1,
              /*sqrt_arena=*/false);
  ThreadPool pool(4);
  ExpectIdentical(serial, RunOnce("mlc-pcm", 0.07, algorithm,
                                  /*sort_threads=*/1, /*sqrt_arena=*/false,
                                  &pool));
}

TEST(SortThreadsDeterminismTest, SqrtArenaStillSortsButChangesTraffic) {
  const sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};
  const RunSummary full = RunOnce("mlc-pcm", 0.07, algorithm,
                                  /*sort_threads=*/1, /*sqrt_arena=*/false);
  const RunSummary sqrt = RunOnce("mlc-pcm", 0.07, algorithm,
                                  /*sort_threads=*/1, /*sqrt_arena=*/true);
  // Both modes end exactly sorted (the refine guarantee), but they are
  // different algorithms over approximate memory: the recycled chunk arena
  // rewrites the same scratch region every stripe, so the RNG stream
  // assignment — and hence the corruption pattern — legitimately differs.
  EXPECT_EQ(full.keys, sqrt.keys);
  EXPECT_EQ(full.ids.size(), sqrt.ids.size());
  EXPECT_EQ(full.approx_writes, sqrt.approx_writes);
}

}  // namespace
}  // namespace approxmem
