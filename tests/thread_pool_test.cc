#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace approxmem {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kItems = 10000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.ParallelFor(0, kItems, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, RespectsBeginOffset) {
  ThreadPool pool(3);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, 200, [&](size_t i) { sum += i; });
  size_t expected = 0;
  for (size_t i = 100; i < 200; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ResultsLandInSlotOrderRegardlessOfSchedule) {
  // Cells write into per-index slots, so collected output is in index order
  // no matter which thread finished first — the sweep-grid invariant.
  ThreadPool pool(4);
  std::vector<size_t> out(512, 0);
  pool.ParallelFor(0, out.size(), [&](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(7, 8, [&](size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<size_t> order;
  pool.ParallelFor(0, 16, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // Inline execution preserves index order.
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 1000,
                       [&](size_t i) {
                         ++executed;
                         if (i == 3) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Iterations not yet started when the exception hit are skipped.
  EXPECT_LE(executed.load(), 1000);
  // The pool survives and is reusable after an exception.
  std::atomic<int> after{0};
  pool.ParallelFor(0, 100, [&](size_t) { ++after; });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPoolTest, ExceptionInSerialPoolPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 4,
                                [](size_t i) {
                                  if (i == 2) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 32;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(0, kOuter, [&](size_t outer) {
    // A worker calling ParallelFor on the same pool must not deadlock; the
    // nested loop runs inline on that worker.
    pool.ParallelFor(0, kInner, [&](size_t inner) {
      ++hits[outer * kInner + inner];
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "cell " << i;
  }
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(0, 8,
                                [&](size_t outer) {
                                  pool.ParallelFor(0, 8, [&](size_t inner) {
                                    if (outer == 5 && inner == 5) {
                                      throw std::runtime_error("nested");
                                    }
                                  });
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromDistinctThreads) {
  // CalibrationCache::ForT issues ParallelFors from arbitrary caller
  // threads; the pool must serve them concurrently without losing work.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kItems = 2000;
  std::vector<std::atomic<size_t>> sums(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(0, kItems, [&, c](size_t i) { sums[c] += i + 1; });
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c].load(), kItems * (kItems + 1) / 2);
  }
}

TEST(ThreadPoolTest, HardwareDefaultHasAtLeastOneThread) {
  ThreadPool pool;  // threads <= 0 resolves to hardware concurrency.
  EXPECT_GE(pool.thread_count(), 1);
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

}  // namespace
}  // namespace approxmem
