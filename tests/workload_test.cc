#include "core/workload.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace approxmem::core {
namespace {

TEST(WorkloadTest, ParseRoundTripsAllKinds) {
  for (const WorkloadKind kind :
       {WorkloadKind::kUniform, WorkloadKind::kSkewed,
        WorkloadKind::kNearlySorted, WorkloadKind::kReversed,
        WorkloadKind::kAllEqual}) {
    const auto parsed = ParseWorkloadKind(WorkloadName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(WorkloadTest, ParseRejectsUnknown) {
  EXPECT_FALSE(ParseWorkloadKind("gaussian").ok());
}

TEST(WorkloadTest, DeterministicInSeed) {
  const auto a = MakeKeys(WorkloadKind::kUniform, 1000, 5);
  const auto b = MakeKeys(WorkloadKind::kUniform, 1000, 5);
  const auto c = MakeKeys(WorkloadKind::kUniform, 1000, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(WorkloadTest, SizesAreRespected) {
  for (const WorkloadKind kind :
       {WorkloadKind::kUniform, WorkloadKind::kSkewed,
        WorkloadKind::kNearlySorted, WorkloadKind::kReversed,
        WorkloadKind::kAllEqual}) {
    EXPECT_EQ(MakeKeys(kind, 0, 1).size(), 0u);
    EXPECT_EQ(MakeKeys(kind, 123, 1).size(), 123u);
  }
}

TEST(WorkloadTest, ReversedIsDecreasing) {
  const auto keys = MakeKeys(WorkloadKind::kReversed, 500, 2);
  EXPECT_TRUE(std::is_sorted(keys.rbegin(), keys.rend()));
}

TEST(WorkloadTest, AllEqualHasOneValue) {
  const auto keys = MakeKeys(WorkloadKind::kAllEqual, 100, 3);
  EXPECT_EQ(std::set<uint32_t>(keys.begin(), keys.end()).size(), 1u);
}

TEST(WorkloadTest, SkewedHasManyDuplicates) {
  const auto keys = MakeKeys(WorkloadKind::kSkewed, 10000, 4);
  std::set<uint32_t> distinct(keys.begin(), keys.end());
  EXPECT_LT(distinct.size(), 5000u);
}

TEST(WorkloadTest, NearlySortedIsNearlySorted) {
  const auto keys = MakeKeys(WorkloadKind::kNearlySorted, 10000, 5);
  size_t descents = 0;
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] < keys[i - 1]) ++descents;
  }
  EXPECT_LT(descents, keys.size() / 10);
}

}  // namespace
}  // namespace approxmem::core
