// End-to-end tests of the endurance subsystem inside the sort service:
// the aging determinism contract (retirement timelines, SLO ledgers, and
// every job digest bit-identical at threads 1/2/4/8), graceful service
// degradation (knob tightening, honest exhaustion sheds), and the
// engine-level invariance of wear-escalated errors across sort_threads.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "approx/endurance.h"
#include "core/engine.h"
#include "core/workload.h"
#include "mlc/calibration.h"
#include "service/sort_service.h"
#include "testing/differential_oracle.h"

namespace approxmem {
namespace {

constexpr uint64_t kSeed = 11;
constexpr uint64_t kCalibrationTrials = 5000;
constexpr double kBankedKnob = 0.045;

std::shared_ptr<mlc::CalibrationCache> SharedCache() {
  static std::shared_ptr<mlc::CalibrationCache> cache =
      std::make_shared<mlc::CalibrationCache>(
          mlc::MlcConfig{}, kCalibrationTrials, kSeed ^ 0xca11b7a7e5eedULL);
  return cache;
}

std::vector<service::TenantSpec> AgingTenants() {
  std::vector<service::TenantSpec> tenants(2);
  tenants[0].name = "alice";
  tenants[0].backend = "mlc-pcm";
  tenants[1].name = "bob";
  tenants[1].backend = "mlc-pcm-banked";
  tenants[1].knob = kBankedKnob;
  return tenants;
}

service::RequestTrace AgingTrace(int bursts) {
  service::TraceGenOptions gen;
  gen.seed = kSeed;
  gen.tenants = {"alice", "bob"};
  gen.bursts = bursts;
  gen.max_burst_jobs = 5;
  gen.min_n = 32;
  gen.max_n = 128;
  return service::MakeRandomTrace(gen);
}

/// Service configuration whose banks wear out partway through the trace:
/// small substrate (2 shards x 2 banks), accelerated aging, and a budget
/// sized so the first retirements land mid-trace with jobs still
/// completing afterwards. All values are deterministic tuning, pinned by
/// the digest assertions below.
service::ServiceOptions AgingOptions(int threads, double bank_budget_pv) {
  service::ServiceOptions options;
  options.shards = 2;
  options.threads = threads;
  options.seed = kSeed;
  options.calibration_trials = kCalibrationTrials;
  options.shared_calibration = SharedCache();
  options.admission.queue_capacity = 256;
  options.wear.banks = 2;
  options.endurance.enabled = true;
  options.endurance.age_multiplier = 10.0;
  options.endurance.bank_budget_pv = bank_budget_pv;
  return options;
}

constexpr double kMidlifeBudgetPv = 2.0e6;

/// Everything about one job that must replay identically across thread
/// counts — the concurrency suite's summary plus the endurance fields.
struct JobSummary {
  service::JobState state = service::JobState::kQueued;
  int shard = -1;
  int batch = -1;
  bool verified = false;
  uint64_t keys_digest = 0;
  uint64_t wear_epoch = 0;
  double effective_knob = 0.0;

  bool operator==(const JobSummary& other) const {
    return state == other.state && shard == other.shard &&
           batch == other.batch && verified == other.verified &&
           keys_digest == other.keys_digest &&
           wear_epoch == other.wear_epoch &&
           effective_knob == other.effective_knob;
  }
};

struct AgingRun {
  std::vector<JobSummary> jobs;
  std::map<std::string, uint64_t> ledger_digests;
  service::ServiceStats stats;
  uint64_t timeline_digest = 0;
  /// (epoch, completed, failed, shed) rows — the SLO ledger minus its
  /// wall-clock latency samples.
  std::vector<std::vector<uint64_t>> slo_rows;
};

AgingRun RunAging(int threads, double bank_budget_pv = kMidlifeBudgetPv,
                  int bursts = 24) {
  service::SortService sort_service(AgingOptions(threads, bank_budget_pv));
  for (const service::TenantSpec& tenant : AgingTenants()) {
    EXPECT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  AgingRun run;
  run.stats = sort_service.Run(AgingTrace(bursts));
  for (const service::JobRecord& record : sort_service.jobs()) {
    JobSummary summary;
    summary.state = record.state;
    summary.shard = record.shard;
    summary.batch = record.batch;
    summary.verified = record.verified;
    summary.keys_digest = record.keys_digest;
    summary.wear_epoch = record.wear_epoch;
    summary.effective_knob = record.effective_knob;
    run.jobs.push_back(summary);
  }
  for (const std::string& name : sort_service.tenant_names()) {
    run.ledger_digests[name] = sort_service.tenant_ledger(name).Digest();
  }
  run.timeline_digest = sort_service.RetirementTimelineDigest();
  for (const auto& [epoch, stats] : sort_service.slo().epochs()) {
    run.slo_rows.push_back(
        {epoch, stats.jobs_completed, stats.jobs_failed, stats.jobs_shed});
  }
  return run;
}

TEST(ServiceEndurance, AgingThreadMatrixMatchesSerialReplay) {
  const AgingRun serial = RunAging(1);
  EXPECT_GE(serial.stats.banks_retired, 1u);
  for (const int threads : {2, 4, 8}) {
    const AgingRun run = RunAging(threads);
    ASSERT_EQ(serial.jobs.size(), run.jobs.size());
    for (size_t i = 0; i < serial.jobs.size(); ++i) {
      EXPECT_TRUE(serial.jobs[i] == run.jobs[i])
          << "job " << i << " diverged at threads=" << threads;
    }
    EXPECT_EQ(serial.ledger_digests, run.ledger_digests);
    EXPECT_EQ(serial.timeline_digest, run.timeline_digest)
        << "retirement timeline diverged at threads=" << threads;
    EXPECT_EQ(serial.slo_rows, run.slo_rows)
        << "SLO epoch rows diverged at threads=" << threads;
    EXPECT_EQ(serial.stats.banks_retired, run.stats.banks_retired);
    EXPECT_EQ(serial.stats.jobs_completed, run.stats.jobs_completed);
    EXPECT_EQ(serial.stats.jobs_shed, run.stats.jobs_shed);
  }
}

TEST(ServiceEndurance, RetirementKeepsTheServiceServingVerifiedJobs) {
  service::SortService sort_service(AgingOptions(4, kMidlifeBudgetPv));
  for (const service::TenantSpec& tenant : AgingTenants()) {
    ASSERT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  const service::ServiceStats stats = sort_service.Run(AgingTrace(24));
  ASSERT_GE(stats.banks_retired, 1u);
  EXPECT_GT(stats.jobs_completed, 0u);

  size_t completed_on_aged_substrate = 0;
  for (const service::JobRecord& record : sort_service.jobs()) {
    if (record.state != service::JobState::kCompleted) continue;
    // Completed means verified and exactly the golden sorted input, even
    // on a substrate that already lost banks.
    EXPECT_TRUE(record.verified);
    EXPECT_TRUE(record.status.ok());
    std::vector<uint32_t> golden = core::MakeKeys(
        record.request.workload, record.request.n, record.request.seed);
    std::sort(golden.begin(), golden.end());
    EXPECT_EQ(record.keys_digest,
              testing::Fnv1a64(golden.data(), golden.size() * sizeof(uint32_t)))
        << "ticket " << record.ticket;
    if (record.wear_epoch >= 1) ++completed_on_aged_substrate;
  }
  EXPECT_GT(completed_on_aged_substrate, 0u)
      << "no job completed after a retirement: the aging tuning lost its "
         "graceful-degradation window";

  // The SLO ledger binned every terminal job, across at least two epochs.
  uint64_t slo_jobs = 0;
  for (const auto& [epoch, epoch_stats] : sort_service.slo().epochs()) {
    slo_jobs += epoch_stats.jobs_completed + epoch_stats.jobs_failed +
                epoch_stats.jobs_shed;
  }
  EXPECT_EQ(slo_jobs, stats.jobs_completed + stats.jobs_failed +
                          stats.jobs_shed);
  EXPECT_GE(sort_service.slo().epochs().size(), 2u);

  // The retirement timeline is exposed per shard and folds into the
  // service digest.
  uint64_t events = 0;
  for (int shard = 0; shard < sort_service.options().shards; ++shard) {
    const approx::EnduranceLedger* ledger = sort_service.shard_endurance(shard);
    ASSERT_NE(ledger, nullptr);
    events += ledger->retirements().size();
  }
  EXPECT_EQ(events, stats.banks_retired);
  EXPECT_NE(sort_service.RetirementTimelineDigest(), 0u);
}

TEST(ServiceEndurance, AgingTightensTheKnobTowardPrecise) {
  service::SortService sort_service(AgingOptions(4, kMidlifeBudgetPv));
  for (const service::TenantSpec& tenant : AgingTenants()) {
    ASSERT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  sort_service.Run(AgingTrace(24));

  // Banks cross escalation steps (50/75/90% of budget) before they retire,
  // so with at least one retirement the trace must contain bob jobs that
  // ran with the knob tightened below the registered 0.045 — and none that
  // ran looser.
  ASSERT_GE(sort_service.stats().banks_retired, 1u);
  size_t tightened = 0;
  for (const service::JobRecord& record : sort_service.jobs()) {
    if (record.state != service::JobState::kCompleted) continue;
    if (record.request.tenant != "bob") continue;
    EXPECT_LE(record.effective_knob, kBankedKnob + 1e-12);
    EXPECT_GT(record.effective_knob, 0.0);
    if (record.effective_knob < kBankedKnob - 1e-12) ++tightened;
  }
  EXPECT_GT(tightened, 0u)
      << "no completed bob job ran with an aged-tightened knob";
}

TEST(ServiceEndurance, ExhaustedSubstrateShedsWithAnHonestStatus) {
  // A budget this small retires every bank almost immediately; the trace
  // keeps arriving, so the tail of it must be shed — honestly, with
  // kUnavailable — rather than silently dropped or falsely failed.
  service::SortService sort_service(AgingOptions(4, /*bank_budget_pv=*/1.0));
  for (const service::TenantSpec& tenant : AgingTenants()) {
    ASSERT_TRUE(sort_service.RegisterTenant(tenant).ok());
  }
  const service::ServiceStats stats = sort_service.Run(AgingTrace(8));
  EXPECT_GT(stats.jobs_shed_exhausted, 0u);
  EXPECT_EQ(stats.banks_retired, 4u);  // 2 shards x 2 banks: all dead.
  for (int shard = 0; shard < sort_service.options().shards; ++shard) {
    EXPECT_EQ(sort_service.shard_endurance(shard)->live_banks(), 0);
  }

  size_t exhausted_sheds = 0;
  for (const service::JobRecord& record : sort_service.jobs()) {
    // Every submitted job is terminal — nothing stuck in the backlog.
    EXPECT_TRUE(record.state == service::JobState::kCompleted ||
                record.state == service::JobState::kFailed ||
                record.state == service::JobState::kShed)
        << "ticket " << record.ticket << " is not terminal";
    if (record.state == service::JobState::kShed &&
        record.status.code() == StatusCode::kUnavailable &&
        record.status.message().find("exhausted") != std::string::npos) {
      ++exhausted_sheds;
    }
  }
  EXPECT_EQ(exhausted_sheds, stats.jobs_shed_exhausted);
}

// Wear-escalated errors must not depend on intra-sort parallelism: an
// engine sorting through a WearErrorHook over an aged ledger produces
// bit-identical outputs, ledgers, and injected-error counts at any
// sort_threads setting (a fault hook forces the striped passes serial).
TEST(ServiceEndurance, WearErrorEscalationIsDeterministicAcrossSortThreads) {
  approx::EnduranceOptions endurance;
  endurance.enabled = true;
  endurance.banks = 4;
  endurance.bank_budget_pv = 1000.0;
  approx::EnduranceLedger ledger(endurance);
  ledger.ChargeBank(0, 800.0);  // 80%: level 2, 1% extra word errors on
                                // the lane every engine allocation uses.
  ASSERT_EQ(ledger.MaxLiveEscalationLevel(), 2);

  struct RunDigest {
    uint64_t keys = 0;
    uint64_t ids = 0;
    uint64_t injected = 0;
    double write_reduction = 0.0;
    bool operator==(const RunDigest& other) const {
      return keys == other.keys && ids == other.ids &&
             injected == other.injected &&
             write_reduction == other.write_reduction;
    }
  };
  const std::vector<uint32_t> keys =
      core::MakeKeys(core::WorkloadKind::kUniform, 4096, kSeed);

  const auto run = [&](int sort_threads) {
    approx::WearErrorHook hook(&ledger, nullptr);
    hook.BeginJob(/*ticket=*/5);
    core::EngineOptions options;
    options.seed = kSeed;
    options.calibration_trials = kCalibrationTrials;
    options.shared_calibration = SharedCache();
    options.fault_hook = &hook;
    options.sort_threads = sort_threads;
    core::ApproxSortEngine engine(options);
    std::vector<uint32_t> final_keys;
    std::vector<uint32_t> final_ids;
    auto outcome = engine.SortApproxRefine(
        keys, sort::AlgorithmId{sort::SortKind::kLsdRadix, 3}, 0.055,
        &final_keys, &final_ids);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    RunDigest digest;
    digest.keys = testing::Fnv1a64(final_keys.data(),
                                   final_keys.size() * sizeof(uint32_t));
    digest.ids = testing::Fnv1a64(final_ids.data(),
                                  final_ids.size() * sizeof(uint32_t));
    digest.injected = hook.injected_errors();
    digest.write_reduction = outcome->write_reduction;
    return digest;
  };

  const RunDigest serial = run(1);
  EXPECT_GT(serial.injected, 0u)
      << "the aged bank injected nothing: escalation never engaged";
  for (const int sort_threads : {2, 4, 8}) {
    EXPECT_TRUE(serial == run(sort_threads))
        << "wear-error run diverged at sort_threads=" << sort_threads;
  }
}

}  // namespace
}  // namespace approxmem
