#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "dbops/aggregate.h"
#include "dbops/join.h"

namespace approxmem::dbops {
namespace {

core::EngineOptions FastOptions() {
  core::EngineOptions options;
  options.calibration_trials = 20000;
  options.seed = 23;
  return options;
}

// Reference GROUP BY via std::map.
std::map<uint32_t, GroupRow> ReferenceGroups(
    const std::vector<uint32_t>& keys, const std::vector<uint32_t>& values) {
  std::map<uint32_t, GroupRow> groups;
  for (size_t i = 0; i < keys.size(); ++i) {
    auto [it, inserted] = groups.try_emplace(
        keys[i], GroupRow{keys[i], 0, 0, values[i], values[i]});
    GroupRow& row = it->second;
    ++row.count;
    row.sum += values[i];
    row.min = std::min(row.min, values[i]);
    row.max = std::max(row.max, values[i]);
  }
  return groups;
}

TEST(GroupByTest, MatchesReferenceOnSkewedData) {
  core::ApproxSortEngine engine(FastOptions());
  const auto keys = core::MakeKeys(core::WorkloadKind::kSkewed, 20000, 1);
  const auto values = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 2);
  const auto result = GroupByAggregate(engine, keys, values, GroupByOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->verified);

  const auto reference = ReferenceGroups(keys, values);
  ASSERT_EQ(result->groups.size(), reference.size());
  size_t g = 0;
  for (const auto& [key, expected] : reference) {
    const GroupRow& actual = result->groups[g++];
    EXPECT_EQ(actual.group_key, key);
    EXPECT_EQ(actual.count, expected.count);
    EXPECT_EQ(actual.sum, expected.sum);
    EXPECT_EQ(actual.min, expected.min);
    EXPECT_EQ(actual.max, expected.max);
  }
}

TEST(GroupByTest, EmptyInput) {
  core::ApproxSortEngine engine(FastOptions());
  const auto result = GroupByAggregate(engine, {}, {}, GroupByOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->verified);
  EXPECT_TRUE(result->groups.empty());
}

TEST(GroupByTest, SingleGroup) {
  core::ApproxSortEngine engine(FastOptions());
  const std::vector<uint32_t> keys(1000, 7);
  const auto values = core::MakeKeys(core::WorkloadKind::kUniform, 1000, 3);
  const auto result = GroupByAggregate(engine, keys, values, GroupByOptions{});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->verified);
  ASSERT_EQ(result->groups.size(), 1u);
  EXPECT_EQ(result->groups[0].count, 1000u);
}

TEST(GroupByTest, RejectsSizeMismatch) {
  core::ApproxSortEngine engine(FastOptions());
  const auto result =
      GroupByAggregate(engine, {1, 2}, {1}, GroupByOptions{});
  EXPECT_FALSE(result.ok());
}

TEST(GroupByTest, SortSavingsPropagate) {
  core::ApproxSortEngine engine(FastOptions());
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 100000, 4);
  const auto values = core::MakeKeys(core::WorkloadKind::kUniform, 100000, 5);
  GroupByOptions options;
  options.algorithm = sort::AlgorithmId{sort::SortKind::kLsdRadix, 3};
  options.t = 0.055;
  const auto result = GroupByAggregate(engine, keys, values, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->verified);
  EXPECT_GT(result->sort_write_reduction, 0.03);
}

// Reference join size: sum over keys of count_l * count_r.
size_t ReferenceJoinSize(const std::vector<uint32_t>& left,
                         const std::vector<uint32_t>& right) {
  std::map<uint32_t, size_t> left_counts;
  for (const uint32_t k : left) ++left_counts[k];
  size_t total = 0;
  for (const uint32_t k : right) {
    auto it = left_counts.find(k);
    if (it != left_counts.end()) total += it->second;
  }
  return total;
}

TEST(JoinTest, MatchesReferenceCardinality) {
  core::ApproxSortEngine engine(FastOptions());
  const auto left = core::MakeKeys(core::WorkloadKind::kSkewed, 5000, 6);
  const auto right = core::MakeKeys(core::WorkloadKind::kSkewed, 4000, 7);
  const auto result = SortMergeJoin(engine, left, right, JoinOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->verified);
  EXPECT_FALSE(result->truncated);
  EXPECT_EQ(result->pairs.size(), ReferenceJoinSize(left, right));
  for (const JoinPair& pair : result->pairs) {
    EXPECT_EQ(left[pair.left_row], right[pair.right_row]);
  }
}

TEST(JoinTest, DisjointInputsProduceNothing) {
  core::ApproxSortEngine engine(FastOptions());
  std::vector<uint32_t> left(100);
  std::vector<uint32_t> right(100);
  for (uint32_t i = 0; i < 100; ++i) {
    left[i] = 2 * i;       // Even.
    right[i] = 2 * i + 1;  // Odd.
  }
  const auto result = SortMergeJoin(engine, left, right, JoinOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pairs.empty());
  EXPECT_TRUE(result->verified);
}

TEST(JoinTest, EmptySides) {
  core::ApproxSortEngine engine(FastOptions());
  const auto some = core::MakeKeys(core::WorkloadKind::kUniform, 100, 8);
  auto empty_left = SortMergeJoin(engine, {}, some, JoinOptions{});
  ASSERT_TRUE(empty_left.ok());
  EXPECT_TRUE(empty_left->pairs.empty());
  auto empty_right = SortMergeJoin(engine, some, {}, JoinOptions{});
  ASSERT_TRUE(empty_right.ok());
  EXPECT_TRUE(empty_right->pairs.empty());
}

TEST(JoinTest, DuplicateCrossProduct) {
  core::ApproxSortEngine engine(FastOptions());
  const std::vector<uint32_t> left = {5, 5, 5};
  const std::vector<uint32_t> right = {5, 5};
  const auto result = SortMergeJoin(engine, left, right, JoinOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pairs.size(), 6u);  // 3 x 2.
}

TEST(JoinTest, TruncationCap) {
  core::ApproxSortEngine engine(FastOptions());
  const std::vector<uint32_t> left(100, 1);
  const std::vector<uint32_t> right(100, 1);
  JoinOptions options;
  options.max_output_pairs = 50;
  const auto result = SortMergeJoin(engine, left, right, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->pairs.size(), 50u);
}

TEST(JoinTest, OutputOrderedByKey) {
  core::ApproxSortEngine engine(FastOptions());
  const auto left = core::MakeKeys(core::WorkloadKind::kSkewed, 3000, 9);
  const auto right = core::MakeKeys(core::WorkloadKind::kSkewed, 3000, 10);
  const auto result = SortMergeJoin(engine, left, right, JoinOptions{});
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->pairs.size(); ++i) {
    EXPECT_LE(left[result->pairs[i - 1].left_row],
              left[result->pairs[i].left_row]);
  }
}

}  // namespace
}  // namespace approxmem::dbops
