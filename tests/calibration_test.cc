#include "mlc/calibration.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "mlc/cell.h"

namespace approxmem::mlc {
namespace {

class CalibrationSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationSweepTest, ErrorProbabilitiesAreValid) {
  const double t = GetParam();
  Rng rng(1);
  const CellCalibration calib =
      CellCalibration::Run(MlcConfig().WithT(t), 20000, rng);
  for (int level = 0; level < 4; ++level) {
    EXPECT_GE(calib.ErrorProbForLevel(level), 0.0);
    EXPECT_LE(calib.ErrorProbForLevel(level), 1.0);
    EXPECT_GE(calib.AvgPvForLevel(level), 1.0);
  }
  EXPECT_GE(calib.WordErrorRate(16), calib.CellErrorRate());
}

INSTANTIATE_TEST_SUITE_P(TGrid, CalibrationSweepTest,
                         ::testing::Values(0.025, 0.04, 0.055, 0.07, 0.085,
                                           0.1, 0.124));

TEST(CalibrationTest, PreciseTMatchesPaperAnchors) {
  Rng rng(2);
  const CellCalibration calib =
      CellCalibration::Run(MlcConfig(), 50000, rng);
  EXPECT_NEAR(calib.AvgPv(), 2.98, 0.25);       // Table 2.
  EXPECT_LT(calib.CellErrorRate(), 1e-4);       // RBER ~1e-8 in the paper.
}

TEST(CalibrationTest, AvgPvDecreasesWithT) {
  Rng rng(3);
  double previous = 1e9;
  for (double t : {0.025, 0.055, 0.085, 0.124}) {
    const CellCalibration calib =
        CellCalibration::Run(MlcConfig().WithT(t), 30000, rng);
    EXPECT_LT(calib.AvgPv(), previous) << "t=" << t;
    previous = calib.AvgPv();
  }
}

TEST(CalibrationTest, ErrorRateIncreasesWithT) {
  Rng rng(4);
  double previous = -1.0;
  for (double t : {0.04, 0.07, 0.1, 0.124}) {
    const CellCalibration calib =
        CellCalibration::Run(MlcConfig().WithT(t), 50000, rng);
    EXPECT_GE(calib.CellErrorRate(), previous) << "t=" << t;
    previous = calib.CellErrorRate();
  }
  EXPECT_GT(previous, 0.01);  // Essentially no guard band -> visible errors.
}

TEST(CalibrationTest, SampleReadLevelMatchesMeasuredDistribution) {
  Rng rng(5);
  const MlcConfig config = MlcConfig().WithT(0.1);
  const CellCalibration calib = CellCalibration::Run(config, 100000, rng);
  // Fast-path samples must reproduce the calibrated error probability.
  for (int level = 0; level < config.levels; ++level) {
    int errors = 0;
    const int kTrials = 200000;
    for (int trial = 0; trial < kTrials; ++trial) {
      if (calib.SampleReadLevel(level, rng) != level) ++errors;
    }
    const double sampled = static_cast<double>(errors) / kTrials;
    EXPECT_NEAR(sampled, calib.ErrorProbForLevel(level),
                5e-3 + calib.ErrorProbForLevel(level) * 0.15)
        << "level=" << level;
  }
}

TEST(CalibrationTest, SamplePvMatchesMeanIterations) {
  Rng rng(6);
  const MlcConfig config = MlcConfig().WithT(0.055);
  const CellCalibration calib = CellCalibration::Run(config, 100000, rng);
  for (int level = 0; level < config.levels; ++level) {
    RunningStat pv;
    for (int trial = 0; trial < 100000; ++trial) {
      pv.Add(calib.SamplePvIterations(level, rng));
    }
    EXPECT_NEAR(pv.mean(), calib.AvgPvForLevel(level),
                0.05 * calib.AvgPvForLevel(level));
  }
}

TEST(CalibrationCacheTest, ReusesEntriesAndComputesPvRatio) {
  CalibrationCache cache(MlcConfig(), 20000, 7);
  const CellCalibration& a = cache.ForT(0.055);
  const CellCalibration& b = cache.ForT(0.055);
  EXPECT_EQ(&a, &b);  // Cached, not recomputed.
  EXPECT_DOUBLE_EQ(cache.PvRatio(0.025), 1.0);
  // Section 3.4: T = 0.055 reduces write latency by roughly a third.
  EXPECT_NEAR(cache.PvRatio(0.055), 0.66, 0.06);
  // Section 2.2: T = 0.1 halves the P&V iteration count.
  EXPECT_NEAR(cache.PvRatio(0.1), 0.5, 0.06);
}

TEST(CalibrationCacheTest, SlcHasNoWordErrorsAtPreciseT) {
  MlcConfig slc;
  slc.levels = 2;
  CalibrationCache cache(slc, 20000, 8);
  const CellCalibration& calib = cache.ForT(0.025);
  EXPECT_LT(calib.CellErrorRate(), 1e-3);
}

TEST(CalibrationPersistenceTest, SaveLoadRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/calibration_roundtrip.txt";
  CalibrationCache cache(MlcConfig(), 20000, 9);
  const CellCalibration& original = cache.ForT(0.055);
  cache.ForT(0.085);
  ASSERT_TRUE(cache.SaveToFile(path));

  CalibrationCache restored(MlcConfig(), 20000, 10);
  const auto loaded = restored.LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2u);
  // ForT must serve the loaded entry bit-for-bit, not recalibrate.
  const CellCalibration& reloaded = restored.ForT(0.055);
  EXPECT_DOUBLE_EQ(reloaded.AvgPv(), original.AvgPv());
  EXPECT_DOUBLE_EQ(reloaded.CellErrorRate(), original.CellErrorRate());
  for (int level = 0; level < 4; ++level) {
    EXPECT_DOUBLE_EQ(reloaded.AvgPvForLevel(level),
                     original.AvgPvForLevel(level));
    EXPECT_DOUBLE_EQ(reloaded.ErrorProbForLevel(level),
                     original.ErrorProbForLevel(level));
  }
  // Sampling from the reloaded tables must be deterministic-equal.
  Rng a(1);
  Rng b(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(original.SampleReadLevel(2, a), reloaded.SampleReadLevel(2, b));
    EXPECT_EQ(original.SamplePvIterations(1, a),
              reloaded.SamplePvIterations(1, b));
  }
}

// Persistence is a pure serialization of the calibration tables: saving a
// freshly loaded cache must reproduce the original file byte for byte.
TEST(CalibrationPersistenceTest, SaveLoadSaveIsBitIdentical) {
  const auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  const std::string first_path =
      ::testing::TempDir() + "/calibration_bitident_a.txt";
  const std::string second_path =
      ::testing::TempDir() + "/calibration_bitident_b.txt";
  CalibrationCache cache(MlcConfig(), 20000, 13);
  cache.ForT(0.025);
  cache.ForT(0.055);
  cache.ForT(0.1);
  ASSERT_TRUE(cache.SaveToFile(first_path));

  CalibrationCache restored(MlcConfig(), 20000, 14);
  const auto loaded = restored.LoadFromFile(first_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(*loaded, 3u);
  ASSERT_TRUE(restored.SaveToFile(second_path));

  const std::string first_bytes = read_bytes(first_path);
  const std::string second_bytes = read_bytes(second_path);
  ASSERT_FALSE(first_bytes.empty());
  EXPECT_EQ(first_bytes, second_bytes);
}

TEST(CalibrationPersistenceTest, MismatchedConfigIsSkipped) {
  const std::string path = ::testing::TempDir() + "/calibration_mismatch.txt";
  CalibrationCache cache(MlcConfig(), 5000, 11);
  cache.ForT(0.055);
  ASSERT_TRUE(cache.SaveToFile(path));

  MlcConfig other;
  other.beta = 0.05;  // Different write model.
  CalibrationCache restored(other, 5000, 12);
  const auto loaded = restored.LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 0u);
}

TEST(CalibrationPersistenceTest, RejectsGarbageFiles) {
  CalibrationCache cache(MlcConfig(), 5000, 13);
  EXPECT_FALSE(cache.LoadFromFile("/nonexistent/calibration.txt").ok());

  const std::string path = ::testing::TempDir() + "/calibration_garbage.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "not a calibration file\n");
  std::fclose(f);
  EXPECT_FALSE(cache.LoadFromFile(path).ok());
}

TEST(CalibrationPersistenceTest, TruncatedRecordIsAnError) {
  const std::string path =
      ::testing::TempDir() + "/calibration_truncated.txt";
  CalibrationCache cache(MlcConfig(), 5000, 14);
  cache.ForT(0.055);
  ASSERT_TRUE(cache.SaveToFile(path));
  // Claim two records but provide one.
  std::FILE* f = std::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "approxmem-calibrations v1 2");
  std::fclose(f);
  CalibrationCache restored(MlcConfig(), 5000, 15);
  EXPECT_FALSE(restored.LoadFromFile(path).ok());
}

}  // namespace
}  // namespace approxmem::mlc
