#include "mlc/word_codec.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace approxmem::mlc {
namespace {

TEST(WordCodecTest, RoundTripsExhaustiveLowWords) {
  MlcConfig config;
  for (uint32_t word = 0; word < 4096; ++word) {
    EXPECT_EQ(DecodeWord(EncodeWord(word, config), config), word);
  }
}

TEST(WordCodecTest, RoundTripsRandomWordsAllDensities) {
  Rng rng(1);
  for (int levels : {2, 4, 16}) {
    MlcConfig config;
    config.levels = levels;
    for (int trial = 0; trial < 10000; ++trial) {
      const uint32_t word = rng.NextU32();
      EXPECT_EQ(DecodeWord(EncodeWord(word, config), config), word);
    }
  }
}

TEST(WordCodecTest, MostSignificantCellFirst) {
  MlcConfig config;  // 2-bit cells.
  const WordLevels levels = EncodeWord(0xC0000000u, config);
  EXPECT_EQ(levels[0], 3);  // Top two bits.
  for (int c = 1; c < config.CellsPerWord(); ++c) {
    EXPECT_EQ(levels[static_cast<size_t>(c)], 0);
  }
}

TEST(WordCodecTest, LeastSignificantCellLast) {
  MlcConfig config;
  const WordLevels levels = EncodeWord(0x3u, config);
  EXPECT_EQ(levels[15], 3);
  EXPECT_EQ(levels[0], 0);
}

TEST(WordCodecTest, LevelsStayInRange) {
  MlcConfig config;
  Rng rng(2);
  for (int trial = 0; trial < 1000; ++trial) {
    const WordLevels levels = EncodeWord(rng.NextU32(), config);
    for (int c = 0; c < config.CellsPerWord(); ++c) {
      EXPECT_LT(levels[static_cast<size_t>(c)], config.levels);
    }
  }
}

TEST(WordCodecTest, CellFlipMagnitudeScalesWithCellPosition) {
  MlcConfig config;
  // Flipping the top cell of 0 to level 1 adds 2^30; flipping the bottom
  // cell adds 1.
  EXPECT_EQ(CellFlipMagnitude(0, 0, 1, config), 1u << 30);
  EXPECT_EQ(CellFlipMagnitude(0, 15, 1, config), 1u);
  // Flipping a cell to its own level changes nothing.
  EXPECT_EQ(CellFlipMagnitude(0, 5, 0, config), 0u);
}

TEST(WordCodecTest, CellFlipMagnitudeIsSymmetric) {
  MlcConfig config;
  const uint32_t word = 0x55555555u;
  for (int cell = 0; cell < config.CellsPerWord(); ++cell) {
    const WordLevels levels = EncodeWord(word, config);
    const int original = levels[static_cast<size_t>(cell)];
    for (int to = 0; to < config.levels; ++to) {
      const uint32_t up = CellFlipMagnitude(word, cell, to, config);
      // Flipping back must cover the same distance.
      WordLevels flipped = levels;
      flipped[static_cast<size_t>(cell)] = static_cast<uint8_t>(to);
      const uint32_t flipped_word = DecodeWord(flipped, config);
      EXPECT_EQ(CellFlipMagnitude(flipped_word, cell, original, config), up);
    }
  }
}

}  // namespace
}  // namespace approxmem::mlc
