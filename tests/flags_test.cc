#include "common/flags.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

namespace approxmem {
namespace {

Flags MustParse(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  StatusOr<Flags> flags =
      Flags::Parse(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()));
  EXPECT_TRUE(flags.ok()) << flags.status().ToString();
  return flags.value();
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags flags = MustParse({"--n=1000", "--t=0.055"});
  EXPECT_EQ(flags.GetInt("n", 0), 1000);
  EXPECT_DOUBLE_EQ(flags.GetDouble("t", 0.0), 0.055);
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags flags = MustParse({"--algo", "quicksort"});
  EXPECT_EQ(flags.GetString("algo", ""), "quicksort");
}

TEST(FlagsTest, BareBoolean) {
  const Flags flags = MustParse({"--full", "--n=5"});
  EXPECT_TRUE(flags.GetBool("full", false));
  EXPECT_TRUE(flags.Has("full"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, ExplicitFalse) {
  const Flags flags = MustParse({"--full=false", "--quiet=0"});
  EXPECT_FALSE(flags.GetBool("full", true));
  EXPECT_FALSE(flags.GetBool("quiet", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags flags = MustParse({});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("t", 0.25), 0.25);
  EXPECT_EQ(flags.GetString("s", "d"), "d");
  EXPECT_TRUE(flags.GetBool("b", true));
}

TEST(FlagsTest, RejectsPositionalArguments) {
  std::vector<const char*> args = {"binary", "positional"};
  StatusOr<Flags> flags =
      Flags::Parse(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()));
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, EnvSizeParsesAndDefaults) {
  ::setenv("APPROXMEM_TEST_ENV_N", "12345", 1);
  EXPECT_EQ(Flags::EnvSize("APPROXMEM_TEST_ENV_N", 1), 12345u);
  ::unsetenv("APPROXMEM_TEST_ENV_N");
  EXPECT_EQ(Flags::EnvSize("APPROXMEM_TEST_ENV_N", 17), 17u);
  ::setenv("APPROXMEM_TEST_ENV_N", "garbage", 1);
  EXPECT_EQ(Flags::EnvSize("APPROXMEM_TEST_ENV_N", 17), 17u);
  ::unsetenv("APPROXMEM_TEST_ENV_N");
}

}  // namespace
}  // namespace approxmem
