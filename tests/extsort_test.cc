#include "extsort/external_sort.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/memory_budget.h"
#include "common/thread_pool.h"
#include "core/workload.h"
#include "extsort/async_device.h"

namespace approxmem::extsort {
namespace {

class ExternalSortTest : public ::testing::Test {
 protected:
  ExternalSortTest() : engine_(MakeOptions()) {}

  static core::EngineOptions MakeOptions() {
    core::EngineOptions options;
    options.calibration_trials = 20000;
    options.seed = 17;
    return options;
  }

  /// Stages `input` on a fresh device (ResetClock afterwards, so the sort's
  /// virtual timeline starts at zero), sorts it, and returns the report.
  ExternalSortReport MustSort(const std::vector<uint32_t>& input,
                              const ExternalSortOptions& options,
                              ThreadPool* pool = nullptr,
                              core::ApproxSortEngine* engine = nullptr,
                              std::unique_ptr<AsyncDevice>* device_out =
                                  nullptr) {
    auto device = std::make_unique<AsyncDevice>(AsyncDeviceConfig(), pool);
    const int input_file = device->CreateFile();
    device->Wait(device->SubmitWrite(input_file, input, 0.0));
    device->ResetClock();
    int output_file = -1;
    const auto report =
        ExternalSort(engine != nullptr ? *engine : engine_, *device,
                     input_file, options, &output_file);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GE(output_file, 0);
    if (report.ok() && options.verify) {
      EXPECT_EQ(device->FileSize(output_file),
                input.size() * (options.record_payloads ? 2 : 1));
    }
    if (device_out != nullptr) *device_out = std::move(device);
    return report.ok() ? report.value() : ExternalSortReport{};
  }

  /// Budget granting exactly `elements`-sized runs.
  static size_t BudgetFor(size_t elements) {
    return elements * kRunFootprintBytesPerElement;
  }

  core::ApproxSortEngine engine_;
};

TEST_F(ExternalSortTest, SingleRunWhenInputFits) {
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 5000, 1);
  ExternalSortOptions options;
  options.memory_budget_bytes = BudgetFor(10000);
  const ExternalSortReport report = MustSort(input, options);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.initial_runs, 1u);
  EXPECT_EQ(report.merge_passes, 0u);
  EXPECT_EQ(report.bytes_spilled, 0u);
  // A single run is read-sort-write with nothing to overlap: the pipeline
  // must degrade to exactly serial, not better and not worse.
  EXPECT_NEAR(report.Total().OverlapRatio(), 1.0, 1e-9);
}

TEST_F(ExternalSortTest, MultiRunSinglePassOverlapsIoWithCompute) {
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 40000, 2);
  ExternalSortOptions options;
  options.memory_budget_bytes = BudgetFor(8000);
  const ExternalSortReport report = MustSort(input, options);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.initial_runs, 5u);
  EXPECT_EQ(report.merge_passes, 1u);
  // With >= 2 runs, run k+1's prefetch always hides under run k's sort on
  // the virtual timeline — the bench/CI hard gate, asserted here at unit
  // scale.
  EXPECT_GT(report.run_formation.OverlapRatio(), 1.0);
  // One spill generation: every element written once beyond the output.
  EXPECT_EQ(report.bytes_spilled, input.size() * 4);
}

TEST_F(ExternalSortTest, MultiPassWhenRunsExceedFanIn) {
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 3);
  ExternalSortOptions options;
  options.run_elements = 2000;  // 10 runs.
  options.merge_fan_in = 3;     // 10 -> 4 -> 2 -> 1: 3 passes.
  const ExternalSortReport report = MustSort(input, options);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.initial_runs, 10u);
  EXPECT_EQ(report.merge_passes, 3u);
  // Spill generations: initial runs + 2 intermediate passes.
  EXPECT_EQ(report.bytes_spilled, 3 * input.size() * 4);
}

TEST_F(ExternalSortTest, EmptyAndTinyInputs) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}}) {
    const auto input = core::MakeKeys(core::WorkloadKind::kUniform, n, 4);
    ExternalSortOptions options;
    options.memory_budget_bytes = BudgetFor(2);
    const ExternalSortReport report = MustSort(input, options);
    EXPECT_TRUE(report.verified) << "n=" << n;
    EXPECT_EQ(report.n, n);
  }
}

TEST_F(ExternalSortTest, PreciseModeAlsoSorts) {
  const auto input = core::MakeKeys(core::WorkloadKind::kSkewed, 30000, 5);
  ExternalSortOptions options;
  options.memory_budget_bytes = BudgetFor(7000);
  options.use_approx_refine = false;
  const ExternalSortReport report = MustSort(input, options);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.total_rem, 0u);
  EXPECT_GT(report.memory_write_cost, 0.0);
}

TEST_F(ExternalSortTest, ApproxAndPreciseMoveIdenticalDeviceBytes) {
  // The paper's framing: the configurations differ only in in-memory write
  // cost; the disk traffic is identical by construction.
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 60000, 6);
  ExternalSortOptions approx_options;
  approx_options.memory_budget_bytes = BudgetFor(15000);
  approx_options.t = 0.055;
  ExternalSortOptions precise_options = approx_options;
  precise_options.use_approx_refine = false;

  const ExternalSortReport approx = MustSort(input, approx_options);
  const ExternalSortReport precise = MustSort(input, precise_options);
  ASSERT_TRUE(approx.verified);
  ASSERT_TRUE(precise.verified);
  EXPECT_LT(approx.memory_write_cost, precise.memory_write_cost);
  EXPECT_GT(approx.total_rem, 0u);
  EXPECT_EQ(approx.device.bytes_read, precise.device.bytes_read);
  EXPECT_EQ(approx.device.bytes_written, precise.device.bytes_written);
  EXPECT_EQ(approx.bytes_spilled, precise.bytes_spilled);
}

TEST_F(ExternalSortTest, DigestsInvariantAcrossIoThreadCounts) {
  // The determinism contract behind --replay_check: per-run RNG rebasing
  // plus submit-time virtual scheduling make the spill and output digests
  // byte-identical whether bytes move inline or on a 4-thread pool.
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 30000, 8);
  ExternalSortOptions options;
  options.memory_budget_bytes = BudgetFor(6000);

  core::ApproxSortEngine serial_engine(MakeOptions());
  const ExternalSortReport serial =
      MustSort(input, options, nullptr, &serial_engine);

  ThreadPool pool(4);
  core::ApproxSortEngine threaded_engine(MakeOptions());
  const ExternalSortReport threaded =
      MustSort(input, options, &pool, &threaded_engine);

  ASSERT_TRUE(serial.verified);
  ASSERT_TRUE(threaded.verified);
  EXPECT_EQ(serial.spill_digest, threaded.spill_digest);
  EXPECT_EQ(serial.output_digest, threaded.output_digest);
  EXPECT_EQ(serial.initial_runs, threaded.initial_runs);
  EXPECT_DOUBLE_EQ(serial.run_formation.makespan_us,
                   threaded.run_formation.makespan_us);
  EXPECT_DOUBLE_EQ(serial.merge.makespan_us, threaded.merge.makespan_us);
}

TEST_F(ExternalSortTest, BudgetHighWaterMeetsCapacityExactly) {
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 9);
  ExternalSortOptions options;
  options.memory_budget_bytes = BudgetFor(4000);
  const ExternalSortReport report = MustSort(input, options);
  ASSERT_TRUE(report.verified);
  EXPECT_LE(report.budget_high_water, options.memory_budget_bytes);
  // Run sizing is derived to use the whole grant, not a fraction of it.
  EXPECT_GT(report.budget_high_water, options.memory_budget_bytes / 2);
}

TEST_F(ExternalSortTest, SharedExternalBudgetIsHonored) {
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 10000, 10);
  MemoryBudget budget(BudgetFor(3000));
  ExternalSortOptions options;
  options.budget = &budget;
  options.memory_budget_bytes = 0;  // Ignored when options.budget is set.
  const ExternalSortReport report = MustSort(input, options);
  ASSERT_TRUE(report.verified);
  EXPECT_EQ(report.run_elements, 3000u);
  EXPECT_EQ(budget.used(), 0u);  // Everything released on the way out.
  EXPECT_EQ(budget.high_water(), report.budget_high_water);
}

TEST_F(ExternalSortTest, DeviceStatsCoverStagingAndSort) {
  // Cumulative device accounting: staging wrote n elements, run formation
  // read n and wrote n (runs), the merge read n and wrote n (output).
  const size_t n = 32768;
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, n, 11);
  ExternalSortOptions options;
  options.memory_budget_bytes = 1u << 20;  // Fan-in >= 8: single pass.
  options.run_elements = 4096;             // 8 runs.
  std::unique_ptr<AsyncDevice> device;
  const ExternalSortReport report =
      MustSort(input, options, nullptr, nullptr, &device);
  ASSERT_TRUE(report.verified);
  EXPECT_EQ(report.merge_passes, 1u);
  EXPECT_EQ(device->stats().bytes_written, 3 * n * 4);
  EXPECT_EQ(device->stats().bytes_read, 2 * n * 4);
}

TEST_F(ExternalSortTest, RejectsBadOptions) {
  core::ApproxSortEngine engine(MakeOptions());
  AsyncDevice device;
  const int file = device.CreateFile();
  ExternalSortOptions options;
  options.memory_budget_bytes = kRunFootprintBytesPerElement;  // < 2 elems.
  EXPECT_FALSE(ExternalSort(engine, device, file, options, nullptr).ok());
  options = ExternalSortOptions();
  options.run_elements = 1;
  EXPECT_FALSE(ExternalSort(engine, device, file, options, nullptr).ok());
  options = ExternalSortOptions();
  options.merge_fan_in = 1;
  EXPECT_FALSE(ExternalSort(engine, device, file, options, nullptr).ok());
  options = ExternalSortOptions();
  options.memory_budget_bytes = 0;  // Unlimited needs explicit run size.
  EXPECT_FALSE(ExternalSort(engine, device, file, options, nullptr).ok());
  options.run_elements = 4096;  // ... and with one it is accepted.
  EXPECT_TRUE(ExternalSort(engine, device, file, options, nullptr).ok());
}

// ---- Record-payload mode: <key, rowid> records through the spill path ----

TEST_F(ExternalSortTest, RecordPayloadOutputIsPermutationCertificate) {
  // Beyond report.verified: re-check the certificate by hand. Keys
  // nondecreasing, rowids a permutation of [0, n), and every output key
  // equal to the input key its rowid points at.
  const auto input = core::MakeKeys(core::WorkloadKind::kSkewed, 20000, 12);
  AsyncDevice device;
  const int input_file = device.CreateFile();
  device.Wait(device.SubmitWrite(input_file, input, 0.0));
  device.ResetClock();
  ExternalSortOptions options;
  options.record_payloads = true;
  options.memory_budget_bytes = 4000 * kRecordRunFootprintBytesPerElement;
  int output_file = -1;
  const auto report =
      ExternalSort(engine_, device, input_file, options, &output_file);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->verified);
  EXPECT_GT(report->initial_runs, 1u);
  device.Drain();
  const std::vector<uint32_t> pairs = device.PeekData(output_file);
  ASSERT_EQ(pairs.size(), input.size() * 2);
  std::vector<bool> seen(input.size(), false);
  for (size_t i = 0; i < input.size(); ++i) {
    const uint32_t key = pairs[2 * i];
    const uint32_t rowid = pairs[2 * i + 1];
    if (i > 0) {
      EXPECT_LE(pairs[2 * (i - 1)], key) << "i=" << i;
    }
    ASSERT_LT(rowid, input.size());
    EXPECT_FALSE(seen[rowid]) << "duplicate rowid " << rowid;
    seen[rowid] = true;
    EXPECT_EQ(key, input[rowid]) << "i=" << i;
  }
}

TEST_F(ExternalSortTest, RecordPayloadRunSizingUses52BytesPerElement) {
  // Payload mode widens the flush buffer from 4-byte keys to 8-byte
  // records: 48 B/elem becomes 52 B/elem, so the same budget derives
  // proportionally smaller runs (and the bare-key derivation is unchanged).
  ASSERT_EQ(kRecordRunFootprintBytesPerElement, 52u);
  const size_t budget = 4000 * kRecordRunFootprintBytesPerElement;
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 12000, 13);
  ExternalSortOptions options;
  options.memory_budget_bytes = budget;
  options.record_payloads = true;
  const ExternalSortReport payload = MustSort(input, options);
  EXPECT_EQ(payload.run_elements, 4000u);
  EXPECT_EQ(payload.initial_runs, 3u);
  options.record_payloads = false;
  const ExternalSortReport bare = MustSort(input, options);
  EXPECT_EQ(bare.run_elements, budget / kRunFootprintBytesPerElement);
  EXPECT_TRUE(payload.verified);
  EXPECT_TRUE(bare.verified);
}

TEST_F(ExternalSortTest, RecordPayloadSpillsEightBytesPerRecord) {
  // Block-aligned runs so whole-block charging is exact: each spill
  // generation moves n records of 8 bytes, twice the bare-key traffic.
  const size_t n = 16384;
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, n, 14);
  ExternalSortOptions options;
  options.memory_budget_bytes = 1u << 20;
  options.run_elements = 4096;  // 4 runs, single merge pass.
  options.record_payloads = true;
  const ExternalSortReport report = MustSort(input, options);
  ASSERT_TRUE(report.verified);
  EXPECT_EQ(report.merge_passes, 1u);
  EXPECT_EQ(report.bytes_spilled, n * kRecordBytes);
}

TEST_F(ExternalSortTest, TinyBudgetClampsPayloadMergeBuffer) {
  // The merge-buffer clamp, payload edge: 5 slots of 8-byte records must
  // fit the budget, so the derived buffer is budget / 40 records and the
  // fan-in floors at the minimum 2-way group. Without the clamp the
  // default 4096-record buffer would breach the budget and CHECK-fail.
  const size_t budget = 5120;
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 500, 15);
  ExternalSortOptions options;
  options.memory_budget_bytes = budget;
  options.record_payloads = true;
  const ExternalSortReport report = MustSort(input, options);
  ASSERT_TRUE(report.verified);
  // budget / 52 = 98-element runs; 500 elements -> 6 runs at fan-in 2.
  EXPECT_EQ(report.run_elements, budget / kRecordRunFootprintBytesPerElement);
  EXPECT_EQ(report.initial_runs, 6u);
  EXPECT_EQ(report.merge_fan_in, 2u);
  EXPECT_GT(report.merge_passes, 1u);
  EXPECT_LE(report.budget_high_water, budget);
}

TEST_F(ExternalSortTest, RecordPayloadDigestsInvariantAcrossIoThreadCounts) {
  // The determinism contract must survive the wider records: spill and
  // output digests (now over interleaved pairs) are identical whether
  // bytes move inline or on a 4-thread pool.
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 16);
  ExternalSortOptions options;
  options.memory_budget_bytes = BudgetFor(6000);
  options.record_payloads = true;

  core::ApproxSortEngine serial_engine(MakeOptions());
  const ExternalSortReport serial =
      MustSort(input, options, nullptr, &serial_engine);

  ThreadPool pool(4);
  core::ApproxSortEngine threaded_engine(MakeOptions());
  const ExternalSortReport threaded =
      MustSort(input, options, &pool, &threaded_engine);

  ASSERT_TRUE(serial.verified);
  ASSERT_TRUE(threaded.verified);
  EXPECT_EQ(serial.spill_digest, threaded.spill_digest);
  EXPECT_EQ(serial.output_digest, threaded.output_digest);
  EXPECT_EQ(serial.bytes_spilled, threaded.bytes_spilled);
}

TEST_F(ExternalSortTest, PayloadAndBareDeviceTrafficDifferOnlyByStride) {
  // Same input, same run count: payload mode's device traffic is exactly
  // the bare-key traffic with spill and output bytes doubled (the input
  // staging read is bare keys in both modes).
  const size_t n = 16384;
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, n, 17);
  ExternalSortOptions options;
  options.memory_budget_bytes = 1u << 20;
  options.run_elements = 4096;
  std::unique_ptr<AsyncDevice> bare_device;
  const ExternalSortReport bare =
      MustSort(input, options, nullptr, nullptr, &bare_device);
  options.record_payloads = true;
  std::unique_ptr<AsyncDevice> payload_device;
  const ExternalSortReport payload =
      MustSort(input, options, nullptr, nullptr, &payload_device);
  ASSERT_TRUE(bare.verified);
  ASSERT_TRUE(payload.verified);
  EXPECT_EQ(bare.initial_runs, payload.initial_runs);
  // Staging write: n keys in both. Runs + output: doubled under payloads.
  EXPECT_EQ(payload_device->stats().bytes_written - n * 4,
            2 * (bare_device->stats().bytes_written - n * 4));
  EXPECT_EQ(payload.bytes_spilled, 2 * bare.bytes_spilled);
}

}  // namespace
}  // namespace approxmem::extsort
