#include "extsort/external_sort.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "extsort/disk_model.h"
#include "extsort/loser_tree.h"

namespace approxmem::extsort {
namespace {

// ---------- SimulatedDisk ----------

TEST(SimulatedDiskTest, AppendAndReadRoundTrip) {
  SimulatedDisk disk;
  const int file = disk.CreateFile();
  disk.Append(file, {1, 2, 3, 4, 5});
  EXPECT_EQ(disk.FileSize(file), 5u);
  EXPECT_EQ(disk.Read(file, 1, 3), (std::vector<uint32_t>{2, 3, 4}));
  EXPECT_EQ(disk.Read(file, 4, 100), (std::vector<uint32_t>{5}));  // Clamped.
  EXPECT_TRUE(disk.Read(file, 10, 5).empty());
}

TEST(SimulatedDiskTest, BlockAccounting) {
  DiskConfig config;
  config.block_elements = 4;
  SimulatedDisk disk(config);
  const int file = disk.CreateFile();
  disk.Append(file, {1, 2, 3, 4, 5});  // Covers blocks 0 and 1.
  EXPECT_EQ(disk.stats().blocks_written, 2u);
  disk.Append(file, {6});  // Rewrites the partial block 1.
  EXPECT_EQ(disk.stats().blocks_written, 3u);
  disk.Read(file, 0, 6);  // Blocks 0 and 1.
  EXPECT_EQ(disk.stats().blocks_read, 2u);
  disk.Read(file, 3, 2);  // Straddles blocks 0 and 1.
  EXPECT_EQ(disk.stats().blocks_read, 4u);
}

TEST(SimulatedDiskTest, LatencyFollowsBlocks) {
  DiskConfig config;
  config.block_elements = 8;
  config.read_latency_us_per_block = 10.0;
  config.write_latency_us_per_block = 25.0;
  SimulatedDisk disk(config);
  const int file = disk.CreateFile();
  disk.Append(file, std::vector<uint32_t>(16, 7));  // 2 blocks.
  disk.Read(file, 0, 16);
  EXPECT_DOUBLE_EQ(disk.stats().write_time_us, 50.0);
  EXPECT_DOUBLE_EQ(disk.stats().read_time_us, 20.0);
  EXPECT_DOUBLE_EQ(disk.stats().TotalTimeUs(), 70.0);
}

TEST(SimulatedDiskTest, MultipleFilesAreIndependent) {
  SimulatedDisk disk;
  const int a = disk.CreateFile();
  const int b = disk.CreateFile();
  disk.Append(a, {1});
  disk.Append(b, {2, 3});
  EXPECT_EQ(disk.FileSize(a), 1u);
  EXPECT_EQ(disk.FileSize(b), 2u);
  disk.Truncate(a);
  EXPECT_EQ(disk.FileSize(a), 0u);
  EXPECT_EQ(disk.FileSize(b), 2u);
}

// ---------- LoserTree ----------

TEST(LoserTreeTest, SingleWay) {
  LoserTree tree(1);
  EXPECT_TRUE(tree.Exhausted());
  tree.Update(0, 42, true);
  EXPECT_FALSE(tree.Exhausted());
  EXPECT_EQ(tree.MinWay(), 0u);
  EXPECT_EQ(tree.MinKey(), 42u);
  tree.Update(0, 0, false);
  EXPECT_TRUE(tree.Exhausted());
}

TEST(LoserTreeTest, PicksMinimumAcrossWays) {
  LoserTree tree(4);
  tree.Update(0, 30, true);
  tree.Update(1, 10, true);
  tree.Update(2, 20, true);
  tree.Update(3, 40, true);
  EXPECT_EQ(tree.MinWay(), 1u);
  EXPECT_EQ(tree.MinKey(), 10u);
  tree.Update(1, 35, true);  // Way 1 advances past the others.
  EXPECT_EQ(tree.MinWay(), 2u);
  EXPECT_EQ(tree.MinKey(), 20u);
}

TEST(LoserTreeTest, EqualKeysPreferLowerWay) {
  LoserTree tree(3);
  tree.Update(0, 5, true);
  tree.Update(1, 5, true);
  tree.Update(2, 5, true);
  EXPECT_EQ(tree.MinWay(), 0u);
}

TEST(LoserTreeTest, NonPowerOfTwoWays) {
  LoserTree tree(5);
  const uint32_t heads[5] = {9, 7, 8, 6, 10};
  for (size_t w = 0; w < 5; ++w) tree.Update(w, heads[w], true);
  EXPECT_EQ(tree.MinKey(), 6u);
  EXPECT_EQ(tree.MinWay(), 3u);
}

TEST(LoserTreeTest, MergesLikeStdMerge) {
  // Property: draining a loser tree over k sorted runs reproduces the
  // sorted concatenation.
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t k = 1 + rng.UniformInt(9);
    std::vector<std::vector<uint32_t>> runs(k);
    std::vector<uint32_t> all;
    for (auto& run : runs) {
      run.resize(rng.UniformInt(50));
      for (auto& v : run) v = static_cast<uint32_t>(rng.UniformInt(100));
      std::sort(run.begin(), run.end());
      all.insert(all.end(), run.begin(), run.end());
    }
    std::sort(all.begin(), all.end());

    LoserTree tree(k);
    std::vector<size_t> pos(k, 0);
    for (size_t w = 0; w < k; ++w) {
      if (!runs[w].empty()) tree.Update(w, runs[w][0], true);
    }
    std::vector<uint32_t> merged;
    while (!tree.Exhausted()) {
      const size_t w = tree.MinWay();
      merged.push_back(tree.MinKey());
      ++pos[w];
      if (pos[w] < runs[w].size()) {
        tree.Update(w, runs[w][pos[w]], true);
      } else {
        tree.Update(w, 0, false);
      }
    }
    EXPECT_EQ(merged, all) << "trial " << trial;
  }
}

// ---------- ExternalSort ----------

class ExternalSortTest : public ::testing::Test {
 protected:
  ExternalSortTest() : engine_(MakeOptions()) {}

  static core::EngineOptions MakeOptions() {
    core::EngineOptions options;
    options.calibration_trials = 20000;
    options.seed = 17;
    return options;
  }

  ExternalSortReport MustSort(const std::vector<uint32_t>& input,
                              ExternalSortOptions options,
                              SimulatedDisk* disk_out = nullptr) {
    SimulatedDisk disk;
    const int input_file = disk.CreateFile();
    disk.Append(input_file, input);
    disk.ResetStats();
    int output_file = -1;
    const auto report =
        ExternalSort(engine_, disk, input_file, options, &output_file);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GE(output_file, 0);
    if (disk_out != nullptr) *disk_out = std::move(disk);
    return report.value();
  }

  core::ApproxSortEngine engine_;
};

TEST_F(ExternalSortTest, SingleRunWhenInputFits) {
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 5000, 1);
  ExternalSortOptions options;
  options.memory_budget_elements = 10000;
  const ExternalSortReport report = MustSort(input, options);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.initial_runs, 1u);
  EXPECT_EQ(report.merge_passes, 0u);
}

TEST_F(ExternalSortTest, MultiRunSinglePass) {
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 40000, 2);
  ExternalSortOptions options;
  options.memory_budget_elements = 8000;
  const ExternalSortReport report = MustSort(input, options);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.initial_runs, 5u);
  EXPECT_EQ(report.merge_passes, 1u);
}

TEST_F(ExternalSortTest, MultiPassWhenRunsExceedFanIn) {
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 3);
  ExternalSortOptions options;
  options.memory_budget_elements = 2000;  // 10 runs.
  options.merge_fan_in = 3;               // ceil(log3(10)) = 3 passes.
  const ExternalSortReport report = MustSort(input, options);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.initial_runs, 10u);
  EXPECT_EQ(report.merge_passes, 3u);
}

TEST_F(ExternalSortTest, EmptyAndTinyInputs) {
  for (size_t n : {0u, 1u, 3u}) {
    const auto input = core::MakeKeys(core::WorkloadKind::kUniform, n, 4);
    ExternalSortOptions options;
    options.memory_budget_elements = 8;
    const ExternalSortReport report = MustSort(input, options);
    EXPECT_TRUE(report.verified) << "n=" << n;
    EXPECT_EQ(report.n, n);
  }
}

TEST_F(ExternalSortTest, PreciseModeAlsoSorts) {
  const auto input = core::MakeKeys(core::WorkloadKind::kSkewed, 30000, 5);
  ExternalSortOptions options;
  options.memory_budget_elements = 7000;
  options.use_approx_refine = false;
  const ExternalSortReport report = MustSort(input, options);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.total_rem, 0u);
  EXPECT_GT(report.memory_write_cost, 0.0);
}

TEST_F(ExternalSortTest, ApproxRefineSavesMemoryWritesAtSweetSpot) {
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, 60000, 6);
  ExternalSortOptions approx_options;
  approx_options.memory_budget_elements = 15000;
  approx_options.t = 0.055;
  ExternalSortOptions precise_options = approx_options;
  precise_options.use_approx_refine = false;

  const ExternalSortReport approx = MustSort(input, approx_options);
  const ExternalSortReport precise = MustSort(input, precise_options);
  ASSERT_TRUE(approx.verified);
  ASSERT_TRUE(precise.verified);
  EXPECT_LT(approx.memory_write_cost, precise.memory_write_cost);
  // Disk traffic is configuration-independent.
  EXPECT_EQ(approx.disk.blocks_read, precise.disk.blocks_read);
  EXPECT_EQ(approx.disk.blocks_written, precise.disk.blocks_written);
}

TEST_F(ExternalSortTest, TwoPassDiskTraffic) {
  // Single merge pass => input read once, runs written + read, output
  // written: ~2n read + ~2n written in blocks.
  const size_t n = 32768;
  const auto input = core::MakeKeys(core::WorkloadKind::kUniform, n, 7);
  ExternalSortOptions options;
  options.memory_budget_elements = 4096;
  SimulatedDisk disk;
  const ExternalSortReport report = MustSort(input, options, &disk);
  ASSERT_TRUE(report.verified);
  const uint64_t n_blocks = n / disk.config().block_elements;
  EXPECT_NEAR(static_cast<double>(report.disk.blocks_written),
              static_cast<double>(2 * n_blocks), 0.1 * n_blocks + 16);
  EXPECT_NEAR(static_cast<double>(report.disk.blocks_read),
              static_cast<double>(2 * n_blocks), 0.1 * n_blocks + 16);
}

TEST_F(ExternalSortTest, RejectsBadOptions) {
  ExternalSortOptions options;
  options.memory_budget_elements = 1;
  SimulatedDisk disk;
  const int file = disk.CreateFile();
  EXPECT_FALSE(ExternalSort(engine_, disk, file, options, nullptr).ok());
  options = ExternalSortOptions();
  options.merge_fan_in = 1;
  EXPECT_FALSE(ExternalSort(engine_, disk, file, options, nullptr).ok());
}

}  // namespace
}  // namespace approxmem::extsort
