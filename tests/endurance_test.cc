// Unit tests for the device-lifetime endurance subsystem
// (approx/endurance.h): the ledger's wear -> escalation -> retirement
// state machine, the timeline digest's replay contract, the WearErrorHook's
// deterministic counter-based draws, and the health monitor's merged
// interval index that keeps quarantine lookups O(log q).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "approx/endurance.h"
#include "approx/health_monitor.h"

namespace approxmem::approx {
namespace {

EnduranceOptions SmallOptions() {
  EnduranceOptions options;
  options.enabled = true;
  options.banks = 4;
  options.bank_budget_pv = 1000.0;
  options.escalation = {{0.50, 0.01}, {0.75, 0.05}, {0.90, 0.25}};
  options.retire_after_quarantines = 3;
  return options;
}

TEST(EnduranceLedgerTest, EscalationIsAPureFunctionOfChargedWear) {
  EnduranceLedger ledger(SmallOptions());
  EXPECT_EQ(ledger.bank(0).state, BankState::kActive);
  EXPECT_DOUBLE_EQ(ledger.ExtraWordErrorRate(0), 0.0);

  EXPECT_FALSE(ledger.ChargeBank(0, 400.0));  // 40%: below every step.
  EXPECT_EQ(ledger.bank(0).escalation_level, 0);
  EXPECT_DOUBLE_EQ(ledger.ExtraWordErrorRate(0), 0.0);

  EXPECT_FALSE(ledger.ChargeBank(0, 200.0));  // 60%: first step crossed.
  EXPECT_EQ(ledger.bank(0).state, BankState::kAged);
  EXPECT_EQ(ledger.bank(0).escalation_level, 1);
  EXPECT_DOUBLE_EQ(ledger.ExtraWordErrorRate(0), 0.01);

  EXPECT_FALSE(ledger.ChargeBank(0, 320.0));  // 92%: all three steps.
  EXPECT_EQ(ledger.bank(0).escalation_level, 3);
  EXPECT_DOUBLE_EQ(ledger.ExtraWordErrorRate(0), 0.25);

  // Other banks never moved: wear is charged per bank, not per substrate.
  EXPECT_EQ(ledger.bank(1).escalation_level, 0);
}

TEST(EnduranceLedgerTest, BudgetExhaustionRetiresAndShrinksCapacity) {
  EnduranceLedger ledger(SmallOptions());
  ledger.BeginJob();
  ledger.BeginJob();
  EXPECT_TRUE(ledger.ChargeBank(2, 1200.0));
  EXPECT_TRUE(ledger.IsRetired(2));
  EXPECT_EQ(ledger.live_banks(), 3);
  EXPECT_DOUBLE_EQ(ledger.CapacityFraction(), 0.75);
  EXPECT_EQ(ledger.wear_epoch(), 1u);

  ASSERT_EQ(ledger.retirements().size(), 1u);
  const RetirementEvent& event = ledger.retirements()[0];
  EXPECT_EQ(event.bank, 2);
  EXPECT_EQ(event.reason, RetirementReason::kBudgetExhausted);
  EXPECT_EQ(event.virtual_time, 2u);  // Stamped with jobs begun, not clock.
  EXPECT_DOUBLE_EQ(event.consumed_pv, 1200.0);

  // Retired banks ignore further charges and quarantines.
  EXPECT_FALSE(ledger.ChargeBank(2, 500.0));
  EXPECT_FALSE(ledger.RecordQuarantine(2));
  EXPECT_EQ(ledger.retirements().size(), 1u);
}

TEST(EnduranceLedgerTest, RepeatedQuarantinesCondemnABank) {
  EnduranceLedger ledger(SmallOptions());
  EXPECT_FALSE(ledger.RecordQuarantine(1));
  EXPECT_FALSE(ledger.RecordQuarantine(1));
  EXPECT_TRUE(ledger.RecordQuarantine(1));
  EXPECT_TRUE(ledger.IsRetired(1));
  ASSERT_EQ(ledger.retirements().size(), 1u);
  EXPECT_EQ(ledger.retirements()[0].reason,
            RetirementReason::kCanaryCondemned);
  EXPECT_EQ(ledger.retirements()[0].quarantines, 3u);
}

TEST(EnduranceLedgerTest, AgeMultiplierCompressesVirtualLifetime) {
  EnduranceOptions fast = SmallOptions();
  fast.age_multiplier = 10.0;
  EnduranceLedger ledger(fast);
  // 120 observed pv * 10x aging = 1200 consumed: past the whole budget.
  EXPECT_TRUE(ledger.ChargeBank(0, 120.0));
  EXPECT_TRUE(ledger.IsRetired(0));
}

TEST(EnduranceLedgerTest, TimelineDigestReplaysAndDiscriminates) {
  const auto run = [](double second_charge) {
    EnduranceLedger ledger(SmallOptions());
    ledger.BeginJob();
    ledger.ChargeBank(0, 1100.0);
    ledger.BeginJob();
    ledger.ChargeBank(1, second_charge);
    return ledger.TimelineDigest();
  };
  EXPECT_EQ(run(1100.0), run(1100.0));  // Same wear sequence, same digest.
  EXPECT_NE(run(1100.0), run(1300.0));  // Different wear at retirement.
  EXPECT_NE(run(1100.0), run(500.0));   // Different retirement count.
}

TEST(EnduranceLedgerTest, MaxLiveEscalationIgnoresRetiredBanks) {
  EnduranceLedger ledger(SmallOptions());
  ledger.ChargeBank(0, 950.0);  // 95%: level 3, the most-aged live bank.
  ledger.ChargeBank(1, 600.0);  // 60%: level 1.
  EXPECT_EQ(ledger.MaxLiveEscalationLevel(), 3);
  ledger.ChargeBank(0, 100.0);  // Retires bank 0.
  EXPECT_TRUE(ledger.IsRetired(0));
  EXPECT_EQ(ledger.MaxLiveEscalationLevel(), 1);
}

// ---- WearErrorHook ---------------------------------------------------------

TEST(WearErrorHookTest, DrawsAreAPureFunctionOfTicketAndCounter) {
  EnduranceOptions options = SmallOptions();
  options.bank_lane_bytes = 1 << 20;
  EnduranceLedger ledger(options);
  ledger.ChargeBank(0, 950.0);  // Level 3: 25% extra error rate.

  const auto run = [&ledger](uint64_t ticket) {
    WearErrorHook hook(&ledger, nullptr);
    hook.BeginJob(ticket);
    std::vector<uint32_t> stored;
    for (uint64_t i = 0; i < 256; ++i) {
      stored.push_back(hook.OnWrite(i * 4, /*precise_domain=*/false,
                                    0xabcd0123u, 0xabcd0123u));
    }
    return stored;
  };
  EXPECT_EQ(run(7), run(7));  // Same ticket: bit-identical error pattern.
  EXPECT_NE(run(7), run(8));  // Stream is keyed by the ticket.

  WearErrorHook hook(&ledger, nullptr);
  hook.BeginJob(7);
  for (uint64_t i = 0; i < 256; ++i) {
    hook.OnWrite(i * 4, false, 0xabcd0123u, 0xabcd0123u);
  }
  // A 25% rate over 256 draws flips something, deterministically.
  EXPECT_GT(hook.injected_errors(), 0u);
}

TEST(WearErrorHookTest, PreciseDomainAndHealthyBanksPassThrough) {
  EnduranceOptions options = SmallOptions();
  options.bank_lane_bytes = 1 << 20;
  EnduranceLedger ledger(options);
  ledger.ChargeBank(0, 950.0);  // Bank 0 heavily aged; bank 1 untouched.

  WearErrorHook hook(&ledger, nullptr);
  hook.BeginJob(3);
  for (uint64_t i = 0; i < 512; ++i) {
    // Aged bank, precise domain: aging never corrupts precise writes.
    EXPECT_EQ(hook.OnWrite(i * 4, /*precise_domain=*/true, 1u, 1u), 1u);
    // Healthy bank (lane 1), approx domain: below the first step, no draws.
    EXPECT_EQ(hook.OnWrite((1 << 20) + i * 4, false, 2u, 2u), 2u);
    // Reads are never age-corrupted (wear is a write phenomenon here).
    EXPECT_EQ(hook.OnRead(i * 4, false, 3u), 3u);
  }
  EXPECT_EQ(hook.injected_errors(), 0u);
}

// ---- HealthMonitor interval index ------------------------------------------

TEST(HealthMonitorIntervalTest, LookupMatchesBruteForceOverlap) {
  HealthMonitor monitor(HealthOptions{});
  // Overlapping, adjacent, and disjoint quarantines in shuffled order.
  const std::vector<std::pair<uint64_t, uint64_t>> regions = {
      {100, 50}, {400, 100}, {120, 100}, {220, 30}, {1000, 8}, {500, 20}};
  for (const auto& [base, span] : regions) {
    monitor.RecordQuarantine(base, span);
  }
  ASSERT_EQ(monitor.quarantined_regions().size(), regions.size());

  const auto brute = [&regions](uint64_t base, uint64_t span) {
    for (const auto& [b, s] : regions) {
      if (base < b + s && b < base + span) return true;
    }
    return false;
  };
  for (uint64_t base = 0; base < 1100; base += 7) {
    for (const uint64_t span : {1ull, 16ull, 128ull}) {
      EXPECT_EQ(monitor.IsQuarantined(base, span), brute(base, span))
          << "base=" << base << " span=" << span;
    }
  }
}

TEST(HealthMonitorIntervalTest, AdjacentRegionsMergeWithoutGaps) {
  HealthMonitor monitor(HealthOptions{});
  monitor.RecordQuarantine(0, 64);
  monitor.RecordQuarantine(64, 64);  // Touching: [0, 128) must be solid.
  EXPECT_TRUE(monitor.IsQuarantined(63, 2));
  EXPECT_TRUE(monitor.IsQuarantined(0, 1));
  EXPECT_TRUE(monitor.IsQuarantined(127, 1));
  EXPECT_FALSE(monitor.IsQuarantined(128, 1));
  EXPECT_EQ(monitor.stats().regions_quarantined, 2u);
}

TEST(HealthMonitorIntervalTest, ContainedAndSpanningInsertsStayCorrect) {
  HealthMonitor monitor(HealthOptions{});
  monitor.RecordQuarantine(100, 10);
  monitor.RecordQuarantine(300, 10);
  monitor.RecordQuarantine(50, 500);  // Swallows both earlier intervals.
  EXPECT_TRUE(monitor.IsQuarantined(49, 2));
  EXPECT_TRUE(monitor.IsQuarantined(549, 1));
  EXPECT_FALSE(monitor.IsQuarantined(550, 10));
  EXPECT_FALSE(monitor.IsQuarantined(0, 50));
}

}  // namespace
}  // namespace approxmem::approx
