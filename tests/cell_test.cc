#include "mlc/cell.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace approxmem::mlc {
namespace {

TEST(CellWriteTest, LandsInsideTargetRange) {
  MlcConfig config;
  Rng rng(1);
  for (int level = 0; level < config.levels; ++level) {
    for (int trial = 0; trial < 1000; ++trial) {
      const CellWriteResult result = WriteCell(level, config, rng);
      const double center = config.LevelCenter(level);
      EXPECT_GE(result.analog, center - config.t_width);
      EXPECT_LE(result.analog, center + config.t_width);
      EXPECT_GE(result.iterations, 1u);
    }
  }
}

TEST(CellWriteTest, PreciseTMatchesPaperIterationCount) {
  // Table 2: the precise configuration (T = 0.025) averages #P ~= 2.98.
  MlcConfig config;
  Rng rng(2);
  RunningStat pv;
  for (int trial = 0; trial < 40000; ++trial) {
    const int level = static_cast<int>(rng.UniformInt(config.levels));
    pv.Add(WriteCell(level, config, rng).iterations);
  }
  EXPECT_NEAR(pv.mean(), 2.98, 0.25);
}

TEST(CellWriteTest, WiderTargetNeedsFewerIterations) {
  MlcConfig narrow;
  MlcConfig wide = narrow.WithT(0.1);
  Rng rng(3);
  RunningStat pv_narrow;
  RunningStat pv_wide;
  for (int trial = 0; trial < 20000; ++trial) {
    const int level = static_cast<int>(rng.UniformInt(narrow.levels));
    pv_narrow.Add(WriteCell(level, narrow, rng).iterations);
    pv_wide.Add(WriteCell(level, wide, rng).iterations);
  }
  // Section 2.2: #P is roughly halved at T = 0.1.
  EXPECT_LT(pv_wide.mean(), 0.6 * pv_narrow.mean());
}

TEST(CellWriteTest, IterationCapIsHonored) {
  MlcConfig config;
  config.max_pv_iterations = 3;
  Rng rng(4);
  for (int trial = 0; trial < 1000; ++trial) {
    EXPECT_LE(WriteCell(3, config, rng).iterations, 3u);
  }
}

TEST(ReadDriftTest, DriftIsUpwardOnAverage) {
  MlcConfig config;
  Rng rng(5);
  RunningStat drift;
  for (int trial = 0; trial < 50000; ++trial) {
    drift.Add(ApplyReadDrift(0.5, config, rng) - 0.5);
  }
  const double expected_mean =
      config.drift_mu_per_decade * config.DriftDecades();
  const double expected_sigma =
      config.drift_sigma_per_decade * config.DriftDecades();
  EXPECT_NEAR(drift.mean(), expected_mean, 3e-4);
  EXPECT_NEAR(drift.stddev(), expected_sigma, 3e-4);
}

TEST(ReadCellTest, PreciseConfigReadsBackCorrectly) {
  // RBER at the precise T is ~1e-8; 100k trials must see zero errors.
  MlcConfig config;
  Rng rng(6);
  for (int trial = 0; trial < 100000; ++trial) {
    const int level = static_cast<int>(rng.UniformInt(config.levels));
    const CellWriteResult w = WriteCell(level, config, rng);
    EXPECT_EQ(ReadCell(w.analog, config, rng), level);
  }
}

TEST(ReadCellTest, NoGuardBandProducesErrors) {
  MlcConfig config = MlcConfig().WithT(0.124);
  Rng rng(7);
  int errors = 0;
  const int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const int level = static_cast<int>(rng.UniformInt(config.levels));
    const CellWriteResult w = WriteCell(level, config, rng);
    if (ReadCell(w.analog, config, rng) != level) ++errors;
  }
  // Figure 2(b): per-cell error rate in the several-percent range.
  EXPECT_GT(errors, kTrials / 100);
  EXPECT_LT(errors, kTrials / 4);
}

TEST(ReadCellTest, ErrorsLandOnAdjacentLevelsMostly) {
  MlcConfig config = MlcConfig().WithT(0.1);
  Rng rng(8);
  int adjacent = 0;
  int distant = 0;
  for (int trial = 0; trial < 200000; ++trial) {
    const int level = static_cast<int>(rng.UniformInt(config.levels));
    const CellWriteResult w = WriteCell(level, config, rng);
    const int read = ReadCell(w.analog, config, rng);
    if (read == level) continue;
    if (read == level + 1 || read == level - 1) {
      ++adjacent;
    } else {
      ++distant;
    }
  }
  EXPECT_GT(adjacent, 0);
  EXPECT_GT(adjacent, distant * 50);
}

}  // namespace
}  // namespace approxmem::mlc
