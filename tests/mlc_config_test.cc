#include "mlc/mlc_config.h"

#include <gtest/gtest.h>

namespace approxmem::mlc {
namespace {

TEST(MlcConfigTest, PaperDefaultsValidate) {
  MlcConfig config;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.levels, 4);
  EXPECT_EQ(config.BitsPerCell(), 2);
  EXPECT_EQ(config.CellsPerWord(), 16);
}

TEST(MlcConfigTest, LevelCentersAreEquallySpaced) {
  MlcConfig config;
  EXPECT_DOUBLE_EQ(config.LevelCenter(0), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(config.LevelCenter(1), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(config.LevelCenter(2), 5.0 / 8.0);
  EXPECT_DOUBLE_EQ(config.LevelCenter(3), 7.0 / 8.0);
}

TEST(MlcConfigTest, QuantizeNearestLevelWithClamping) {
  MlcConfig config;
  EXPECT_EQ(config.Quantize(0.0), 0);
  EXPECT_EQ(config.Quantize(0.2), 0);
  EXPECT_EQ(config.Quantize(0.26), 1);
  EXPECT_EQ(config.Quantize(0.6), 2);
  EXPECT_EQ(config.Quantize(0.99), 3);
  EXPECT_EQ(config.Quantize(-0.5), 0);   // Below range clamps.
  EXPECT_EQ(config.Quantize(1.5), 3);    // Above range clamps.
}

TEST(MlcConfigTest, QuantizeRoundTripsLevelCenters) {
  for (int levels : {2, 4, 8, 16}) {
    MlcConfig config;
    config.levels = levels;
    for (int l = 0; l < levels; ++l) {
      EXPECT_EQ(config.Quantize(config.LevelCenter(l)), l)
          << "levels=" << levels << " l=" << l;
    }
  }
}

TEST(MlcConfigTest, BitsPerCellAcrossDensities) {
  MlcConfig config;
  config.levels = 2;
  EXPECT_EQ(config.BitsPerCell(), 1);
  EXPECT_EQ(config.CellsPerWord(), 32);
  config.levels = 16;
  EXPECT_EQ(config.BitsPerCell(), 4);
  EXPECT_EQ(config.CellsPerWord(), 8);
}

TEST(MlcConfigTest, DriftDecades) {
  MlcConfig config;
  config.elapsed_seconds = 1e5;  // Table 2.
  EXPECT_DOUBLE_EQ(config.DriftDecades(), 5.0);
}

TEST(MlcConfigTest, WithTOverridesOnlyT) {
  MlcConfig config;
  const MlcConfig other = config.WithT(0.1);
  EXPECT_DOUBLE_EQ(other.t_width, 0.1);
  EXPECT_DOUBLE_EQ(other.beta, config.beta);
  EXPECT_DOUBLE_EQ(config.t_width, 0.025);  // Original untouched.
}

TEST(MlcConfigTest, MaxTWidthExcludesOverlap) {
  EXPECT_DOUBLE_EQ(MaxTWidth(4), 0.125);
  EXPECT_DOUBLE_EQ(MaxTWidth(2), 0.25);
}

TEST(MlcConfigValidateTest, RejectsBadLevels) {
  MlcConfig config;
  config.levels = 3;  // Not a power of two.
  EXPECT_FALSE(config.Validate().ok());
  config.levels = 1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(MlcConfigValidateTest, RejectsTOutOfRange) {
  MlcConfig config;
  config.t_width = 0.125;  // == 1/(2L): target ranges touch.
  EXPECT_FALSE(config.Validate().ok());
  config.t_width = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.t_width = -0.01;
  EXPECT_FALSE(config.Validate().ok());
  config.t_width = 0.124;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(MlcConfigValidateTest, RejectsBadBetaAndLatencies) {
  MlcConfig config;
  config.beta = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = MlcConfig();
  config.precise_write_latency_ns = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = MlcConfig();
  config.max_pv_iterations = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = MlcConfig();
  config.elapsed_seconds = 0.5;
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace approxmem::mlc
