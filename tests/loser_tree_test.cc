#include "extsort/loser_tree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace approxmem::extsort {
namespace {

TEST(LoserTreeTest, SingleWay) {
  LoserTree tree(1);
  EXPECT_TRUE(tree.Exhausted());
  tree.Update(0, 42, true);
  EXPECT_FALSE(tree.Exhausted());
  EXPECT_EQ(tree.MinWay(), 0u);
  EXPECT_EQ(tree.MinKey(), 42u);
  tree.Update(0, 0, false);
  EXPECT_TRUE(tree.Exhausted());
}

TEST(LoserTreeTest, SingleWayDrainsARunInOrder) {
  // Fan-in 1 is a real merge configuration (a tail group with one run);
  // the tree must behave as a pass-through cursor.
  LoserTree tree(1);
  const std::vector<uint32_t> run = {3, 3, 7, 9, 9, 9, 12};
  tree.Update(0, run[0], true);
  std::vector<uint32_t> drained;
  size_t pos = 0;
  while (!tree.Exhausted()) {
    drained.push_back(tree.MinKey());
    ++pos;
    tree.Update(0, pos < run.size() ? run[pos] : 0, pos < run.size());
  }
  EXPECT_EQ(drained, run);
}

TEST(LoserTreeTest, PicksMinimumAcrossWays) {
  LoserTree tree(4);
  tree.Update(0, 30, true);
  tree.Update(1, 10, true);
  tree.Update(2, 20, true);
  tree.Update(3, 40, true);
  EXPECT_EQ(tree.MinWay(), 1u);
  EXPECT_EQ(tree.MinKey(), 10u);
  tree.Update(1, 35, true);  // Way 1 advances past the others.
  EXPECT_EQ(tree.MinWay(), 2u);
  EXPECT_EQ(tree.MinKey(), 20u);
}

TEST(LoserTreeTest, EqualKeysPreferLowerWay) {
  LoserTree tree(3);
  tree.Update(0, 5, true);
  tree.Update(1, 5, true);
  tree.Update(2, 5, true);
  EXPECT_EQ(tree.MinWay(), 0u);
}

TEST(LoserTreeTest, DuplicateKeysAcrossAllRunsDrainRunStable) {
  // Every run holds the same key: the winner must always be the lowest
  // not-yet-exhausted way, so elements drain grouped by run — the run-
  // stability property the external merge relies on for determinism.
  constexpr size_t kWays = 4;
  constexpr size_t kPerRun = 3;
  LoserTree tree(kWays);
  std::vector<size_t> remaining(kWays, kPerRun);
  for (size_t w = 0; w < kWays; ++w) tree.Update(w, 77, true);
  std::vector<size_t> emit_order;
  while (!tree.Exhausted()) {
    const size_t w = tree.MinWay();
    EXPECT_EQ(tree.MinKey(), 77u);
    emit_order.push_back(w);
    --remaining[w];
    tree.Update(w, 77, remaining[w] > 0);
  }
  ASSERT_EQ(emit_order.size(), kWays * kPerRun);
  // Lowest live way wins every round: way 0 drains fully, then way 1, ...
  for (size_t i = 0; i < emit_order.size(); ++i) {
    EXPECT_EQ(emit_order[i], i / kPerRun) << "emission " << i;
  }
}

TEST(LoserTreeTest, ExhaustedRunReplacementOrder) {
  // When the winning run exhausts, the next winner must be the minimum of
  // the remaining heads — immediately, with no stale winner in between.
  LoserTree tree(3);
  tree.Update(0, 1, true);
  tree.Update(1, 5, true);
  tree.Update(2, 3, true);
  EXPECT_EQ(tree.MinWay(), 0u);
  tree.Update(0, 0, false);  // Way 0 exhausts while holding the minimum.
  EXPECT_FALSE(tree.Exhausted());
  EXPECT_EQ(tree.MinWay(), 2u);
  EXPECT_EQ(tree.MinKey(), 3u);
  tree.Update(2, 0, false);
  EXPECT_EQ(tree.MinWay(), 1u);
  EXPECT_EQ(tree.MinKey(), 5u);
  tree.Update(1, 0, false);
  EXPECT_TRUE(tree.Exhausted());
}

TEST(LoserTreeTest, ExhaustionInterleavedWithDuplicates) {
  // Ways exhaust at different times while the survivors all hold equal
  // keys; the winner must re-settle on the lowest live way each time.
  LoserTree tree(4);
  tree.Update(0, 9, true);
  tree.Update(1, 9, true);
  tree.Update(2, 9, true);
  tree.Update(3, 9, true);
  EXPECT_EQ(tree.MinWay(), 0u);
  tree.Update(0, 0, false);
  EXPECT_EQ(tree.MinWay(), 1u);
  tree.Update(1, 9, true);  // Way 1 yields another 9; still lowest live.
  EXPECT_EQ(tree.MinWay(), 1u);
  tree.Update(1, 0, false);
  EXPECT_EQ(tree.MinWay(), 2u);
  tree.Update(2, 0, false);
  EXPECT_EQ(tree.MinWay(), 3u);
  EXPECT_EQ(tree.MinKey(), 9u);
  tree.Update(3, 0, false);
  EXPECT_TRUE(tree.Exhausted());
}

TEST(LoserTreeTest, NonPowerOfTwoWays) {
  LoserTree tree(5);
  const uint32_t heads[5] = {9, 7, 8, 6, 10};
  for (size_t w = 0; w < 5; ++w) tree.Update(w, heads[w], true);
  EXPECT_EQ(tree.MinKey(), 6u);
  EXPECT_EQ(tree.MinWay(), 3u);
}

TEST(LoserTreeTest, MergesLikeStdMerge) {
  // Property: draining a loser tree over k sorted runs reproduces the
  // sorted concatenation.
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t k = 1 + rng.UniformInt(9);
    std::vector<std::vector<uint32_t>> runs(k);
    std::vector<uint32_t> all;
    for (auto& run : runs) {
      run.resize(rng.UniformInt(50));
      for (auto& v : run) v = static_cast<uint32_t>(rng.UniformInt(100));
      std::sort(run.begin(), run.end());
      all.insert(all.end(), run.begin(), run.end());
    }
    std::sort(all.begin(), all.end());

    LoserTree tree(k);
    std::vector<size_t> pos(k, 0);
    for (size_t w = 0; w < k; ++w) {
      if (!runs[w].empty()) tree.Update(w, runs[w][0], true);
    }
    std::vector<uint32_t> merged;
    while (!tree.Exhausted()) {
      const size_t w = tree.MinWay();
      merged.push_back(tree.MinKey());
      ++pos[w];
      if (pos[w] < runs[w].size()) {
        tree.Update(w, runs[w][pos[w]], true);
      } else {
        tree.Update(w, 0, false);
      }
    }
    EXPECT_EQ(merged, all) << "trial " << trial;
  }
}

}  // namespace
}  // namespace approxmem::extsort
