#include "mem/pcm.h"

#include <gtest/gtest.h>

namespace approxmem::mem {
namespace {

TEST(PcmConfigTest, DefaultsMatchTable1) {
  PcmConfig config;
  EXPECT_EQ(config.ranks, 4u);
  EXPECT_EQ(config.banks_per_rank, 8u);
  EXPECT_EQ(config.TotalBanks(), 32u);
  EXPECT_EQ(config.page_bytes, 4096u);
  EXPECT_EQ(config.write_queue_depth, 32u);
  EXPECT_EQ(config.read_queue_depth, 8u);
  EXPECT_DOUBLE_EQ(config.read_latency_ns, 50.0);
  EXPECT_DOUBLE_EQ(config.write_latency_ns, 1000.0);
  EXPECT_TRUE(config.Validate().ok());
}

TEST(PcmConfigTest, Validation) {
  PcmConfig config;
  config.ranks = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = PcmConfig();
  config.page_bytes = 1000;
  EXPECT_FALSE(config.Validate().ok());
  config = PcmConfig();
  config.write_queue_depth = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(PcmSimulatorTest, BankInterleavingByPage) {
  PcmSimulator sim(PcmConfig{});
  EXPECT_EQ(sim.BankOf(0), 0u);
  EXPECT_EQ(sim.BankOf(4096), 1u);
  EXPECT_EQ(sim.BankOf(4095), 0u);
  EXPECT_EQ(sim.BankOf(32ull * 4096), 0u);  // Wraps at 32 banks.
}

TEST(PcmSimulatorTest, SingleReadCostsReadLatency) {
  PcmSimulator sim(PcmConfig{});
  const double latency = sim.Read(0);
  EXPECT_DOUBLE_EQ(latency, 50.0);
  EXPECT_DOUBLE_EQ(sim.cpu_time_ns(), 50.0);
}

TEST(PcmSimulatorTest, PostedWritesDoNotBlockCpu) {
  PcmSimulator sim(PcmConfig{});
  for (int i = 0; i < 10; ++i) sim.Write(0);
  EXPECT_DOUBLE_EQ(sim.cpu_time_ns(), 0.0);  // All posted.
  sim.Finish();
  EXPECT_EQ(sim.Stats().writes, 10u);
  // Ten writes drain serially on one bank.
  EXPECT_DOUBLE_EQ(sim.Stats().completion_time_ns, 10 * 1000.0);
}

TEST(PcmSimulatorTest, FullWriteQueueStallsCpu) {
  PcmConfig config;
  config.write_queue_depth = 2;
  PcmSimulator sim(config);
  // The first write starts service immediately; the next two fill the
  // two-entry queue behind it.
  sim.Write(0);
  sim.Write(0);
  sim.Write(0);
  EXPECT_DOUBLE_EQ(sim.cpu_time_ns(), 0.0);
  sim.Write(0);  // Queue full: stalls until the oldest queued write drains.
  EXPECT_GT(sim.cpu_time_ns(), 0.0);
  EXPECT_EQ(sim.Stats().write_queue_full_events, 1u);
  EXPECT_GT(sim.Stats().write_stall_ns, 0.0);
}

TEST(PcmSimulatorTest, ReadWaitsForInflightWrite) {
  PcmSimulator sim(PcmConfig{});
  sim.Write(0);   // Posted; starts service at t=0 on bank 0.
  // Let the bank pick up the write by issuing a read: the read must wait
  // for the in-service write to finish.
  const double latency = sim.Read(0);
  EXPECT_GT(latency, 50.0);
  EXPECT_GT(sim.Stats().read_queue_wait_ns, 0.0);
}

TEST(PcmSimulatorTest, ReadPriorityBypassesQueuedWrites) {
  PcmSimulator sim(PcmConfig{});
  for (int i = 0; i < 20; ++i) sim.Write(0);  // Deep write queue on bank 0.
  const double latency = sim.Read(0);
  // With read priority the read waits at most one write service time, not
  // twenty.
  EXPECT_LE(latency, 1000.0 + 50.0);
}

TEST(PcmSimulatorTest, ReadOnOtherBankUnaffected) {
  PcmSimulator sim(PcmConfig{});
  for (int i = 0; i < 20; ++i) sim.Write(0);  // Bank 0 busy.
  const double latency = sim.Read(4096);      // Bank 1 idle.
  EXPECT_DOUBLE_EQ(latency, 50.0);
}

TEST(PcmSimulatorTest, CustomWriteServiceLatency) {
  PcmSimulator sim(PcmConfig{});
  sim.Write(0, 500.0);  // Approximate bank: faster writes.
  sim.Finish();
  EXPECT_DOUBLE_EQ(sim.Stats().total_write_latency_ns, 500.0);
}

TEST(PcmSimulatorTest, ReplayAggregates) {
  TraceBuffer trace;
  for (uint64_t i = 0; i < 64; ++i) trace.AppendWrite(i * 4096);
  for (uint64_t i = 0; i < 64; ++i) trace.AppendRead(i * 4096);
  const PcmStats stats = PcmSimulator::Replay(PcmConfig{}, trace);
  EXPECT_EQ(stats.writes, 64u);
  EXPECT_EQ(stats.reads, 64u);
  EXPECT_DOUBLE_EQ(stats.total_write_latency_ns, 64 * 1000.0);
  EXPECT_GT(stats.completion_time_ns, 0.0);
}

TEST(PcmSimulatorTest, ParallelBanksFinishFasterThanSerial) {
  // 32 writes across 32 banks complete in ~1 write time; 32 writes to one
  // bank take 32x as long.
  TraceBuffer spread;
  TraceBuffer pinned;
  for (uint64_t i = 0; i < 32; ++i) {
    spread.AppendWrite(i * 4096);
    pinned.AppendWrite(0);
  }
  const PcmStats spread_stats = PcmSimulator::Replay(PcmConfig{}, spread);
  const PcmStats pinned_stats = PcmSimulator::Replay(PcmConfig{}, pinned);
  EXPECT_LT(spread_stats.completion_time_ns,
            pinned_stats.completion_time_ns / 8.0);
}

TEST(PcmRowBufferTest, DisabledByDefault) {
  PcmSimulator sim(PcmConfig{});
  sim.Read(0);
  sim.Read(0);
  sim.Finish();
  EXPECT_EQ(sim.Stats().row_buffer_hits, 0u);
}

TEST(PcmRowBufferTest, SameRowReadsGetDiscount) {
  PcmConfig config;
  config.row_buffer_hit_factor = 0.4;
  PcmSimulator sim(config);
  EXPECT_DOUBLE_EQ(sim.Read(0), 50.0);        // Opens the row.
  EXPECT_DOUBLE_EQ(sim.Read(64), 20.0);       // Same 4KB row: hit.
  EXPECT_DOUBLE_EQ(sim.Read(32 * 4096), 50.0);  // Same bank, other row.
  EXPECT_DOUBLE_EQ(sim.Read(32 * 4096 + 8), 20.0);
  EXPECT_EQ(sim.Stats().row_buffer_hits, 2u);
}

TEST(PcmRowBufferTest, SequentialWritesDrainFaster) {
  auto run = [](double factor) {
    PcmConfig config;
    config.row_buffer_hit_factor = factor;
    PcmSimulator sim(config);
    for (uint64_t i = 0; i < 64; ++i) sim.Write(i * 4);  // One row.
    sim.Finish();
    return sim.Stats().completion_time_ns;
  };
  EXPECT_LT(run(0.5), run(1.0));
  EXPECT_NEAR(run(0.5), 1000.0 + 63 * 500.0, 1.0);
}

TEST(PcmRowBufferTest, RowStateSurvivesAcrossQueueing) {
  PcmConfig config;
  config.row_buffer_hit_factor = 0.5;
  PcmSimulator sim(config);
  sim.Write(0);
  const double latency = sim.Read(64);  // Write to row 0 serviced first.
  // The read hits the row the write opened: waits 1000 then 25ns service.
  EXPECT_DOUBLE_EQ(latency, 1000.0 + 25.0);
}

TEST(PcmRowBufferTest, ValidatesFactorRange) {
  PcmConfig config;
  config.row_buffer_hit_factor = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.row_buffer_hit_factor = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.row_buffer_hit_factor = 1.0;
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace approxmem::mem
