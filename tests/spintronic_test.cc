#include "approx/spintronic.h"

#include <bit>

#include <gtest/gtest.h>

#include "approx/approx_memory.h"

namespace approxmem::approx {
namespace {

TEST(SpintronicConfigTest, PaperOperatingPoints) {
  const auto configs = PaperSpintronicConfigs();
  EXPECT_DOUBLE_EQ(configs[0].energy_saving_per_write, 0.05);
  EXPECT_DOUBLE_EQ(configs[0].bit_error_prob, 1e-7);
  EXPECT_DOUBLE_EQ(configs[3].energy_saving_per_write, 0.50);
  EXPECT_DOUBLE_EQ(configs[3].bit_error_prob, 1e-4);
  for (const auto& config : configs) {
    EXPECT_TRUE(config.Validate().ok());
  }
}

TEST(SpintronicConfigTest, ApproxWriteEnergy) {
  SpintronicConfig config;
  config.energy_saving_per_write = 0.33;
  EXPECT_DOUBLE_EQ(config.ApproxWriteEnergy(), 0.67);
}

TEST(SpintronicConfigTest, Validation) {
  SpintronicConfig config;
  config.bit_error_prob = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = SpintronicConfig();
  config.energy_saving_per_write = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = SpintronicConfig();
  config.precise_write_energy = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SpintronicConfigTest, Label) {
  SpintronicConfig config;
  config.energy_saving_per_write = 0.33;
  config.bit_error_prob = 1e-5;
  EXPECT_EQ(SpintronicLabel(config), "33%/1e-05");
}

TEST(SpintronicWriteModelTest, ErrorFreeWhenProbabilityZero) {
  SpintronicConfig config;
  config.bit_error_prob = 0.0;
  SpintronicWriteModel model(config);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t v = rng.NextU32();
    EXPECT_EQ(model.Write(v, rng).stored, v);
  }
}

TEST(SpintronicWriteModelTest, BitFlipRateMatchesConfig) {
  SpintronicConfig config;
  config.bit_error_prob = 1e-3;  // Exaggerated so the test converges fast.
  SpintronicWriteModel model(config);
  Rng rng(2);
  uint64_t flipped_bits = 0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    const uint32_t v = rng.NextU32();
    flipped_bits += std::popcount(model.Write(v, rng).stored ^ v);
  }
  const double measured =
      static_cast<double>(flipped_bits) / (32.0 * kTrials);
  EXPECT_NEAR(measured, 1e-3, 1e-4);
}

TEST(SpintronicWriteModelTest, EnergyFollowsSavingFraction) {
  SpintronicConfig config;
  config.energy_saving_per_write = 0.20;
  SpintronicWriteModel model(config);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(model.Write(42, rng).cost, 0.80);
  EXPECT_EQ(model.CostUnit(), "energy");
  EXPECT_FALSE(model.IsPrecise());
}

TEST(SpintronicWriteModelTest, PreciseBaselineUnitEnergyNoErrors) {
  PreciseSpintronicWriteModel model{SpintronicConfig{}};
  Rng rng(4);
  const WordWriteOutcome outcome = model.Write(0xABCD, rng);
  EXPECT_EQ(outcome.stored, 0xABCDu);
  EXPECT_DOUBLE_EQ(outcome.cost, 1.0);
  EXPECT_TRUE(model.IsPrecise());
}

TEST(SpintronicArrayTest, HighErrorPointCorruptsSomeWrites) {
  ApproxMemory::Options options;
  options.backend = std::string(kSpintronicBackendName);
  options.calibration_trials = 2000;  // PCM calibration unused here.
  ApproxMemory memory(options);
  SpintronicConfig config = PaperSpintronicConfigs()[3];  // 1e-4 per bit.
  ApproxArrayU32 array = memory.NewApproxArray(100000, config.bit_error_prob);
  Rng rng(5);
  for (size_t i = 0; i < array.size(); ++i) array.Set(i, rng.NextU32());
  // Per-word error ~ 1-(1-1e-4)^32 ~ 0.32%.
  EXPECT_NEAR(array.ErrorRate(), 0.0032, 0.001);
  EXPECT_DOUBLE_EQ(array.stats().write_cost, 0.5 * 100000);
}

}  // namespace
}  // namespace approxmem::approx
