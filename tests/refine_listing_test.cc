// Unit tests of the refine stage's building blocks: the Listing 1
// heuristic (including the paper's Figure 8 running example) and the
// exact-LIS ablation mode.
#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "core/workload.h"
#include "refine/approx_refine.h"
#include "sortedness/lis.h"

namespace approxmem::refine {
namespace {

TEST(HeuristicRemTest, PaperFigure8Example) {
  // Key~ after the approx stage in Figure 8; the marked disorders are the
  // third element (35) and the sixth (928).
  const std::vector<uint32_t> values = {1, 6, 35, 33, 96, 928, 168, 528};
  const std::vector<size_t> rem = HeuristicRemPositions(values);
  EXPECT_EQ(rem, (std::vector<size_t>{2, 5}));
}

TEST(HeuristicRemTest, TrivialSizes) {
  EXPECT_TRUE(HeuristicRemPositions({}).empty());
  EXPECT_TRUE(HeuristicRemPositions({7}).empty());
  EXPECT_TRUE(HeuristicRemPositions({1, 2}).empty());
  // Descending pair: the last element is below the tail.
  EXPECT_EQ(HeuristicRemPositions({2, 1}), (std::vector<size_t>{1}));
}

TEST(HeuristicRemTest, SortedSequencesStayIntact) {
  EXPECT_TRUE(HeuristicRemPositions({1, 2, 3, 4, 5}).empty());
  EXPECT_TRUE(HeuristicRemPositions({5, 5, 5, 5}).empty());  // Duplicates.
}

TEST(HeuristicRemTest, SingleUpwardOutlier) {
  // One corrupted-high element violates its right-neighbour check.
  const std::vector<uint32_t> values = {1, 2, 1000, 3, 4, 5};
  EXPECT_EQ(HeuristicRemPositions(values), (std::vector<size_t>{2}));
}

TEST(HeuristicRemTest, SingleDownwardOutlier) {
  // A corrupted-low element is flagged together with its left neighbour
  // (which fails its right-neighbour check) — the heuristic's deliberate
  // over-approximation of REM.
  const std::vector<uint32_t> values = {1, 2, 0, 3, 4, 5};
  EXPECT_EQ(HeuristicRemPositions(values), (std::vector<size_t>{1, 2}));
}

TEST(HeuristicRemTest, AcceptedSubsequenceIsAlwaysNonDecreasing) {
  // The guarantee the merge step relies on: whatever the heuristic keeps
  // must be non-decreasing, on any input.
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint32_t> values(2 + rng.UniformInt(200));
    for (auto& v : values) v = static_cast<uint32_t>(rng.UniformInt(64));
    const std::vector<size_t> rem = HeuristicRemPositions(values);
    std::vector<bool> removed(values.size(), false);
    for (const size_t pos : rem) removed[pos] = true;
    uint32_t tail = 0;
    bool first = true;
    for (size_t i = 0; i < values.size(); ++i) {
      if (removed[i]) continue;
      if (!first) {
        EXPECT_GE(values[i], tail) << "trial " << trial;
      }
      tail = values[i];
      first = false;
    }
  }
}

TEST(HeuristicRemTest, RemIsUpperBoundOfExactRem) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint32_t> values(2 + rng.UniformInt(300));
    for (auto& v : values) v = rng.NextU32();
    EXPECT_GE(HeuristicRemPositions(values).size(),
              sortedness::Rem(values));
  }
}

class ExactLisModeTest : public ::testing::Test {
 protected:
  ExactLisModeTest() : memory_(MakeOptions()) {}

  static approx::ApproxMemory::Options MakeOptions() {
    approx::ApproxMemory::Options options;
    options.calibration_trials = 20000;
    options.seed = 9;
    return options;
  }

  RefineOptions MakeRefineOptions(LisMode mode, double t) {
    RefineOptions options;
    options.algorithm = sort::AlgorithmId{sort::SortKind::kQuicksort, 0};
    options.lis_mode = mode;
    options.approx_alloc = [this, t](size_t n) {
      return memory_.NewApproxArray(n, t);
    };
    options.precise_alloc = [this](size_t n) {
      return memory_.NewPreciseArray(n);
    };
    return options;
  }

  approx::ApproxMemory memory_;
};

TEST_F(ExactLisModeTest, ProducesVerifiedOutput) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 3);
  std::vector<uint32_t> out;
  const auto report = ApproxRefineSort(
      keys, MakeRefineOptions(LisMode::kExact, 0.07), &out, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->verified());
}

TEST_F(ExactLisModeTest, FindsExactlyRemElements) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 30000, 4);
  const auto report = ApproxRefineSort(
      keys, MakeRefineOptions(LisMode::kExact, 0.065), nullptr, nullptr);
  ASSERT_TRUE(report.ok());
  // In exact mode REM is the true Rem of the *recovered* sequence
  // (original key values in approx-sorted order). That differs from the
  // Rem of the corrupted stored values, but stays in the same regime.
  EXPECT_GT(report->rem_estimate, 0u);
  EXPECT_LT(report->rem_estimate, 4 * report->approx_sortedness.rem + 20);
  EXPECT_GT(4 * report->rem_estimate + 20, report->approx_sortedness.rem);
}

TEST_F(ExactLisModeTest, ExactModeFindsNoMoreThanHeuristic) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 30000, 5);
  const auto exact = ApproxRefineSort(
      keys, MakeRefineOptions(LisMode::kExact, 0.06), nullptr, nullptr);
  const auto heuristic = ApproxRefineSort(
      keys, MakeRefineOptions(LisMode::kHeuristic, 0.06), nullptr, nullptr);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(heuristic.ok());
  EXPECT_LE(exact->rem_estimate, heuristic->rem_estimate);
}

TEST_F(ExactLisModeTest, ExactModePaysIntermediateWrites) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 10000, 6);
  const auto exact = ApproxRefineSort(
      keys, MakeRefineOptions(LisMode::kExact, 0.055), nullptr, nullptr);
  const auto heuristic = ApproxRefineSort(
      keys, MakeRefineOptions(LisMode::kHeuristic, 0.055), nullptr, nullptr);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(heuristic.ok());
  // Section 4.2: classical LIS needs >= 2n intermediate writes on top of
  // the 2n output writes, so the exact mode's refine stage costs >= 4n
  // writes and clearly more than the heuristic's.
  EXPECT_GE(exact->RefineWriteOps(), 4 * keys.size());
  EXPECT_GT(exact->RefineWriteOps(), heuristic->RefineWriteOps());
}

}  // namespace
}  // namespace approxmem::refine
