#include "mem/cache.h"

#include <gtest/gtest.h>

namespace approxmem::mem {
namespace {

CacheConfig SmallCache() {
  CacheConfig config;
  config.capacity_bytes = 1024;  // 4 sets x 4 ways x 64B.
  config.ways = 4;
  config.line_bytes = 64;
  config.hit_latency_ns = 1.0;
  return config;
}

TEST(CacheConfigTest, ValidatesGeometry) {
  EXPECT_TRUE(SmallCache().Validate().ok());
  CacheConfig bad = SmallCache();
  bad.line_bytes = 48;  // Not a power of two.
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallCache();
  bad.ways = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallCache();
  bad.capacity_bytes = 1000;  // Not a multiple of ways*line.
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallCache();
  bad.capacity_bytes = 768;  // 3 sets: not a power of two.
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(CacheTest, ColdMissThenHit) {
  Cache cache(SmallCache());
  EXPECT_FALSE(cache.AccessRead(0x0));
  EXPECT_TRUE(cache.AccessRead(0x0));
  EXPECT_TRUE(cache.AccessRead(0x3F));  // Same 64B line.
  EXPECT_FALSE(cache.AccessRead(0x40));  // Next line.
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheTest, LruEvictionOrder) {
  Cache cache(SmallCache());  // 4 ways per set; set stride is 4*64 = 256B.
  // Fill one set with 4 lines.
  for (uint64_t i = 0; i < 4; ++i) cache.AccessRead(i * 256);
  // Touch line 0 so line 1 becomes LRU.
  EXPECT_TRUE(cache.AccessRead(0));
  // Install a 5th line in the same set; line 1 must be evicted.
  EXPECT_FALSE(cache.AccessRead(4 * 256));
  EXPECT_TRUE(cache.AccessRead(0));        // Still resident.
  EXPECT_FALSE(cache.AccessRead(1 * 256));  // Evicted.
}

TEST(CacheTest, WritesDoNotAllocate) {
  Cache cache(SmallCache());
  EXPECT_FALSE(cache.AccessWrite(0x0));
  EXPECT_FALSE(cache.AccessRead(0x0));  // Still a miss: no write-allocate.
}

TEST(CacheTest, WriteHitsUpdateRecency) {
  Cache cache(SmallCache());
  for (uint64_t i = 0; i < 4; ++i) cache.AccessRead(i * 256);
  EXPECT_TRUE(cache.AccessWrite(0));       // Write hit touches line 0.
  cache.AccessRead(4 * 256);               // Evicts line 1 (LRU), not 0.
  EXPECT_TRUE(cache.AccessRead(0));
}

TEST(CacheTest, FlushInvalidatesAll) {
  Cache cache(SmallCache());
  cache.AccessRead(0);
  cache.Flush();
  EXPECT_FALSE(cache.AccessRead(0));
}

TEST(CacheTest, ResetStatsKeepsContents) {
  Cache cache(SmallCache());
  cache.AccessRead(0);
  cache.ResetStats();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_TRUE(cache.AccessRead(0));  // Line still resident.
}

TEST(CacheHierarchyTest, PaperDefaultGeometry) {
  CacheHierarchy hierarchy = CacheHierarchy::PaperDefault();
  EXPECT_EQ(hierarchy.l1().config().capacity_bytes, 32u * 1024);
  EXPECT_EQ(hierarchy.l2().config().capacity_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(hierarchy.l2().config().ways, 4u);
  EXPECT_EQ(hierarchy.l3().config().capacity_bytes, 32ull * 1024 * 1024);
  EXPECT_EQ(hierarchy.l3().config().ways, 8u);
  EXPECT_DOUBLE_EQ(hierarchy.l3().config().hit_latency_ns, 10.0);
}

TEST(CacheHierarchyTest, ReadFillsAllLevels) {
  CacheHierarchy hierarchy = CacheHierarchy::PaperDefault();
  EXPECT_EQ(hierarchy.Read(0x1234), HitLevel::kMemory);
  EXPECT_EQ(hierarchy.Read(0x1234), HitLevel::kL1);
}

TEST(CacheHierarchyTest, L1EvictionFallsBackToL2) {
  CacheHierarchy hierarchy = CacheHierarchy::PaperDefault();
  hierarchy.Read(0);
  // Stream enough lines through the same L1 set to evict address 0 from L1
  // but not from the much larger L2. L1: 32KB/8way/64B = 64 sets, so lines
  // 64*64B = 4KB apart share a set.
  for (uint64_t i = 1; i <= 8; ++i) hierarchy.Read(i * 4096);
  EXPECT_EQ(hierarchy.Read(0), HitLevel::kL2);
}

TEST(CacheHierarchyTest, LatencyPerLevel) {
  CacheHierarchy hierarchy = CacheHierarchy::PaperDefault();
  EXPECT_GT(hierarchy.LatencyNs(HitLevel::kL2),
            hierarchy.LatencyNs(HitLevel::kL1));
  EXPECT_GT(hierarchy.LatencyNs(HitLevel::kL3),
            hierarchy.LatencyNs(HitLevel::kL2));
  EXPECT_DOUBLE_EQ(hierarchy.LatencyNs(HitLevel::kMemory), 0.0);
}

}  // namespace
}  // namespace approxmem::mem
