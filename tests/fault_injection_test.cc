// Unit tests for the deterministic fault injector and its plumbing
// through the instrumented arrays and the banked PCM model.
#include "testing/fault_injection.h"

#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "mem/pcm.h"

namespace approxmem::testing {
namespace {

TEST(fault_injection, StuckAtForcesBitsOnWriteAndRead) {
  FaultPlan plan;
  StuckAtFault stuck;
  stuck.mask = 0x3u;
  stuck.value = 0x1u;
  plan.stuck_at.push_back(stuck);
  FaultInjector injector(plan);

  // Write path: stored bits under the mask come back forced.
  EXPECT_EQ(injector.OnWrite(0, true, 0xff, 0xff), 0xfdu);
  // Read path: the same forcing applies (covers pre-attach contents).
  EXPECT_EQ(injector.OnRead(0, true, 0x00), 0x01u);
  // Idempotent: re-applying changes nothing.
  EXPECT_EQ(injector.OnRead(0, true, 0x01), 0x01u);
  EXPECT_EQ(injector.injected_write_faults(), 1u);
  EXPECT_EQ(injector.injected_read_faults(), 1u);
}

TEST(fault_injection, RegionAndDomainScoping) {
  FaultPlan plan;
  StuckAtFault stuck;
  stuck.region = AddressRegion{100, 200};
  stuck.domain = FaultDomain::kApproxOnly;
  stuck.mask = 0xffffffffu;
  stuck.value = 0u;
  plan.stuck_at.push_back(stuck);
  FaultInjector injector(plan);

  // Outside the region: untouched.
  EXPECT_EQ(injector.OnWrite(99, false, 7, 7), 7u);
  EXPECT_EQ(injector.OnWrite(200, false, 7, 7), 7u);
  // Inside the region but wrong domain (precise): untouched.
  EXPECT_EQ(injector.OnWrite(150, true, 7, 7), 7u);
  // Inside region, approx domain: forced to zero.
  EXPECT_EQ(injector.OnWrite(150, false, 7, 7), 0u);
}

TEST(fault_injection, TransientReadFlipsLeaveStoredValueIntact) {
  FaultPlan plan;
  plan.seed = 5;
  TransientReadFault flips;
  flips.domain = FaultDomain::kAny;
  flips.probability = 1.0;  // Flip every read, deterministically.
  plan.read_flips.push_back(flips);
  FaultInjector injector(plan);

  // Every read is perturbed by exactly one bit...
  for (int i = 0; i < 16; ++i) {
    const uint32_t observed = injector.OnRead(4 * i, false, 0u);
    EXPECT_EQ(__builtin_popcount(observed), 1);
  }
  // ...but the write path is untouched: the stored value never changes.
  EXPECT_EQ(injector.OnWrite(0, false, 123, 123), 123u);
}

TEST(fault_injection, DriftBurstHitsOnlyItsWriteWindow) {
  FaultPlan plan;
  plan.seed = 9;
  DriftBurstFault burst;
  burst.domain = FaultDomain::kAny;
  burst.start_write = 10;
  burst.length = 20;
  burst.probability = 1.0;
  plan.drift_bursts.push_back(burst);
  FaultInjector injector(plan);

  uint64_t faulted = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    if (injector.OnWrite(4 * i, false, 0, 0) != 0u) ++faulted;
  }
  EXPECT_EQ(faulted, 20u);
  EXPECT_EQ(injector.injected_write_faults(), 20u);
  EXPECT_EQ(injector.writes_seen(), 50u);
}

TEST(fault_injection, EqualPlansMakeIdenticalDecisions) {
  const FaultPlan plan = FaultPlan::ApproxStorm(1234);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (uint64_t i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.OnWrite(4 * i, false, 77, 77), b.OnWrite(4 * i, false, 77, 77));
    EXPECT_EQ(a.OnRead(4 * i, false, 42), b.OnRead(4 * i, false, 42));
  }
  EXPECT_EQ(a.injected_write_faults(), b.injected_write_faults());
  EXPECT_EQ(a.injected_read_faults(), b.injected_read_faults());
}

TEST(fault_injection, HookReachesArraysThroughApproxMemory) {
  FaultPlan plan;
  StuckAtFault stuck;
  stuck.domain = FaultDomain::kPreciseOnly;
  stuck.mask = 0x1u;
  stuck.value = 0x1u;
  plan.stuck_at.push_back(stuck);
  FaultInjector injector(plan);

  approx::ApproxMemory::Options options;
  options.calibration_trials = 2000;
  options.fault_hook = &injector;
  approx::ApproxMemory memory(options);

  approx::ApproxArrayU32 precise = memory.NewPreciseArray(8);
  precise.Set(0, 2u);  // Even value: the stuck low bit corrupts it.
  EXPECT_EQ(precise.Get(0), 3u);
  // The corruption is visible in the array's own accounting.
  EXPECT_EQ(precise.stats().corrupted_writes, 1u);

  // Approximate arrays are out of this plan's domain: at the precise
  // operating point their writes stay clean.
  approx::ApproxArrayU32 approximate = memory.NewApproxArray(8, 0.025);
  approximate.Set(0, 2u);
  EXPECT_EQ(approximate.Get(0), 2u);
}

TEST(fault_injection, PcmLatencyDegradationInFaultyRegions) {
  FaultPlan plan;
  plan.pcm_latency_factor = 4.0;
  StuckAtFault stuck;
  stuck.region = AddressRegion{0, 4096};
  plan.stuck_at.push_back(stuck);
  FaultInjector injector(plan);

  mem::PcmConfig config;
  mem::PcmSimulator degraded(config);
  degraded.SetFaultListener(&injector);
  mem::PcmSimulator clean(config);

  // Same address inside the degraded region: 4x the read service time.
  const double slow = degraded.Read(128);
  const double fast = clean.Read(128);
  EXPECT_DOUBLE_EQ(slow, 4.0 * fast);
  EXPECT_EQ(degraded.Stats().faulted_accesses, 1u);

  // Outside the region the factor is 1.0 and nothing is counted.
  mem::PcmSimulator outside(config);
  outside.SetFaultListener(&injector);
  outside.Read(1u << 20);
  EXPECT_EQ(outside.Stats().faulted_accesses, 0u);
}

}  // namespace
}  // namespace approxmem::testing
