#include "extsort/async_device.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace approxmem::extsort {
namespace {

// 4 KiB blocks at 400 MB/s (= 400 bytes per virtual µs) with 100 µs of
// per-request latency: one block's service time is 100 + 4096/400 =
// 110.24 µs.
AsyncDeviceConfig OneChannelConfig() {
  AsyncDeviceConfig config;
  config.block_bytes = 4096;
  config.bandwidth_mb_per_s = 400.0;
  config.latency_us = 100.0;
  config.queue_depth = 1;
  return config;
}

constexpr double kOneBlockServiceUs = 100.0 + 4096.0 / 400.0;

TEST(AsyncDeviceConfigTest, ValidateRejectsDegenerateConfigs) {
  AsyncDeviceConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.block_bytes = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = AsyncDeviceConfig();
  config.block_bytes = 6;  // Not a multiple of the element size.
  EXPECT_FALSE(config.Validate().ok());
  config = AsyncDeviceConfig();
  config.bandwidth_mb_per_s = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = AsyncDeviceConfig();
  config.latency_us = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = AsyncDeviceConfig();
  config.queue_depth = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AsyncDeviceTest, WriteReadRoundTrip) {
  AsyncDevice device(OneChannelConfig());
  const int file = device.CreateFile();
  device.Wait(device.SubmitWrite(file, {1, 2, 3, 4, 5}, 0.0));
  EXPECT_EQ(device.FileSize(file), 5u);
  const auto id = device.SubmitRead(file, 1, 3, 0.0);
  device.Wait(id);
  EXPECT_EQ(device.TakeData(id), (std::vector<uint32_t>{2, 3, 4}));
}

TEST(AsyncDeviceTest, ReadClampsToFileEnd) {
  AsyncDevice device(OneChannelConfig());
  const int file = device.CreateFile();
  device.Wait(device.SubmitWrite(file, {7, 8}, 0.0));
  const auto tail = device.SubmitRead(file, 1, 100, 0.0);
  device.Wait(tail);
  EXPECT_EQ(device.TakeData(tail), (std::vector<uint32_t>{8}));
  const auto past = device.SubmitRead(file, 10, 5, 0.0);
  device.Wait(past);
  EXPECT_TRUE(device.TakeData(past).empty());
}

TEST(AsyncDeviceTest, ReadGathersAcrossWriteSegments) {
  AsyncDevice device(OneChannelConfig());
  const int file = device.CreateFile();
  device.Wait(device.SubmitWrite(file, {1, 2, 3}, 0.0));
  device.Wait(device.SubmitWrite(file, {4, 5}, 0.0));
  device.Wait(device.SubmitWrite(file, {6, 7, 8, 9}, 0.0));
  const auto id = device.SubmitRead(file, 1, 7, 0.0);
  device.Wait(id);
  EXPECT_EQ(device.TakeData(id),
            (std::vector<uint32_t>{2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(device.PeekData(file),
            (std::vector<uint32_t>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(AsyncDeviceTest, ServiceTimeFollowsLatencyPlusBandwidth) {
  AsyncDevice device(OneChannelConfig());
  const int file = device.CreateFile();
  // 1024 elements = exactly one 4 KiB block.
  const double done =
      device.Wait(device.SubmitWrite(file,
                                     std::vector<uint32_t>(1024, 1), 0.0));
  EXPECT_DOUBLE_EQ(done, kOneBlockServiceUs);
  EXPECT_DOUBLE_EQ(device.stats().write_busy_us, kOneBlockServiceUs);
  EXPECT_EQ(device.stats().blocks_written, 1u);
  EXPECT_EQ(device.stats().bytes_written, 4096u);
}

TEST(AsyncDeviceTest, PartialBlocksAreChargedWhole) {
  AsyncDevice device(OneChannelConfig());
  const int file = device.CreateFile();
  const double done = device.Wait(device.SubmitWrite(file, {42}, 0.0));
  // 4 bytes moved, one whole block charged.
  EXPECT_DOUBLE_EQ(done, kOneBlockServiceUs);
  EXPECT_EQ(device.stats().blocks_written, 1u);
  EXPECT_EQ(device.stats().bytes_written, 4u);
}

TEST(AsyncDeviceTest, SingleChannelSerializesAndAccruesQueueWait) {
  AsyncDevice device(OneChannelConfig());
  const int file = device.CreateFile();
  const auto first = device.SubmitWrite(file, {1}, 0.0);
  const auto second = device.SubmitWrite(file, {2}, 0.0);
  EXPECT_DOUBLE_EQ(device.Wait(first), kOneBlockServiceUs);
  // The second request was ready at 0 but queued behind the first.
  EXPECT_DOUBLE_EQ(device.Wait(second), 2 * kOneBlockServiceUs);
  EXPECT_DOUBLE_EQ(device.stats().queue_wait_us, kOneBlockServiceUs);
}

TEST(AsyncDeviceTest, QueueDepthServicesRequestsConcurrently) {
  AsyncDeviceConfig config = OneChannelConfig();
  config.queue_depth = 2;
  AsyncDevice device(config);
  const int file = device.CreateFile();
  const auto first = device.SubmitWrite(file, {1}, 0.0);
  const auto second = device.SubmitWrite(file, {2}, 0.0);
  const auto third = device.SubmitWrite(file, {3}, 0.0);
  EXPECT_DOUBLE_EQ(device.Wait(first), kOneBlockServiceUs);
  EXPECT_DOUBLE_EQ(device.Wait(second), kOneBlockServiceUs);
  EXPECT_DOUBLE_EQ(device.Wait(third), 2 * kOneBlockServiceUs);
}

TEST(AsyncDeviceTest, ReadyTimeDefersServiceStart) {
  AsyncDevice device(OneChannelConfig());
  const int file = device.CreateFile();
  device.Wait(device.SubmitWrite(file, {1}, 0.0));
  device.ResetClock();
  const auto id = device.SubmitRead(file, 0, 1, 1000.0);
  EXPECT_DOUBLE_EQ(device.Wait(id), 1000.0 + kOneBlockServiceUs);
  EXPECT_DOUBLE_EQ(device.stats().queue_wait_us, 0.0);
  device.TakeData(id);
}

TEST(AsyncDeviceTest, ResetClockRestartsVirtualTimeKeepsContents) {
  AsyncDevice device(OneChannelConfig());
  const int file = device.CreateFile();
  device.Wait(device.SubmitWrite(file, {1, 2, 3}, 0.0));
  device.ResetClock();
  const double done = device.Wait(device.SubmitWrite(file, {4}, 0.0));
  EXPECT_DOUBLE_EQ(done, kOneBlockServiceUs);  // Not queued behind staging.
  EXPECT_EQ(device.FileSize(file), 4u);
  EXPECT_EQ(device.stats().writes, 2u);  // Stats survive the reset.
}

TEST(AsyncDeviceTest, TruncateDropsContentsForFree) {
  AsyncDevice device(OneChannelConfig());
  const int a = device.CreateFile();
  const int b = device.CreateFile();
  device.Wait(device.SubmitWrite(a, {1, 2}, 0.0));
  device.Wait(device.SubmitWrite(b, {3}, 0.0));
  const DeviceStats before = device.stats();
  device.Truncate(a);
  EXPECT_EQ(device.FileSize(a), 0u);
  EXPECT_EQ(device.FileSize(b), 1u);
  EXPECT_EQ(device.stats().writes, before.writes);
  EXPECT_DOUBLE_EQ(device.stats().BusyUs(), before.BusyUs());
}

TEST(AsyncDeviceTest, VirtualTimesIdenticalWithAndWithoutPool) {
  // The cost model is evaluated at submit on the submitting thread, so
  // virtual completion times never depend on who moves the bytes.
  const auto run = [](ThreadPool* pool) {
    AsyncDeviceConfig config;
    config.queue_depth = 3;
    AsyncDevice device(config, pool);
    const int file = device.CreateFile();
    std::vector<double> times;
    std::vector<AsyncDevice::TransferId> writes;
    for (uint32_t i = 0; i < 8; ++i) {
      writes.push_back(device.SubmitWrite(
          file, std::vector<uint32_t>(100 + 37 * i, i), 50.0 * i));
    }
    for (const auto id : writes) times.push_back(device.Wait(id));
    const auto read = device.SubmitRead(file, 0, 500, times.back());
    times.push_back(device.Wait(read));
    const std::vector<uint32_t> data = device.TakeData(read);
    times.push_back(static_cast<double>(data.size()));
    return times;
  };
  ThreadPool pool(4);
  const std::vector<double> threaded = run(&pool);
  const std::vector<double> serial = run(nullptr);
  EXPECT_EQ(threaded, serial);
}

TEST(AsyncDeviceTest, ConcurrentSubmissionsLandInProgramOrderExtents) {
  // Extents are reserved at submit in program order even when the pool
  // moves the bytes later: the file layout is deterministic.
  ThreadPool pool(4);
  AsyncDevice device(AsyncDeviceConfig(), &pool);
  const int file = device.CreateFile();
  std::vector<AsyncDevice::TransferId> ids;
  for (uint32_t i = 0; i < 50; ++i) {
    ids.push_back(device.SubmitWrite(file, {i, i, i}, 0.0));
  }
  for (const auto id : ids) device.Wait(id);
  const std::vector<uint32_t> flat = device.PeekData(file);
  ASSERT_EQ(flat.size(), 150u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(flat[3 * i], i);
    EXPECT_EQ(flat[3 * i + 2], i);
  }
}

}  // namespace
}  // namespace approxmem::extsort
