#include "common/memory_budget.h"

#include <utility>

#include <gtest/gtest.h>

namespace approxmem {
namespace {

TEST(MemoryBudgetTest, ReserveReleaseTracksUsage) {
  MemoryBudget budget(1000);
  EXPECT_EQ(budget.capacity(), 1000u);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.remaining(), 1000u);
  budget.Reserve(300);
  EXPECT_EQ(budget.used(), 300u);
  EXPECT_EQ(budget.remaining(), 700u);
  budget.Reserve(700);
  EXPECT_EQ(budget.remaining(), 0u);
  budget.Release(300);
  budget.Release(700);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetTest, HighWaterRecordsPeakNotCurrent) {
  MemoryBudget budget(100);
  budget.Reserve(60);
  budget.Reserve(30);
  EXPECT_EQ(budget.high_water(), 90u);
  budget.Release(90);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.high_water(), 90u);
  budget.Reserve(10);
  EXPECT_EQ(budget.high_water(), 90u);  // A lower peak does not overwrite.
  budget.Release(10);
}

TEST(MemoryBudgetTest, CanReserveIsTheNegotiation) {
  MemoryBudget budget(100);
  budget.Reserve(80);
  EXPECT_TRUE(budget.CanReserve(20));
  EXPECT_FALSE(budget.CanReserve(21));
  EXPECT_TRUE(budget.CanReserve(0));
  budget.Release(80);
}

TEST(MemoryBudgetTest, ZeroCapacityIsUnlimited) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.CanReserve(SIZE_MAX / 2));
  budget.Reserve(1u << 30);
  EXPECT_EQ(budget.remaining(), SIZE_MAX);
  EXPECT_EQ(budget.high_water(), 1u << 30);  // Accounting still works.
  budget.Release(1u << 30);
}

TEST(MemoryBudgetDeathTest, BreachIsFatal) {
  MemoryBudget budget(100);
  budget.Reserve(60);
  EXPECT_DEATH(budget.Reserve(41), "capacity_");
  budget.Release(60);
}

TEST(MemoryBudgetDeathTest, OverReleaseIsFatal) {
  MemoryBudget budget(100);
  budget.Reserve(10);
  EXPECT_DEATH(budget.Release(11), "before >= bytes");
  budget.Release(10);
}

TEST(BudgetReservationTest, RaiiScopeReleases) {
  MemoryBudget budget(100);
  {
    BudgetReservation reservation(&budget, 40);
    EXPECT_EQ(budget.used(), 40u);
    EXPECT_EQ(reservation.bytes(), 40u);
  }
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.high_water(), 40u);
}

TEST(BudgetReservationTest, MoveTransfersOwnership) {
  MemoryBudget budget(100);
  BudgetReservation first(&budget, 30);
  BudgetReservation second(std::move(first));
  EXPECT_EQ(budget.used(), 30u);  // Single charge, not doubled.
  EXPECT_EQ(first.bytes(), 0u);   // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(second.bytes(), 30u);

  BudgetReservation third(&budget, 50);
  EXPECT_EQ(budget.used(), 80u);
  third = std::move(second);  // Releases the 50, adopts the 30.
  EXPECT_EQ(budget.used(), 30u);
  EXPECT_EQ(third.bytes(), 30u);
}

TEST(BudgetReservationTest, ResetReleasesEarlyAndIsIdempotent) {
  MemoryBudget budget(100);
  BudgetReservation reservation(&budget, 25);
  reservation.reset();
  EXPECT_EQ(budget.used(), 0u);
  reservation.reset();  // No double release.
  EXPECT_EQ(budget.used(), 0u);
}

TEST(BudgetReservationTest, DefaultAndNullBudgetAreNoOps) {
  BudgetReservation empty;
  EXPECT_EQ(empty.bytes(), 0u);
  BudgetReservation unbound(nullptr, 999);
  EXPECT_EQ(unbound.bytes(), 999u);  // Tracks size without a budget.
}

}  // namespace
}  // namespace approxmem
