// Tests for the pluggable memory-technology backend layer: registry
// behaviour, per-backend end-to-end smoke sorts, and the facade-level
// features (sequential-write discount, fault hooks) that must behave
// uniformly across every backend because they live above the WriteModel.
#include "approx/memory_backend.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "approx/fault_hook.h"
#include "core/engine.h"
#include "core/resilience.h"
#include "core/workload.h"

namespace approxmem::approx {
namespace {

TEST(BackendRegistryTest, BuiltInsAreRegistered) {
  const std::vector<std::string> names = RegisteredBackendNames();
  for (const std::string_view expected :
       {kPcmBackendName, kBankedPcmBackendName, kSpintronicBackendName,
        kDramPreciseBackendName}) {
    EXPECT_TRUE(IsRegisteredBackend(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), std::string(expected)),
              names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_FALSE(IsRegisteredBackend("no-such-technology"));
}

TEST(BackendRegistryTest, UnknownNameIsACleanStatus) {
  const auto backend = CreateMemoryBackend("memristive", BackendContext{});
  ASSERT_FALSE(backend.ok());
  EXPECT_NE(backend.status().ToString().find("memristive"), std::string::npos);
  // The diagnostic lists what IS registered, so the fix is self-evident.
  EXPECT_NE(backend.status().ToString().find(std::string(kPcmBackendName)),
            std::string::npos);
}

TEST(BackendRegistryTest, DuplicateAndEmptyRegistrationsAreRejected) {
  EXPECT_FALSE(
      RegisterMemoryBackend(kPcmBackendName, internal::MakePcmBackend));
  EXPECT_FALSE(RegisterMemoryBackend("", internal::MakePcmBackend));
  EXPECT_FALSE(RegisterMemoryBackend("null-factory", nullptr));
}

TEST(BackendRegistryTest, PluginRegistrationIsCreatable) {
  // A plug-in backend registers under a new name and is immediately
  // constructible through the registry, exactly like the built-ins.
  static const bool registered = RegisterMemoryBackend(
      "test-plugin-dram", internal::MakeDramPreciseBackend);
  EXPECT_TRUE(registered);
  const auto backend =
      CreateMemoryBackend("test-plugin-dram", BackendContext{});
  ASSERT_TRUE(backend.ok());
  EXPECT_EQ((*backend)->name(), kDramPreciseBackendName);
}

TEST(BackendContractTest, KnobConstantsAreCoherent) {
  BackendContext context;
  context.calibration_trials = 2000;
  for (const std::string& name : RegisteredBackendNames()) {
    auto backend = CreateMemoryBackend(name, context);
    ASSERT_TRUE(backend.ok()) << name;
    MemoryBackend& b = **backend;
    EXPECT_FALSE(b.name().empty());
    EXPECT_FALSE(b.cost_unit().empty());
    // The ladder floor and the default operating point must be servable.
    EXPECT_TRUE(b.Validate(AllocSpec::Approx(b.min_knob(), 100)).ok())
        << name;
    EXPECT_TRUE(
        b.Validate(AllocSpec::Approx(b.default_approx_knob(), 100)).ok())
        << name;
    EXPECT_TRUE(b.Validate(AllocSpec::Precise(100)).ok()) << name;
    // Approximation must not be costlier than precision at the default knob.
    EXPECT_LE(b.WriteCostRatio(b.default_approx_knob()), 1.0) << name;
    EXPECT_GT(b.WriteCostRatio(b.default_approx_knob()), 0.0) << name;
  }
}

// Every registered backend must drive the full approx-refine pipeline to a
// verified, exactly sorted output with a nonzero cost ledger — the backend
// interface is only useful if a backend is a drop-in for the whole engine.
TEST(BackendSmokeTest, EveryBackendSortsExactlyThroughRefine) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 4000, 77);
  std::vector<uint32_t> golden = keys;
  std::sort(golden.begin(), golden.end());
  for (const std::string& name : RegisteredBackendNames()) {
    core::EngineOptions options;
    options.backend = name;
    options.seed = 7;
    options.calibration_trials = 5000;
    core::ApproxSortEngine engine(options);
    const double knob = engine.memory().backend().default_approx_knob();
    std::vector<uint32_t> out_keys;
    const auto outcome = engine.SortApproxRefine(
        keys, sort::AlgorithmId{sort::SortKind::kLsdRadix, 3}, knob,
        &out_keys);
    ASSERT_TRUE(outcome.ok()) << name;
    EXPECT_TRUE(outcome->refine.verified()) << name;
    EXPECT_EQ(out_keys, golden) << name;
    EXPECT_GT(outcome->refine.TotalWriteCost(), 0.0) << name;
    EXPECT_GT(outcome->baseline.TotalWriteCost(), 0.0) << name;
  }
}

// The resilient ladder must work on every backend too: with min_t left at
// its NaN sentinel the escalation floor comes from the backend itself.
TEST(BackendSmokeTest, EveryBackendSortsThroughTheResilientLadder) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 2000, 78);
  for (const std::string& name : RegisteredBackendNames()) {
    core::EngineOptions options;
    options.backend = name;
    options.seed = 8;
    options.calibration_trials = 5000;
    options.health.enabled = true;
    core::ApproxSortEngine engine(options);
    const double knob = engine.memory().backend().default_approx_knob();
    const auto report = core::SortResilient(
        engine, keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0}, knob);
    ASSERT_TRUE(report.ok()) << name;
    EXPECT_TRUE(report->verified) << name;
    EXPECT_GE(report->attempts.size(), 1u) << name;
  }
}

// --- Facade-uniformity pinning tests (sequential discount, fault hook) ---
//
// These features are implemented once, in ApproxArrayU32/ApproxMemory,
// *above* the WriteModel — so they must behave identically whichever
// backend serves the allocation.

double SequentialStoreCost(const std::string& backend, double discount,
                           size_t n) {
  ApproxMemory::Options options;
  options.backend = backend;
  options.seed = 99;
  options.calibration_trials = 2000;
  options.sequential_write_discount = discount;
  ApproxMemory memory(options);
  ApproxArrayU32 array =
      memory.NewApproxArray(n, memory.backend().default_approx_knob());
  for (size_t i = 0; i < n; ++i) array.Set(i, static_cast<uint32_t>(i));
  EXPECT_EQ(array.stats().sequential_writes, n - 1) << backend;
  return array.stats().write_cost;
}

TEST(BackendUniformityTest, SequentialWriteDiscountAppliesOnEveryBackend) {
  for (const std::string& name : RegisteredBackendNames()) {
    const size_t n = 512;
    const double full = SequentialStoreCost(name, 1.0, n);
    const double half = SequentialStoreCost(name, 0.5, n);
    // Identical seeds -> identical per-write base costs; only the discount
    // differs. The first write is never sequential, so the discounted run
    // costs more than half the undiscounted one but strictly less than it.
    EXPECT_LT(half, full) << name;
    EXPECT_GE(half, 0.5 * full) << name;
  }
}

// Forces every approximate store to a sentinel and counts calls, proving
// the hook sits below the model on all backends (including precise-only
// ones, where the "approximate" domain is served by a precise model).
class SentinelHook : public MemoryFaultHook {
 public:
  uint32_t OnWrite(uint64_t, bool, uint32_t, uint32_t) override {
    ++writes_;
    return 0xDEADBEEFu;
  }
  uint32_t OnRead(uint64_t, bool, uint32_t value) override {
    ++reads_;
    return value;
  }
  uint64_t writes() const { return writes_; }
  uint64_t reads() const { return reads_; }

 private:
  uint64_t writes_ = 0;
  uint64_t reads_ = 0;
};

TEST(BackendUniformityTest, FaultHookObservesEveryAccessOnEveryBackend) {
  for (const std::string& name : RegisteredBackendNames()) {
    SentinelHook hook;
    ApproxMemory::Options options;
    options.backend = name;
    options.seed = 100;
    options.calibration_trials = 2000;
    options.fault_hook = &hook;
    ApproxMemory memory(options);
    const size_t n = 64;
    ApproxArrayU32 array =
        memory.NewApproxArray(n, memory.backend().default_approx_knob());
    for (size_t i = 0; i < n; ++i) array.Set(i, static_cast<uint32_t>(i));
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(array.Get(i), 0xDEADBEEFu) << name << " @" << i;
    }
    EXPECT_EQ(hook.writes(), n) << name;
    EXPECT_EQ(hook.reads(), n) << name;
  }
}

}  // namespace
}  // namespace approxmem::approx
