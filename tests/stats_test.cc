#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace approxmem {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat stat;
  stat.Add(5.0);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_EQ(stat.mean(), 5.0);
  EXPECT_EQ(stat.min(), 5.0);
  EXPECT_EQ(stat.max(), 5.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_EQ(stat.min(), 2.0);
  EXPECT_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptyIsNoop) {
  RunningStat stat;
  stat.Add(1.0);
  stat.Add(3.0);
  RunningStat empty;
  stat.Merge(empty);
  EXPECT_EQ(stat.count(), 2u);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.0);
  empty.Merge(stat);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram hist(0.0, 10.0, 10);
  hist.Add(0.5);
  hist.Add(9.5);
  hist.Add(-100.0);  // Clamps to first bin.
  hist.Add(100.0);   // Clamps to last bin.
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.bin_count(0), 2u);
  EXPECT_EQ(hist.bin_count(9), 2u);
}

TEST(HistogramTest, BinCenters) {
  Histogram hist(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(hist.bin_center(0), 0.125);
  EXPECT_DOUBLE_EQ(hist.bin_center(3), 0.875);
}

TEST(HistogramTest, QuantileOfUniformFill) {
  Histogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) hist.Add(i + 0.5);
  EXPECT_NEAR(hist.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(hist.Quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(hist.Quantile(0.01), 1.0, 1.5);
}

}  // namespace
}  // namespace approxmem
