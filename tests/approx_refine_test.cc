#include "refine/approx_refine.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "core/workload.h"

namespace approxmem::refine {
namespace {

class RefineFixture : public ::testing::Test {
 protected:
  RefineFixture() : memory_(MakeOptions()) {}

  static approx::ApproxMemory::Options MakeOptions() {
    approx::ApproxMemory::Options options;
    options.calibration_trials = 20000;
    options.seed = 21;
    return options;
  }

  RefineOptions MakeRefineOptions(const sort::AlgorithmId& algorithm,
                                  double t) {
    RefineOptions options;
    options.algorithm = algorithm;
    options.approx_alloc = [this, t](size_t n) {
      return memory_.NewApproxArray(n, t);
    };
    options.precise_alloc = [this](size_t n) {
      return memory_.NewPreciseArray(n);
    };
    return options;
  }

  approx::ApproxMemory memory_;
};

TEST_F(RefineFixture, ProducesExactlySortedOutput) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 3);
  for (const sort::AlgorithmId& algorithm : sort::HeadlineAlgorithms()) {
    std::vector<uint32_t> out_keys;
    std::vector<uint32_t> out_ids;
    const auto report = ApproxRefineSort(
        keys, MakeRefineOptions(algorithm, 0.08), &out_keys, &out_ids);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->verified()) << algorithm.Name();
    ASSERT_EQ(out_keys.size(), keys.size());
    EXPECT_TRUE(std::is_sorted(out_keys.begin(), out_keys.end()));
    for (size_t i = 0; i < out_keys.size(); ++i) {
      EXPECT_EQ(out_keys[i], keys[out_ids[i]]);
    }
  }
}

TEST_F(RefineFixture, VerifiedEvenAtWorstCorruption) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 5000, 4);
  const auto report = ApproxRefineSort(
      keys,
      MakeRefineOptions(sort::AlgorithmId{sort::SortKind::kMergesort, 0},
                        0.124),
      nullptr, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->verified());
  // Rem~ should be near n for a chaotic output.
  EXPECT_GT(report->rem_estimate, keys.size() / 2);
}

TEST_F(RefineFixture, EdgeCaseSizes) {
  for (size_t n : {0u, 1u, 2u, 3u}) {
    const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 5);
    std::vector<uint32_t> out_keys;
    const auto report = ApproxRefineSort(
        keys,
        MakeRefineOptions(sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
                          0.055),
        &out_keys, nullptr);
    ASSERT_TRUE(report.ok()) << "n=" << n;
    EXPECT_TRUE(report->verified()) << "n=" << n;
    EXPECT_EQ(out_keys.size(), n);
    EXPECT_TRUE(std::is_sorted(out_keys.begin(), out_keys.end()));
  }
}

TEST_F(RefineFixture, DuplicateKeysAreHandled) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kAllEqual, 2000, 6);
  const auto report = ApproxRefineSort(
      keys,
      MakeRefineOptions(sort::AlgorithmId{sort::SortKind::kLsdRadix, 6},
                        0.07),
      nullptr, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->verified());
}

TEST_F(RefineFixture, RemEstimateTracksExactRem) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 50000, 7);
  const auto report = ApproxRefineSort(
      keys,
      MakeRefineOptions(sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
                        0.065),
      nullptr, nullptr);
  ASSERT_TRUE(report.ok());
  // The heuristic finds a superset of the disorder: Rem~ >= exact Rem, and
  // within a small constant factor on nearly sorted sequences.
  EXPECT_GE(report->rem_estimate, report->approx_sortedness.rem);
  EXPECT_GT(report->approx_sortedness.rem, 0u);
  EXPECT_LT(report->rem_estimate, 10 * report->approx_sortedness.rem + 50);
}

TEST_F(RefineFixture, NoCorruptionMeansNoRemAndCheapRefine) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 10000, 8);
  const auto report = ApproxRefineSort(
      keys,
      MakeRefineOptions(sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
                        0.03),
      nullptr, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rem_estimate, 0u);
  // Refine writes = 2n (outputs) when Rem~ = 0.
  EXPECT_EQ(report->RefineWriteOps(), 2 * keys.size());
}

TEST_F(RefineFixture, RefineWriteBudgetStaysNearLowerBound) {
  // Section 4.2: on a nearly sorted approx output the refine stage performs
  // fewer than ~3n precise writes — close to the 2n lower bound.
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 30000, 9);
  const auto report = ApproxRefineSort(
      keys,
      MakeRefineOptions(sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
                        0.055),
      nullptr, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->RefineWriteOps(), 2 * keys.size());
  EXPECT_LT(report->RefineWriteOps(), 3 * keys.size());
}

TEST_F(RefineFixture, StageCostsDecompose) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 8000, 10);
  const auto report = ApproxRefineSort(
      keys,
      MakeRefineOptions(sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
                        0.055),
      nullptr, nullptr);
  ASSERT_TRUE(report.ok());
  // Approx preparation writes exactly n words into approximate memory.
  EXPECT_EQ(report->prep_approx.word_writes, keys.size());
  EXPECT_EQ(report->prep_precise.word_reads, keys.size());
  EXPECT_EQ(report->prep_precise.word_writes, 0u);
  // The total equals the sum of the parts.
  EXPECT_NEAR(report->TotalWriteCost(),
              report->ApproxStageWriteCost() + report->RefineStageWriteCost(),
              1e-6);
  EXPECT_GT(report->sort_approx.word_writes, 0u);
  EXPECT_GT(report->sort_precise.word_writes, 0u);
}

TEST_F(RefineFixture, MissingAllocatorsRejected) {
  RefineOptions options;
  options.algorithm = sort::AlgorithmId{sort::SortKind::kQuicksort, 0};
  const auto report = ApproxRefineSort({1, 2, 3}, options, nullptr, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(VerifyRefineOutputTest, CleanOutputReportsNone) {
  const std::vector<uint32_t> input = {30, 10, 20};
  const VerificationReport report =
      VerifyRefineOutput(input, {10, 20, 30}, {1, 2, 0});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.failure, VerifyFailureKind::kNone);
  EXPECT_EQ(report.violation_count, 0u);
  EXPECT_EQ(report.ToString(), "ok");
}

TEST(VerifyRefineOutputTest, CategorizesOrderViolation) {
  const std::vector<uint32_t> input = {30, 10, 20};
  const VerificationReport report =
      VerifyRefineOutput(input, {10, 30, 20}, {1, 0, 2});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failure, VerifyFailureKind::kOrderViolation);
  EXPECT_EQ(report.first_violation, 2u);
  EXPECT_GE(report.violation_count, 1u);
  EXPECT_NE(report.ToString().find("ORDER_VIOLATION"), std::string::npos);
}

TEST(VerifyRefineOutputTest, CategorizesDuplicatedIds) {
  const std::vector<uint32_t> input = {30, 10, 20};
  // Keys are sorted but record 1 was emitted twice and record 2 lost.
  const VerificationReport report =
      VerifyRefineOutput(input, {10, 10, 30}, {1, 1, 0});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failure, VerifyFailureKind::kIdPermutationLoss);
  EXPECT_GE(report.violation_count, 1u);
}

TEST(VerifyRefineOutputTest, CategorizesOutOfRangeIds) {
  const std::vector<uint32_t> input = {30, 10, 20};
  const VerificationReport report =
      VerifyRefineOutput(input, {10, 20, 30}, {1, 2, 7});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failure, VerifyFailureKind::kIdPermutationLoss);
}

TEST(VerifyRefineOutputTest, CategorizesKeyIdMismatch) {
  const std::vector<uint32_t> input = {30, 10, 20};
  // IDs are a valid permutation but the key written for record 0 is wrong.
  const VerificationReport report =
      VerifyRefineOutput(input, {10, 20, 31}, {1, 2, 0});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failure, VerifyFailureKind::kKeyIdMismatch);
  EXPECT_EQ(report.first_violation, 2u);
}

TEST(VerifyRefineOutputTest, LostConservationIsAPermutationLoss) {
  const std::vector<uint32_t> input = {30, 10, 20};
  const VerificationReport report = VerifyRefineOutput(
      input, {10, 20, 30}, {1, 2, 0}, /*merge_conserved=*/false);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failure, VerifyFailureKind::kIdPermutationLoss);
  EXPECT_EQ(report.first_violation, input.size());
}

TEST(VerifyRefineOutputTest, EveryKindHasAName) {
  EXPECT_EQ(VerifyFailureKindName(VerifyFailureKind::kNone), "NONE");
  EXPECT_EQ(VerifyFailureKindName(VerifyFailureKind::kOrderViolation),
            "ORDER_VIOLATION");
  EXPECT_EQ(VerifyFailureKindName(VerifyFailureKind::kIdPermutationLoss),
            "ID_PERMUTATION_LOSS");
  EXPECT_EQ(VerifyFailureKindName(VerifyFailureKind::kKeyIdMismatch),
            "KEY_ID_MISMATCH");
}

TEST_F(RefineFixture, StageSplitMatchesMonolithicRun) {
  // RunApproxStage + RunRefineStage consume the same RNG streams as the
  // one-shot ApproxRefineSort, so costs and outputs are bit-identical —
  // and a second refine run over the same state replays the first exactly.
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 8000, 13);
  const sort::AlgorithmId algorithm{sort::SortKind::kQuicksort, 0};

  std::vector<uint32_t> mono_keys;
  std::vector<uint32_t> mono_ids;
  approx::ApproxMemory mono_memory(MakeOptions());
  RefineOptions mono_options;
  mono_options.algorithm = algorithm;
  mono_options.approx_alloc = [&mono_memory](size_t n) {
    return mono_memory.NewApproxArray(n, 0.055);
  };
  mono_options.precise_alloc = [&mono_memory](size_t n) {
    return mono_memory.NewPreciseArray(n);
  };
  const auto mono =
      ApproxRefineSort(keys, mono_options, &mono_keys, &mono_ids);
  ASSERT_TRUE(mono.ok());

  const RefineOptions split_options =
      MakeRefineOptions(algorithm, 0.055);
  ApproxStageState state;
  ASSERT_TRUE(RunApproxStage(keys, split_options, &state).ok());
  ASSERT_TRUE(state.ready());

  RefineReport first;
  std::vector<uint32_t> first_keys;
  std::vector<uint32_t> first_ids;
  ASSERT_TRUE(RunRefineStage(state, split_options, &first, &first_keys,
                             &first_ids)
                  .ok());
  EXPECT_TRUE(first.verified());
  EXPECT_EQ(first_keys, mono_keys);
  EXPECT_EQ(first_ids, mono_ids);
  EXPECT_DOUBLE_EQ(first.TotalWriteCost(), mono->TotalWriteCost());
  EXPECT_EQ(first.rem_estimate, mono->rem_estimate);

  RefineReport second;
  std::vector<uint32_t> second_keys;
  std::vector<uint32_t> second_ids;
  ASSERT_TRUE(RunRefineStage(state, split_options, &second, &second_keys,
                             &second_ids)
                  .ok());
  EXPECT_EQ(second_keys, first_keys);
  EXPECT_EQ(second_ids, first_ids);
  // Each run closes its own ledger: equal refine costs, not doubled ones.
  EXPECT_EQ(second.refine_precise.word_writes,
            first.refine_precise.word_writes);
  EXPECT_DOUBLE_EQ(second.TotalWriteCost(), first.TotalWriteCost());
}

TEST_F(RefineFixture, PreciseBaselineSortsAndCounts) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 4000, 11);
  const auto baseline = PreciseSortBaseline(
      keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
      [this](size_t n) { return memory_.NewPreciseArray(n); },
      /*sort_seed=*/13, /*with_ids=*/true);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline->verified);
  EXPECT_GT(baseline->keys.word_writes, 0u);
  // Keys and ids move together: write counts match.
  EXPECT_EQ(baseline->keys.word_writes, baseline->ids.word_writes);
}

TEST_F(RefineFixture, WriteReductionPositiveAtSweetSpot) {
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 100000, 12);
  const sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};
  const auto refine_report = ApproxRefineSort(
      keys, MakeRefineOptions(algorithm, 0.055), nullptr, nullptr);
  ASSERT_TRUE(refine_report.ok());
  const auto baseline = PreciseSortBaseline(
      keys, algorithm,
      [this](size_t n) { return memory_.NewPreciseArray(n); }, 13, true);
  ASSERT_TRUE(baseline.ok());
  const double wr = WriteReduction(*refine_report, *baseline);
  EXPECT_GT(wr, 0.03);   // Positive at the paper's sweet spot.
  EXPECT_LT(wr, 0.20);   // But bounded by (1 - p)/2.
}

}  // namespace
}  // namespace approxmem::refine
