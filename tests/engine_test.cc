#include "core/engine.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "approx/spintronic.h"
#include "core/workload.h"

namespace approxmem::core {
namespace {

EngineOptions FastOptions() {
  EngineOptions options;
  options.calibration_trials = 20000;
  options.seed = 31;
  return options;
}

EngineOptions SpintronicOptions() {
  EngineOptions options = FastOptions();
  options.backend = std::string(approx::kSpintronicBackendName);
  return options;
}

TEST(EngineTest, ApproxOnlyNearPreciseTIsSorted) {
  ApproxSortEngine engine(FastOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 20000, 1);
  const auto result = engine.SortApproxOnly(
      keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0}, 0.03);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->sortedness.sorted);
  EXPECT_EQ(result->sortedness.rem, 0u);
  // Small but positive write reduction (p(0.03) < 1).
  EXPECT_GT(result->write_reduction, 0.0);
}

TEST(EngineTest, ApproxOnlySweetSpotTradesSortednessForLatency) {
  ApproxSortEngine engine(FastOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 100000, 2);
  const auto result = engine.SortApproxOnly(
      keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0}, 0.055);
  ASSERT_TRUE(result.ok());
  // Section 3.4: ~33% latency reduction with a ~95+% sorted sequence.
  EXPECT_GT(result->write_reduction, 0.25);
  EXPECT_LT(result->sortedness.rem_ratio, 0.05);
  EXPECT_GT(result->sortedness.rem, 0u);
}

TEST(EngineTest, ApproxOnlyOutputsTheApproximateArray) {
  ApproxSortEngine engine(FastOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 5000, 3);
  std::vector<uint32_t> output;
  const auto result = engine.SortApproxOnly(
      keys, sort::AlgorithmId{sort::SortKind::kLsdRadix, 6}, 0.1, &output);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(output.size(), keys.size());
  EXPECT_FALSE(std::is_sorted(output.begin(), output.end()));
}

TEST(EngineTest, MergesortDegradesWorstAtModerateT) {
  ApproxSortEngine engine(FastOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 50000, 4);
  const auto merge = engine.SortApproxOnly(
      keys, sort::AlgorithmId{sort::SortKind::kMergesort, 0}, 0.055);
  const auto quick = engine.SortApproxOnly(
      keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0}, 0.055);
  ASSERT_TRUE(merge.ok());
  ASSERT_TRUE(quick.ok());
  // Section 3.5's headline phenomenon.
  EXPECT_GT(merge->sortedness.rem_ratio,
            10 * quick->sortedness.rem_ratio);
}

TEST(EngineTest, RefineVerifiedAndReductionAtSweetSpot) {
  ApproxSortEngine engine(FastOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 100000, 5);
  std::vector<uint32_t> out_keys;
  std::vector<uint32_t> out_ids;
  const auto outcome = engine.SortApproxRefine(
      keys, sort::AlgorithmId{sort::SortKind::kLsdRadix, 3}, 0.055,
      &out_keys, &out_ids);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->refine.verified());
  EXPECT_TRUE(outcome->baseline.verified);
  EXPECT_TRUE(std::is_sorted(out_keys.begin(), out_keys.end()));
  EXPECT_GT(outcome->write_reduction, 0.02);
  // The analytic model should be in the same regime as the measurement.
  EXPECT_GT(outcome->predicted_write_reduction, 0.0);
}

TEST(EngineTest, RefineMergesortNeverWins) {
  ApproxSortEngine engine(FastOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 50000, 6);
  for (double t : {0.03, 0.055, 0.08}) {
    const auto outcome = engine.SortApproxRefine(
        keys, sort::AlgorithmId{sort::SortKind::kMergesort, 0}, t);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->refine.verified());
    EXPECT_LT(outcome->write_reduction, 0.01) << "t=" << t;
  }
}

TEST(EngineTest, RefineRejectsInvalidT) {
  ApproxSortEngine engine(FastOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 100, 7);
  EXPECT_FALSE(engine
                   .SortApproxRefine(
                       keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
                       0.2)
                   .ok());
  EXPECT_FALSE(engine
                   .SortApproxOnly(
                       keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
                       -0.1)
                   .ok());
}

TEST(EngineTest, PvRatioMatchesPaperAnchors) {
  ApproxSortEngine engine(FastOptions());
  EXPECT_DOUBLE_EQ(engine.PvRatio(0.025), 1.0);
  EXPECT_NEAR(engine.PvRatio(0.055), 0.66, 0.06);
  EXPECT_NEAR(engine.PvRatio(0.1), 0.50, 0.06);
}

TEST(EngineTest, SpintronicOnlyLowErrorPointStaysSorted) {
  ApproxSortEngine engine(SpintronicOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 20000, 8);
  const auto configs = approx::PaperSpintronicConfigs();
  const auto result = engine.SortApproxOnly(
      keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
      configs[0].bit_error_prob);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->sortedness.rem_ratio, 0.01);
  EXPECT_NEAR(result->write_reduction, 0.05, 0.01);  // 5% energy saving.
}

TEST(EngineTest, SpintronicRefineVerifiedAcrossOperatingPoints) {
  ApproxSortEngine engine(SpintronicOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 20000, 9);
  for (const auto& config : approx::PaperSpintronicConfigs()) {
    const auto outcome = engine.SortApproxRefine(
        keys, sort::AlgorithmId{sort::SortKind::kMsdRadix, 6},
        config.bit_error_prob);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->refine.verified())
        << approx::SpintronicLabel(config);
  }
}

TEST(EngineTest, RecommendationUsesCostModel) {
  ApproxSortEngine engine(FastOptions());
  const sort::AlgorithmId lsd{sort::SortKind::kLsdRadix, 3};
  EXPECT_TRUE(engine.RecommendApproxRefine(lsd, 1 << 22, 0.055, 1000));
  EXPECT_FALSE(engine.RecommendApproxRefine(lsd, 1 << 22, 0.055, 1 << 22));
  EXPECT_FALSE(engine.RecommendApproxRefine(lsd, 1 << 22, 0.025, 0));
}

TEST(EngineTest, DeterministicAcrossEngineInstances) {
  const auto keys = MakeKeys(WorkloadKind::kUniform, 30000, 10);
  auto run = [&keys]() {
    ApproxSortEngine engine(FastOptions());
    const auto result = engine.SortApproxOnly(
        keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0}, 0.07);
    EXPECT_TRUE(result.ok());
    return std::make_pair(result->sortedness.rem,
                          result->approx_stats.write_cost);
  };
  EXPECT_EQ(run(), run());
}

TEST(EngineTest, SequentialDiscountRaisesQuicksortGain) {
  // The Section 5 extension: quicksort's approx stage writes randomly but
  // the refine stage writes sequentially, so cheaper sequential writes
  // tilt the balance toward approx-refine.
  const auto keys = MakeKeys(WorkloadKind::kUniform, 50000, 11);
  auto run = [&keys](double discount) {
    EngineOptions options = FastOptions();
    options.sequential_write_discount = discount;
    ApproxSortEngine engine(options);
    const auto outcome = engine.SortApproxRefine(
        keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0}, 0.055);
    EXPECT_TRUE(outcome.ok());
    return outcome->write_reduction;
  };
  EXPECT_GT(run(0.5), run(1.0) + 0.02);
}

TEST(EngineTest, ExactAndFastPvRatiosAgree) {
  EngineOptions fast_options = FastOptions();
  EngineOptions exact_options = FastOptions();
  exact_options.mode = approx::SimulationMode::kExact;
  ApproxSortEngine fast_engine(fast_options);
  ApproxSortEngine exact_engine(exact_options);
  // p(t) comes from the shared calibration either way.
  EXPECT_NEAR(fast_engine.PvRatio(0.055), exact_engine.PvRatio(0.055), 0.02);
}

TEST(EngineTest, SpintronicEnergyBreakdownSumsToTotal) {
  ApproxSortEngine engine(SpintronicOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 10000, 12);
  const auto outcome = engine.SortApproxRefine(
      keys, sort::AlgorithmId{sort::SortKind::kLsdRadix, 6},
      approx::PaperSpintronicConfigs()[2].bit_error_prob);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NEAR(outcome->refine.TotalWriteCost(),
              outcome->refine.ApproxStageWriteCost() +
                  outcome->refine.RefineStageWriteCost(),
              1e-9);
  // Spintronic writes have no P&V loop: wear proxy stays zero.
  EXPECT_DOUBLE_EQ(outcome->refine.sort_approx.pv_iterations, 0.0);
}

TEST(EngineTest, PcmWearTracksLatencyRatio) {
  ApproxSortEngine engine(FastOptions());
  const auto keys = MakeKeys(WorkloadKind::kUniform, 30000, 13);
  const auto outcome = engine.SortApproxRefine(
      keys, sort::AlgorithmId{sort::SortKind::kQuicksort, 0}, 0.055);
  ASSERT_TRUE(outcome.ok());
  // Approximate-stage wear per write ~ p(t) x precise wear per write.
  const auto& approx_stats = outcome->refine.sort_approx;
  const auto& precise_stats = outcome->baseline.keys;
  const double approx_per_write =
      approx_stats.pv_iterations /
      static_cast<double>(approx_stats.word_writes);
  const double precise_per_write =
      precise_stats.pv_iterations /
      static_cast<double>(precise_stats.word_writes);
  EXPECT_NEAR(approx_per_write / precise_per_write, engine.PvRatio(0.055),
              0.03);
}

}  // namespace
}  // namespace approxmem::core
