# Runs one figure bench and byte-compares its CSV artifact against the
# committed golden capture. Invoked by the golden_* ctest entries added in
# tests/CMakeLists.txt:
#
#   cmake -DBENCH=<binary> -DARGS="--n=2000 ..." -DOUT_DIR=<dir>
#         -DCSV=<file.csv> -DGOLDEN=<golden.csv> -P golden_parity.cmake
#
# The goldens were captured from the pre-backend-refactor tree; any change
# to RNG stream assignment, calibration, cost accounting, or sweep ordering
# shows up here as a byte diff.
separate_arguments(bench_args NATIVE_COMMAND "${ARGS}")
file(REMOVE_RECURSE "${OUT_DIR}")
execute_process(
  COMMAND "${BENCH}" ${bench_args} "--csv_dir=${OUT_DIR}"
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited with ${run_rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${OUT_DIR}/${CSV}" "${GOLDEN}"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
      "golden parity broken: ${OUT_DIR}/${CSV} differs from ${GOLDEN}")
endif()
