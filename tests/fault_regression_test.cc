// Regression tests for bugs surfaced by the fault-injection oracle.
//
// Bug: histogram-radix Scatter lost record IDs under transient read
// faults. When the digit observed during the scatter pass differed from
// the digit observed during the counting pass (possible only when reads
// can return corrupted values), a bucket cursor ran past its segment and
// two elements were written to the same destination slot — the earlier
// (key, ID) pair was overwritten and another slot kept stale data. The ID
// column then stopped being a permutation of 0..n-1, which the refine
// stage cannot repair: its merge emitted a wrong-sized output and died on
// an internal CHECK instead of failing verification.
//
// The fix diverts colliding scatter writes to the slots left unclaimed at
// the end of the pass (radix_histogram.cc) and makes the refine merge
// clamp its writes and fail verification gracefully (approx_refine.cc).
#include <gtest/gtest.h>

#include "testing/differential_oracle.h"
#include "testing/fault_injection.h"
#include "testing/generators.h"

namespace approxmem::testing {
namespace {

// The minimized failing tuple found by `approxmem_cli --cmd=fuzz
// --seed=11` and its greedy shrinker. Before the Scatter fix this case
// failed [ids-permutation] (and [refine-verified]); before the merge
// hardening it aborted the whole process on a CHECK.
TEST(fault_regression, MinimizedFuzzReproStaysFixed) {
  OracleCase repro;
  repro.seed = 7701927383116065759ULL;
  repro.n = 105;
  repro.paper_t = 30;
  repro.algorithm = sort::AlgorithmId{sort::SortKind::kLsdHistogram, 6};
  repro.shape = InputShape::kDupHeavy;

  FaultPlan plan = FaultPlan::ApproxStorm(repro.seed);
  FaultInjector injector(plan);
  OracleOptions options;
  options.injector = &injector;
  const OracleReport report = RunDifferentialOracle(repro, options);
  EXPECT_TRUE(report.ok) << report.FailureSummary();
  // The case is only a regression guard while the injector actually
  // perturbs the run.
  EXPECT_GT(injector.injected_read_faults() + injector.injected_write_faults(),
            0u);
}

// Directly hammers the collision path: a high transient read-flip rate
// makes count-pass and scatter-pass digits disagree many times per pass,
// so the diverted-slot path runs on nearly every histogram-radix case.
// Both histogram kinds must keep the ID permutation intact regardless.
TEST(fault_regression, HistogramRadixSurvivesHeavyReadFlips) {
  for (const sort::SortKind kind :
       {sort::SortKind::kLsdHistogram, sort::SortKind::kMsdHistogram}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      OracleCase oracle_case;
      oracle_case.seed = seed * 0x9e3779b9ULL + 17;
      oracle_case.n = 300;
      oracle_case.paper_t = 55;
      oracle_case.algorithm = sort::AlgorithmId{kind, 4};
      oracle_case.shape = seed % 2 == 0 ? InputShape::kDupHeavy
                                        : InputShape::kUniform;

      FaultPlan plan;
      plan.seed = oracle_case.seed;
      TransientReadFault flips;
      flips.domain = FaultDomain::kApproxOnly;
      flips.probability = 0.05;
      plan.read_flips.push_back(flips);

      FaultInjector injector(plan);
      OracleOptions options;
      options.injector = &injector;
      const OracleReport report = RunDifferentialOracle(oracle_case, options);
      EXPECT_TRUE(report.ok)
          << report.FailureSummary() << " (kind "
          << oracle_case.algorithm.Name() << ")";
      EXPECT_GT(injector.injected_read_faults(), 0u);
    }
  }
}

// A corrupted precise-domain ID column must degrade to verified == false,
// never to a process abort: the refine merge can emit a wrong-sized
// output when IDs are duplicated, and it has to survive that so fault
// harnesses can observe the failure.
TEST(fault_regression, RefineMergeFailsGracefullyOnPreciseFaults) {
  OracleCase oracle_case;
  oracle_case.seed = 0xdecafULL;
  oracle_case.n = 200;
  oracle_case.paper_t = 55;
  oracle_case.algorithm = sort::AlgorithmId{sort::SortKind::kQuicksort, 0};
  oracle_case.shape = InputShape::kUniform;

  FaultPlan plan;
  plan.seed = oracle_case.seed;
  StuckAtFault stuck;
  stuck.domain = FaultDomain::kPreciseOnly;
  stuck.mask = 0x7u;  // IDs collide: low bits forced to a constant.
  stuck.value = 0x5u;
  plan.stuck_at.push_back(stuck);

  FaultInjector injector(plan);
  OracleOptions options;
  options.injector = &injector;
  // Must not crash; must report the violation.
  const OracleReport report = RunDifferentialOracle(oracle_case, options);
  EXPECT_FALSE(report.ok);
  EXPECT_GT(injector.injected_write_faults(), 0u);
}

}  // namespace
}  // namespace approxmem::testing
