#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace approxmem {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(8);
  double sum = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMatchesMoments) {
  Rng rng(11);
  const int kSamples = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.Split();
  // The child must not replay the parent's sequence.
  Rng parent_copy(12);
  parent_copy.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.Next64() == parent.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(WorkloadGeneratorsTest, UniformKeysHasFullRangeSpread) {
  Rng rng(13);
  const auto keys = UniformKeys(100000, rng);
  const auto [min_it, max_it] = std::minmax_element(keys.begin(), keys.end());
  EXPECT_LT(*min_it, 1u << 24);          // Something near the bottom.
  EXPECT_GT(*max_it, 0xFF000000u);       // Something near the top.
}

TEST(WorkloadGeneratorsTest, SkewedKeysHaveDuplicates) {
  Rng rng(14);
  const auto keys = SkewedKeys(10000, 0.5, rng);
  std::set<uint32_t> distinct(keys.begin(), keys.end());
  EXPECT_LT(distinct.size(), keys.size() / 2);
}

TEST(WorkloadGeneratorsTest, NearlySortedKeysAlmostSorted) {
  Rng rng(15);
  const auto keys = NearlySortedKeys(10000, 10, rng);
  size_t descents = 0;
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] < keys[i - 1]) ++descents;
  }
  EXPECT_LE(descents, 20u);  // Each swap introduces at most 2 descents.
  EXPECT_GT(descents, 0u);
}

}  // namespace
}  // namespace approxmem
