#include "sort/radix_common.h"

#include <gtest/gtest.h>

#include "approx/approx_memory.h"

namespace approxmem::sort {
namespace {

TEST(RadixPlanTest, PassCounts) {
  EXPECT_EQ(RadixPlan::ForBits(3).passes, 11);
  EXPECT_EQ(RadixPlan::ForBits(4).passes, 8);
  EXPECT_EQ(RadixPlan::ForBits(5).passes, 7);
  EXPECT_EQ(RadixPlan::ForBits(6).passes, 6);
  EXPECT_EQ(RadixPlan::ForBits(8).passes, 4);
}

TEST(RadixPlanTest, MasksAndBuckets) {
  const RadixPlan plan = RadixPlan::ForBits(6);
  EXPECT_EQ(plan.mask, 63u);
  EXPECT_EQ(plan.buckets, 64u);
  EXPECT_EQ(RadixPlan::ForBits(3).buckets, 8u);
}

TEST(RadixPlanTest, DigitExtraction) {
  const RadixPlan plan = RadixPlan::ForBits(4);
  EXPECT_EQ(plan.DigitLsd(0xABCD1234u, 0), 0x4u);
  EXPECT_EQ(plan.DigitLsd(0xABCD1234u, 1), 0x3u);
  EXPECT_EQ(plan.DigitLsd(0xABCD1234u, 7), 0xAu);
}

TEST(RadixPlanTest, TopShiftCoversHighBits) {
  // 3-bit plan: 11 passes, top shift 30 -> top digit covers bits 30-31.
  const RadixPlan plan = RadixPlan::ForBits(3);
  EXPECT_EQ(plan.TopShift(), 30);
  EXPECT_EQ((0xFFFFFFFFu >> plan.TopShift()) & plan.mask, 3u);
}

TEST(RadixPlanTest, DigitsReassembleKey) {
  for (int bits : {3, 4, 5, 6}) {
    const RadixPlan plan = RadixPlan::ForBits(bits);
    const uint32_t key = 0xDEADBEEFu;
    uint64_t reassembled = 0;
    for (int pass = plan.passes - 1; pass >= 0; --pass) {
      reassembled = (reassembled << bits) | plan.DigitLsd(key, pass);
    }
    EXPECT_EQ(static_cast<uint32_t>(reassembled), key) << bits << " bits";
  }
}

TEST(StripePlanTest, TilesTheIndexSpaceExactly) {
  for (const size_t n : {0u, 1u, 100u, 2047u, 2048u, 4096u, 8193u,
                         1000000u}) {
    const StripePlan plan = StripePlan::ForN(n);
    ASSERT_GE(plan.count, 1u) << "n=" << n;
    ASSERT_LE(plan.count, StripePlan::kMaxStripes) << "n=" << n;
    EXPECT_EQ(plan.Begin(0), 0u) << "n=" << n;
    EXPECT_EQ(plan.End(plan.count - 1), n) << "n=" << n;
    size_t covered = 0;
    for (size_t s = 0; s < plan.count; ++s) {
      EXPECT_EQ(plan.Begin(s), covered) << "n=" << n << " stripe " << s;
      ASSERT_LE(plan.Begin(s), plan.End(s));
      covered = plan.End(s);
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(StripePlanTest, SmallInputsStaySerial) {
  // Below the minimum stripe size there is exactly one stripe, so tiny
  // sorts never pay any sharding overhead.
  EXPECT_EQ(StripePlan::ForN(1).count, 1u);
  EXPECT_EQ(StripePlan::ForN(StripePlan::kMinStripeElements - 1).count, 1u);
  EXPECT_EQ(StripePlan::ForN(4 * StripePlan::kMinStripeElements).count, 4u);
}

TEST(LsdArenaCapacityTest, ArenaIsExactlyN) {
  // The scatter windows tile [0, n) exactly; the pre-stripe implementation
  // rounded every bucket up to a chunk multiple, overallocating the arena
  // (doubly so with IDs). Pin the exact sizing.
  for (const size_t n : {0u, 1u, 63u, 64u, 1000u, 4096u, 123456u}) {
    EXPECT_EQ(LsdArenaCapacity(n), n);
  }
}

class BucketQueuesTest : public ::testing::Test {
 protected:
  BucketQueuesTest() : memory_(MakeOptions()) {}

  static approx::ApproxMemory::Options MakeOptions() {
    approx::ApproxMemory::Options options;
    options.calibration_trials = 5000;
    return options;
  }

  approx::ApproxMemory memory_;
};

TEST_F(BucketQueuesTest, DrainsInBucketThenFifoOrder) {
  approx::ApproxArrayU32 arena = memory_.NewPreciseArray(8);
  approx::ApproxArrayU32 out = memory_.NewPreciseArray(8);
  BucketQueues queues(4, &arena, nullptr);
  queues.Push(2, 20, 0);
  queues.Push(0, 1, 0);
  queues.Push(2, 21, 0);
  queues.Push(1, 10, 0);
  queues.Push(0, 2, 0);
  EXPECT_EQ(queues.BucketSize(0), 2u);
  EXPECT_EQ(queues.BucketSize(2), 2u);
  EXPECT_EQ(queues.BucketSize(3), 0u);
  EXPECT_EQ(queues.TotalPushed(), 5u);
  EXPECT_EQ(queues.DrainTo(out, nullptr, 0), 5u);
  EXPECT_EQ(out.PeekActual(0), 1u);
  EXPECT_EQ(out.PeekActual(1), 2u);
  EXPECT_EQ(out.PeekActual(2), 10u);
  EXPECT_EQ(out.PeekActual(3), 20u);
  EXPECT_EQ(out.PeekActual(4), 21u);
}

TEST_F(BucketQueuesTest, CountsOneWritePerPushAndDrain) {
  approx::ApproxArrayU32 arena = memory_.NewPreciseArray(4);
  approx::ApproxArrayU32 out = memory_.NewPreciseArray(4);
  BucketQueues queues(2, &arena, nullptr);
  for (uint32_t i = 0; i < 4; ++i) queues.Push(i % 2, i, 0);
  queues.DrainTo(out, nullptr, 0);
  EXPECT_EQ(arena.stats().word_writes, 4u);  // Pushes.
  EXPECT_EQ(arena.stats().word_reads, 4u);   // Drain reads.
  EXPECT_EQ(out.stats().word_writes, 4u);    // Drain writes.
}

TEST_F(BucketQueuesTest, CarriesIdsAlongside) {
  approx::ApproxArrayU32 key_arena = memory_.NewPreciseArray(3);
  approx::ApproxArrayU32 id_arena = memory_.NewPreciseArray(3);
  approx::ApproxArrayU32 out_keys = memory_.NewPreciseArray(3);
  approx::ApproxArrayU32 out_ids = memory_.NewPreciseArray(3);
  BucketQueues queues(2, &key_arena, &id_arena);
  queues.Push(1, 100, 7);
  queues.Push(0, 50, 8);
  queues.Push(1, 101, 9);
  queues.DrainTo(out_keys, &out_ids, 0);
  EXPECT_EQ(out_keys.PeekActual(0), 50u);
  EXPECT_EQ(out_ids.PeekActual(0), 8u);
  EXPECT_EQ(out_keys.PeekActual(1), 100u);
  EXPECT_EQ(out_ids.PeekActual(1), 7u);
  EXPECT_EQ(out_keys.PeekActual(2), 101u);
  EXPECT_EQ(out_ids.PeekActual(2), 9u);
}

TEST_F(BucketQueuesTest, ResetReusesArena) {
  approx::ApproxArrayU32 arena = memory_.NewPreciseArray(2);
  approx::ApproxArrayU32 out = memory_.NewPreciseArray(2);
  BucketQueues queues(2, &arena, nullptr);
  queues.Push(0, 1, 0);
  queues.Push(1, 2, 0);
  queues.DrainTo(out, nullptr, 0);
  queues.Reset();
  EXPECT_EQ(queues.TotalPushed(), 0u);
  queues.Push(1, 3, 0);
  queues.Push(0, 4, 0);
  queues.DrainTo(out, nullptr, 0);
  EXPECT_EQ(out.PeekActual(0), 4u);
  EXPECT_EQ(out.PeekActual(1), 3u);
}

TEST_F(BucketQueuesTest, ArenaBaseOffsetsSegments) {
  approx::ApproxArrayU32 arena = memory_.NewPreciseArray(10);
  approx::ApproxArrayU32 out = memory_.NewPreciseArray(10);
  BucketQueues queues(2, &arena, nullptr, /*arena_base=*/5);
  queues.Push(0, 42, 0);
  EXPECT_EQ(arena.PeekActual(5), 42u);  // Written inside the segment.
  queues.DrainTo(out, nullptr, 5);
  EXPECT_EQ(out.PeekActual(5), 42u);
}

}  // namespace
}  // namespace approxmem::sort
