#include "refine/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace approxmem::refine {
namespace {

using sort::AlgorithmId;
using sort::SortKind;

TEST(AlphaTest, TinyInputsCostNothing) {
  for (const auto kind :
       {SortKind::kQuicksort, SortKind::kMergesort, SortKind::kLsdRadix}) {
    EXPECT_EQ(AlphaWrites(AlgorithmId{kind, 6}, 0), 0.0);
    EXPECT_EQ(AlphaWrites(AlgorithmId{kind, 6}, 1), 0.0);
  }
}

TEST(AlphaTest, PaperFormulas) {
  const size_t n = 1 << 20;
  const double dn = static_cast<double>(n);
  EXPECT_DOUBLE_EQ(AlphaWrites({SortKind::kQuicksort, 0}, n), dn * 20 / 2);
  EXPECT_DOUBLE_EQ(AlphaWrites({SortKind::kMergesort, 0}, n), dn * 20);
  // 6-bit LSD: ceil(32/6) = 6 passes, 2 writes per element per pass.
  EXPECT_DOUBLE_EQ(AlphaWrites({SortKind::kLsdRadix, 6}, n), 2 * dn * 6);
  // 3-bit LSD: 11 passes.
  EXPECT_DOUBLE_EQ(AlphaWrites({SortKind::kLsdRadix, 3}, n), 2 * dn * 11);
  EXPECT_DOUBLE_EQ(AlphaWrites({SortKind::kLsdHistogram, 6}, n),
                   dn * 6 + dn);
}

TEST(AlphaTest, MsdDepthBoundedByDataSize) {
  // For 1M uniform keys, 6-bit MSD recursion reaches ~3 levels before
  // buckets hit the insertion cutoff, not the full 6 digit positions.
  const double alpha = AlphaWrites({SortKind::kMsdRadix, 6}, 1 << 20);
  EXPECT_LT(alpha, 2.0 * (1 << 20) * 6.0);
  EXPECT_GE(alpha, 2.0 * (1 << 20) * 2.0);
}

TEST(AlphaTest, MonotoneInN) {
  for (const auto kind : {SortKind::kQuicksort, SortKind::kMergesort,
                          SortKind::kLsdRadix, SortKind::kMsdRadix}) {
    double previous = -1.0;
    for (size_t n : {100u, 1000u, 10000u, 100000u}) {
      const double alpha = AlphaWrites(AlgorithmId{kind, 4}, n);
      EXPECT_GT(alpha, previous);
      previous = alpha;
    }
  }
}

TEST(CostModelTest, PreciseWritesAreTwiceAlpha) {
  const AlgorithmId algorithm{SortKind::kQuicksort, 0};
  EXPECT_DOUBLE_EQ(PredictPreciseWrites(algorithm, 1000),
                   2.0 * AlphaWrites(algorithm, 1000));
}

TEST(CostModelTest, Equation4Decomposition) {
  // WR = (1-p)/2 - (Rem + (1+p/2) n)/alpha(n) - alpha(Rem)/(2 alpha(n)).
  const AlgorithmId algorithm{SortKind::kQuicksort, 0};
  const size_t n = 1 << 20;
  const double p = 0.66;
  const size_t rem = 10000;
  const double alpha_n = AlphaWrites(algorithm, n);
  const double expected = (1.0 - p) / 2.0 -
                          (rem + (1.0 + 0.5 * p) * n) / alpha_n -
                          AlphaWrites(algorithm, rem) / (2.0 * alpha_n);
  EXPECT_NEAR(PredictWriteReduction(algorithm, n, p, rem), expected, 1e-12);
}

TEST(CostModelTest, PreciseMemoryGivesNegativeReduction) {
  // p(t) = 1 (no latency benefit): approx-refine only adds overhead.
  for (const auto kind : {SortKind::kQuicksort, SortKind::kMergesort,
                          SortKind::kLsdRadix, SortKind::kMsdRadix}) {
    EXPECT_LT(PredictWriteReduction(AlgorithmId{kind, 3}, 1 << 20, 1.0, 0),
              0.0);
  }
}

TEST(CostModelTest, SweetSpotIsPositiveForRadixAndQuicksort) {
  // p(0.055) ~ 0.66 with Rem ~ 0.5% of n: the paper's operating point.
  const size_t n = 16000000;
  const size_t rem = n / 200;
  EXPECT_GT(PredictWriteReduction({SortKind::kLsdRadix, 3}, n, 0.66, rem),
            0.05);
  EXPECT_GT(PredictWriteReduction({SortKind::kMsdRadix, 3}, n, 0.66, rem),
            0.0);
  EXPECT_GT(PredictWriteReduction({SortKind::kQuicksort, 0}, n, 0.66, rem),
            0.0);
}

TEST(CostModelTest, ChaoticOutputGivesNegativeReduction) {
  // p(0.1) ~ 0.5 but Rem ~ n: the refine stage re-sorts everything.
  const size_t n = 16000000;
  for (const auto kind : {SortKind::kQuicksort, SortKind::kMergesort,
                          SortKind::kLsdRadix}) {
    EXPECT_LT(
        PredictWriteReduction(AlgorithmId{kind, 3}, n, 0.5, n * 9 / 10),
        0.0);
  }
}

TEST(CostModelTest, QuicksortGainGrowsWithN) {
  // Section 5: WR_quicksort(n, t) is monotone increasing in n when Rem is
  // proportional to n.
  const double p = 0.66;
  double previous = -10.0;
  for (size_t n : {1600u, 16000u, 160000u, 1600000u, 16000000u}) {
    const double wr =
        PredictWriteReduction({SortKind::kQuicksort, 0}, n, p, n / 200);
    EXPECT_GT(wr, previous);
    previous = wr;
  }
}

TEST(CostModelTest, RecommendationFlipsWithRem) {
  const AlgorithmId algorithm{SortKind::kLsdRadix, 3};
  const size_t n = 1 << 22;
  EXPECT_TRUE(ShouldUseApproxRefine(algorithm, n, 0.66, n / 1000));
  EXPECT_FALSE(ShouldUseApproxRefine(algorithm, n, 0.66, n));
}

}  // namespace
}  // namespace approxmem::refine
