#include "common/check.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace approxmem {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  APPROXMEM_CHECK(1 + 1 == 2);
  APPROXMEM_CHECK_OK(Status::Ok());
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(APPROXMEM_CHECK(false), "CHECK failed");
}

TEST(CheckDeathTest, FailingCheckNamesExpression) {
  EXPECT_DEATH(APPROXMEM_CHECK(2 + 2 == 5), "2 \\+ 2 == 5");
}

TEST(CheckDeathTest, NonOkStatusAbortsWithMessage) {
  EXPECT_DEATH(APPROXMEM_CHECK_OK(Status::InvalidArgument("bad knob")),
               "INVALID_ARGUMENT: bad knob");
}

TEST(CheckTest, CheckEvaluatesExpressionOnce) {
  int calls = 0;
  APPROXMEM_CHECK([&calls]() {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace approxmem
