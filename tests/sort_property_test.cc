// Property sweeps: every algorithm x workload x size combination must sort
// exactly on precise memory, preserve the multiset, and terminate safely on
// heavily corrupted approximate memory.
#include <algorithm>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "approx/approx_memory.h"
#include "core/workload.h"
#include "mlc/calibration.h"
#include "sort/sort_common.h"
#include "sortedness/measures.h"
#include "testing/property_runner.h"

namespace approxmem::sort {
namespace {

using core::WorkloadKind;

std::vector<AlgorithmId> AllAlgorithms() {
  std::vector<AlgorithmId> algorithms = StudyAlgorithms();
  for (int bits = 3; bits <= 6; ++bits) {
    algorithms.push_back(AlgorithmId{SortKind::kLsdHistogram, bits});
    algorithms.push_back(AlgorithmId{SortKind::kMsdHistogram, bits});
  }
  return algorithms;
}

std::string Sanitize(std::string name) {
  std::replace(name.begin(), name.end(), '-', '_');
  std::replace(name.begin(), name.end(), ' ', '_');
  return name;
}

struct PrintParam {
  template <typename T>
  std::string operator()(const T& info) const {
    const auto& [algorithm, workload, n] = info.param;
    return Sanitize(algorithm.Name() + "_" + core::WorkloadName(workload) +
                    "_" + std::to_string(n));
  }
};

struct PrintAlgorithmT {
  template <typename T>
  std::string operator()(const T& info) const {
    const auto& [algorithm, t] = info.param;
    return Sanitize(algorithm.Name() + "_T" +
                    std::to_string(static_cast<int>(t * 1000)));
  }
};

struct PrintAlgorithm {
  template <typename T>
  std::string operator()(const T& info) const {
    return Sanitize(info.param.Name());
  }
};

class SortPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<AlgorithmId, WorkloadKind, size_t>> {};

TEST_P(SortPropertyTest, SortsExactlyOnPreciseMemory) {
  const auto& [algorithm, workload, n] = GetParam();
  const std::vector<uint32_t> keys = core::MakeKeys(workload, n, 1234);

  approx::ApproxMemory::Options options;
  options.calibration_trials = 5000;
  approx::ApproxMemory memory(options);
  approx::ApproxArrayU32 key_array = memory.NewPreciseArray(n);
  key_array.Store(keys);
  SortSpec spec;
  spec.keys = &key_array;
  spec.alloc_key_buffer = [&memory](size_t size) {
    return memory.NewPreciseArray(size);
  };
  Rng rng(99);
  ASSERT_TRUE(RunSort(spec, algorithm, rng).ok());

  const std::vector<uint32_t> out = key_array.Snapshot();
  EXPECT_TRUE(sortedness::IsSorted(out));
  EXPECT_TRUE(sortedness::IsPermutationOf(keys, out));
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByWorkload, SortPropertyTest,
    ::testing::Combine(::testing::ValuesIn(AllAlgorithms()),
                       ::testing::Values(WorkloadKind::kUniform,
                                         WorkloadKind::kSkewed,
                                         WorkloadKind::kNearlySorted,
                                         WorkloadKind::kReversed,
                                         WorkloadKind::kAllEqual),
                       ::testing::Values<size_t>(1, 2, 33, 1024)),
    PrintParam());

class ApproxTerminationTest
    : public ::testing::TestWithParam<std::tuple<AlgorithmId, double>> {};

TEST_P(ApproxTerminationTest, TerminatesAndPreservesLengthUnderCorruption) {
  const auto& [algorithm, t] = GetParam();
  const size_t n = 4000;
  const std::vector<uint32_t> keys =
      core::MakeKeys(WorkloadKind::kUniform, n, 77);

  approx::ApproxMemory::Options options;
  options.calibration_trials = 20000;
  approx::ApproxMemory memory(options);
  approx::ApproxArrayU32 key_array = memory.NewApproxArray(n, t);
  key_array.Store(keys);
  SortSpec spec;
  spec.keys = &key_array;
  spec.alloc_key_buffer = [&memory, t](size_t size) {
    return memory.NewApproxArray(size, t);
  };
  Rng rng(100);
  // The assertion is termination without bound violations; the output is
  // allowed (expected!) to be unsorted.
  ASSERT_TRUE(RunSort(spec, algorithm, rng).ok());
  EXPECT_EQ(key_array.Snapshot().size(), n);
}

INSTANTIATE_TEST_SUITE_P(
    HighErrorRates, ApproxTerminationTest,
    ::testing::Combine(
        ::testing::ValuesIn(std::vector<AlgorithmId>{
            {SortKind::kQuicksort, 0},
            {SortKind::kMergesort, 0},
            {SortKind::kLsdRadix, 6},
            {SortKind::kMsdRadix, 6},
            {SortKind::kLsdHistogram, 6},
            {SortKind::kMsdHistogram, 6}}),
        ::testing::Values(0.055, 0.1, 0.124)),
    PrintAlgorithmT());

// Stability-style property: with ids attached, the output <key, id> pairs
// must be exactly the input pairs reordered (no id duplication or loss),
// even under corruption of the key domain.
class PayloadIntegrityTest : public ::testing::TestWithParam<AlgorithmId> {};

TEST_P(PayloadIntegrityTest, IdsRemainAPermutationUnderCorruption) {
  const AlgorithmId algorithm = GetParam();
  const size_t n = 3000;
  const std::vector<uint32_t> keys =
      core::MakeKeys(WorkloadKind::kUniform, n, 55);

  approx::ApproxMemory::Options options;
  options.calibration_trials = 20000;
  approx::ApproxMemory memory(options);
  approx::ApproxArrayU32 key_array = memory.NewApproxArray(n, 0.1);
  key_array.Store(keys);
  approx::ApproxArrayU32 id_array = memory.NewPreciseArray(n);
  for (size_t i = 0; i < n; ++i) id_array.Set(i, static_cast<uint32_t>(i));

  SortSpec spec;
  spec.keys = &key_array;
  spec.ids = &id_array;
  spec.alloc_key_buffer = [&memory](size_t size) {
    return memory.NewApproxArray(size, 0.1);
  };
  spec.alloc_id_buffer = [&memory](size_t size) {
    return memory.NewPreciseArray(size);
  };
  Rng rng(101);
  ASSERT_TRUE(RunSort(spec, algorithm, rng).ok());

  std::vector<uint32_t> ids = id_array.Snapshot();
  std::sort(ids.begin(), ids.end());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(ids[i], i) << "ids are not a permutation after "
                         << algorithm.Name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, PayloadIntegrityTest,
    ::testing::ValuesIn(std::vector<AlgorithmId>{
        {SortKind::kQuicksort, 0},
        {SortKind::kMergesort, 0},
        {SortKind::kLsdRadix, 4},
        {SortKind::kMsdRadix, 4},
        {SortKind::kLsdHistogram, 4},
        {SortKind::kMsdHistogram, 4}}),
    PrintAlgorithm());

// The headline refine property, as a generated matrix: for every sort
// kind x input shape x T, approx-refine restores exact sortedness and the
// full differential-oracle invariant set. 6 kinds x 6 shapes x 4 T labels
// = 144 generated cases, run through the property runner both serially
// and in parallel — the verdict digest must not depend on the thread
// count.
TEST(refine_property, MatrixRestoresExactSortednessForAllKindsShapesAndT) {
  testing::RunnerOptions runner;
  runner.seed = 2024;
  runner.algorithms = {
      AlgorithmId{SortKind::kQuicksort, 0},
      AlgorithmId{SortKind::kMergesort, 0},
      AlgorithmId{SortKind::kLsdRadix, 4},
      AlgorithmId{SortKind::kMsdRadix, 4},
      AlgorithmId{SortKind::kLsdHistogram, 4},
      AlgorithmId{SortKind::kMsdHistogram, 4},
  };
  runner.t_labels = {0, 30, 55, 100};
  const std::vector<testing::OracleCase> cases =
      testing::MatrixCases(runner, 200);
  ASSERT_EQ(cases.size(), 6u * 6u * 4u);

  const auto make_check = [] {
    auto cache = std::make_shared<mlc::CalibrationCache>(mlc::MlcConfig{},
                                                         3000, 0xabcdULL);
    return testing::CaseCheck([cache](const testing::OracleCase& oracle_case) {
      testing::OracleOptions options;
      options.calibration_trials = 3000;
      options.shared_calibration = cache;
      return testing::RunDifferentialOracle(oracle_case, options);
    });
  };

  runner.threads = 1;
  const testing::RunnerResult serial =
      testing::RunCases(runner, cases, make_check());
  EXPECT_TRUE(serial.ok()) << (serial.minimized.has_value()
                                   ? serial.minimized->FailureSummary()
                                   : "");
  EXPECT_EQ(serial.cases_run, 144u);

  runner.threads = 0;  // Hardware concurrency.
  const testing::RunnerResult parallel =
      testing::RunCases(runner, cases, make_check());
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(parallel.cases_failed, 0u);
}

}  // namespace
}  // namespace approxmem::sort
