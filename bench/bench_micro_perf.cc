// Micro-benchmarks (google-benchmark) of the simulator's hot paths: cell
// writes (exact vs calibrated fast path), instrumented sorting throughput,
// and the LIS/Rem computation. These measure the *simulator's* speed, not
// the simulated device's.
//
// After the google-benchmark suite, the binary times serial vs parallel
// Monte-Carlo calibration and a serial vs parallel (T x algorithm) sweep
// and writes bench_artifacts/parallel_speedup.json, so the speedup
// trajectory of the parallel runner can be tracked across PRs.
#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "approx/approx_memory.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/workload.h"
#include "mlc/calibration.h"
#include "mlc/cell.h"
#include "sort/sort_common.h"
#include "sortedness/lis.h"

namespace approxmem {
namespace {

void BM_ExactCellWrite(benchmark::State& state) {
  const mlc::MlcConfig config =
      mlc::MlcConfig().WithT(static_cast<double>(state.range(0)) / 1000.0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mlc::WriteCell(static_cast<int>(rng.UniformInt(4)), config, rng));
  }
}
BENCHMARK(BM_ExactCellWrite)->Arg(25)->Arg(55)->Arg(100);

void BM_FastWordWrite(benchmark::State& state) {
  approx::ApproxMemory::Options options;
  options.calibration_trials = 50000;
  approx::ApproxMemory memory(options);
  approx::ApproxArrayU32 array = memory.NewApproxArray(1, 0.055);
  Rng rng(2);
  for (auto _ : state) {
    array.Set(0, rng.NextU32());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FastWordWrite);

void BM_InstrumentedQuicksort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  approx::ApproxMemory::Options options;
  options.calibration_trials = 50000;
  approx::ApproxMemory memory(options);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 3);
  for (auto _ : state) {
    approx::ApproxArrayU32 array = memory.NewApproxArray(n, 0.055);
    array.Store(keys);
    sort::SortSpec spec;
    spec.keys = &array;
    Rng rng(4);
    benchmark::DoNotOptimize(
        sort::RunSort(spec, {sort::SortKind::kQuicksort, 0}, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_InstrumentedQuicksort)->Arg(1 << 12)->Arg(1 << 16);

void BM_LisRem(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  const std::vector<uint32_t> values = UniformKeys(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sortedness::Rem(values));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_LisRem)->Arg(1 << 14)->Arg(1 << 18);

void BM_CalibrationSharded(benchmark::State& state) {
  // threads = 1 is the serial baseline; higher args show pool scaling.
  ThreadPool pool(static_cast<int>(state.range(0)));
  const mlc::MlcConfig config = mlc::MlcConfig().WithT(0.055);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mlc::CellCalibration::Run(config, 50000, /*seed=*/6, &pool));
  }
}
BENCHMARK(BM_CalibrationSharded)->Arg(1)->Arg(0 /* hardware */);

// --- parallel_speedup.json -------------------------------------------------

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Full T-grid calibration through a fresh shared cache, as a figure sweep
// would trigger it on a cold start.
double TimeCalibration(int threads) {
  ThreadPool pool(threads);
  mlc::CalibrationCache cache(mlc::MlcConfig(), 100000, /*seed=*/42, &pool);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    const double t = 0.025 + 0.025 * i;
    // Each T's Monte-Carlo shards fan out over the pool.
    benchmark::DoNotOptimize(cache.PvRatio(t));
  }
  return SecondsSince(start);
}

// A bench_fig9-style (T x algorithm) sweep: per-cell engines, one shared
// calibration cache, cells scheduled on the pool.
double TimeSweep(int threads) {
  ThreadPool pool(threads);
  auto cache = std::make_shared<mlc::CalibrationCache>(
      mlc::MlcConfig(), 20000, /*seed=*/42 ^ 0xca11b7a7e5eedULL, &pool);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 42);
  const std::vector<double> ts = {0.045, 0.055, 0.065, 0.075};
  const auto algorithms = sort::HeadlineAlgorithms();
  const auto start = std::chrono::steady_clock::now();
  pool.ParallelFor(0, ts.size() * algorithms.size(), [&](size_t cell) {
    const size_t row = cell / algorithms.size();
    const size_t col = cell % algorithms.size();
    core::EngineOptions options;
    options.seed = 42 ^ (cell + 1);
    options.calibration_trials = 20000;
    options.shared_calibration = cache;
    core::ApproxSortEngine engine(options);
    benchmark::DoNotOptimize(
        engine.SortApproxRefine(keys, algorithms[col], ts[row]));
  });
  return SecondsSince(start);
}

void WriteParallelSpeedupArtifact() {
  const int hardware = ThreadPool::HardwareThreads();
  const double calibration_serial = TimeCalibration(1);
  const double calibration_parallel = TimeCalibration(hardware);
  const double sweep_serial = TimeSweep(1);
  const double sweep_parallel = TimeSweep(hardware);

  ::mkdir("bench_artifacts", 0755);
  std::FILE* f = std::fopen("bench_artifacts/parallel_speedup.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench_artifacts/parallel_speedup.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"threads\": %d,\n"
               "  \"calibration\": {\"serial_seconds\": %.6f, "
               "\"parallel_seconds\": %.6f, \"speedup\": %.3f},\n"
               "  \"sweep\": {\"serial_seconds\": %.6f, "
               "\"parallel_seconds\": %.6f, \"speedup\": %.3f}\n"
               "}\n",
               hardware, calibration_serial, calibration_parallel,
               calibration_serial / calibration_parallel, sweep_serial,
               sweep_parallel, sweep_serial / sweep_parallel);
  std::fclose(f);
  std::printf(
      "parallel_speedup (threads=%d): calibration %.2fx, sweep %.2fx "
      "-> bench_artifacts/parallel_speedup.json\n",
      hardware, calibration_serial / calibration_parallel,
      sweep_serial / sweep_parallel);
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  approxmem::WriteParallelSpeedupArtifact();
  return 0;
}
