// Micro-benchmarks (google-benchmark) of the simulator's hot paths: cell
// writes (exact vs calibrated fast path), instrumented sorting throughput,
// and the LIS/Rem computation. These measure the *simulator's* speed, not
// the simulated device's.
#include <benchmark/benchmark.h>

#include "approx/approx_memory.h"
#include "common/random.h"
#include "core/workload.h"
#include "mlc/calibration.h"
#include "mlc/cell.h"
#include "sort/sort_common.h"
#include "sortedness/lis.h"

namespace approxmem {
namespace {

void BM_ExactCellWrite(benchmark::State& state) {
  const mlc::MlcConfig config =
      mlc::MlcConfig().WithT(static_cast<double>(state.range(0)) / 1000.0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mlc::WriteCell(static_cast<int>(rng.UniformInt(4)), config, rng));
  }
}
BENCHMARK(BM_ExactCellWrite)->Arg(25)->Arg(55)->Arg(100);

void BM_FastWordWrite(benchmark::State& state) {
  approx::ApproxMemory::Options options;
  options.calibration_trials = 50000;
  approx::ApproxMemory memory(options);
  approx::ApproxArrayU32 array = memory.NewApproxArray(1, 0.055);
  Rng rng(2);
  for (auto _ : state) {
    array.Set(0, rng.NextU32());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FastWordWrite);

void BM_InstrumentedQuicksort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  approx::ApproxMemory::Options options;
  options.calibration_trials = 50000;
  approx::ApproxMemory memory(options);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 3);
  for (auto _ : state) {
    approx::ApproxArrayU32 array = memory.NewApproxArray(n, 0.055);
    array.Store(keys);
    sort::SortSpec spec;
    spec.keys = &array;
    Rng rng(4);
    benchmark::DoNotOptimize(
        sort::RunSort(spec, {sort::SortKind::kQuicksort, 0}, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_InstrumentedQuicksort)->Arg(1 << 12)->Arg(1 << 16);

void BM_LisRem(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  const std::vector<uint32_t> values = UniformKeys(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sortedness::Rem(values));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_LisRem)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace
}  // namespace approxmem

BENCHMARK_MAIN();
