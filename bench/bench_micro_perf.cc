// Micro-benchmarks (google-benchmark) of the simulator's hot paths: cell
// writes (exact vs calibrated fast path), instrumented sorting throughput,
// and the LIS/Rem computation. These measure the *simulator's* speed, not
// the simulated device's.
//
// After the google-benchmark suite, the binary times serial vs parallel
// Monte-Carlo calibration and a serial vs parallel (T x algorithm) sweep
// and writes bench_artifacts/parallel_speedup.json, so the speedup
// trajectory of the parallel runner can be tracked across PRs. It also
// times the striped intra-sort radix hot path at 1/2/4/8 workers plus the
// batched-vs-scalar write kernels and writes
// bench_artifacts/perf_snapshot.json — the snapshot committed at the repo
// root as BENCH_10.json and diffed by tools/bench_compare in CI.
#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "approx/approx_memory.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/workload.h"
#include "mlc/calibration.h"
#include "mlc/cell.h"
#include "sort/sort_common.h"
#include "sortedness/lis.h"

namespace approxmem {
namespace {

void BM_ExactCellWrite(benchmark::State& state) {
  const mlc::MlcConfig config =
      mlc::MlcConfig().WithT(static_cast<double>(state.range(0)) / 1000.0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mlc::WriteCell(static_cast<int>(rng.UniformInt(4)), config, rng));
  }
}
BENCHMARK(BM_ExactCellWrite)->Arg(25)->Arg(55)->Arg(100);

void BM_FastWordWrite(benchmark::State& state) {
  approx::ApproxMemory::Options options;
  options.calibration_trials = 50000;
  approx::ApproxMemory memory(options);
  approx::ApproxArrayU32 array = memory.NewApproxArray(1, 0.055);
  Rng rng(2);
  for (auto _ : state) {
    array.Set(0, rng.NextU32());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FastWordWrite);

void BM_InstrumentedQuicksort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  approx::ApproxMemory::Options options;
  options.calibration_trials = 50000;
  approx::ApproxMemory memory(options);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 3);
  for (auto _ : state) {
    approx::ApproxArrayU32 array = memory.NewApproxArray(n, 0.055);
    array.Store(keys);
    sort::SortSpec spec;
    spec.keys = &array;
    Rng rng(4);
    benchmark::DoNotOptimize(
        sort::RunSort(spec, {sort::SortKind::kQuicksort, 0}, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_InstrumentedQuicksort)->Arg(1 << 12)->Arg(1 << 16);

void BM_StripedLsdRadix(benchmark::State& state) {
  // Intra-sort scaling of the striped LSD hot path; Arg is the worker
  // count (1 = serial). Output is identical at every setting, so the curve
  // is pure wall-clock.
  const int threads = static_cast<int>(state.range(0));
  const size_t n = 1 << 18;
  ThreadPool pool(threads);
  approx::ApproxMemory::Options options;
  options.calibration_trials = 50000;
  approx::ApproxMemory memory(options);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 9);
  for (auto _ : state) {
    approx::ApproxArrayU32 array = memory.NewApproxArray(n, 0.055);
    array.Store(keys);
    sort::SortSpec spec;
    spec.keys = &array;
    spec.alloc_key_buffer = [&](size_t words) {
      return memory.NewApproxArray(words, 0.055);
    };
    spec.tuning.pool = threads > 1 ? &pool : nullptr;
    Rng rng(4);
    benchmark::DoNotOptimize(
        sort::RunSort(spec, {sort::SortKind::kLsdRadix, 6}, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_StripedLsdRadix)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LisRem(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  const std::vector<uint32_t> values = UniformKeys(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sortedness::Rem(values));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_LisRem)->Arg(1 << 14)->Arg(1 << 18);

void BM_CalibrationSharded(benchmark::State& state) {
  // threads = 1 is the serial baseline; higher args show pool scaling.
  ThreadPool pool(static_cast<int>(state.range(0)));
  const mlc::MlcConfig config = mlc::MlcConfig().WithT(0.055);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mlc::CellCalibration::Run(config, 50000, /*seed=*/6, &pool));
  }
}
BENCHMARK(BM_CalibrationSharded)->Arg(1)->Arg(0 /* hardware */);

// --- parallel_speedup.json -------------------------------------------------

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Full T-grid calibration through a fresh shared cache, as a figure sweep
// would trigger it on a cold start.
double TimeCalibration(int threads) {
  ThreadPool pool(threads);
  mlc::CalibrationCache cache(mlc::MlcConfig(), 100000, /*seed=*/42, &pool);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    const double t = 0.025 + 0.025 * i;
    // Each T's Monte-Carlo shards fan out over the pool.
    benchmark::DoNotOptimize(cache.PvRatio(t));
  }
  return SecondsSince(start);
}

// A bench_fig9-style (T x algorithm) sweep: per-cell engines, one shared
// calibration cache, cells scheduled on the pool.
double TimeSweep(int threads) {
  ThreadPool pool(threads);
  auto cache = std::make_shared<mlc::CalibrationCache>(
      mlc::MlcConfig(), 20000, /*seed=*/42 ^ 0xca11b7a7e5eedULL, &pool);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 20000, 42);
  const std::vector<double> ts = {0.045, 0.055, 0.065, 0.075};
  const auto algorithms = sort::HeadlineAlgorithms();
  const auto start = std::chrono::steady_clock::now();
  pool.ParallelFor(0, ts.size() * algorithms.size(), [&](size_t cell) {
    const size_t row = cell / algorithms.size();
    const size_t col = cell % algorithms.size();
    core::EngineOptions options;
    options.seed = 42 ^ (cell + 1);
    options.calibration_trials = 20000;
    options.shared_calibration = cache;
    core::ApproxSortEngine engine(options);
    benchmark::DoNotOptimize(
        engine.SortApproxRefine(keys, algorithms[col], ts[row]));
  });
  return SecondsSince(start);
}

void WriteParallelSpeedupArtifact() {
  const int hardware = ThreadPool::HardwareThreads();
  const double calibration_serial = TimeCalibration(1);
  const double calibration_parallel = TimeCalibration(hardware);
  const double sweep_serial = TimeSweep(1);
  const double sweep_parallel = TimeSweep(hardware);

  ::mkdir("bench_artifacts", 0755);
  std::FILE* f = std::fopen("bench_artifacts/parallel_speedup.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench_artifacts/parallel_speedup.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"threads\": %d,\n"
               "  \"calibration\": {\"serial_seconds\": %.6f, "
               "\"parallel_seconds\": %.6f, \"speedup\": %.3f},\n"
               "  \"sweep\": {\"serial_seconds\": %.6f, "
               "\"parallel_seconds\": %.6f, \"speedup\": %.3f}\n"
               "}\n",
               hardware, calibration_serial, calibration_parallel,
               calibration_serial / calibration_parallel, sweep_serial,
               sweep_parallel, sweep_serial / sweep_parallel);
  std::fclose(f);
  std::printf(
      "parallel_speedup (threads=%d): calibration %.2fx, sweep %.2fx "
      "-> bench_artifacts/parallel_speedup.json\n",
      hardware, calibration_serial / calibration_parallel,
      sweep_serial / sweep_parallel);
}

// --- perf_snapshot.json ----------------------------------------------------

// One instrumented 6-bit striped LSD sort; median of three runs.
double TimeStripedSort(int threads, bool sqrt_arena, size_t n) {
  ThreadPool pool(threads);
  approx::ApproxMemory::Options options;
  options.calibration_trials = 50000;
  approx::ApproxMemory memory(options);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 9);
  std::vector<double> samples;
  for (int run = 0; run < 3; ++run) {
    approx::ApproxArrayU32 array = memory.NewApproxArray(n, 0.055);
    array.Store(keys);
    sort::SortSpec spec;
    spec.keys = &array;
    spec.alloc_key_buffer = [&](size_t words) {
      return memory.NewApproxArray(words, 0.055);
    };
    spec.tuning.pool = threads > 1 ? &pool : nullptr;
    spec.tuning.lsd_sqrt_arena = sqrt_arena;
    Rng rng(4);
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        sort::RunSort(spec, {sort::SortKind::kLsdRadix, 6}, rng));
    samples.push_back(SecondsSince(start));
  }
  std::sort(samples.begin(), samples.end());
  return samples[1];
}

// Throughput of n approximate word writes: the scalar per-word Set path
// vs. the SetRange span that runs the batched codec/sampler kernels.
double TimeApproxWrites(bool batched, size_t n) {
  approx::ApproxMemory::Options options;
  options.calibration_trials = 50000;
  approx::ApproxMemory memory(options);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 11);
  std::vector<double> samples;
  for (int run = 0; run < 3; ++run) {
    approx::ApproxArrayU32 array = memory.NewApproxArray(n, 0.055);
    const auto start = std::chrono::steady_clock::now();
    if (batched) {
      array.SetRange(0, keys.data(), n);
    } else {
      for (size_t i = 0; i < n; ++i) array.Set(i, keys[i]);
    }
    samples.push_back(SecondsSince(start));
  }
  std::sort(samples.begin(), samples.end());
  return samples[1];
}

void WritePerfSnapshotArtifact() {
  constexpr size_t kSortN = 1 << 20;
  constexpr size_t kWriteN = 1 << 22;
  const double serial = TimeStripedSort(1, /*sqrt_arena=*/false, kSortN);
  const double two = TimeStripedSort(2, /*sqrt_arena=*/false, kSortN);
  const double four = TimeStripedSort(4, /*sqrt_arena=*/false, kSortN);
  const double eight = TimeStripedSort(8, /*sqrt_arena=*/false, kSortN);
  const double sqrt_serial =
      TimeStripedSort(1, /*sqrt_arena=*/true, kSortN);
  const double scalar_writes = TimeApproxWrites(/*batched=*/false, kWriteN);
  const double batched_writes = TimeApproxWrites(/*batched=*/true, kWriteN);

  ::mkdir("bench_artifacts", 0755);
  std::FILE* f = std::fopen("bench_artifacts/perf_snapshot.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench_artifacts/perf_snapshot.json\n");
    return;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"snapshot\": \"striped radix + batched kernels\",\n"
      "  \"hardware_threads\": %d,\n"
      "  \"sort\": {\n"
      "    \"algorithm\": \"6-bit LSD\",\n"
      "    \"n\": %zu,\n"
      "    \"serial_seconds\": %.6f,\n"
      "    \"sqrt_arena_serial_seconds\": %.6f,\n"
      "    \"speedup\": {\"2\": %.3f, \"4\": %.3f, \"8\": %.3f}\n"
      "  },\n"
      "  \"kernels\": {\n"
      "    \"n\": %zu,\n"
      "    \"scalar_set_mwords_per_sec\": %.2f,\n"
      "    \"batched_set_range_mwords_per_sec\": %.2f,\n"
      "    \"batched_over_scalar\": %.3f\n"
      "  }\n"
      "}\n",
      ThreadPool::HardwareThreads(), kSortN, serial, sqrt_serial,
      serial / two, serial / four, serial / eight, kWriteN,
      static_cast<double>(kWriteN) / scalar_writes / 1e6,
      static_cast<double>(kWriteN) / batched_writes / 1e6,
      scalar_writes / batched_writes);
  std::fclose(f);
  std::printf(
      "perf_snapshot: sort speedup 2t %.2fx, 4t %.2fx, 8t %.2fx; batched "
      "writes %.2fx scalar -> bench_artifacts/perf_snapshot.json\n",
      serial / two, serial / four, serial / eight,
      scalar_writes / batched_writes);
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  approxmem::WriteParallelSpeedupArtifact();
  approxmem::WritePerfSnapshotArtifact();
  return 0;
}
