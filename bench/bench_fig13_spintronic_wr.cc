// Figure 13 (Appendix A): total write-energy saving of approx-refine on
// approximate spintronic memory, across the four operating points, for the
// ten algorithm instances. An ordinary SortApproxRefine sweep on the
// spintronic backend: the knob is each operating point's per-bit
// write-error probability.
#include <cstdio>

#include "approx/spintronic.h"
#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(
      argc, argv, 100000, approx::kSpintronicBackendName);
  bench::PrintRunHeader(
      "Figure 13: approx-refine write-energy saving on spintronic memory",
      env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const auto algorithms = bench::PanelAlgorithms();

  TablePrinter table("Figure 13: write-energy saving (Eq. 2, energy units)");
  std::vector<std::string> header = {"saving/err_per_bit"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  table.SetHeader(header);

  double best = -1.0;
  std::string best_label;
  for (const auto& config : approx::PaperSpintronicConfigs()) {
    std::vector<std::string> row = {approx::SpintronicLabel(config)};
    for (const auto& algorithm : algorithms) {
      const auto outcome = bench::RequireVerifiedOutcome(
          engine.SortApproxRefine(keys, algorithm, config.bit_error_prob),
          "fig13");
      row.push_back(TablePrinter::FmtPercent(outcome.write_reduction, 1));
      if (outcome.write_reduction > best) {
        best = outcome.write_reduction;
        best_label =
            algorithm.Name() + " @ " + approx::SpintronicLabel(config);
      }
    }
    table.AddRow(row);
  }
  table.Print();
  table.WriteCsv(bench::CsvPath(env, "fig13_spintronic_wr.csv"));
  std::printf(
      "\nBest: %s with %.1f%% energy saving. Paper shape: radix and "
      "quicksort gain at the 20%% and 33%% operating points (radix up to "
      "~13.4%%, quicksort ~7.5%% at n=16M); mergesort never gains; the "
      "1e-4/bit point loses everywhere.\n",
      best_label.c_str(), best * 100.0);
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
