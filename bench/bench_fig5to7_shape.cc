// Figures 5-7: the shape of sequence X after sorting 160,000 random
// integers in approximate memory at T = 0.03, 0.055, and 0.1. Each run is
// summarized as a 64-character sparkline (index buckets left to right,
// digit = mean value height 0-9; a monotone ramp 0..9 is a sorted array)
// plus displacement statistics, and exported as a CSV scatter.
#include <cstdio>
#include <sys/stat.h>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "sortedness/shape.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 160000);
  bench::PrintRunHeader("Figures 5-7: sequence shape after approximate sort",
                        env);
  ::mkdir(env.csv_dir.c_str(), 0755);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);

  for (const double t : {0.03, 0.055, 0.1}) {
    std::printf("\n== T = %.3f ==\n", t);
    for (const auto& algorithm : sort::HeadlineAlgorithms()) {
      std::vector<uint32_t> output;
      const auto result = bench::RequireOk(
          engine.SortApproxOnly(keys, algorithm, t, &output), "fig5to7");
      const sortedness::ShapeSummary shape =
          sortedness::SummarizeShape(output);
      std::printf("%-12s |%s| Rem=%6.2f%% displaced=%6.2f%% devP50=%.3f\n",
                  algorithm.Name().c_str(),
                  sortedness::ShapeSparkline(output).c_str(),
                  result.sortedness.rem_ratio * 100.0,
                  shape.displaced_fraction * 100.0, shape.deviation_p50);
      char path[256];
      std::snprintf(path, sizeof(path), "%s/shape_T%03d_%s.csv",
                    env.csv_dir.c_str(), static_cast<int>(t * 1000),
                    algorithm.Name().c_str());
      sortedness::WriteShapeCsv(output, path);
    }
  }
  std::printf(
      "\nCSV scatters written to %s/. Paper shape: at T=0.03 all four are "
      "clean ramps; at T=0.055 quicksort/LSD/MSD are ramps with sparse "
      "noise while mergesort shows block disorder; at T=0.1 all are "
      "chaotic.\n",
      env.csv_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
