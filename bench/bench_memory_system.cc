// Substrate demonstration: replay a traced quicksort through the Table 1
// memory system (write-through L1/L2/L3 + banked PCM with read-priority
// scheduling) and report cache hit rates, queue behaviour, and how the
// total write latency shrinks when the PCM banks run approximately.
#include <cstdio>

#include "approx/approx_memory.h"
#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "mem/memory_system.h"
#include "sort/sort_common.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader(
      "Memory-system substrate: traced quicksort through cache + PCM", env);

  // Trace a quicksort over precise arrays.
  mem::TraceBuffer trace;
  approx::ApproxMemory::Options options;
  options.seed = env.seed;
  options.trace = &trace;
  approx::ApproxMemory memory(options);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  approx::ApproxArrayU32 array = memory.NewPreciseArray(env.n);
  array.Store(keys);
  sort::SortSpec spec;
  spec.keys = &array;
  Rng rng(env.seed);
  const Status status =
      sort::RunSort(spec, {sort::SortKind::kQuicksort, 0}, rng);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Replay through the paper's memory system, precise and approximate.
  mem::MemorySystem precise = mem::MemorySystem::PaperDefault();
  const mem::MemorySystemStats precise_stats = precise.Replay(trace);

  mem::MemorySystem approximate = mem::MemorySystem::PaperDefault();
  const double p = 0.66;  // p(0.055): approximate write service latency.
  for (const mem::MemEvent& event : trace.events()) {
    if (event.kind == mem::AccessKind::kRead) {
      approximate.Read(event.address);
    } else {
      approximate.Write(event.address, 1000.0 * p);
    }
  }
  const mem::MemorySystemStats approx_stats = approximate.Finish();

  TablePrinter table("Trace replay through the Table 1 memory system");
  table.SetHeader({"metric", "precise PCM", "approx PCM (T=0.055)"});
  auto add = [&table](const std::string& name, double a, double b,
                      const char* unit) {
    table.AddRow({name, TablePrinter::Fmt(a, 0) + unit,
                  TablePrinter::Fmt(b, 0) + unit});
  };
  table.AddRow({"trace events",
                TablePrinter::FmtInt(static_cast<long long>(trace.size())),
                TablePrinter::FmtInt(static_cast<long long>(trace.size()))});
  add("reads", static_cast<double>(precise_stats.reads),
      static_cast<double>(approx_stats.reads), "");
  add("writes", static_cast<double>(precise_stats.writes),
      static_cast<double>(approx_stats.writes), "");
  add("L1 read hits", static_cast<double>(precise_stats.l1_read_hits),
      static_cast<double>(approx_stats.l1_read_hits), "");
  add("PCM reads", static_cast<double>(precise_stats.memory_reads),
      static_cast<double>(approx_stats.memory_reads), "");
  add("total write latency", precise_stats.total_write_latency_ns / 1e6,
      approx_stats.total_write_latency_ns / 1e6, " ms");
  add("CPU write stalls", precise_stats.write_stall_ns / 1e6,
      approx_stats.write_stall_ns / 1e6, " ms");
  add("completion time", precise_stats.completion_time_ns / 1e6,
      approx_stats.completion_time_ns / 1e6, " ms");
  table.Print();
  std::printf(
      "\nThe approximate replay shows the p(t)=0.66 write-latency scaling "
      "end to end, including its knock-on effect on write-queue stalls.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
