// Figure 11: breakdown of total write latency into the approx stage and
// the refine stage at T = 0.055, normalized to 3-bit LSD's approx stage.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader(
      "Figure 11: write latency breakdown (approx vs refine)", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const double t = env.flags.GetDouble("t", 0.055);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);

  struct Row {
    std::string name;
    double approx_cost;
    double refine_cost;
  };
  std::vector<Row> rows;
  for (const auto& algorithm : bench::PanelAlgorithms()) {
    const auto outcome = bench::RequireVerifiedOutcome(
        engine.SortApproxRefine(keys, algorithm, t), "fig11");
    rows.push_back(Row{algorithm.Name(),
                       outcome.refine.ApproxStageWriteCost(),
                       outcome.refine.RefineStageWriteCost()});
  }

  const double unit = rows.front().approx_cost;  // 3-bit LSD approx stage.
  TablePrinter table(
      "Figure 11: normalized write latency (unit = 3-bit LSD approx stage)");
  table.SetHeader({"algorithm", "approx", "refine", "total", "refine_share"});
  for (const Row& row : rows) {
    const double total = row.approx_cost + row.refine_cost;
    table.AddRow({row.name, TablePrinter::Fmt(row.approx_cost / unit, 3),
                  TablePrinter::Fmt(row.refine_cost / unit, 3),
                  TablePrinter::Fmt(total / unit, 3),
                  TablePrinter::FmtPercent(row.refine_cost / total, 1)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: more bins shrink the radix totals (6-bit best); 6-bit "
      "MSD and quicksort have the smallest totals; the refine share is "
      "negligible except for mergesort.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
