// Service-layer throughput: drives the multi-tenant SortService with a
// deterministic bursty trace at one shard and at four shards, and reports
// jobs/sec, p50/p99 submit-to-terminal latency, and each tenant's
// cumulative Equation 2 write reduction. The shard-scaling ratio (4-shard
// jobs/sec over 1-shard) is the machine-comparable metric bench_compare
// gates on — absolute jobs/sec depends on the host. On a single-core host
// the ratio sits near 1.0 and is advisory only.
//
// Extra flags: --jobs=48 (total trace jobs), --calibration_trials=20000.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "service/sort_service.h"

namespace approxmem {
namespace {

constexpr struct {
  const char* name;
  const char* backend;
} kTenants[] = {
    {"tenant-pcm", "mlc-pcm"},
    {"tenant-banked", "mlc-pcm-banked"},
    {"tenant-spin", "spintronic"},
};

struct ServiceRun {
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  service::ServiceStats stats;
  std::vector<double> tenant_wr;  // Parallel to kTenants.
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

ServiceRun RunAtShards(const bench::BenchEnv& env, int shards, size_t jobs,
                       uint64_t trials,
                       const std::shared_ptr<mlc::CalibrationCache>& cache) {
  service::ServiceOptions options;
  options.shards = shards;
  options.threads = env.threads;
  options.seed = env.seed;
  options.calibration_trials = trials;
  options.shared_calibration = cache;
  // Throughput measurement: a queue large enough that admission control
  // never sheds, so both shard counts run the identical job set.
  options.admission.queue_capacity = jobs + 1;
  service::SortService sort_service(options);
  std::vector<std::string> tenant_names;
  for (const auto& profile : kTenants) {
    service::TenantSpec tenant;
    tenant.name = profile.name;
    tenant.backend = profile.backend;
    tenant.seed = env.seed;
    const Status status = sort_service.RegisterTenant(tenant);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
    tenant_names.push_back(tenant.name);
  }

  service::TraceGenOptions gen;
  gen.seed = env.seed;
  gen.tenants = tenant_names;
  gen.max_burst_jobs = 8;
  gen.bursts = (jobs + gen.max_burst_jobs - 1) / gen.max_burst_jobs;
  gen.min_n = env.n / 4 > 16 ? env.n / 4 : 16;
  gen.max_n = env.n;
  const service::RequestTrace trace = service::MakeRandomTrace(gen);

  ServiceRun run;
  const auto start = std::chrono::steady_clock::now();
  run.stats = sort_service.Run(trace);
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.jobs_per_sec =
      run.wall_seconds > 0.0
          ? static_cast<double>(run.stats.jobs_completed) / run.wall_seconds
          : 0.0;

  std::vector<double> latencies;
  for (const service::JobRecord& record : sort_service.jobs()) {
    if (record.state == service::JobState::kCompleted) {
      latencies.push_back(record.latency_seconds * 1e3);
    }
  }
  run.p50_ms = Percentile(latencies, 0.50);
  run.p99_ms = Percentile(latencies, 0.99);
  for (const std::string& name : tenant_names) {
    run.tenant_wr.push_back(
        sort_service.tenant_ledger(name).CumulativeWriteReduction());
  }
  if (run.stats.jobs_failed > 0 || run.stats.jobs_shed > 0) {
    std::fprintf(stderr,
                 "service bench: %zu failed / %zu shed jobs at %d shards — "
                 "throughput numbers would be dishonest\n",
                 run.stats.jobs_failed, run.stats.jobs_shed, shards);
    std::exit(1);
  }
  return run;
}

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 512);
  bench::PrintRunHeader("Service throughput: sharded multi-tenant sorting",
                        env);
  const size_t jobs = static_cast<size_t>(env.flags.GetInt("jobs", 48));
  const uint64_t trials =
      static_cast<uint64_t>(env.flags.GetInt("calibration_trials", 20000));
  auto cache = std::make_shared<mlc::CalibrationCache>(
      mlc::MlcConfig{}, trials, env.seed ^ 0xca11b7a7e5eedULL);

  const ServiceRun one = RunAtShards(env, 1, jobs, trials, cache);
  const ServiceRun four = RunAtShards(env, 4, jobs, trials, cache);
  const double scaling =
      one.jobs_per_sec > 0.0 ? four.jobs_per_sec / one.jobs_per_sec : 0.0;

  TablePrinter table("service throughput (same trace at 1 vs 4 shards)");
  table.SetHeader({"shards", "jobs/sec", "p50_ms", "p99_ms", "batches",
                   "backlog_hw"});
  for (const auto& [shards, run] :
       {std::pair<int, const ServiceRun&>{1, one}, {4, four}}) {
    table.AddRow({TablePrinter::FmtInt(shards),
                  TablePrinter::Fmt(run.jobs_per_sec, 1),
                  TablePrinter::Fmt(run.p50_ms, 3),
                  TablePrinter::Fmt(run.p99_ms, 3),
                  TablePrinter::FmtInt(
                      static_cast<long long>(run.stats.batches)),
                  TablePrinter::FmtInt(static_cast<long long>(
                      run.stats.backlog_high_water))});
  }
  table.Print();

  TablePrinter tenants("cumulative Eq. 2 write reduction per tenant");
  tenants.SetHeader({"tenant", "backend", "cum_WR"});
  for (size_t i = 0; i < std::size(kTenants); ++i) {
    tenants.AddRow({kTenants[i].name, kTenants[i].backend,
                    TablePrinter::FmtPercent(four.tenant_wr[i], 2)});
  }
  tenants.Print();

  const int hardware = ThreadPool::HardwareThreads();
  std::printf("\nshard scaling: %.2fx jobs/sec at 4 shards vs 1 (%s)\n",
              scaling,
              hardware > 1 ? "gated by tools/bench_compare"
                           : "advisory: single-core host");

  const std::string path = bench::CsvPath(env, "service_snapshot.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"snapshot\": \"multi-tenant sort service\",\n"
      "  \"hardware_threads\": %d,\n"
      "  \"service\": {\n"
      "    \"jobs\": %zu,\n"
      "    \"n_max\": %zu,\n"
      "    \"jobs_per_sec\": {\"1\": %.1f, \"4\": %.1f},\n"
      "    \"shard_scaling_4s\": %.3f,\n"
      "    \"p50_latency_ms\": %.3f,\n"
      "    \"p99_latency_ms\": %.3f,\n"
      "    \"tenant_write_reduction\": {\"%s\": %.4f, \"%s\": %.4f, "
      "\"%s\": %.4f}\n"
      "  }\n"
      "}\n",
      hardware, jobs, env.n, one.jobs_per_sec, four.jobs_per_sec, scaling,
      four.p50_ms, four.p99_ms, kTenants[0].name, four.tenant_wr[0],
      kTenants[1].name, four.tenant_wr[1], kTenants[2].name,
      four.tenant_wr[2]);
  std::fclose(f);
  std::printf("service snapshot -> %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
