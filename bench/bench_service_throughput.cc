// Service-layer throughput: drives the multi-tenant SortService with a
// deterministic bursty trace at one shard and at four shards, and reports
// jobs/sec, p50/p99 latency — both wall-clock (host-dependent, printed
// for humans) and virtual-time (computed from the modeled cost ledgers,
// bit-identical on every host) — plus each tenant's cumulative Equation 2
// write reduction. bench_compare gates on the virtual-time percentiles
// and the shard-scaling ratio; wall-clock columns are advisory.
//
// A second section runs one out-of-core job twice — through the service's
// admission queue and as a bare ExtsortJobPlan on an identically seeded
// engine — and reports the write-cost parity ratio. bench_compare hard-
// gates |1 - parity| <= 1%: the service must charge tenants exactly what
// the standalone external sort pays, no hidden cost either way.
//
// Extra flags: --jobs=48 (total trace jobs), --calibration_trials=20000.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "extsort/extsort_plan.h"
#include "service/sort_service.h"
#include "testing/differential_oracle.h"

namespace approxmem {
namespace {

constexpr struct {
  const char* name;
  const char* backend;
} kTenants[] = {
    {"tenant-pcm", "mlc-pcm"},
    {"tenant-banked", "mlc-pcm-banked"},
    {"tenant-spin", "spintronic"},
};

struct ServiceRun {
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Virtual-time percentiles over completed jobs, in modeled µs. Pure
  /// functions of (trace, config): identical on every host and at every
  /// thread count, so bench_compare gates on these, not the wall clock.
  double virtual_p50_us = 0.0;
  double virtual_p99_us = 0.0;
  service::ServiceStats stats;
  std::vector<double> tenant_wr;  // Parallel to kTenants.
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

ServiceRun RunAtShards(const bench::BenchEnv& env, int shards, size_t jobs,
                       uint64_t trials,
                       const std::shared_ptr<mlc::CalibrationCache>& cache) {
  service::ServiceOptions options;
  options.shards = shards;
  options.threads = env.threads;
  options.seed = env.seed;
  options.calibration_trials = trials;
  options.shared_calibration = cache;
  // Throughput measurement: a queue large enough that admission control
  // never sheds, so both shard counts run the identical job set.
  options.admission.queue_capacity = jobs + 1;
  service::SortService sort_service(options);
  std::vector<std::string> tenant_names;
  for (const auto& profile : kTenants) {
    service::TenantSpec tenant;
    tenant.name = profile.name;
    tenant.backend = profile.backend;
    tenant.seed = env.seed;
    const Status status = sort_service.RegisterTenant(tenant);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
    tenant_names.push_back(tenant.name);
  }

  service::TraceGenOptions gen;
  gen.seed = env.seed;
  gen.tenants = tenant_names;
  gen.max_burst_jobs = 8;
  gen.bursts = (jobs + gen.max_burst_jobs - 1) / gen.max_burst_jobs;
  gen.min_n = env.n / 4 > 16 ? env.n / 4 : 16;
  gen.max_n = env.n;
  const service::RequestTrace trace = service::MakeRandomTrace(gen);

  ServiceRun run;
  const auto start = std::chrono::steady_clock::now();
  run.stats = sort_service.Run(trace);
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.jobs_per_sec =
      run.wall_seconds > 0.0
          ? static_cast<double>(run.stats.jobs_completed) / run.wall_seconds
          : 0.0;

  std::vector<double> latencies;
  std::vector<double> virtual_latencies;
  for (const service::JobRecord& record : sort_service.jobs()) {
    if (record.state == service::JobState::kCompleted) {
      latencies.push_back(record.latency_seconds * 1e3);
      virtual_latencies.push_back(record.virtual_latency_us);
    }
  }
  run.p50_ms = Percentile(latencies, 0.50);
  run.p99_ms = Percentile(latencies, 0.99);
  run.virtual_p50_us = Percentile(virtual_latencies, 0.50);
  run.virtual_p99_us = Percentile(virtual_latencies, 0.99);
  for (const std::string& name : tenant_names) {
    run.tenant_wr.push_back(
        sort_service.tenant_ledger(name).CumulativeWriteReduction());
  }
  if (run.stats.jobs_failed > 0 || run.stats.jobs_shed > 0) {
    std::fprintf(stderr,
                 "service bench: %zu failed / %zu shed jobs at %d shards — "
                 "throughput numbers would be dishonest\n",
                 run.stats.jobs_failed, run.stats.jobs_shed, shards);
    std::exit(1);
  }
  return run;
}

/// The service's per-shard, per-tenant engine seed (sort_service.cc
/// MixSeed), replicated so the standalone parity engine starts from the
/// byte-identical substrate the service's shard 0 would build.
uint64_t ShardEngineSeed(uint64_t service_seed,
                         const service::TenantSpec& tenant) {
  uint64_t h = testing::Fnv1a64(tenant.name.data(), tenant.name.size());
  h = testing::Fnv1a64(&tenant.seed, sizeof(tenant.seed), h);
  const uint64_t shard = 0;
  h = testing::Fnv1a64(&shard, sizeof(shard), h);
  return service_seed ^ h;
}

/// Runs one out-of-core job through the service, then the identical
/// ExtsortJobPlan standalone on an identically seeded engine, and returns
/// (service write cost) / (standalone write cost). The plans rebase every
/// RNG stream from (engine seed, ticket), so the two executions must
/// charge the same Equation 2 cost — bench_compare hard-gates the ratio
/// within 1% of 1.0.
double ExtsortCostParity(const bench::BenchEnv& env, uint64_t trials,
                         const std::shared_ptr<mlc::CalibrationCache>& cache,
                         double* service_cost, double* standalone_cost) {
  service::TenantSpec tenant;
  tenant.name = kTenants[0].name;
  tenant.backend = kTenants[0].backend;
  tenant.seed = env.seed;

  service::SortRequest request;
  request.tenant = tenant.name;
  request.job_class = core::JobClass::kExtSort;
  request.n = 64 * 1024;  // ~6 runs under the default 512 KiB lease.
  request.seed = env.seed;
  service::RequestTrace trace;
  trace.bursts.push_back({request});

  service::ServiceOptions options;
  options.shards = 1;
  options.threads = 1;
  options.seed = env.seed;
  options.calibration_trials = trials;
  options.shared_calibration = cache;
  service::SortService sort_service(options);
  Status status = sort_service.RegisterTenant(tenant);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::exit(1);
  }
  sort_service.Run(trace);
  const service::JobRecord& record = sort_service.jobs().front();
  if (record.state != service::JobState::kCompleted) {
    std::fprintf(stderr, "parity job did not complete: %s\n",
                 record.status.ToString().c_str());
    std::exit(1);
  }

  // The standalone substrate mirrors EngineFor: same MixSeed-derived seed,
  // health monitoring on, and a fresh wear-aware placement policy — so any
  // residual cost difference is the service's own doing, not setup skew.
  service::WearLevelOptions wear_options;
  service::WearPlacement wear(wear_options);
  core::EngineOptions engine_options;
  engine_options.backend = tenant.backend;
  engine_options.seed = ShardEngineSeed(env.seed, tenant);
  engine_options.calibration_trials = trials;
  engine_options.shared_calibration = cache;
  engine_options.health.enabled = true;
  engine_options.placement = &wear;
  engine_options.sort_threads = 1;
  core::ApproxSortEngine engine(engine_options);
  wear.BeginJob();
  core::JobContext context;
  context.engine = &engine;
  context.ticket = record.ticket;
  context.knob = record.effective_knob;
  context.resilient = tenant.resilient;
  context.resilience = tenant.resilience;
  extsort::ExtsortJobPlan plan(record.request, tenant.extsort);
  const core::JobOutcome outcome = plan.Execute(context);
  if (!outcome.status.ok() || !outcome.verified) {
    std::fprintf(stderr, "standalone parity run failed: %s\n",
                 outcome.status.ToString().c_str());
    std::exit(1);
  }
  *service_cost = record.cost.write_cost;
  *standalone_cost = outcome.cost.write_cost;
  return outcome.cost.write_cost > 0.0
             ? record.cost.write_cost / outcome.cost.write_cost
             : 0.0;
}

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 512);
  bench::PrintRunHeader("Service throughput: sharded multi-tenant sorting",
                        env);
  const size_t jobs = static_cast<size_t>(env.flags.GetInt("jobs", 48));
  const uint64_t trials =
      static_cast<uint64_t>(env.flags.GetInt("calibration_trials", 20000));
  auto cache = std::make_shared<mlc::CalibrationCache>(
      mlc::MlcConfig{}, trials, env.seed ^ 0xca11b7a7e5eedULL);

  const ServiceRun one = RunAtShards(env, 1, jobs, trials, cache);
  const ServiceRun four = RunAtShards(env, 4, jobs, trials, cache);
  const double scaling =
      one.jobs_per_sec > 0.0 ? four.jobs_per_sec / one.jobs_per_sec : 0.0;

  TablePrinter table("service throughput (same trace at 1 vs 4 shards)");
  table.SetHeader({"shards", "jobs/sec", "p50_ms", "p99_ms", "vp50_us",
                   "vp99_us", "batches", "backlog_hw"});
  for (const auto& [shards, run] :
       {std::pair<int, const ServiceRun&>{1, one}, {4, four}}) {
    table.AddRow({TablePrinter::FmtInt(shards),
                  TablePrinter::Fmt(run.jobs_per_sec, 1),
                  TablePrinter::Fmt(run.p50_ms, 3),
                  TablePrinter::Fmt(run.p99_ms, 3),
                  TablePrinter::Fmt(run.virtual_p50_us, 1),
                  TablePrinter::Fmt(run.virtual_p99_us, 1),
                  TablePrinter::FmtInt(
                      static_cast<long long>(run.stats.batches)),
                  TablePrinter::FmtInt(static_cast<long long>(
                      run.stats.backlog_high_water))});
  }
  table.Print();
  std::printf("wall-clock p50/p99 are advisory (host-dependent); the "
              "virtual-time vp50/vp99 columns are deterministic and gated "
              "by tools/bench_compare\n");

  TablePrinter tenants("cumulative Eq. 2 write reduction per tenant");
  tenants.SetHeader({"tenant", "backend", "cum_WR"});
  for (size_t i = 0; i < std::size(kTenants); ++i) {
    tenants.AddRow({kTenants[i].name, kTenants[i].backend,
                    TablePrinter::FmtPercent(four.tenant_wr[i], 2)});
  }
  tenants.Print();

  const int hardware = ThreadPool::HardwareThreads();
  std::printf("\nshard scaling: %.2fx jobs/sec at 4 shards vs 1 (%s)\n",
              scaling,
              hardware > 1 ? "gated by tools/bench_compare"
                           : "advisory: single-core host");

  double service_cost = 0.0;
  double standalone_cost = 0.0;
  const double parity =
      ExtsortCostParity(env, trials, cache, &service_cost, &standalone_cost);
  std::printf("extsort cost parity: service %.1f vs standalone %.1f write "
              "cost -> ratio %.6f (hard-gated within 1%% of 1.0)\n",
              service_cost, standalone_cost, parity);

  const std::string path = bench::CsvPath(env, "service_snapshot.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"snapshot\": \"multi-tenant sort service\",\n"
      "  \"hardware_threads\": %d,\n"
      "  \"service\": {\n"
      "    \"jobs\": %zu,\n"
      "    \"n_max\": %zu,\n"
      "    \"jobs_per_sec\": {\"1\": %.1f, \"4\": %.1f},\n"
      "    \"shard_scaling_4s\": %.3f,\n"
      "    \"p50_latency_ms\": %.3f,\n"
      "    \"p99_latency_ms\": %.3f,\n"
      "    \"virtual_p50_latency_us\": %.3f,\n"
      "    \"virtual_p99_latency_us\": %.3f,\n"
      "    \"extsort_cost_parity\": %.6f,\n"
      "    \"tenant_write_reduction\": {\"%s\": %.4f, \"%s\": %.4f, "
      "\"%s\": %.4f}\n"
      "  }\n"
      "}\n",
      hardware, jobs, env.n, one.jobs_per_sec, four.jobs_per_sec, scaling,
      four.p50_ms, four.p99_ms, four.virtual_p50_us, four.virtual_p99_us,
      parity, kTenants[0].name, four.tenant_wr[0],
      kTenants[1].name, four.tenant_wr[1], kTenants[2].name,
      four.tenant_wr[2]);
  std::fclose(f);
  std::printf("service snapshot -> %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
