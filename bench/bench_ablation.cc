// Ablations beyond the paper's figures, covering the design choices
// DESIGN.md calls out:
//   (a) cell density — SLC (2-level) vs the paper's 2-bit MLC vs 4-bit MLC,
//       sweeping the guard-band fraction instead of absolute T so the
//       densities are comparable;
//   (b) input distribution — does the approx-refine gain survive skewed,
//       nearly-sorted, and reversed inputs?
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "mlc/calibration.h"

namespace approxmem {
namespace {

void CellDensityAblation(const bench::BenchEnv& env) {
  TablePrinter table(
      "Ablation (a): cell density vs error/latency trade-off");
  table.SetHeader({"levels", "guard_fraction", "T", "avg_#P", "p(t)",
                   "word_error"});
  for (const int levels : {2, 4, 16}) {
    mlc::MlcConfig config;
    config.levels = levels;
    const double max_t = mlc::MaxTWidth(levels);
    // The precise reference keeps the same share of the half-band as the
    // paper's 2-bit cell: T = 0.025 / 0.125 = 20% of the half-band.
    config.precise_t_width = 0.2 * max_t;
    config.t_width = config.precise_t_width;
    mlc::CalibrationCache cache(config, 100000, env.seed);
    for (const double guard_fraction : {0.2, 0.44, 0.8, 0.99}) {
      const double t = guard_fraction * max_t;
      const mlc::CellCalibration& calib = cache.ForT(t);
      table.AddRow({TablePrinter::FmtInt(levels),
                    TablePrinter::Fmt(guard_fraction, 2),
                    TablePrinter::Fmt(t, 4),
                    TablePrinter::Fmt(calib.AvgPv(), 3),
                    TablePrinter::Fmt(cache.PvRatio(t), 3),
                    TablePrinter::FmtPercent(
                        calib.WordErrorRate(32 / config.BitsPerCell()), 3)});
    }
  }
  table.Print();
  std::printf(
      "\nDenser cells buy capacity but pay much steeper error rates at the "
      "same relative guard band — the reason the paper (and industry) "
      "settles on 2-bit MLC.\n");
}

void WorkloadAblation(const bench::BenchEnv& env,
                      core::ApproxSortEngine& engine) {
  TablePrinter table(
      "Ablation (b): approx-refine write reduction by input distribution "
      "(T = 0.055)");
  const std::vector<sort::AlgorithmId> algorithms = {
      {sort::SortKind::kLsdRadix, 3},
      {sort::SortKind::kQuicksort, 0},
      {sort::SortKind::kMergesort, 0}};
  std::vector<std::string> header = {"workload"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  table.SetHeader(header);
  for (const auto workload :
       {core::WorkloadKind::kUniform, core::WorkloadKind::kSkewed,
        core::WorkloadKind::kNearlySorted, core::WorkloadKind::kReversed}) {
    const auto keys = core::MakeKeys(workload, env.n, env.seed);
    std::vector<std::string> row = {core::WorkloadName(workload)};
    for (const auto& algorithm : algorithms) {
      const auto outcome = engine.SortApproxRefine(keys, algorithm, 0.055);
      if (!outcome.ok() || !outcome->refine.verified()) {
        row.push_back("ERROR");
        continue;
      }
      row.push_back(TablePrinter::FmtPercent(outcome->write_reduction, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nThe gain is workload-robust for radix sort (its write count is "
      "data-independent); quicksort's gain tracks its write count, which "
      "shrinks on presorted inputs.\n");
}

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader("Ablations: cell density and input distribution",
                        env);
  CellDensityAblation(env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  WorkloadAblation(env, engine);
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
