// Figure 10: write reduction of approx-refine vs input size n at the sweet
// spot T = 0.055, for the ten algorithm instances. The paper sweeps 1.6K to
// 16M; the default run stops at 1.6M (use --full for the 16M point).
//
// The (n x algorithm) grid runs concurrently; each cell has its own engine
// and all cells share one calibration of T = 0.055, so the table and CSV
// are byte-identical for every --threads value.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv);
  bench::PrintRunHeader("Figure 10: approx-refine write reduction vs n", env);
  const double t = env.flags.GetDouble("t", 0.055);
  const auto algorithms = bench::PanelAlgorithms();

  // --max_n caps the size sweep (the golden-parity test runs a small,
  // fast prefix of the paper's grid); the default keeps every row.
  const size_t max_n = static_cast<size_t>(
      env.flags.GetInt("max_n", 1600000));
  std::vector<size_t> sizes;
  for (const size_t n : {size_t{1600}, size_t{16000}, size_t{160000},
                         size_t{1600000}}) {
    if (n <= max_n) sizes.push_back(n);
  }
  if (env.full) sizes.push_back(bench::kPaperN);

  // One key set per row, generated up front so every cell of a row sorts
  // the exact same input regardless of sweep schedule.
  std::vector<std::vector<uint32_t>> keys_by_row;
  keys_by_row.reserve(sizes.size());
  for (const size_t n : sizes) {
    keys_by_row.push_back(
        core::MakeKeys(core::WorkloadKind::kUniform, n, env.seed));
  }

  struct Cell {
    double write_reduction = 0.0;
    std::string error;
  };
  std::vector<Cell> cells(sizes.size() * algorithms.size());
  bench::ParallelSweep(
      env, sizes.size(), algorithms.size(), [&](size_t row, size_t col) {
        core::ApproxSortEngine engine = bench::MakeCellEngine(env, row, col);
        Cell& cell = cells[row * algorithms.size() + col];
        const auto outcome =
            engine.SortApproxRefine(keys_by_row[row], algorithms[col], t);
        cell.error = bench::RefineCellError(outcome);
        if (cell.error.empty()) cell.write_reduction = outcome->write_reduction;
      });

  TablePrinter table("Figure 10: write reduction vs n (T = 0.055)");
  std::vector<std::string> header = {"n"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  table.SetHeader(header);

  for (size_t row = 0; row < sizes.size(); ++row) {
    std::vector<std::string> table_row = {
        TablePrinter::FmtInt(static_cast<long long>(sizes[row]))};
    for (size_t col = 0; col < algorithms.size(); ++col) {
      const Cell& cell = cells[row * algorithms.size() + col];
      bench::RequireNoCellError(cell.error);
      table_row.push_back(TablePrinter::FmtPercent(cell.write_reduction, 1));
    }
    table.AddRow(table_row);
  }
  table.Print();
  table.WriteCsv(bench::CsvPath(env, "fig10_wr_vs_n.csv"));
  std::printf(
      "\nPaper shape: gains grow with n for quicksort and MSD (3-bit LSD/"
      "MSD reach ~11%%/10.3%% and quicksort ~4%% at 16M); LSD is not "
      "monotone in n.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
