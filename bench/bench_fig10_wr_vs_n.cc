// Figure 10: write reduction of approx-refine vs input size n at the sweet
// spot T = 0.055, for the ten algorithm instances. The paper sweeps 1.6K to
// 16M; the default run stops at 1.6M (use --full for the 16M point).
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv);
  bench::PrintRunHeader("Figure 10: approx-refine write reduction vs n", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const double t = env.flags.GetDouble("t", 0.055);
  const auto algorithms = bench::PanelAlgorithms();

  std::vector<size_t> sizes = {1600, 16000, 160000, 1600000};
  if (env.full) sizes.push_back(bench::kPaperN);

  TablePrinter table("Figure 10: write reduction vs n (T = 0.055)");
  std::vector<std::string> header = {"n"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  table.SetHeader(header);

  for (const size_t n : sizes) {
    const auto keys =
        core::MakeKeys(core::WorkloadKind::kUniform, n, env.seed);
    std::vector<std::string> row = {TablePrinter::FmtInt(
        static_cast<long long>(n))};
    for (const auto& algorithm : algorithms) {
      const auto outcome = engine.SortApproxRefine(keys, algorithm, t);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
        return 1;
      }
      row.push_back(TablePrinter::FmtPercent(outcome->write_reduction, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nPaper shape: gains grow with n for quicksort and MSD (3-bit LSD/"
      "MSD reach ~11%%/10.3%% and quicksort ~4%% at 16M); LSD is not "
      "monotone in n.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
