// Figure 14 (Appendix A): breakdown of write energy into approx and refine
// stages at the 33%-saving operating point, normalized to 3-bit LSD's
// approx stage. An ordinary SortApproxRefine run on the spintronic backend.
#include <cstdio>

#include "approx/spintronic.h"
#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(
      argc, argv, 100000, approx::kSpintronicBackendName);
  bench::PrintRunHeader("Figure 14: spintronic write-energy breakdown", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const approx::SpintronicConfig config =
      approx::PaperSpintronicConfigs()[2];  // 33% saving, 1e-5 per bit.

  struct Row {
    std::string name;
    double approx_energy;
    double refine_energy;
  };
  std::vector<Row> rows;
  for (const auto& algorithm : bench::PanelAlgorithms()) {
    const auto outcome = bench::RequireVerifiedOutcome(
        engine.SortApproxRefine(keys, algorithm, config.bit_error_prob),
        "fig14");
    rows.push_back(Row{algorithm.Name(),
                       outcome.refine.ApproxStageWriteCost(),
                       outcome.refine.RefineStageWriteCost()});
  }

  const double unit = rows.front().approx_energy;
  TablePrinter table(
      "Figure 14: normalized write energy (unit = 3-bit LSD approx stage; "
      "33%-saving operating point)");
  table.SetHeader({"algorithm", "approx", "refine", "total", "refine_share"});
  for (const Row& row : rows) {
    const double total = row.approx_energy + row.refine_energy;
    table.AddRow({row.name, TablePrinter::Fmt(row.approx_energy / unit, 3),
                  TablePrinter::Fmt(row.refine_energy / unit, 3),
                  TablePrinter::Fmt(total / unit, 3),
                  TablePrinter::FmtPercent(row.refine_energy / total, 1)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: refine energy is negligible for everything except "
      "mergesort.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
