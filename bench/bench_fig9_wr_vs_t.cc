// Figure 9: write reduction of approx-refine vs T (Equation 2), for
// 3/4/5/6-bit LSD, 3/4/5/6-bit MSD, quicksort, and mergesort.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader("Figure 9: approx-refine write reduction vs T", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const auto algorithms = bench::PanelAlgorithms();

  TablePrinter table("Figure 9: write reduction vs T (approx-refine)");
  std::vector<std::string> header = {"T"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  table.SetHeader(header);

  double best_wr = -1.0;
  double best_t = 0.0;
  std::string best_algorithm;
  for (const double t : bench::PaperTGrid()) {
    std::vector<std::string> row = {TablePrinter::Fmt(t, 3)};
    for (const auto& algorithm : algorithms) {
      const auto outcome = engine.SortApproxRefine(keys, algorithm, t);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
        return 1;
      }
      if (!outcome->refine.verified) {
        std::fprintf(stderr, "UNSOUND: %s at T=%.3f not exactly sorted\n",
                     algorithm.Name().c_str(), t);
        return 1;
      }
      row.push_back(TablePrinter::FmtPercent(outcome->write_reduction, 1));
      if (outcome->write_reduction > best_wr) {
        best_wr = outcome->write_reduction;
        best_t = t;
        best_algorithm = algorithm.Name();
      }
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nBest: %s at T=%.3f with %.1f%% write reduction. Paper shape: all "
      "algorithms except mergesort peak at T=0.055 (radix ~10%%, quicksort "
      "~4%% at n=16M); negative below T~0.03 and above T~0.07; mergesort "
      "never gains.\n",
      best_algorithm.c_str(), best_t, best_wr * 100.0);
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
