// Figure 9: write reduction of approx-refine vs T (Equation 2), for
// 3/4/5/6-bit LSD, 3/4/5/6-bit MSD, quicksort, and mergesort.
//
// The (T x algorithm) grid cells are independent, so they run concurrently
// on the --threads pool: each cell gets its own engine (seeded from the
// cell coordinates) while all cells share one thread-safe calibration
// cache. Results are collected in grid order, so the table and the CSV
// artifact are byte-identical for every thread count.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader("Figure 9: approx-refine write reduction vs T", env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const auto t_grid = bench::PaperTGrid();
  const auto algorithms = bench::PanelAlgorithms();

  struct Cell {
    double write_reduction = 0.0;
    std::string error;
  };
  std::vector<Cell> cells(t_grid.size() * algorithms.size());
  bench::ParallelSweep(
      env, t_grid.size(), algorithms.size(), [&](size_t row, size_t col) {
        core::ApproxSortEngine engine = bench::MakeCellEngine(env, row, col);
        Cell& cell = cells[row * algorithms.size() + col];
        const auto outcome =
            engine.SortApproxRefine(keys, algorithms[col], t_grid[row]);
        cell.error = bench::RefineCellError(outcome);
        if (cell.error.empty()) cell.write_reduction = outcome->write_reduction;
      });

  TablePrinter table("Figure 9: write reduction vs T (approx-refine)");
  std::vector<std::string> header = {"T"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  table.SetHeader(header);

  double best_wr = -1.0;
  double best_t = 0.0;
  std::string best_algorithm;
  for (size_t row = 0; row < t_grid.size(); ++row) {
    std::vector<std::string> table_row = {TablePrinter::Fmt(t_grid[row], 3)};
    for (size_t col = 0; col < algorithms.size(); ++col) {
      const Cell& cell = cells[row * algorithms.size() + col];
      bench::RequireNoCellError(cell.error);
      table_row.push_back(TablePrinter::FmtPercent(cell.write_reduction, 1));
      if (cell.write_reduction > best_wr) {
        best_wr = cell.write_reduction;
        best_t = t_grid[row];
        best_algorithm = algorithms[col].Name();
      }
    }
    table.AddRow(table_row);
  }
  table.Print();
  table.WriteCsv(bench::CsvPath(env, "fig9_wr_vs_t.csv"));
  std::printf(
      "\nBest: %s at T=%.3f with %.1f%% write reduction. Paper shape: all "
      "algorithms except mergesort peak at T=0.055 (radix ~10%%, quicksort "
      "~4%% at n=16M); negative below T~0.03 and above T~0.07; mergesort "
      "never gains.\n",
      best_algorithm.c_str(), best_t, best_wr * 100.0);
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
