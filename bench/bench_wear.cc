// Endurance extension: PCM cells wear out per RESET/SET pulse, i.e. per
// program-and-verify iteration. Approximate writes converge in fewer
// iterations, so besides latency they also save wear. This bench reports
// total P&V iterations per element for a full approx-refine sort vs the
// precise baseline — the endurance co-benefit the latency numbers imply.
//
// --soak_seconds=S additionally runs a sustained-traffic soak: the
// multi-tenant sort service absorbs random bursty traces for S seconds on
// a substrate with one persistently hot region (canary error rate ~90%),
// then reports wear-leveling effectiveness (per-shard placement imbalance
// across PCM banks) and quarantine churn. Exits 1 when rotation failed to
// keep placement balanced — the CI soak gate.
//
// --age_multiplier=X runs the accelerated-aging soak instead: the service
// runs with the endurance subsystem on (approx/endurance.h) and every
// charged P&V iteration counts X times against the per-bank budgets, so a
// device-lifetime's worth of wear passes in CI minutes. Time is job-count
// virtual time, never wall clock, so the retirement timeline and every
// service digest replay bit-identically — the soak runs the same traffic
// twice (shard pool threaded, then serial) and fails unless the timelines
// and tenant ledgers match. It also fails when no bank retired, when the
// service stopped completing verified jobs after the first retirement, or
// when any completed job's output digest disagrees with std::sort (the
// differential oracle). Emits bench_artifacts/endurance_snapshot.json for
// tools/bench_compare (BENCH_10.json gate).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "approx/endurance.h"
#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/workload.h"
#include "service/sort_service.h"
#include "testing/differential_oracle.h"
#include "testing/fault_injection.h"

namespace approxmem {
namespace {

// Placement balance: max-over-mean bytes placed across the banks that ever
// held an allocation. Unlike WearImbalance this ignores quarantine
// penalties, so a deliberately poisoned bank (which rotation must starve)
// does not dominate the metric.
double ByteImbalance(const service::WearPlacement& wear) {
  uint64_t max_bytes = 0;
  uint64_t total = 0;
  int used = 0;
  for (const service::BankWear& bank : wear.banks()) {
    if (bank.allocations == 0) continue;
    ++used;
    total += bank.bytes_placed;
    if (bank.bytes_placed > max_bytes) max_bytes = bank.bytes_placed;
  }
  if (used == 0 || total == 0) return 1.0;
  return static_cast<double>(max_bytes) /
         (static_cast<double>(total) / used);
}

int RunSoak(const bench::BenchEnv& env, double seconds) {
  const uint64_t trials =
      static_cast<uint64_t>(env.flags.GetInt("calibration_trials", 20000));
  service::ServiceOptions options;
  options.shards = 4;
  options.threads = env.threads;
  options.seed = env.seed;
  options.calibration_trials = trials;
  options.admission.queue_capacity = 128;
  // Every shard substrate carries one hot region at the bottom of bank
  // lane 0: the health monitor must keep quarantining it mid-flight while
  // the wear policy steers traffic around it for the whole soak.
  options.fault_hook_factory =
      [&env](int shard) -> std::unique_ptr<approx::MemoryFaultHook> {
    testing::FaultPlan plan;
    plan.seed = env.seed ^ (0xbadULL + static_cast<uint64_t>(shard));
    testing::ErrorRateOverride hot;
    hot.region = testing::AddressRegion{0, uint64_t{64} << 20};
    hot.probability = 0.9;
    plan.rate_overrides.push_back(hot);
    return std::make_unique<testing::FaultInjector>(plan);
  };
  service::SortService sort_service(options);
  constexpr struct {
    const char* name;
    const char* backend;
  } kTenants[] = {{"tenant-pcm", "mlc-pcm"},
                  {"tenant-banked", "mlc-pcm-banked"},
                  {"tenant-spin", "spintronic"}};
  for (const auto& profile : kTenants) {
    service::TenantSpec tenant;
    tenant.name = profile.name;
    tenant.backend = profile.backend;
    tenant.seed = env.seed;
    const Status status = sort_service.RegisterTenant(tenant);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::printf("\nsoak: %.0fs of sustained bursty traffic, 4 shards, "
              "hot region poisoned at 90%% error rate\n",
              seconds);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(seconds);
  uint64_t round = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    service::TraceGenOptions gen;
    gen.seed = env.seed + ++round;
    gen.tenants = {"tenant-pcm", "tenant-banked", "tenant-spin"};
    gen.bursts = 4;
    gen.max_burst_jobs = 8;
    gen.min_n = 64;
    gen.max_n = env.n < 512 ? env.n : 512;
    sort_service.Run(service::MakeRandomTrace(gen));
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const service::ServiceStats& stats = sort_service.stats();

  TablePrinter table("soak: per-shard wear leveling and quarantine churn");
  table.SetHeader({"shard", "byte_imbalance", "wear_imbalance",
                   "quarantine_events", "alloc_retries"});
  bool balanced = true;
  uint64_t quarantines = 0;
  for (int s = 0; s < options.shards; ++s) {
    const service::WearPlacement& wear = *sort_service.shard_wear(s);
    const approx::HealthStats health = sort_service.shard_health(s);
    const double imbalance = ByteImbalance(wear);
    if (imbalance > 2.0) balanced = false;
    quarantines += wear.quarantine_events();
    table.AddRow({TablePrinter::FmtInt(s), TablePrinter::Fmt(imbalance, 3),
                  TablePrinter::Fmt(wear.WearImbalance(), 3),
                  TablePrinter::FmtInt(static_cast<long long>(
                      wear.quarantine_events())),
                  TablePrinter::FmtInt(static_cast<long long>(
                      health.allocation_retries))});
  }
  table.Print();
  std::printf("  traffic           %zu jobs in %zu rounds (%.1f jobs/sec), "
              "%zu failed, %zu shed\n",
              stats.jobs_completed, static_cast<size_t>(round),
              elapsed > 0.0 ? static_cast<double>(stats.jobs_completed) /
                                  elapsed
                            : 0.0,
              stats.jobs_failed, stats.jobs_shed);
  std::printf("  quarantine churn  %llu events (%.1f per minute)\n",
              static_cast<unsigned long long>(quarantines),
              elapsed > 0.0 ? static_cast<double>(quarantines) / elapsed *
                                  60.0
                            : 0.0);
  if (quarantines == 0) {
    std::fprintf(stderr,
                 "soak: the poisoned region was never quarantined — the "
                 "health monitor is not seeing the storm\n");
    return 1;
  }
  if (!balanced) {
    std::fprintf(stderr,
                 "soak: placement imbalance above 2.0x — bank rotation is "
                 "not leveling wear\n");
    return 1;
  }
  std::printf("soak: PASS — placement stayed balanced under quarantine "
              "churn\n");
  return 0;
}

// ---- Accelerated-aging soak ------------------------------------------------

/// Everything one aging run produces that the gates and the snapshot need.
struct AgingRunResult {
  service::ServiceStats stats;
  uint64_t timeline_digest = 0;
  /// FNV fold of every tenant ledger digest, in tenant-name order.
  uint64_t ledger_digest = 0;
  uint64_t banks_retired = 0;
  uint64_t first_retirement_vtime = 0;
  uint64_t completed_after_first_retirement = 0;
  double p99_drift = 1.0;
  /// Last-epoch over first-epoch virtual-time p99: built from the modeled
  /// cost ledgers alone, so unlike p99_drift it is host-independent and
  /// bench_compare gates it unconditionally.
  double virtual_p99_drift = 1.0;
  double write_reduction_drift = 0.0;
  uint64_t oracle_failures = 0;
  /// Retirement events in shard order, with their owning shard.
  std::vector<std::pair<int, approx::RetirementEvent>> timeline;
  std::map<uint64_t, service::SloEpochStats> epochs;
};

constexpr struct {
  const char* name;
  const char* backend;
} kAgingTenants[] = {{"tenant-pcm", "mlc-pcm"},
                     {"tenant-banked", "mlc-pcm-banked"},
                     {"tenant-spin", "spintronic"}};

/// One full aging run: fixed rounds of deterministic bursty traffic on an
/// endurance-modeled 2-shard substrate. Pure function of (env.seed,
/// age_multiplier, rounds, budget) — `threads` only changes wall clock.
AgingRunResult RunAgingService(
    const bench::BenchEnv& env, double age_multiplier, int rounds,
    int threads, double budget,
    const std::shared_ptr<mlc::CalibrationCache>& calibration) {
  service::ServiceOptions options;
  options.shards = 2;
  options.threads = threads;
  options.seed = env.seed;
  options.calibration_trials = static_cast<uint64_t>(
      env.flags.GetInt("calibration_trials", 20000));
  options.shared_calibration = calibration;
  options.admission.queue_capacity = 256;
  // Few, small banks concentrate wear so a device lifetime fits in a CI
  // run; the endurance geometry follows options.wear automatically.
  options.wear.banks = 4;
  options.endurance.enabled = true;
  options.endurance.bank_budget_pv = budget;
  options.endurance.age_multiplier = age_multiplier;
  service::SortService sort_service(options);
  for (const auto& profile : kAgingTenants) {
    service::TenantSpec tenant;
    tenant.name = profile.name;
    tenant.backend = profile.backend;
    tenant.seed = env.seed;
    const Status status = sort_service.RegisterTenant(tenant);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  }

  for (int round = 0; round < rounds; ++round) {
    service::TraceGenOptions gen;
    gen.seed = env.seed ^ (0xa9e5ULL * static_cast<uint64_t>(round + 1));
    gen.tenants = {"tenant-pcm", "tenant-banked", "tenant-spin"};
    gen.bursts = 2;
    gen.max_burst_jobs = 6;
    gen.min_n = 64;
    gen.max_n = env.n < 256 ? env.n : 256;
    sort_service.Run(service::MakeRandomTrace(gen));
  }

  AgingRunResult result;
  result.stats = sort_service.stats();
  result.timeline_digest = sort_service.RetirementTimelineDigest();
  uint64_t ledgers = testing::Fnv1a64(nullptr, 0);
  for (const std::string& name : sort_service.tenant_names()) {
    const uint64_t digest = sort_service.tenant_ledger(name).Digest();
    ledgers = testing::Fnv1a64(&digest, sizeof(digest), ledgers);
  }
  result.ledger_digest = ledgers;
  for (int s = 0; s < options.shards; ++s) {
    const approx::EnduranceLedger* ledger = sort_service.shard_endurance(s);
    result.banks_retired += ledger->wear_epoch();
    for (const approx::RetirementEvent& event : ledger->retirements()) {
      result.timeline.emplace_back(s, event);
      if (result.first_retirement_vtime == 0 ||
          event.virtual_time < result.first_retirement_vtime) {
        result.first_retirement_vtime = event.virtual_time;
      }
    }
  }
  // Differential oracle over every completed job: the digest the service
  // recorded must equal the digest of a trusted std::sort of the same
  // generated input — aged banks may err more, but a COMPLETED job is
  // still exactly sorted.
  for (const service::JobRecord& record : sort_service.jobs()) {
    if (record.state != service::JobState::kCompleted) continue;
    if (record.wear_epoch > 0) ++result.completed_after_first_retirement;
    std::vector<uint32_t> expected = core::MakeKeys(
        record.request.workload, record.request.n, record.request.seed);
    std::sort(expected.begin(), expected.end());
    const uint64_t digest =
        expected.empty()
            ? 0
            : testing::Fnv1a64(expected.data(),
                               expected.size() * sizeof(uint32_t));
    if (digest != record.keys_digest) ++result.oracle_failures;
  }
  result.p99_drift = sort_service.slo().P99DriftRatio();
  result.virtual_p99_drift = sort_service.slo().VirtualP99DriftRatio();
  result.write_reduction_drift = sort_service.slo().WriteReductionDrift();
  result.epochs = sort_service.slo().epochs();
  return result;
}

int RunAgingSoak(const bench::BenchEnv& env, double age_multiplier) {
  const int rounds =
      static_cast<int>(env.flags.GetInt("aging_rounds", 24));
  // Sized so a 4-bank shard under ~25 rounds of default traffic walks the
  // whole lifecycle: healthy, aged (escalation steps), staggered
  // retirements, and end-of-life shedding near the end of the soak.
  const double budget =
      env.flags.GetDouble("bank_budget_pv", 4.0e6);

  std::printf("\naging soak: %d rounds of bursty traffic, 2 shards x 4 "
              "banks, age multiplier %.0fx, bank budget %.2e P&V\n",
              rounds, age_multiplier, budget);
  // One shared calibration cache: per-T calibrations are deterministic, so
  // sharing only removes the Monte-Carlo recalibration from the replay.
  const uint64_t trials = static_cast<uint64_t>(
      env.flags.GetInt("calibration_trials", 20000));
  const auto calibration = std::make_shared<mlc::CalibrationCache>(
      mlc::MlcConfig{}, trials, env.seed ^ 0xca11b7a7e5eedULL);
  const AgingRunResult primary = RunAgingService(
      env, age_multiplier, rounds, env.threads, budget, calibration);
  // The determinism gate: the identical virtual-time run with the shard
  // pool forced serial must age — and account — bit-identically.
  const AgingRunResult replay = RunAgingService(env, age_multiplier, rounds,
                                                1, budget, calibration);

  TablePrinter timeline("retirement timeline (job-count virtual time)");
  timeline.SetHeader({"shard", "bank", "reason", "virtual_time",
                      "consumed_pv", "quarantines"});
  for (const auto& [shard, event] : primary.timeline) {
    timeline.AddRow(
        {TablePrinter::FmtInt(shard), TablePrinter::FmtInt(event.bank),
         std::string(approx::RetirementReasonName(event.reason)),
         TablePrinter::FmtInt(static_cast<long long>(event.virtual_time)),
         TablePrinter::Fmt(event.consumed_pv, 0),
         TablePrinter::FmtInt(static_cast<long long>(event.quarantines))});
  }
  timeline.Print();

  TablePrinter slo("per-wear-epoch SLO (p50/p99 wall-clock advisory; "
                   "vp50/vp99 virtual-time, deterministic)");
  slo.SetHeader({"epoch", "completed", "failed", "shed", "mean_WR",
                 "p50_ms", "p99_ms", "vp50_us", "vp99_us"});
  for (const auto& [epoch, stats] : primary.epochs) {
    slo.AddRow({TablePrinter::FmtInt(static_cast<long long>(epoch)),
                TablePrinter::FmtInt(static_cast<long long>(
                    stats.jobs_completed)),
                TablePrinter::FmtInt(static_cast<long long>(
                    stats.jobs_failed)),
                TablePrinter::FmtInt(static_cast<long long>(stats.jobs_shed)),
                TablePrinter::FmtPercent(stats.MeanWriteReduction(), 1),
                TablePrinter::Fmt(stats.LatencyP50() * 1e3, 3),
                TablePrinter::Fmt(stats.LatencyP99() * 1e3, 3),
                TablePrinter::Fmt(stats.VirtualLatencyP50(), 1),
                TablePrinter::Fmt(stats.VirtualLatencyP99(), 1)});
  }
  slo.Print();
  std::printf("  traffic    %zu submitted, %zu completed, %zu failed, "
              "%zu shed (%zu on exhausted substrate)\n",
              primary.stats.jobs_submitted, primary.stats.jobs_completed,
              primary.stats.jobs_failed, primary.stats.jobs_shed,
              primary.stats.jobs_shed_exhausted);
  std::printf("  lifetime   %llu banks retired (first at virtual time "
              "%llu); %llu verified jobs completed after first "
              "retirement\n",
              static_cast<unsigned long long>(primary.banks_retired),
              static_cast<unsigned long long>(
                  primary.first_retirement_vtime),
              static_cast<unsigned long long>(
                  primary.completed_after_first_retirement));
  std::printf("  drift      p99 latency x%.3f wall-clock / x%.3f "
              "virtual-time, write reduction %+.4f across epochs\n",
              primary.p99_drift, primary.virtual_p99_drift,
              primary.write_reduction_drift);
  std::printf("  digests    timeline %016llx ledgers %016llx (serial "
              "replay %016llx / %016llx)\n",
              static_cast<unsigned long long>(primary.timeline_digest),
              static_cast<unsigned long long>(primary.ledger_digest),
              static_cast<unsigned long long>(replay.timeline_digest),
              static_cast<unsigned long long>(replay.ledger_digest));

  bool ok = true;
  if (primary.oracle_failures > 0 || replay.oracle_failures > 0) {
    std::fprintf(stderr,
                 "aging soak: %llu completed job(s) failed the "
                 "differential oracle — a COMPLETED job must be exactly "
                 "sorted\n",
                 static_cast<unsigned long long>(primary.oracle_failures +
                                                 replay.oracle_failures));
    ok = false;
  }
  if (primary.banks_retired == 0) {
    std::fprintf(stderr,
                 "aging soak: no bank retired — raise --age_multiplier or "
                 "lower --bank_budget_pv, the lifetime model never "
                 "engaged\n");
    ok = false;
  }
  if (primary.completed_after_first_retirement == 0) {
    std::fprintf(stderr,
                 "aging soak: no verified completion after the first "
                 "retirement — the service did not degrade gracefully\n");
    ok = false;
  }
  if (primary.timeline_digest != replay.timeline_digest ||
      primary.ledger_digest != replay.ledger_digest) {
    std::fprintf(stderr,
                 "aging soak: threaded and serial runs disagree — the "
                 "retirement timeline or tenant ledgers are "
                 "nondeterministic\n");
    ok = false;
  }

  const std::string path =
      bench::CsvPath(env, "endurance_snapshot.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"snapshot\": \"device-lifetime endurance\",\n"
      "  \"hardware_threads\": %d,\n"
      "  \"endurance\": {\n"
      "    \"age_multiplier\": %.1f,\n"
      "    \"aging_rounds\": %d,\n"
      "    \"bank_budget_pv\": %.1f,\n"
      "    \"jobs_submitted\": %zu,\n"
      "    \"jobs_completed\": %zu,\n"
      "    \"banks_retired\": %llu,\n"
      "    \"first_retirement_vtime\": %llu,\n"
      "    \"completed_after_first_retirement\": %llu,\n"
      "    \"p99_drift_ratio\": %.3f,\n"
      "    \"virtual_p99_drift_ratio\": %.3f,\n"
      "    \"write_reduction_drift\": %.4f,\n"
      "    \"timeline_digest\": \"%016llx\"\n"
      "  }\n"
      "}\n",
      ThreadPool::HardwareThreads(), age_multiplier, rounds, budget,
      primary.stats.jobs_submitted, primary.stats.jobs_completed,
      static_cast<unsigned long long>(primary.banks_retired),
      static_cast<unsigned long long>(primary.first_retirement_vtime),
      static_cast<unsigned long long>(
          primary.completed_after_first_retirement),
      primary.p99_drift, primary.virtual_p99_drift,
      primary.write_reduction_drift,
      static_cast<unsigned long long>(primary.timeline_digest));
  std::fclose(f);
  std::printf("endurance snapshot -> %s\n", path.c_str());

  if (!ok) return 1;
  std::printf("aging soak: PASS — deterministic retirement timeline, "
              "verified service through %llu retirement(s)\n",
              static_cast<unsigned long long>(primary.banks_retired));
  return 0;
}

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader("Extension: P&V wear of approx-refine vs precise",
                        env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};

  TablePrinter table("P&V iterations (wear) per element, 3-bit LSD");
  table.SetHeader({"T", "p(t)", "wear_approx_refine", "wear_precise",
                   "wear_reduction", "write_reduction"});
  for (const double t : {0.035, 0.045, 0.055, 0.065}) {
    const auto outcome = bench::RequireVerifiedOutcome(
        engine.SortApproxRefine(keys, algorithm, t), "wear");
    const double dn = static_cast<double>(env.n);
    const double refine_wear =
        (outcome.refine.prep_approx.pv_iterations +
         outcome.refine.prep_precise.pv_iterations +
         outcome.refine.sort_approx.pv_iterations +
         outcome.refine.sort_precise.pv_iterations +
         outcome.refine.refine_precise.pv_iterations) /
        dn;
    const double baseline_wear = (outcome.baseline.keys.pv_iterations +
                                  outcome.baseline.ids.pv_iterations) /
                                 dn;
    table.AddRow({TablePrinter::Fmt(t, 3),
                  TablePrinter::Fmt(engine.PvRatio(t), 3),
                  TablePrinter::Fmt(refine_wear, 1),
                  TablePrinter::Fmt(baseline_wear, 1),
                  TablePrinter::FmtPercent(1.0 - refine_wear / baseline_wear,
                                           1),
                  TablePrinter::FmtPercent(outcome.write_reduction, 1)});
  }
  table.Print();
  std::printf(
      "\nWear tracks latency: at the sweet spot the approximate stage's "
      "cells see ~p(t) of the precise pulse count, extending device "
      "lifetime alongside the write-latency win.\n");
  const double age_multiplier = env.flags.GetDouble("age_multiplier", 0.0);
  if (age_multiplier > 0.0) return RunAgingSoak(env, age_multiplier);
  const double soak_seconds = env.flags.GetDouble("soak_seconds", 0.0);
  if (soak_seconds > 0.0) return RunSoak(env, soak_seconds);
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
