// Endurance extension: PCM cells wear out per RESET/SET pulse, i.e. per
// program-and-verify iteration. Approximate writes converge in fewer
// iterations, so besides latency they also save wear. This bench reports
// total P&V iterations per element for a full approx-refine sort vs the
// precise baseline — the endurance co-benefit the latency numbers imply.
//
// --soak_seconds=S additionally runs a sustained-traffic soak: the
// multi-tenant sort service absorbs random bursty traces for S seconds on
// a substrate with one persistently hot region (canary error rate ~90%),
// then reports wear-leveling effectiveness (per-shard placement imbalance
// across PCM banks) and quarantine churn. Exits 1 when rotation failed to
// keep placement balanced — the CI soak gate.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "service/sort_service.h"
#include "testing/fault_injection.h"

namespace approxmem {
namespace {

// Placement balance: max-over-mean bytes placed across the banks that ever
// held an allocation. Unlike WearImbalance this ignores quarantine
// penalties, so a deliberately poisoned bank (which rotation must starve)
// does not dominate the metric.
double ByteImbalance(const service::WearPlacement& wear) {
  uint64_t max_bytes = 0;
  uint64_t total = 0;
  int used = 0;
  for (const service::BankWear& bank : wear.banks()) {
    if (bank.allocations == 0) continue;
    ++used;
    total += bank.bytes_placed;
    if (bank.bytes_placed > max_bytes) max_bytes = bank.bytes_placed;
  }
  if (used == 0 || total == 0) return 1.0;
  return static_cast<double>(max_bytes) /
         (static_cast<double>(total) / used);
}

int RunSoak(const bench::BenchEnv& env, double seconds) {
  const uint64_t trials =
      static_cast<uint64_t>(env.flags.GetInt("calibration_trials", 20000));
  service::ServiceOptions options;
  options.shards = 4;
  options.threads = env.threads;
  options.seed = env.seed;
  options.calibration_trials = trials;
  options.admission.queue_capacity = 128;
  // Every shard substrate carries one hot region at the bottom of bank
  // lane 0: the health monitor must keep quarantining it mid-flight while
  // the wear policy steers traffic around it for the whole soak.
  options.fault_hook_factory =
      [&env](int shard) -> std::unique_ptr<approx::MemoryFaultHook> {
    testing::FaultPlan plan;
    plan.seed = env.seed ^ (0xbadULL + static_cast<uint64_t>(shard));
    testing::ErrorRateOverride hot;
    hot.region = testing::AddressRegion{0, uint64_t{64} << 20};
    hot.probability = 0.9;
    plan.rate_overrides.push_back(hot);
    return std::make_unique<testing::FaultInjector>(plan);
  };
  service::SortService sort_service(options);
  constexpr struct {
    const char* name;
    const char* backend;
  } kTenants[] = {{"tenant-pcm", "mlc-pcm"},
                  {"tenant-banked", "mlc-pcm-banked"},
                  {"tenant-spin", "spintronic"}};
  for (const auto& profile : kTenants) {
    service::TenantSpec tenant;
    tenant.name = profile.name;
    tenant.backend = profile.backend;
    tenant.seed = env.seed;
    const Status status = sort_service.RegisterTenant(tenant);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::printf("\nsoak: %.0fs of sustained bursty traffic, 4 shards, "
              "hot region poisoned at 90%% error rate\n",
              seconds);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(seconds);
  uint64_t round = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    service::TraceGenOptions gen;
    gen.seed = env.seed + ++round;
    gen.tenants = {"tenant-pcm", "tenant-banked", "tenant-spin"};
    gen.bursts = 4;
    gen.max_burst_jobs = 8;
    gen.min_n = 64;
    gen.max_n = env.n < 512 ? env.n : 512;
    sort_service.Run(service::MakeRandomTrace(gen));
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const service::ServiceStats& stats = sort_service.stats();

  TablePrinter table("soak: per-shard wear leveling and quarantine churn");
  table.SetHeader({"shard", "byte_imbalance", "wear_imbalance",
                   "quarantine_events", "alloc_retries"});
  bool balanced = true;
  uint64_t quarantines = 0;
  for (int s = 0; s < options.shards; ++s) {
    const service::WearPlacement& wear = *sort_service.shard_wear(s);
    const approx::HealthStats health = sort_service.shard_health(s);
    const double imbalance = ByteImbalance(wear);
    if (imbalance > 2.0) balanced = false;
    quarantines += wear.quarantine_events();
    table.AddRow({TablePrinter::FmtInt(s), TablePrinter::Fmt(imbalance, 3),
                  TablePrinter::Fmt(wear.WearImbalance(), 3),
                  TablePrinter::FmtInt(static_cast<long long>(
                      wear.quarantine_events())),
                  TablePrinter::FmtInt(static_cast<long long>(
                      health.allocation_retries))});
  }
  table.Print();
  std::printf("  traffic           %zu jobs in %zu rounds (%.1f jobs/sec), "
              "%zu failed, %zu shed\n",
              stats.jobs_completed, static_cast<size_t>(round),
              elapsed > 0.0 ? static_cast<double>(stats.jobs_completed) /
                                  elapsed
                            : 0.0,
              stats.jobs_failed, stats.jobs_shed);
  std::printf("  quarantine churn  %llu events (%.1f per minute)\n",
              static_cast<unsigned long long>(quarantines),
              elapsed > 0.0 ? static_cast<double>(quarantines) / elapsed *
                                  60.0
                            : 0.0);
  if (quarantines == 0) {
    std::fprintf(stderr,
                 "soak: the poisoned region was never quarantined — the "
                 "health monitor is not seeing the storm\n");
    return 1;
  }
  if (!balanced) {
    std::fprintf(stderr,
                 "soak: placement imbalance above 2.0x — bank rotation is "
                 "not leveling wear\n");
    return 1;
  }
  std::printf("soak: PASS — placement stayed balanced under quarantine "
              "churn\n");
  return 0;
}

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader("Extension: P&V wear of approx-refine vs precise",
                        env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};

  TablePrinter table("P&V iterations (wear) per element, 3-bit LSD");
  table.SetHeader({"T", "p(t)", "wear_approx_refine", "wear_precise",
                   "wear_reduction", "write_reduction"});
  for (const double t : {0.035, 0.045, 0.055, 0.065}) {
    const auto outcome = bench::RequireVerifiedOutcome(
        engine.SortApproxRefine(keys, algorithm, t), "wear");
    const double dn = static_cast<double>(env.n);
    const double refine_wear =
        (outcome.refine.prep_approx.pv_iterations +
         outcome.refine.prep_precise.pv_iterations +
         outcome.refine.sort_approx.pv_iterations +
         outcome.refine.sort_precise.pv_iterations +
         outcome.refine.refine_precise.pv_iterations) /
        dn;
    const double baseline_wear = (outcome.baseline.keys.pv_iterations +
                                  outcome.baseline.ids.pv_iterations) /
                                 dn;
    table.AddRow({TablePrinter::Fmt(t, 3),
                  TablePrinter::Fmt(engine.PvRatio(t), 3),
                  TablePrinter::Fmt(refine_wear, 1),
                  TablePrinter::Fmt(baseline_wear, 1),
                  TablePrinter::FmtPercent(1.0 - refine_wear / baseline_wear,
                                           1),
                  TablePrinter::FmtPercent(outcome.write_reduction, 1)});
  }
  table.Print();
  std::printf(
      "\nWear tracks latency: at the sweet spot the approximate stage's "
      "cells see ~p(t) of the precise pulse count, extending device "
      "lifetime alongside the write-latency win.\n");
  const double soak_seconds = env.flags.GetDouble("soak_seconds", 0.0);
  if (soak_seconds > 0.0) return RunSoak(env, soak_seconds);
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
