// Endurance extension: PCM cells wear out per RESET/SET pulse, i.e. per
// program-and-verify iteration. Approximate writes converge in fewer
// iterations, so besides latency they also save wear. This bench reports
// total P&V iterations per element for a full approx-refine sort vs the
// precise baseline — the endurance co-benefit the latency numbers imply.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader("Extension: P&V wear of approx-refine vs precise",
                        env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};

  TablePrinter table("P&V iterations (wear) per element, 3-bit LSD");
  table.SetHeader({"T", "p(t)", "wear_approx_refine", "wear_precise",
                   "wear_reduction", "write_reduction"});
  for (const double t : {0.035, 0.045, 0.055, 0.065}) {
    const auto outcome = bench::RequireVerifiedOutcome(
        engine.SortApproxRefine(keys, algorithm, t), "wear");
    const double dn = static_cast<double>(env.n);
    const double refine_wear =
        (outcome.refine.prep_approx.pv_iterations +
         outcome.refine.prep_precise.pv_iterations +
         outcome.refine.sort_approx.pv_iterations +
         outcome.refine.sort_precise.pv_iterations +
         outcome.refine.refine_precise.pv_iterations) /
        dn;
    const double baseline_wear = (outcome.baseline.keys.pv_iterations +
                                  outcome.baseline.ids.pv_iterations) /
                                 dn;
    table.AddRow({TablePrinter::Fmt(t, 3),
                  TablePrinter::Fmt(engine.PvRatio(t), 3),
                  TablePrinter::Fmt(refine_wear, 1),
                  TablePrinter::Fmt(baseline_wear, 1),
                  TablePrinter::FmtPercent(1.0 - refine_wear / baseline_wear,
                                           1),
                  TablePrinter::FmtPercent(outcome.write_reduction, 1)});
  }
  table.Print();
  std::printf(
      "\nWear tracks latency: at the sweet spot the approximate stage's "
      "cells see ~p(t) of the precise pulse count, extending device "
      "lifetime alongside the write-latency win.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
