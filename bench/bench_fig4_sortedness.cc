// Figure 4: sorting 16M random integers in approximate memory only.
// (a) error rate vs T, (b) Rem ratio vs T, (c) write reduction vs T
// (Equation 1), for 6-bit LSD, 6-bit MSD, quicksort, and mergesort.
//
// Cells of the (T x algorithm) grid run concurrently (see bench_lib.h);
// rows are assembled in grid order, so tables and CSVs are byte-identical
// for every --threads value.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv);
  bench::PrintRunHeader(
      "Figure 4: sortedness vs write reduction in approximate memory", env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const auto t_grid = bench::PaperTGrid();
  const auto algorithms = sort::HeadlineAlgorithms();

  struct Cell {
    double error_rate = 0.0;
    double rem_ratio = 0.0;
    double write_reduction = 0.0;
    std::string error;
  };
  std::vector<Cell> cells(t_grid.size() * algorithms.size());
  bench::ParallelSweep(
      env, t_grid.size(), algorithms.size(), [&](size_t row, size_t col) {
        core::ApproxSortEngine engine = bench::MakeCellEngine(env, row, col);
        Cell& cell = cells[row * algorithms.size() + col];
        const auto result =
            engine.SortApproxOnly(keys, algorithms[col], t_grid[row]);
        if (!result.ok()) {
          cell.error = result.status().ToString();
          return;
        }
        cell.error_rate = result->sortedness.error_rate;
        cell.rem_ratio = result->sortedness.rem_ratio;
        cell.write_reduction = result->write_reduction;
      });

  TablePrinter error_table("Figure 4(a): error rate vs T");
  TablePrinter rem_table("Figure 4(b): Rem ratio vs T");
  TablePrinter wr_table("Figure 4(c): write reduction vs T (Eq. 1)");
  std::vector<std::string> header = {"T"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  error_table.SetHeader(header);
  rem_table.SetHeader(header);
  wr_table.SetHeader(header);

  for (size_t row = 0; row < t_grid.size(); ++row) {
    std::vector<std::string> error_row = {TablePrinter::Fmt(t_grid[row], 3)};
    std::vector<std::string> rem_row = error_row;
    std::vector<std::string> wr_row = error_row;
    for (size_t col = 0; col < algorithms.size(); ++col) {
      const Cell& cell = cells[row * algorithms.size() + col];
      bench::RequireNoCellError(cell.error);
      error_row.push_back(TablePrinter::FmtPercent(cell.error_rate, 2));
      rem_row.push_back(TablePrinter::FmtPercent(cell.rem_ratio, 2));
      wr_row.push_back(TablePrinter::FmtPercent(cell.write_reduction, 1));
    }
    error_table.AddRow(error_row);
    rem_table.AddRow(rem_row);
    wr_table.AddRow(wr_row);
  }
  error_table.Print();
  rem_table.Print();
  wr_table.Print();
  error_table.WriteCsv(bench::CsvPath(env, "fig4a_error_rate.csv"));
  rem_table.WriteCsv(bench::CsvPath(env, "fig4b_rem_ratio.csv"));
  wr_table.WriteCsv(bench::CsvPath(env, "fig4c_write_reduction.csv"));
  std::printf(
      "\nPaper shape: both error rate and Rem ratio grow rapidly past "
      "T~0.06 (mergesort much earlier); write reduction reaches ~33%% at "
      "T=0.055 and ~50%% at T=0.1 while flattening.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
