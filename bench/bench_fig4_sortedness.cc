// Figure 4: sorting 16M random integers in approximate memory only.
// (a) error rate vs T, (b) Rem ratio vs T, (c) write reduction vs T
// (Equation 1), for 6-bit LSD, 6-bit MSD, quicksort, and mergesort.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv);
  bench::PrintRunHeader(
      "Figure 4: sortedness vs write reduction in approximate memory", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const auto algorithms = sort::HeadlineAlgorithms();

  TablePrinter error_table("Figure 4(a): error rate vs T");
  TablePrinter rem_table("Figure 4(b): Rem ratio vs T");
  TablePrinter wr_table("Figure 4(c): write reduction vs T (Eq. 1)");
  std::vector<std::string> header = {"T"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  error_table.SetHeader(header);
  rem_table.SetHeader(header);
  wr_table.SetHeader(header);

  for (const double t : bench::PaperTGrid()) {
    std::vector<std::string> error_row = {TablePrinter::Fmt(t, 3)};
    std::vector<std::string> rem_row = error_row;
    std::vector<std::string> wr_row = error_row;
    for (const auto& algorithm : algorithms) {
      const auto result = engine.SortApproxOnly(keys, algorithm, t);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      error_row.push_back(
          TablePrinter::FmtPercent(result->sortedness.error_rate, 2));
      rem_row.push_back(
          TablePrinter::FmtPercent(result->sortedness.rem_ratio, 2));
      wr_row.push_back(TablePrinter::FmtPercent(result->write_reduction, 1));
    }
    error_table.AddRow(error_row);
    rem_table.AddRow(rem_row);
    wr_table.AddRow(wr_row);
  }
  error_table.Print();
  rem_table.Print();
  wr_table.Print();
  std::printf(
      "\nPaper shape: both error rate and Rem ratio grow rapidly past "
      "T~0.06 (mergesort much earlier); write reduction reaches ~33%% at "
      "T=0.055 and ~50%% at T=0.1 while flattening.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
