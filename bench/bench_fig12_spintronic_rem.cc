// Figure 12 (Appendix A): Rem ratio after sorting in approximate spintronic
// memory, across the four energy-saving/error-rate operating points. An
// ordinary SortApproxOnly run on the spintronic backend: the knob is the
// per-bit write-error probability of each operating point.
#include <cstdio>

#include "approx/spintronic.h"
#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(
      argc, argv, bench::kDefaultN, approx::kSpintronicBackendName);
  bench::PrintRunHeader(
      "Figure 12: Rem ratio on approximate spintronic memory", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const auto algorithms = sort::HeadlineAlgorithms();

  TablePrinter table("Figure 12: Rem ratio vs energy saving per write");
  std::vector<std::string> header = {"saving/err_per_bit"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  table.SetHeader(header);

  for (const auto& config : approx::PaperSpintronicConfigs()) {
    std::vector<std::string> row = {approx::SpintronicLabel(config)};
    for (const auto& algorithm : algorithms) {
      const auto result = bench::RequireOk(
          engine.SortApproxOnly(keys, algorithm, config.bit_error_prob),
          "fig12");
      row.push_back(
          TablePrinter::FmtPercent(result.sortedness.rem_ratio, 2));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nPaper shape: nearly sorted at the 5%%-saving point; mergesort "
      "degrades first; at the 50%%-saving point (1e-4/bit) the sequence is "
      "heavily disordered for every algorithm.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
