// Figure 15 (Appendix B): write reduction of approx-refine vs T for the
// histogram-based radix sorts (the Polychroniou & Ross implementation
// style: one counting pass + one scatter write per element per pass).
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader(
      "Figure 15: approx-refine write reduction, histogram radix sorts", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);

  std::vector<sort::AlgorithmId> algorithms;
  for (int bits = 3; bits <= 6; ++bits) {
    algorithms.push_back({sort::SortKind::kLsdHistogram, bits});
  }
  for (int bits = 3; bits <= 6; ++bits) {
    algorithms.push_back({sort::SortKind::kMsdHistogram, bits});
  }

  TablePrinter table("Figure 15: write reduction vs T (histogram radix)");
  std::vector<std::string> header = {"T"};
  for (const auto& algorithm : algorithms) header.push_back(algorithm.Name());
  table.SetHeader(header);

  for (const double t : bench::PaperTGrid()) {
    std::vector<std::string> row = {TablePrinter::Fmt(t, 3)};
    for (const auto& algorithm : algorithms) {
      const auto outcome = bench::RequireVerifiedOutcome(
          engine.SortApproxRefine(keys, algorithm, t), "fig15");
      row.push_back(TablePrinter::FmtPercent(outcome.write_reduction, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nPaper shape: peaks at T=0.055-0.06; ~10%% for 3-bit and ~5%% for "
      "6-bit — slightly below the queue-bucket implementations because "
      "histogram partitioning already halves the writes, so the fixed "
      "prep/refine overheads weigh more.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
