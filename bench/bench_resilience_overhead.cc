// Resilience overhead: what does the verified-retry ladder cost when
// nothing goes wrong?
//
// Runs every headline algorithm twice over the same input — once through
// the plain approx-refine path, once through SortResilient with health
// monitoring enabled — and compares cumulative write cost and write
// reduction. With no faults injected the ladder must stop after one
// attempt, so the only overhead is the monitor's canary probes: the
// acceptance target is <= 2% extra write cost and zero extra attempts.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "core/resilience.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader("Resilience: no-fault overhead of the retry ladder",
                        env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  const double t = env.flags.GetDouble("t", 0.055);

  TablePrinter table("plain approx-refine vs SortResilient (monitor on)");
  table.SetHeader({"algorithm", "attempts", "WR_plain", "WR_resilient",
                   "canary_share", "overhead"});
  bool ok = true;
  for (const auto& algorithm : bench::PanelAlgorithms()) {
    // Separate engines so both paths see identical RNG streams.
    core::ApproxSortEngine plain_engine = bench::MakeEngine(env);
    const auto plain = bench::RequireVerifiedOutcome(
        plain_engine.SortApproxRefine(keys, algorithm, t),
        "resilience_overhead");

    core::EngineOptions options = bench::MakeEngineOptions(env);
    options.health.enabled = true;
    core::ApproxSortEngine resilient_engine(options);
    const auto resilient = bench::RequireOk(
        core::SortResilient(resilient_engine, keys, algorithm, t),
        "resilience_overhead");
    if (!resilient.verified) {
      std::fprintf(stderr,
                   "resilience_overhead: UNVERIFIED resilient output — %s\n",
                   resilient.refine.verification.ToString().c_str());
      return 1;
    }

    // Overhead is measured against the resilient run's own single attempt:
    // with one attempt, cumulative - attempt == canary probes, the only
    // true cost of resilience. (Comparing against the *plain* run instead
    // would also count RNG stream perturbation — monitoring shifts every
    // array's substream, an unbiased difference, not an overhead.)
    const double attempt_cost = resilient.refine.TotalWriteCost();
    const double overhead =
        attempt_cost > 0.0
            ? resilient.cumulative.write_cost / attempt_cost - 1.0
            : 0.0;
    const double canary_share =
        resilient.cumulative.write_cost > 0.0
            ? resilient.canary_costs.write_cost /
                  resilient.cumulative.write_cost
            : 0.0;
    if (resilient.attempts.size() != 1 || overhead > 0.02) ok = false;
    table.AddRow(
        {algorithm.Name(),
         TablePrinter::FmtInt(
             static_cast<long long>(resilient.attempts.size())),
         TablePrinter::FmtPercent(plain.write_reduction, 2),
         TablePrinter::FmtPercent(resilient.write_reduction, 2),
         TablePrinter::FmtPercent(canary_share, 3),
         TablePrinter::FmtPercent(overhead, 3)});
  }
  table.Print();
  table.WriteCsv(bench::CsvPath(env, "resilience_overhead.csv"));
  if (!ok) {
    std::fprintf(stderr,
                 "resilience_overhead: ladder took extra attempts or >2%% "
                 "write-cost overhead on a fault-free run\n");
    return 1;
  }
  std::printf(
      "\nNo-fault runs stop at one attempt; the canary probes are the whole "
      "overhead and stay within the 2%% budget.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
