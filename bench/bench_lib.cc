#include "bench/bench_lib.h"

#include <sys/stat.h>

#include <memory>

#include "common/thread_pool.h"
#include "mlc/calibration.h"

namespace approxmem::bench {
namespace {

uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Process-wide sweep runtime: one thread pool and one shared calibration
// cache, parameterized by the first BenchEnv seen (each bench binary parses
// exactly one). Destroyed at normal process exit, which is when the
// --calibration_cache file is saved.
struct Runtime {
  explicit Runtime(const BenchEnv& env)
      : calibration_path(env.calibration_cache), pool(env.threads) {
    if (env.sort_threads != 1) {
      sort_pool = std::make_unique<ThreadPool>(env.sort_threads);
    }
    core::EngineOptions defaults;
    calibration = std::make_shared<mlc::CalibrationCache>(
        defaults.mlc.WithT(defaults.mlc.precise_t_width),
        static_cast<uint64_t>(
            env.flags.GetInt("calibration_trials",
                             static_cast<int64_t>(defaults.calibration_trials))),
        env.seed ^ 0xca11b7a7e5eedULL, &pool);
    if (!calibration_path.empty()) {
      const StatusOr<size_t> loaded =
          calibration->LoadFromFile(calibration_path);
      if (loaded.ok()) {
        std::fprintf(stderr, "# calibration cache: loaded %zu entries from %s\n",
                     *loaded, calibration_path.c_str());
      }
    }
  }

  ~Runtime() {
    if (!calibration_path.empty()) {
      if (!calibration->SaveToFile(calibration_path)) {
        std::fprintf(stderr, "# calibration cache: failed to save %s\n",
                     calibration_path.c_str());
      }
    }
  }

  std::string calibration_path;
  ThreadPool pool;
  std::shared_ptr<mlc::CalibrationCache> calibration;
  /// Shared intra-sort pool (created only when --sort_threads != 1). Sweep
  /// workers calling into it run inline (nested ParallelFor), so the two
  /// pools never oversubscribe.
  std::unique_ptr<ThreadPool> sort_pool;
};

Runtime& GetRuntime(const BenchEnv& env) {
  static Runtime runtime(env);
  return runtime;
}

core::EngineOptions CellOptions(const BenchEnv& env, uint64_t seed) {
  Runtime& runtime = GetRuntime(env);
  core::EngineOptions options;
  options.backend = env.backend;
  options.seed = seed;
  options.calibration_trials = static_cast<uint64_t>(
      env.flags.GetInt("calibration_trials", 200000));
  options.shared_calibration = runtime.calibration;
  options.sort_threads = env.sort_threads;
  options.sort_pool = runtime.sort_pool.get();
  options.lsd_sqrt_arena = env.lsd_sqrt_arena;
  return options;
}

}  // namespace

int SweepThreads(const BenchEnv& env) {
  return GetRuntime(env).pool.thread_count();
}

core::ApproxSortEngine MakeEngine(const BenchEnv& env) {
  return core::ApproxSortEngine(CellOptions(env, env.seed));
}

core::EngineOptions MakeEngineOptions(const BenchEnv& env) {
  return CellOptions(env, env.seed);
}

uint64_t CellSeed(uint64_t seed, size_t row, size_t col) {
  // 1-based row so cell (0, 0) still perturbs the base seed.
  return seed ^ SplitMix64((static_cast<uint64_t>(row) + 1) * 0x100000001b3ULL +
                           static_cast<uint64_t>(col));
}

core::ApproxSortEngine MakeCellEngine(const BenchEnv& env, size_t row,
                                      size_t col) {
  return core::ApproxSortEngine(
      CellOptions(env, CellSeed(env.seed, row, col)));
}

void ParallelSweep(const BenchEnv& env, size_t rows, size_t cols,
                   const std::function<void(size_t, size_t)>& fn) {
  if (rows == 0 || cols == 0) return;
  GetRuntime(env).pool.ParallelFor(
      0, rows * cols, [&](size_t cell) { fn(cell / cols, cell % cols); });
}

std::string CsvPath(const BenchEnv& env, const std::string& file) {
  ::mkdir(env.csv_dir.c_str(), 0755);
  return env.csv_dir + "/" + file;
}

void PrintRunHeader(const char* what, const BenchEnv& env) {
  std::printf("# %s | n=%zu seed=%llu threads=%d sort_threads=%d "
              "backend=%s%s\n",
              what, env.n, static_cast<unsigned long long>(env.seed),
              SweepThreads(env), env.sort_threads, env.backend.c_str(),
              env.full ? " (paper scale)" : "");
  std::printf(
      "# Shapes should match the paper; absolute values depend on the "
      "simulated substrate. Run with --full for the paper's n=16M.\n");
}

}  // namespace approxmem::bench
