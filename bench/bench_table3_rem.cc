// Table 3: Rem ratio of X after quicksort, LSD, MSD and mergesort in the
// approximate memory at T = 0.03, 0.055, and 0.1.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 160000);
  bench::PrintRunHeader("Table 3: Rem ratio after approximate sort", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);

  // Table 3 orders the columns Quicksort, LSD, MSD, Mergesort.
  const std::vector<sort::AlgorithmId> algorithms = {
      {sort::SortKind::kQuicksort, 0},
      {sort::SortKind::kLsdRadix, 6},
      {sort::SortKind::kMsdRadix, 6},
      {sort::SortKind::kMergesort, 0}};

  TablePrinter table("Table 3: Rem ratio of X after approximate sort");
  table.SetHeader({"T", "Quicksort", "LSD", "MSD", "Mergesort"});
  for (const double t : {0.03, 0.055, 0.1}) {
    std::vector<std::string> row = {TablePrinter::Fmt(t, 3)};
    for (const auto& algorithm : algorithms) {
      const auto result = engine.SortApproxOnly(keys, algorithm, t);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      row.push_back(
          TablePrinter::FmtPercent(result->sortedness.rem_ratio, 4));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nPaper values (n=16M): T=0.03: ~0.001-0.003%% everywhere; T=0.055: "
      "QS 1.92%%, LSD 1.02%%, MSD 1.00%%, MS 55.8%%; T=0.1: QS 96.9%%, LSD "
      "95.7%%, MSD 83.8%%, MS 99.95%%.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
