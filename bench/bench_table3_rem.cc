// Table 3: Rem ratio of X after quicksort, LSD, MSD and mergesort in the
// approximate memory at T = 0.03, 0.055, and 0.1.
//
// The 3x4 grid runs concurrently on the --threads pool; output is
// assembled in grid order, so the table and CSV are byte-identical for
// every thread count.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 160000);
  bench::PrintRunHeader("Table 3: Rem ratio after approximate sort", env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);

  // Table 3 orders the columns Quicksort, LSD, MSD, Mergesort.
  const std::vector<sort::AlgorithmId> algorithms = {
      {sort::SortKind::kQuicksort, 0},
      {sort::SortKind::kLsdRadix, 6},
      {sort::SortKind::kMsdRadix, 6},
      {sort::SortKind::kMergesort, 0}};
  const std::vector<double> t_grid = {0.03, 0.055, 0.1};

  struct Cell {
    double rem_ratio = 0.0;
    std::string error;
  };
  std::vector<Cell> cells(t_grid.size() * algorithms.size());
  bench::ParallelSweep(
      env, t_grid.size(), algorithms.size(), [&](size_t row, size_t col) {
        core::ApproxSortEngine engine = bench::MakeCellEngine(env, row, col);
        Cell& cell = cells[row * algorithms.size() + col];
        const auto result =
            engine.SortApproxOnly(keys, algorithms[col], t_grid[row]);
        if (!result.ok()) {
          cell.error = result.status().ToString();
          return;
        }
        cell.rem_ratio = result->sortedness.rem_ratio;
      });

  TablePrinter table("Table 3: Rem ratio of X after approximate sort");
  table.SetHeader({"T", "Quicksort", "LSD", "MSD", "Mergesort"});
  for (size_t row = 0; row < t_grid.size(); ++row) {
    std::vector<std::string> table_row = {TablePrinter::Fmt(t_grid[row], 3)};
    for (size_t col = 0; col < algorithms.size(); ++col) {
      const Cell& cell = cells[row * algorithms.size() + col];
      bench::RequireNoCellError(cell.error);
      table_row.push_back(TablePrinter::FmtPercent(cell.rem_ratio, 4));
    }
    table.AddRow(table_row);
  }
  table.Print();
  table.WriteCsv(bench::CsvPath(env, "table3_rem.csv"));
  std::printf(
      "\nPaper values (n=16M): T=0.03: ~0.001-0.003%% everywhere; T=0.055: "
      "QS 1.92%%, LSD 1.02%%, MSD 1.00%%, MS 55.8%%; T=0.1: QS 96.9%%, LSD "
      "95.7%%, MSD 83.8%%, MS 99.95%%.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
