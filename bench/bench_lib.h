// Shared plumbing for the figure/table regeneration binaries.
//
// Every bench accepts:
//   --n=<elements>   input size (default kDefaultN; the paper uses 16M)
//   --full           run at the paper's full scale (n = 16,000,000)
//   --seed=<uint>    experiment seed
//   --csv_dir=<dir>  where CSV artifacts are written (default
//                    bench_artifacts/ under the current directory)
//   --threads=<k>    sweep/calibration concurrency (default: hardware;
//                    --threads=1 runs fully serially). For a fixed seed the
//                    CSV artifacts are byte-identical for every k.
//   --sort_threads=<k>  intra-sort concurrency for the striped radix
//                    passes (default 1 = serial; <= 0 means hardware).
//                    CSV artifacts are byte-identical for every k. Inside
//                    sweep worker threads the striped passes run inline, so
//                    --threads and --sort_threads never oversubscribe.
//   --lsd_sqrt_arena    use the Radsort-style O(sqrt n) LSD scratch arena.
//   --calibration_cache=<path>  load cached per-T calibrations from <path>
//                    before the run and save the (possibly grown) cache
//                    back afterwards, so repeated figure runs skip the
//                    Monte-Carlo calibration entirely.
//   --backend=<name> memory-technology backend every engine allocates on
//                    (see approx/memory_backend.h). Benches default to the
//                    technology their figure studies (mlc-pcm for most,
//                    spintronic for fig12-14); any registered backend works.
// plus the APPROX_BENCH_N environment variable as an n override.
#ifndef APPROXMEM_BENCH_BENCH_LIB_H_
#define APPROXMEM_BENCH_BENCH_LIB_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "approx/memory_backend.h"
#include "common/flags.h"
#include "core/engine.h"
#include "core/workload.h"
#include "sort/sort_common.h"

namespace approxmem::bench {

inline constexpr size_t kDefaultN = 160000;
inline constexpr size_t kPaperN = 16000000;

struct BenchEnv {
  size_t n = kDefaultN;
  uint64_t seed = 42;
  bool full = false;
  int threads = 0;       // 0 = hardware concurrency.
  int sort_threads = 1;  // Intra-sort workers; <= 0 = hardware concurrency.
  bool lsd_sqrt_arena = false;
  std::string csv_dir = "bench_artifacts";
  std::string calibration_cache;  // Empty = no persistence.
  std::string backend = std::string(approx::kPcmBackendName);
  Flags flags;
};

/// Parses flags/environment; exits the process on malformed flags or an
/// unregistered --backend. `default_backend` is the technology the bench
/// studies when --backend is not given.
inline BenchEnv ParseBenchEnv(
    int argc, char** argv, size_t default_n = kDefaultN,
    std::string_view default_backend = approx::kPcmBackendName) {
  StatusOr<Flags> flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    std::exit(2);
  }
  BenchEnv env;
  env.flags = *flags;
  env.full = flags->GetBool("full", false);
  const size_t base = env.full ? kPaperN : default_n;
  env.n = static_cast<size_t>(flags->GetInt(
      "n", static_cast<int64_t>(Flags::EnvSize("APPROX_BENCH_N", base))));
  env.seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  env.threads = static_cast<int>(flags->GetInt("threads", 0));
  env.sort_threads = static_cast<int>(flags->GetInt("sort_threads", 1));
  env.lsd_sqrt_arena = flags->GetBool("lsd_sqrt_arena", false);
  env.csv_dir = flags->GetString("csv_dir", "bench_artifacts");
  env.calibration_cache = flags->GetString("calibration_cache", "");
  env.backend = flags->GetString("backend", std::string(default_backend));
  if (!approx::IsRegisteredBackend(env.backend)) {
    std::fprintf(stderr, "unknown --backend=%s; registered:",
                 env.backend.c_str());
    for (const std::string& name : approx::RegisteredBackendNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  return env;
}

/// The T grid of Figures 4 and 9: 0.025 .. 0.1 in steps of 0.005.
inline std::vector<double> PaperTGrid() {
  std::vector<double> grid;
  for (int i = 0; i <= 15; ++i) grid.push_back(0.025 + 0.005 * i);
  return grid;
}

/// The ten algorithm instances of the Figure 9/10/11 panels.
inline std::vector<sort::AlgorithmId> PanelAlgorithms() {
  return sort::StudyAlgorithms();
}

/// Resolved sweep concurrency for this process (workers + caller).
int SweepThreads(const BenchEnv& env);

/// Engine seeded with env.seed, sharing the process-wide calibration cache
/// (and its --calibration_cache persistence) with every other engine.
core::ApproxSortEngine MakeEngine(const BenchEnv& env);

/// The options MakeEngine would use — for benches that need to tweak a
/// field (e.g. enable health monitoring) while still sharing the
/// process-wide calibration cache.
core::EngineOptions MakeEngineOptions(const BenchEnv& env);

/// Deterministic per-cell seed for grid cell (row, col): env.seed xor a
/// SplitMix64 hash of the cell coordinates.
uint64_t CellSeed(uint64_t seed, size_t row, size_t col);

/// Engine for sweep grid cell (row, col): seeded with CellSeed and sharing
/// the process-wide calibration cache, so concurrent cells never contend on
/// an RNG stream and each T is calibrated exactly once.
core::ApproxSortEngine MakeCellEngine(const BenchEnv& env, size_t row,
                                      size_t col);

/// Runs fn(row, col) for every cell of a rows x cols grid, up to
/// --threads at a time. Cells must be independent (use MakeCellEngine and
/// write results into per-cell slots); the caller assembles output in grid
/// order afterwards, so artifacts are identical for every thread count.
void ParallelSweep(const BenchEnv& env, size_t rows, size_t cols,
                   const std::function<void(size_t row, size_t col)>& fn);

/// Aborts the bench with a one-line diagnostic when an approx-refine
/// outcome finished unverified: a figure must never be built from numbers
/// whose output was not exactly sorted.
inline void RequireVerified(const core::RefineOutcome& outcome,
                            const char* context) {
  if (outcome.refine.verified()) return;
  std::fprintf(stderr, "%s: UNVERIFIED refine output — %s\n", context,
               outcome.refine.verification.ToString().c_str());
  std::exit(1);
}

/// Unwraps a StatusOr or aborts the bench with its diagnostic — the shared
/// form of the per-bench `if (!result.ok()) { fprintf; return 1; }` block.
template <typename T>
T RequireOk(StatusOr<T> result, const char* context) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", context,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// RequireOk + RequireVerified in one step for approx-refine runs.
inline core::RefineOutcome RequireVerifiedOutcome(
    StatusOr<core::RefineOutcome> outcome, const char* context) {
  core::RefineOutcome value = RequireOk(std::move(outcome), context);
  RequireVerified(value, context);
  return value;
}

/// Diagnostic for one sweep cell's approx-refine result: empty when the
/// run succeeded and verified, the failure description otherwise. Sweep
/// benches store this per cell (worker threads must not exit the process)
/// and call RequireNoCellError while assembling the table.
inline std::string RefineCellError(
    const StatusOr<core::RefineOutcome>& outcome) {
  if (!outcome.ok()) return outcome.status().ToString();
  if (!outcome->refine.verified()) {
    return "UNVERIFIED refine output — " +
           outcome->refine.verification.ToString();
  }
  return std::string();
}

/// Aborts the bench when a sweep cell recorded an error.
inline void RequireNoCellError(const std::string& error) {
  if (error.empty()) return;
  std::fprintf(stderr, "%s\n", error.c_str());
  std::exit(1);
}

/// Creates env.csv_dir if missing and returns env.csv_dir + "/" + file.
std::string CsvPath(const BenchEnv& env, const std::string& file);

void PrintRunHeader(const char* what, const BenchEnv& env);

}  // namespace approxmem::bench

#endif  // APPROXMEM_BENCH_BENCH_LIB_H_
