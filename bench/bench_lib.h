// Shared plumbing for the figure/table regeneration binaries.
//
// Every bench accepts:
//   --n=<elements>   input size (default kDefaultN; the paper uses 16M)
//   --full           run at the paper's full scale (n = 16,000,000)
//   --seed=<uint>    experiment seed
//   --csv_dir=<dir>  where CSV artifacts are written (default
//                    bench_artifacts/ under the current directory)
// plus the APPROX_BENCH_N environment variable as an n override.
#ifndef APPROXMEM_BENCH_BENCH_LIB_H_
#define APPROXMEM_BENCH_BENCH_LIB_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/engine.h"
#include "core/workload.h"
#include "sort/sort_common.h"

namespace approxmem::bench {

inline constexpr size_t kDefaultN = 160000;
inline constexpr size_t kPaperN = 16000000;

struct BenchEnv {
  size_t n = kDefaultN;
  uint64_t seed = 42;
  bool full = false;
  std::string csv_dir = "bench_artifacts";
  Flags flags;
};

/// Parses flags/environment; exits the process on malformed flags.
inline BenchEnv ParseBenchEnv(int argc, char** argv,
                              size_t default_n = kDefaultN) {
  StatusOr<Flags> flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    std::exit(2);
  }
  BenchEnv env;
  env.flags = *flags;
  env.full = flags->GetBool("full", false);
  const size_t base = env.full ? kPaperN : default_n;
  env.n = static_cast<size_t>(flags->GetInt(
      "n", static_cast<int64_t>(Flags::EnvSize("APPROX_BENCH_N", base))));
  env.seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  env.csv_dir = flags->GetString("csv_dir", "bench_artifacts");
  return env;
}

/// The T grid of Figures 4 and 9: 0.025 .. 0.1 in steps of 0.005.
inline std::vector<double> PaperTGrid() {
  std::vector<double> grid;
  for (int i = 0; i <= 15; ++i) grid.push_back(0.025 + 0.005 * i);
  return grid;
}

/// The ten algorithm instances of the Figure 9/10/11 panels.
inline std::vector<sort::AlgorithmId> PanelAlgorithms() {
  return sort::StudyAlgorithms();
}

inline core::ApproxSortEngine MakeEngine(const BenchEnv& env) {
  core::EngineOptions options;
  options.seed = env.seed;
  options.calibration_trials = static_cast<uint64_t>(
      env.flags.GetInt("calibration_trials", 200000));
  return core::ApproxSortEngine(options);
}

inline void PrintRunHeader(const char* what, const BenchEnv& env) {
  std::printf("# %s | n=%zu seed=%llu%s\n", what, env.n,
              static_cast<unsigned long long>(env.seed),
              env.full ? " (paper scale)" : "");
  std::printf(
      "# Shapes should match the paper; absolute values depend on the "
      "simulated substrate. Run with --full for the paper's n=16M.\n");
}

}  // namespace approxmem::bench

#endif  // APPROXMEM_BENCH_BENCH_LIB_H_
