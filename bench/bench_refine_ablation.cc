// Refine-stage ablations validating the paper's two design arguments:
//
//   (1) Section 4.2: the Listing 1 heuristic vs an exact patience LIS.
//       The exact LIS finds the true minimum REM but pays ~2n intermediate
//       precise writes; the heuristic over-approximates REM slightly at
//       ~zero intermediate cost. The write reduction should favor the
//       heuristic.
//   (2) Section 5's discussion: PCM writes are cheaper sequentially than
//       randomly. The approx stage is write-random while the refine stage
//       is write-sequential, so a sequential-write discount should *raise*
//       the approx-refine gain.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "refine/approx_refine.h"

namespace approxmem {
namespace {

void LisModeAblation(const bench::BenchEnv& env) {
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);

  TablePrinter table(
      "Ablation: Listing 1 heuristic vs exact LIS in the refine stage");
  table.SetHeader({"algorithm", "T", "REM_heuristic", "REM_exact",
                   "WR_heuristic", "WR_exact"});
  for (const auto& algorithm :
       {sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
        sort::AlgorithmId{sort::SortKind::kLsdRadix, 3}}) {
    for (const double t : {0.045, 0.055, 0.065}) {
      auto run = [&](refine::LisMode mode, size_t* rem) {
        refine::RefineOptions options;
        options.algorithm = algorithm;
        options.lis_mode = mode;
        options.approx_alloc = [&engine, t](size_t size) {
          return engine.memory().NewApproxArray(size, t);
        };
        options.precise_alloc = [&engine](size_t size) {
          return engine.memory().NewPreciseArray(size);
        };
        const auto report =
            refine::ApproxRefineSort(keys, options, nullptr, nullptr);
        if (!report.ok() || !report->verified()) {
          std::fprintf(stderr, "refine failed\n");
          std::exit(1);
        }
        *rem = report->rem_estimate;
        const auto baseline = refine::PreciseSortBaseline(
            keys, algorithm, options.precise_alloc, 13, true);
        return refine::WriteReduction(*report, *baseline);
      };
      size_t rem_heuristic = 0;
      size_t rem_exact = 0;
      const double wr_heuristic =
          run(refine::LisMode::kHeuristic, &rem_heuristic);
      const double wr_exact = run(refine::LisMode::kExact, &rem_exact);
      table.AddRow({algorithm.Name(), TablePrinter::Fmt(t, 3),
                    TablePrinter::FmtInt(static_cast<long long>(
                        rem_heuristic)),
                    TablePrinter::FmtInt(static_cast<long long>(rem_exact)),
                    TablePrinter::FmtPercent(wr_heuristic, 2),
                    TablePrinter::FmtPercent(wr_exact, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nThe exact LIS leaves less to re-sort (REM_exact <= REM_heuristic) "
      "but its ~2n intermediate writes cost more than the smaller REM "
      "saves — Section 4.2's argument for the heuristic.\n");
}

void SequentialDiscountAblation(const bench::BenchEnv& env) {
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);
  TablePrinter table(
      "Extension: sequential-write discount raises the approx-refine gain "
      "(T = 0.055)");
  table.SetHeader({"seq_discount", "3-bit LSD", "3-bit MSD", "Quicksort",
                   "Mergesort"});
  for (const double discount : {1.0, 0.7, 0.5}) {
    core::EngineOptions options = bench::MakeEngineOptions(env);
    options.sequential_write_discount = discount;
    core::ApproxSortEngine engine(options);
    std::vector<std::string> row = {TablePrinter::Fmt(discount, 2)};
    for (const auto& algorithm :
         {sort::AlgorithmId{sort::SortKind::kLsdRadix, 3},
          sort::AlgorithmId{sort::SortKind::kMsdRadix, 3},
          sort::AlgorithmId{sort::SortKind::kQuicksort, 0},
          sort::AlgorithmId{sort::SortKind::kMergesort, 0}}) {
      const auto outcome = engine.SortApproxRefine(keys, algorithm, 0.055);
      if (!outcome.ok() || !outcome->refine.verified()) {
        row.push_back("ERROR");
        continue;
      }
      row.push_back(TablePrinter::FmtPercent(outcome->write_reduction, 2));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nWith cheaper sequential writes the refine stage (sequential "
      "output writes) gets relatively cheaper, so the net gain grows — the "
      "outcome the paper's Section 5 discussion predicts.\n");
}

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader("Refine-stage ablations", env);
  LisModeAblation(env);
  SequentialDiscountAblation(env);
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
