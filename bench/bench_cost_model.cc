// Section 4.3 cross-check: the Equation 4 analytical write reduction vs the
// measured write reduction of the full pipeline, plus the switch decision
// (approx-refine or precise-only) at each point.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "refine/cost_model.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 100000);
  bench::PrintRunHeader("Section 4.3: cost model vs measurement", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto keys =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);

  const std::vector<sort::AlgorithmId> algorithms = {
      {sort::SortKind::kLsdRadix, 3},
      {sort::SortKind::kMsdRadix, 3},
      {sort::SortKind::kQuicksort, 0},
      {sort::SortKind::kMergesort, 0}};

  TablePrinter table("Equation 4 prediction vs measured write reduction");
  table.SetHeader({"algorithm", "T", "p(t)", "Rem~/n", "WR_measured",
                   "WR_predicted", "use_approx_refine?"});
  for (const auto& algorithm : algorithms) {
    for (const double t : {0.035, 0.055, 0.075}) {
      const auto outcome = bench::RequireVerifiedOutcome(
          engine.SortApproxRefine(keys, algorithm, t), "cost_model");
      const double p = engine.PvRatio(t);
      const bool recommend = engine.RecommendApproxRefine(
          algorithm, env.n, t, outcome.refine.rem_estimate);
      table.AddRow(
          {algorithm.Name(), TablePrinter::Fmt(t, 3),
           TablePrinter::Fmt(p, 3),
           TablePrinter::FmtPercent(
               static_cast<double>(outcome.refine.rem_estimate) /
                   static_cast<double>(env.n),
               2),
           TablePrinter::FmtPercent(outcome.write_reduction, 2),
           TablePrinter::FmtPercent(outcome.predicted_write_reduction, 2),
           recommend ? "yes" : "no"});
    }
  }
  table.Print();
  std::printf(
      "\nThe prediction and the measurement should agree to within a few "
      "points near the sweet spot; the decision column implements the "
      "paper's switch between approx-refine and precise-only sorting.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
