// Figure 2: impact of the target-range half-width T on write performance
// (average program-and-verify iterations, panel a) and accuracy (error rate
// of a 2-bit cell and of a 32-bit word, panel b), via Monte-Carlo
// simulation of the Section 2 cell model. Also prints the Table 1 / Table 2
// configuration the rest of the harness runs with.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "mem/pcm.h"
#include "mlc/calibration.h"

namespace approxmem {
namespace {

void PrintConfigTables() {
  const mlc::MlcConfig mlc;
  const mem::PcmConfig pcm;
  TablePrinter table1("Table 1: memory simulator parameters");
  table1.SetHeader({"parameter", "value"});
  table1.AddRow({"main memory", "PCM, 4KB pages"});
  table1.AddRow({"ranks x banks", "4 x 8"});
  table1.AddRow({"write queue/bank",
                 TablePrinter::FmtInt(pcm.write_queue_depth) + " entries"});
  table1.AddRow({"read queue/bank",
                 TablePrinter::FmtInt(pcm.read_queue_depth) + " entries"});
  table1.AddRow({"scheduling", "read priority"});
  table1.AddRow({"precise read latency",
                 TablePrinter::Fmt(pcm.read_latency_ns, 0) + " ns"});
  table1.AddRow({"precise write latency",
                 TablePrinter::Fmt(pcm.write_latency_ns, 0) + " ns"});
  table1.Print();

  TablePrinter table2("Table 2: MLC cell model parameters");
  table2.SetHeader({"parameter", "value"});
  table2.AddRow({"levels L", TablePrinter::FmtInt(mlc.levels)});
  table2.AddRow({"beta (write fluctuation)", TablePrinter::Fmt(mlc.beta, 3)});
  table2.AddRow({"drift mu/decade",
                 TablePrinter::Fmt(mlc.drift_mu_per_decade, 4)});
  table2.AddRow({"drift sigma/decade",
                 TablePrinter::Fmt(mlc.drift_sigma_per_decade, 4)});
  table2.AddRow({"elapsed time t", "1e5 s (5 decades of drift)"});
  table2.AddRow({"precise T", TablePrinter::Fmt(mlc.precise_t_width, 3)});
  table2.Print();
}

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv);
  bench::PrintRunHeader("Figure 2: cell write performance and error rate vs T",
                        env);
  PrintConfigTables();

  const uint64_t trials = static_cast<uint64_t>(
      env.flags.GetInt("trials", env.full ? 2000000 : 200000));
  mlc::CalibrationCache cache(mlc::MlcConfig{}, trials, env.seed);

  TablePrinter table("Figure 2: avg #P (a) and error rate (b) vs T");
  table.SetHeader({"T", "avg_#P", "p(t)", "err_2bit_cell", "err_32bit_word"});
  std::vector<double> grid = bench::PaperTGrid();
  for (double t : {0.105, 0.11, 0.115, 0.12, 0.124}) grid.push_back(t);
  for (const double t : grid) {
    const mlc::CellCalibration& calib = cache.ForT(t);
    table.AddRow({TablePrinter::Fmt(t, 3),
                  TablePrinter::Fmt(calib.AvgPv(), 3),
                  TablePrinter::Fmt(cache.PvRatio(t), 3),
                  TablePrinter::FmtPercent(calib.CellErrorRate(), 4),
                  TablePrinter::FmtPercent(calib.WordErrorRate(16), 4)});
  }
  table.Print();
  std::printf(
      "\nPaper anchors: avg #P ~2.98 at T=0.025; ~50%% fewer iterations at "
      "T=0.1; word error ~65%% at T=0.124.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
