// Out-of-core external sort (Section 4.1's disk scenario at production
// scale): approx-refine run formation overlapped with async device I/O,
// then loser-tree merge passes, all under a strict memory budget.
//
// Disk traffic is identical between the approximate and precise
// configurations; the in-memory write cost drops by the approx-refine
// write reduction. The bench runs both configurations, checks the
// determinism contract (spill/output digests byte-identical with the I/O
// pool at hardware threads vs. 1), gates the run-formation overlap ratio
// at > 1.0 (the pipeline must hide at least some I/O under compute), and
// emits bench_artifacts/extsort_snapshot.json for tools/bench_compare.
//
// The default device is deliberately slow (--bandwidth_mb=8, --latency_us=500)
// so I/O is a visible fraction of the simulated-PCM-dominated pipeline;
// the overlap gate itself holds at any device speed because the virtual
// timeline is deterministic.
#include <cstdio>
#include <memory>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "extsort/async_device.h"
#include "extsort/external_sort.h"

namespace approxmem {
namespace {

extsort::ExternalSortReport RunConfig(const bench::BenchEnv& env,
                                      const std::vector<uint32_t>& input,
                                      const extsort::AsyncDeviceConfig& device_config,
                                      size_t budget_bytes, bool use_approx,
                                      int io_threads) {
  std::unique_ptr<ThreadPool> pool;
  if (io_threads != 1) pool = std::make_unique<ThreadPool>(io_threads);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  extsort::AsyncDevice device(device_config, pool.get());
  const int input_file = device.CreateFile();
  device.Wait(device.SubmitWrite(input_file, input, 0.0));
  device.ResetClock();

  extsort::ExternalSortOptions options;
  options.memory_budget_bytes = budget_bytes;
  options.algorithm = sort::AlgorithmId{sort::SortKind::kLsdRadix, 3};
  options.t = 0.055;
  options.use_approx_refine = use_approx;
  extsort::ExternalSortReport report = bench::RequireOk(
      extsort::ExternalSort(engine, device, input_file, options, nullptr),
      use_approx ? "extsort approx" : "extsort precise");
  if (!report.verified) {
    std::fprintf(stderr, "extsort (%s): output FAILED verification\n",
                 use_approx ? "approx" : "precise");
    std::exit(1);
  }
  return report;
}

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 400000);
  bench::PrintRunHeader(
      "Out-of-core external sort: async I/O overlap + approx-refine runs",
      env);
  const auto input =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);

  extsort::AsyncDeviceConfig device_config;
  device_config.block_bytes =
      static_cast<size_t>(env.flags.GetInt("block_kb", 4)) * 1024;
  device_config.bandwidth_mb_per_s = env.flags.GetDouble("bandwidth_mb", 8.0);
  device_config.latency_us = env.flags.GetDouble("latency_us", 500.0);
  device_config.queue_depth =
      static_cast<int>(env.flags.GetInt("queue_depth", 4));
  const size_t budget_bytes = static_cast<size_t>(
      env.flags.GetInt("budget_mb",
                       static_cast<int64_t>(
                           std::max<size_t>(1, (env.n * 4) >> 20 >> 3) + 1)))
      << 20;
  const int io_threads = env.threads <= 0 ? ThreadPool::HardwareThreads()
                                          : env.threads;

  const extsort::ExternalSortReport approximate =
      RunConfig(env, input, device_config, budget_bytes, /*use_approx=*/true,
                io_threads);
  const extsort::ExternalSortReport precise =
      RunConfig(env, input, device_config, budget_bytes, /*use_approx=*/false,
                io_threads);
  const double write_reduction =
      precise.memory_write_cost > 0.0
          ? 1.0 - approximate.memory_write_cost / precise.memory_write_cost
          : 0.0;

  TablePrinter table("External sort under a " +
                     TablePrinter::FmtInt(
                         static_cast<long long>(budget_bytes >> 20)) +
                     " MiB budget");
  table.SetHeader({"config", "runs", "passes", "fan_in", "spilled_mb",
                   "overlap_form", "overlap_merge", "mem_write_ms",
                   "verified"});
  const auto add_row = [&](const char* name,
                           const extsort::ExternalSortReport& r) {
    table.AddRow(
        {name,
         TablePrinter::FmtInt(static_cast<long long>(r.initial_runs)),
         TablePrinter::FmtInt(static_cast<long long>(r.merge_passes)),
         TablePrinter::FmtInt(static_cast<long long>(r.merge_fan_in)),
         TablePrinter::Fmt(static_cast<double>(r.bytes_spilled) / (1 << 20),
                           1),
         TablePrinter::Fmt(r.run_formation.OverlapRatio(), 3),
         TablePrinter::Fmt(r.merge.OverlapRatio(), 3),
         TablePrinter::Fmt(r.memory_write_cost / 1e6, 1),
         r.verified ? "yes" : "NO"});
  };
  add_row("approx-refine", approximate);
  add_row("precise", precise);
  table.Print();
  std::printf("in-memory write reduction at scale: %.2f%% (Eq. 2); disk "
              "traffic identical by construction\n",
              write_reduction * 100.0);

  // Gate 1 — determinism: the async overlap must not leak thread schedule
  // into results. Re-run the approximate configuration with a serial
  // device and insist on byte-identical digests.
  const extsort::ExternalSortReport serial =
      RunConfig(env, input, device_config, budget_bytes, /*use_approx=*/true,
                /*io_threads=*/1);
  const bool replay_match =
      serial.spill_digest == approximate.spill_digest &&
      serial.output_digest == approximate.output_digest;
  std::printf("replay gate: threads=%d vs threads=1 spill %016llx/%016llx "
              "output %016llx/%016llx -> %s\n",
              io_threads,
              static_cast<unsigned long long>(approximate.spill_digest),
              static_cast<unsigned long long>(serial.spill_digest),
              static_cast<unsigned long long>(approximate.output_digest),
              static_cast<unsigned long long>(serial.output_digest),
              replay_match ? "MATCH" : "MISMATCH");

  // Gate 2 — overlap: with more than one run, the double-buffered pipeline
  // must hide I/O under compute (strictly > 1.0 on the virtual timeline; a
  // serial read-sort-write loop scores exactly 1.0).
  const double overlap = approximate.run_formation.OverlapRatio();
  const bool overlap_ok = approximate.initial_runs < 2 || overlap > 1.0;
  if (!overlap_ok) {
    std::fprintf(stderr,
                 "overlap gate: run-formation overlap %.4f <= 1.0 with %zu "
                 "runs — the pipeline stopped overlapping I/O\n",
                 overlap, approximate.initial_runs);
  }

  const std::string path = bench::CsvPath(env, "extsort_snapshot.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"snapshot\": \"out-of-core external sort\",\n"
      "  \"hardware_threads\": %d,\n"
      "  \"extsort\": {\n"
      "    \"n\": %zu,\n"
      "    \"budget_bytes\": %zu,\n"
      "    \"io_threads\": %d,\n"
      "    \"initial_runs\": %zu,\n"
      "    \"merge_passes\": %zu,\n"
      "    \"merge_fan_in\": %zu,\n"
      "    \"bytes_spilled\": %llu,\n"
      "    \"overlap_ratio\": %.4f,\n"
      "    \"merge_overlap_ratio\": %.4f,\n"
      "    \"write_reduction_run_formation\": %.4f,\n"
      "    \"budget_high_water_fraction\": %.4f,\n"
      "    \"spill_digest\": \"%016llx\",\n"
      "    \"output_digest\": \"%016llx\",\n"
      "    \"replay_match\": %s\n"
      "  }\n"
      "}\n",
      ThreadPool::HardwareThreads(), approximate.n, budget_bytes, io_threads,
      approximate.initial_runs, approximate.merge_passes,
      approximate.merge_fan_in,
      static_cast<unsigned long long>(approximate.bytes_spilled), overlap,
      approximate.merge.OverlapRatio(), write_reduction,
      static_cast<double>(approximate.budget_high_water) /
          static_cast<double>(budget_bytes),
      static_cast<unsigned long long>(approximate.spill_digest),
      static_cast<unsigned long long>(approximate.output_digest),
      replay_match ? "true" : "false");
  std::fclose(f);
  std::printf("extsort snapshot -> %s\n", path.c_str());

  if (!replay_match) {
    std::fprintf(stderr, "extsort: digest MISMATCH across I/O thread "
                 "counts — determinism contract broken\n");
    return 1;
  }
  if (!overlap_ok) return 1;
  std::printf("extsort: PASS — deterministic digests, overlap %.4f > 1.0, "
              "budget high water %zu/%zu\n",
              overlap, approximate.budget_high_water, budget_bytes);
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
