// External-sort extension (Section 4.1's disk scenario): approx-refine in
// the run-formation phase of an external merge sort. Disk traffic is
// identical between configurations; the in-memory write cost drops by the
// approx-refine write reduction, scaled by how much of the total the
// in-memory phase represents.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "extsort/disk_model.h"
#include "extsort/external_sort.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 400000);
  bench::PrintRunHeader(
      "Extension: external merge sort with approx-refine run formation",
      env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);
  const auto input =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed);

  TablePrinter table("External sort: precise vs approx-refine run formation");
  table.SetHeader({"run_size", "runs", "passes", "disk_ms",
                   "mem_writes_precise_ms", "mem_writes_approx_ms",
                   "mem_write_reduction", "verified"});
  for (const size_t budget : {env.n / 16, env.n / 8, env.n / 4}) {
    extsort::ExternalSortOptions options;
    options.memory_budget_elements = budget;
    options.algorithm = sort::AlgorithmId{sort::SortKind::kLsdRadix, 3};
    options.t = 0.055;

    auto run = [&](bool use_approx) {
      options.use_approx_refine = use_approx;
      extsort::SimulatedDisk disk;
      const int input_file = disk.CreateFile();
      disk.Append(input_file, input);
      disk.ResetStats();
      return extsort::ExternalSort(engine, disk, input_file, options,
                                   nullptr);
    };
    const auto precise = bench::RequireOk(run(false), "extsort precise");
    const auto approximate = bench::RequireOk(run(true), "extsort approx");
    const double reduction = 1.0 - approximate.memory_write_cost /
                                       precise.memory_write_cost;
    table.AddRow(
        {TablePrinter::FmtInt(static_cast<long long>(budget)),
         TablePrinter::FmtInt(static_cast<long long>(
             approximate.initial_runs)),
         TablePrinter::FmtInt(static_cast<long long>(
             approximate.merge_passes)),
         TablePrinter::Fmt(approximate.disk.TotalTimeUs() / 1000.0, 1),
         TablePrinter::Fmt(precise.memory_write_cost / 1e6, 1),
         TablePrinter::Fmt(approximate.memory_write_cost / 1e6, 1),
         TablePrinter::FmtPercent(reduction, 1),
         approximate.verified && precise.verified ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nThe in-memory write reduction matches the in-memory approx-refine "
      "gain (~8-9%% for 3-bit LSD) regardless of run size, because every "
      "run sort benefits identically; disk traffic is unchanged.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
