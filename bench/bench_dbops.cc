// Database-operator extension (the paper's future-work direction): how the
// approx-refine sorting gain propagates into sort-based GROUP BY and
// sort-merge join, end to end and exactly.
#include <cstdio>

#include "bench/bench_lib.h"
#include "common/table_printer.h"
#include "dbops/aggregate.h"
#include "dbops/join.h"

namespace approxmem {
namespace {

int Main(int argc, char** argv) {
  const bench::BenchEnv env = bench::ParseBenchEnv(argc, argv, 200000);
  bench::PrintRunHeader(
      "Extension: GROUP BY and sort-merge join over approx-refine", env);
  core::ApproxSortEngine engine = bench::MakeEngine(env);

  TablePrinter group_table("GROUP BY: sort write reduction by algorithm");
  group_table.SetHeader({"algorithm", "groups", "sort_write_reduction",
                         "verified"});
  const auto group_keys =
      core::MakeKeys(core::WorkloadKind::kSkewed, env.n, env.seed);
  const auto values =
      core::MakeKeys(core::WorkloadKind::kUniform, env.n, env.seed + 1);
  for (const auto& algorithm :
       {sort::AlgorithmId{sort::SortKind::kLsdRadix, 3},
        sort::AlgorithmId{sort::SortKind::kMsdRadix, 6},
        sort::AlgorithmId{sort::SortKind::kQuicksort, 0}}) {
    dbops::GroupByOptions options;
    options.algorithm = algorithm;
    const auto result = bench::RequireOk(
        dbops::GroupByAggregate(engine, group_keys, values, options),
        "dbops group-by");
    group_table.AddRow(
        {algorithm.Name(),
         TablePrinter::FmtInt(static_cast<long long>(result.groups.size())),
         TablePrinter::FmtPercent(result.sort_write_reduction, 1),
         result.verified ? "yes" : "NO"});
  }
  group_table.Print();

  TablePrinter join_table("Sort-merge join: per-side sort write reduction");
  join_table.SetHeader({"algorithm", "output_pairs", "left_WR", "right_WR",
                        "verified"});
  const auto left =
      core::MakeKeys(core::WorkloadKind::kSkewed, env.n / 2, env.seed + 2);
  const auto right =
      core::MakeKeys(core::WorkloadKind::kSkewed, env.n / 2, env.seed + 3);
  for (const auto& algorithm :
       {sort::AlgorithmId{sort::SortKind::kLsdRadix, 3},
        sort::AlgorithmId{sort::SortKind::kMsdRadix, 6}}) {
    dbops::JoinOptions options;
    options.algorithm = algorithm;
    options.max_output_pairs = 50000000;
    const auto result = bench::RequireOk(
        dbops::SortMergeJoin(engine, left, right, options), "dbops join");
    join_table.AddRow(
        {algorithm.Name(),
         TablePrinter::FmtInt(static_cast<long long>(result.pairs.size())),
         TablePrinter::FmtPercent(result.left_sort_write_reduction, 1),
         TablePrinter::FmtPercent(result.right_sort_write_reduction, 1),
         result.verified ? "yes" : "NO"});
  }
  join_table.Print();
  std::printf(
      "\nBoth operators inherit the sort's write reduction unchanged: the "
      "post-sort scan is read-dominated, so the approximate memory's gain "
      "survives to the operator level while results stay exact.\n");
  return 0;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
