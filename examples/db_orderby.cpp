// Database scenario: ORDER BY over a table, the workload the paper's
// introduction motivates.
//
//   SELECT order_id, amount_cents FROM orders ORDER BY amount_cents;
//
// Rows live in precise memory (an imprecise bank account would be a
// disaster); only the sort-key column is staged through approximate memory
// by the approx-refine mechanism. The sorted record IDs then drive the
// (precise) result materialization, so the query output is exact while the
// sort saved write latency.
//
//   $ ./build/examples/db_orderby [--rows=500000] [--t=0.055]
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "core/engine.h"

namespace {

struct OrderRow {
  uint32_t order_id;
  uint32_t amount_cents;  // The ORDER BY key.
  uint32_t customer_id;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace approxmem;

  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const size_t rows = static_cast<size_t>(flags->GetInt("rows", 500000));
  const double t = flags->GetDouble("t", 0.055);

  // Build the "orders" table.
  Rng rng(2026);
  std::vector<OrderRow> table(rows);
  std::vector<uint32_t> key_column(rows);
  for (size_t i = 0; i < rows; ++i) {
    table[i].order_id = static_cast<uint32_t>(1000000 + i);
    table[i].amount_cents = static_cast<uint32_t>(rng.UniformInt(100000000));
    table[i].customer_id = static_cast<uint32_t>(rng.UniformInt(100000));
    key_column[i] = table[i].amount_cents;
  }

  // Sort the key column with approx-refine; record IDs come back as the
  // permutation to apply to the table.
  core::ApproxSortEngine engine({});
  std::vector<uint32_t> sorted_keys;
  std::vector<uint32_t> permutation;
  const auto outcome = engine.SortApproxRefine(
      key_column, sort::AlgorithmId{sort::SortKind::kMsdRadix, 6}, t,
      &sorted_keys, &permutation);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }

  // Materialize the query result from precise memory and re-verify against
  // the table itself (not just the sorted key column).
  bool exact = outcome->refine.verified();
  uint64_t checksum = 0;
  uint32_t previous = 0;
  for (size_t i = 0; i < rows; ++i) {
    const OrderRow& row = table[permutation[i]];
    if (row.amount_cents != sorted_keys[i] || row.amount_cents < previous) {
      exact = false;
    }
    previous = row.amount_cents;
    checksum += row.order_id;
  }

  std::printf("ORDER BY over %zu rows (T=%.3f, 6-bit MSD radix)\n", rows, t);
  std::printf("result exact               : %s\n", exact ? "yes" : "NO");
  std::printf("cheapest order             : id=%u amount=%u.%02u\n",
              table[permutation[0]].order_id, sorted_keys[0] / 100,
              sorted_keys[0] % 100);
  std::printf("most expensive order       : id=%u amount=%u.%02u\n",
              table[permutation[rows - 1]].order_id,
              sorted_keys[rows - 1] / 100, sorted_keys[rows - 1] % 100);
  std::printf("result checksum            : %" PRIu64 "\n", checksum);
  std::printf("write latency saved        : %.2f%% vs precise-only sort\n",
              outcome->write_reduction * 100.0);
  std::printf("elements repaired in refine: %zu (%.3f%% of rows)\n",
              outcome->refine.rem_estimate,
              100.0 * static_cast<double>(outcome->refine.rem_estimate) /
                  static_cast<double>(rows));
  return exact ? 0 : 1;
}
