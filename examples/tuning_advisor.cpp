// Tuning advisor: pick the guard-band width T and decide approx-refine vs
// precise-only for a given workload, the decision procedure Section 4.3
// sketches ("switch between the two approaches accordingly").
//
// For each candidate T the advisor combines the calibrated p(t) with a
// cheap pilot run (a small sample sorted approximately to estimate Rem~/n)
// and evaluates Equation 4; it then validates the chosen point with a full
// measured run.
//
//   $ ./build/examples/tuning_advisor [--n=400000] [--algo=lsd3]
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/engine.h"
#include "core/workload.h"
#include "refine/cost_model.h"

namespace {

approxmem::sort::AlgorithmId ParseAlgorithm(const std::string& name) {
  using approxmem::sort::AlgorithmId;
  using approxmem::sort::SortKind;
  if (name == "quicksort") return {SortKind::kQuicksort, 0};
  if (name == "mergesort") return {SortKind::kMergesort, 0};
  const int bits = name.back() - '0';
  if (name.rfind("lsd", 0) == 0) return {SortKind::kLsdRadix, bits};
  if (name.rfind("msd", 0) == 0) return {SortKind::kMsdRadix, bits};
  std::fprintf(stderr, "unknown --algo=%s (use quicksort|mergesort|lsd3..6|"
                       "msd3..6)\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace approxmem;

  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const size_t n = static_cast<size_t>(flags->GetInt("n", 400000));
  const sort::AlgorithmId algorithm =
      ParseAlgorithm(flags->GetString("algo", "lsd3"));
  const size_t pilot_n = static_cast<size_t>(
      flags->GetInt("pilot_n", static_cast<int64_t>(n / 20 + 1000)));

  core::ApproxSortEngine engine({});
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 11);
  const auto pilot =
      std::vector<uint32_t>(keys.begin(), keys.begin() + pilot_n);

  std::printf("Tuning %s for n=%zu (pilot runs at n=%zu)\n",
              algorithm.Name().c_str(), n, pilot_n);
  std::printf("%-8s %-8s %-10s %-12s %s\n", "T", "p(t)", "pilot_Rem", "Eq.4_WR",
              "decision");

  double best_wr = 0.0;
  double best_t = 0.0;
  for (double t = 0.03; t <= 0.095; t += 0.005) {
    const double p = engine.PvRatio(t);
    // Pilot: approximate-only sort of a sample to estimate Rem~/n.
    const auto pilot_result = engine.SortApproxOnly(pilot, algorithm, t);
    if (!pilot_result.ok()) {
      std::fprintf(stderr, "%s\n", pilot_result.status().ToString().c_str());
      return 1;
    }
    const double rem_fraction = pilot_result->sortedness.rem_ratio;
    const size_t projected_rem =
        static_cast<size_t>(rem_fraction * static_cast<double>(n));
    const double wr =
        refine::PredictWriteReduction(algorithm, n, p, projected_rem);
    std::printf("%-8.3f %-8.3f %-10.4f %-+12.4f %s\n", t, p, rem_fraction, wr,
                wr > 0 ? "approx-refine" : "precise-only");
    if (wr > best_wr) {
      best_wr = wr;
      best_t = t;
    }
  }

  if (best_wr <= 0.0) {
    std::printf("\nAdvice: stay on precise memory; approx-refine never wins "
                "for %s at this size.\n", algorithm.Name().c_str());
    return 0;
  }
  std::printf("\nAdvice: T = %.3f (predicted %.2f%% write reduction). "
              "Validating with a full run...\n", best_t, best_wr * 100.0);
  const auto outcome = engine.SortApproxRefine(keys, algorithm, best_t);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("Measured: %.2f%% write reduction, output verified %s.\n",
              outcome->write_reduction * 100.0,
              outcome->refine.verified() ? "exactly sorted" : "UNSORTED");
  return outcome->refine.verified() ? 0 : 1;
}
