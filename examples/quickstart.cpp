// Quickstart: sort one million <key, record-id> pairs with the
// approx-refine mechanism and inspect the cost ledger.
//
//   $ ./build/examples/quickstart [--n=1000000] [--t=0.055] [--seed=7]
//
// The engine simulates a hybrid memory (Section 2's MLC PCM model): the
// keys are copied into approximate memory, sorted there (cheap, slightly
// wrong), and repaired in precise memory (Listing 1/2's refine stage). The
// output is exactly sorted; the win is the reduced total write latency.
#include <cstdio>

#include "common/flags.h"
#include "core/engine.h"
#include "core/workload.h"

int main(int argc, char** argv) {
  using namespace approxmem;

  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const size_t n = static_cast<size_t>(flags->GetInt("n", 1000000));
  const double t = flags->GetDouble("t", 0.055);
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 7));

  // 1. An engine owns the simulated hybrid memory.
  core::EngineOptions options;
  options.seed = seed;
  core::ApproxSortEngine engine(options);

  // 2. A workload: uniformly random 32-bit keys (the paper's input).
  const std::vector<uint32_t> keys =
      core::MakeKeys(core::WorkloadKind::kUniform, n, seed);

  // 3. Sort with approx-refine; 3-bit LSD radix is the paper's best case.
  const sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};
  std::vector<uint32_t> sorted_keys;
  std::vector<uint32_t> sorted_ids;
  const auto outcome =
      engine.SortApproxRefine(keys, algorithm, t, &sorted_keys, &sorted_ids);
  if (!outcome.ok()) {
    std::fprintf(stderr, "sort failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  // 4. The result is exactly sorted — the refine stage guarantees it.
  std::printf("n=%zu  T=%.3f  algorithm=%s\n", n, t,
              algorithm.Name().c_str());
  std::printf("verified exactly sorted: %s\n",
              outcome->refine.verified() ? "yes" : "NO (bug!)");
  std::printf("first keys: %u %u %u ... last: %u\n", sorted_keys[0],
              sorted_keys[1], sorted_keys[2], sorted_keys.back());

  // 5. The cost ledger (total memory write latency, Section 4.3).
  const auto& report = outcome->refine;
  std::printf("\napprox stage write latency : %10.3f ms\n",
              report.ApproxStageWriteCost() / 1e6);
  std::printf("refine stage write latency : %10.3f ms\n",
              report.RefineStageWriteCost() / 1e6);
  std::printf("precise-only baseline      : %10.3f ms\n",
              outcome->baseline.TotalWriteCost() / 1e6);
  std::printf("write reduction            : %10.2f %%  (predicted %.2f %%)\n",
              outcome->write_reduction * 100.0,
              outcome->predicted_write_reduction * 100.0);
  std::printf("Rem~ (elements refined)    : %10zu  (%.2f%% of n)\n",
              report.rem_estimate,
              100.0 * static_cast<double>(report.rem_estimate) /
                  static_cast<double>(n));
  return 0;
}
