// Energy scenario (Appendix A): a battery-powered device with approximate
// spintronic memory compares the four published operating points for an
// exact sorting job and picks the one that minimizes total write energy.
//
//   $ ./build/examples/energy_saver [--n=300000]
#include <cstdio>

#include "approx/spintronic.h"
#include "common/flags.h"
#include "core/engine.h"
#include "core/workload.h"

int main(int argc, char** argv) {
  using namespace approxmem;

  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const size_t n = static_cast<size_t>(flags->GetInt("n", 300000));

  core::EngineOptions options;
  options.backend = std::string(approx::kSpintronicBackendName);
  core::ApproxSortEngine engine(options);
  const auto keys = core::MakeKeys(core::WorkloadKind::kUniform, n, 13);
  const sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};

  std::printf("Exact sort of %zu keys on spintronic memory (%s)\n", n,
              algorithm.Name().c_str());
  std::printf("%-14s %-14s %-14s %-12s %s\n", "operating_pt", "approx_energy",
              "refine_energy", "saving", "verified");

  double best_saving = 0.0;
  approx::SpintronicConfig best_config;
  bool have_best = false;
  for (const auto& config : approx::PaperSpintronicConfigs()) {
    const auto outcome =
        engine.SortApproxRefine(keys, algorithm, config.bit_error_prob);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s %-14.0f %-14.0f %-+11.2f%% %s\n",
                approx::SpintronicLabel(config).c_str(),
                outcome->refine.ApproxStageWriteCost(),
                outcome->refine.RefineStageWriteCost(),
                outcome->write_reduction * 100.0,
                outcome->refine.verified() ? "yes" : "NO");
    if (outcome->write_reduction > best_saving && outcome->refine.verified()) {
      best_saving = outcome->write_reduction;
      best_config = config;
      have_best = true;
    }
  }

  if (!have_best) {
    std::printf("\nNo operating point beats precise memory for this job; "
                "run precisely.\n");
    return 0;
  }
  std::printf("\nPick %s: %.2f%% of the write energy saved with an exactly "
              "sorted result.\n",
              approx::SpintronicLabel(best_config).c_str(),
              best_saving * 100.0);
  return 0;
}
