// Analytics scenario: a warehouse report combining the two database
// operators built on approx-refine sorting —
//
//   SELECT s.region, COUNT(*), SUM(s.amount), MIN(s.amount), MAX(s.amount)
//   FROM sales s JOIN products p ON s.product_id = p.product_id
//   WHERE p.category = 42
//   GROUP BY s.region ORDER BY s.region;
//
// The join and the aggregation each sort through approximate memory and
// repair the order in precise memory, so every reported number is exact.
//
//   $ ./build/examples/warehouse_report [--sales=200000] [--products=20000]
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "core/engine.h"
#include "dbops/aggregate.h"
#include "dbops/join.h"

int main(int argc, char** argv) {
  using namespace approxmem;

  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const size_t n_sales = static_cast<size_t>(flags->GetInt("sales", 200000));
  const size_t n_products =
      static_cast<size_t>(flags->GetInt("products", 20000));

  // Build the tables.
  Rng rng(99);
  std::vector<uint32_t> sale_product(n_sales);
  std::vector<uint32_t> sale_region(n_sales);
  std::vector<uint32_t> sale_amount(n_sales);
  for (size_t i = 0; i < n_sales; ++i) {
    sale_product[i] = static_cast<uint32_t>(rng.UniformInt(n_products));
    sale_region[i] = static_cast<uint32_t>(rng.UniformInt(12));
    sale_amount[i] = static_cast<uint32_t>(rng.UniformInt(100000));
  }
  std::vector<uint32_t> product_id(n_products);
  std::vector<uint32_t> product_category(n_products);
  for (size_t i = 0; i < n_products; ++i) {
    product_id[i] = static_cast<uint32_t>(i);
    product_category[i] = static_cast<uint32_t>(rng.UniformInt(64));
  }

  core::ApproxSortEngine engine({});

  // WHERE p.category = 42: filter the product side first (precise scan).
  std::vector<uint32_t> wanted_ids;
  for (size_t i = 0; i < n_products; ++i) {
    if (product_category[i] == 42) wanted_ids.push_back(product_id[i]);
  }

  // JOIN sales.product_id = wanted products, via approx-refine sort-merge.
  const auto join =
      dbops::SortMergeJoin(engine, sale_product, wanted_ids, {});
  if (!join.ok() || !join->verified) {
    std::fprintf(stderr, "join failed\n");
    return 1;
  }

  // GROUP BY region over the joined sales rows.
  std::vector<uint32_t> regions;
  std::vector<uint32_t> amounts;
  regions.reserve(join->pairs.size());
  for (const dbops::JoinPair& pair : join->pairs) {
    regions.push_back(sale_region[pair.left_row]);
    amounts.push_back(sale_amount[pair.left_row]);
  }
  const auto report = dbops::GroupByAggregate(engine, regions, amounts, {});
  if (!report.ok() || !report->verified) {
    std::fprintf(stderr, "aggregation failed\n");
    return 1;
  }

  std::printf("Category-42 sales report (%zu sales x %zu products, %zu "
              "matching rows)\n\n", n_sales, n_products, join->pairs.size());
  std::printf("%-8s %-10s %-14s %-10s %-10s\n", "region", "orders", "revenue",
              "min", "max");
  for (const dbops::GroupRow& row : report->groups) {
    std::printf("%-8u %-10" PRIu64 " %-14" PRIu64 " %-10u %-10u\n",
                row.group_key, row.count, row.sum, row.min, row.max);
  }
  std::printf("\njoin sorts saved %.1f%% / %.1f%% of write latency; "
              "group-by sort saved %.1f%% — all results exact.\n",
              join->left_sort_write_reduction * 100.0,
              join->right_sort_write_reduction * 100.0,
              report->sort_write_reduction * 100.0);
  return 0;
}
