// approxmem_cli — run the simulator's main experiments from the command
// line without writing code.
//
//   approxmem_cli --cmd=calibrate [--save=FILE]
//   approxmem_cli --cmd=study   --algo=quicksort --t=0.055 --n=100000
//   approxmem_cli --cmd=sort    --algo=lsd3 --t=0.055 --n=100000
//   approxmem_cli --cmd=sort    --algo=lsd3 --backend=spintronic
//   approxmem_cli --cmd=sweep   --algo=msd3 --n=100000
//   approxmem_cli --cmd=recommend --algo=lsd3 --n=16000000 --t=0.055
//                 --rem=80000
//
// Common flags: --n, --t, --seed, --backend=<registered backend name>,
// --workload=uniform|skewed|nearly_sorted|reversed|all_equal, --exact
// (full Monte-Carlo write path). --t is interpreted by the selected
// backend (target-range half-width on MLC PCM, per-bit write-error
// probability on spintronic) and defaults to the backend's sweet spot.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "approx/memory_backend.h"

#include "common/flags.h"
#include "common/thread_pool.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "core/resilience.h"
#include "core/workload.h"
#include "extsort/async_device.h"
#include "extsort/external_sort.h"
#include "refine/cost_model.h"
#include "service/sort_service.h"
#include "testing/differential_oracle.h"
#include "testing/fault_injection.h"
#include "testing/property_runner.h"

namespace approxmem {
namespace {

constexpr char kUsage[] =
    "usage: approxmem_cli --cmd=calibrate|study|sort|refine|sweep|recommend|"
    "resilient|fuzz|serve|extsort\n"
    "  calibrate [--save=FILE]         cell-model table (avg #P, p(t), err)\n"
    "  study     --algo=A --t=K        Section 3: sort in approx memory\n"
    "  sort      --algo=A --t=K        Sections 4-5: approx-refine to an\n"
    "            exactly sorted, verified output + WR (alias: refine)\n"
    "  sweep     --algo=A              WR across the T grid\n"
    "  recommend --algo=A --t=K --rem=R  Eq. 4 decision for size --n\n"
    "  resilient --algo=A --t=K        approx-refine behind the verified-\n"
    "            retry ladder (core/resilience.h): [--inject=0] fault storm,\n"
    "            [--monitor=1] canary quarantine, [--retries=1]\n"
    "            [--escalations=2] [--escalation_factor=0.5]\n"
    "            [--min_t=<backend floor>] [--log=0]; exits 1 if the final\n"
    "            output is unverified\n"
    "  fuzz      [--seconds=60] [--cases=0] [--threads=1] [--n_max=512]\n"
    "            [--inject=1] [--resilient=0]  randomized differential-\n"
    "            oracle runs; --resilient=1 drives SortResilient with\n"
    "            monitoring on instead (see TESTING.md; prints a minimized\n"
    "            repro and exits 1 on the first invariant violation)\n"
    "  serve     [--shards=4] [--threads=0] [--tenants=3] [--bursts=6]\n"
    "            [--burst_jobs=8] [--n_max=512] [--queue=64] [--quota=4]\n"
    "            [--inject=0]  scripted request-trace driver for the\n"
    "            multi-tenant sort service (service/sort_service.h): runs\n"
    "            a deterministic bursty trace over up to three tenants on\n"
    "            different backends and prints per-tenant ledgers,\n"
    "            admission stats, virtual-time latency percentiles, and\n"
    "            per-shard wear/quarantine; [--extsort_frac=0] makes that\n"
    "            fraction of jobs out-of-core (core/job_plan.h plans under\n"
    "            per-tenant MemoryBudget leases), [--cost_quota=0] caps\n"
    "            each tenant's Eq. 2 write cost per wear epoch (simulated\n"
    "            ns; over-quota jobs shed honestly), [--replay_check=0]\n"
    "            re-runs the trace at threads=1 and exits 1 unless every\n"
    "            per-tenant ledger digest matches; [--endurance=0] models\n"
    "            device lifetime (bank budgets, wear-error escalation,\n"
    "            retirement; approx/endurance.h) with\n"
    "            [--age_multiplier=1] [--bank_budget_pv=4e6] and adds a\n"
    "            per-shard wear-epoch/retirement table\n"
    "  extsort   [--budget_mb=8] [--threads=2] [--precise] [--compare=0]\n"
    "            [--replay_check=0] [--block_kb=4] [--bandwidth_mb=400]\n"
    "            [--latency_us=100] [--queue_depth=4] [--run_elements=0]\n"
    "            [--fan_in=0] [--verify=1] [--payloads=0]  out-of-core sort\n"
    "            of --n keys on a virtual block device\n"
    "            (extsort/async_device.h) under a strict --budget_mb memory\n"
    "            budget: double-buffered approx-refine run formation\n"
    "            overlapping prefetch/sort/flush, then loser-tree merge\n"
    "            passes; prints overlap ratios, spill accounting, and\n"
    "            digests. --precise sorts runs in precise memory instead;\n"
    "            --compare runs both and prints the Eq. 2 write reduction\n"
    "            at scale; --payloads spills <key,rowid> records and\n"
    "            verifies the output as a permutation certificate;\n"
    "            --replay_check re-runs at threads=1 and exits 1 unless\n"
    "            the spill and output digests are byte-identical;\n"
    "            --threads counts I/O workers (<=0 = hardware)\n"
    "common: --n=N --seed=S --backend=mlc-pcm|mlc-pcm-banked|spintronic|\n"
    "        dram-precise (any registered backend; --t is the backend's\n"
    "        knob — half-width T on PCM, per-bit error prob on spintronic;\n"
    "        default: the backend's sweet spot)\n"
    "        --workload=uniform|skewed|nearly_sorted|reversed|all_equal\n"
    "        --exact --sort_threads=K (intra-sort workers for the striped\n"
    "        radix passes; 1 = serial, <=0 = hardware; results identical\n"
    "        at every K) --lsd_sqrt_arena (Radsort-style O(sqrt n) LSD\n"
    "        scratch)\n"
    "algorithms: quicksort mergesort lsd3..lsd6 msd3..msd6 hlsd3..6 "
    "hmsd3..6\n";

// Knob values span PCM half-widths (~0.05) and spintronic bit-error
// probabilities (1e-7..1e-4); %.4g renders both readably.
std::string FmtKnob(double knob) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", knob);
  return buffer;
}

StatusOr<sort::AlgorithmId> ParseAlgorithm(const std::string& name) {
  using sort::AlgorithmId;
  using sort::SortKind;
  if (name == "quicksort") return AlgorithmId{SortKind::kQuicksort, 0};
  if (name == "mergesort") return AlgorithmId{SortKind::kMergesort, 0};
  if (name.size() >= 4) {
    const int bits = name.back() - '0';
    if (bits >= 1 && bits <= 9) {
      if (name.rfind("lsd", 0) == 0) return AlgorithmId{SortKind::kLsdRadix, bits};
      if (name.rfind("msd", 0) == 0) return AlgorithmId{SortKind::kMsdRadix, bits};
      if (name.rfind("hlsd", 0) == 0) {
        return AlgorithmId{SortKind::kLsdHistogram, bits};
      }
      if (name.rfind("hmsd", 0) == 0) {
        return AlgorithmId{SortKind::kMsdHistogram, bits};
      }
    }
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

int Calibrate(core::ApproxSortEngine& engine, const Flags& flags) {
  TablePrinter table("Cell model calibration");
  table.SetHeader({"T", "avg_#P", "p(t)", "cell_error", "word_error"});
  for (double t = 0.025; t <= 0.1201; t += 0.005) {
    const mlc::CellCalibration& calib = engine.memory().calibration().ForT(t);
    table.AddRow({TablePrinter::Fmt(t, 3),
                  TablePrinter::Fmt(calib.AvgPv(), 3),
                  TablePrinter::Fmt(engine.PvRatio(t), 3),
                  TablePrinter::FmtPercent(calib.CellErrorRate(), 4),
                  TablePrinter::FmtPercent(calib.WordErrorRate(16), 4)});
  }
  table.Print();
  const std::string save = flags.GetString("save", "");
  if (!save.empty()) {
    if (!engine.memory().calibration().SaveToFile(save)) {
      std::fprintf(stderr, "failed to save calibration to %s\n",
                   save.c_str());
      return 1;
    }
    std::printf("calibration saved to %s\n", save.c_str());
  }
  return 0;
}

int Study(core::ApproxSortEngine& engine, const sort::AlgorithmId& algorithm,
          const std::vector<uint32_t>& keys, double t) {
  const auto result = engine.SortApproxOnly(keys, algorithm, t);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s on %zu keys at knob=%s (approximate memory only):\n",
              algorithm.Name().c_str(), keys.size(), FmtKnob(t).c_str());
  std::printf("  Rem ratio        %.4f%%\n",
              result->sortedness.rem_ratio * 100.0);
  std::printf("  error rate       %.4f%%\n",
              result->sortedness.error_rate * 100.0);
  std::printf("  inversion ratio  %.4f%%\n",
              result->sortedness.inversion_ratio * 100.0);
  std::printf("  write reduction  %.2f%% (Eq. 1)\n",
              result->write_reduction * 100.0);
  return 0;
}

int Refine(core::ApproxSortEngine& engine, const sort::AlgorithmId& algorithm,
           const std::vector<uint32_t>& keys, double t) {
  const auto outcome = engine.SortApproxRefine(keys, algorithm, t);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("%s on %zu keys at knob=%s (approx-refine):\n",
              algorithm.Name().c_str(), keys.size(), FmtKnob(t).c_str());
  std::printf("  verified sorted   %s\n",
              outcome->refine.verified() ? "yes" : "NO");
  std::printf("  Rem~              %zu\n", outcome->refine.rem_estimate);
  std::printf("  approx stage      %.3f ms write latency\n",
              outcome->refine.ApproxStageWriteCost() / 1e6);
  std::printf("  refine stage      %.3f ms write latency\n",
              outcome->refine.RefineStageWriteCost() / 1e6);
  std::printf("  precise baseline  %.3f ms write latency\n",
              outcome->baseline.TotalWriteCost() / 1e6);
  std::printf("  write reduction   %.2f%% measured, %.2f%% predicted\n",
              outcome->write_reduction * 100.0,
              outcome->predicted_write_reduction * 100.0);
  if (!outcome->refine.verified()) {
    std::fprintf(stderr, "refine: UNVERIFIED output — %s\n",
                 outcome->refine.verification.ToString().c_str());
    return 1;
  }
  return 0;
}

int Resilient(const Flags& flags, const sort::AlgorithmId& algorithm,
              const std::vector<uint32_t>& keys, double t,
              core::EngineOptions engine_options) {
  engine_options.health.enabled = flags.GetBool("monitor", true);

  std::unique_ptr<testing::FaultInjector> injector;
  if (flags.GetBool("inject", false)) {
    injector = std::make_unique<testing::FaultInjector>(
        testing::FaultPlan::ApproxStorm(engine_options.seed));
    engine_options.fault_hook = injector.get();
  }
  core::ApproxSortEngine engine(engine_options);

  core::ResilienceOptions resilience;
  resilience.max_refine_retries = static_cast<int>(flags.GetInt("retries", 1));
  resilience.max_escalations = static_cast<int>(flags.GetInt("escalations", 2));
  resilience.escalation_factor = flags.GetDouble("escalation_factor", 0.5);
  // NaN lets the ladder bottom out at the backend's own precision floor.
  resilience.min_t =
      flags.GetDouble("min_t", std::numeric_limits<double>::quiet_NaN());
  resilience.log_diagnostics = flags.GetBool("log", false);

  const auto report = core::SortResilient(engine, keys, algorithm, t,
                                          resilience);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s on %zu keys at knob=%s (resilient approx-refine):\n",
              algorithm.Name().c_str(), keys.size(), FmtKnob(t).c_str());
  TablePrinter table("attempt ladder");
  table.SetHeader({"#", "policy", "T", "status", "verified", "Rem~",
                   "write_cost"});
  for (size_t i = 0; i < report->attempts.size(); ++i) {
    const core::AttemptRecord& a = report->attempts[i];
    table.AddRow({TablePrinter::FmtInt(static_cast<long long>(i + 1)),
                  std::string(core::AttemptPolicyName(a.policy)),
                  FmtKnob(a.t),
                  a.status.ok() ? "ok" : a.status.ToString(),
                  a.verified ? "yes" : (a.status.ok()
                                            ? a.verification.ToString()
                                            : "-"),
                  TablePrinter::FmtInt(
                      static_cast<long long>(a.rem_estimate)),
                  TablePrinter::Fmt(a.cost.write_cost / 1e6, 3)});
  }
  table.Print();
  std::printf("  final policy      %s (knob=%s)\n",
              core::AttemptPolicyName(report->final_policy).data(),
              FmtKnob(report->final_t).c_str());
  std::printf("  cumulative cost   %.3f ms write latency "
              "(canaries %.3f ms)\n",
              report->cumulative.write_cost / 1e6,
              report->canary_costs.write_cost / 1e6);
  std::printf("  precise baseline  %.3f ms write latency\n",
              report->baseline.TotalWriteCost() / 1e6);
  std::printf("  write reduction   %.2f%% (cumulative, Eq. 2-honest)\n",
              report->write_reduction * 100.0);
  if (engine_options.health.enabled) {
    const approx::HealthStats& health = report->health;
    std::printf("  health monitor    %llu regions probed, %llu quarantined, "
                "%llu alloc retries, %llu/%llu canary errors\n",
                static_cast<unsigned long long>(health.regions_probed),
                static_cast<unsigned long long>(health.regions_quarantined),
                static_cast<unsigned long long>(health.allocation_retries),
                static_cast<unsigned long long>(health.canary_errors),
                static_cast<unsigned long long>(health.canary_writes));
  }
  if (!report->verified) {
    std::fprintf(stderr,
                 "resilient: UNVERIFIED after %zu attempts — %s\n",
                 report->attempts.size(),
                 report->refine.verification.ToString().c_str());
    return 1;
  }
  return 0;
}

int Sweep(core::ApproxSortEngine& engine, const sort::AlgorithmId& algorithm,
          const std::vector<uint32_t>& keys) {
  TablePrinter table(algorithm.Name() + ": write reduction vs T");
  table.SetHeader({"T", "p(t)", "Rem~", "WR_measured", "WR_predicted"});
  for (double t = 0.03; t <= 0.0901; t += 0.005) {
    const auto outcome = engine.SortApproxRefine(keys, algorithm, t);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    if (!outcome->refine.verified()) {
      std::fprintf(stderr, "sweep: UNVERIFIED output at T=%.3f — %s\n", t,
                   outcome->refine.verification.ToString().c_str());
      return 1;
    }
    table.AddRow(
        {TablePrinter::Fmt(t, 3),
         TablePrinter::Fmt(engine.WriteCostRatio(t), 3),
         TablePrinter::FmtInt(
             static_cast<long long>(outcome->refine.rem_estimate)),
         TablePrinter::FmtPercent(outcome->write_reduction, 2),
         TablePrinter::FmtPercent(outcome->predicted_write_reduction, 2)});
  }
  table.Print();
  return 0;
}

int Recommend(core::ApproxSortEngine& engine,
              const sort::AlgorithmId& algorithm, size_t n, double t,
              size_t rem) {
  const double p = engine.WriteCostRatio(t);
  const double wr = refine::PredictWriteReduction(algorithm, n, p, rem);
  const bool use = refine::ShouldUseApproxRefine(algorithm, n, p, rem);
  std::printf("%s, n=%zu, knob=%s (cost ratio %.3f), expected Rem~=%zu:\n",
              algorithm.Name().c_str(), n, FmtKnob(t).c_str(), p, rem);
  std::printf("  predicted write reduction %.2f%% -> use %s\n", wr * 100.0,
              use ? "approx-refine" : "precise-only sorting");
  return 0;
}

// One fuzz case driven through SortResilient (health monitoring on): the
// ladder must end with a verified, exactly sorted output whatever the
// fault storm did, and the final keys must match a std::sort of the input.
testing::OracleReport RunResilientFuzzCase(
    const testing::OracleCase& oracle_case,
    const std::shared_ptr<mlc::CalibrationCache>& cache, uint64_t trials,
    bool inject) {
  testing::OracleReport report;
  report.oracle_case = oracle_case;
  report.digest = testing::Fnv1a64(nullptr, 0);

  const double t = testing::TFromPaperLabel(oracle_case.paper_t);
  const std::vector<uint32_t> input =
      testing::MakeInput(oracle_case.shape, oracle_case.n, oracle_case.seed);

  core::EngineOptions engine_options;
  engine_options.calibration_trials = trials;
  engine_options.seed = oracle_case.seed;
  engine_options.shared_calibration = cache;
  engine_options.health.enabled = true;
  engine_options.sort_threads = oracle_case.sort_threads;
  engine_options.lsd_sqrt_arena = oracle_case.lsd_sqrt_arena;
  std::unique_ptr<testing::FaultInjector> injector;
  if (inject) {
    injector = std::make_unique<testing::FaultInjector>(
        testing::FaultPlan::ApproxStorm(oracle_case.seed));
    engine_options.fault_hook = injector.get();
  }
  core::ApproxSortEngine engine(engine_options);

  std::vector<uint32_t> final_keys;
  std::vector<uint32_t> final_ids;
  const auto result = core::SortResilient(
      engine, input, oracle_case.algorithm, t, core::ResilienceOptions{},
      &final_keys, &final_ids);
  if (!result.ok()) {
    report.failures.push_back(
        testing::OracleFailure{"engine-status", result.status().ToString()});
    return report;
  }
  report.rem_estimate = result->refine.rem_estimate;
  report.write_reduction = result->write_reduction;
  if (!result->verified) {
    report.failures.push_back(testing::OracleFailure{
        "resilient-verified",
        "ladder exhausted unverified after " +
            std::to_string(result->attempts.size()) + " attempts: " +
            result->refine.verification.ToString()});
  }
  std::vector<uint32_t> golden = input;
  std::sort(golden.begin(), golden.end());
  if (final_keys != golden) {
    report.failures.push_back(testing::OracleFailure{
        "golden-keys", "resilient output does not match std::sort"});
  }
  report.ok = report.failures.empty();
  const uint64_t attempt_digest = result->AttemptDigest();
  report.digest =
      testing::Fnv1a64(&attempt_digest, sizeof(attempt_digest),
                       report.digest);
  if (!final_keys.empty()) {
    report.digest =
        testing::Fnv1a64(final_keys.data(),
                         final_keys.size() * sizeof(uint32_t), report.digest);
  }
  if (!final_ids.empty()) {
    report.digest =
        testing::Fnv1a64(final_ids.data(),
                         final_ids.size() * sizeof(uint32_t), report.digest);
  }
  return report;
}

// Randomized differential-oracle fuzzing, bounded by wall time and/or a
// case count. Every case draws a fresh (n, T, algorithm, shape) tuple and,
// with --inject (default on), an approx-domain fault storm; the refine
// guarantee must hold through all of it. With --resilient=1 each case runs
// through SortResilient (monitoring on) instead of the plain oracle.
// Deterministic per --seed: the verdict of case index i never depends on
// time or thread count — the time bound only decides how many indices get
// run.
int Fuzz(const Flags& flags, uint64_t seed) {
  const double seconds = flags.GetDouble("seconds", 60.0);
  const size_t max_cases = static_cast<size_t>(flags.GetInt("cases", 0));
  const bool inject = flags.GetBool("inject", true);
  const bool resilient = flags.GetBool("resilient", false);

  testing::RunnerOptions runner;
  runner.seed = seed;
  runner.threads = static_cast<int>(flags.GetInt("threads", 1));
  runner.max_n = static_cast<size_t>(flags.GetInt("n_max", 512));
  runner.shrink = true;

  // One shared calibration cache across all cases: each T calibrates once.
  const uint64_t trials =
      static_cast<uint64_t>(flags.GetInt("calibration_trials", 5000));
  auto cache = std::make_shared<mlc::CalibrationCache>(
      mlc::MlcConfig{}, trials, seed ^ 0xca11b7a7e5eedULL);

  const auto check = [&](const testing::OracleCase& oracle_case) {
    if (resilient) {
      return RunResilientFuzzCase(oracle_case, cache, trials, inject);
    }
    testing::OracleOptions oracle;
    oracle.calibration_trials = trials;
    oracle.shared_calibration = cache;
    if (inject) {
      testing::FaultPlan plan =
          testing::FaultPlan::ApproxStorm(oracle_case.seed);
      testing::FaultInjector injector(plan);
      testing::OracleOptions with_faults = oracle;
      with_faults.injector = &injector;
      return testing::RunDifferentialOracle(oracle_case, with_faults);
    }
    return testing::RunDifferentialOracle(oracle_case, oracle);
  };

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(seconds);
  const int concurrency = runner.threads <= 0 ? ThreadPool::HardwareThreads()
                                              : runner.threads;
  const size_t batch =
      concurrency == 1 ? 8 : static_cast<size_t>(concurrency) * 4;
  size_t next_index = 0;
  size_t total = 0;
  while (std::chrono::steady_clock::now() < deadline &&
         (max_cases == 0 || total < max_cases)) {
    size_t count = batch;
    if (max_cases != 0) count = std::min(count, max_cases - total);
    std::vector<testing::OracleCase> cases(count);
    for (size_t i = 0; i < count; ++i) {
      cases[i] = testing::MakeRandomCase(runner, next_index++);
    }
    const testing::RunnerResult result =
        testing::RunCases(runner, cases, check);
    total += result.cases_run;
    if (!result.ok()) {
      const testing::OracleReport& bad = *result.minimized;
      std::fprintf(stderr, "FAIL after %zu cases\n", total);
      std::fprintf(stderr, "  %s\n", bad.FailureSummary().c_str());
      std::fprintf(stderr,
                   "  repro: seed=%llu n=%zu T=%d algo=%s shape=%s "
                   "inject=%d\n",
                   static_cast<unsigned long long>(bad.oracle_case.seed),
                   bad.oracle_case.n, bad.oracle_case.paper_t,
                   bad.oracle_case.algorithm.Name().c_str(),
                   testing::ShapeName(bad.oracle_case.shape).c_str(),
                   inject ? 1 : 0);
      return 1;
    }
    std::printf("fuzz: %zu cases ok (%.1fs elapsed)\n", total,
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count());
    std::fflush(stdout);
  }
  std::printf("fuzz: PASS — %zu cases, 0 failures (seed=%llu)\n", total,
              static_cast<unsigned long long>(seed));
  return 0;
}

// Scripted request-trace driver for the multi-tenant sort service. No
// network: the trace is generated from --seed and replayed through
// SortService::Run, which is exactly how the concurrency and property
// suites drive it, so any anomaly seen here replays in a test verbatim.
int Serve(const Flags& flags, uint64_t seed) {
  service::ServiceOptions options;
  options.shards = static_cast<int>(flags.GetInt("shards", 4));
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  options.seed = seed;
  options.calibration_trials =
      static_cast<uint64_t>(flags.GetInt("calibration_trials", 20000));
  options.admission.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue", 64));
  options.admission.shard_batch_quota =
      static_cast<int>(flags.GetInt("quota", 4));
  options.admission.max_deferrals =
      static_cast<int>(flags.GetInt("max_deferrals", 3));
  const bool endurance = flags.GetBool("endurance", false);
  if (endurance) {
    options.endurance.enabled = true;
    options.endurance.age_multiplier =
        flags.GetDouble("age_multiplier", 1.0);
    options.endurance.bank_budget_pv =
        flags.GetDouble("bank_budget_pv", 4.0e6);
  }
  const bool inject = flags.GetBool("inject", false);
  if (inject) {
    options.fault_hook_factory =
        [seed](int shard) -> std::unique_ptr<approx::MemoryFaultHook> {
      return std::make_unique<testing::FaultInjector>(
          testing::FaultPlan::ApproxStorm(
              seed ^ (0x5eedULL + static_cast<uint64_t>(shard))));
    };
  }
  service::SortService service(options);

  struct Profile {
    const char* name;
    const char* backend;
  };
  static constexpr Profile kProfiles[] = {
      {"tenant-pcm", "mlc-pcm"},
      {"tenant-banked", "mlc-pcm-banked"},
      {"tenant-spin", "spintronic"},
  };
  const size_t tenant_count = std::min<size_t>(
      std::max<int64_t>(flags.GetInt("tenants", 3), 1), 3);
  const double cost_quota = flags.GetDouble("cost_quota", 0.0);
  const auto register_tenants =
      [&](service::SortService& target) -> Status {
    for (size_t i = 0; i < tenant_count; ++i) {
      service::TenantSpec tenant;
      tenant.name = kProfiles[i].name;
      tenant.backend = kProfiles[i].backend;
      tenant.seed = seed + i;
      tenant.epoch_cost_quota = cost_quota;
      const Status status = target.RegisterTenant(tenant);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  };
  std::vector<std::string> tenant_names;
  for (size_t i = 0; i < tenant_count; ++i) {
    tenant_names.push_back(kProfiles[i].name);
  }
  {
    const Status status = register_tenants(service);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  service::TraceGenOptions gen;
  gen.seed = seed;
  gen.tenants = tenant_names;
  gen.bursts = static_cast<size_t>(flags.GetInt("bursts", 6));
  gen.max_burst_jobs = static_cast<size_t>(flags.GetInt("burst_jobs", 8));
  gen.max_n = static_cast<size_t>(flags.GetInt("n_max", 512));
  gen.extsort_fraction = flags.GetDouble("extsort_frac", 0.0);
  const service::RequestTrace trace = service::MakeRandomTrace(gen);
  size_t extsort_jobs = 0;
  for (const auto& burst : trace.bursts) {
    for (const service::SortRequest& request : burst) {
      if (request.job_class == core::JobClass::kExtSort) ++extsort_jobs;
    }
  }

  std::printf("serve: %zu jobs (%zu extsort) in %zu bursts over %zu "
              "tenants, %d shards (seed=%llu%s)\n",
              trace.TotalJobs(), extsort_jobs, trace.bursts.size(),
              tenant_count, options.shards,
              static_cast<unsigned long long>(seed),
              inject ? ", fault storm on" : "");
  const auto start = std::chrono::steady_clock::now();
  const service::ServiceStats stats = service.Run(trace);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  TablePrinter tenants_table("per-tenant ledgers");
  tenants_table.SetHeader({"tenant", "done", "failed", "shed", "deferrals",
                           "write_cost", "cum_WR", "ledger_digest"});
  for (const std::string& name : tenant_names) {
    const service::TenantLedger ledger = service.tenant_ledger(name);
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(ledger.Digest()));
    tenants_table.AddRow(
        {name,
         TablePrinter::FmtInt(static_cast<long long>(ledger.jobs_completed)),
         TablePrinter::FmtInt(static_cast<long long>(ledger.jobs_failed)),
         TablePrinter::FmtInt(static_cast<long long>(ledger.jobs_shed)),
         TablePrinter::FmtInt(
             static_cast<long long>(ledger.deferral_events)),
         TablePrinter::Fmt(ledger.cost.write_cost / 1e6, 3),
         TablePrinter::FmtPercent(ledger.CumulativeWriteReduction(), 2),
         digest});
  }
  tenants_table.Print();

  TablePrinter shards_table("per-shard substrate");
  shards_table.SetHeader({"shard", "wear_imbalance", "quarantine_events",
                          "regions_quarantined", "alloc_retries"});
  for (int s = 0; s < options.shards; ++s) {
    const service::WearPlacement* wear = service.shard_wear(s);
    const approx::HealthStats health = service.shard_health(s);
    shards_table.AddRow(
        {TablePrinter::FmtInt(s),
         wear ? TablePrinter::Fmt(wear->WearImbalance(), 3) : "-",
         TablePrinter::FmtInt(static_cast<long long>(
             wear ? wear->quarantine_events() : 0)),
         TablePrinter::FmtInt(
             static_cast<long long>(health.regions_quarantined)),
         TablePrinter::FmtInt(
             static_cast<long long>(health.allocation_retries))});
  }
  shards_table.Print();

  if (endurance) {
    TablePrinter lifetime("per-shard device lifetime");
    lifetime.SetHeader({"shard", "wear_epoch", "live_banks", "max_esc",
                        "capacity", "retirements (bank@vtime reason)"});
    for (int s = 0; s < options.shards; ++s) {
      const approx::EnduranceLedger* ledger = service.shard_endurance(s);
      std::string events;
      for (const approx::RetirementEvent& event : ledger->retirements()) {
        if (!events.empty()) events += " ";
        events += std::to_string(event.bank) + "@" +
                  std::to_string(event.virtual_time) + " " +
                  (event.reason ==
                           approx::RetirementReason::kBudgetExhausted
                       ? "budget"
                       : "canary");
      }
      if (events.empty()) events = "-";
      lifetime.AddRow(
          {TablePrinter::FmtInt(s),
           TablePrinter::FmtInt(static_cast<long long>(ledger->wear_epoch())),
           TablePrinter::FmtInt(ledger->live_banks()) + "/" +
               TablePrinter::FmtInt(ledger->total_banks()),
           TablePrinter::FmtInt(ledger->MaxLiveEscalationLevel()),
           TablePrinter::FmtPercent(ledger->CapacityFraction(), 0),
           events});
    }
    lifetime.Print();
    std::printf("  lifetime          %llu banks retired, %zu jobs shed on "
                "exhausted substrate, p99 drift x%.3f\n",
                static_cast<unsigned long long>(stats.banks_retired),
                stats.jobs_shed_exhausted, service.slo().P99DriftRatio());
  }

  std::printf("  batches           %zu (%zu shard-batches in cooldown)\n",
              stats.batches, stats.cooldown_batches);
  std::printf("  jobs              %zu submitted, %zu completed, %zu failed, "
              "%zu shed (%zu on quota)\n",
              stats.jobs_submitted, stats.jobs_completed, stats.jobs_failed,
              stats.jobs_shed, stats.jobs_shed_quota);
  std::printf("  backlog           high water %zu (capacity %zu), "
              "%zu deferral events\n",
              stats.backlog_high_water, options.admission.queue_capacity,
              stats.deferral_events);
  // Deterministic virtual-time latency: pure function of the trace and
  // cost ledgers, unlike the wall-clock line below.
  {
    std::vector<double> virtual_latencies;
    for (const service::JobRecord& record : service.jobs()) {
      if (record.state == service::JobState::kCompleted) {
        virtual_latencies.push_back(record.virtual_latency_us);
      }
    }
    std::sort(virtual_latencies.begin(), virtual_latencies.end());
    const auto percentile = [&](double p) {
      if (virtual_latencies.empty()) return 0.0;
      const size_t index = static_cast<size_t>(
          p * static_cast<double>(virtual_latencies.size() - 1));
      return virtual_latencies[index];
    };
    std::printf("  virtual latency   p50 %.1f us, p99 %.1f us "
                "(clock end %.1f us)\n",
                percentile(0.50), percentile(0.99),
                service.virtual_now_us());
  }
  std::printf("  throughput        %.1f jobs/sec (%.3fs wall)\n",
              elapsed > 0.0 ? static_cast<double>(stats.jobs_completed) /
                                  elapsed
                            : 0.0,
              elapsed);

  if (flags.GetBool("replay_check", false)) {
    // Same trace on a threads=1 service: every per-tenant ledger digest
    // (keys, costs, counts) must be byte-identical — the tentpole's
    // determinism contract, checked end to end from the CLI.
    service::ServiceOptions replay_options = options;
    replay_options.threads = 1;
    service::SortService replay(replay_options);
    const Status status = register_tenants(replay);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    replay.Run(trace);
    bool match = true;
    for (const std::string& name : tenant_names) {
      const uint64_t threaded = service.tenant_ledger(name).Digest();
      const uint64_t serial = replay.tenant_ledger(name).Digest();
      if (threaded != serial) match = false;
    }
    match = match && replay.virtual_now_us() == service.virtual_now_us();
    std::printf("  replay threads=1  per-tenant ledger digests -> %s\n",
                match ? "MATCH" : "MISMATCH");
    if (!match) {
      std::fprintf(stderr,
                   "serve: ledger digest MISMATCH between threads=%d and "
                   "threads=1\n",
                   options.threads);
      return 1;
    }
  }

  // Aged banks genuinely err more, so an endurance run may exhaust the
  // ladder late in life; only a fault-free, wear-free run must be clean.
  if (!inject && !endurance && stats.jobs_failed > 0) {
    std::fprintf(stderr, "serve: %zu jobs FAILED without fault injection\n",
                 stats.jobs_failed);
    return 1;
  }
  return 0;
}

// Out-of-core external sort on the virtual block device. One run_once
// builds a fresh engine (shared calibration cache, same seed), stages the
// input file, and sorts it under the budget; --replay_check runs the whole
// thing again at threads=1 and insists on byte-identical digests — the
// determinism contract the async overlap must not break.
int Extsort(const Flags& flags, const sort::AlgorithmId& algorithm,
            const std::vector<uint32_t>& keys, double t,
            const core::EngineOptions& engine_options) {
  extsort::AsyncDeviceConfig device_config;
  device_config.block_bytes =
      static_cast<size_t>(flags.GetInt("block_kb", 4)) * 1024;
  device_config.bandwidth_mb_per_s = flags.GetDouble("bandwidth_mb", 400.0);
  device_config.latency_us = flags.GetDouble("latency_us", 100.0);
  device_config.queue_depth =
      static_cast<int>(flags.GetInt("queue_depth", 4));
  const Status device_ok = device_config.Validate();
  if (!device_ok.ok()) {
    std::fprintf(stderr, "%s\n", device_ok.ToString().c_str());
    return 2;
  }

  extsort::ExternalSortOptions sort_options;
  sort_options.memory_budget_bytes =
      static_cast<size_t>(flags.GetInt("budget_mb", 8)) << 20;
  sort_options.algorithm = algorithm;
  sort_options.t = t;
  sort_options.use_approx_refine = !flags.GetBool("precise", false);
  sort_options.run_elements =
      static_cast<size_t>(flags.GetInt("run_elements", 0));
  sort_options.merge_fan_in = static_cast<size_t>(flags.GetInt("fan_in", 0));
  sort_options.verify = flags.GetBool("verify", true);
  sort_options.record_payloads = flags.GetBool("payloads", false);

  // One calibration cache across every engine this command builds, so the
  // replay and comparison runs see identical cell models.
  core::EngineOptions base = engine_options;
  if (base.shared_calibration == nullptr) {
    base.shared_calibration = std::make_shared<mlc::CalibrationCache>(
        base.mlc, base.calibration_trials, base.seed ^ 0xca11b7a7e5eedULL);
  }

  const auto run_once = [&](int threads,
                            const extsort::ExternalSortOptions& options)
      -> StatusOr<extsort::ExternalSortReport> {
    std::unique_ptr<ThreadPool> pool;
    if (threads != 1) pool = std::make_unique<ThreadPool>(threads);
    core::ApproxSortEngine engine(base);
    extsort::AsyncDevice device(device_config, pool.get());
    const int input = device.CreateFile();
    device.Wait(device.SubmitWrite(input, keys, 0.0));
    device.ResetClock();
    int output = -1;
    return extsort::ExternalSort(engine, device, input, options, &output);
  };

  int threads = static_cast<int>(flags.GetInt("threads", 2));
  if (threads <= 0) threads = ThreadPool::HardwareThreads();
  const auto wall_start = std::chrono::steady_clock::now();
  const auto report = run_once(threads, sort_options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const extsort::PhaseMetrics total = report->Total();
  std::printf("extsort: %zu keys, %zu MiB budget, %d I/O threads "
              "(%s, knob=%s, %s%s):\n",
              report->n, sort_options.memory_budget_bytes >> 20, threads,
              algorithm.Name().c_str(), FmtKnob(t).c_str(),
              sort_options.use_approx_refine ? "approx-refine" : "precise",
              sort_options.record_payloads ? ", <key,rowid> records" : "");
  std::printf("  initial runs      %zu x %zu elements, fan-in %zu, "
              "%zu merge pass(es)\n",
              report->initial_runs, report->run_elements,
              report->merge_fan_in, report->merge_passes);
  std::printf("  bytes spilled     %.1f MiB (device wrote %.1f MiB, "
              "read %.1f MiB)\n",
              static_cast<double>(report->bytes_spilled) / (1 << 20),
              static_cast<double>(report->device.bytes_written) / (1 << 20),
              static_cast<double>(report->device.bytes_read) / (1 << 20));
  std::printf("  run formation     overlap %.3f (io %.2fs + compute %.2fs "
              "over %.2fs makespan)\n",
              report->run_formation.OverlapRatio(),
              report->run_formation.io_busy_us / 1e6,
              report->run_formation.compute_us / 1e6,
              report->run_formation.makespan_us / 1e6);
  std::printf("  merge             overlap %.3f (io %.2fs + compute %.2fs "
              "over %.2fs makespan)\n",
              report->merge.OverlapRatio(), report->merge.io_busy_us / 1e6,
              report->merge.compute_us / 1e6, report->merge.makespan_us / 1e6);
  std::printf("  total             overlap %.3f, %.3fs wall\n",
              total.OverlapRatio(), wall_s);
  std::printf("  memory write cost %.3f ms (reads %.3f ms), Rem~ total %zu\n",
              report->memory_write_cost / 1e6, report->memory_read_cost / 1e6,
              report->total_rem);
  std::printf("  budget high water %zu / %zu bytes\n",
              report->budget_high_water, sort_options.memory_budget_bytes);
  std::printf("  spill digest      %016llx\n",
              static_cast<unsigned long long>(report->spill_digest));
  std::printf("  output digest     %016llx\n",
              static_cast<unsigned long long>(report->output_digest));
  std::printf("  verified          %s\n", report->verified ? "yes" : "NO");
  if (!report->verified) {
    std::fprintf(stderr, "extsort: output FAILED verification\n");
    return 1;
  }

  if (flags.GetBool("compare", false)) {
    extsort::ExternalSortOptions other = sort_options;
    other.use_approx_refine = !sort_options.use_approx_refine;
    const auto baseline = run_once(threads, other);
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
      return 1;
    }
    const double approx_cost = sort_options.use_approx_refine
                                   ? report->memory_write_cost
                                   : baseline->memory_write_cost;
    const double precise_cost = sort_options.use_approx_refine
                                    ? baseline->memory_write_cost
                                    : report->memory_write_cost;
    std::printf("  write reduction   %.2f%% (Eq. 2 at scale: approx-refine "
                "%.3f ms vs precise %.3f ms; identical disk traffic)\n",
                precise_cost > 0.0
                    ? (1.0 - approx_cost / precise_cost) * 100.0
                    : 0.0,
                approx_cost / 1e6, precise_cost / 1e6);
    if (!baseline->verified) {
      std::fprintf(stderr, "extsort: comparison run FAILED verification\n");
      return 1;
    }
  }

  if (flags.GetBool("replay_check", false)) {
    const auto replay = run_once(1, sort_options);
    if (!replay.ok()) {
      std::fprintf(stderr, "%s\n", replay.status().ToString().c_str());
      return 1;
    }
    const bool match = replay->spill_digest == report->spill_digest &&
                       replay->output_digest == report->output_digest;
    std::printf("  replay threads=1  spill %016llx output %016llx -> %s\n",
                static_cast<unsigned long long>(replay->spill_digest),
                static_cast<unsigned long long>(replay->output_digest),
                match ? "MATCH" : "MISMATCH");
    if (!match) {
      std::fprintf(stderr,
                   "extsort: digest MISMATCH between threads=%d and "
                   "threads=1\n",
                   threads);
      return 1;
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  StatusOr<Flags> flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n%s", flags.status().ToString().c_str(), kUsage);
    return 2;
  }
  const std::string cmd = flags->GetString("cmd", "");
  if (cmd.empty() || flags->Has("help")) {
    std::fputs(kUsage, stdout);
    return cmd.empty() ? 2 : 0;
  }

  if (cmd == "fuzz") {
    return Fuzz(*flags, static_cast<uint64_t>(flags->GetInt("seed", 42)));
  }
  if (cmd == "serve") {
    return Serve(*flags, static_cast<uint64_t>(flags->GetInt("seed", 42)));
  }

  core::EngineOptions options;
  options.backend = flags->GetString("backend", options.backend);
  if (!approx::IsRegisteredBackend(options.backend)) {
    std::string registered;
    for (const std::string& name : approx::RegisteredBackendNames()) {
      if (!registered.empty()) registered += ", ";
      registered += name;
    }
    std::fprintf(stderr, "unknown --backend=%s (registered: %s)\n%s",
                 options.backend.c_str(), registered.c_str(), kUsage);
    return 2;
  }
  options.seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  options.calibration_trials =
      static_cast<uint64_t>(flags->GetInt("calibration_trials", 200000));
  if (flags->GetBool("exact", false)) {
    options.mode = approx::SimulationMode::kExact;
  }
  options.sort_threads = static_cast<int>(flags->GetInt("sort_threads", 1));
  options.lsd_sqrt_arena = flags->GetBool("lsd_sqrt_arena", false);
  core::ApproxSortEngine engine(options);

  if (cmd == "calibrate") return Calibrate(engine, *flags);

  const auto algorithm = ParseAlgorithm(flags->GetString("algo", "lsd3"));
  if (!algorithm.ok()) {
    std::fprintf(stderr, "%s\n%s", algorithm.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const size_t n = static_cast<size_t>(flags->GetInt("n", 100000));
  // Without --t, run at the backend's sweet spot (0.055 on MLC PCM, the
  // 33%-saving operating point on spintronic, exact on dram-precise).
  const double t =
      flags->Has("t") ? flags->GetDouble("t", 0.055)
                      : engine.memory().backend().default_approx_knob();

  if (cmd == "recommend") {
    const size_t rem =
        static_cast<size_t>(flags->GetInt("rem", static_cast<int64_t>(n / 100)));
    return Recommend(engine, *algorithm, n, t, rem);
  }

  const auto workload =
      core::ParseWorkloadKind(flags->GetString("workload", "uniform"));
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 2;
  }
  const auto keys = core::MakeKeys(*workload, n, options.seed);

  if (cmd == "study") return Study(engine, *algorithm, keys, t);
  if (cmd == "refine" || cmd == "sort") {
    return Refine(engine, *algorithm, keys, t);
  }
  if (cmd == "sweep") return Sweep(engine, *algorithm, keys);
  if (cmd == "extsort") return Extsort(*flags, *algorithm, keys, t, options);
  if (cmd == "resilient") {
    return Resilient(*flags, *algorithm, keys, t, options);
  }

  std::fprintf(stderr, "unknown --cmd=%s\n%s", cmd.c_str(), kUsage);
  return 2;
}

}  // namespace
}  // namespace approxmem

int main(int argc, char** argv) { return approxmem::Main(argc, argv); }
