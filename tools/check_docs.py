#!/usr/bin/env python3
"""Verify that the docs only cite things that exist.

Usage: tools/check_docs.py [--cli build/tools/approxmem_cli] [--root .]

Scans README.md, DESIGN.md, EXPERIMENTS.md, and TESTING.md for

  * repo paths — `src/...`, `tests/...`, `tools/...`, `bench/...` tokens —
    and fails if the path is not in the tree (so a refactor that moves a
    file without updating its doc references breaks CI, not a reader), and
  * CLI flags — `--flag` tokens in approxmem_cli command lines — and fails
    if the flag is not in the CLI's --help text (the stale-flag sweep that
    used to be a manual EXPERIMENTS.md chore).

Path tokens may carry a :line suffix or glob-ish tails ("src/sort/*"); the
directory part is what must exist. Flags checked only in lines that invoke
approxmem_cli, because bench binaries share the parser but add their own
flags; bench-only flags are matched against a small allowlist harvested
from bench/bench_common.h instead.

Exit 0 when everything resolves; 1 with a per-reference report otherwise.
"""

import argparse
import os
import re
import subprocess
import sys

DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "TESTING.md"]

#: `dir/stem.ext` tokens rooted at a tracked top-level directory. The
#: lookbehind keeps `build/tools/...` binary paths from matching as a
#: `tools/...` source reference.
PATH_RE = re.compile(
    r"(?<!build/)\b((?:src|tests|tools|bench|scripts|\.github)/[\w./\-*]+)")

#: --flag tokens (value part ignored).
FLAG_RE = re.compile(r"(--[a-z][a-z0-9_]*)")

#: Lines whose flags are validated against the CLI's --help.
CLI_LINE_RE = re.compile(r"approxmem_cli")


def repo_paths(root):
    tracked = set()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in {"build", ".git", "__pycache__"}]
        rel = os.path.relpath(dirpath, root)
        if rel != ".":
            tracked.add(rel)
        for name in filenames:
            tracked.add(os.path.join(rel, name) if rel != "." else name)
    return tracked


def cli_flags(cli):
    if cli is None:
        return None
    try:
        out = subprocess.run([cli, "--help"], capture_output=True, text=True,
                             timeout=60)
    except (OSError, subprocess.TimeoutExpired) as error:
        print(f"error: cannot run {cli} --help: {error}", file=sys.stderr)
        return None
    return set(FLAG_RE.findall(out.stdout + out.stderr))


def bench_flags(root):
    """Flags the bench harness adds on top of the CLI parser."""
    flags = set()
    common = os.path.join(root, "bench", "bench_common.h")
    if os.path.exists(common):
        with open(common) as f:
            flags.update(FLAG_RE.findall(f.read()))
    for name in os.listdir(os.path.join(root, "bench")):
        if name.endswith(".cc"):
            with open(os.path.join(root, "bench", name)) as f:
                flags.update(FLAG_RE.findall(f.read()))
    return flags


def check_file(path, tracked, known_cli, known_bench, root):
    failures = []
    with open(path) as f:
        lines = f.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        for token in PATH_RE.findall(line):
            candidate = token.rstrip(".,:;)")
            candidate = candidate.split(":")[0]
            if "*" in candidate:
                candidate = candidate[:candidate.index("*")]
            candidate = candidate.rstrip("/")
            if not candidate or candidate in tracked:
                continue
            # `src/x/thing` cites `thing.{h,cc}` or a directory prefix.
            if any(p.startswith(candidate + ".") or
                   p.startswith(candidate + "/") for p in tracked):
                continue
            failures.append(
                f"{os.path.relpath(path, root)}:{lineno}: "
                f"path `{token}` not in the tree")
        if known_cli is not None and CLI_LINE_RE.search(line):
            for flag in FLAG_RE.findall(line):
                if flag in known_cli or flag in known_bench:
                    continue
                failures.append(
                    f"{os.path.relpath(path, root)}:{lineno}: "
                    f"flag `{flag}` not in approxmem_cli --help")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--cli", default=None,
                        help="approxmem_cli binary; omit to skip flag checks")
    args = parser.parse_args()

    tracked = repo_paths(args.root)
    known_cli = cli_flags(args.cli)
    if args.cli is not None and known_cli is None:
        return 1
    known_bench = bench_flags(args.root)

    failures = []
    checked = 0
    for name in DOC_FILES:
        path = os.path.join(args.root, name)
        if not os.path.exists(path):
            continue
        checked += 1
        failures.extend(
            check_file(path, tracked, known_cli, known_bench, args.root))

    if failures:
        print(f"{len(failures)} stale doc reference(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    mode = "paths+flags" if known_cli is not None else "paths only"
    print(f"check_docs: {checked} docs clean ({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
