#include "mem/cache.h"

#include "common/check.h"

namespace approxmem::mem {
namespace {

bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

Status CacheConfig::Validate() const {
  if (!IsPowerOfTwo(line_bytes)) {
    return Status::InvalidArgument("line_bytes must be a power of two");
  }
  if (ways == 0) return Status::InvalidArgument("ways must be positive");
  if (capacity_bytes % (static_cast<uint64_t>(ways) * line_bytes) != 0) {
    return Status::InvalidArgument(
        "capacity must be a multiple of ways * line_bytes");
  }
  const uint64_t sets = capacity_bytes / (static_cast<uint64_t>(ways) *
                                          line_bytes);
  if (!IsPowerOfTwo(sets)) {
    return Status::InvalidArgument("number of sets must be a power of two");
  }
  if (hit_latency_ns < 0.0) {
    return Status::InvalidArgument("hit_latency_ns must be non-negative");
  }
  return Status::Ok();
}

Cache::Cache(const CacheConfig& config) : config_(config) {
  APPROXMEM_CHECK_OK(config.Validate());
  num_sets_ = static_cast<uint32_t>(
      config.capacity_bytes /
      (static_cast<uint64_t>(config.ways) * config.line_bytes));
  lines_.assign(static_cast<size_t>(num_sets_) * config.ways, Line{});
}

int Cache::FindWay(uint32_t set, uint64_t tag) const {
  const Line* base = &lines_[static_cast<size_t>(set) * config_.ways];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return static_cast<int>(w);
  }
  return -1;
}

void Cache::Touch(uint32_t set, int way) {
  lines_[static_cast<size_t>(set) * config_.ways + static_cast<size_t>(way)]
      .last_used = ++clock_;
}

void Cache::Install(uint32_t set, uint64_t tag) {
  Line* base = &lines_[static_cast<size_t>(set) * config_.ways];
  uint32_t victim = 0;
  uint64_t oldest = ~uint64_t{0};
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      victim = w;
      break;
    }
    if (base[w].last_used < oldest) {
      oldest = base[w].last_used;
      victim = w;
    }
  }
  base[victim] = Line{tag, ++clock_, true};
}

bool Cache::AccessRead(uint64_t address) {
  const uint64_t line = address / config_.line_bytes;
  const uint32_t set = static_cast<uint32_t>(line & (num_sets_ - 1));
  const uint64_t tag = line / num_sets_;
  const int way = FindWay(set, tag);
  if (way >= 0) {
    Touch(set, way);
    ++hits_;
    return true;
  }
  ++misses_;
  Install(set, tag);
  return false;
}

bool Cache::AccessWrite(uint64_t address) {
  const uint64_t line = address / config_.line_bytes;
  const uint32_t set = static_cast<uint32_t>(line & (num_sets_ - 1));
  const uint64_t tag = line / num_sets_;
  const int way = FindWay(set, tag);
  if (way >= 0) {
    Touch(set, way);
    ++hits_;
    return true;
  }
  // Write-through, no-write-allocate: a miss just passes through.
  ++misses_;
  return false;
}

void Cache::ResetStats() {
  hits_ = 0;
  misses_ = 0;
}

void Cache::Flush() {
  for (auto& line : lines_) line = Line{};
}

CacheHierarchy CacheHierarchy::PaperDefault() {
  CacheConfig l1;
  l1.capacity_bytes = 32 * 1024;
  l1.ways = 8;
  l1.line_bytes = 64;
  l1.hit_latency_ns = 1.0;
  CacheConfig l2;
  l2.capacity_bytes = 2 * 1024 * 1024;
  l2.ways = 4;
  l2.line_bytes = 64;
  l2.hit_latency_ns = 4.0;
  CacheConfig l3;
  l3.capacity_bytes = 32ull * 1024 * 1024;
  l3.ways = 8;
  l3.line_bytes = 64;
  l3.hit_latency_ns = 10.0;  // Table 1: 10ns L3 access latency.
  return CacheHierarchy(l1, l2, l3);
}

CacheHierarchy::CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                               const CacheConfig& l3)
    : l1_(l1), l2_(l2), l3_(l3) {}

HitLevel CacheHierarchy::Read(uint64_t address) {
  if (l1_.AccessRead(address)) return HitLevel::kL1;
  if (l2_.AccessRead(address)) return HitLevel::kL2;
  if (l3_.AccessRead(address)) return HitLevel::kL3;
  return HitLevel::kMemory;
}

void CacheHierarchy::Write(uint64_t address) {
  l1_.AccessWrite(address);
  l2_.AccessWrite(address);
  l3_.AccessWrite(address);
}

double CacheHierarchy::LatencyNs(HitLevel level) const {
  switch (level) {
    case HitLevel::kL1:
      return l1_.config().hit_latency_ns;
    case HitLevel::kL2:
      return l2_.config().hit_latency_ns;
    case HitLevel::kL3:
      return l3_.config().hit_latency_ns;
    case HitLevel::kMemory:
      return 0.0;
  }
  return 0.0;
}

void CacheHierarchy::ResetStats() {
  l1_.ResetStats();
  l2_.ResetStats();
  l3_.ResetStats();
}

void CacheHierarchy::Flush() {
  l1_.Flush();
  l2_.Flush();
  l3_.Flush();
}

}  // namespace approxmem::mem
