#include "mem/memory_system.h"

namespace approxmem::mem {

MemorySystem::MemorySystem(CacheHierarchy hierarchy,
                           const PcmConfig& pcm_config)
    : hierarchy_(std::move(hierarchy)), pcm_(pcm_config) {}

MemorySystem MemorySystem::PaperDefault() {
  return MemorySystem(CacheHierarchy::PaperDefault(), PcmConfig{});
}

double MemorySystem::Read(uint64_t address) {
  ++stats_.reads;
  const HitLevel level = hierarchy_.Read(address);
  switch (level) {
    case HitLevel::kL1:
      ++stats_.l1_read_hits;
      break;
    case HitLevel::kL2:
      ++stats_.l2_read_hits;
      break;
    case HitLevel::kL3:
      ++stats_.l3_read_hits;
      break;
    case HitLevel::kMemory:
      ++stats_.memory_reads;
      break;
  }
  double latency = hierarchy_.LatencyNs(level);
  if (level == HitLevel::kMemory) {
    latency += pcm_.Read(address);
  }
  stats_.total_read_latency_ns += latency;
  return latency;
}

void MemorySystem::Write(uint64_t address) {
  ++stats_.writes;
  hierarchy_.Write(address);
  pcm_.Write(address);
}

void MemorySystem::Write(uint64_t address, double pcm_service_latency_ns) {
  ++stats_.writes;
  hierarchy_.Write(address);
  pcm_.Write(address, pcm_service_latency_ns);
}

MemorySystemStats MemorySystem::Replay(const TraceBuffer& trace) {
  for (const MemEvent& event : trace.events()) {
    if (event.kind == AccessKind::kRead) {
      Read(event.address);
    } else {
      Write(event.address);
    }
  }
  return Finish();
}

MemorySystemStats MemorySystem::Finish() {
  pcm_.Finish();
  const PcmStats& pcm_stats = pcm_.Stats();
  stats_.total_write_latency_ns = pcm_stats.total_write_latency_ns;
  stats_.write_stall_ns = pcm_stats.write_stall_ns;
  stats_.completion_time_ns = pcm_stats.completion_time_ns;
  return stats_;
}

}  // namespace approxmem::mem
