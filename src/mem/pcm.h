// Banked PCM main-memory model (Table 1).
//
// 8GB PCM organized as 4 ranks x 8 banks with 4KB pages. Each bank has a
// 32-entry write queue and an 8-entry read queue and schedules reads with
// priority over queued writes (writes are posted and drain in the
// background; reads must wait only for the operation currently in service).
// The CPU issues accesses in trace order: reads are blocking, writes stall
// only when the target bank's write queue is full.
#ifndef APPROXMEM_MEM_PCM_H_
#define APPROXMEM_MEM_PCM_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "mem/trace.h"

namespace approxmem::mem {

/// Geometry and timing of the PCM main memory.
struct PcmConfig {
  uint32_t ranks = 4;
  uint32_t banks_per_rank = 8;
  uint64_t page_bytes = 4096;
  uint32_t write_queue_depth = 32;
  uint32_t read_queue_depth = 8;
  double read_latency_ns = 50.0;
  double write_latency_ns = 1000.0;  // Precise write (T = 0.025): 1 us.
  /// Row-buffer model (the "more detailed model of PCM" the paper's
  /// Section 5 discussion calls for): an access to the row currently open
  /// in its bank costs latency x this factor. 1.0 disables the model
  /// (Table 1's uniform latency).
  double row_buffer_hit_factor = 1.0;

  uint32_t TotalBanks() const { return ranks * banks_per_rank; }
  Status Validate() const;
};

/// Observes PCM accesses and degrades faulty ones.
///
/// The testing layer threads one injector through both the array facade
/// (value corruption, approx/fault_hook.h) and this listener (timing
/// degradation of the banked device model): an access that lands on a
/// faulty cell region costs its base latency times the returned factor.
class PcmFaultListener {
 public:
  virtual ~PcmFaultListener() = default;

  /// Returns the service-latency multiplier for this access (>= 1.0
  /// degrades; exactly 1.0 means the region is healthy).
  virtual double OnPcmAccess(uint64_t address, AccessKind kind) = 0;
};

/// Aggregate results of replaying a trace.
struct PcmStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t faulted_accesses = 0;  // Accesses degraded by a fault listener.
  double total_read_latency_ns = 0.0;   // Service time seen by the CPU.
  double total_write_latency_ns = 0.0;  // Bank service time of all writes.
  double read_queue_wait_ns = 0.0;      // Waiting behind in-service ops.
  double write_stall_ns = 0.0;          // CPU stalls on full write queues.
  uint64_t write_queue_full_events = 0;
  uint64_t row_buffer_hits = 0;     // Accesses to the bank's open row.
  double completion_time_ns = 0.0;  // When the last queued write drains.
};

/// Event-driven banked PCM simulator with read-priority scheduling.
///
/// Usage: construct, feed accesses via Read()/Write() with monotonically
/// tracked CPU time (the simulator advances the CPU clock internally), then
/// Finish() to drain queues. Stats() reports aggregates.
class PcmSimulator {
 public:
  explicit PcmSimulator(const PcmConfig& config);

  /// Issues a blocking read at the current CPU time; returns the read's
  /// completion latency (wait + service) in ns and advances the CPU clock.
  double Read(uint64_t address);

  /// Posts a write. Stalls the CPU only if the bank's write queue is full.
  void Write(uint64_t address);

  /// Per-write service latency override: approximate banks can be slower or
  /// faster than the precise default (latency scales with avg #P).
  void Write(uint64_t address, double service_latency_ns);

  /// Drains all queues; afterwards Stats().completion_time_ns is final.
  void Finish();

  /// Replays a whole trace (reads blocking, writes posted) then finishes.
  static PcmStats Replay(const PcmConfig& config, const TraceBuffer& trace);

  /// Installs a fault listener degrading the latency of faulty accesses.
  /// Not owned; pass nullptr to detach.
  void SetFaultListener(PcmFaultListener* listener) { faults_ = listener; }

  const PcmStats& Stats() const { return stats_; }
  double cpu_time_ns() const { return cpu_time_ns_; }

  /// Maps a byte address to a bank index: pages are striped across banks
  /// (page-interleaved, as with 4KB pages on a multi-rank module).
  uint32_t BankOf(uint64_t address) const;

  /// Row (page) index of an address within its bank's row-buffer space.
  uint64_t RowOf(uint64_t address) const;

 private:
  struct QueuedWrite {
    double arrival_ns = 0.0;
    double service_ns = 0.0;
    uint64_t row = 0;
  };

  struct Bank {
    // Completion time of the operation currently in service (reads bypass
    // queued writes but not this).
    double inflight_end_ns = 0.0;
    // The row (page) currently held in the bank's row buffer; kNoRow when
    // nothing is open.
    uint64_t open_row = ~uint64_t{0};
    // Posted writes not yet started.
    std::deque<QueuedWrite> write_queue;
  };

  // Effective service latency of an access to `row` on `bank`, applying
  // the row-buffer hit factor, and opening the row.
  double ServiceLatency(Bank& bank, uint64_t row, double base_ns);

  // Starts queued writes that can begin at or before `now` on `bank`.
  void PumpBank(Bank& bank, double now);
  // Forces the oldest queued write on `bank` to complete; returns its
  // completion time.
  double DrainOneWrite(Bank& bank);

  // Latency multiplier from the fault listener (1.0 when none); counts the
  // access as faulted when degraded.
  double FaultFactor(uint64_t address, AccessKind kind);

  PcmConfig config_;
  std::vector<Bank> banks_;
  PcmStats stats_;
  PcmFaultListener* faults_ = nullptr;
  double cpu_time_ns_ = 0.0;
};

}  // namespace approxmem::mem

#endif  // APPROXMEM_MEM_PCM_H_
