#include "mem/pcm.h"

#include <algorithm>

#include "common/check.h"

namespace approxmem::mem {

Status PcmConfig::Validate() const {
  if (ranks == 0 || banks_per_rank == 0) {
    return Status::InvalidArgument("ranks and banks_per_rank must be > 0");
  }
  if (page_bytes == 0 || (page_bytes & (page_bytes - 1)) != 0) {
    return Status::InvalidArgument("page_bytes must be a power of two");
  }
  if (write_queue_depth == 0 || read_queue_depth == 0) {
    return Status::InvalidArgument("queue depths must be > 0");
  }
  if (read_latency_ns <= 0.0 || write_latency_ns <= 0.0) {
    return Status::InvalidArgument("latencies must be positive");
  }
  if (row_buffer_hit_factor <= 0.0 || row_buffer_hit_factor > 1.0) {
    return Status::InvalidArgument("row_buffer_hit_factor must be in (0, 1]");
  }
  return Status::Ok();
}

PcmSimulator::PcmSimulator(const PcmConfig& config) : config_(config) {
  APPROXMEM_CHECK_OK(config.Validate());
  banks_.resize(config.TotalBanks());
}

uint32_t PcmSimulator::BankOf(uint64_t address) const {
  return static_cast<uint32_t>((address / config_.page_bytes) %
                               config_.TotalBanks());
}

uint64_t PcmSimulator::RowOf(uint64_t address) const {
  return address / config_.page_bytes;
}

double PcmSimulator::ServiceLatency(Bank& bank, uint64_t row,
                                    double base_ns) {
  if (config_.row_buffer_hit_factor < 1.0 && bank.open_row == row) {
    ++stats_.row_buffer_hits;
    return base_ns * config_.row_buffer_hit_factor;
  }
  bank.open_row = row;
  return base_ns;
}

void PcmSimulator::PumpBank(Bank& bank, double now) {
  // Start queued writes back-to-back while the bank frees up before `now`.
  while (!bank.write_queue.empty() && bank.inflight_end_ns <= now) {
    const QueuedWrite& write = bank.write_queue.front();
    const double start = std::max(write.arrival_ns, bank.inflight_end_ns);
    if (start > now) break;
    const double service = ServiceLatency(bank, write.row, write.service_ns);
    bank.inflight_end_ns = start + service;
    stats_.total_write_latency_ns += service;
    bank.write_queue.pop_front();
  }
}

double PcmSimulator::DrainOneWrite(Bank& bank) {
  APPROXMEM_CHECK(!bank.write_queue.empty());
  const QueuedWrite write = bank.write_queue.front();
  bank.write_queue.pop_front();
  const double start = std::max(write.arrival_ns, bank.inflight_end_ns);
  const double service = ServiceLatency(bank, write.row, write.service_ns);
  bank.inflight_end_ns = start + service;
  stats_.total_write_latency_ns += service;
  return bank.inflight_end_ns;
}

double PcmSimulator::FaultFactor(uint64_t address, AccessKind kind) {
  if (faults_ == nullptr) return 1.0;
  const double factor = faults_->OnPcmAccess(address, kind);
  if (factor != 1.0) ++stats_.faulted_accesses;
  return factor;
}

double PcmSimulator::Read(uint64_t address) {
  Bank& bank = banks_[BankOf(address)];
  const double now = cpu_time_ns_;
  PumpBank(bank, now);
  // Read priority: the read bypasses queued writes but must wait for the
  // operation currently occupying the bank.
  const double start = std::max(now, bank.inflight_end_ns);
  const double end =
      start + ServiceLatency(bank, RowOf(address),
                             config_.read_latency_ns *
                                 FaultFactor(address, AccessKind::kRead));
  bank.inflight_end_ns = end;
  const double wait = start - now;
  stats_.read_queue_wait_ns += wait;
  stats_.total_read_latency_ns += end - now;
  ++stats_.reads;
  cpu_time_ns_ = end;
  return end - now;
}

void PcmSimulator::Write(uint64_t address) {
  Write(address, config_.write_latency_ns);
}

void PcmSimulator::Write(uint64_t address, double service_latency_ns) {
  Bank& bank = banks_[BankOf(address)];
  PumpBank(bank, cpu_time_ns_);
  if (bank.write_queue.size() >= config_.write_queue_depth) {
    // Full write queue: the CPU stalls until the oldest write drains.
    const double freed_at = DrainOneWrite(bank);
    if (freed_at > cpu_time_ns_) {
      stats_.write_stall_ns += freed_at - cpu_time_ns_;
      cpu_time_ns_ = freed_at;
    }
    ++stats_.write_queue_full_events;
  }
  bank.write_queue.push_back(
      QueuedWrite{cpu_time_ns_,
                  service_latency_ns * FaultFactor(address, AccessKind::kWrite),
                  RowOf(address)});
  ++stats_.writes;
}

void PcmSimulator::Finish() {
  double completion = cpu_time_ns_;
  for (auto& bank : banks_) {
    while (!bank.write_queue.empty()) {
      DrainOneWrite(bank);
    }
    completion = std::max(completion, bank.inflight_end_ns);
  }
  stats_.completion_time_ns = completion;
}

PcmStats PcmSimulator::Replay(const PcmConfig& config,
                              const TraceBuffer& trace) {
  PcmSimulator sim(config);
  for (const MemEvent& event : trace.events()) {
    if (event.kind == AccessKind::kRead) {
      sim.Read(event.address);
    } else {
      sim.Write(event.address);
    }
  }
  sim.Finish();
  return sim.Stats();
}

}  // namespace approxmem::mem
