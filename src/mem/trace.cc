#include "mem/trace.h"

namespace approxmem::mem {

void TraceBuffer::Append(const MemEvent& event) {
  events_.push_back(event);
  if (event.kind == AccessKind::kRead) {
    ++read_count_;
  } else {
    ++write_count_;
  }
}

void TraceBuffer::AppendRead(uint64_t address, uint32_t size) {
  Append(MemEvent{address, size, AccessKind::kRead});
}

void TraceBuffer::AppendWrite(uint64_t address, uint32_t size) {
  Append(MemEvent{address, size, AccessKind::kWrite});
}

void TraceBuffer::Clear() {
  events_.clear();
  read_count_ = 0;
  write_count_ = 0;
}

}  // namespace approxmem::mem
