// Full memory system: write-through cache hierarchy in front of banked PCM.
//
// This is the trace-driven substrate corresponding to the paper's in-house
// simulator (Table 1). Reads that hit a cache level cost that level's
// latency; misses and all writes (write-through) go to PCM.
#ifndef APPROXMEM_MEM_MEMORY_SYSTEM_H_
#define APPROXMEM_MEM_MEMORY_SYSTEM_H_

#include <cstdint>

#include "mem/cache.h"
#include "mem/pcm.h"
#include "mem/trace.h"

namespace approxmem::mem {

/// Aggregate statistics for a trace replayed through the memory system.
struct MemorySystemStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t l1_read_hits = 0;
  uint64_t l2_read_hits = 0;
  uint64_t l3_read_hits = 0;
  uint64_t memory_reads = 0;
  double total_read_latency_ns = 0.0;
  double total_write_latency_ns = 0.0;  // PCM service time of all writes.
  double write_stall_ns = 0.0;
  double completion_time_ns = 0.0;
};

/// Combines CacheHierarchy and PcmSimulator; accepts a stream of accesses.
class MemorySystem {
 public:
  MemorySystem(CacheHierarchy hierarchy, const PcmConfig& pcm_config);

  /// Builds the Table 1 configuration.
  static MemorySystem PaperDefault();

  /// Issues one read; returns its end-to-end latency in ns.
  double Read(uint64_t address);

  /// Issues one write; write-through so it always reaches PCM. An optional
  /// service latency models approximate-bank writes (latency ~ avg #P).
  void Write(uint64_t address);
  void Write(uint64_t address, double pcm_service_latency_ns);

  /// Replays a whole trace and finalizes stats.
  MemorySystemStats Replay(const TraceBuffer& trace);

  /// Drains PCM queues and returns the final statistics.
  MemorySystemStats Finish();

  const CacheHierarchy& hierarchy() const { return hierarchy_; }
  /// The banked PCM backend (for fault listeners and conservation checks).
  PcmSimulator& pcm() { return pcm_; }
  const PcmSimulator& pcm() const { return pcm_; }

 private:
  CacheHierarchy hierarchy_;
  PcmSimulator pcm_;
  MemorySystemStats stats_;
};

}  // namespace approxmem::mem

#endif  // APPROXMEM_MEM_MEMORY_SYSTEM_H_
