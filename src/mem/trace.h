// Memory-access traces for the trace-driven substrate.
//
// The paper collects traces from real executions and replays them in a
// trace-driven PCM simulator. Here, instrumented arrays (src/approx) emit
// MemEvents into a TraceBuffer which mem::MemorySystem replays through the
// cache hierarchy and the banked PCM model.
#ifndef APPROXMEM_MEM_TRACE_H_
#define APPROXMEM_MEM_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace approxmem::mem {

/// Kind of memory access.
enum class AccessKind : uint8_t { kRead = 0, kWrite = 1 };

/// One memory access. Addresses are byte addresses in a flat space;
/// `size` is the access width in bytes (4 for the 32-bit keys and IDs).
struct MemEvent {
  uint64_t address = 0;
  uint32_t size = 4;
  AccessKind kind = AccessKind::kRead;
};

/// Append-only container of MemEvents with simple aggregate counters.
class TraceBuffer {
 public:
  void Append(const MemEvent& event);
  void AppendRead(uint64_t address, uint32_t size = 4);
  void AppendWrite(uint64_t address, uint32_t size = 4);

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const MemEvent& operator[](size_t i) const { return events_[i]; }
  const std::vector<MemEvent>& events() const { return events_; }

  uint64_t read_count() const { return read_count_; }
  uint64_t write_count() const { return write_count_; }

  void Clear();

 private:
  std::vector<MemEvent> events_;
  uint64_t read_count_ = 0;
  uint64_t write_count_ = 0;
};

}  // namespace approxmem::mem

#endif  // APPROXMEM_MEM_TRACE_H_
