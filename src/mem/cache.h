// Set-associative LRU caches (Table 1's L1/L2/L3).
//
// All levels are write-through (the paper assumes write-through so that
// every data write reaches main memory); writes do not allocate lines.
#ifndef APPROXMEM_MEM_CACHE_H_
#define APPROXMEM_MEM_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace approxmem::mem {

/// Geometry and timing of one cache level.
struct CacheConfig {
  uint64_t capacity_bytes = 32 * 1024;
  uint32_t ways = 8;
  uint32_t line_bytes = 64;
  double hit_latency_ns = 1.0;

  Status Validate() const;
};

/// One set-associative, write-through, no-write-allocate LRU cache level.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks up `address`; on a read miss the line is installed. Returns true
  /// on hit. Writes update recency when present but never allocate.
  bool AccessRead(uint64_t address);
  bool AccessWrite(uint64_t address);

  const CacheConfig& config() const { return config_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint32_t num_sets() const { return num_sets_; }

  void ResetStats();
  /// Invalidates all lines (used between experiment phases).
  void Flush();

 private:
  struct Line {
    uint64_t tag = 0;
    uint64_t last_used = 0;
    bool valid = false;
  };

  // Returns the way index of `tag` in `set`, or -1.
  int FindWay(uint32_t set, uint64_t tag) const;
  void Touch(uint32_t set, int way);
  void Install(uint32_t set, uint64_t tag);

  CacheConfig config_;
  uint32_t num_sets_;
  std::vector<Line> lines_;  // num_sets_ * ways, row-major by set.
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Result of a hierarchy lookup: which level satisfied the read.
enum class HitLevel { kL1 = 1, kL2 = 2, kL3 = 3, kMemory = 4 };

/// The paper's three-level write-through hierarchy. Reads probe L1->L2->L3
/// and install in all levels on the way back; writes are passed through all
/// levels to memory.
class CacheHierarchy {
 public:
  /// Builds the Table 1 configuration: L1 32KB LRU, L2 2MB 4-way,
  /// L3 32MB 8-way 10ns, 64-byte lines.
  static CacheHierarchy PaperDefault();

  CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                 const CacheConfig& l3);

  /// Probes the hierarchy for a read and returns the level that hit.
  HitLevel Read(uint64_t address);

  /// Propagates a write through all levels (write-through).
  void Write(uint64_t address);

  /// Hit latency of `level` in ns (memory returns 0; the PCM model owns it).
  double LatencyNs(HitLevel level) const;

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }
  const Cache& l3() const { return l3_; }

  void ResetStats();
  void Flush();

 private:
  Cache l1_;
  Cache l2_;
  Cache l3_;
};

}  // namespace approxmem::mem

#endif  // APPROXMEM_MEM_CACHE_H_
