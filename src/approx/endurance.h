// Device-lifetime endurance modeling: wear budgets, error escalation, and
// bank retirement.
//
// PCM cells survive a finite number of RESET/SET pulses. The rest of the
// simulator already measures exactly that quantity — MemoryStats::
// pv_iterations, the Equation 2 wear proxy charged back to banks by
// service::WearPlacement::ChargeJobCost — but until now the substrate was
// immortal: wear leveled, nothing aged. This header closes the loop:
//
//   * EnduranceLedger gives every bank a P&V-iteration budget and walks a
//     per-bank state machine Active -> Aged -> Retired as charged wear
//     crosses fractions of that budget. Escalation is a *pure function of
//     charged wear* (never wall clock), so two runs charging the same wear
//     sequence age identically — the determinism contract every service
//     digest depends on. Retirements are stamped with a job-count virtual
//     time and kept on an ordered timeline with an FNV digest.
//
//   * WearErrorHook turns bank age into observable errors: a
//     MemoryFaultHook that flips a bit in approx-domain writes landing on
//     aged banks, at the ledger's escalated rate. Draws come from a
//     counter-based SplitMix hash of (seed, job key, draw index) — no RNG
//     stream anywhere else moves, and a job's draws depend only on its own
//     ticket. The hook chains an optional inner hook (fault storms in
//     tests) so endurance composes with the existing fault framework.
//
// Precise-domain writes are never corrupted by age here: the precise
// domain's wide guard bands tolerate resistance drift until cells truly
// die, and death is modeled as retirement (the bank stops being placed),
// not as silent precise corruption. That keeps the paper's refine
// guarantee — and the differential oracle — intact while banks age out.
#ifndef APPROXMEM_APPROX_ENDURANCE_H_
#define APPROXMEM_APPROX_ENDURANCE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "approx/fault_hook.h"

namespace approxmem::approx {

/// One step of the wear -> error escalation curve: once a bank's consumed
/// wear reaches `wear_fraction` of its budget, approx-domain writes on the
/// bank suffer an extra word-error probability of `word_error_rate`.
struct EscalationStep {
  double wear_fraction = 0.0;
  double word_error_rate = 0.0;
};

struct EnduranceOptions {
  bool enabled = false;
  /// P&V-iteration budget per bank; consuming it retires the bank. The
  /// default is sized for soak tests, not real devices (real MLC PCM
  /// endures ~1e6-1e8 cycles/cell; one simulated bank aggregates many
  /// cells, so budgets here are per-lane totals in ledger units).
  double bank_budget_pv = 5.0e6;
  /// Escalation curve, sorted by wear_fraction ascending. Empty means
  /// banks never err more — budget-only retirement.
  std::vector<EscalationStep> escalation = {
      {0.50, 0.002}, {0.75, 0.01}, {0.90, 0.05}};
  /// Canary-driven retirement: a bank retires once this many health-
  /// monitor quarantines landed inside it (persistent observed error rate
  /// beyond threshold). 0 disables quarantine-driven retirement.
  uint64_t retire_after_quarantines = 4;
  /// Deterministic accelerated aging: every charged P&V iteration counts
  /// this many times against the budget. Virtual time only — hours of
  /// simulated load in CI minutes, bit-identical at any speed the host
  /// actually runs.
  double age_multiplier = 1.0;
  /// Bank-lane geometry; must match the placement policy carving the
  /// address space (service::WearPlacement uses 1 TiB lanes).
  int banks = 8;
  uint64_t bank_lane_bytes = uint64_t{1} << 40;
  /// Seeds the WearErrorHook's draw hash.
  uint64_t seed = 0xe4d2a9ce5eedULL;
};

enum class BankState : uint8_t {
  /// Below the first escalation step: errs at the calibrated model rate.
  kActive,
  /// Crossed at least one escalation step: errs more, still placeable.
  kAged,
  /// Budget exhausted or canary-condemned: never placed again.
  kRetired,
};

std::string_view BankStateName(BankState state);

/// Why a bank left service.
enum class RetirementReason : uint8_t {
  /// Charged wear consumed the bank's whole P&V budget.
  kBudgetExhausted,
  /// The health monitor kept quarantining regions inside the bank.
  kCanaryCondemned,
};

std::string_view RetirementReasonName(RetirementReason reason);

/// One entry of the retirement timeline.
struct RetirementEvent {
  int bank = 0;
  RetirementReason reason = RetirementReason::kBudgetExhausted;
  /// Job-count virtual time on the owning substrate when the bank died
  /// (jobs begun, not wall clock — deterministic).
  uint64_t virtual_time = 0;
  /// Consumed wear at retirement, in (aged) P&V iterations.
  double consumed_pv = 0.0;
  /// Quarantines inside the bank at retirement.
  uint64_t quarantines = 0;
};

/// Per-bank endurance state, exposed for reports.
struct BankEndurance {
  double consumed_pv = 0.0;
  uint64_t quarantines = 0;
  BankState state = BankState::kActive;
  /// Escalation steps crossed (0 = calibrated rate only).
  int escalation_level = 0;
};

/// Wear -> error -> retirement ledger of one substrate (one service
/// shard). Driven serially by its owner — the shard charges jobs in run
/// order, and the service only reads across shards between batches — so
/// the ledger is deliberately lock-free.
class EnduranceLedger {
 public:
  explicit EnduranceLedger(const EnduranceOptions& options);

  const EnduranceOptions& options() const { return options_; }

  /// Advances job-count virtual time: called once per job begun on the
  /// owning substrate. Timeline stamps come from this counter alone.
  void BeginJob() { ++virtual_time_; }

  /// Charges `pv` iterations of observed wear (pre-aging; the ledger
  /// applies age_multiplier) to `bank`, crossing escalation steps and
  /// retiring on budget exhaustion. Returns true when this charge retired
  /// the bank.
  bool ChargeBank(int bank, double pv);

  /// Records a health-monitor quarantine inside `bank`; retires the bank
  /// once retire_after_quarantines is reached. Returns true on retirement.
  bool RecordQuarantine(int bank);

  bool IsRetired(int bank) const {
    return banks_[static_cast<size_t>(bank)].state == BankState::kRetired;
  }

  /// Extra approx-domain word-error probability of `bank` — a pure
  /// function of the bank's consumed wear (the highest escalation step it
  /// has crossed; 0 below the first step).
  double ExtraWordErrorRate(int bank) const;

  const BankEndurance& bank(int b) const {
    return banks_[static_cast<size_t>(b)];
  }
  int total_banks() const { return static_cast<int>(banks_.size()); }
  int live_banks() const { return live_banks_; }
  /// Live capacity as a fraction of total banks; 0 = substrate exhausted.
  double CapacityFraction() const {
    return static_cast<double>(live_banks_) / static_cast<double>(
        banks_.size());
  }

  /// Highest escalation level among banks still in service — the signal
  /// the service's knob-tightening degradation reacts to.
  int MaxLiveEscalationLevel() const;

  /// Consumed-over-budget fraction of `bank` (can exceed 1 on the final
  /// charge).
  double WearFraction(int bank) const;

  const std::vector<RetirementEvent>& retirements() const {
    return retirements_;
  }
  /// Retirement count == the substrate's wear epoch: epoch 0 is the fresh
  /// device, and every retirement starts the next epoch.
  uint64_t wear_epoch() const { return retirements_.size(); }
  uint64_t virtual_time() const { return virtual_time_; }

  /// FNV-1a digest of the whole retirement timeline (bank, reason,
  /// virtual time, wear, quarantines per event). Equal digests mean the
  /// substrate aged identically — the soak's cross-thread-count gate.
  uint64_t TimelineDigest() const;

 private:
  void Retire(int bank, RetirementReason reason);

  EnduranceOptions options_;
  std::vector<BankEndurance> banks_;
  std::vector<RetirementEvent> retirements_;
  int live_banks_ = 0;
  uint64_t virtual_time_ = 0;
};

/// MemoryFaultHook realizing the ledger's escalated error rates: approx-
/// domain writes landing on aged banks suffer an extra single-bit error.
/// Deterministic without touching any Rng stream: each decision hashes
/// (seed, job key, draw counter) with SplitMix64, and BeginJob(ticket)
/// rebases (job key, counter) so a job's draws depend only on its ticket —
/// the same invariance ApproxMemory::BeginJobStream gives the write
/// models. An optional inner hook (fault-storm injector) runs first, so
/// injected faults and endurance errors compose in a fixed order.
class WearErrorHook final : public MemoryFaultHook {
 public:
  /// `ledger` is not owned and must outlive the hook. `inner` may be null.
  WearErrorHook(const EnduranceLedger* ledger, MemoryFaultHook* inner);

  /// Rebases the draw stream for one job; see class comment.
  void BeginJob(uint64_t ticket);

  uint32_t OnWrite(uint64_t address, bool precise_domain, uint32_t intended,
                   uint32_t stored) override;
  uint32_t OnRead(uint64_t address, bool precise_domain,
                  uint32_t value) override;

  uint64_t injected_errors() const { return injected_errors_; }

 private:
  const EnduranceLedger* ledger_;
  MemoryFaultHook* inner_;
  uint64_t job_key_ = 0;
  uint64_t draw_counter_ = 0;
  uint64_t injected_errors_ = 0;
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_ENDURANCE_H_
