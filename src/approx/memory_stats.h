// Access accounting shared by all array types.
#ifndef APPROXMEM_APPROX_MEMORY_STATS_H_
#define APPROXMEM_APPROX_MEMORY_STATS_H_

#include <cstdint>

namespace approxmem::approx {

/// Counters accumulated by one array (or aggregated across arrays).
///
/// `write_cost` / `read_cost` are in the owning write model's unit:
/// nanoseconds for the PCM models (the paper's total-memory-write-latency
/// metric) and normalized energy units for the spintronic model.
struct MemoryStats {
  uint64_t word_reads = 0;
  uint64_t word_writes = 0;
  double write_cost = 0.0;
  double read_cost = 0.0;
  /// Writes whose stored value differs from the intended value.
  uint64_t corrupted_writes = 0;
  /// Writes that landed at (previous index + 1) — the sequential pattern
  /// that receives the sequential-write discount when one is configured.
  uint64_t sequential_writes = 0;
  /// Total program-and-verify iterations across all writes (PCM wear
  /// proxy: each iteration is one RESET/SET pulse on the cells).
  double pv_iterations = 0.0;
  /// Address regions the online health monitor marked degraded (canary
  /// probes observed an error rate far beyond the calibrated model) and
  /// quarantined away from this workload's allocations.
  uint64_t degraded_regions = 0;

  MemoryStats& operator+=(const MemoryStats& other);
  /// Counter-wise difference; valid only for `a - b` where every counter of
  /// `b` is a snapshot of the same (monotonically growing) ledger as `a`.
  MemoryStats& operator-=(const MemoryStats& other);
  friend MemoryStats operator+(MemoryStats a, const MemoryStats& b) {
    a += b;
    return a;
  }
  friend MemoryStats operator-(MemoryStats a, const MemoryStats& b) {
    a -= b;
    return a;
  }
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_MEMORY_STATS_H_
