#include "approx/memory_stats.h"

namespace approxmem::approx {

MemoryStats& MemoryStats::operator+=(const MemoryStats& other) {
  word_reads += other.word_reads;
  word_writes += other.word_writes;
  write_cost += other.write_cost;
  read_cost += other.read_cost;
  corrupted_writes += other.corrupted_writes;
  sequential_writes += other.sequential_writes;
  pv_iterations += other.pv_iterations;
  degraded_regions += other.degraded_regions;
  return *this;
}

MemoryStats& MemoryStats::operator-=(const MemoryStats& other) {
  word_reads -= other.word_reads;
  word_writes -= other.word_writes;
  write_cost -= other.write_cost;
  read_cost -= other.read_cost;
  corrupted_writes -= other.corrupted_writes;
  sequential_writes -= other.sequential_writes;
  pv_iterations -= other.pv_iterations;
  degraded_regions -= other.degraded_regions;
  return *this;
}

}  // namespace approxmem::approx
