#include "approx/health_monitor.h"

#include <iterator>

namespace approxmem::approx {
namespace {

// Deterministic canary pattern for slot `i`: alternating-bit base xored
// with a SplitMix-style index hash, so both bit polarities and all bit
// positions are exercised across a probe site.
uint32_t CanaryPattern(size_t i) {
  uint32_t h = static_cast<uint32_t>(i) * 0x9e3779b9u;
  h ^= h >> 16;
  return 0xa5a5a5a5u ^ h;
}

}  // namespace

uint64_t HealthMonitor::ProbeSite(ApproxArrayU32& canaries) {
  const size_t words = canaries.size();
  uint64_t errors = 0;
  for (size_t i = 0; i < words; ++i) {
    canaries.Set(i, CanaryPattern(i));
  }
  for (size_t i = 0; i < words; ++i) {
    if (canaries.Get(i) != CanaryPattern(i)) ++errors;
  }
  stats_.canary_writes += words;
  stats_.canary_errors += errors;
  stats_.canary_costs += canaries.stats();
  canaries.ResetStats();
  return errors;
}

void HealthMonitor::RecordQuarantine(uint64_t base, uint64_t span) {
  quarantined_.emplace_back(base, span);
  ++stats_.regions_quarantined;
  ++stats_.canary_costs.degraded_regions;

  // Fold [base, base + span) into the disjoint interval index, merging any
  // overlapping or adjacent entries so lookups stay one bound-search.
  uint64_t begin = base;
  uint64_t end = base + span;
  auto it = interval_index_.upper_bound(begin);
  if (it != interval_index_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      if (prev->second > end) end = prev->second;
      it = interval_index_.erase(prev);
    }
  }
  while (it != interval_index_.end() && it->first <= end) {
    if (it->second > end) end = it->second;
    it = interval_index_.erase(it);
  }
  interval_index_.emplace(begin, end);
}

bool HealthMonitor::IsQuarantined(uint64_t base, uint64_t span) const {
  const uint64_t end = base + span;
  // The candidate intervals are the one starting at or before `base` (it
  // may extend past base) and the first one starting after it (it may
  // start before `end`); the index is disjoint, so nothing else can
  // intersect.
  auto it = interval_index_.upper_bound(base);
  if (it != interval_index_.begin() && std::prev(it)->second > base) {
    return true;
  }
  return it != interval_index_.end() && it->first < end;
}

}  // namespace approxmem::approx
