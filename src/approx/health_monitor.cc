#include "approx/health_monitor.h"

namespace approxmem::approx {
namespace {

// Deterministic canary pattern for slot `i`: alternating-bit base xored
// with a SplitMix-style index hash, so both bit polarities and all bit
// positions are exercised across a probe site.
uint32_t CanaryPattern(size_t i) {
  uint32_t h = static_cast<uint32_t>(i) * 0x9e3779b9u;
  h ^= h >> 16;
  return 0xa5a5a5a5u ^ h;
}

}  // namespace

uint64_t HealthMonitor::ProbeSite(ApproxArrayU32& canaries) {
  const size_t words = canaries.size();
  uint64_t errors = 0;
  for (size_t i = 0; i < words; ++i) {
    canaries.Set(i, CanaryPattern(i));
  }
  for (size_t i = 0; i < words; ++i) {
    if (canaries.Get(i) != CanaryPattern(i)) ++errors;
  }
  stats_.canary_writes += words;
  stats_.canary_errors += errors;
  stats_.canary_costs += canaries.stats();
  canaries.ResetStats();
  return errors;
}

void HealthMonitor::RecordQuarantine(uint64_t base, uint64_t span) {
  quarantined_.emplace_back(base, span);
  ++stats_.regions_quarantined;
  ++stats_.canary_costs.degraded_regions;
}

bool HealthMonitor::IsQuarantined(uint64_t base, uint64_t span) const {
  const uint64_t end = base + span;
  for (const auto& [q_base, q_span] : quarantined_) {
    if (base < q_base + q_span && q_base < end) return true;
  }
  return false;
}

}  // namespace approxmem::approx
