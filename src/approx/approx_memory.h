// Hybrid precise/approximate memory: the allocation facade.
//
// ApproxMemory plays the role of the paper's hybrid memory system (Fig. 3):
// it hands out precise arrays and approximate arrays (PCM at a chosen T, or
// spintronic at a chosen energy/error point) that share one experiment seed
// and one calibration cache. It is the only way to construct arrays, so all
// accounting flows through one place.
#ifndef APPROXMEM_APPROX_APPROX_MEMORY_H_
#define APPROXMEM_APPROX_APPROX_MEMORY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "approx/approx_array.h"
#include "approx/fault_hook.h"
#include "approx/health_monitor.h"
#include "approx/spintronic.h"
#include "approx/write_model.h"
#include "common/random.h"
#include "mem/trace.h"
#include "mlc/calibration.h"
#include "mlc/mlc_config.h"

namespace approxmem::approx {

/// Simulation fidelity of approximate PCM writes.
enum class SimulationMode {
  /// Samples errors and #P from Monte-Carlo-calibrated tables (default).
  kFast,
  /// Runs the full program-and-verify loop per cell (slow, reference).
  kExact,
};

/// Factory and owner of write models, calibrations, and the RNG tree.
class ApproxMemory {
 public:
  struct Options {
    mlc::MlcConfig mlc;
    SimulationMode mode = SimulationMode::kFast;
    uint64_t calibration_trials = 200000;
    uint64_t seed = 42;
    /// Optional trace sink; when set, arrays log accesses for replay
    /// through mem::MemorySystem.
    mem::TraceBuffer* trace = nullptr;
    /// Optional fault-injection hook observing every array access (see
    /// fault_hook.h). Not owned; must outlive the memory and its arrays.
    MemoryFaultHook* fault_hook = nullptr;
    /// Optional shared calibration cache. When set, this memory reuses the
    /// given cache (which is thread-safe and keys every entry's substream
    /// by (cache seed, T)) instead of building its own — so the engines of
    /// a parallel (algorithm x T) sweep calibrate each T exactly once
    /// between them. When null, a private cache is created with seed
    /// `seed ^ 0xca11b7a7e5eed`.
    std::shared_ptr<mlc::CalibrationCache> shared_calibration;
    /// Cost multiplier for writes at (previous index + 1). The paper's
    /// Section 5 discussion conjectures that modeling PCM's cheaper
    /// sequential writes raises the approx-refine gain (the refine stage is
    /// mostly sequential); 1.0 keeps the paper's uniform-latency model.
    double sequential_write_discount = 1.0;
    /// Online health monitoring: allocation-time canary probes and region
    /// quarantine (see health_monitor.h). Disabled by default so that
    /// unmonitored experiments keep their exact RNG stream assignment.
    HealthOptions health;
  };

  explicit ApproxMemory(const Options& options);

  /// Allocates an array in precise PCM (no errors, 1 us writes).
  ApproxArrayU32 NewPreciseArray(size_t n);

  /// Allocates an array in approximate PCM with target-range half-width `t`.
  ApproxArrayU32 NewApproxArray(size_t n, double t);

  /// Allocates an array in approximate spintronic memory (Appendix A).
  ApproxArrayU32 NewSpintronicArray(size_t n, const SpintronicConfig& config);

  /// Allocates a *precise* spintronic array (unit write energy, no errors),
  /// the Appendix-A baseline.
  ApproxArrayU32 NewPreciseSpintronicArray(size_t n);

  /// Calibration access for the cost model and benches.
  mlc::CalibrationCache& calibration() { return *calibration_; }

  /// p(t) = avg #P at t / avg #P at the precise T (Section 2.2).
  double PvRatio(double t) { return calibration_->PvRatio(t); }

  const mlc::MlcConfig& mlc_config() const { return options_.mlc; }
  const Options& options() const { return options_; }

  /// The online health monitor (no-op object when Options::health is
  /// disabled); see health_monitor.h for canary and quarantine semantics.
  const HealthMonitor& health() const { return health_; }

 private:
  WriteModel* PcmModelForT(double t);

  /// Hands out an array over the next healthy address region. With
  /// monitoring disabled this is plain bump allocation; with it enabled,
  /// candidate regions are canary-probed against `model_word_error_rate`
  /// and quarantined/skipped (with exponentially growing stride) when the
  /// observed rate breaches the threshold.
  ApproxArrayU32 AllocateArray(size_t n, WriteModel* model,
                               double model_word_error_rate);

  Options options_;
  std::shared_ptr<mlc::CalibrationCache> calibration_;
  Rng rng_;
  HealthMonitor health_;
  uint64_t next_base_address_ = 0;
  std::unique_ptr<WriteModel> precise_model_;
  std::unique_ptr<WriteModel> precise_spintronic_model_;
  std::vector<std::pair<double, std::unique_ptr<WriteModel>>> pcm_models_;
  std::vector<std::unique_ptr<WriteModel>> spintronic_models_;
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_APPROX_MEMORY_H_
