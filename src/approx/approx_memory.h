// Hybrid precise/approximate memory: the allocation facade.
//
// ApproxMemory plays the role of the paper's hybrid memory system (Fig. 3):
// it hands out precise and approximate arrays that share one experiment
// seed and one calibration cache. It is the only way to construct arrays,
// so all accounting flows through one place — but it no longer knows any
// device names: the memory technology is a pluggable MemoryBackend chosen
// by Options::backend (see memory_backend.h), and ApproxMemory itself is
// only allocation + RNG streams + health monitoring.
#ifndef APPROXMEM_APPROX_APPROX_MEMORY_H_
#define APPROXMEM_APPROX_APPROX_MEMORY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "approx/approx_array.h"
#include "approx/fault_hook.h"
#include "approx/health_monitor.h"
#include "approx/memory_backend.h"
#include "approx/write_model.h"
#include "common/random.h"
#include "mem/trace.h"
#include "mlc/calibration.h"
#include "mlc/mlc_config.h"

namespace approxmem::approx {

/// Chooses where in the flat simulated address space each allocation lands.
///
/// By default ApproxMemory bump-allocates monotonically; a service that
/// shares one substrate between many jobs can install a policy that places
/// allocations deliberately — e.g. rotating hot allocations across PCM
/// banks by accumulated wear (src/service/wear_placement.h). The policy is
/// consulted once per allocation attempt and owns all of its cursors, so it
/// must always make progress: two PlaceSpan calls never return overlapping
/// live regions.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Returns the base address for a `span`-byte allocation and advances the
  /// policy's own cursor(s). `span` is already page-rounded by the caller.
  virtual uint64_t PlaceSpan(uint64_t span) = 0;

  /// Notifies the policy that the health monitor quarantined
  /// [base, base + span): the region must never be handed out again, and
  /// the next PlaceSpan must route the retried allocation elsewhere.
  virtual void OnQuarantine(uint64_t base, uint64_t span) = 0;
};

/// Factory and owner of the backend, calibrations, and the RNG tree.
class ApproxMemory {
 public:
  struct Options {
    /// Registry name of the memory technology serving every allocation;
    /// see memory_backend.h for the built-ins. Must be registered
    /// (checked at construction; validate early with IsRegisteredBackend
    /// for a recoverable error).
    std::string backend = std::string(kPcmBackendName);
    mlc::MlcConfig mlc;
    SimulationMode mode = SimulationMode::kFast;
    uint64_t calibration_trials = 200000;
    uint64_t seed = 42;
    /// Optional trace sink; when set, arrays log accesses for replay
    /// through mem::MemorySystem.
    mem::TraceBuffer* trace = nullptr;
    /// Optional fault-injection hook observing every array access (see
    /// fault_hook.h). Not owned; must outlive the memory and its arrays.
    MemoryFaultHook* fault_hook = nullptr;
    /// Optional shared calibration cache. When set, this memory reuses the
    /// given cache (which is thread-safe and keys every entry's substream
    /// by (cache seed, T)) instead of building its own — so the engines of
    /// a parallel (algorithm x T) sweep calibrate each T exactly once
    /// between them. When null, a private cache is created with seed
    /// `seed ^ 0xca11b7a7e5eed`.
    std::shared_ptr<mlc::CalibrationCache> shared_calibration;
    /// Cost multiplier for writes at (previous index + 1). The paper's
    /// Section 5 discussion conjectures that modeling PCM's cheaper
    /// sequential writes raises the approx-refine gain (the refine stage is
    /// mostly sequential); 1.0 keeps the paper's uniform-latency model.
    /// Applied by the array layer, uniformly across backends.
    double sequential_write_discount = 1.0;
    /// Online health monitoring: allocation-time canary probes and region
    /// quarantine (see health_monitor.h). Disabled by default so that
    /// unmonitored experiments keep their exact RNG stream assignment.
    /// Applied by the allocation path, uniformly across backends.
    HealthOptions health;
    /// Optional allocation-placement policy (see PlacementPolicy above).
    /// Null preserves the historical monotonic bump allocator exactly —
    /// including its quarantine-skip stride — so every existing experiment
    /// stays byte-identical. Not owned; must outlive the memory.
    PlacementPolicy* placement = nullptr;
  };

  explicit ApproxMemory(const Options& options);

  /// Allocates an array per `spec` on the configured backend. The spec
  /// must pass the backend's Validate (CHECK-enforced; callers wanting a
  /// recoverable error validate first via backend().Validate(spec)).
  ApproxArrayU32 Allocate(const AllocSpec& spec);

  /// Allocates an array in the backend's precise domain.
  ApproxArrayU32 NewPreciseArray(size_t n);

  /// Allocates an array in the backend's approximate domain at `knob`
  /// (target-range half-width T for PCM backends, per-bit error
  /// probability for spintronic).
  ApproxArrayU32 NewApproxArray(size_t n, double knob);

  /// Rebases the allocation RNG tree onto a substream derived from
  /// (Options::seed, stream_key): every subsequent allocation splits its
  /// array stream from the rebased generator. A multi-job service calls
  /// this once per job with a key that identifies the job alone, so a job's
  /// simulated error draws depend only on (seed, key) — never on how many
  /// allocations earlier jobs on the same substrate consumed. Single-run
  /// experiments never call this and keep their historical streams.
  void BeginJobStream(uint64_t stream_key);

  /// The technology backend serving this memory's allocations.
  MemoryBackend& backend() { return *backend_; }
  const MemoryBackend& backend() const { return *backend_; }

  /// Approximate-to-precise write-cost ratio at `knob` — the paper's p(t)
  /// on PCM backends, the energy ratio on spintronic.
  double WriteCostRatio(double knob) { return backend_->WriteCostRatio(knob); }

  /// Calibration access for the cost model and benches (PCM substrate).
  mlc::CalibrationCache& calibration() { return *calibration_; }

  /// p(t) = avg #P at t / avg #P at the precise T (Section 2.2).
  double PvRatio(double t) { return calibration_->PvRatio(t); }

  const mlc::MlcConfig& mlc_config() const { return options_.mlc; }
  const Options& options() const { return options_; }

  /// The online health monitor (no-op object when Options::health is
  /// disabled); see health_monitor.h for canary and quarantine semantics.
  const HealthMonitor& health() const { return health_; }

 private:
  /// Hands out an array over the next healthy address region. With
  /// monitoring disabled this is plain bump allocation; with it enabled,
  /// candidate regions are canary-probed against `model_word_error_rate`
  /// and quarantined/skipped (with exponentially growing stride) when the
  /// observed rate breaches the threshold.
  ApproxArrayU32 AllocateArray(size_t n, WriteModel* model,
                               double model_word_error_rate);

  Options options_;
  std::shared_ptr<mlc::CalibrationCache> calibration_;
  std::unique_ptr<MemoryBackend> backend_;
  Rng rng_;
  HealthMonitor health_;
  uint64_t next_base_address_ = 0;
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_APPROX_MEMORY_H_
