// Deterministic fault-injection hook for the instrumented arrays.
//
// A MemoryFaultHook observes every word access an ApproxArrayU32 performs
// and may alter the value the memory ends up holding (writes) or the value
// the program observes (reads). It is how the correctness-tooling layer
// (src/testing) injects stuck-at cells, drift bursts, transient read flips,
// and region-scoped error-rate overrides underneath unmodified workloads.
//
// The hook sits *below* the WriteModel: the model first decides what the
// technology stores, then the hook gets a chance to corrupt it further.
// Hooks must be deterministic functions of their own seed and the access
// sequence so that every failure is replayable from one uint64 seed.
#ifndef APPROXMEM_APPROX_FAULT_HOOK_H_
#define APPROXMEM_APPROX_FAULT_HOOK_H_

#include <cstdint>

namespace approxmem::approx {

/// Observes and perturbs word accesses of instrumented arrays.
///
/// `address` is the byte address of the word in the flat simulated space
/// (the same addresses the TraceBuffer records), so faults can be scoped to
/// address regions. `precise_domain` reports whether the array lives in a
/// precise allocation — faults injected there break the paper's refine
/// guarantee and must be caught by the differential oracle.
class MemoryFaultHook {
 public:
  virtual ~MemoryFaultHook() = default;

  /// Called after the WriteModel stored a word. `stored` is the value the
  /// technology left in memory (possibly already corrupted by the model);
  /// the return value is what the memory actually holds from now on.
  virtual uint32_t OnWrite(uint64_t address, bool precise_domain,
                           uint32_t intended, uint32_t stored) = 0;

  /// Called on every read with the value held in memory; the return value
  /// is what the program observes. Changes are transient: the stored value
  /// is not modified.
  virtual uint32_t OnRead(uint64_t address, bool precise_domain,
                          uint32_t value) = 0;
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_FAULT_HOOK_H_
