#include "approx/endurance.h"

#include <string_view>

#include "common/check.h"

namespace approxmem::approx {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view BankStateName(BankState state) {
  switch (state) {
    case BankState::kActive:
      return "ACTIVE";
    case BankState::kAged:
      return "AGED";
    case BankState::kRetired:
      return "RETIRED";
  }
  return "UNKNOWN";
}

std::string_view RetirementReasonName(RetirementReason reason) {
  switch (reason) {
    case RetirementReason::kBudgetExhausted:
      return "BUDGET_EXHAUSTED";
    case RetirementReason::kCanaryCondemned:
      return "CANARY_CONDEMNED";
  }
  return "UNKNOWN";
}

EnduranceLedger::EnduranceLedger(const EnduranceOptions& options)
    : options_(options) {
  APPROXMEM_CHECK(options_.banks > 0);
  APPROXMEM_CHECK(options_.bank_budget_pv > 0.0);
  APPROXMEM_CHECK(options_.age_multiplier > 0.0);
  for (size_t i = 1; i < options_.escalation.size(); ++i) {
    APPROXMEM_CHECK(options_.escalation[i - 1].wear_fraction <=
                    options_.escalation[i].wear_fraction);
  }
  banks_.resize(static_cast<size_t>(options_.banks));
  live_banks_ = options_.banks;
}

bool EnduranceLedger::ChargeBank(int bank, double pv) {
  APPROXMEM_CHECK(bank >= 0 && bank < total_banks());
  if (pv <= 0.0) return false;
  BankEndurance& state = banks_[static_cast<size_t>(bank)];
  if (state.state == BankState::kRetired) return false;
  state.consumed_pv += pv * options_.age_multiplier;
  const double fraction = state.consumed_pv / options_.bank_budget_pv;
  if (fraction >= 1.0) {
    Retire(bank, RetirementReason::kBudgetExhausted);
    return true;
  }
  int level = 0;
  for (const EscalationStep& step : options_.escalation) {
    if (fraction >= step.wear_fraction) ++level;
  }
  state.escalation_level = level;
  if (level > 0) state.state = BankState::kAged;
  return false;
}

bool EnduranceLedger::RecordQuarantine(int bank) {
  APPROXMEM_CHECK(bank >= 0 && bank < total_banks());
  BankEndurance& state = banks_[static_cast<size_t>(bank)];
  if (state.state == BankState::kRetired) return false;
  ++state.quarantines;
  if (options_.retire_after_quarantines > 0 &&
      state.quarantines >= options_.retire_after_quarantines) {
    Retire(bank, RetirementReason::kCanaryCondemned);
    return true;
  }
  return false;
}

void EnduranceLedger::Retire(int bank, RetirementReason reason) {
  BankEndurance& state = banks_[static_cast<size_t>(bank)];
  state.state = BankState::kRetired;
  state.escalation_level = static_cast<int>(options_.escalation.size());
  --live_banks_;
  RetirementEvent event;
  event.bank = bank;
  event.reason = reason;
  event.virtual_time = virtual_time_;
  event.consumed_pv = state.consumed_pv;
  event.quarantines = state.quarantines;
  retirements_.push_back(event);
}

double EnduranceLedger::ExtraWordErrorRate(int bank) const {
  APPROXMEM_CHECK(bank >= 0 && bank < total_banks());
  const BankEndurance& state = banks_[static_cast<size_t>(bank)];
  if (state.escalation_level <= 0) return 0.0;
  const size_t step = static_cast<size_t>(state.escalation_level) - 1;
  return options_.escalation[step].word_error_rate;
}

int EnduranceLedger::MaxLiveEscalationLevel() const {
  int level = 0;
  for (const BankEndurance& bank : banks_) {
    if (bank.state == BankState::kRetired) continue;
    if (bank.escalation_level > level) level = bank.escalation_level;
  }
  return level;
}

double EnduranceLedger::WearFraction(int bank) const {
  APPROXMEM_CHECK(bank >= 0 && bank < total_banks());
  return banks_[static_cast<size_t>(bank)].consumed_pv /
         options_.bank_budget_pv;
}

uint64_t EnduranceLedger::TimelineDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, retirements_.size());
  for (const RetirementEvent& event : retirements_) {
    h = FnvMix(h, static_cast<uint64_t>(event.bank));
    h = FnvMix(h, static_cast<uint64_t>(event.reason));
    h = FnvMix(h, event.virtual_time);
    // Wear is charged in a fixed serial order, so the double is bit-stable.
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(event.consumed_pv));
    __builtin_memcpy(&bits, &event.consumed_pv, sizeof(bits));
    h = FnvMix(h, bits);
    h = FnvMix(h, event.quarantines);
  }
  return h;
}

WearErrorHook::WearErrorHook(const EnduranceLedger* ledger,
                             MemoryFaultHook* inner)
    : ledger_(ledger), inner_(inner) {
  APPROXMEM_CHECK(ledger_ != nullptr);
}

void WearErrorHook::BeginJob(uint64_t ticket) {
  job_key_ = SplitMix64(ticket ^ ledger_->options().seed);
  draw_counter_ = 0;
}

uint32_t WearErrorHook::OnWrite(uint64_t address, bool precise_domain,
                                uint32_t intended, uint32_t stored) {
  if (inner_ != nullptr) {
    stored = inner_->OnWrite(address, precise_domain, intended, stored);
  }
  // Precise-domain writes never age-corrupt (see header): wear kills banks
  // through retirement, not through silent precise errors.
  if (precise_domain) return stored;
  const uint64_t lane = address / ledger_->options().bank_lane_bytes;
  if (lane >= static_cast<uint64_t>(ledger_->total_banks())) return stored;
  const double rate = ledger_->ExtraWordErrorRate(static_cast<int>(lane));
  if (rate <= 0.0) return stored;
  const uint64_t bits = SplitMix64(job_key_ ^ draw_counter_++);
  // Top 53 bits -> uniform double in [0, 1); low 5 bits pick the flipped
  // bit position when the draw lands under the escalated rate.
  const double draw =
      static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
  if (draw >= rate) return stored;
  ++injected_errors_;
  return stored ^ (1u << (bits & 31u));
}

uint32_t WearErrorHook::OnRead(uint64_t address, bool precise_domain,
                               uint32_t value) {
  if (inner_ != nullptr) {
    value = inner_->OnRead(address, precise_domain, value);
  }
  return value;
}

}  // namespace approxmem::approx
