// Abstraction over how a 32-bit word behaves when stored.
//
// A WriteModel decides (a) what value a write actually leaves in memory
// (error injection) and (b) what the write and read cost. Concrete models:
// precise PCM, approximate MLC PCM (fast calibrated path and exact
// Monte-Carlo path), and the Appendix-A spintronic bit-flip model.
#ifndef APPROXMEM_APPROX_WRITE_MODEL_H_
#define APPROXMEM_APPROX_WRITE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/random.h"

namespace approxmem::approx {

/// What one word write did.
struct WordWriteOutcome {
  /// The digital value subsequent reads will observe (sticky until the next
  /// write of the same word).
  uint32_t stored = 0;
  /// Cost of this write in the model's unit (ns or energy units).
  double cost = 0.0;
  /// Total program-and-verify iterations spent across the word's cells
  /// (wear/endurance proxy for PCM models; 0 for non-P&V technologies).
  double pv_iterations = 0.0;
};

/// Interface implemented by each memory technology / precision domain.
class WriteModel {
 public:
  virtual ~WriteModel() = default;

  /// Performs one word write of `intended`; may corrupt the stored value.
  virtual WordWriteOutcome Write(uint32_t intended, Rng& rng) = 0;

  /// Performs `count` word writes, filling `outcomes[0, count)`. The
  /// contract is bit-exactness: the outcomes and the final `rng` state are
  /// identical to calling Write() per word, in order, on the same stream.
  /// The default does exactly that; hot models override it with batched
  /// kernels (block uniform draws, table-driven cost sums) that preserve
  /// the per-word draw sequence.
  virtual void WriteBatch(const uint32_t* intended, size_t count, Rng& rng,
                          WordWriteOutcome* outcomes) {
    for (size_t i = 0; i < count; ++i) outcomes[i] = Write(intended[i], rng);
  }

  /// Cost of one word read in the model's unit.
  virtual double ReadCost() const = 0;

  /// Unit label for reports: "ns" or "energy".
  virtual std::string_view CostUnit() const = 0;

  /// True if writes never corrupt (precise domains).
  virtual bool IsPrecise() const = 0;

  /// True when costs depend on the byte address — e.g. a model routed
  /// through the banked-PCM simulator, where a write may stall behind a
  /// full bank queue and a read may hit a cache level. Arrays consult this
  /// once at construction: address-sensitive models get the *At overloads
  /// per access; flat models keep the cached-cost fast path.
  virtual bool AddressSensitive() const { return false; }

  /// Address-aware write; only called when AddressSensitive(). The default
  /// ignores the address.
  virtual WordWriteOutcome WriteAt(uint64_t /*address*/, uint32_t intended,
                                   Rng& rng) {
    return Write(intended, rng);
  }

  /// Address-aware read cost; only called when AddressSensitive().
  virtual double ReadCostAt(uint64_t /*address*/) { return ReadCost(); }
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_WRITE_MODEL_H_
