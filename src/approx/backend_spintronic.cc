// The "spintronic" backend: Appendix A approximate spintronic memory.
//
// Knob semantics: the AllocSpec knob is the per-bit write-error
// probability. The energy saving at a knob follows the paper's four
// operating points — knobs matching an operating point exactly reproduce
// it (bit for bit, including PaperSpintronicConfigs' energy constants);
// intermediate knobs interpolate the saving linearly in log10(error rate)
// between neighbouring points and clamp outside [1e-7, 1e-4]. That makes
// the knob continuous, so guard-band escalation (knob shrinking) moves
// along the technology's energy/error trade-off curve instead of dying on
// a four-point lookup.
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "approx/memory_backend.h"
#include "approx/spintronic.h"
#include "approx/write_model.h"

namespace approxmem::approx {
namespace {

/// Saving fraction at per-bit error probability `p` along the paper's
/// operating-point curve (log10-linear between points, clamped outside).
double SavingForBitErrorProb(double p) {
  const auto points = PaperSpintronicConfigs();
  if (p <= points.front().bit_error_prob) {
    return points.front().energy_saving_per_write;
  }
  if (p >= points.back().bit_error_prob) {
    return points.back().energy_saving_per_write;
  }
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    const double lo = points[i].bit_error_prob;
    const double hi = points[i + 1].bit_error_prob;
    if (p > hi) continue;
    const double alpha = (std::log10(p) - std::log10(lo)) /
                         (std::log10(hi) - std::log10(lo));
    return points[i].energy_saving_per_write +
           alpha * (points[i + 1].energy_saving_per_write -
                    points[i].energy_saving_per_write);
  }
  return points.back().energy_saving_per_write;
}

/// The operating point serving knob `p`: a paper point when `p` matches
/// one exactly, otherwise an interpolated configuration.
SpintronicConfig ConfigForKnob(double p) {
  for (const SpintronicConfig& config : PaperSpintronicConfigs()) {
    if (config.bit_error_prob == p) return config;
  }
  SpintronicConfig config;
  config.bit_error_prob = p;
  config.energy_saving_per_write = p > 0.0 ? SavingForBitErrorProb(p) : 0.0;
  return config;
}

class SpintronicBackend final : public MemoryBackend {
 public:
  explicit SpintronicBackend(const BackendContext& /*context*/) {}

  std::string_view name() const override { return kSpintronicBackendName; }
  std::string_view cost_unit() const override { return "energy"; }

  Status Validate(const AllocSpec& spec) const override {
    if (spec.domain == AllocSpec::Domain::kPrecise) return Status::Ok();
    return ConfigForKnob(spec.knob).Validate();
  }

  StatusOr<WriteModel*> ModelFor(const AllocSpec& spec) override {
    if (spec.domain == AllocSpec::Domain::kPrecise) {
      if (precise_model_ == nullptr) {
        precise_model_ = std::make_unique<PreciseSpintronicWriteModel>(
            SpintronicConfig{});
      }
      return precise_model_.get();
    }
    const SpintronicConfig config = ConfigForKnob(spec.knob);
    const Status status = config.Validate();
    if (!status.ok()) return status;
    for (auto& [knob, model] : approx_models_) {
      if (knob == spec.knob) return model.get();
    }
    approx_models_.emplace_back(
        spec.knob, std::make_unique<SpintronicWriteModel>(config));
    return approx_models_.back().second.get();
  }

  double ModelWordErrorRate(const AllocSpec& spec) override {
    if (spec.domain == AllocSpec::Domain::kPrecise) return 0.0;
    // One word write errs when any of its 32 independent bits flips.
    return 1.0 - std::pow(1.0 - spec.knob, 32.0);
  }

  double WriteCostRatio(double knob) override {
    const SpintronicConfig config = ConfigForKnob(knob);
    return config.ApproxWriteEnergy() / config.precise_write_energy;
  }

  /// The 33%-saving operating point — the paper's best for approx-refine.
  double default_approx_knob() const override { return 1e-5; }
  /// The most conservative paper operating point (5% saving, 1e-7/bit).
  double min_knob() const override { return 1e-7; }
  double precise_knob() const override { return 0.0; }

 private:
  std::unique_ptr<WriteModel> precise_model_;
  std::vector<std::pair<double, std::unique_ptr<WriteModel>>> approx_models_;
};

}  // namespace

namespace internal {

std::unique_ptr<MemoryBackend> MakeSpintronicBackend(
    const BackendContext& context) {
  return std::make_unique<SpintronicBackend>(context);
}

}  // namespace internal
}  // namespace approxmem::approx
