// The "mlc-pcm-banked" backend: MLC PCM write models with costs routed
// through the trace-driven mem::MemorySystem (Table 1 cache hierarchy in
// front of banked PCM with write queues).
//
// This closes the flat-cost vs bank-simulator split: error injection,
// #P accounting, and per-write service latency come from the same
// calibrated models as "mlc-pcm", while the *charged* costs become
// address-dependent — a read that hits L1 costs its L1 latency instead of
// the flat PCM read latency, and a write additionally pays any CPU stall
// it incurs behind a full bank write queue. All arrays of one ApproxMemory
// share one MemorySystem, so bank contention across arrays is modeled.
//
// Costs are charged incrementally per access rather than by replaying a
// trace afterwards: a write charges its PCM service latency plus the
// write-stall delta its posting caused; queued service time that drains
// later is background work the CPU never waits for, matching how the
// paper's simulator attributes write cost.
#include <memory>
#include <utility>
#include <vector>

#include "approx/memory_backend.h"
#include "approx/write_model.h"
#include "mem/memory_system.h"

namespace approxmem::approx {
namespace {

/// Wraps one flat-cost model; same stored values and #P, banked costs.
class BankedWriteModel final : public WriteModel {
 public:
  BankedWriteModel(WriteModel* inner, mem::MemorySystem* system)
      : inner_(inner), system_(system) {}

  WordWriteOutcome Write(uint32_t intended, Rng& rng) override {
    // Address-free fallback (never hit through ApproxArrayU32, which sees
    // AddressSensitive() and uses WriteAt): flat inner costs.
    return inner_->Write(intended, rng);
  }

  WordWriteOutcome WriteAt(uint64_t address, uint32_t intended,
                           Rng& rng) override {
    WordWriteOutcome outcome = inner_->Write(intended, rng);
    const double stall_before = system_->pcm().Stats().write_stall_ns;
    system_->Write(address, outcome.cost);
    outcome.cost += system_->pcm().Stats().write_stall_ns - stall_before;
    return outcome;
  }

  double ReadCost() const override { return inner_->ReadCost(); }
  double ReadCostAt(uint64_t address) override {
    return system_->Read(address);
  }
  bool AddressSensitive() const override { return true; }
  std::string_view CostUnit() const override { return inner_->CostUnit(); }
  bool IsPrecise() const override { return inner_->IsPrecise(); }

 private:
  WriteModel* inner_;
  mem::MemorySystem* system_;
};

class BankedPcmBackend final : public MemoryBackend {
 public:
  explicit BankedPcmBackend(const BackendContext& context)
      : inner_(internal::MakePcmBackend(context)),
        system_(std::make_unique<mem::MemorySystem>(
            mem::MemorySystem::PaperDefault())) {}

  std::string_view name() const override { return kBankedPcmBackendName; }
  std::string_view cost_unit() const override { return "ns"; }

  Status Validate(const AllocSpec& spec) const override {
    return inner_->Validate(spec);
  }

  StatusOr<WriteModel*> ModelFor(const AllocSpec& spec) override {
    StatusOr<WriteModel*> flat = inner_->ModelFor(spec);
    if (!flat.ok()) return flat.status();
    for (auto& [inner_model, banked] : models_) {
      if (inner_model == *flat) return banked.get();
    }
    models_.emplace_back(
        *flat, std::make_unique<BankedWriteModel>(*flat, system_.get()));
    return models_.back().second.get();
  }

  double ModelWordErrorRate(const AllocSpec& spec) override {
    return inner_->ModelWordErrorRate(spec);
  }

  double WriteCostRatio(double knob) override {
    return inner_->WriteCostRatio(knob);
  }

  double default_approx_knob() const override {
    return inner_->default_approx_knob();
  }
  double min_knob() const override { return inner_->min_knob(); }
  double precise_knob() const override { return inner_->precise_knob(); }

  mem::MemorySystem* cost_system() override { return system_.get(); }

 private:
  std::unique_ptr<MemoryBackend> inner_;
  std::unique_ptr<mem::MemorySystem> system_;
  // One banked wrapper per distinct inner model (inner caches per spec).
  std::vector<std::pair<WriteModel*, std::unique_ptr<WriteModel>>> models_;
};

}  // namespace

namespace internal {

std::unique_ptr<MemoryBackend> MakeBankedPcmBackend(
    const BackendContext& context) {
  return std::make_unique<BankedPcmBackend>(context);
}

}  // namespace internal
}  // namespace approxmem::approx
