#include "approx/memory_backend.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace approxmem::approx {
namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::pair<std::string, BackendFactory>> entries;
};

Registry& GetRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    // Built-ins are wired here (not via per-TU static initializers) so a
    // static-library link can never dead-strip them.
    r->entries.emplace_back(std::string(kPcmBackendName),
                            &internal::MakePcmBackend);
    r->entries.emplace_back(std::string(kBankedPcmBackendName),
                            &internal::MakeBankedPcmBackend);
    r->entries.emplace_back(std::string(kSpintronicBackendName),
                            &internal::MakeSpintronicBackend);
    r->entries.emplace_back(std::string(kDramPreciseBackendName),
                            &internal::MakeDramPreciseBackend);
    return r;
  }();
  return *registry;
}

BackendFactory FindFactory(Registry& registry, std::string_view name) {
  for (const auto& [existing, factory] : registry.entries) {
    if (existing == name) return factory;
  }
  return nullptr;
}

}  // namespace

bool RegisterMemoryBackend(std::string_view name, BackendFactory factory) {
  if (name.empty() || factory == nullptr) return false;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (FindFactory(registry, name) != nullptr) return false;
  registry.entries.emplace_back(std::string(name), factory);
  return true;
}

std::vector<std::string> RegisteredBackendNames() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.entries.size());
  for (const auto& [name, factory] : registry.entries) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

bool IsRegisteredBackend(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return FindFactory(registry, name) != nullptr;
}

StatusOr<std::unique_ptr<MemoryBackend>> CreateMemoryBackend(
    std::string_view name, const BackendContext& context) {
  BackendFactory factory = nullptr;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    factory = FindFactory(registry, name);
  }
  if (factory == nullptr) {
    std::string known;
    for (const std::string& registered : RegisteredBackendNames()) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    return Status::InvalidArgument("unknown memory backend '" +
                                   std::string(name) +
                                   "'; registered backends: " + known);
  }
  return factory(context);
}

}  // namespace approxmem::approx
