// Online substrate health monitoring: canary probing and region quarantine.
//
// The calibrated error model tells the engine how often approximate writes
// *should* err; it says nothing about a substrate that misbehaves beyond
// the model (a drifting bank, a stuck cell region — modeled here by fault
// injection). The HealthMonitor closes that gap at allocation time: before
// ApproxMemory hands out an array, a few sentinel (canary) words at the
// head and the tail of the candidate address region are written through
// the region's own write model — and any attached fault hook — then read
// back. The mismatch rate is an online estimate of the region's *observed*
// raw word-error rate. When it exceeds the calibrated model rate by a
// configurable factor, the region is quarantined: recorded as degraded,
// excluded from all future allocations (the allocator never revisits it),
// and the allocation is retried further along the address space with an
// exponentially growing stride so even large bad regions are escaped in
// O(log size) probes.
//
// All canary traffic is charged to an explicit ledger (HealthStats::
// canary_costs) so resilient executions can keep their cumulative cost
// accounting honest. Probing is deterministic: canary patterns are fixed
// functions of the canary index, and each probe array draws its RNG stream
// from the owning ApproxMemory exactly like a data array would.
#ifndef APPROXMEM_APPROX_HEALTH_MONITOR_H_
#define APPROXMEM_APPROX_HEALTH_MONITOR_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "approx/approx_array.h"
#include "approx/memory_stats.h"

namespace approxmem::approx {

/// Configuration of allocation-time canary probing. Disabled by default:
/// monitoring consumes RNG substreams and adds (tiny but nonzero) probe
/// costs, so opting in keeps unmonitored experiments bit-identical to the
/// paper's setup.
struct HealthOptions {
  bool enabled = false;
  /// Canary words written and read back per probe site; every allocation
  /// probes two sites (head and tail of the candidate region).
  uint32_t canary_words = 8;
  /// Quarantine when the observed word-error rate exceeds
  /// quarantine_factor * max(model word-error rate, error_floor).
  double quarantine_factor = 8.0;
  /// Absolute rate floor so near-zero model rates (precise memory, tight
  /// T) do not quarantine a region over one unlucky canary.
  double error_floor = 0.02;
  /// Candidate regions tried before giving up and accepting the last one
  /// (an allocation must always succeed; a persistently unhealthy address
  /// space degrades to model-blind operation rather than failing).
  int max_alloc_retries = 16;
};

/// Monitoring counters plus the probe-traffic cost ledger.
struct HealthStats {
  uint64_t canary_writes = 0;
  uint64_t canary_errors = 0;
  uint64_t regions_probed = 0;
  uint64_t regions_quarantined = 0;
  uint64_t allocation_retries = 0;
  /// Honest accounting of all canary reads/writes (same units as the data
  /// arrays' ledgers). degraded_regions mirrors regions_quarantined so the
  /// marker propagates into aggregated MemoryStats.
  MemoryStats canary_costs;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthOptions& options) : options_(options) {}

  bool enabled() const { return options_.enabled; }
  const HealthOptions& options() const { return options_; }
  const HealthStats& stats() const { return stats_; }

  /// Writes deterministic canary patterns into every slot of `canaries`
  /// (a scratch array the caller allocated over the candidate region),
  /// reads them back, and returns the number of mismatching words. Probe
  /// traffic is accumulated into stats().canary_costs.
  uint64_t ProbeSite(ApproxArrayU32& canaries);

  /// Whether `observed_rate` stays within the quarantine threshold for a
  /// region whose calibrated model word-error rate is `model_rate`.
  bool WithinThreshold(double observed_rate, double model_rate) const {
    const double reference =
        model_rate > options_.error_floor ? model_rate : options_.error_floor;
    return observed_rate <= options_.quarantine_factor * reference;
  }

  /// Records [base, base + span) as degraded and excluded from allocation.
  void RecordQuarantine(uint64_t base, uint64_t span);
  void RecordRetry() { ++stats_.allocation_retries; }
  void RecordRegionProbed() { ++stats_.regions_probed; }

  /// Whether [base, base + span) intersects any quarantined region.
  /// O(log q) against the merged interval index — allocation-time checks
  /// stay cheap when retirement grows the list into the hundreds.
  bool IsQuarantined(uint64_t base, uint64_t span) const;
  const std::vector<std::pair<uint64_t, uint64_t>>& quarantined_regions()
      const {
    return quarantined_;
  }

 private:
  HealthOptions options_;
  HealthStats stats_;
  /// Quarantined [base, base + span) regions, in quarantine order (the
  /// diagnostic timeline; may contain overlaps as recorded).
  std::vector<std::pair<uint64_t, uint64_t>> quarantined_;
  /// Interval index for IsQuarantined: base -> end, disjoint and sorted
  /// (overlapping or adjacent inserts are merged).
  std::map<uint64_t, uint64_t> interval_index_;
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_HEALTH_MONITOR_H_
