// Pluggable memory-technology backends.
//
// The paper evaluates the same sorts on two device technologies (MLC PCM,
// Sections 2-4; approximate spintronic memory, Appendix A). A MemoryBackend
// packages everything the allocation facade needs to know about one
// technology — how to build precise and approximate WriteModels, what the
// calibrated word-error rate is (for the health monitor's quarantine
// threshold), what unit costs are reported in, and how the technology's
// approximation knob behaves — behind one interface keyed by a
// technology-agnostic AllocSpec. ApproxMemory holds exactly one backend and
// never mentions a device name; adding a new device model (memristive,
// DRAM-with-reduced-refresh, ...) is one new backend file plus a registry
// entry.
//
// Built-in backends:
//   mlc-pcm         Monte-Carlo-calibrated MLC PCM (the paper's Table 1/2
//                   substrate); knob = target-range half-width T; unit ns.
//   mlc-pcm-banked  Same write models, but costs flow through the trace-
//                   driven mem::MemorySystem (cache hierarchy + banked PCM
//                   with write queues), closing the flat-cost vs
//                   bank-simulator split; knob = T; unit ns.
//   spintronic      Appendix A bit-flip model; knob = per-bit write-error
//                   probability (energy saving follows the paper's
//                   operating-point curve); unit energy.
//   dram-precise    Error-free constant-latency baseline; the knob is
//                   ignored; unit ns.
#ifndef APPROXMEM_APPROX_MEMORY_BACKEND_H_
#define APPROXMEM_APPROX_MEMORY_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "approx/write_model.h"
#include "common/status.h"
#include "mlc/calibration.h"
#include "mlc/mlc_config.h"

namespace approxmem::mem {
class MemorySystem;
}  // namespace approxmem::mem

namespace approxmem::approx {

/// Simulation fidelity of approximate writes (honoured by backends whose
/// device model has both a calibrated fast path and a reference path).
enum class SimulationMode {
  /// Samples errors and #P from Monte-Carlo-calibrated tables (default).
  kFast,
  /// Runs the full program-and-verify loop per cell (slow, reference).
  kExact,
};

/// Technology-agnostic description of one allocation request.
struct AllocSpec {
  enum class Domain : uint8_t {
    /// Writes never corrupt; cost is the technology's precise write cost.
    kPrecise,
    /// Writes may corrupt; behaviour set by the technology knob.
    kApprox,
  };

  Domain domain = Domain::kApprox;
  /// The technology's approximation knob: target-range half-width T for
  /// MLC PCM backends, per-bit write-error probability for spintronic.
  /// Ignored for kPrecise specs and by precise-only backends.
  double knob = 0.0;
  /// Number of 32-bit words the allocation will hold.
  size_t n = 0;

  static AllocSpec Precise(size_t n) {
    return AllocSpec{Domain::kPrecise, 0.0, n};
  }
  static AllocSpec Approx(double knob, size_t n) {
    return AllocSpec{Domain::kApprox, knob, n};
  }
};

/// Everything a backend may draw on at construction time. The calibration
/// cache is shared with the owning ApproxMemory (and possibly a whole
/// parallel sweep), so each T still calibrates exactly once per process.
struct BackendContext {
  mlc::MlcConfig mlc;
  SimulationMode mode = SimulationMode::kFast;
  std::shared_ptr<mlc::CalibrationCache> calibration;
  /// Used only when `calibration` is null and the backend needs one.
  uint64_t calibration_trials = 200000;
  uint64_t calibration_seed = 0xca11b7a7e5eedULL;
};

/// One memory technology: write-model factory plus the technology-specific
/// constants the engine, resilience ladder, and health monitor need.
///
/// Implementations own every WriteModel they hand out and reuse models
/// across allocations with the same spec parameters; a model must stay
/// valid for the backend's lifetime (arrays hold bare pointers).
class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  /// Registry name, e.g. "mlc-pcm".
  virtual std::string_view name() const = 0;

  /// Unit label for cost ledgers: "ns" or "energy".
  virtual std::string_view cost_unit() const = 0;

  /// Whether this technology can serve `spec` (e.g. the PCM backend
  /// rejects out-of-range T).
  virtual Status Validate(const AllocSpec& spec) const = 0;

  /// The write model serving `spec`; owned by the backend.
  virtual StatusOr<WriteModel*> ModelFor(const AllocSpec& spec) = 0;

  /// Calibrated probability that one word write of `spec` stores a wrong
  /// value — the health monitor's quarantine reference rate. Zero for
  /// precise specs.
  virtual double ModelWordErrorRate(const AllocSpec& spec) = 0;

  /// Approximate-to-precise per-write cost ratio at `knob`: the paper's
  /// p(t) for PCM, the energy ratio for spintronic, 1.0 for precise-only
  /// backends. Feeds the Equation 4 write-reduction prediction.
  virtual double WriteCostRatio(double knob) = 0;

  /// The technology's sweet-spot knob (CLI/bench default), e.g. T = 0.055
  /// for MLC PCM.
  virtual double default_approx_knob() const = 0;

  /// Tightest useful knob — the floor of a guard-band escalation ladder.
  virtual double min_knob() const = 0;

  /// Knob value reported for fully precise attempts (diagnostics only).
  virtual double precise_knob() const = 0;

  /// The trace-driven cost substrate, when this backend routes costs
  /// through one (null for flat-cost backends).
  virtual mem::MemorySystem* cost_system() { return nullptr; }
};

/// Factory invoked once per ApproxMemory instance.
using BackendFactory =
    std::unique_ptr<MemoryBackend> (*)(const BackendContext& context);

/// Registers a backend under `name`; returns false (and changes nothing)
/// when the name is already taken. Safe to call from static initializers
/// of plug-in translation units:
///   const bool registered =
///       RegisterMemoryBackend("memristive", MakeMemristiveBackend);
bool RegisterMemoryBackend(std::string_view name, BackendFactory factory);

/// Names of every registered backend, sorted.
std::vector<std::string> RegisteredBackendNames();

bool IsRegisteredBackend(std::string_view name);

/// Instantiates the backend registered under `name`. Unknown names return
/// NotFound listing the registered backends — never a crash.
StatusOr<std::unique_ptr<MemoryBackend>> CreateMemoryBackend(
    std::string_view name, const BackendContext& context);

/// Registry names of the built-in backends.
inline constexpr std::string_view kPcmBackendName = "mlc-pcm";
inline constexpr std::string_view kBankedPcmBackendName = "mlc-pcm-banked";
inline constexpr std::string_view kSpintronicBackendName = "spintronic";
inline constexpr std::string_view kDramPreciseBackendName = "dram-precise";

namespace internal {
// Built-in factories (one per backend_*.cc file), wired into the registry
// by memory_backend.cc so a static library build cannot dead-strip them.
std::unique_ptr<MemoryBackend> MakePcmBackend(const BackendContext& context);
std::unique_ptr<MemoryBackend> MakeBankedPcmBackend(
    const BackendContext& context);
std::unique_ptr<MemoryBackend> MakeSpintronicBackend(
    const BackendContext& context);
std::unique_ptr<MemoryBackend> MakeDramPreciseBackend(
    const BackendContext& context);
}  // namespace internal

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_MEMORY_BACKEND_H_
