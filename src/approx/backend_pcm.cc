// The "mlc-pcm" backend: Monte-Carlo-calibrated MLC PCM (Sections 2-4).
//
// Knob semantics: the AllocSpec knob is the target-range half-width T.
// Approximate write latency scales with the calibrated avg #P relative to
// the precise configuration, anchored at the Table 1 precise write latency.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "approx/memory_backend.h"
#include "approx/write_model.h"
#include "common/check.h"
#include "mlc/calibration.h"
#include "mlc/cell.h"
#include "mlc/word_codec.h"

namespace approxmem::approx {
namespace {

/// Precise PCM: identity stores at the Table 1 write latency (1 us).
class PrecisePcmWriteModel final : public WriteModel {
 public:
  PrecisePcmWriteModel(const mlc::MlcConfig& config, double precise_avg_pv)
      : write_latency_ns_(config.precise_write_latency_ns),
        read_latency_ns_(config.read_latency_ns),
        pv_per_word_(precise_avg_pv * config.CellsPerWord()) {}

  WordWriteOutcome Write(uint32_t intended, Rng& /*rng*/) override {
    return WordWriteOutcome{intended, write_latency_ns_, pv_per_word_};
  }
  double ReadCost() const override { return read_latency_ns_; }
  std::string_view CostUnit() const override { return "ns"; }
  bool IsPrecise() const override { return true; }

 private:
  double write_latency_ns_;
  double read_latency_ns_;
  double pv_per_word_;
};

/// Approximate PCM, exact path: full per-cell program-and-verify loops.
class ExactPcmWriteModel final : public WriteModel {
 public:
  ExactPcmWriteModel(const mlc::MlcConfig& config, double ns_per_iteration)
      : config_(config), ns_per_iteration_(ns_per_iteration) {}

  WordWriteOutcome Write(uint32_t intended, Rng& rng) override {
    const int cells = config_.CellsPerWord();
    const mlc::WordLevels levels = mlc::EncodeWord(intended, config_);
    mlc::WordLevels read_levels{};
    uint64_t iterations = 0;
    for (int c = 0; c < cells; ++c) {
      const mlc::CellWriteResult w =
          mlc::WriteCell(levels[static_cast<size_t>(c)], config_, rng);
      iterations += w.iterations;
      read_levels[static_cast<size_t>(c)] =
          static_cast<uint8_t>(mlc::ReadCell(w.analog, config_, rng));
    }
    WordWriteOutcome outcome;
    outcome.stored = mlc::DecodeWord(read_levels, config_);
    // Word write latency scales with the mean per-cell #P (cells are
    // programmed in parallel but P&V energy/latency follows avg #P; this is
    // the paper's p(t) convention).
    outcome.cost = static_cast<double>(iterations) / cells *
                   ns_per_iteration_;
    outcome.pv_iterations = static_cast<double>(iterations);
    return outcome;
  }
  double ReadCost() const override { return config_.read_latency_ns; }
  std::string_view CostUnit() const override { return "ns"; }
  bool IsPrecise() const override { return false; }

 private:
  mlc::MlcConfig config_;
  double ns_per_iteration_;
};

/// Approximate PCM, fast path: calibrated per-level tables, batched.
///
/// Write() is literally WriteBatch() over one word, so the scalar and
/// batched paths cannot drift apart: clean-word costs come from the
/// sampler's shared table kernel and error uniforms are drawn through the
/// same block scan, whose draw sequence matches a per-word loop exactly.
class FastPcmWriteModel final : public WriteModel {
 public:
  FastPcmWriteModel(const mlc::CellCalibration& calibration,
                    double ns_per_iteration)
      : calibration_(calibration),
        config_(calibration.config()),
        sampler_(calibration),
        ns_per_iteration_(ns_per_iteration) {}

  WordWriteOutcome Write(uint32_t intended, Rng& rng) override {
    WordWriteOutcome outcome;
    WriteBatch(&intended, 1, rng, &outcome);
    return outcome;
  }

  void WriteBatch(const uint32_t* intended, size_t count, Rng& rng,
                  WordWriteOutcome* outcomes) override {
    const int cells = config_.CellsPerWord();
    constexpr size_t kChunkWords = 64;
    mlc::BatchErrorSampler::WordStats stats[kChunkWords];
    double word_error[kChunkWords];
    for (size_t done = 0; done < count; done += kChunkWords) {
      const size_t chunk = std::min(count - done, kChunkWords);
      sampler_.StatsForWords(intended + done, chunk, stats);
      for (size_t w = 0; w < chunk; ++w) {
        outcomes[done + w].stored = intended[done + w];
        outcomes[done + w].cost = stats[w].pv_sum / cells * ns_per_iteration_;
        outcomes[done + w].pv_iterations = stats[w].pv_sum;
        word_error[w] = 1.0 - stats[w].no_error;
      }
      // One uniform per (erring-capable) word, pulled in blocks; corrupted
      // words fall back to the live per-cell conditional sampler.
      size_t cursor = 0;
      while (cursor < chunk) {
        const size_t hit = mlc::BatchErrorSampler::FirstCorrupted(
            word_error + cursor, chunk - cursor, rng);
        if (hit == chunk - cursor) break;
        const size_t w = cursor + hit;
        const mlc::WordLevels levels =
            mlc::EncodeWord(intended[done + w], config_);
        outcomes[done + w].stored =
            SampleCorruptedWord(levels, stats[w].no_error, rng);
        cursor = w + 1;
      }
    }
  }

  double ReadCost() const override { return config_.read_latency_ns; }
  std::string_view CostUnit() const override { return "ns"; }
  bool IsPrecise() const override { return false; }

 private:
  // Samples the stored word conditioned on at least one cell erring.
  uint32_t SampleCorruptedWord(const mlc::WordLevels& levels,
                               double no_error_all, Rng& rng) {
    const int cells = config_.CellsPerWord();
    mlc::WordLevels read_levels = levels;
    bool erred = false;
    double no_error_suffix = no_error_all;
    for (int c = 0; c < cells; ++c) {
      const int level = levels[static_cast<size_t>(c)];
      const double stay = 1.0 - calibration_.ErrorProbForLevel(level);
      double err_prob = 1.0 - stay;
      if (!erred) {
        const double at_least_one = 1.0 - no_error_suffix;
        err_prob = at_least_one > 0.0 ? err_prob / at_least_one : 1.0;
        if (stay > 0.0) no_error_suffix /= stay;
      }
      if (rng.UniformDouble() < err_prob) {
        read_levels[static_cast<size_t>(c)] =
            static_cast<uint8_t>(SampleWrongLevel(level, rng));
        erred = true;
      }
    }
    if (!erred) {
      // Numerical corner: force an error on a random cell.
      const int c = static_cast<int>(rng.UniformInt(cells));
      read_levels[static_cast<size_t>(c)] = static_cast<uint8_t>(
          SampleWrongLevel(levels[static_cast<size_t>(c)], rng));
    }
    return mlc::DecodeWord(read_levels, config_);
  }

  // Samples a read level != written, from the calibrated transitions.
  int SampleWrongLevel(int written, Rng& rng) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int read = calibration_.SampleReadLevel(written, rng);
      if (read != written) return read;
    }
    // Error mass is overwhelmingly on adjacent levels; drift is upward.
    return written + 1 < config_.levels ? written + 1 : written - 1;
  }

  const mlc::CellCalibration& calibration_;
  mlc::MlcConfig config_;
  mlc::BatchErrorSampler sampler_;
  double ns_per_iteration_;
};

class PcmBackend final : public MemoryBackend {
 public:
  explicit PcmBackend(const BackendContext& context)
      : mlc_(context.mlc),
        mode_(context.mode),
        calibration_(context.calibration
                         ? context.calibration
                         : std::make_shared<mlc::CalibrationCache>(
                               context.mlc.WithT(context.mlc.precise_t_width),
                               context.calibration_trials,
                               context.calibration_seed)) {
    APPROXMEM_CHECK_OK(mlc_.WithT(mlc_.precise_t_width).Validate());
  }

  std::string_view name() const override { return kPcmBackendName; }
  std::string_view cost_unit() const override { return "ns"; }

  Status Validate(const AllocSpec& spec) const override {
    if (spec.domain == AllocSpec::Domain::kPrecise) return Status::Ok();
    return mlc_.WithT(spec.knob).Validate();
  }

  StatusOr<WriteModel*> ModelFor(const AllocSpec& spec) override {
    if (spec.domain == AllocSpec::Domain::kPrecise) return PreciseModel();
    const Status status = mlc_.WithT(spec.knob).Validate();
    if (!status.ok()) return status;
    return ApproxModelForT(spec.knob);
  }

  double ModelWordErrorRate(const AllocSpec& spec) override {
    if (spec.domain == AllocSpec::Domain::kPrecise) return 0.0;
    return calibration_->ForT(spec.knob).WordErrorRate(mlc_.CellsPerWord());
  }

  double WriteCostRatio(double knob) override {
    return calibration_->PvRatio(knob);
  }

  /// The paper's sweet spot for approx-refine (Figure 9).
  double default_approx_knob() const override { return 0.055; }
  /// Tightening T to the precise half-width makes approximate writes as
  /// safe (and as slow) as precise ones — the ladder's floor.
  double min_knob() const override { return mlc_.precise_t_width; }
  double precise_knob() const override { return mlc_.precise_t_width; }

 private:
  WriteModel* PreciseModel() {
    if (precise_model_ == nullptr) {
      const double precise_avg_pv =
          calibration_->ForT(mlc_.precise_t_width).AvgPv();
      precise_model_ =
          std::make_unique<PrecisePcmWriteModel>(mlc_, precise_avg_pv);
    }
    return precise_model_.get();
  }

  WriteModel* ApproxModelForT(double t) {
    for (auto& [existing_t, model] : approx_models_) {
      if (existing_t == t) return model.get();
    }
    const mlc::CellCalibration& calib = calibration_->ForT(t);
    const double precise_pv =
        calibration_->ForT(mlc_.precise_t_width).AvgPv();
    const double ns_per_iteration =
        mlc_.precise_write_latency_ns / precise_pv;
    std::unique_ptr<WriteModel> model;
    if (mode_ == SimulationMode::kExact) {
      model = std::make_unique<ExactPcmWriteModel>(mlc_.WithT(t),
                                                   ns_per_iteration);
    } else {
      model = std::make_unique<FastPcmWriteModel>(calib, ns_per_iteration);
    }
    approx_models_.emplace_back(t, std::move(model));
    return approx_models_.back().second.get();
  }

  mlc::MlcConfig mlc_;
  SimulationMode mode_;
  std::shared_ptr<mlc::CalibrationCache> calibration_;
  std::unique_ptr<WriteModel> precise_model_;
  std::vector<std::pair<double, std::unique_ptr<WriteModel>>> approx_models_;
};

}  // namespace

namespace internal {

std::unique_ptr<MemoryBackend> MakePcmBackend(const BackendContext& context) {
  return std::make_unique<PcmBackend>(context);
}

}  // namespace internal
}  // namespace approxmem::approx
