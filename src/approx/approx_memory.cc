#include "approx/approx_memory.h"

#include <cmath>

#include "common/check.h"
#include "mlc/cell.h"
#include "mlc/word_codec.h"

namespace approxmem::approx {
namespace {

/// Precise PCM: identity stores at the Table 1 write latency (1 us).
class PrecisePcmWriteModel final : public WriteModel {
 public:
  PrecisePcmWriteModel(const mlc::MlcConfig& config, double precise_avg_pv)
      : write_latency_ns_(config.precise_write_latency_ns),
        read_latency_ns_(config.read_latency_ns),
        pv_per_word_(precise_avg_pv * config.CellsPerWord()) {}

  WordWriteOutcome Write(uint32_t intended, Rng& /*rng*/) override {
    return WordWriteOutcome{intended, write_latency_ns_, pv_per_word_};
  }
  double ReadCost() const override { return read_latency_ns_; }
  std::string_view CostUnit() const override { return "ns"; }
  bool IsPrecise() const override { return true; }

 private:
  double write_latency_ns_;
  double read_latency_ns_;
  double pv_per_word_;
};

/// Approximate PCM, exact path: full per-cell program-and-verify loops.
class ExactPcmWriteModel final : public WriteModel {
 public:
  ExactPcmWriteModel(const mlc::MlcConfig& config, double ns_per_iteration)
      : config_(config), ns_per_iteration_(ns_per_iteration) {}

  WordWriteOutcome Write(uint32_t intended, Rng& rng) override {
    const int cells = config_.CellsPerWord();
    const mlc::WordLevels levels = mlc::EncodeWord(intended, config_);
    mlc::WordLevels read_levels{};
    uint64_t iterations = 0;
    for (int c = 0; c < cells; ++c) {
      const mlc::CellWriteResult w =
          mlc::WriteCell(levels[static_cast<size_t>(c)], config_, rng);
      iterations += w.iterations;
      read_levels[static_cast<size_t>(c)] =
          static_cast<uint8_t>(mlc::ReadCell(w.analog, config_, rng));
    }
    WordWriteOutcome outcome;
    outcome.stored = mlc::DecodeWord(read_levels, config_);
    // Word write latency scales with the mean per-cell #P (cells are
    // programmed in parallel but P&V energy/latency follows avg #P; this is
    // the paper's p(t) convention).
    outcome.cost = static_cast<double>(iterations) / cells *
                   ns_per_iteration_;
    outcome.pv_iterations = static_cast<double>(iterations);
    return outcome;
  }
  double ReadCost() const override { return config_.read_latency_ns; }
  std::string_view CostUnit() const override { return "ns"; }
  bool IsPrecise() const override { return false; }

 private:
  mlc::MlcConfig config_;
  double ns_per_iteration_;
};

/// Approximate PCM, fast path: calibrated per-level tables.
class FastPcmWriteModel final : public WriteModel {
 public:
  FastPcmWriteModel(const mlc::CellCalibration& calibration,
                    double ns_per_iteration)
      : calibration_(calibration),
        config_(calibration.config()),
        ns_per_iteration_(ns_per_iteration) {
    const int levels = config_.levels;
    stay_prob_.resize(static_cast<size_t>(levels));
    avg_pv_.resize(static_cast<size_t>(levels));
    for (int l = 0; l < levels; ++l) {
      stay_prob_[static_cast<size_t>(l)] =
          1.0 - calibration.ErrorProbForLevel(l);
      avg_pv_[static_cast<size_t>(l)] = calibration.AvgPvForLevel(l);
    }
  }

  WordWriteOutcome Write(uint32_t intended, Rng& rng) override {
    const int cells = config_.CellsPerWord();
    const mlc::WordLevels levels = mlc::EncodeWord(intended, config_);

    double pv_sum = 0.0;
    double no_error = 1.0;
    for (int c = 0; c < cells; ++c) {
      const size_t level = levels[static_cast<size_t>(c)];
      pv_sum += avg_pv_[level];
      no_error *= stay_prob_[level];
    }

    WordWriteOutcome outcome;
    outcome.cost = pv_sum / cells * ns_per_iteration_;
    outcome.pv_iterations = pv_sum;
    outcome.stored = intended;
    const double word_error = 1.0 - no_error;
    if (word_error <= 0.0 || rng.UniformDouble() >= word_error) {
      return outcome;
    }
    outcome.stored = SampleCorruptedWord(levels, no_error, rng);
    return outcome;
  }

  double ReadCost() const override { return config_.read_latency_ns; }
  std::string_view CostUnit() const override { return "ns"; }
  bool IsPrecise() const override { return false; }

 private:
  // Samples the stored word conditioned on at least one cell erring.
  uint32_t SampleCorruptedWord(const mlc::WordLevels& levels,
                               double no_error_all, Rng& rng) {
    const int cells = config_.CellsPerWord();
    mlc::WordLevels read_levels = levels;
    bool erred = false;
    double no_error_suffix = no_error_all;
    for (int c = 0; c < cells; ++c) {
      const int level = levels[static_cast<size_t>(c)];
      const double stay = stay_prob_[static_cast<size_t>(level)];
      double err_prob = 1.0 - stay;
      if (!erred) {
        const double at_least_one = 1.0 - no_error_suffix;
        err_prob = at_least_one > 0.0 ? err_prob / at_least_one : 1.0;
        if (stay > 0.0) no_error_suffix /= stay;
      }
      if (rng.UniformDouble() < err_prob) {
        read_levels[static_cast<size_t>(c)] =
            static_cast<uint8_t>(SampleWrongLevel(level, rng));
        erred = true;
      }
    }
    if (!erred) {
      // Numerical corner: force an error on a random cell.
      const int c = static_cast<int>(rng.UniformInt(cells));
      read_levels[static_cast<size_t>(c)] = static_cast<uint8_t>(
          SampleWrongLevel(levels[static_cast<size_t>(c)], rng));
    }
    return mlc::DecodeWord(read_levels, config_);
  }

  // Samples a read level != written, from the calibrated transitions.
  int SampleWrongLevel(int written, Rng& rng) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int read = calibration_.SampleReadLevel(written, rng);
      if (read != written) return read;
    }
    // Error mass is overwhelmingly on adjacent levels; drift is upward.
    return written + 1 < config_.levels ? written + 1 : written - 1;
  }

  const mlc::CellCalibration& calibration_;
  mlc::MlcConfig config_;
  double ns_per_iteration_;
  std::vector<double> stay_prob_;
  std::vector<double> avg_pv_;
};

}  // namespace

ApproxMemory::ApproxMemory(const Options& options)
    : options_(options),
      calibration_(options.shared_calibration
                       ? options.shared_calibration
                       : std::make_shared<mlc::CalibrationCache>(
                             options.mlc.WithT(options.mlc.precise_t_width),
                             options.calibration_trials,
                             /*seed=*/options.seed ^ 0xca11b7a7e5eedULL)),
      rng_(options.seed),
      health_(options.health) {
  APPROXMEM_CHECK_OK(options.mlc.WithT(options.mlc.precise_t_width)
                         .Validate());
  const double precise_avg_pv =
      calibration_->ForT(options.mlc.precise_t_width).AvgPv();
  precise_model_ =
      std::make_unique<PrecisePcmWriteModel>(options.mlc, precise_avg_pv);
  precise_spintronic_model_ =
      std::make_unique<PreciseSpintronicWriteModel>(SpintronicConfig{});
}

WriteModel* ApproxMemory::PcmModelForT(double t) {
  for (auto& [existing_t, model] : pcm_models_) {
    if (existing_t == t) return model.get();
  }
  const mlc::CellCalibration& calib = calibration_->ForT(t);
  const double precise_pv =
      calibration_->ForT(options_.mlc.precise_t_width).AvgPv();
  const double ns_per_iteration =
      options_.mlc.precise_write_latency_ns / precise_pv;
  std::unique_ptr<WriteModel> model;
  if (options_.mode == SimulationMode::kExact) {
    model = std::make_unique<ExactPcmWriteModel>(options_.mlc.WithT(t),
                                                 ns_per_iteration);
  } else {
    model = std::make_unique<FastPcmWriteModel>(calib, ns_per_iteration);
  }
  pcm_models_.emplace_back(t, std::move(model));
  return pcm_models_.back().second.get();
}

ApproxArrayU32 ApproxMemory::AllocateArray(size_t n, WriteModel* model,
                                           double model_word_error_rate) {
  const uint64_t span = ((n * 4 + 4095) / 4096 + 1) * 4096;
  const auto make_array = [&](uint64_t base) {
    return ApproxArrayU32(n, model, rng_.Split(), options_.trace, base,
                          options_.sequential_write_discount,
                          options_.fault_hook);
  };
  if (!health_.enabled()) {
    const uint64_t base = next_base_address_;
    next_base_address_ += span;
    return make_array(base);
  }
  // Canary-probe candidate regions; skip quarantined ones with a stride
  // that doubles per consecutive failure so large degraded regions are
  // escaped in O(log size) probes.
  const uint32_t words = health_.options().canary_words;
  for (int attempt = 0;; ++attempt) {
    const uint64_t base = next_base_address_;
    health_.RecordRegionProbed();
    // Sentinels interleave with the allocation: `words` canary words at the
    // region head (sharing the data array's first addresses) and at the
    // tail of the region's last page. Probe costs land in the monitor's own
    // ledger, never in the workload's.
    const uint64_t tail_base = base + span - uint64_t{words} * 4u;
    ApproxArrayU32 head(words, model, rng_.Split(), /*trace=*/nullptr, base,
                        options_.sequential_write_discount,
                        options_.fault_hook);
    ApproxArrayU32 tail(words, model, rng_.Split(), /*trace=*/nullptr,
                        tail_base, options_.sequential_write_discount,
                        options_.fault_hook);
    const uint64_t errors =
        health_.ProbeSite(head) + health_.ProbeSite(tail);
    const double observed =
        words > 0 ? static_cast<double>(errors) / (2.0 * words) : 0.0;
    if (health_.WithinThreshold(observed, model_word_error_rate) ||
        attempt >= health_.options().max_alloc_retries) {
      next_base_address_ = base + span;
      return make_array(base);
    }
    health_.RecordQuarantine(base, span);
    health_.RecordRetry();
    // Back off past the quarantined region, doubling the stride while
    // consecutive candidates keep failing (capped to avoid overflow).
    const int shift = attempt < 20 ? attempt : 20;
    next_base_address_ = base + (span << shift);
  }
}

ApproxArrayU32 ApproxMemory::NewPreciseArray(size_t n) {
  // Precise memory's modeled error rate is zero; any canary mismatch is
  // substrate misbehaviour and counts fully against the error floor.
  return AllocateArray(n, precise_model_.get(),
                       /*model_word_error_rate=*/0.0);
}

ApproxArrayU32 ApproxMemory::NewApproxArray(size_t n, double t) {
  APPROXMEM_CHECK_OK(options_.mlc.WithT(t).Validate());
  WriteModel* model = PcmModelForT(t);
  double model_word_error_rate = 0.0;
  if (health_.enabled()) {
    model_word_error_rate = calibration_->ForT(t).WordErrorRate(
        options_.mlc.CellsPerWord());
  }
  return AllocateArray(n, model, model_word_error_rate);
}

ApproxArrayU32 ApproxMemory::NewSpintronicArray(
    size_t n, const SpintronicConfig& config) {
  APPROXMEM_CHECK_OK(config.Validate());
  spintronic_models_.push_back(std::make_unique<SpintronicWriteModel>(config));
  const uint64_t base = next_base_address_;
  next_base_address_ += ((n * 4 + 4095) / 4096 + 1) * 4096;
  return ApproxArrayU32(n, spintronic_models_.back().get(), rng_.Split(),
                        options_.trace, base,
                        options_.sequential_write_discount,
                        options_.fault_hook);
}

ApproxArrayU32 ApproxMemory::NewPreciseSpintronicArray(size_t n) {
  const uint64_t base = next_base_address_;
  next_base_address_ += ((n * 4 + 4095) / 4096 + 1) * 4096;
  return ApproxArrayU32(n, precise_spintronic_model_.get(), rng_.Split(),
                        options_.trace, base,
                        options_.sequential_write_discount,
                        options_.fault_hook);
}

}  // namespace approxmem::approx
