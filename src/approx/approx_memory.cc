#include "approx/approx_memory.h"

#include <utility>

#include "common/check.h"

namespace approxmem::approx {
namespace {

BackendContext MakeBackendContext(
    const ApproxMemory::Options& options,
    std::shared_ptr<mlc::CalibrationCache> calibration) {
  BackendContext context;
  context.mlc = options.mlc;
  context.mode = options.mode;
  context.calibration = std::move(calibration);
  context.calibration_trials = options.calibration_trials;
  context.calibration_seed = options.seed ^ 0xca11b7a7e5eedULL;
  return context;
}

}  // namespace

ApproxMemory::ApproxMemory(const Options& options)
    : options_(options),
      calibration_(options.shared_calibration
                       ? options.shared_calibration
                       : std::make_shared<mlc::CalibrationCache>(
                             options.mlc.WithT(options.mlc.precise_t_width),
                             options.calibration_trials,
                             /*seed=*/options.seed ^ 0xca11b7a7e5eedULL)),
      rng_(options.seed),
      health_(options.health) {
  StatusOr<std::unique_ptr<MemoryBackend>> backend =
      CreateMemoryBackend(options.backend,
                          MakeBackendContext(options, calibration_));
  APPROXMEM_CHECK_OK(backend.status());
  backend_ = std::move(*backend);
}

void ApproxMemory::BeginJobStream(uint64_t stream_key) {
  // SplitMix64-style diffusion of the key so adjacent job ids land on
  // well-separated generator seeds.
  uint64_t mixed = stream_key + 0x9e3779b97f4a7c15ULL;
  mixed = (mixed ^ (mixed >> 30)) * 0xbf58476d1ce4e5b9ULL;
  mixed = (mixed ^ (mixed >> 27)) * 0x94d049bb133111ebULL;
  mixed ^= mixed >> 31;
  rng_ = Rng(options_.seed ^ mixed);
}

ApproxArrayU32 ApproxMemory::AllocateArray(size_t n, WriteModel* model,
                                           double model_word_error_rate) {
  const uint64_t span = ((n * 4 + 4095) / 4096 + 1) * 4096;
  const auto make_array = [&](uint64_t base) {
    return ApproxArrayU32(n, model, rng_.Split(), options_.trace, base,
                          options_.sequential_write_discount,
                          options_.fault_hook);
  };
  const auto place = [&]() {
    if (options_.placement != nullptr) {
      return options_.placement->PlaceSpan(span);
    }
    const uint64_t base = next_base_address_;
    next_base_address_ += span;
    return base;
  };
  if (!health_.enabled()) {
    return make_array(place());
  }
  if (options_.placement != nullptr) {
    // Placement-policy path: the policy owns every cursor, so a quarantined
    // candidate is reported to it (OnQuarantine) and the retry simply asks
    // for a fresh placement — the policy routes it to another bank/region.
    const uint32_t words = health_.options().canary_words;
    for (int attempt = 0;; ++attempt) {
      const uint64_t base = options_.placement->PlaceSpan(span);
      health_.RecordRegionProbed();
      const uint64_t tail_base = base + span - uint64_t{words} * 4u;
      ApproxArrayU32 head(words, model, rng_.Split(), /*trace=*/nullptr, base,
                          options_.sequential_write_discount,
                          options_.fault_hook);
      ApproxArrayU32 tail(words, model, rng_.Split(), /*trace=*/nullptr,
                          tail_base, options_.sequential_write_discount,
                          options_.fault_hook);
      const uint64_t errors =
          health_.ProbeSite(head) + health_.ProbeSite(tail);
      const double observed =
          words > 0 ? static_cast<double>(errors) / (2.0 * words) : 0.0;
      if (health_.WithinThreshold(observed, model_word_error_rate) ||
          attempt >= health_.options().max_alloc_retries) {
        return make_array(base);
      }
      health_.RecordQuarantine(base, span);
      health_.RecordRetry();
      options_.placement->OnQuarantine(base, span);
    }
  }
  // Canary-probe candidate regions; skip quarantined ones with a stride
  // that doubles per consecutive failure so large degraded regions are
  // escaped in O(log size) probes.
  const uint32_t words = health_.options().canary_words;
  for (int attempt = 0;; ++attempt) {
    const uint64_t base = next_base_address_;
    health_.RecordRegionProbed();
    // Sentinels interleave with the allocation: `words` canary words at the
    // region head (sharing the data array's first addresses) and at the
    // tail of the region's last page. Probe costs land in the monitor's own
    // ledger, never in the workload's.
    const uint64_t tail_base = base + span - uint64_t{words} * 4u;
    ApproxArrayU32 head(words, model, rng_.Split(), /*trace=*/nullptr, base,
                        options_.sequential_write_discount,
                        options_.fault_hook);
    ApproxArrayU32 tail(words, model, rng_.Split(), /*trace=*/nullptr,
                        tail_base, options_.sequential_write_discount,
                        options_.fault_hook);
    const uint64_t errors =
        health_.ProbeSite(head) + health_.ProbeSite(tail);
    const double observed =
        words > 0 ? static_cast<double>(errors) / (2.0 * words) : 0.0;
    if (health_.WithinThreshold(observed, model_word_error_rate) ||
        attempt >= health_.options().max_alloc_retries) {
      next_base_address_ = base + span;
      return make_array(base);
    }
    health_.RecordQuarantine(base, span);
    health_.RecordRetry();
    // Back off past the quarantined region, doubling the stride while
    // consecutive candidates keep failing (capped to avoid overflow).
    const int shift = attempt < 20 ? attempt : 20;
    next_base_address_ = base + (span << shift);
  }
}

ApproxArrayU32 ApproxMemory::Allocate(const AllocSpec& spec) {
  StatusOr<WriteModel*> model = backend_->ModelFor(spec);
  APPROXMEM_CHECK_OK(model.status());
  // The modeled rate only matters to the canary threshold; skipping it when
  // monitoring is off also skips any calibration it would trigger.
  const double model_word_error_rate =
      health_.enabled() ? backend_->ModelWordErrorRate(spec) : 0.0;
  return AllocateArray(spec.n, *model, model_word_error_rate);
}

ApproxArrayU32 ApproxMemory::NewPreciseArray(size_t n) {
  return Allocate(AllocSpec::Precise(n));
}

ApproxArrayU32 ApproxMemory::NewApproxArray(size_t n, double knob) {
  return Allocate(AllocSpec::Approx(knob, n));
}

}  // namespace approxmem::approx
