#include "approx/spintronic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace approxmem::approx {

Status SpintronicConfig::Validate() const {
  if (bit_error_prob < 0.0 || bit_error_prob >= 1.0) {
    return Status::InvalidArgument("bit_error_prob must be in [0, 1)");
  }
  if (energy_saving_per_write < 0.0 || energy_saving_per_write >= 1.0) {
    return Status::InvalidArgument("energy_saving_per_write must be in [0,1)");
  }
  if (precise_write_energy <= 0.0 || read_energy < 0.0) {
    return Status::InvalidArgument("energies must be positive");
  }
  return Status::Ok();
}

std::array<SpintronicConfig, 4> PaperSpintronicConfigs() {
  std::array<SpintronicConfig, 4> configs;
  const double savings[4] = {0.05, 0.20, 0.33, 0.50};
  const double errors[4] = {1e-7, 1e-6, 1e-5, 1e-4};
  for (int i = 0; i < 4; ++i) {
    configs[static_cast<size_t>(i)].energy_saving_per_write = savings[i];
    configs[static_cast<size_t>(i)].bit_error_prob = errors[i];
  }
  return configs;
}

std::string SpintronicLabel(const SpintronicConfig& config) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%/%.0e",
                config.energy_saving_per_write * 100.0,
                config.bit_error_prob);
  return buf;
}

SpintronicWriteModel::SpintronicWriteModel(const SpintronicConfig& config)
    : config_(config),
      word_error_prob_(1.0 - std::pow(1.0 - config.bit_error_prob, 32)) {}

WordWriteOutcome SpintronicWriteModel::Write(uint32_t intended, Rng& rng) {
  WordWriteOutcome outcome;
  outcome.cost = config_.ApproxWriteEnergy();
  outcome.stored = intended;
  if (word_error_prob_ <= 0.0 ||
      rng.UniformDouble() >= word_error_prob_) {
    return outcome;
  }
  outcome.stored = SampleCorruptedStored(intended, rng);
  return outcome;
}

uint32_t SpintronicWriteModel::SampleCorruptedStored(uint32_t intended,
                                                     Rng& rng) const {
  // At least one of the 32 bits flips. Sequential conditional Bernoulli:
  // bit i flips with probability p / (1 - (1-p)^(32-i)) while no bit has
  // flipped yet; once one flips, the remaining bits flip with plain p.
  uint32_t stored = intended;
  const double p = config_.bit_error_prob;
  bool flipped = false;
  double no_flip_suffix = 1.0 - word_error_prob_;  // (1-p)^32.
  for (int bit = 0; bit < 32; ++bit) {
    double flip_prob = p;
    if (!flipped) {
      // Probability that *this* bit is the first flip, conditioned on at
      // least one flip among bits [bit, 32).
      const double at_least_one = 1.0 - no_flip_suffix;
      flip_prob = at_least_one > 0.0 ? p / at_least_one : 1.0;
      no_flip_suffix /= (1.0 - p);  // (1-p)^(32-bit-1) for the next round.
    }
    if (rng.UniformDouble() < flip_prob) {
      stored ^= (1u << bit);
      flipped = true;
    }
  }
  if (!flipped) {
    // Numerical corner: force one flip so the conditioning holds exactly.
    stored ^= (1u << rng.UniformInt(32));
  }
  return stored;
}

void SpintronicWriteModel::WriteBatch(const uint32_t* intended, size_t count,
                                      Rng& rng, WordWriteOutcome* outcomes) {
  const double cost = config_.ApproxWriteEnergy();
  for (size_t w = 0; w < count; ++w) {
    outcomes[w] = WordWriteOutcome{intended[w], cost, 0.0};
  }
  if (word_error_prob_ <= 0.0) return;
  // Constant per-word error probability: block-draw one uniform per word
  // and scan for the first hit; rewinding to a pre-block snapshot keeps the
  // consumed draw sequence identical to the scalar loop.
  constexpr size_t kBlock = 64;
  double uniforms[kBlock];
  size_t w = 0;
  while (w < count) {
    const size_t block = std::min(count - w, kBlock);
    const Rng snapshot = rng;
    rng.FillUniformDoubles(uniforms, block);
    size_t hit = block;
    for (size_t k = 0; k < block; ++k) {
      if (uniforms[k] < word_error_prob_) {
        hit = k;
        break;
      }
    }
    if (hit == block) {
      w += block;
      continue;
    }
    rng = snapshot;
    for (size_t r = 0; r <= hit; ++r) rng.UniformDouble();
    outcomes[w + hit].stored = SampleCorruptedStored(intended[w + hit], rng);
    w += hit + 1;
  }
}

PreciseSpintronicWriteModel::PreciseSpintronicWriteModel(
    const SpintronicConfig& reference)
    : write_energy_(reference.precise_write_energy),
      read_energy_(reference.read_energy) {}

WordWriteOutcome PreciseSpintronicWriteModel::Write(uint32_t intended,
                                                    Rng& /*rng*/) {
  return WordWriteOutcome{intended, write_energy_};
}

}  // namespace approxmem::approx
