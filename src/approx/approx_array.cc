#include "approx/approx_array.h"

#include <algorithm>

namespace approxmem::approx {

ApproxArrayU32::ApproxArrayU32(size_t n, WriteModel* model, Rng rng,
                               mem::TraceBuffer* trace, uint64_t base_address,
                               double sequential_write_discount,
                               MemoryFaultHook* fault_hook)
    : actual_(n, 0),
      intended_(n, 0),
      model_(model),
      rng_(rng),
      trace_(trace),
      fault_hook_(fault_hook),
      base_address_(base_address),
      read_cost_(model != nullptr ? model->ReadCost() : 0.0),
      seq_discount_(sequential_write_discount),
      precise_(model == nullptr || model->IsPrecise()),
      address_sensitive_(model != nullptr && model->AddressSensitive()),
      last_written_(static_cast<size_t>(-1)) {
  // A null model is only legal for empty placeholder arrays.
  APPROXMEM_CHECK(model != nullptr || n == 0);
}

ApproxArrayU32::~ApproxArrayU32() { FlushStats(); }

ApproxArrayU32::ApproxArrayU32(ApproxArrayU32&& other) noexcept
    : actual_(std::move(other.actual_)),
      intended_(std::move(other.intended_)),
      model_(other.model_),
      rng_(other.rng_),
      trace_(other.trace_),
      fault_hook_(other.fault_hook_),
      base_address_(other.base_address_),
      read_cost_(other.read_cost_),
      seq_discount_(other.seq_discount_),
      precise_(other.precise_),
      address_sensitive_(other.address_sensitive_),
      last_written_(other.last_written_),
      stats_(other.stats_),
      stats_sink_(other.stats_sink_) {
  // The source must not double-flush to the sink.
  other.stats_ = MemoryStats{};
  other.stats_sink_ = nullptr;
}

ApproxArrayU32& ApproxArrayU32::operator=(ApproxArrayU32&& other) noexcept {
  if (this != &other) {
    FlushStats();
    actual_ = std::move(other.actual_);
    intended_ = std::move(other.intended_);
    model_ = other.model_;
    rng_ = other.rng_;
    trace_ = other.trace_;
    fault_hook_ = other.fault_hook_;
    base_address_ = other.base_address_;
    read_cost_ = other.read_cost_;
    seq_discount_ = other.seq_discount_;
    precise_ = other.precise_;
    address_sensitive_ = other.address_sensitive_;
    last_written_ = other.last_written_;
    stats_ = other.stats_;
    stats_sink_ = other.stats_sink_;
    other.stats_ = MemoryStats{};
    other.stats_sink_ = nullptr;
  }
  return *this;
}

void ApproxArrayU32::SetRangeImpl(size_t start, const uint32_t* values,
                                  size_t count, Rng& rng, MemoryStats& stats,
                                  size_t& last_written) {
  APPROXMEM_CHECK(start + count <= actual_.size());
  if (address_sensitive_) {
    // Banked/trace-driven models need the address per word; no batch path.
    for (size_t k = 0; k < count; ++k) {
      SetImpl(start + k, values[k], rng, stats, last_written);
    }
    return;
  }
  constexpr size_t kChunkWords = 64;
  WordWriteOutcome outcomes[kChunkWords];
  for (size_t done = 0; done < count; done += kChunkWords) {
    const size_t chunk = std::min(count - done, kChunkWords);
    model_->WriteBatch(values + done, chunk, rng, outcomes);
    for (size_t k = 0; k < chunk; ++k) {
      ApplyWrite(start + done + k, values[done + k], outcomes[k], stats,
                 last_written);
    }
  }
}

std::vector<ApproxArrayU32::Shard> ApproxArrayU32::MakeShards(size_t count) {
  std::vector<Shard> shards;
  shards.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    shards.push_back(Shard(this, rng_.Split()));
  }
  return shards;
}

void ApproxArrayU32::MergeShards(std::vector<Shard>& shards) {
  for (Shard& shard : shards) {
    APPROXMEM_CHECK(shard.array_ == this);
    stats_ += shard.stats_;
    shard.stats_ = MemoryStats{};
  }
  // Shard cursors are gone; the next direct write starts a fresh run.
  last_written_ = static_cast<size_t>(-1);
}

void ApproxArrayU32::FlushStats() {
  if (stats_sink_ != nullptr) {
    *stats_sink_ += stats_;
    stats_ = MemoryStats{};
  }
}

void ApproxArrayU32::Store(const std::vector<uint32_t>& values) {
  APPROXMEM_CHECK(values.size() <= actual_.size());
  for (size_t i = 0; i < values.size(); ++i) Set(i, values[i]);
}

void ApproxArrayU32::CopyFrom(ApproxArrayU32& src) {
  APPROXMEM_CHECK(src.size() == size());
  for (size_t i = 0; i < size(); ++i) Set(i, src.Get(i));
}

size_t ApproxArrayU32::DeviatingElements() const {
  size_t deviating = 0;
  for (size_t i = 0; i < actual_.size(); ++i) {
    if (actual_[i] != intended_[i]) ++deviating;
  }
  return deviating;
}

double ApproxArrayU32::ErrorRate() const {
  if (actual_.empty()) return 0.0;
  return static_cast<double>(DeviatingElements()) /
         static_cast<double>(actual_.size());
}

}  // namespace approxmem::approx
