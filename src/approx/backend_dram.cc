// The "dram-precise" backend: an error-free constant-latency baseline.
//
// Every allocation — precise or approximate — is served by the same exact
// model at DRAM-class latencies, so pipelines run end to end with zero
// injected errors and a write-cost ratio of 1. Useful as a control: any
// "write reduction" it reports is pure pipeline overhead, and any
// corruption seen on it comes from the workload or a fault hook, never
// from the device model.
#include <memory>

#include "approx/memory_backend.h"
#include "approx/write_model.h"

namespace approxmem::approx {
namespace {

/// Table 1 lists DRAM at a flat 50 ns access latency for reads and writes.
constexpr double kDramAccessNs = 50.0;

class DramWriteModel final : public WriteModel {
 public:
  WordWriteOutcome Write(uint32_t intended, Rng& /*rng*/) override {
    return WordWriteOutcome{intended, kDramAccessNs, 0.0};
  }
  double ReadCost() const override { return kDramAccessNs; }
  std::string_view CostUnit() const override { return "ns"; }
  bool IsPrecise() const override { return true; }
};

class DramPreciseBackend final : public MemoryBackend {
 public:
  explicit DramPreciseBackend(const BackendContext& /*context*/) {}

  std::string_view name() const override { return kDramPreciseBackendName; }
  std::string_view cost_unit() const override { return "ns"; }

  Status Validate(const AllocSpec& /*spec*/) const override {
    return Status::Ok();
  }

  StatusOr<WriteModel*> ModelFor(const AllocSpec& /*spec*/) override {
    return &model_;
  }

  double ModelWordErrorRate(const AllocSpec& /*spec*/) override {
    return 0.0;
  }

  double WriteCostRatio(double /*knob*/) override { return 1.0; }

  double default_approx_knob() const override { return 0.0; }
  double min_knob() const override { return 0.0; }
  double precise_knob() const override { return 0.0; }

 private:
  DramWriteModel model_;
};

}  // namespace

namespace internal {

std::unique_ptr<MemoryBackend> MakeDramPreciseBackend(
    const BackendContext& context) {
  return std::make_unique<DramPreciseBackend>(context);
}

}  // namespace internal
}  // namespace approxmem::approx
