// Instrumented 32-bit arrays living in a precision domain.
//
// ApproxArrayU32 is the analogue of the paper's `approx_alloc` interface:
// every Get/Set is one simulated memory access. The array tracks, per
// element, both the value the program intended to store and the value the
// memory actually holds, so that error rates ("proportion of elements whose
// values deviate from their original values") can be measured exactly.
#ifndef APPROXMEM_APPROX_APPROX_ARRAY_H_
#define APPROXMEM_APPROX_APPROX_ARRAY_H_

#include <cstdint>
#include <vector>

#include "approx/fault_hook.h"
#include "approx/memory_stats.h"
#include "approx/write_model.h"
#include "common/check.h"
#include "common/random.h"
#include "mem/trace.h"

namespace approxmem::approx {

/// A fixed-size array of 32-bit words stored through a WriteModel.
///
/// The array does not own its WriteModel (ApproxMemory does); it owns its
/// own RNG stream so results do not depend on operation interleaving across
/// arrays. Move-only.
class ApproxArrayU32 {
 public:
  /// `trace` may be null; when set, every access appends a MemEvent with
  /// addresses starting at `base_address`. `sequential_write_discount`
  /// scales the cost of a write that lands at (last written index + 1) —
  /// the sequential-vs-random PCM write asymmetry the paper's Section 5
  /// discussion calls for (1.0 disables it).
  /// `fault_hook`, when set, observes and may perturb every access (see
  /// fault_hook.h); null means fault-free operation.
  ApproxArrayU32(size_t n, WriteModel* model, Rng rng,
                 mem::TraceBuffer* trace = nullptr, uint64_t base_address = 0,
                 double sequential_write_discount = 1.0,
                 MemoryFaultHook* fault_hook = nullptr);
  ~ApproxArrayU32();

  ApproxArrayU32(ApproxArrayU32&& other) noexcept;
  ApproxArrayU32& operator=(ApproxArrayU32&& other) noexcept;
  ApproxArrayU32(const ApproxArrayU32&) = delete;
  ApproxArrayU32& operator=(const ApproxArrayU32&) = delete;

  size_t size() const { return actual_.size(); }

  /// Reads element `i` (one simulated memory read). A fault hook may flip
  /// the observed value transiently (the stored value is untouched).
  uint32_t Get(size_t i) { return GetImpl(i, stats_); }

  /// Writes element `i` (one simulated memory write, possibly corrupted).
  void Set(size_t i, uint32_t value) {
    SetImpl(i, value, rng_, stats_, last_written_);
  }

  /// Writes values[0, count) to elements [start, start + count): one
  /// simulated write per element, driven through the model's WriteBatch
  /// kernel (bit-identical to the equivalent Set loop, including the
  /// sequential-write discount and the RNG draw sequence).
  void SetRange(size_t start, const uint32_t* values, size_t count) {
    SetRangeImpl(start, values, count, rng_, stats_, last_written_);
  }

  /// Reads elements [start, start + count) into out[0, count): one
  /// simulated read each, identical accounting to a Get loop.
  void GetRange(size_t start, uint32_t* out, size_t count) {
    for (size_t k = 0; k < count; ++k) out[k] = GetImpl(start + k, stats_);
  }

  /// A handle for driving a disjoint slice of this array's accesses with
  /// its own RNG substream, stats ledger, and sequential-write cursor.
  /// Created in batches by MakeShards (which fixes each shard's substream
  /// by split order); folded back by MergeShards. Shards of one array may
  /// run concurrently only when ConcurrentShardSafe() holds and no index is
  /// touched by two shards; otherwise drive them serially in shard order —
  /// either way the results depend only on the shard plan, never on the
  /// thread count.
  class Shard {
   public:
    uint32_t Get(size_t i) { return array_->GetImpl(i, stats_); }
    void Set(size_t i, uint32_t value) {
      array_->SetImpl(i, value, rng_, stats_, last_written_);
    }
    void SetRange(size_t start, const uint32_t* values, size_t count) {
      array_->SetRangeImpl(start, values, count, rng_, stats_, last_written_);
    }
    void GetRange(size_t start, uint32_t* out, size_t count) {
      for (size_t k = 0; k < count; ++k) {
        out[k] = array_->GetImpl(start + k, stats_);
      }
    }
    const MemoryStats& stats() const { return stats_; }

   private:
    friend class ApproxArrayU32;
    Shard(ApproxArrayU32* array, Rng rng) : array_(array), rng_(rng) {}

    ApproxArrayU32* array_;
    Rng rng_;
    MemoryStats stats_;
    size_t last_written_ = static_cast<size_t>(-1);
  };

  /// True when shards of this array may execute on different threads at the
  /// same time: no fault hook (shared mutable state), no trace buffer
  /// (ordered append), and a stateless flat-cost write model. When false,
  /// callers must drive the same shard plan serially, in shard order.
  bool ConcurrentShardSafe() const {
    return fault_hook_ == nullptr && trace_ == nullptr && !address_sensitive_;
  }

  /// Creates `count` shards, splitting one RNG substream per shard off this
  /// array's stream in shard order (so the plan, not the schedule, fixes
  /// every stream). Call MergeShards before touching the array directly
  /// again.
  std::vector<Shard> MakeShards(size_t count);

  /// Folds the shards' ledgers into this array in shard order and resets
  /// the sequential-write cursor (the next direct write is never treated as
  /// sequential).
  void MergeShards(std::vector<Shard>& shards);

  /// Writes `values` into the array front (one Set per element).
  void Store(const std::vector<uint32_t>& values);

  /// Copies all of `src`'s current values into this array, one read from
  /// `src` plus one write here per element (the approx-preparation copy).
  void CopyFrom(ApproxArrayU32& src);

  /// Current stored values, without touching access counters.
  std::vector<uint32_t> Snapshot() const { return actual_; }

  /// Peeks at a stored value without accounting (for verification only).
  uint32_t PeekActual(size_t i) const { return actual_[i]; }
  uint32_t PeekIntended(size_t i) const { return intended_[i]; }

  /// Number of positions where the stored value deviates from the intended
  /// one; ErrorRate() is the paper's "imprecise elements rate".
  size_t DeviatingElements() const;
  double ErrorRate() const;

  const MemoryStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MemoryStats{}; }

  /// Registers an accumulator that receives this array's stats when the
  /// array is destroyed (or FlushStats is called). Lets pipelines account
  /// for scratch buffers that sorts allocate and drop internally.
  void SetStatsSink(MemoryStats* sink) { stats_sink_ = sink; }

  /// Adds current stats to the sink (if any) and resets them.
  void FlushStats();

  uint64_t base_address() const { return base_address_; }
  bool precise() const { return precise_; }

 private:
  // Shared access paths: the public Get/Set/SetRange/GetRange and every
  // Shard drive the same implementations, parameterized on whose RNG
  // stream, stats ledger, and sequential-write cursor they charge.
  uint32_t GetImpl(size_t i, MemoryStats& stats) {
    APPROXMEM_CHECK(i < actual_.size());
    ++stats.word_reads;
    stats.read_cost += address_sensitive_
                           ? model_->ReadCostAt(base_address_ + i * 4u)
                           : read_cost_;
    if (trace_ != nullptr) trace_->AppendRead(base_address_ + i * 4u);
    uint32_t value = actual_[i];
    if (fault_hook_ != nullptr) {
      value = fault_hook_->OnRead(base_address_ + i * 4u, precise_, value);
    }
    return value;
  }

  void SetImpl(size_t i, uint32_t value, Rng& rng, MemoryStats& stats,
               size_t& last_written) {
    APPROXMEM_CHECK(i < actual_.size());
    const WordWriteOutcome outcome =
        address_sensitive_
            ? model_->WriteAt(base_address_ + i * 4u, value, rng)
            : model_->Write(value, rng);
    ApplyWrite(i, value, outcome, stats, last_written);
  }

  // Post-model bookkeeping shared by the scalar and batched write paths:
  // fault-hook observation, value stores, and stats accrual (in the same
  // floating-point order either way).
  void ApplyWrite(size_t i, uint32_t value, const WordWriteOutcome& outcome,
                  MemoryStats& stats, size_t& last_written) {
    uint32_t stored = outcome.stored;
    if (fault_hook_ != nullptr) {
      stored = fault_hook_->OnWrite(base_address_ + i * 4u, precise_, value,
                                    stored);
    }
    actual_[i] = stored;
    intended_[i] = value;
    ++stats.word_writes;
    stats.pv_iterations += outcome.pv_iterations;
    if (last_written != static_cast<size_t>(-1) && i == last_written + 1) {
      stats.write_cost += outcome.cost * seq_discount_;
      ++stats.sequential_writes;
    } else {
      stats.write_cost += outcome.cost;
    }
    last_written = i;
    if (stored != value) ++stats.corrupted_writes;
    if (trace_ != nullptr) trace_->AppendWrite(base_address_ + i * 4u);
  }

  void SetRangeImpl(size_t start, const uint32_t* values, size_t count,
                    Rng& rng, MemoryStats& stats, size_t& last_written);

  std::vector<uint32_t> actual_;
  std::vector<uint32_t> intended_;
  WriteModel* model_;
  Rng rng_;
  mem::TraceBuffer* trace_;
  MemoryFaultHook* fault_hook_;
  uint64_t base_address_;
  double read_cost_;
  double seq_discount_;
  // Cached model_->IsPrecise() (true for empty placeholder arrays); lets
  // Get/Set report the precision domain to the fault hook without a
  // virtual call per access.
  bool precise_;
  // Cached model_->AddressSensitive(); when set, every access goes through
  // the model's *At overloads (banked/trace-driven cost sources) instead of
  // the flat cached-cost fast path.
  bool address_sensitive_;
  // Index of the most recent write; SIZE_MAX means "none yet", so the very
  // first write is never treated as sequential.
  size_t last_written_;
  MemoryStats stats_;
  MemoryStats* stats_sink_ = nullptr;
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_APPROX_ARRAY_H_
