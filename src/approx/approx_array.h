// Instrumented 32-bit arrays living in a precision domain.
//
// ApproxArrayU32 is the analogue of the paper's `approx_alloc` interface:
// every Get/Set is one simulated memory access. The array tracks, per
// element, both the value the program intended to store and the value the
// memory actually holds, so that error rates ("proportion of elements whose
// values deviate from their original values") can be measured exactly.
#ifndef APPROXMEM_APPROX_APPROX_ARRAY_H_
#define APPROXMEM_APPROX_APPROX_ARRAY_H_

#include <cstdint>
#include <vector>

#include "approx/fault_hook.h"
#include "approx/memory_stats.h"
#include "approx/write_model.h"
#include "common/check.h"
#include "common/random.h"
#include "mem/trace.h"

namespace approxmem::approx {

/// A fixed-size array of 32-bit words stored through a WriteModel.
///
/// The array does not own its WriteModel (ApproxMemory does); it owns its
/// own RNG stream so results do not depend on operation interleaving across
/// arrays. Move-only.
class ApproxArrayU32 {
 public:
  /// `trace` may be null; when set, every access appends a MemEvent with
  /// addresses starting at `base_address`. `sequential_write_discount`
  /// scales the cost of a write that lands at (last written index + 1) —
  /// the sequential-vs-random PCM write asymmetry the paper's Section 5
  /// discussion calls for (1.0 disables it).
  /// `fault_hook`, when set, observes and may perturb every access (see
  /// fault_hook.h); null means fault-free operation.
  ApproxArrayU32(size_t n, WriteModel* model, Rng rng,
                 mem::TraceBuffer* trace = nullptr, uint64_t base_address = 0,
                 double sequential_write_discount = 1.0,
                 MemoryFaultHook* fault_hook = nullptr);
  ~ApproxArrayU32();

  ApproxArrayU32(ApproxArrayU32&& other) noexcept;
  ApproxArrayU32& operator=(ApproxArrayU32&& other) noexcept;
  ApproxArrayU32(const ApproxArrayU32&) = delete;
  ApproxArrayU32& operator=(const ApproxArrayU32&) = delete;

  size_t size() const { return actual_.size(); }

  /// Reads element `i` (one simulated memory read). A fault hook may flip
  /// the observed value transiently (the stored value is untouched).
  uint32_t Get(size_t i) {
    APPROXMEM_CHECK(i < actual_.size());
    ++stats_.word_reads;
    stats_.read_cost += address_sensitive_
                            ? model_->ReadCostAt(base_address_ + i * 4u)
                            : read_cost_;
    if (trace_ != nullptr) trace_->AppendRead(base_address_ + i * 4u);
    uint32_t value = actual_[i];
    if (fault_hook_ != nullptr) {
      value = fault_hook_->OnRead(base_address_ + i * 4u, precise_, value);
    }
    return value;
  }

  /// Writes element `i` (one simulated memory write, possibly corrupted).
  void Set(size_t i, uint32_t value) {
    APPROXMEM_CHECK(i < actual_.size());
    const WordWriteOutcome outcome =
        address_sensitive_
            ? model_->WriteAt(base_address_ + i * 4u, value, rng_)
            : model_->Write(value, rng_);
    uint32_t stored = outcome.stored;
    if (fault_hook_ != nullptr) {
      stored = fault_hook_->OnWrite(base_address_ + i * 4u, precise_, value,
                                    stored);
    }
    actual_[i] = stored;
    intended_[i] = value;
    ++stats_.word_writes;
    stats_.pv_iterations += outcome.pv_iterations;
    if (last_written_ != static_cast<size_t>(-1) &&
        i == last_written_ + 1) {
      stats_.write_cost += outcome.cost * seq_discount_;
      ++stats_.sequential_writes;
    } else {
      stats_.write_cost += outcome.cost;
    }
    last_written_ = i;
    if (stored != value) ++stats_.corrupted_writes;
    if (trace_ != nullptr) trace_->AppendWrite(base_address_ + i * 4u);
  }

  /// Writes `values` into the array front (one Set per element).
  void Store(const std::vector<uint32_t>& values);

  /// Copies all of `src`'s current values into this array, one read from
  /// `src` plus one write here per element (the approx-preparation copy).
  void CopyFrom(ApproxArrayU32& src);

  /// Current stored values, without touching access counters.
  std::vector<uint32_t> Snapshot() const { return actual_; }

  /// Peeks at a stored value without accounting (for verification only).
  uint32_t PeekActual(size_t i) const { return actual_[i]; }
  uint32_t PeekIntended(size_t i) const { return intended_[i]; }

  /// Number of positions where the stored value deviates from the intended
  /// one; ErrorRate() is the paper's "imprecise elements rate".
  size_t DeviatingElements() const;
  double ErrorRate() const;

  const MemoryStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MemoryStats{}; }

  /// Registers an accumulator that receives this array's stats when the
  /// array is destroyed (or FlushStats is called). Lets pipelines account
  /// for scratch buffers that sorts allocate and drop internally.
  void SetStatsSink(MemoryStats* sink) { stats_sink_ = sink; }

  /// Adds current stats to the sink (if any) and resets them.
  void FlushStats();

  uint64_t base_address() const { return base_address_; }
  bool precise() const { return precise_; }

 private:
  std::vector<uint32_t> actual_;
  std::vector<uint32_t> intended_;
  WriteModel* model_;
  Rng rng_;
  mem::TraceBuffer* trace_;
  MemoryFaultHook* fault_hook_;
  uint64_t base_address_;
  double read_cost_;
  double seq_discount_;
  // Cached model_->IsPrecise() (true for empty placeholder arrays); lets
  // Get/Set report the precision domain to the fault hook without a
  // virtual call per access.
  bool precise_;
  // Cached model_->AddressSensitive(); when set, every access goes through
  // the model's *At overloads (banked/trace-driven cost sources) instead of
  // the flat cached-cost fast path.
  bool address_sensitive_;
  // Index of the most recent write; SIZE_MAX means "none yet", so the very
  // first write is never treated as sequential.
  size_t last_written_;
  MemoryStats stats_;
  MemoryStats* stats_sink_ = nullptr;
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_APPROX_ARRAY_H_
