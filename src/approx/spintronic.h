// Appendix A: approximate spintronic memory model (Ranjan et al., DAC'15).
//
// Lowering the write voltage/current of a spintronic cell saves energy but
// raises the per-bit write-error probability. Reads are treated as precise
// (write energy dominates by an order of magnitude). The paper evaluates
// four operating points pairing per-write energy savings of 5/20/33/50%
// with per-bit error probabilities of 1e-7/1e-6/1e-5/1e-4.
#ifndef APPROXMEM_APPROX_SPINTRONIC_H_
#define APPROXMEM_APPROX_SPINTRONIC_H_

#include <array>
#include <cstdint>
#include <string>

#include "approx/write_model.h"
#include "common/status.h"

namespace approxmem::approx {

/// One operating point of the approximate spintronic memory.
struct SpintronicConfig {
  /// Probability that each of the 32 bits of a written word flips.
  double bit_error_prob = 1e-6;
  /// Fraction of the precise write energy *saved* per approximate write
  /// (0.20 means an approximate write costs 0.80 energy units).
  double energy_saving_per_write = 0.20;
  /// Energy of one precise word write, in arbitrary units.
  double precise_write_energy = 1.0;
  /// Energy of one word read (reads are precise and cheap).
  double read_energy = 0.05;

  double ApproxWriteEnergy() const {
    return precise_write_energy * (1.0 - energy_saving_per_write);
  }

  Status Validate() const;
};

/// The paper's four operating points, in increasing-saving order.
std::array<SpintronicConfig, 4> PaperSpintronicConfigs();

/// Human-readable label, e.g. "33%/1e-05".
std::string SpintronicLabel(const SpintronicConfig& config);

/// WriteModel injecting independent per-bit flips; cost unit is energy.
class SpintronicWriteModel final : public WriteModel {
 public:
  explicit SpintronicWriteModel(const SpintronicConfig& config);

  WordWriteOutcome Write(uint32_t intended, Rng& rng) override;
  /// Batched writes: the per-word error uniforms are drawn in blocks (one
  /// RNG refill per block, identical draw sequence to the scalar loop);
  /// corrupted words fall back to the per-bit conditional sampler.
  void WriteBatch(const uint32_t* intended, size_t count, Rng& rng,
                  WordWriteOutcome* outcomes) override;
  double ReadCost() const override { return config_.read_energy; }
  std::string_view CostUnit() const override { return "energy"; }
  bool IsPrecise() const override { return false; }

  const SpintronicConfig& config() const { return config_; }

 private:
  /// Samples the stored value given that at least one of the 32 bits flips
  /// (the uniform that decided "this word errs" is already consumed).
  uint32_t SampleCorruptedStored(uint32_t intended, Rng& rng) const;

  SpintronicConfig config_;
  double word_error_prob_;  // 1 - (1-p)^32, precomputed.
};

/// Precise spintronic baseline: unit-energy writes, no errors.
class PreciseSpintronicWriteModel final : public WriteModel {
 public:
  explicit PreciseSpintronicWriteModel(const SpintronicConfig& reference);

  WordWriteOutcome Write(uint32_t intended, Rng& rng) override;
  double ReadCost() const override { return read_energy_; }
  std::string_view CostUnit() const override { return "energy"; }
  bool IsPrecise() const override { return true; }

 private:
  double write_energy_;
  double read_energy_;
};

}  // namespace approxmem::approx

#endif  // APPROXMEM_APPROX_SPINTRONIC_H_
