// Loser-tree selection for k-way run merging — the classic database
// external-merge component (Knuth Vol. 3 / TAOCP 5.4.1).
//
// The tree keeps the current head key of each input way; MinWay() returns
// the way holding the global minimum in O(1), and replacing that way's head
// costs O(log k) comparisons. Exhausted ways are treated as +infinity.
#ifndef APPROXMEM_EXTSORT_LOSER_TREE_H_
#define APPROXMEM_EXTSORT_LOSER_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace approxmem::extsort {

class LoserTree {
 public:
  /// Builds the tree over `ways` inputs, all initially exhausted. Call
  /// Update() per way to install the initial heads.
  explicit LoserTree(size_t ways);

  size_t ways() const { return ways_; }

  /// Replaces way `way`'s head key (valid = false marks it exhausted).
  /// Updating the current winner costs O(log k) (the merge hot path);
  /// updating any other way triggers an O(k) rebuild (initialization).
  void Update(size_t way, uint32_t key, bool valid);

  /// The way currently holding the smallest head key. Meaningless when
  /// everything is exhausted — check Exhausted() first.
  size_t MinWay() const { return winner_; }

  /// Current head key of the winning way.
  uint32_t MinKey() const { return keys_[winner_]; }

  /// True when every way is exhausted.
  bool Exhausted() const { return !valid_[winner_]; }

 private:
  // Returns true if way a's head loses to (is >= than) way b's head.
  bool Loses(size_t a, size_t b) const;
  // Recomputes the full tournament from keys_/valid_.
  void Rebuild();

  size_t ways_;
  std::vector<uint32_t> keys_;   // Current head key per way.
  std::vector<uint8_t> valid_;   // 0 = exhausted (+infinity).
  std::vector<size_t> losers_;   // Internal nodes: loser way per node.
  size_t winner_ = 0;
};

}  // namespace approxmem::extsort

#endif  // APPROXMEM_EXTSORT_LOSER_TREE_H_
