// Asynchronous block-device model for the out-of-core external sort.
//
// The device separates two timelines that the old SimulatedDisk conflated:
//
//  * Wall clock: the bytes of a transfer are moved by a task scheduled on
//    the deterministic ThreadPool, so run formation genuinely overlaps its
//    in-memory sorts with the copies (with a 1-thread pool the copy runs
//    inline at submit, reproducing serial execution exactly).
//  * Virtual time: the device's *cost model* — per-request latency,
//    sequential bandwidth, and `queue_depth` concurrent channels — is
//    evaluated at submit time, on the submitting thread, in program order.
//    A transfer's virtual completion time therefore never depends on thread
//    scheduling, which is what keeps the external sort's reports and spill
//    digests byte-identical at any thread count.
//
// A transfer is issued with a `ready_us` virtual timestamp (when the data
// it depends on exists: a flush is ready when its run's sort finished). The
// device assigns it the earliest-free channel; service starts at
// max(ready, channel free), lasts latency + charged_bytes / bandwidth, and
// the completion time is returned by Wait(). Bytes are charged in whole
// blocks, like a real block device.
//
// Files are append-only sequences of 32-bit elements stored as one segment
// per write, so concurrent copy tasks never touch the same memory and no
// submit ever reallocates a buffer a task is filling.
#ifndef APPROXMEM_EXTSORT_ASYNC_DEVICE_H_
#define APPROXMEM_EXTSORT_ASYNC_DEVICE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"

namespace approxmem::extsort {

/// Geometry and timing of the modeled device.
struct AsyncDeviceConfig {
  /// Transfer-accounting granularity; bytes are charged in whole blocks.
  size_t block_bytes = 4096;
  /// Sustained sequential bandwidth in MB/s (= bytes per virtual µs).
  double bandwidth_mb_per_s = 400.0;
  /// Fixed per-request latency in virtual µs (seek/command overhead).
  double latency_us = 100.0;
  /// Concurrent in-flight requests the device services (NCQ depth);
  /// additional submissions queue on the earliest-free channel.
  int queue_depth = 4;

  Status Validate() const;
};

/// Aggregate accounting, accrued at submit in program order.
struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Virtual channel-busy time (latency + transfer) per direction.
  double read_busy_us = 0.0;
  double write_busy_us = 0.0;
  /// Virtual time requests spent queued behind a busy channel.
  double queue_wait_us = 0.0;

  double BusyUs() const { return read_busy_us + write_busy_us; }
};

class AsyncDevice {
 public:
  using TransferId = uint64_t;

  /// `pool` runs the data movement; null (or a 1-thread pool) moves bytes
  /// inline at submit. The config must Validate() (CHECK-enforced).
  explicit AsyncDevice(const AsyncDeviceConfig& config = AsyncDeviceConfig(),
                       ThreadPool* pool = nullptr);
  ~AsyncDevice();

  AsyncDevice(const AsyncDevice&) = delete;
  AsyncDevice& operator=(const AsyncDevice&) = delete;

  /// Creates an empty file and returns its id.
  int CreateFile();

  /// Elements currently in `file`, counting extents reserved by in-flight
  /// writes (the extent exists from submit; its bytes land by Wait).
  size_t FileSize(int file) const;

  /// Submits an append of `values` to `file`. The extent is reserved here,
  /// in program order; the bytes are moved by a pool task. `ready_us` is
  /// the virtual time the data became available to write.
  TransferId SubmitWrite(int file, std::vector<uint32_t> values,
                         double ready_us);

  /// Submits a read of up to `count` elements at `offset` (clamped to the
  /// file end). The covered extent must have been written by transfers
  /// already Wait()ed on. `ready_us` is the virtual time the buffer is
  /// free to receive the data.
  TransferId SubmitRead(int file, size_t offset, size_t count,
                        double ready_us);

  /// Blocks until the transfer's bytes have been moved; returns its
  /// virtual completion time in µs. Write transfers are released here;
  /// read transfers stay alive until TakeData.
  double Wait(TransferId id);

  /// Takes a waited read transfer's data and releases the transfer.
  std::vector<uint32_t> TakeData(TransferId id);

  /// Blocks until every outstanding transfer's bytes have been moved.
  void Drain();

  /// Unaccounted flattened copy of `file` — verification only; the caller
  /// must have Wait()ed every write to the file.
  std::vector<uint32_t> PeekData(int file) const;

  /// Drops a file's contents (spent run files); free of charge. No
  /// transfer on the file may be in flight.
  void Truncate(int file);

  /// Drains, then re-zeroes the virtual channel clocks (stats and file
  /// contents are kept). Call after staging input files so a following
  /// sort's virtual timeline starts at 0 instead of queued behind the
  /// staging writes.
  void ResetClock();

  const AsyncDeviceConfig& config() const { return config_; }
  const DeviceStats& stats() const { return stats_; }
  /// Elements per block (block_bytes / 4).
  size_t block_elements() const { return config_.block_bytes / 4; }

 private:
  struct Transfer {
    bool copied = false;
    bool is_read = false;
    double done_us = 0.0;
    std::vector<uint32_t> data;  // Read destination.
  };

  /// One write's worth of contiguous elements.
  struct Segment {
    size_t begin = 0;  // Element offset of the segment within the file.
    std::vector<uint32_t> data;
  };

  struct File {
    std::vector<std::unique_ptr<Segment>> segments;
    size_t size = 0;  // Elements, including in-flight extents.
  };

  /// Assigns the earliest-free channel and returns the virtual completion
  /// time; accrues stats. Caller-thread only, program order.
  double ScheduleOnChannel(double ready_us, size_t bytes, bool is_read);

  void MarkCopied(TransferId id);

  AsyncDeviceConfig config_;
  ThreadPool* pool_;
  /// unique_ptr keeps File objects address-stable while copy tasks hold
  /// references across CreateFile calls.
  std::vector<std::unique_ptr<File>> files_;
  std::vector<double> channel_free_us_;
  DeviceStats stats_;
  TransferId next_id_ = 1;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<TransferId, Transfer> transfers_;
};

}  // namespace approxmem::extsort

#endif  // APPROXMEM_EXTSORT_ASYNC_DEVICE_H_
