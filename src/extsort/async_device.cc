#include "extsort/async_device.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace approxmem::extsort {

Status AsyncDeviceConfig::Validate() const {
  if (block_bytes == 0 || block_bytes % 4 != 0) {
    return Status::InvalidArgument(
        "block_bytes must be a positive multiple of 4");
  }
  if (bandwidth_mb_per_s <= 0.0) {
    return Status::InvalidArgument("bandwidth_mb_per_s must be positive");
  }
  if (latency_us < 0.0) {
    return Status::InvalidArgument("latency_us must be non-negative");
  }
  if (queue_depth < 1) {
    return Status::InvalidArgument("queue_depth must be >= 1");
  }
  return Status::Ok();
}

AsyncDevice::AsyncDevice(const AsyncDeviceConfig& config, ThreadPool* pool)
    : config_(config), pool_(pool) {
  APPROXMEM_CHECK_OK(config_.Validate());
  channel_free_us_.assign(static_cast<size_t>(config_.queue_depth), 0.0);
}

AsyncDevice::~AsyncDevice() { Drain(); }

int AsyncDevice::CreateFile() {
  files_.push_back(std::make_unique<File>());
  return static_cast<int>(files_.size()) - 1;
}

size_t AsyncDevice::FileSize(int file) const {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  return files_[static_cast<size_t>(file)]->size;
}

double AsyncDevice::ScheduleOnChannel(double ready_us, size_t bytes,
                                      bool is_read) {
  const uint64_t blocks =
      (bytes + config_.block_bytes - 1) / config_.block_bytes;
  // 1 MB/s == 1 byte per virtual µs, so the bandwidth figure doubles as
  // the bytes-per-µs rate.
  const double service_us =
      config_.latency_us + static_cast<double>(blocks * config_.block_bytes) /
                               config_.bandwidth_mb_per_s;
  size_t channel = 0;
  for (size_t c = 1; c < channel_free_us_.size(); ++c) {
    if (channel_free_us_[c] < channel_free_us_[channel]) channel = c;
  }
  const double start_us = std::max(ready_us, channel_free_us_[channel]);
  const double done_us = start_us + service_us;
  channel_free_us_[channel] = done_us;
  stats_.queue_wait_us += start_us - ready_us;
  if (is_read) {
    ++stats_.reads;
    stats_.blocks_read += blocks;
    stats_.bytes_read += bytes;
    stats_.read_busy_us += service_us;
  } else {
    ++stats_.writes;
    stats_.blocks_written += blocks;
    stats_.bytes_written += bytes;
    stats_.write_busy_us += service_us;
  }
  return done_us;
}

void AsyncDevice::MarkCopied(TransferId id) {
  std::lock_guard<std::mutex> lock(mu_);
  transfers_[id].copied = true;
  cv_.notify_all();
}

AsyncDevice::TransferId AsyncDevice::SubmitWrite(int file,
                                                 std::vector<uint32_t> values,
                                                 double ready_us) {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  File& f = *files_[static_cast<size_t>(file)];
  const TransferId id = next_id_++;
  const double done_us =
      ScheduleOnChannel(ready_us, values.size() * 4, /*is_read=*/false);

  // Reserve the extent in program order: the segment object is created
  // here (so file layout is deterministic) and filled by the pool task.
  auto segment = std::make_unique<Segment>();
  segment->begin = f.size;
  f.size += values.size();
  Segment* dest = segment.get();
  f.segments.push_back(std::move(segment));

  {
    std::lock_guard<std::mutex> lock(mu_);
    Transfer& t = transfers_[id];
    t.is_read = false;
    t.done_us = done_us;
  }
  auto task = [this, id, dest, source = std::move(values)]() mutable {
    dest->data = std::move(source);
    MarkCopied(id);
  };
  if (pool_ != nullptr) {
    pool_->Schedule(std::move(task));
  } else {
    task();
  }
  return id;
}

AsyncDevice::TransferId AsyncDevice::SubmitRead(int file, size_t offset,
                                                size_t count,
                                                double ready_us) {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  File& f = *files_[static_cast<size_t>(file)];
  offset = std::min(offset, f.size);
  count = std::min(count, f.size - offset);
  const TransferId id = next_id_++;
  const double done_us = ScheduleOnChannel(ready_us, count * 4,
                                           /*is_read=*/true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Transfer& t = transfers_[id];
    t.is_read = true;
    t.done_us = done_us;
  }
  auto task = [this, id, &f, offset, count] {
    std::vector<uint32_t> data(count);
    // Gather across the segments covering [offset, offset + count). The
    // segment list only grows and covered segments are already copied
    // (the caller Wait()ed their writes), so this walk is race-free.
    size_t filled = 0;
    for (const auto& segment : f.segments) {
      const size_t seg_end = segment->begin + segment->data.size();
      if (seg_end <= offset + filled) continue;
      if (segment->begin >= offset + count) break;
      const size_t from = offset + filled - segment->begin;
      const size_t take =
          std::min(count - filled, segment->data.size() - from);
      std::memcpy(data.data() + filled, segment->data.data() + from,
                  take * 4);
      filled += take;
      if (filled == count) break;
    }
    APPROXMEM_CHECK(filled == count);
    {
      std::lock_guard<std::mutex> lock(mu_);
      transfers_[id].data = std::move(data);
    }
    MarkCopied(id);
  };
  if (pool_ != nullptr) {
    pool_->Schedule(std::move(task));
  } else {
    task();
  }
  return id;
}

double AsyncDevice::Wait(TransferId id) {
  std::unique_lock<std::mutex> lock(mu_);
  // Re-find on every predicate check: concurrent submissions may rehash
  // the map and invalidate any held iterator.
  cv_.wait(lock, [&] {
    const auto it = transfers_.find(id);
    APPROXMEM_CHECK(it != transfers_.end());
    return it->second.copied;
  });
  const auto it = transfers_.find(id);
  const double done_us = it->second.done_us;
  if (!it->second.is_read) transfers_.erase(it);
  return done_us;
}

std::vector<uint32_t> AsyncDevice::TakeData(TransferId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = transfers_.find(id);
  APPROXMEM_CHECK(it != transfers_.end() && it->second.copied &&
                  it->second.is_read);
  std::vector<uint32_t> data = std::move(it->second.data);
  transfers_.erase(it);
  return data;
}

void AsyncDevice::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    for (const auto& [id, t] : transfers_) {
      if (!t.copied) return false;
    }
    return true;
  });
}

std::vector<uint32_t> AsyncDevice::PeekData(int file) const {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  const File& f = *files_[static_cast<size_t>(file)];
  std::vector<uint32_t> flat;
  flat.reserve(f.size);
  for (const auto& segment : f.segments) {
    flat.insert(flat.end(), segment->data.begin(), segment->data.end());
  }
  APPROXMEM_CHECK(flat.size() == f.size);
  return flat;
}

void AsyncDevice::ResetClock() {
  Drain();
  channel_free_us_.assign(channel_free_us_.size(), 0.0);
}

void AsyncDevice::Truncate(int file) {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  File& f = *files_[static_cast<size_t>(file)];
  f.segments.clear();
  f.size = 0;
}

}  // namespace approxmem::extsort
