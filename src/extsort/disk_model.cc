#include "extsort/disk_model.h"

#include <algorithm>
#include <cstddef>

#include "common/check.h"

namespace approxmem::extsort {

Status DiskConfig::Validate() const {
  if (block_elements == 0) {
    return Status::InvalidArgument("block_elements must be positive");
  }
  if (read_latency_us_per_block < 0.0 || write_latency_us_per_block < 0.0) {
    return Status::InvalidArgument("latencies must be non-negative");
  }
  return Status::Ok();
}

SimulatedDisk::SimulatedDisk(const DiskConfig& config) : config_(config) {
  APPROXMEM_CHECK_OK(config.Validate());
}

int SimulatedDisk::CreateFile() {
  files_.emplace_back();
  return static_cast<int>(files_.size()) - 1;
}

uint64_t SimulatedDisk::BlocksCovering(size_t begin_element,
                                       size_t end_element) const {
  if (end_element <= begin_element) return 0;
  const size_t first = begin_element / config_.block_elements;
  const size_t last = (end_element - 1) / config_.block_elements;
  return last - first + 1;
}

void SimulatedDisk::Append(int file, const std::vector<uint32_t>& values) {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  if (values.empty()) return;
  std::vector<uint32_t>& data = files_[static_cast<size_t>(file)];
  const size_t begin = data.size();
  data.insert(data.end(), values.begin(), values.end());
  const uint64_t blocks = BlocksCovering(begin, data.size());
  stats_.blocks_written += blocks;
  stats_.write_time_us +=
      static_cast<double>(blocks) * config_.write_latency_us_per_block;
}

size_t SimulatedDisk::FileSize(int file) const {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  return files_[static_cast<size_t>(file)].size();
}

std::vector<uint32_t> SimulatedDisk::Read(int file, size_t offset,
                                          size_t count) {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  const std::vector<uint32_t>& data = files_[static_cast<size_t>(file)];
  const size_t begin = std::min(offset, data.size());
  const size_t end = std::min(offset + count, data.size());
  const uint64_t blocks = BlocksCovering(begin, end);
  stats_.blocks_read += blocks;
  stats_.read_time_us +=
      static_cast<double>(blocks) * config_.read_latency_us_per_block;
  return std::vector<uint32_t>(data.begin() + static_cast<ptrdiff_t>(begin),
                               data.begin() + static_cast<ptrdiff_t>(end));
}

const std::vector<uint32_t>& SimulatedDisk::PeekData(int file) const {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  return files_[static_cast<size_t>(file)];
}

void SimulatedDisk::Truncate(int file) {
  APPROXMEM_CHECK(file >= 0 && static_cast<size_t>(file) < files_.size());
  files_[static_cast<size_t>(file)].clear();
}

}  // namespace approxmem::extsort
