#include "extsort/extsort_plan.h"

#include <utility>
#include <vector>

#include "testing/differential_oracle.h"

namespace approxmem::extsort {
namespace {

uint64_t VectorDigest(const std::vector<uint32_t>& values) {
  if (values.empty()) return 0;
  return testing::Fnv1a64(values.data(), values.size() * sizeof(uint32_t));
}

/// Stages `keys` as a fresh input file and zeroes the virtual clock so the
/// sort's timeline starts at 0 instead of queued behind the staging write.
int StageInput(AsyncDevice& device, std::vector<uint32_t> keys) {
  const int input = device.CreateFile();
  if (!keys.empty()) {
    device.Wait(device.SubmitWrite(input, std::move(keys), 0.0));
  }
  device.ResetClock();
  return input;
}

}  // namespace

core::JobOutcome ExtsortJobPlan::Execute(const core::JobContext& context) {
  core::JobOutcome outcome;
  core::ApproxSortEngine& engine = *context.engine;
  const std::vector<uint32_t> keys =
      core::MakeKeys(job_.workload, job_.n, job_.seed);
  // Every run of this job rebases the substrate RNG onto
  // (ticket-keyed salt) ^ (run index) — the same BeginJobStream contract
  // as the in-memory plan, extended over runs.
  const uint64_t stream_salt =
      (context.ticket + 1) * 0x9e3779b97f4a7c15ULL;

  ExternalSortOptions sort_options;
  sort_options.memory_budget_bytes = options_.lease_bytes;
  sort_options.algorithm = job_.algorithm;
  sort_options.t = context.knob;
  // A precise backend advertises knob 0: its approx stage would be the
  // precise sort anyway, so run the precise pipeline outright (Eq. 2 then
  // honestly reports ~0 reduction, same as the in-memory path).
  sort_options.use_approx_refine = context.knob > 0.0;
  sort_options.record_payloads = true;
  sort_options.stream_salt = stream_salt;
  sort_options.verify = options_.verify;

  AsyncDevice device(options_.device, nullptr);
  const int input = StageInput(device, keys);
  int output = -1;
  const StatusOr<ExternalSortReport> report =
      ExternalSort(engine, device, input, sort_options, &output);
  if (!report.ok()) {
    outcome.status = report.status();
    return outcome;
  }
  outcome.attempts = 1;
  outcome.verified = report->verified;
  outcome.cost = report->memory_stats;
  outcome.bytes_spilled = report->bytes_spilled;
  outcome.merge_passes = report->merge_passes;
  outcome.initial_runs = report->initial_runs;
  // Modeled service time: the whole out-of-core pipeline's virtual
  // makespan (device busy time and in-memory sort compute, overlapped).
  outcome.service_us = report->Total().makespan_us;
  outcome.status =
      outcome.verified
          ? Status::Ok()
          : Status::Unavailable(
                "external sort output failed the permutation certificate");

  // Digests over the deinterleaved output — the same <final keys, final
  // rowids> shape the in-memory plans digest, so replay gates compare the
  // two classes uniformly.
  device.Drain();
  const std::vector<uint32_t> pairs = device.PeekData(output);
  std::vector<uint32_t> out_keys(pairs.size() / 2);
  std::vector<uint32_t> out_ids(pairs.size() / 2);
  for (size_t i = 0; i < out_keys.size(); ++i) {
    out_keys[i] = pairs[2 * i];
    out_ids[i] = pairs[2 * i + 1];
  }
  outcome.keys_digest = VectorDigest(out_keys);
  outcome.ids_digest = VectorDigest(out_ids);

  if (options_.baseline) {
    // Equation 2's denominator: the identical pipeline with precise
    // in-memory sorts, on a throwaway device so its traffic never leaks
    // into the approx configuration's ledger.
    ExternalSortOptions baseline_options = sort_options;
    baseline_options.use_approx_refine = false;
    baseline_options.verify = false;
    AsyncDevice baseline_device(options_.device, nullptr);
    const int baseline_input =
        StageInput(baseline_device, core::MakeKeys(job_.workload, job_.n,
                                                   job_.seed));
    const StatusOr<ExternalSortReport> baseline = ExternalSort(
        engine, baseline_device, baseline_input, baseline_options, nullptr);
    if (!baseline.ok()) {
      outcome.status = baseline.status();
      outcome.verified = false;
      return outcome;
    }
    outcome.baseline_write_cost = baseline->memory_write_cost;
    if (outcome.baseline_write_cost > 0.0) {
      outcome.write_reduction =
          1.0 - outcome.cost.write_cost / outcome.baseline_write_cost;
    }
  }
  return outcome;
}

}  // namespace approxmem::extsort
