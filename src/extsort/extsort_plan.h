// The out-of-core JobPlan: ExternalSort as a schedulable job class.
//
// ExtsortJobPlan wraps one record-payload external sort behind the
// core::JobPlan interface so the sort service can admit out-of-core jobs
// through the same queue as in-memory ones. Each Execute():
//
//   * builds a private AsyncDevice from the plan's device config (byte
//     movement inline on the executing thread — shards are serial inside,
//     so a pool would add nothing but nondeterministic interleaving),
//   * stages the generated input keys and resets the virtual clock,
//   * runs the approx-refine external sort under a working-memory budget
//     of lease_bytes with record payloads on (spills are <key, rowid>
//     pairs, the output a permutation certificate), every run's RNG
//     rebased onto a ticket-keyed stream salt,
//   * runs the precise-configuration external sort on a second throwaway
//     device for Equation 2's denominator — the same per-job baseline the
//     in-memory plans pay,
//   * and reports the device makespan of the approx configuration as the
//     job's deterministic virtual service time.
//
// The plan itself takes no MemoryBudget lease; the scheduler reserves
// lease_bytes from the tenant budget at admission (deterministically, on
// the driver thread) and the plan's internal ExternalSort budget equals
// the lease, so the modeled working set never exceeds what was granted.
#ifndef APPROXMEM_EXTSORT_EXTSORT_PLAN_H_
#define APPROXMEM_EXTSORT_EXTSORT_PLAN_H_

#include <cstddef>
#include <cstdint>

#include "core/job_plan.h"
#include "extsort/async_device.h"
#include "extsort/external_sort.h"

namespace approxmem::extsort {

/// Per-tenant out-of-core execution settings.
struct ExtsortPlanOptions {
  /// Modeled working memory one job's external sort runs under — the
  /// lease the scheduler reserves from the tenant budget for the job's
  /// whole execution.
  size_t lease_bytes = 512u << 10;
  /// Geometry and timing of the job's modeled block device.
  AsyncDeviceConfig device;
  /// Skip the precise-configuration baseline run (Equation 2 then reports
  /// 0 reduction). The service keeps it on; sweeps that only gate on
  /// digests can turn it off.
  bool baseline = true;
  /// Skip the output permutation-certificate check (digest gates only).
  bool verify = true;
};

class ExtsortJobPlan : public core::JobPlan {
 public:
  ExtsortJobPlan(const core::SortJob& job, const ExtsortPlanOptions& options)
      : job_(job), options_(options) {}

  core::JobClass job_class() const override {
    return core::JobClass::kExtSort;
  }
  core::JobOutcome Execute(const core::JobContext& context) override;

 private:
  core::SortJob job_;
  ExtsortPlanOptions options_;
};

}  // namespace approxmem::extsort

#endif  // APPROXMEM_EXTSORT_EXTSORT_PLAN_H_
