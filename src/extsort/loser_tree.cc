#include "extsort/loser_tree.h"

#include <algorithm>

#include "common/check.h"

namespace approxmem::extsort {

LoserTree::LoserTree(size_t ways)
    : ways_(ways),
      keys_(ways, 0),
      valid_(ways, 0),
      losers_(std::max<size_t>(ways, 1), 0) {
  APPROXMEM_CHECK(ways >= 1);
  Rebuild();
}

bool LoserTree::Loses(size_t a, size_t b) const {
  if (valid_[a] != valid_[b]) return valid_[a] == 0;  // Exhausted loses.
  if (valid_[a] == 0) return a > b;  // Both exhausted: stable order.
  if (keys_[a] != keys_[b]) return keys_[a] > keys_[b];
  return a > b;  // Equal keys: lower way wins (stable merge).
}

void LoserTree::Rebuild() {
  if (ways_ == 1) {
    winner_ = 0;
    return;
  }
  // Complete tournament over conceptual leaves k..2k-1 (leaf k+i = way i):
  // winners[node] is the winning way of the subtree under `node`; the
  // losing way stays in losers_[node].
  std::vector<size_t> winners(2 * ways_, 0);
  for (size_t way = 0; way < ways_; ++way) winners[ways_ + way] = way;
  for (size_t node = ways_ - 1; node >= 1; --node) {
    const size_t left = winners[2 * node];
    const size_t right = winners[2 * node + 1];
    if (Loses(left, right)) {
      winners[node] = right;
      losers_[node] = left;
    } else {
      winners[node] = left;
      losers_[node] = right;
    }
  }
  winner_ = winners[1];
}

void LoserTree::Update(size_t way, uint32_t key, bool valid) {
  APPROXMEM_CHECK(way < ways_);
  const bool was_winner = (way == winner_);
  keys_[way] = key;
  valid_[way] = valid ? 1 : 0;
  if (ways_ == 1) {
    winner_ = 0;
    return;
  }
  if (!was_winner) {
    // Arbitrary-way updates (initial head installation) invalidate losers
    // along the path in ways a replay cannot repair; rebuild. The merge
    // hot loop always updates the winner, which takes the O(log k) path.
    Rebuild();
    return;
  }
  // Winner replay: climb from the leaf, swapping with stored losers.
  size_t cur = way;
  for (size_t node = (way + ways_) / 2; node >= 1; node /= 2) {
    if (Loses(cur, losers_[node])) std::swap(cur, losers_[node]);
  }
  winner_ = cur;
}

}  // namespace approxmem::extsort
