// Simulated block device for the external-sorting scenario.
//
// Section 4.1: "If the data is initially in the hard disk, we need to adopt
// more advanced external memory sorting algorithms, for which the proposed
// approx-refine scheme can be used in their in-memory sorting steps." The
// disk model is deliberately simple — append-only files of 32-bit elements
// with block-granular latency accounting — because the experiment's point
// is how in-memory savings propagate, not disk scheduling.
#ifndef APPROXMEM_EXTSORT_DISK_MODEL_H_
#define APPROXMEM_EXTSORT_DISK_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace approxmem::extsort {

/// Geometry and timing of the simulated disk.
struct DiskConfig {
  /// Elements (32-bit words) per block; 1024 = 4KB blocks.
  size_t block_elements = 1024;
  double read_latency_us_per_block = 100.0;
  double write_latency_us_per_block = 100.0;

  Status Validate() const;
};

/// Aggregate I/O accounting.
struct DiskStats {
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  double read_time_us = 0.0;
  double write_time_us = 0.0;

  double TotalTimeUs() const { return read_time_us + write_time_us; }
};

/// An in-memory simulation of a block device holding append-only files of
/// uint32 elements. Every Append/Read charges the touched blocks.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(const DiskConfig& config = DiskConfig());

  /// Creates an empty file and returns its id.
  int CreateFile();

  /// Appends `values` to `file` (charges the covered blocks, including a
  /// rewrite of a partially filled tail block).
  void Append(int file, const std::vector<uint32_t>& values);

  /// Number of elements in `file`.
  size_t FileSize(int file) const;

  /// Reads up to `count` elements starting at `offset` (clamped to the file
  /// end); charges the covered blocks.
  std::vector<uint32_t> Read(int file, size_t offset, size_t count);

  /// Unaccounted access to the raw contents — verification only.
  const std::vector<uint32_t>& PeekData(int file) const;

  /// Deletes a file's contents (run files after merging); free of charge.
  void Truncate(int file);

  const DiskConfig& config() const { return config_; }
  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }

 private:
  uint64_t BlocksCovering(size_t begin_element, size_t end_element) const;

  DiskConfig config_;
  DiskStats stats_;
  std::vector<std::vector<uint32_t>> files_;
};

}  // namespace approxmem::extsort

#endif  // APPROXMEM_EXTSORT_DISK_MODEL_H_
