#include "extsort/external_sort.h"

#include <algorithm>

#include "extsort/loser_tree.h"
#include "refine/approx_refine.h"
#include "sortedness/measures.h"

namespace approxmem::extsort {
namespace {

// Block-buffered cursor over one sorted run on disk.
class RunCursor {
 public:
  RunCursor(SimulatedDisk* disk, int file, size_t begin, size_t end,
            size_t buffer_elements)
      : disk_(disk),
        file_(file),
        next_(begin),
        end_(end),
        buffer_elements_(buffer_elements) {}

  bool Refill() {
    if (next_ >= end_) return false;
    const size_t count = std::min(buffer_elements_, end_ - next_);
    buffer_ = disk_->Read(file_, next_, count);
    next_ += buffer_.size();
    pos_ = 0;
    return !buffer_.empty();
  }

  // Returns false when the run is exhausted.
  bool Peek(uint32_t* value) {
    if (pos_ >= buffer_.size() && !Refill()) return false;
    *value = buffer_[pos_];
    return true;
  }

  void Advance() { ++pos_; }

 private:
  SimulatedDisk* disk_;
  int file_;
  size_t next_;
  size_t end_;
  size_t buffer_elements_;
  std::vector<uint32_t> buffer_;
  size_t pos_ = 0;
};

struct Run {
  int file;
  size_t begin;
  size_t end;
};

// Merges `runs` into a single run appended to `out_file`; returns the
// merged run's extent.
Run MergeRuns(SimulatedDisk& disk, const std::vector<Run>& runs,
              int out_file, const ExternalSortOptions& options) {
  const size_t begin = disk.FileSize(out_file);
  std::vector<RunCursor> cursors;
  cursors.reserve(runs.size());
  for (const Run& run : runs) {
    cursors.emplace_back(&disk, run.file, run.begin, run.end,
                         options.merge_buffer_elements);
  }
  LoserTree tree(runs.size());
  for (size_t way = 0; way < cursors.size(); ++way) {
    uint32_t head = 0;
    if (cursors[way].Peek(&head)) tree.Update(way, head, true);
  }
  std::vector<uint32_t> out_buffer;
  out_buffer.reserve(options.merge_buffer_elements);
  while (!tree.Exhausted()) {
    const size_t way = tree.MinWay();
    out_buffer.push_back(tree.MinKey());
    if (out_buffer.size() >= options.merge_buffer_elements) {
      disk.Append(out_file, out_buffer);
      out_buffer.clear();
    }
    cursors[way].Advance();
    uint32_t head = 0;
    if (cursors[way].Peek(&head)) {
      tree.Update(way, head, true);
    } else {
      tree.Update(way, 0, false);
    }
  }
  if (!out_buffer.empty()) disk.Append(out_file, out_buffer);
  return Run{out_file, begin, disk.FileSize(out_file)};
}

}  // namespace

Status ExternalSortOptions::Validate() const {
  if (memory_budget_elements < 2) {
    return Status::InvalidArgument("memory budget must be >= 2 elements");
  }
  if (merge_fan_in < 2) {
    return Status::InvalidArgument("merge_fan_in must be >= 2");
  }
  if (merge_buffer_elements == 0) {
    return Status::InvalidArgument("merge_buffer_elements must be positive");
  }
  if (t <= 0.0) return Status::InvalidArgument("t must be positive");
  return Status::Ok();
}

StatusOr<ExternalSortReport> ExternalSort(core::ApproxSortEngine& engine,
                                          SimulatedDisk& disk, int input_file,
                                          const ExternalSortOptions& options,
                                          int* output_file) {
  const Status valid = options.Validate();
  if (!valid.ok()) return valid;

  ExternalSortReport report;
  report.n = disk.FileSize(input_file);

  // ---- Phase 1: run formation. Each memory-budget chunk is sorted in the
  // hybrid memory (approx-refine or precise) and written out as a run.
  int run_file = disk.CreateFile();
  std::vector<Run> runs;
  for (size_t offset = 0; offset < report.n;
       offset += options.memory_budget_elements) {
    const std::vector<uint32_t> chunk =
        disk.Read(input_file, offset, options.memory_budget_elements);
    std::vector<uint32_t> sorted_chunk;
    if (options.use_approx_refine) {
      const auto outcome = engine.SortApproxRefine(
          chunk, options.algorithm, options.t, &sorted_chunk, nullptr);
      if (!outcome.ok()) return outcome.status();
      if (!outcome->refine.verified()) {
        return Status::Internal("approx-refine produced unsorted run");
      }
      report.memory_write_cost += outcome->refine.TotalWriteCost();
      report.total_rem += outcome->refine.rem_estimate;
    } else {
      const auto baseline = refine::PreciseSortBaseline(
          chunk, options.algorithm,
          [&engine](size_t n) { return engine.memory().NewPreciseArray(n); },
          /*sort_seed=*/offset + 1, /*with_ids=*/true, &sorted_chunk);
      if (!baseline.ok()) return baseline.status();
      report.memory_write_cost += baseline->TotalWriteCost();
    }
    const size_t begin = disk.FileSize(run_file);
    disk.Append(run_file, sorted_chunk);
    runs.push_back(Run{run_file, begin, disk.FileSize(run_file)});
  }
  report.initial_runs = runs.size();

  // ---- Phase 2: loser-tree merge passes until one run remains.
  while (runs.size() > 1) {
    ++report.merge_passes;
    const int next_file = disk.CreateFile();
    std::vector<Run> next_runs;
    for (size_t group = 0; group < runs.size();
         group += options.merge_fan_in) {
      const size_t group_end =
          std::min(group + options.merge_fan_in, runs.size());
      const std::vector<Run> group_runs(
          runs.begin() + static_cast<ptrdiff_t>(group),
          runs.begin() + static_cast<ptrdiff_t>(group_end));
      next_runs.push_back(MergeRuns(disk, group_runs, next_file, options));
    }
    runs = std::move(next_runs);
  }

  int final_file;
  if (runs.empty()) {
    final_file = disk.CreateFile();  // Empty input -> empty output.
  } else if (runs.size() == 1 && runs[0].begin == 0 &&
             runs[0].end == disk.FileSize(runs[0].file)) {
    final_file = runs[0].file;
  } else {
    // Single run embedded in a shared file: copy it out.
    final_file = disk.CreateFile();
    disk.Append(final_file, disk.Read(runs[0].file, runs[0].begin,
                                      runs[0].end - runs[0].begin));
  }

  // ---- Verification (unaccounted reads).
  const std::vector<uint32_t>& output = disk.PeekData(final_file);
  report.verified =
      output.size() == report.n && sortedness::IsSorted(output) &&
      sortedness::IsPermutationOf(disk.PeekData(input_file), output);
  report.disk = disk.stats();
  if (output_file != nullptr) *output_file = final_file;
  return report;
}

}  // namespace approxmem::extsort
