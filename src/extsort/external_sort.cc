#include "extsort/external_sort.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "extsort/loser_tree.h"
#include "refine/approx_refine.h"
#include "sortedness/measures.h"
#include "testing/differential_oracle.h"

namespace approxmem::extsort {
namespace {

/// Resolved sizing: every 0-valued option derived from the budget.
/// merge_buffer_elements counts *records*; record_stride is the 32-bit
/// words per record (1 for bare keys, 2 for <key, rowid> pairs).
struct Sizing {
  size_t run_elements = 0;
  size_t merge_buffer_elements = 0;
  size_t merge_fan_in = 0;
  size_t record_stride = 1;
};

Sizing DeriveSizing(const ExternalSortOptions& options,
                    const AsyncDevice& device, size_t budget_bytes) {
  Sizing sizing;
  sizing.record_stride =
      options.record_payloads ? kRecordBytes / kDeviceElementBytes : 1;
  const size_t record_bytes = sizing.record_stride * kDeviceElementBytes;
  const size_t run_footprint = options.record_payloads
                                   ? kRecordRunFootprintBytesPerElement
                                   : kRunFootprintBytesPerElement;
  sizing.run_elements =
      options.run_elements != 0
          ? options.run_elements
          : std::max<size_t>(2, budget_bytes / run_footprint);
  sizing.merge_buffer_elements =
      options.merge_buffer_elements != 0
          ? options.merge_buffer_elements
          : std::max<size_t>(device.block_elements(), 4096);
  if (options.merge_buffer_elements == 0 && budget_bytes > 0) {
    // A tiny budget must still fit the minimum merge group — 2 cursors
    // with double buffers plus the output buffer is 5 slots — so shrink
    // the buffer rather than letting MergeGroup breach the contract. A
    // record-payload slot is twice as wide, so the clamp halves with it.
    sizing.merge_buffer_elements = std::min(
        sizing.merge_buffer_elements,
        std::max<size_t>(1, budget_bytes / (5 * record_bytes)));
  }
  if (options.merge_fan_in != 0) {
    sizing.merge_fan_in = options.merge_fan_in;
  } else {
    // Budget in merge-buffer slots: each cursor needs two (current +
    // read-ahead), the output buffer one.
    const size_t slot_bytes = sizing.merge_buffer_elements * record_bytes;
    const size_t slots = budget_bytes == 0
                             ? std::numeric_limits<size_t>::max()
                             : budget_bytes / slot_bytes;
    sizing.merge_fan_in = slots > 5 ? (slots - 1) / 2 : 2;
  }
  return sizing;
}

uint64_t EmptyDigest() { return testing::Fnv1a64(nullptr, 0); }

DeviceStats StatsDelta(const DeviceStats& after, const DeviceStats& before) {
  DeviceStats d;
  d.reads = after.reads - before.reads;
  d.writes = after.writes - before.writes;
  d.blocks_read = after.blocks_read - before.blocks_read;
  d.blocks_written = after.blocks_written - before.blocks_written;
  d.bytes_read = after.bytes_read - before.bytes_read;
  d.bytes_written = after.bytes_written - before.bytes_written;
  d.read_busy_us = after.read_busy_us - before.read_busy_us;
  d.write_busy_us = after.write_busy_us - before.write_busy_us;
  d.queue_wait_us = after.queue_wait_us - before.queue_wait_us;
  return d;
}

struct RunExtent {
  int file = 0;
  size_t begin = 0;
  size_t end = 0;
};

/// Double-buffered cursor over one sorted run: while the merge consumes
/// the current buffer, the next one is already in flight on the device.
/// `buffer_records` counts records; `stride` is words per record, so a
/// record-payload refill moves stride x records device elements and a
/// <key, rowid> pair never splits across two refills (run extents are
/// whole records).
class MergeCursor {
 public:
  MergeCursor(AsyncDevice* device, const RunExtent& run,
              size_t buffer_records, size_t stride)
      : device_(device),
        file_(run.file),
        next_(run.begin),
        end_(run.end),
        buffer_elements_(buffer_records * stride),
        stride_(stride) {}

  /// Submits the initial read-ahead at virtual time `clock_us`.
  void Open(double clock_us) { SubmitNext(clock_us); }

  /// Returns false when the run is exhausted. A refill waits on the
  /// in-flight read, advances `*clock_us` to its completion, and submits
  /// the next read-ahead. `payload`, when non-null, receives the record's
  /// second word (stride 2 only).
  bool Peek(uint32_t* key, uint32_t* payload, double* clock_us) {
    if (pos_ >= buffer_.size() && !Refill(clock_us)) return false;
    *key = buffer_[pos_];
    if (payload != nullptr && stride_ == 2) *payload = buffer_[pos_ + 1];
    return true;
  }

  void Advance() { pos_ += stride_; }

 private:
  void SubmitNext(double ready_us) {
    if (next_ >= end_) return;
    const size_t count = std::min(buffer_elements_, end_ - next_);
    pending_ = device_->SubmitRead(file_, next_, count, ready_us);
    has_pending_ = true;
    next_ += count;
  }

  bool Refill(double* clock_us) {
    if (!has_pending_) return false;
    const double done_us = device_->Wait(pending_);
    *clock_us = std::max(*clock_us, done_us);
    buffer_ = device_->TakeData(pending_);
    has_pending_ = false;
    pos_ = 0;
    SubmitNext(*clock_us);
    return !buffer_.empty();
  }

  AsyncDevice* device_;
  int file_;
  size_t next_;
  size_t end_;
  size_t buffer_elements_;
  size_t stride_;
  AsyncDevice::TransferId pending_ = 0;
  bool has_pending_ = false;
  std::vector<uint32_t> buffer_;
  size_t pos_ = 0;
};

/// Merges `runs` into one run appended to `out_file`, advancing the merge
/// phase's virtual clock and compute ledger. The group reserves its whole
/// working set — 2 buffers per cursor plus the output buffer — up front.
RunExtent MergeGroup(AsyncDevice& device, const std::vector<RunExtent>& runs,
                     int out_file, const Sizing& sizing, MemoryBudget* budget,
                     double* clock_us, double* compute_us) {
  const size_t stride = sizing.record_stride;
  const size_t buffer_bytes =
      sizing.merge_buffer_elements * stride * kDeviceElementBytes;
  BudgetReservation working(budget, (2 * runs.size() + 1) * buffer_bytes);
  const double levels = std::max(
      1.0, std::ceil(std::log2(static_cast<double>(runs.size()))));
  const double per_record_us = kMergeNsPerElementLevel * levels / 1000.0;

  const size_t begin = device.FileSize(out_file);
  std::vector<MergeCursor> cursors;
  cursors.reserve(runs.size());
  for (const RunExtent& run : runs) {
    cursors.emplace_back(&device, run, sizing.merge_buffer_elements, stride);
  }
  for (MergeCursor& cursor : cursors) cursor.Open(*clock_us);

  // The loser tree keys on the record key; each way's in-flight payload
  // rides alongside so a popped record re-emits its rowid unchanged.
  LoserTree tree(runs.size());
  std::vector<uint32_t> head_payload(runs.size(), 0);
  for (size_t way = 0; way < cursors.size(); ++way) {
    uint32_t head = 0;
    if (cursors[way].Peek(&head, &head_payload[way], clock_us)) {
      tree.Update(way, head, true);
    }
  }

  const size_t out_capacity = sizing.merge_buffer_elements * stride;
  std::vector<AsyncDevice::TransferId> writes;
  std::vector<uint32_t> out_buffer;
  out_buffer.reserve(out_capacity);
  const auto flush = [&] {
    if (out_buffer.empty()) return;
    // The emitted records cost compute before they can be written.
    const double cost =
        static_cast<double>(out_buffer.size() / stride) * per_record_us;
    *clock_us += cost;
    *compute_us += cost;
    writes.push_back(
        device.SubmitWrite(out_file, std::move(out_buffer), *clock_us));
    out_buffer = std::vector<uint32_t>();
    out_buffer.reserve(out_capacity);
  };

  while (!tree.Exhausted()) {
    const size_t way = tree.MinWay();
    out_buffer.push_back(tree.MinKey());
    if (stride == 2) out_buffer.push_back(head_payload[way]);
    if (out_buffer.size() >= out_capacity) flush();
    cursors[way].Advance();
    uint32_t head = 0;
    if (cursors[way].Peek(&head, &head_payload[way], clock_us)) {
      tree.Update(way, head, true);
    } else {
      tree.Update(way, 0, false);
    }
  }
  flush();
  for (const AsyncDevice::TransferId id : writes) {
    *clock_us = std::max(*clock_us, device.Wait(id));
  }
  return RunExtent{out_file, begin, device.FileSize(out_file)};
}

}  // namespace

Status ExternalSortOptions::Validate() const {
  // t only drives the approx stage; the precise configuration (and a
  // precise backend, whose knob is 0) never reads it.
  if (use_approx_refine && t <= 0.0) {
    return Status::InvalidArgument("t must be positive");
  }
  const size_t budget_bytes =
      budget != nullptr ? budget->capacity() : memory_budget_bytes;
  if (budget_bytes == 0 && run_elements == 0) {
    return Status::InvalidArgument(
        "an unlimited budget requires an explicit run_elements");
  }
  const size_t run_footprint = record_payloads
                                   ? kRecordRunFootprintBytesPerElement
                                   : kRunFootprintBytesPerElement;
  if (run_elements == 0 && budget_bytes < 2 * run_footprint) {
    return Status::InvalidArgument(
        "memory budget below the working set of a 2-element run");
  }
  if (run_elements == 1) {
    return Status::InvalidArgument("run_elements must be 0 (derived) or >= 2");
  }
  if (merge_fan_in == 1) {
    return Status::InvalidArgument(
        "merge_fan_in must be 0 (derived) or >= 2");
  }
  return Status::Ok();
}

StatusOr<ExternalSortReport> ExternalSort(core::ApproxSortEngine& engine,
                                          AsyncDevice& device, int input_file,
                                          const ExternalSortOptions& options,
                                          int* output_file) {
  const Status valid = options.Validate();
  if (!valid.ok()) return valid;

  MemoryBudget local_budget(options.memory_budget_bytes);
  MemoryBudget* budget =
      options.budget != nullptr ? options.budget : &local_budget;
  const Sizing sizing = DeriveSizing(options, device, budget->capacity());

  ExternalSortReport report;
  report.n = device.FileSize(input_file);
  report.run_elements = sizing.run_elements;
  report.merge_fan_in = sizing.merge_fan_in;
  report.spill_digest = EmptyDigest();
  const DeviceStats stats_at_start = device.stats();

  // ---- Phase 1: double-buffered run formation. The virtual clock starts
  // at 0; all submissions happen on this thread in deterministic order.
  const size_t run_count =
      report.n == 0 ? 0
                    : (report.n + sizing.run_elements - 1) /
                          sizing.run_elements;
  const auto chunk_begin = [&](size_t k) { return k * sizing.run_elements; };
  const auto chunk_count = [&](size_t k) {
    return std::min(sizing.run_elements, report.n - chunk_begin(k));
  };

  const int run_file = device.CreateFile();
  std::vector<RunExtent> runs;
  runs.reserve(run_count);

  std::vector<AsyncDevice::TransferId> prefetch(run_count, 0);
  std::vector<BudgetReservation> prefetch_slot(run_count);
  struct PendingFlush {
    AsyncDevice::TransferId id = 0;
    BudgetReservation slot;
    bool active = false;
  };
  std::vector<PendingFlush> flushes(run_count);

  double compute_free_us = 0.0;   // When the (single) modeled CPU frees up.
  double prev_sort_done_us = 0.0;  // sort_done[k-1], for prefetch ready.
  double formation_end_us = 0.0;

  if (run_count > 0) {
    prefetch_slot[0] = BudgetReservation(budget, chunk_count(0) * 4);
    prefetch[0] = device.SubmitRead(input_file, 0, chunk_count(0), 0.0);
  }
  for (size_t k = 0; k < run_count; ++k) {
    // Retire flush k-2: at most one flush stays in flight behind the
    // current sort, bounding the working set.
    if (k >= 2 && flushes[k - 2].active) {
      formation_end_us =
          std::max(formation_end_us, device.Wait(flushes[k - 2].id));
      flushes[k - 2].slot.reset();
      flushes[k - 2].active = false;
    }
    // Prefetch run k+1 into the slot sort k-1 just freed.
    if (k + 1 < run_count) {
      prefetch_slot[k + 1] = BudgetReservation(budget, chunk_count(k + 1) * 4);
      prefetch[k + 1] = device.SubmitRead(input_file, chunk_begin(k + 1),
                                          chunk_count(k + 1),
                                          prev_sort_done_us);
    }
    const double load_done_us = device.Wait(prefetch[k]);
    const std::vector<uint32_t> chunk = device.TakeData(prefetch[k]);
    APPROXMEM_CHECK(chunk.size() == chunk_count(k));

    // The run's sort, on this thread, with the allocation RNG rebased to
    // (seed, run index) and the sort's working set reserved around it. In
    // record-payload mode `sorted` interleaves <key, rowid> pairs, rowids
    // rebased to the run's global input offset.
    std::vector<uint32_t> sorted;
    double sort_cost_ns = 0.0;
    {
      BudgetReservation working(budget,
                                chunk.size() * kSortWorkingBytesPerElement);
      const uint64_t stream_key = options.stream_salt ^ (k + 1);
      std::vector<uint32_t> run_keys;
      std::vector<uint32_t> run_ids;
      std::vector<uint32_t>* keys_out =
          options.record_payloads ? &run_keys : &sorted;
      std::vector<uint32_t>* ids_out =
          options.record_payloads ? &run_ids : nullptr;
      if (options.use_approx_refine) {
        const auto run_report = engine.SortRunApproxRefine(
            chunk, options.algorithm, options.t, stream_key, keys_out,
            ids_out);
        if (!run_report.ok()) return run_report.status();
        if (!run_report->verified()) {
          return Status::Internal(
              "approx-refine produced an unverified run " +
              std::to_string(k) + ": " +
              run_report->verification.ToString());
        }
        report.memory_write_cost += run_report->TotalWriteCost();
        report.memory_read_cost += run_report->TotalReadCost();
        report.memory_stats += run_report->TotalStats();
        report.total_rem += run_report->rem_estimate;
        sort_cost_ns =
            run_report->TotalWriteCost() + run_report->TotalReadCost();
      } else {
        const auto baseline = engine.SortRunPrecise(chunk, options.algorithm,
                                                    options.stream_salt ^
                                                        (k + 1),
                                                    keys_out, ids_out);
        if (!baseline.ok()) return baseline.status();
        const double write_cost =
            baseline->keys.write_cost + baseline->ids.write_cost;
        const double read_cost =
            baseline->keys.read_cost + baseline->ids.read_cost;
        report.memory_write_cost += write_cost;
        report.memory_read_cost += read_cost;
        report.memory_stats += baseline->keys;
        report.memory_stats += baseline->ids;
        sort_cost_ns = write_cost + read_cost;
      }
      if (options.record_payloads) {
        const uint32_t base = static_cast<uint32_t>(chunk_begin(k));
        sorted.resize(run_keys.size() * 2);
        for (size_t i = 0; i < run_keys.size(); ++i) {
          sorted[2 * i] = run_keys[i];
          sorted[2 * i + 1] = base + run_ids[i];
        }
      }
    }
    prefetch_slot[k].reset();
    APPROXMEM_CHECK(sorted.size() ==
                    chunk.size() * sizing.record_stride);

    const double sort_start_us = std::max(compute_free_us, load_done_us);
    const double sort_done_us = sort_start_us + sort_cost_ns / 1000.0;
    compute_free_us = sort_done_us;
    report.run_formation.compute_us += sort_cost_ns / 1000.0;
    prev_sort_done_us = sort_done_us;

    report.spill_digest = testing::Fnv1a64(
        sorted.data(), sorted.size() * sizeof(uint32_t), report.spill_digest);

    const size_t begin = device.FileSize(run_file);
    flushes[k].slot = BudgetReservation(budget, sorted.size() * 4);
    flushes[k].id =
        device.SubmitWrite(run_file, std::move(sorted), sort_done_us);
    flushes[k].active = true;
    runs.push_back(RunExtent{run_file, begin, device.FileSize(run_file)});
  }
  for (PendingFlush& pending : flushes) {
    if (!pending.active) continue;
    formation_end_us = std::max(formation_end_us, device.Wait(pending.id));
    pending.slot.reset();
    pending.active = false;
  }
  formation_end_us = std::max(formation_end_us, compute_free_us);
  report.initial_runs = runs.size();
  {
    const DeviceStats after = device.stats();
    report.run_formation.io_busy_us =
        StatsDelta(after, stats_at_start).BusyUs();
    report.run_formation.makespan_us = formation_end_us;
  }

  // ---- Phase 2: loser-tree merge passes with per-cursor read-ahead.
  const DeviceStats stats_at_merge = device.stats();
  double clock_us = formation_end_us;
  while (runs.size() > 1) {
    ++report.merge_passes;
    const int next_file = device.CreateFile();
    std::vector<RunExtent> next_runs;
    std::vector<int> spent_files;
    for (size_t group = 0; group < runs.size();
         group += sizing.merge_fan_in) {
      const size_t group_end =
          std::min(group + sizing.merge_fan_in, runs.size());
      const std::vector<RunExtent> group_runs(
          runs.begin() + static_cast<ptrdiff_t>(group),
          runs.begin() + static_cast<ptrdiff_t>(group_end));
      next_runs.push_back(MergeGroup(device, group_runs, next_file, sizing,
                                     budget, &clock_us,
                                     &report.merge.compute_us));
    }
    // The pass's input files are spent; drop their contents (free of
    // charge, like deleting temporary spill files).
    for (const RunExtent& run : runs) {
      if (run.file != input_file && (spent_files.empty() ||
                                     spent_files.back() != run.file)) {
        spent_files.push_back(run.file);
      }
    }
    runs = std::move(next_runs);
    for (const int file : spent_files) device.Truncate(file);
  }
  {
    const DeviceStats after = device.stats();
    report.merge.io_busy_us = StatsDelta(after, stats_at_merge).BusyUs();
    report.merge.makespan_us = clock_us - formation_end_us;
  }

  // ---- Output file resolution.
  int final_file;
  if (runs.empty()) {
    final_file = device.CreateFile();  // Empty input -> empty output.
  } else if (runs[0].begin == 0 &&
             runs[0].end == device.FileSize(runs[0].file)) {
    final_file = runs[0].file;
  } else {
    // Single run embedded in a shared file: copy it out.
    final_file = device.CreateFile();
    const AsyncDevice::TransferId read = device.SubmitRead(
        runs[0].file, runs[0].begin, runs[0].end - runs[0].begin, clock_us);
    clock_us = std::max(clock_us, device.Wait(read));
    const AsyncDevice::TransferId write =
        device.SubmitWrite(final_file, device.TakeData(read), clock_us);
    clock_us = std::max(clock_us, device.Wait(write));
  }

  {
    const DeviceStats delta = StatsDelta(device.stats(), stats_at_start);
    report.bytes_spilled =
        delta.bytes_written - device.FileSize(final_file) * 4;
  }
  report.device = device.stats();
  report.budget_high_water = budget->high_water();

  // ---- Verification (unaccounted reads) and the output digest.
  device.Drain();
  const std::vector<uint32_t> output = device.PeekData(final_file);
  report.output_digest =
      output.empty() ? EmptyDigest()
                     : testing::Fnv1a64(output.data(),
                                        output.size() * sizeof(uint32_t));
  if (!options.verify) {
    report.verified = true;
  } else if (options.record_payloads) {
    // Permutation certificate: output keys exactly sorted, rowids a
    // permutation of [0, n), and key[i] == input[rowid[i]] — the same
    // invariants the differential oracle checks for in-memory sorts.
    if (output.size() == report.n * 2) {
      std::vector<uint32_t> out_keys(report.n);
      std::vector<uint32_t> out_ids(report.n);
      for (size_t i = 0; i < report.n; ++i) {
        out_keys[i] = output[2 * i];
        out_ids[i] = output[2 * i + 1];
      }
      report.verified = refine::VerifyRefineOutput(
                            device.PeekData(input_file), out_keys, out_ids)
                            .ok();
    } else {
      report.verified = false;
    }
  } else {
    report.verified = output.size() == report.n &&
                      sortedness::IsSorted(output) &&
                      sortedness::IsPermutationOf(device.PeekData(input_file),
                                                  output);
  }
  if (output_file != nullptr) *output_file = final_file;
  return report;
}

}  // namespace approxmem::extsort
