// External merge sort whose in-memory sorting step runs under approx-refine
// (the Section 4.1 scenario).
//
// Phase 1 (run formation): read memory-budget-sized chunks from disk, sort
// each with approx-refine in the hybrid memory (or precisely, for the
// baseline), write sorted runs back to disk.
// Phase 2 (merge): k-way loser-tree merge of the runs with block-buffered
// cursors, repeated in passes while more than `merge_fan_in` runs remain.
// Disk I/O is identical between the approximate and precise configurations;
// the entire difference is the in-memory write cost — which is the point.
#ifndef APPROXMEM_EXTSORT_EXTERNAL_SORT_H_
#define APPROXMEM_EXTSORT_EXTERNAL_SORT_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "core/engine.h"
#include "extsort/disk_model.h"
#include "sort/sort_common.h"

namespace approxmem::extsort {

struct ExternalSortOptions {
  /// Elements the in-memory phase may hold at once (the run size).
  size_t memory_budget_elements = 1 << 16;
  /// Algorithm for the in-memory sorts.
  sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};
  /// Guard-band half-width for the approx stage.
  double t = 0.055;
  /// false = precise in-memory sorts (the baseline configuration).
  bool use_approx_refine = true;
  /// Maximum runs merged per pass; more runs trigger multiple passes.
  size_t merge_fan_in = 16;
  /// Elements buffered per run cursor during merging.
  size_t merge_buffer_elements = 1024;

  Status Validate() const;
};

struct ExternalSortReport {
  size_t n = 0;
  size_t initial_runs = 0;
  size_t merge_passes = 0;
  DiskStats disk;
  /// Simulated memory write cost of all in-memory sorts (ns).
  double memory_write_cost = 0.0;
  /// Heuristic-REM total across runs (0 in precise mode).
  size_t total_rem = 0;
  /// Output is exactly sorted and a permutation of the input.
  bool verified = false;
};

/// Sorts `input_file` on `disk`; returns the report and stores the output
/// file id in `*output_file`. The engine provides the hybrid memory.
StatusOr<ExternalSortReport> ExternalSort(core::ApproxSortEngine& engine,
                                          SimulatedDisk& disk, int input_file,
                                          const ExternalSortOptions& options,
                                          int* output_file);

}  // namespace approxmem::extsort

#endif  // APPROXMEM_EXTSORT_EXTERNAL_SORT_H_
