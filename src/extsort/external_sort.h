// Production-scale out-of-core external sort with async I/O overlap
// (the paper's Section 4.1 disk scenario, grown up).
//
// Phase 1 — run formation, double-buffered: while run k sorts under
// approx-refine in the hybrid memory (or precisely, for the baseline
// configuration), run k+1's input is prefetching from the device and run
// k-1's sorted output is flushing. Every run's sort happens on the calling
// thread with the allocation RNG rebased to (seed, run index) via
// ApproxSortEngine::SortRunApproxRefine, so run contents — and therefore
// the spill digest — are byte-identical at any thread count.
//
// Phase 2 — k-way loser-tree merge with per-cursor read-ahead, in passes
// while more runs remain than the derived fan-in.
//
// Both phases live under a strict MemoryBudget contract: run size and
// merge fan-in are derived from the budget, every working buffer reserves
// its modeled footprint before it exists, and a breach CHECK-fails.
//
// Disk traffic is identical between the approximate and precise
// configurations; the entire difference is the in-memory write cost —
// which is the paper's point, now measured with I/O-compute overlap
// accounted (a cheaper in-memory sort only helps wall time once the sort,
// not the device, is the pipeline's critical path).
#ifndef APPROXMEM_EXTSORT_EXTERNAL_SORT_H_
#define APPROXMEM_EXTSORT_EXTERNAL_SORT_H_

#include <cstddef>
#include <cstdint>

#include "approx/memory_stats.h"
#include "common/memory_budget.h"
#include "common/status.h"
#include "core/engine.h"
#include "extsort/async_device.h"
#include "sort/sort_common.h"

namespace approxmem::extsort {

/// Modeled working-set footprint of run formation, in bytes per element:
/// 2 prefetch slots + 1 in-flight flush buffer + the approx-refine
/// pipeline's Key0/ID/Key~ + radix scratch (keys and IDs) + the final
/// <Key, ID> output + REMID headroom = 12 x 4-byte words. The derived run
/// size is memory_budget_bytes / 48, so the pipeline's peak reservation
/// meets the budget exactly.
inline constexpr size_t kRunFootprintBytesPerElement = 48;
/// The in-sort portion of the footprint (everything but the prefetch and
/// flush slots), reserved around each run's sort.
inline constexpr size_t kSortWorkingBytesPerElement = 36;
/// Bytes per device element (32-bit words).
inline constexpr size_t kDeviceElementBytes = 4;
/// Bytes per spilled record in record-payload mode: an interleaved
/// <key, rowid> pair of 32-bit words.
inline constexpr size_t kRecordBytes = 8;
/// Run-formation footprint per element with record payloads: the prefetch
/// slots still hold bare input keys (2 x 4B) and the sort working set
/// already carries IDs (36B), but the in-flight flush buffer now holds
/// 8-byte records instead of 4-byte keys — 52B/elem total. The derived run
/// size in payload mode is memory_budget_bytes / 52.
inline constexpr size_t kRecordRunFootprintBytesPerElement =
    kRunFootprintBytesPerElement - kDeviceElementBytes + kRecordBytes;
/// Modeled merge compute per element per loser-tree level, in virtual ns.
inline constexpr double kMergeNsPerElementLevel = 2.0;

struct ExternalSortOptions {
  /// Total modeled working memory for both phases. Run size and merge
  /// fan-in are derived from this unless overridden below.
  size_t memory_budget_bytes = 8u << 20;
  /// Optional externally owned budget (e.g. shared across concurrent
  /// sorts); when null, an internal budget of memory_budget_bytes is used.
  MemoryBudget* budget = nullptr;
  /// Algorithm for the in-memory sorts.
  sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};
  /// Guard-band half-width (backend knob) for the approx stage.
  double t = 0.055;
  /// false = precise in-memory sorts (the baseline configuration).
  bool use_approx_refine = true;
  /// Elements per run; 0 derives budget / kRunFootprintBytesPerElement.
  size_t run_elements = 0;
  /// Maximum runs merged per pass; 0 derives from the budget and the
  /// merge buffer size (more initial runs than fan-in means extra passes).
  size_t merge_fan_in = 0;
  /// Elements per merge cursor buffer; 0 derives max(block, 4096),
  /// shrunk if needed so the minimum 2-way merge group fits the budget.
  size_t merge_buffer_elements = 0;
  /// Salt folded into each run's BeginJobStream key.
  uint64_t stream_salt = 0x5b1dULL;
  /// Verify the output against the input (sorted + permutation); skippable
  /// for sweeps that gate on digests instead.
  bool verify = true;
  /// Record payloads: spill <key, rowid> pairs (8 bytes per record,
  /// interleaved 32-bit words) instead of bare keys, all the way through
  /// run formation, the merge cursors, and the final output — which then
  /// verifies as a permutation certificate (keys sorted, rowids a
  /// permutation of [0, n), key[i] == input[rowid[i]]), the same contract
  /// the differential oracle checks for in-memory sorts. The input file
  /// still holds bare keys; rowids are their global input offsets.
  bool record_payloads = false;

  Status Validate() const;
};

/// Virtual-time accounting of one phase. The overlap ratio is
/// (device busy + compute) / makespan: exactly 1.0 for a serial
/// read-sort-write loop, > 1.0 whenever I/O ran under compute.
struct PhaseMetrics {
  double io_busy_us = 0.0;
  double compute_us = 0.0;
  double makespan_us = 0.0;

  double OverlapRatio() const {
    return makespan_us > 0.0 ? (io_busy_us + compute_us) / makespan_us : 1.0;
  }
};

struct ExternalSortReport {
  size_t n = 0;
  size_t initial_runs = 0;
  size_t merge_passes = 0;
  /// Derived (or overridden) sizing, echoed for instrumentation.
  size_t run_elements = 0;
  size_t merge_fan_in = 0;
  /// Bytes written to the device beyond the final output: initial runs
  /// plus intermediate merge passes.
  uint64_t bytes_spilled = 0;
  DeviceStats device;
  PhaseMetrics run_formation;
  PhaseMetrics merge;
  /// Simulated memory write / read cost of all in-memory sorts (ns).
  double memory_write_cost = 0.0;
  double memory_read_cost = 0.0;
  /// Full simulated-memory ledger summed over every run's sort — what a
  /// scheduler charges into tenant/wear accounting (Eq. 2 numerator for
  /// the approx configuration).
  approx::MemoryStats memory_stats;
  /// Heuristic-REM total across runs (0 in precise mode).
  size_t total_rem = 0;
  /// FNV-1a over every initial run's sorted bytes, in run order — the
  /// determinism gate: identical at any thread count for a fixed seed.
  uint64_t spill_digest = 0;
  /// FNV-1a over the final output bytes.
  uint64_t output_digest = 0;
  /// Peak modeled reservation against the budget.
  size_t budget_high_water = 0;
  /// Output is exactly sorted and a permutation of the input (always true
  /// when options.verify was off — digests are the gate then).
  bool verified = false;

  /// End-to-end overlap across both phases.
  PhaseMetrics Total() const {
    return PhaseMetrics{run_formation.io_busy_us + merge.io_busy_us,
                        run_formation.compute_us + merge.compute_us,
                        run_formation.makespan_us + merge.makespan_us};
  }
};

/// Sorts `input_file` on `device`; returns the report and stores the
/// output file id in `*output_file`. The engine provides the hybrid
/// memory; the device's ThreadPool provides the I/O concurrency.
StatusOr<ExternalSortReport> ExternalSort(core::ApproxSortEngine& engine,
                                          AsyncDevice& device, int input_file,
                                          const ExternalSortOptions& options,
                                          int* output_file);

}  // namespace approxmem::extsort

#endif  // APPROXMEM_EXTSORT_EXTERNAL_SORT_H_
