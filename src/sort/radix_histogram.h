// Histogram-based radix sorts (Appendix B).
//
// Models the write pattern of the Polychroniou & Ross (SIGMOD'14)
// partitioning-based radix sorts: each pass first builds a histogram of
// digit counts (reads only), then scatters every element directly to its
// final slot in the other buffer (exactly one key write per element per
// pass). Compared with the queue-bucket implementations this halves the
// key writes per pass, which is why Appendix B observes slightly smaller
// write reductions from approximate memory. SIMD is not modeled: vector
// lanes change CPU time, not the number or order of memory writes, which
// is the metric under study (see DESIGN.md, substitutions).
#ifndef APPROXMEM_SORT_RADIX_HISTOGRAM_H_
#define APPROXMEM_SORT_RADIX_HISTOGRAM_H_

#include "common/status.h"
#include "sort/sort_common.h"

namespace approxmem {
class ThreadPool;
}

namespace approxmem::sort {

struct HistogramRadixOptions {
  int bits = 6;
  /// MSD only: buckets at or below this size finish with insertion sort.
  size_t insertion_cutoff = 32;
  /// LSD only: worker pool for the striped counting/scatter passes (null
  /// means serial). Results never depend on the thread count.
  ThreadPool* pool = nullptr;
};

/// Histogram-based LSD radix sort: ceil(32/bits) stable counting passes,
/// ping-ponging between the input and one scratch buffer. Each pass reads
/// every element once (counting digits and stashing the observed value in
/// DRAM) and writes it once, straight to its final slot in the other
/// buffer.
Status LsdHistogramSort(SortSpec& spec, const HistogramRadixOptions& options);

/// Histogram-based MSD radix sort: recursive counting partition, scattering
/// between buffers per level, with a parity copy at the leaves.
Status MsdHistogramSort(SortSpec& spec, const HistogramRadixOptions& options);

}  // namespace approxmem::sort

#endif  // APPROXMEM_SORT_RADIX_HISTOGRAM_H_
