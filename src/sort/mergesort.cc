#include "sort/mergesort.h"

#include <algorithm>

#include "sort/quicksort.h"

namespace approxmem::sort {
namespace {

// One element move from (src_keys, src_ids)[from] to (dst_keys, dst_ids)[to].
inline void MoveElement(approx::ApproxArrayU32& src_keys,
                        approx::ApproxArrayU32* src_ids,
                        approx::ApproxArrayU32& dst_keys,
                        approx::ApproxArrayU32* dst_ids, size_t from,
                        size_t to) {
  dst_keys.Set(to, src_keys.Get(from));
  if (src_ids != nullptr) dst_ids->Set(to, src_ids->Get(from));
}

// Merges src[lo, mid) and src[mid, hi) into dst[lo, hi).
void MergeRuns(approx::ApproxArrayU32& src_keys,
               approx::ApproxArrayU32* src_ids,
               approx::ApproxArrayU32& dst_keys,
               approx::ApproxArrayU32* dst_ids, size_t lo, size_t mid,
               size_t hi) {
  size_t left = lo;
  size_t right = mid;
  for (size_t out = lo; out < hi; ++out) {
    const bool take_left =
        left < mid &&
        (right >= hi || src_keys.Get(left) <= src_keys.Get(right));
    const size_t from = take_left ? left++ : right++;
    MoveElement(src_keys, src_ids, dst_keys, dst_ids, from, out);
  }
}

}  // namespace

Status Mergesort(SortSpec& spec, const MergesortOptions& options) {
  Status status = ValidateSpec(spec, /*needs_buffers=*/true);
  if (!status.ok()) return status;
  const size_t n = spec.keys->size();
  if (n < 2) return Status::Ok();

  const size_t base = std::max<size_t>(options.base_run_elements, 1);
  if (base > 1) {
    for (size_t lo = 0; lo < n; lo += base) {
      const size_t hi = std::min(lo + base, n) - 1;
      if (hi > lo) InsertionSortRange(spec, lo, hi);
    }
  }

  approx::ApproxArrayU32 scratch_keys = spec.alloc_key_buffer(n);
  approx::ApproxArrayU32 scratch_ids_storage =
      spec.ids != nullptr ? spec.alloc_id_buffer(n)
                          : approx::ApproxArrayU32(0, nullptr, Rng(0));
  approx::ApproxArrayU32* scratch_ids =
      spec.ids != nullptr ? &scratch_ids_storage : nullptr;

  approx::ApproxArrayU32* src_keys = spec.keys;
  approx::ApproxArrayU32* dst_keys = &scratch_keys;
  approx::ApproxArrayU32* src_ids = spec.ids;
  approx::ApproxArrayU32* dst_ids = scratch_ids;

  for (size_t run = base; run < n; run *= 2) {
    for (size_t lo = 0; lo < n; lo += 2 * run) {
      const size_t mid = std::min(lo + run, n);
      const size_t hi = std::min(lo + 2 * run, n);
      MergeRuns(*src_keys, src_ids, *dst_keys, dst_ids, lo, mid, hi);
    }
    std::swap(src_keys, dst_keys);
    std::swap(src_ids, dst_ids);
  }

  // After an odd number of passes the sorted data sits in the scratch
  // buffers; copy it back (counted writes, as a real implementation would).
  if (src_keys != spec.keys) {
    for (size_t i = 0; i < n; ++i) {
      MoveElement(*src_keys, src_ids, *spec.keys, spec.ids, i, i);
    }
  }
  return Status::Ok();
}

}  // namespace approxmem::sort
