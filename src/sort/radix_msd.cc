#include "sort/radix_msd.h"

#include <utility>
#include <vector>

#include "sort/quicksort.h"
#include "sort/radix_common.h"

namespace approxmem::sort {
namespace {

struct Segment {
  size_t lo;
  size_t hi;  // Exclusive.
  int shift;  // Right-shift of the digit to partition by; < 0 means done.
};

}  // namespace

Status MsdRadixSort(SortSpec& spec, const MsdRadixOptions& options) {
  Status status = ValidateSpec(spec, /*needs_buffers=*/true);
  if (!status.ok()) return status;
  if (options.bits < 1 || options.bits > 16) {
    return Status::InvalidArgument("MSD radix bits must be in [1, 16]");
  }
  const size_t n = spec.keys->size();
  if (n < 2) return Status::Ok();

  const RadixPlan plan = RadixPlan::ForBits(options.bits);
  approx::ApproxArrayU32 key_arena = spec.alloc_key_buffer(n);
  approx::ApproxArrayU32 id_arena_storage =
      spec.ids != nullptr ? spec.alloc_id_buffer(n)
                          : approx::ApproxArrayU32(0, nullptr, Rng(0));
  approx::ApproxArrayU32* id_arena =
      spec.ids != nullptr ? &id_arena_storage : nullptr;

  const size_t cutoff = options.insertion_cutoff;
  std::vector<Segment> stack;
  stack.push_back(Segment{0, n, plan.TopShift()});

  while (!stack.empty()) {
    const Segment seg = stack.back();
    stack.pop_back();
    const size_t len = seg.hi - seg.lo;
    if (len < 2) continue;
    if (len <= cutoff || seg.shift < 0) {
      InsertionSortRange(spec, seg.lo, seg.hi - 1);
      continue;
    }

    // Partition [lo, hi) by the digit at seg.shift through bucket queues
    // backed by the arena region [lo, hi).
    BucketQueues queues(plan.buckets, &key_arena, id_arena, seg.lo);
    for (size_t i = seg.lo; i < seg.hi; ++i) {
      const uint32_t key = spec.keys->Get(i);
      const uint32_t id = spec.ids != nullptr ? spec.ids->Get(i) : 0;
      queues.Push((key >> seg.shift) & plan.mask, key, id);
    }
    queues.DrainTo(*spec.keys, spec.ids, seg.lo);

    size_t offset = seg.lo;
    for (uint32_t b = 0; b < plan.buckets; ++b) {
      const size_t size = queues.BucketSize(b);
      if (size > 1) {
        stack.push_back(Segment{offset, offset + size,
                                seg.shift - plan.bits});
      }
      offset += size;
    }
  }
  return Status::Ok();
}

}  // namespace approxmem::sort
