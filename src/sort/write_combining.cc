#include "sort/write_combining.h"

#include <algorithm>

#include "common/check.h"

namespace approxmem::sort {

WriteCombiningQueues::WriteCombiningQueues(uint32_t num_buckets,
                                           approx::ApproxArrayU32* key_arena,
                                           approx::ApproxArrayU32* id_arena,
                                           size_t chunk_elements)
    : key_arena_(key_arena),
      id_arena_(id_arena),
      chunk_elements_(chunk_elements),
      buckets_(num_buckets) {
  APPROXMEM_CHECK(key_arena != nullptr);
  APPROXMEM_CHECK(chunk_elements >= 1);
  for (Bucket& bucket : buckets_) {
    bucket.staged_keys.reserve(chunk_elements);
    bucket.staged_ids.reserve(chunk_elements);
  }
}

size_t WriteCombiningQueues::ArenaCapacity(size_t n, uint32_t buckets,
                                           size_t chunk_elements) {
  // Worst case: every bucket ends with a nearly empty chunk.
  const size_t chunks = (n + chunk_elements - 1) / chunk_elements + buckets;
  return chunks * chunk_elements;
}

void WriteCombiningQueues::FlushBucket(Bucket& bucket) {
  if (bucket.staged_keys.empty()) return;
  const size_t chunk = next_chunk_++;
  const size_t base = chunk * chunk_elements_;
  APPROXMEM_CHECK(base + chunk_elements_ <= key_arena_->size());
  bucket.chunks.push_back(static_cast<uint32_t>(chunk));
  // The whole point: the flush is one sequential burst into the arena.
  for (size_t i = 0; i < bucket.staged_keys.size(); ++i) {
    key_arena_->Set(base + i, bucket.staged_keys[i]);
    if (id_arena_ != nullptr) id_arena_->Set(base + i, bucket.staged_ids[i]);
  }
  bucket.elements += bucket.staged_keys.size();
  bucket.staged_keys.clear();
  bucket.staged_ids.clear();
}

void WriteCombiningQueues::Push(uint32_t bucket_index, uint32_t key,
                                uint32_t id) {
  APPROXMEM_CHECK(bucket_index < buckets_.size());
  Bucket& bucket = buckets_[bucket_index];
  bucket.staged_keys.push_back(key);
  bucket.staged_ids.push_back(id);
  ++total_pushed_;
  if (bucket.staged_keys.size() >= chunk_elements_) FlushBucket(bucket);
}

size_t WriteCombiningQueues::BucketSize(uint32_t bucket) const {
  APPROXMEM_CHECK(bucket < buckets_.size());
  return buckets_[bucket].elements + buckets_[bucket].staged_keys.size();
}

size_t WriteCombiningQueues::DrainTo(approx::ApproxArrayU32& keys,
                                     approx::ApproxArrayU32* ids,
                                     size_t out_base) {
  size_t out = out_base;
  for (Bucket& bucket : buckets_) {
    FlushBucket(bucket);
    size_t remaining = bucket.elements;
    for (const uint32_t chunk : bucket.chunks) {
      const size_t base = static_cast<size_t>(chunk) * chunk_elements_;
      const size_t count = std::min(chunk_elements_, remaining);
      for (size_t i = 0; i < count; ++i) {
        keys.Set(out, key_arena_->Get(base + i));
        if (ids != nullptr && id_arena_ != nullptr) {
          ids->Set(out, id_arena_->Get(base + i));
        }
        ++out;
      }
      remaining -= count;
    }
    APPROXMEM_CHECK(remaining == 0);
  }
  return out - out_base;
}

void WriteCombiningQueues::Reset() {
  for (Bucket& bucket : buckets_) {
    bucket.staged_keys.clear();
    bucket.staged_ids.clear();
    bucket.chunks.clear();
    bucket.elements = 0;
  }
  next_chunk_ = 0;
  total_pushed_ = 0;
}

}  // namespace approxmem::sort
