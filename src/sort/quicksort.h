// Randomized in-place quicksort (Section 3.1).
//
// Hoare partitioning with a uniformly random pivot (the paper randomizes
// the pivot to dodge O(n^2) worst cases) and an insertion-sort cutoff for
// small partitions. Every element move is two simulated reads and two
// simulated writes (key + id), so write counts match the paper's
// alpha_quicksort(n) ~ n*log2(n)/2 accounting.
#ifndef APPROXMEM_SORT_QUICKSORT_H_
#define APPROXMEM_SORT_QUICKSORT_H_

#include "common/random.h"
#include "common/status.h"
#include "sort/sort_common.h"

namespace approxmem::sort {

struct QuicksortOptions {
  /// Partitions at or below this size finish with insertion sort.
  size_t insertion_cutoff = 16;
};

/// Sorts spec.keys (and spec.ids) ascending by key. In-place; needs no
/// scratch allocators.
Status Quicksort(SortSpec& spec, const QuicksortOptions& options, Rng& rng);

/// Insertion-sorts the closed range [lo, hi] of spec. Exposed for the MSD
/// radix small-bucket cutoff and for tests.
void InsertionSortRange(SortSpec& spec, size_t lo, size_t hi);

}  // namespace approxmem::sort

#endif  // APPROXMEM_SORT_QUICKSORT_H_
