// Software-managed write-combining bucket queues (Section 3.1 cites the
// write-combining technique of Balkesen et al. as "adopted whenever
// appropriate").
//
// Instead of writing each pushed element straight into the arena, elements
// stage in small per-bucket DRAM buffers and flush to the arena in
// contiguous chunks. The write *count* is unchanged; what changes is the
// access pattern: every flush is a sequential burst, which pays off once
// the memory model distinguishes sequential from random writes (the
// sequential-write discount / row-buffer model). The arena becomes a
// chunked free list, so buckets own chains of fixed-size chunks instead of
// interleaved single slots.
#ifndef APPROXMEM_SORT_WRITE_COMBINING_H_
#define APPROXMEM_SORT_WRITE_COMBINING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "approx/approx_array.h"
#include "common/status.h"

namespace approxmem::sort {

/// Bucket queues with software write combining. API mirrors BucketQueues.
class WriteCombiningQueues {
 public:
  /// `chunk_elements` is both the DRAM staging-buffer size per bucket and
  /// the arena chunk size. The arena must hold every pushed element plus
  /// at most one partially filled chunk per bucket.
  WriteCombiningQueues(uint32_t num_buckets,
                       approx::ApproxArrayU32* key_arena,
                       approx::ApproxArrayU32* id_arena,
                       size_t chunk_elements = 64);

  /// Stages (key, id) for `bucket`; flushes a full chunk sequentially.
  void Push(uint32_t bucket, uint32_t key, uint32_t id);

  /// Flushes all partial buffers, then writes every bucket's elements, in
  /// bucket order, into keys[out_base...] (and ids). Returns the count.
  size_t DrainTo(approx::ApproxArrayU32& keys, approx::ApproxArrayU32* ids,
                 size_t out_base);

  size_t BucketSize(uint32_t bucket) const;
  size_t TotalPushed() const { return total_pushed_; }

  /// Required arena capacity for `n` pushed elements across `buckets`
  /// buckets at `chunk_elements` chunking (chunk-granular rounding).
  static size_t ArenaCapacity(size_t n, uint32_t buckets,
                              size_t chunk_elements);

  void Reset();

 private:
  struct Bucket {
    std::vector<uint32_t> staged_keys;  // DRAM staging buffer.
    std::vector<uint32_t> staged_ids;
    std::vector<uint32_t> chunks;       // Arena chunk indices, in order.
    size_t elements = 0;                // Flushed elements.
  };

  void FlushBucket(Bucket& bucket);

  approx::ApproxArrayU32* key_arena_;
  approx::ApproxArrayU32* id_arena_;
  size_t chunk_elements_;
  size_t next_chunk_ = 0;
  size_t total_pushed_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace approxmem::sort

#endif  // APPROXMEM_SORT_WRITE_COMBINING_H_
