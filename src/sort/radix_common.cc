#include "sort/radix_common.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"

namespace approxmem::sort {

StripePlan StripePlan::ForN(size_t n) {
  StripePlan plan;
  plan.n = n;
  plan.count =
      std::clamp<size_t>(n / kMinStripeElements, 1, kMaxStripes);
  return plan;
}

size_t LsdArenaCapacity(size_t n) { return n; }

void RunStripes(ThreadPool* pool, bool concurrent_ok, size_t count,
                const std::function<void(size_t)>& fn) {
  if (pool != nullptr && concurrent_ok && count > 1) {
    pool->ParallelFor(0, count, fn);
  } else {
    for (size_t s = 0; s < count; ++s) fn(s);
  }
}

RadixPlan RadixPlan::ForBits(int bits) {
  APPROXMEM_CHECK(bits >= 1 && bits <= 16);
  RadixPlan plan;
  plan.bits = bits;
  plan.passes = (32 + bits - 1) / bits;
  plan.mask = (1u << bits) - 1u;
  plan.buckets = 1u << bits;
  return plan;
}

uint32_t RadixPlan::DigitLsd(uint32_t key, int pass) const {
  return (key >> (bits * pass)) & mask;
}

BucketQueues::BucketQueues(uint32_t num_buckets,
                           approx::ApproxArrayU32* key_arena,
                           approx::ApproxArrayU32* id_arena, size_t arena_base)
    : key_arena_(key_arena),
      id_arena_(id_arena),
      arena_base_(arena_base),
      next_(arena_base),
      positions_(num_buckets) {
  APPROXMEM_CHECK(key_arena != nullptr);
}

void BucketQueues::Push(uint32_t bucket, uint32_t key, uint32_t id) {
  APPROXMEM_CHECK(bucket < positions_.size());
  APPROXMEM_CHECK(next_ < key_arena_->size());
  key_arena_->Set(next_, key);
  if (id_arena_ != nullptr) id_arena_->Set(next_, id);
  positions_[bucket].push_back(static_cast<uint32_t>(next_));
  ++next_;
}

size_t BucketQueues::DrainTo(approx::ApproxArrayU32& keys,
                             approx::ApproxArrayU32* ids, size_t out_base) {
  size_t out = out_base;
  for (const auto& bucket : positions_) {
    for (const uint32_t pos : bucket) {
      keys.Set(out, key_arena_->Get(pos));
      if (ids != nullptr && id_arena_ != nullptr) {
        ids->Set(out, id_arena_->Get(pos));
      }
      ++out;
    }
  }
  return out - out_base;
}

void BucketQueues::Reset() {
  for (auto& bucket : positions_) bucket.clear();
  next_ = arena_base_;
}

}  // namespace approxmem::sort
