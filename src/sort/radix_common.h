// Shared machinery of the radix-sort family: digit plans and queue-bucket
// storage (Section 3.1 implements LSD/MSD "using queues as buckets").
#ifndef APPROXMEM_SORT_RADIX_COMMON_H_
#define APPROXMEM_SORT_RADIX_COMMON_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "approx/approx_array.h"
#include "common/status.h"
#include "sort/sort_common.h"

namespace approxmem {
class ThreadPool;
}

namespace approxmem::sort {

/// Pass layout for a given digit width over 32-bit keys.
struct RadixPlan {
  int bits = 6;             // 3..6 in the paper (8..64 buckets).
  int passes = 6;           // ceil(32 / bits).
  uint32_t mask = 63;       // (1 << bits) - 1.
  uint32_t buckets = 64;    // 1 << bits.

  static RadixPlan ForBits(int bits);
  /// Digit of `key` for `pass` counted from the least significant digit.
  uint32_t DigitLsd(uint32_t key, int pass) const;
  /// Right-shift amount of the most significant digit.
  int TopShift() const { return bits * (passes - 1); }
};

/// Fixed decomposition of [0, n) into contiguous stripes for the parallel
/// radix passes. The stripe count is a function of n alone — never of the
/// thread count — so per-stripe RNG substreams, digit histograms, and
/// scatter windows are identical no matter how stripes are scheduled.
struct StripePlan {
  size_t n = 0;
  size_t count = 1;

  /// Stripes hold at least this many elements (tiny inputs stay serial);
  /// the count is capped so per-stripe state stays small.
  static constexpr size_t kMinStripeElements = 2048;
  static constexpr size_t kMaxStripes = 64;

  static StripePlan ForN(size_t n);
  size_t Begin(size_t stripe) const { return stripe * n / count; }
  size_t End(size_t stripe) const { return (stripe + 1) * n / count; }
};

/// Arena words needed by one LSD scatter pass over `n` elements: the
/// per-(bucket, stripe) windows tile [0, n) exactly, so both the key and
/// the id arena need exactly n words. (The legacy chunked free-list layout
/// rounded up to `buckets` extra chunks, and allocated the same slack a
/// second time for the id arena.)
size_t LsdArenaCapacity(size_t n);

/// Runs fn(stripe) for stripes [0, count): concurrently on `pool` when
/// `concurrent_ok` and a multi-thread pool is given, serially in stripe
/// order otherwise. Callers decompose the work so both schedules give
/// bit-identical results.
void RunStripes(ThreadPool* pool, bool concurrent_ok, size_t count,
                const std::function<void(size_t)>& fn);

/// Queue-bucket storage backed by instrumented scratch arrays.
///
/// Pushing appends the key (and id) to a bump arena — one simulated data
/// write each, in the arena's precision domain — and records the slot in a
/// per-bucket position list. The position lists are queue metadata
/// (pointers in a real implementation) and are not counted as data writes.
/// Draining replays buckets in order back into the destination arrays, one
/// read + one write per element.
class BucketQueues {
 public:
  /// `key_arena` must have capacity for every pushed element starting at
  /// `arena_base`; `id_arena` may be null when no ids are tracked.
  BucketQueues(uint32_t num_buckets, approx::ApproxArrayU32* key_arena,
               approx::ApproxArrayU32* id_arena, size_t arena_base = 0);

  /// Appends (key, id) to `bucket`. Ignores `id` when ids are not tracked.
  void Push(uint32_t bucket, uint32_t key, uint32_t id);

  /// Writes all buckets, in bucket order, into keys[out_base...] (and ids).
  /// Returns the number of elements drained.
  size_t DrainTo(approx::ApproxArrayU32& keys, approx::ApproxArrayU32* ids,
                 size_t out_base);

  size_t BucketSize(uint32_t bucket) const {
    return positions_[bucket].size();
  }
  size_t TotalPushed() const { return next_ - arena_base_; }

  /// Clears all queues and resets the bump pointer (arena reuse per pass).
  void Reset();

 private:
  approx::ApproxArrayU32* key_arena_;
  approx::ApproxArrayU32* id_arena_;
  size_t arena_base_;
  size_t next_;
  std::vector<std::vector<uint32_t>> positions_;
};

}  // namespace approxmem::sort

#endif  // APPROXMEM_SORT_RADIX_COMMON_H_
