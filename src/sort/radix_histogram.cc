#include "sort/radix_histogram.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "sort/quicksort.h"
#include "sort/radix_common.h"

namespace approxmem::sort {
namespace {

struct Buffers {
  approx::ApproxArrayU32* keys;
  approx::ApproxArrayU32* ids;  // Null when ids are not tracked.
};

// Copies [lo, hi) from src to dst (read + write per element).
void CopyRange(const Buffers& src, const Buffers& dst, size_t lo, size_t hi) {
  for (size_t i = lo; i < hi; ++i) {
    dst.keys->Set(i, src.keys->Get(i));
    if (src.ids != nullptr) dst.ids->Set(i, src.ids->Get(i));
  }
}

// Counts digit occurrences of src[lo, hi) at `shift` (reads only).
std::vector<size_t> CountDigits(const Buffers& src, size_t lo, size_t hi,
                                int shift, const RadixPlan& plan) {
  std::vector<size_t> counts(plan.buckets, 0);
  for (size_t i = lo; i < hi; ++i) {
    ++counts[(src.keys->Get(i) >> shift) & plan.mask];
  }
  return counts;
}

// Scatters src[lo, hi) into dst by digit; one write per element. Bucket
// start offsets come from `counts` (exclusive prefix sums built here).
//
// Because an element's observed digit can change between the counting read
// and the scatter read (read disturbance / injected transient faults), a
// cursor can run past its bucket into slots that another cursor also
// claims. A collision must not drop the element: keys and IDs move
// together, and a lost or doubled ID breaks the permutation contract the
// refine stage depends on. Colliding elements are diverted to the slots
// left unclaimed at the end of the pass, so the scatter is a permutation
// of [lo, hi) under any corruption. Fault-free passes never divert, and
// read/write counts are identical either way.
void Scatter(const Buffers& src, const Buffers& dst, size_t lo, size_t hi,
             int shift, const RadixPlan& plan,
             const std::vector<size_t>& counts,
             std::vector<size_t>* bucket_starts) {
  std::vector<size_t> cursor(plan.buckets);
  size_t offset = lo;
  for (uint32_t b = 0; b < plan.buckets; ++b) {
    cursor[b] = offset;
    if (bucket_starts != nullptr) (*bucket_starts)[b] = offset;
    offset += counts[b];
  }
  std::vector<bool> claimed(hi - lo, false);
  std::vector<std::pair<uint32_t, uint32_t>> diverted;  // (key, id value)
  for (size_t i = lo; i < hi; ++i) {
    const uint32_t key = src.keys->Get(i);
    const uint32_t digit = (key >> shift) & plan.mask;
    const size_t pos = cursor[digit]++;
    if (pos >= hi || claimed[pos - lo]) {
      diverted.emplace_back(key,
                            src.ids != nullptr ? src.ids->Get(i) : 0u);
      continue;
    }
    claimed[pos - lo] = true;
    dst.keys->Set(pos, key);
    if (src.ids != nullptr) dst.ids->Set(pos, src.ids->Get(i));
  }
  size_t slot = lo;
  for (const auto& [key, id_value] : diverted) {
    while (claimed[slot - lo]) ++slot;
    claimed[slot - lo] = true;
    dst.keys->Set(slot, key);
    if (src.ids != nullptr) dst.ids->Set(slot, id_value);
  }
}

}  // namespace

Status LsdHistogramSort(SortSpec& spec, const HistogramRadixOptions& options) {
  Status status = ValidateSpec(spec, /*needs_buffers=*/true);
  if (!status.ok()) return status;
  if (options.bits < 1 || options.bits > 16) {
    return Status::InvalidArgument("radix bits must be in [1, 16]");
  }
  const size_t n = spec.keys->size();
  if (n < 2) return Status::Ok();

  const RadixPlan plan = RadixPlan::ForBits(options.bits);
  const StripePlan stripes = StripePlan::ForN(n);
  const size_t num_stripes = stripes.count;
  const uint32_t buckets = plan.buckets;
  const bool with_ids = spec.ids != nullptr;

  approx::ApproxArrayU32 scratch_keys = spec.alloc_key_buffer(n);
  approx::ApproxArrayU32 scratch_ids_storage =
      with_ids ? spec.alloc_id_buffer(n)
               : approx::ApproxArrayU32(0, nullptr, Rng(0));
  Buffers primary{spec.keys, spec.ids};
  Buffers scratch{&scratch_keys, with_ids ? &scratch_ids_storage : nullptr};

  ThreadPool* pool = options.pool;
  const bool concurrent =
      pool != nullptr && pool->thread_count() > 1 && num_stripes > 1 &&
      spec.keys->ConcurrentShardSafe() && scratch_keys.ConcurrentShardSafe() &&
      (!with_ids || (spec.ids->ConcurrentShardSafe() &&
                     scratch_ids_storage.ConcurrentShardSafe()));

  // DRAM-side stash, histograms, and windows (histogram bookkeeping, not
  // simulated accesses).
  std::vector<uint32_t> stash_keys(n);
  std::vector<uint32_t> stash_ids(with_ids ? n : 0);
  std::vector<size_t> hist(num_stripes * buckets);
  std::vector<size_t> window(num_stripes * buckets);

  Buffers src = primary;
  Buffers dst = scratch;
  for (int pass = 0; pass < plan.passes; ++pass) {
    const int shift = plan.bits * pass;
    std::fill(hist.begin(), hist.end(), 0);

    auto src_key_shards = src.keys->MakeShards(num_stripes);
    auto dst_key_shards = dst.keys->MakeShards(num_stripes);
    auto src_id_shards = with_ids
                             ? src.ids->MakeShards(num_stripes)
                             : std::vector<approx::ApproxArrayU32::Shard>{};
    auto dst_id_shards = with_ids
                             ? dst.ids->MakeShards(num_stripes)
                             : std::vector<approx::ApproxArrayU32::Shard>{};

    // Count + stash: one read per array element; the digit used below is
    // fixed by this read, so the scatter cannot diverge from the counts.
    RunStripes(pool, concurrent, num_stripes, [&](size_t s) {
      size_t* h = hist.data() + s * buckets;
      for (size_t i = stripes.Begin(s), end = stripes.End(s); i < end; ++i) {
        const uint32_t key = src_key_shards[s].Get(i);
        stash_keys[i] = key;
        if (with_ids) stash_ids[i] = src_id_shards[s].Get(i);
        ++h[(key >> shift) & plan.mask];
      }
    });

    // Bucket-major prefix sum into disjoint per-(bucket, stripe) windows.
    size_t total = 0;
    for (uint32_t b = 0; b < buckets; ++b) {
      for (size_t s = 0; s < num_stripes; ++s) {
        window[b * num_stripes + s] = total;
        total += hist[s * buckets + b];
      }
    }
    APPROXMEM_CHECK(total == n);

    // Scatter straight to the final slot: exactly one write per element.
    RunStripes(pool, concurrent, num_stripes, [&](size_t s) {
      std::vector<size_t> cursors(buckets);
      for (uint32_t b = 0; b < buckets; ++b) {
        cursors[b] = window[b * num_stripes + s];
      }
      for (size_t i = stripes.Begin(s), end = stripes.End(s); i < end; ++i) {
        const uint32_t digit = (stash_keys[i] >> shift) & plan.mask;
        const size_t pos = cursors[digit]++;
        dst_key_shards[s].Set(pos, stash_keys[i]);
        if (with_ids) dst_id_shards[s].Set(pos, stash_ids[i]);
      }
    });

    src.keys->MergeShards(src_key_shards);
    dst.keys->MergeShards(dst_key_shards);
    if (with_ids) {
      src.ids->MergeShards(src_id_shards);
      dst.ids->MergeShards(dst_id_shards);
    }
    std::swap(src, dst);
  }

  if (src.keys != primary.keys) {
    // Odd pass count: parity copy back, contiguous blocks per stripe.
    auto src_key_shards = src.keys->MakeShards(num_stripes);
    auto dst_key_shards = primary.keys->MakeShards(num_stripes);
    auto src_id_shards = with_ids
                             ? src.ids->MakeShards(num_stripes)
                             : std::vector<approx::ApproxArrayU32::Shard>{};
    auto dst_id_shards = with_ids
                             ? primary.ids->MakeShards(num_stripes)
                             : std::vector<approx::ApproxArrayU32::Shard>{};
    RunStripes(pool, concurrent, num_stripes, [&](size_t s) {
      constexpr size_t kBlock = 64;
      uint32_t buf[kBlock];
      for (size_t i = stripes.Begin(s), end = stripes.End(s); i < end;) {
        const size_t m = std::min(kBlock, end - i);
        src_key_shards[s].GetRange(i, buf, m);
        dst_key_shards[s].SetRange(i, buf, m);
        if (with_ids) {
          src_id_shards[s].GetRange(i, buf, m);
          dst_id_shards[s].SetRange(i, buf, m);
        }
        i += m;
      }
    });
    src.keys->MergeShards(src_key_shards);
    primary.keys->MergeShards(dst_key_shards);
    if (with_ids) {
      src.ids->MergeShards(src_id_shards);
      primary.ids->MergeShards(dst_id_shards);
    }
  }
  return Status::Ok();
}

Status MsdHistogramSort(SortSpec& spec, const HistogramRadixOptions& options) {
  Status status = ValidateSpec(spec, /*needs_buffers=*/true);
  if (!status.ok()) return status;
  if (options.bits < 1 || options.bits > 16) {
    return Status::InvalidArgument("radix bits must be in [1, 16]");
  }
  const size_t n = spec.keys->size();
  if (n < 2) return Status::Ok();

  const RadixPlan plan = RadixPlan::ForBits(options.bits);
  approx::ApproxArrayU32 scratch_keys = spec.alloc_key_buffer(n);
  approx::ApproxArrayU32 scratch_ids_storage =
      spec.ids != nullptr ? spec.alloc_id_buffer(n)
                          : approx::ApproxArrayU32(0, nullptr, Rng(0));
  Buffers primary{spec.keys, spec.ids};
  Buffers scratch{&scratch_keys,
                  spec.ids != nullptr ? &scratch_ids_storage : nullptr};

  struct Segment {
    size_t lo;
    size_t hi;     // Exclusive.
    int shift;     // < 0 means digits exhausted.
    bool in_primary;  // Which buffer currently holds the segment.
  };
  std::vector<Segment> stack;
  stack.push_back(Segment{0, n, plan.TopShift(), true});

  while (!stack.empty()) {
    const Segment seg = stack.back();
    stack.pop_back();
    const size_t len = seg.hi - seg.lo;
    if (len == 0) continue;
    const Buffers src = seg.in_primary ? primary : scratch;
    const Buffers dst = seg.in_primary ? scratch : primary;

    if (len < 2 || len <= options.insertion_cutoff || seg.shift < 0) {
      // Leaf: make sure the data is back in the primary buffer, then finish
      // with insertion sort (through the instrumented primary arrays).
      if (!seg.in_primary) CopyRange(src, primary, seg.lo, seg.hi);
      if (len >= 2) InsertionSortRange(spec, seg.lo, seg.hi - 1);
      continue;
    }

    const std::vector<size_t> counts =
        CountDigits(src, seg.lo, seg.hi, seg.shift, plan);
    std::vector<size_t> starts(plan.buckets);
    Scatter(src, dst, seg.lo, seg.hi, seg.shift, plan, counts, &starts);
    for (uint32_t b = 0; b < plan.buckets; ++b) {
      const size_t bucket_lo = starts[b];
      const size_t bucket_hi = bucket_lo + counts[b];
      stack.push_back(Segment{bucket_lo, bucket_hi, seg.shift - plan.bits,
                              !seg.in_primary});
    }
  }
  return Status::Ok();
}

}  // namespace approxmem::sort
