#include "sort/quicksort.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace approxmem::sort {
namespace {

// Hoare partition of [lo, hi] around a random pivot value; returns a split
// point in [lo, hi-1] such that, absent corruption, [lo, split] <= pivot <=
// [split+1, hi].
//
// On approximate memory a swap can corrupt the values it just wrote, which
// destroys the sentinel invariants the textbook scans rely on. The scans are
// therefore explicitly bounds-guarded and the split is clamped so both
// subranges shrink: under corruption the partition may be imperfect (that is
// the phenomenon under study), but the sort always terminates in bounds.
size_t HoarePartition(SortSpec& spec, size_t lo, size_t hi, Rng& rng) {
  approx::ApproxArrayU32& keys = *spec.keys;
  const size_t pivot_index = lo + rng.UniformInt(hi - lo + 1);
  const uint32_t pivot = keys.Get(pivot_index);
  size_t i = lo;
  size_t j = hi;
  while (true) {
    while (i < hi && keys.Get(i) < pivot) ++i;
    while (j > lo && keys.Get(j) > pivot) --j;
    if (i >= j) break;
    SwapElements(spec, i, j);
    ++i;
    --j;
    if (i > j) break;
  }
  return std::min(j, hi - 1);
}

}  // namespace

void InsertionSortRange(SortSpec& spec, size_t lo, size_t hi) {
  approx::ApproxArrayU32& keys = *spec.keys;
  approx::ApproxArrayU32* ids = spec.ids;
  for (size_t i = lo + 1; i <= hi; ++i) {
    const uint32_t key = keys.Get(i);
    const uint32_t id = ids != nullptr ? ids->Get(i) : 0;
    size_t j = i;
    while (j > lo && keys.Get(j - 1) > key) {
      keys.Set(j, keys.Get(j - 1));
      if (ids != nullptr) ids->Set(j, ids->Get(j - 1));
      --j;
    }
    if (j != i) {
      keys.Set(j, key);
      if (ids != nullptr) ids->Set(j, id);
    }
  }
}

Status Quicksort(SortSpec& spec, const QuicksortOptions& options, Rng& rng) {
  Status status = ValidateSpec(spec, /*needs_buffers=*/false);
  if (!status.ok()) return status;
  const size_t n = spec.keys->size();
  if (n < 2) return Status::Ok();

  const size_t cutoff = std::max<size_t>(options.insertion_cutoff, 1);
  // Explicit stack; deferring the larger half bounds the stack depth.
  std::vector<std::pair<size_t, size_t>> stack;
  stack.emplace_back(0, n - 1);
  while (!stack.empty()) {
    auto [lo, hi] = stack.back();
    stack.pop_back();
    while (hi > lo && hi - lo + 1 > cutoff) {
      const size_t split = HoarePartition(spec, lo, hi, rng);
      // split is in [lo, hi-1], so both halves are non-empty.
      if (split - lo < hi - split - 1) {
        stack.emplace_back(split + 1, hi);
        hi = split;
      } else {
        stack.emplace_back(lo, split);
        lo = split + 1;
      }
    }
    if (hi > lo) InsertionSortRange(spec, lo, hi);
  }
  return Status::Ok();
}

}  // namespace approxmem::sort
