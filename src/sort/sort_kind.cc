#include <string>

#include "sort/mergesort.h"
#include "sort/quicksort.h"
#include "sort/radix_histogram.h"
#include "sort/radix_lsd.h"
#include "sort/radix_msd.h"
#include "sort/sort_common.h"

namespace approxmem::sort {

std::string AlgorithmId::Name() const {
  switch (kind) {
    case SortKind::kQuicksort:
      return "Quicksort";
    case SortKind::kMergesort:
      return "Mergesort";
    case SortKind::kLsdRadix:
      return std::to_string(radix_bits) + "-bit LSD";
    case SortKind::kMsdRadix:
      return std::to_string(radix_bits) + "-bit MSD";
    case SortKind::kLsdHistogram:
      return std::to_string(radix_bits) + "-bit hist-LSD";
    case SortKind::kMsdHistogram:
      return std::to_string(radix_bits) + "-bit hist-MSD";
  }
  return "Unknown";
}

std::vector<AlgorithmId> StudyAlgorithms() {
  std::vector<AlgorithmId> algorithms;
  for (int bits = 3; bits <= 6; ++bits) {
    algorithms.push_back(AlgorithmId{SortKind::kLsdRadix, bits});
  }
  for (int bits = 3; bits <= 6; ++bits) {
    algorithms.push_back(AlgorithmId{SortKind::kMsdRadix, bits});
  }
  algorithms.push_back(AlgorithmId{SortKind::kQuicksort, 0});
  algorithms.push_back(AlgorithmId{SortKind::kMergesort, 0});
  return algorithms;
}

std::vector<AlgorithmId> HeadlineAlgorithms() {
  // The paper's "LSD" and "MSD" default to 6-bit (Section 3.1).
  return {AlgorithmId{SortKind::kLsdRadix, 6},
          AlgorithmId{SortKind::kMsdRadix, 6},
          AlgorithmId{SortKind::kQuicksort, 0},
          AlgorithmId{SortKind::kMergesort, 0}};
}

Status ValidateSpec(const SortSpec& spec, bool needs_buffers) {
  if (spec.keys == nullptr) {
    return Status::InvalidArgument("SortSpec.keys must be set");
  }
  if (spec.ids != nullptr && spec.ids->size() != spec.keys->size()) {
    return Status::InvalidArgument("ids size must match keys size");
  }
  if (needs_buffers) {
    if (!spec.alloc_key_buffer) {
      return Status::InvalidArgument(
          "out-of-place sort requires alloc_key_buffer");
    }
    if (spec.ids != nullptr && !spec.alloc_id_buffer) {
      return Status::InvalidArgument(
          "out-of-place sort with ids requires alloc_id_buffer");
    }
  }
  return Status::Ok();
}

void SwapElements(SortSpec& spec, size_t i, size_t j) {
  approx::ApproxArrayU32& keys = *spec.keys;
  const uint32_t key_i = keys.Get(i);
  const uint32_t key_j = keys.Get(j);
  keys.Set(i, key_j);
  keys.Set(j, key_i);
  if (spec.ids != nullptr) {
    approx::ApproxArrayU32& ids = *spec.ids;
    const uint32_t id_i = ids.Get(i);
    const uint32_t id_j = ids.Get(j);
    ids.Set(i, id_j);
    ids.Set(j, id_i);
  }
}

Status RunSort(SortSpec& spec, const AlgorithmId& algorithm, Rng& rng) {
  switch (algorithm.kind) {
    case SortKind::kQuicksort:
      return Quicksort(spec, QuicksortOptions{}, rng);
    case SortKind::kMergesort:
      return Mergesort(spec, MergesortOptions{});
    case SortKind::kLsdRadix: {
      LsdRadixOptions options;
      options.bits = algorithm.radix_bits;
      options.pool = spec.tuning.pool;
      if (spec.tuning.lsd_sqrt_arena) {
        options.arena_mode = LsdArenaMode::kSqrtChunks;
      }
      return LsdRadixSort(spec, options);
    }
    case SortKind::kMsdRadix: {
      MsdRadixOptions options;
      options.bits = algorithm.radix_bits;
      return MsdRadixSort(spec, options);
    }
    case SortKind::kLsdHistogram: {
      HistogramRadixOptions options;
      options.bits = algorithm.radix_bits;
      options.pool = spec.tuning.pool;
      return LsdHistogramSort(spec, options);
    }
    case SortKind::kMsdHistogram: {
      HistogramRadixOptions options;
      options.bits = algorithm.radix_bits;
      return MsdHistogramSort(spec, options);
    }
  }
  return Status::InvalidArgument("unknown sort kind");
}

}  // namespace approxmem::sort
