// Most-significant-digit radix sort with queue buckets (Section 3.1).
#ifndef APPROXMEM_SORT_RADIX_MSD_H_
#define APPROXMEM_SORT_RADIX_MSD_H_

#include "common/status.h"
#include "sort/sort_common.h"

namespace approxmem::sort {

struct MsdRadixOptions {
  /// Digit width in bits; the paper evaluates 3, 4, 5, and 6.
  int bits = 6;
  /// Buckets at or below this size finish with insertion sort.
  size_t insertion_cutoff = 32;
};

/// Sorts spec.keys (and spec.ids) ascending by key. Recursively partitions
/// from the most significant digit using bucket queues; like quicksort,
/// later levels touch ever-smaller ranges, which localizes the damage of
/// earlier corrupted writes (Section 3.5). Requires spec.alloc_key_buffer
/// (and alloc_id_buffer when ids are set).
Status MsdRadixSort(SortSpec& spec, const MsdRadixOptions& options);

}  // namespace approxmem::sort

#endif  // APPROXMEM_SORT_RADIX_MSD_H_
