#include "sort/radix_lsd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "sort/radix_common.h"

namespace approxmem::sort {
namespace {

using approx::ApproxArrayU32;

/// Per-stripe scatter frontend: routes (key, id) pairs into the stripe's
/// per-bucket windows of the destination arrays, either word-at-a-time or
/// through per-bucket DRAM staging rows flushed as sequential SetRange
/// bursts (Section 3.1's software write combining). Staging rows are queue
/// metadata in DRAM, not simulated accesses; only flushes touch the
/// instrumented arrays.
class WindowScatter {
 public:
  /// `windows[b]` is the first slot of this stripe's window for bucket b.
  /// `chunk == 0` disables write combining.
  WindowScatter(ApproxArrayU32::Shard* keys, ApproxArrayU32::Shard* ids,
                const size_t* windows, uint32_t buckets, size_t chunk)
      : keys_(keys),
        ids_(ids),
        cursor_(windows, windows + buckets),
        chunk_(chunk) {
    if (chunk_ > 0) {
      staged_keys_.resize(buckets);
      for (auto& row : staged_keys_) row.reserve(chunk_);
      if (ids_ != nullptr) {
        staged_ids_.resize(buckets);
        for (auto& row : staged_ids_) row.reserve(chunk_);
      }
    }
  }

  void Emit(uint32_t bucket, uint32_t key, uint32_t id) {
    if (chunk_ == 0) {
      keys_->Set(cursor_[bucket], key);
      if (ids_ != nullptr) ids_->Set(cursor_[bucket], id);
      ++cursor_[bucket];
      return;
    }
    staged_keys_[bucket].push_back(key);
    if (ids_ != nullptr) staged_ids_[bucket].push_back(id);
    if (staged_keys_[bucket].size() == chunk_) Flush(bucket);
  }

  /// Flushes every staged row, in bucket order.
  void FlushAll() {
    if (chunk_ == 0) return;
    for (size_t b = 0; b < cursor_.size(); ++b) Flush(b);
  }

 private:
  void Flush(size_t bucket) {
    auto& row = staged_keys_[bucket];
    if (row.empty()) return;
    keys_->SetRange(cursor_[bucket], row.data(), row.size());
    if (ids_ != nullptr) {
      ids_->SetRange(cursor_[bucket], staged_ids_[bucket].data(), row.size());
      staged_ids_[bucket].clear();
    }
    cursor_[bucket] += row.size();
    row.clear();
  }

  ApproxArrayU32::Shard* keys_;
  ApproxArrayU32::Shard* ids_;
  std::vector<size_t> cursor_;
  size_t chunk_;
  std::vector<std::vector<uint32_t>> staged_keys_;
  std::vector<std::vector<uint32_t>> staged_ids_;
};

}  // namespace

Status LsdRadixSort(SortSpec& spec, const LsdRadixOptions& options) {
  Status status = ValidateSpec(spec, /*needs_buffers=*/true);
  if (!status.ok()) return status;
  if (options.bits < 1 || options.bits > 16) {
    return Status::InvalidArgument("LSD radix bits must be in [1, 16]");
  }
  if (options.write_combining && options.combine_chunk_elements == 0) {
    return Status::InvalidArgument("combine_chunk_elements must be >= 1");
  }
  const size_t n = spec.keys->size();
  if (n < 2) return Status::Ok();

  const RadixPlan plan = RadixPlan::ForBits(options.bits);
  const StripePlan stripes = StripePlan::ForN(n);
  const size_t num_stripes = stripes.count;
  const uint32_t buckets = plan.buckets;
  const bool with_ids = spec.ids != nullptr;
  const bool sqrt_mode = options.arena_mode == LsdArenaMode::kSqrtChunks;
  const size_t chunk =
      options.write_combining ? options.combine_chunk_elements : 0;

  // Sqrt mode recycles one ceil(sqrt(stripe length)) region per stripe.
  std::vector<size_t> arena_base(num_stripes + 1, 0);
  if (sqrt_mode) {
    for (size_t s = 0; s < num_stripes; ++s) {
      const size_t len = stripes.End(s) - stripes.Begin(s);
      const size_t cap = static_cast<size_t>(
          std::ceil(std::sqrt(static_cast<double>(len))));
      arena_base[s + 1] = arena_base[s] + std::max<size_t>(cap, 1);
    }
  }
  const size_t arena_words = sqrt_mode ? arena_base[num_stripes]
                                       : LsdArenaCapacity(n);

  ApproxArrayU32 key_arena = spec.alloc_key_buffer(arena_words);
  ApproxArrayU32 id_arena = with_ids
                                ? spec.alloc_id_buffer(arena_words)
                                : ApproxArrayU32(0, nullptr, Rng(0));

  ThreadPool* pool = options.pool;
  const bool concurrent =
      pool != nullptr && pool->thread_count() > 1 && num_stripes > 1 &&
      spec.keys->ConcurrentShardSafe() && key_arena.ConcurrentShardSafe() &&
      (!with_ids || (spec.ids->ConcurrentShardSafe() &&
                     id_arena.ConcurrentShardSafe()));

  // DRAM-side stash, histograms, and windows (queue metadata — pointers in
  // a real implementation — so not simulated accesses).
  std::vector<uint32_t> stash_keys(n);
  std::vector<uint32_t> stash_ids(with_ids ? n : 0);
  std::vector<size_t> hist(num_stripes * buckets);
  std::vector<size_t> window(num_stripes * buckets);

  for (int pass = 0; pass < plan.passes; ++pass) {
    std::fill(hist.begin(), hist.end(), 0);

    // One RNG substream per stripe per array, split in stripe order, so the
    // draw sequence is fixed by the plan, not the schedule.
    auto keys_shards = spec.keys->MakeShards(num_stripes);
    auto arena_key_shards = key_arena.MakeShards(num_stripes);
    auto ids_shards = with_ids ? spec.ids->MakeShards(num_stripes)
                               : std::vector<ApproxArrayU32::Shard>{};
    auto arena_id_shards = with_ids ? id_arena.MakeShards(num_stripes)
                                    : std::vector<ApproxArrayU32::Shard>{};

    // Phase A: each stripe reads its slice once (one simulated read per
    // array), stashes the observed values, and counts digits. The digit is
    // computed from the (possibly corrupted) stored key, as in the queue
    // formulation.
    RunStripes(pool, concurrent, num_stripes, [&](size_t s) {
      size_t* h = hist.data() + s * buckets;
      for (size_t i = stripes.Begin(s), end = stripes.End(s); i < end; ++i) {
        const uint32_t key = keys_shards[s].Get(i);
        stash_keys[i] = key;
        if (with_ids) stash_ids[i] = ids_shards[s].Get(i);
        ++h[plan.DigitLsd(key, pass)];
      }
    });

    // Phase B: serial prefix sum into per-(bucket, stripe) windows laid
    // out bucket-major, reproducing the serial queue order.
    size_t total = 0;
    for (uint32_t b = 0; b < buckets; ++b) {
      for (size_t s = 0; s < num_stripes; ++s) {
        window[b * num_stripes + s] = total;
        total += hist[s * buckets + b];
      }
    }
    APPROXMEM_CHECK(total == n);

    if (!sqrt_mode) {
      // Phase C: scatter the stash into the arena windows (one write per
      // array per element; the arena write may corrupt the value).
      RunStripes(pool, concurrent, num_stripes, [&](size_t s) {
        std::vector<size_t> cursors(buckets);
        for (uint32_t b = 0; b < buckets; ++b) {
          cursors[b] = window[b * num_stripes + s];
        }
        WindowScatter scatter(&arena_key_shards[s],
                              with_ids ? &arena_id_shards[s] : nullptr,
                              cursors.data(), buckets, chunk);
        for (size_t i = stripes.Begin(s), end = stripes.End(s); i < end;
             ++i) {
          scatter.Emit(plan.DigitLsd(stash_keys[i], pass), stash_keys[i],
                       with_ids ? stash_ids[i] : 0);
        }
        scatter.FlushAll();
      });

      // Phase D: contiguous drain arena -> keys (one read + one write per
      // array per element). The arena already holds the pass's order, so
      // blocks copy independently; corrupted arena values propagate, as a
      // queue drain would.
      RunStripes(pool, concurrent, num_stripes, [&](size_t s) {
        constexpr size_t kBlock = 64;
        uint32_t buf[kBlock];
        for (size_t i = stripes.Begin(s), end = stripes.End(s); i < end;) {
          const size_t m = std::min(kBlock, end - i);
          arena_key_shards[s].GetRange(i, buf, m);
          keys_shards[s].SetRange(i, buf, m);
          if (with_ids) {
            arena_id_shards[s].GetRange(i, buf, m);
            ids_shards[s].SetRange(i, buf, m);
          }
          i += m;
        }
      });
    } else {
      // Phases C+D fused: each stripe pushes sqrt-sized chunks through its
      // recycled arena region (one sequential burst in, one read back per
      // element) and emits straight into the destination windows. Same
      // access counts as the full-buffer path.
      RunStripes(pool, concurrent, num_stripes, [&](size_t s) {
        std::vector<size_t> cursors(buckets);
        for (uint32_t b = 0; b < buckets; ++b) {
          cursors[b] = window[b * num_stripes + s];
        }
        WindowScatter scatter(&keys_shards[s],
                              with_ids ? &ids_shards[s] : nullptr,
                              cursors.data(), buckets, chunk);
        const size_t base = arena_base[s];
        const size_t cap = arena_base[s + 1] - base;
        for (size_t i = stripes.Begin(s), end = stripes.End(s); i < end;) {
          const size_t m = std::min(cap, end - i);
          arena_key_shards[s].SetRange(base, &stash_keys[i], m);
          if (with_ids) {
            arena_id_shards[s].SetRange(base, &stash_ids[i], m);
          }
          for (size_t j = 0; j < m; ++j) {
            const uint32_t key = arena_key_shards[s].Get(base + j);
            const uint32_t id =
                with_ids ? arena_id_shards[s].Get(base + j) : 0;
            scatter.Emit(plan.DigitLsd(stash_keys[i + j], pass), key, id);
          }
          i += m;
        }
        scatter.FlushAll();
      });
    }

    spec.keys->MergeShards(keys_shards);
    key_arena.MergeShards(arena_key_shards);
    if (with_ids) {
      spec.ids->MergeShards(ids_shards);
      id_arena.MergeShards(arena_id_shards);
    }
  }
  return Status::Ok();
}

}  // namespace approxmem::sort
