#include "sort/radix_lsd.h"

#include "sort/radix_common.h"
#include "sort/write_combining.h"

namespace approxmem::sort {

Status LsdRadixSort(SortSpec& spec, const LsdRadixOptions& options) {
  Status status = ValidateSpec(spec, /*needs_buffers=*/true);
  if (!status.ok()) return status;
  if (options.bits < 1 || options.bits > 16) {
    return Status::InvalidArgument("LSD radix bits must be in [1, 16]");
  }
  const size_t n = spec.keys->size();
  if (n < 2) return Status::Ok();

  const RadixPlan plan = RadixPlan::ForBits(options.bits);
  const size_t arena_size =
      options.write_combining
          ? WriteCombiningQueues::ArenaCapacity(
                n, plan.buckets, options.combine_chunk_elements)
          : n;
  approx::ApproxArrayU32 key_arena = spec.alloc_key_buffer(arena_size);
  approx::ApproxArrayU32 id_arena_storage =
      spec.ids != nullptr ? spec.alloc_id_buffer(arena_size)
                          : approx::ApproxArrayU32(0, nullptr, Rng(0));
  approx::ApproxArrayU32* id_arena =
      spec.ids != nullptr ? &id_arena_storage : nullptr;

  // One pass over the data per digit, through either plain bucket queues
  // or their write-combining variant; both have the same write count.
  auto run_passes = [&](auto& queues) {
    for (int pass = 0; pass < plan.passes; ++pass) {
      for (size_t i = 0; i < n; ++i) {
        const uint32_t key = spec.keys->Get(i);
        const uint32_t id = spec.ids != nullptr ? spec.ids->Get(i) : 0;
        // The digit is computed from the (possibly corrupted) stored key.
        queues.Push(plan.DigitLsd(key, pass), key, id);
      }
      queues.DrainTo(*spec.keys, spec.ids, 0);
      queues.Reset();
    }
  };
  if (options.write_combining) {
    WriteCombiningQueues queues(plan.buckets, &key_arena, id_arena,
                                options.combine_chunk_elements);
    run_passes(queues);
  } else {
    BucketQueues queues(plan.buckets, &key_arena, id_arena);
    run_passes(queues);
  }
  return Status::Ok();
}

}  // namespace approxmem::sort
