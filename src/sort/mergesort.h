// Bottom-up mergesort (Section 3.1).
//
// Alternates between the input arrays and scratch buffers, one full pass
// per run-doubling, for n*ceil(log2 n) key writes total — the paper's
// alpha_mergesort(n) ~ n*log2(n). An optional base-run size models the
// paper's L2-sized first level: base runs are pre-sorted with insertion
// sort before the merge passes start.
#ifndef APPROXMEM_SORT_MERGESORT_H_
#define APPROXMEM_SORT_MERGESORT_H_

#include "common/status.h"
#include "sort/sort_common.h"

namespace approxmem::sort {

struct MergesortOptions {
  /// Elements per pre-sorted base run; 1 means classic bottom-up merging
  /// from single elements. Values > 1 use insertion sort per base run, so
  /// keep them small (the write count grows quadratically with this).
  size_t base_run_elements = 1;
};

/// Sorts spec.keys (and spec.ids) ascending by key. Requires
/// spec.alloc_key_buffer (and alloc_id_buffer when ids are present).
Status Mergesort(SortSpec& spec, const MergesortOptions& options);

}  // namespace approxmem::sort

#endif  // APPROXMEM_SORT_MERGESORT_H_
