// Least-significant-digit radix sort with queue buckets (Section 3.1).
//
// The implementation is a striped counting scatter: each pass reads the
// input once per stripe (building per-stripe digit histograms), prefix-sums
// the histograms into disjoint per-(bucket, stripe) output windows, and
// scatters through them. The stripe plan depends on n alone, and every
// stripe draws from its own RNG substream, so output, write counts, and
// cost ledgers are identical at any thread count. Simulated access counts
// match the classic queue formulation: two reads and two writes per
// element per pass.
#ifndef APPROXMEM_SORT_RADIX_LSD_H_
#define APPROXMEM_SORT_RADIX_LSD_H_

#include <cstddef>

#include "common/status.h"
#include "sort/sort_common.h"

namespace approxmem {
class ThreadPool;
}

namespace approxmem::sort {

/// Scratch-arena strategy for the LSD scatter passes.
enum class LsdArenaMode {
  /// n-word arena: scatter into it, then drain contiguously back.
  kFullBuffer,
  /// Radsort-style recycled chunks: each stripe pushes ceil(sqrt(stripe))
  /// elements at a time through a small arena region and emits straight
  /// into the destination windows. Identical simulated access counts with
  /// O(sqrt n) scratch words.
  kSqrtChunks,
};

struct LsdRadixOptions {
  /// Digit width in bits; the paper evaluates 3, 4, 5, and 6.
  int bits = 6;
  /// Section 3.1's software write combining: stage bucket scatters in DRAM
  /// and flush to the target windows in sequential chunks. Same write
  /// count, sequential pattern — pays off under the sequential-write
  /// discount.
  bool write_combining = false;
  /// Staging-buffer size when write combining is on.
  size_t combine_chunk_elements = 64;
  /// Scratch-arena strategy (see LsdArenaMode).
  LsdArenaMode arena_mode = LsdArenaMode::kFullBuffer;
  /// Worker pool for the striped passes; null means serial. Results never
  /// depend on the thread count.
  ThreadPool* pool = nullptr;
};

/// Sorts spec.keys (and spec.ids) ascending by key. ceil(32/bits) stable
/// passes from the least significant digit; each pass moves every element
/// into its bucket window (one write) and back (one write). Requires
/// spec.alloc_key_buffer (and alloc_id_buffer when ids are set).
Status LsdRadixSort(SortSpec& spec, const LsdRadixOptions& options);

}  // namespace approxmem::sort

#endif  // APPROXMEM_SORT_RADIX_LSD_H_
