// Least-significant-digit radix sort with queue buckets (Section 3.1).
#ifndef APPROXMEM_SORT_RADIX_LSD_H_
#define APPROXMEM_SORT_RADIX_LSD_H_

#include "common/status.h"
#include "sort/sort_common.h"

namespace approxmem::sort {

struct LsdRadixOptions {
  /// Digit width in bits; the paper evaluates 3, 4, 5, and 6.
  int bits = 6;
  /// Section 3.1's software write combining: stage bucket pushes in DRAM
  /// and flush to the arena in sequential chunks. Same write count,
  /// sequential pattern — pays off under the sequential-write discount.
  bool write_combining = false;
  /// Staging-buffer / arena-chunk size when write combining is on.
  size_t combine_chunk_elements = 64;
};

/// Sorts spec.keys (and spec.ids) ascending by key. ceil(32/bits) stable
/// passes from the least significant digit; each pass pushes every element
/// into a bucket queue (one write) and drains the queues back (one write).
/// Requires spec.alloc_key_buffer (and alloc_id_buffer when ids are set).
Status LsdRadixSort(SortSpec& spec, const LsdRadixOptions& options);

}  // namespace approxmem::sort

#endif  // APPROXMEM_SORT_RADIX_LSD_H_
