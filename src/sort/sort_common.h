// Common interfaces of the sorting algorithms under study.
//
// All algorithms sort 32-bit keys held in an instrumented array, optionally
// co-moving a parallel array of record IDs (the database payload of
// Section 3.2). Scratch buffers are allocated through caller-provided
// allocators so that scratch writes land in the correct precision domain
// (approximate during the approx stage, precise otherwise) and are fully
// accounted.
#ifndef APPROXMEM_SORT_SORT_COMMON_H_
#define APPROXMEM_SORT_SORT_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "approx/approx_array.h"
#include "common/random.h"
#include "common/status.h"

namespace approxmem {
class ThreadPool;
}

namespace approxmem::sort {

/// Allocates a scratch array of `n` words in some precision domain.
using ArrayAlloc = std::function<approx::ApproxArrayU32(size_t)>;

/// Execution tuning shared by every algorithm that supports it. Tuning
/// never changes *what* is computed: the striped radix passes fix their
/// work decomposition by input size alone, so output, write counts, and
/// cost ledgers are identical at any thread count.
struct SortTuning {
  /// Worker pool for the intra-sort parallel passes (null means serial).
  ThreadPool* pool = nullptr;
  /// Use the Radsort-style O(sqrt n) recycled chunk arena for LSD radix
  /// (identical simulated access counts; smaller scratch footprint).
  bool lsd_sqrt_arena = false;
};

/// The arrays an algorithm sorts plus where its scratch may live.
///
/// `ids`, when non-null, must have the same size as `keys` and is permuted
/// identically (moves of IDs are precise-memory writes in the paper's
/// setup). `alloc_key_buffer` must be set for out-of-place algorithms
/// (mergesort, radix sorts); `alloc_id_buffer` additionally when `ids` is
/// set.
struct SortSpec {
  approx::ApproxArrayU32* keys = nullptr;
  approx::ApproxArrayU32* ids = nullptr;
  ArrayAlloc alloc_key_buffer;
  ArrayAlloc alloc_id_buffer;
  SortTuning tuning;
};

/// Families of sorting algorithms studied by the paper.
enum class SortKind {
  kQuicksort,      // Section 3.1, randomized in-place quicksort.
  kMergesort,      // Section 3.1, bottom-up mergesort.
  kLsdRadix,       // Section 3.1, queue-bucket LSD radix sort.
  kMsdRadix,       // Section 3.1, queue-bucket MSD radix sort.
  kLsdHistogram,   // Appendix B, histogram-based LSD radix sort.
  kMsdHistogram,   // Appendix B, histogram-based MSD radix sort.
};

/// An algorithm instance: kind plus digit width for the radix family
/// (3..6 bits, i.e. 8..64 buckets; ignored by comparison sorts).
struct AlgorithmId {
  SortKind kind = SortKind::kQuicksort;
  int radix_bits = 6;

  /// Display name matching the paper's labels ("6-bit LSD", "Quicksort").
  std::string Name() const;
};

/// All algorithm instances of the Section 3/5 study (radix at 3..6 bits).
std::vector<AlgorithmId> StudyAlgorithms();

/// The four headline algorithms (6-bit radix variants), Figures 4-7.
std::vector<AlgorithmId> HeadlineAlgorithms();

/// Sorts `spec` with `algorithm`. `rng` drives pivot selection only; error
/// injection uses the arrays' own streams. Returns InvalidArgument if the
/// spec lacks required allocators or sizes mismatch.
Status RunSort(SortSpec& spec, const AlgorithmId& algorithm, Rng& rng);

/// Swaps elements i and j of keys (and ids): two reads + two writes each.
void SwapElements(SortSpec& spec, size_t i, size_t j);

/// Validates spec invariants shared by all algorithms.
Status ValidateSpec(const SortSpec& spec, bool needs_buffers);

}  // namespace approxmem::sort

#endif  // APPROXMEM_SORT_SORT_COMMON_H_
