#include "testing/golden.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace approxmem::testing {

std::vector<GoldenRecord> GoldenStableSort(const std::vector<uint32_t>& keys) {
  std::vector<GoldenRecord> records(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records[i] = GoldenRecord{keys[i], static_cast<uint32_t>(i)};
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const GoldenRecord& a, const GoldenRecord& b) {
                     return a.key < b.key;
                   });
  return records;
}

bool IsIdPermutation(const std::vector<uint32_t>& ids, size_t n) {
  if (ids.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const uint32_t id : ids) {
    if (id >= n || seen[id]) return false;
    seen[id] = true;
  }
  return true;
}

bool KeysMatchIds(const std::vector<uint32_t>& input,
                  const std::vector<uint32_t>& keys,
                  const std::vector<uint32_t>& ids) {
  if (keys.size() != ids.size()) return false;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (ids[i] >= input.size() || keys[i] != input[ids[i]]) return false;
  }
  return true;
}

std::vector<dbops::GroupRow> GoldenGroupBy(
    const std::vector<uint32_t>& keys, const std::vector<uint32_t>& values) {
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });

  std::vector<dbops::GroupRow> groups;
  for (const size_t i : order) {
    const uint32_t key = keys[i];
    const uint32_t value = values[i];
    if (groups.empty() || groups.back().group_key != key) {
      groups.push_back(dbops::GroupRow{key, 0, 0, value, value});
    }
    dbops::GroupRow& row = groups.back();
    ++row.count;
    row.sum += value;
    row.min = std::min(row.min, value);
    row.max = std::max(row.max, value);
  }
  return groups;
}

std::vector<dbops::JoinPair> GoldenJoinPairs(
    const std::vector<uint32_t>& left_keys,
    const std::vector<uint32_t>& right_keys) {
  const std::vector<GoldenRecord> left = GoldenStableSort(left_keys);
  const std::vector<GoldenRecord> right = GoldenStableSort(right_keys);
  std::vector<dbops::JoinPair> pairs;
  size_t l = 0;
  size_t r = 0;
  while (l < left.size() && r < right.size()) {
    if (left[l].key < right[r].key) {
      ++l;
    } else if (left[l].key > right[r].key) {
      ++r;
    } else {
      const uint32_t key = left[l].key;
      size_t l_end = l;
      while (l_end < left.size() && left[l_end].key == key) ++l_end;
      size_t r_end = r;
      while (r_end < right.size() && right[r_end].key == key) ++r_end;
      for (size_t i = l; i < l_end; ++i) {
        for (size_t j = r; j < r_end; ++j) {
          pairs.push_back(dbops::JoinPair{left[i].id, right[j].id});
        }
      }
      l = l_end;
      r = r_end;
    }
  }
  CanonicalizeJoinPairs(pairs);
  return pairs;
}

void CanonicalizeJoinPairs(std::vector<dbops::JoinPair>& pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const dbops::JoinPair& a, const dbops::JoinPair& b) {
              if (a.left_row != b.left_row) return a.left_row < b.left_row;
              return a.right_row < b.right_row;
            });
}

bool PreciseCostsConserve(const approx::MemoryStats& stats,
                          const mlc::MlcConfig& mlc) {
  if (stats.corrupted_writes != 0) return false;
  const double expected_write =
      static_cast<double>(stats.word_writes) * mlc.precise_write_latency_ns;
  const double expected_read =
      static_cast<double>(stats.word_reads) * mlc.read_latency_ns;
  // Costs are accumulated one access at a time; allow only float-sum slack.
  const double write_slack = 1e-6 * (expected_write + 1.0);
  const double read_slack = 1e-6 * (expected_read + 1.0);
  return std::abs(stats.write_cost - expected_write) <= write_slack &&
         std::abs(stats.read_cost - expected_read) <= read_slack;
}

}  // namespace approxmem::testing
