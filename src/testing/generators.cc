#include "testing/generators.h"

#include <algorithm>

#include "common/random.h"

namespace approxmem::testing {

const std::vector<InputShape>& AllShapes() {
  static const std::vector<InputShape> kShapes = {
      InputShape::kUniform,  InputShape::kZipf,
      InputShape::kPresorted, InputShape::kReverse,
      InputShape::kDupHeavy, InputShape::kAdversarialPivot,
  };
  return kShapes;
}

std::string ShapeName(InputShape shape) {
  switch (shape) {
    case InputShape::kUniform:
      return "uniform";
    case InputShape::kZipf:
      return "zipf";
    case InputShape::kPresorted:
      return "presorted";
    case InputShape::kReverse:
      return "reverse";
    case InputShape::kDupHeavy:
      return "dup_heavy";
    case InputShape::kAdversarialPivot:
      return "adversarial_pivot";
  }
  return "unknown";
}

StatusOr<InputShape> ParseShapeName(const std::string& name) {
  for (const InputShape shape : AllShapes()) {
    if (ShapeName(shape) == name) return shape;
  }
  return Status::InvalidArgument("unknown input shape: " + name);
}

std::vector<uint32_t> MakeInput(InputShape shape, size_t n, uint64_t seed) {
  Rng rng(seed ^ 0x5ea7ed5eedULL);
  std::vector<uint32_t> keys;
  switch (shape) {
    case InputShape::kUniform:
      return UniformKeys(n, rng);
    case InputShape::kZipf:
      return SkewedKeys(n, /*skew=*/1.1, rng);
    case InputShape::kPresorted:
      keys = UniformKeys(n, rng);
      std::sort(keys.begin(), keys.end());
      return keys;
    case InputShape::kReverse:
      keys = UniformKeys(n, rng);
      std::sort(keys.begin(), keys.end(), std::greater<uint32_t>());
      return keys;
    case InputShape::kDupHeavy: {
      // At most 4 distinct values: exercises equal-key runs in every
      // algorithm and maximally collides radix buckets.
      keys.resize(n);
      const uint32_t values[4] = {7u, 7u, 0x80000000u, 0xffffffffu};
      for (size_t i = 0; i < n; ++i) {
        keys[i] = values[rng.UniformInt(4)];
      }
      return keys;
    }
    case InputShape::kAdversarialPivot: {
      // Organ-pipe layout (ascending evens then descending odds) defeats
      // middle/median pivot picks and first/last picks alike; the random
      // pivots under study stay O(n log n) only in expectation.
      keys.resize(n);
      size_t out = 0;
      for (size_t i = 0; i < n; i += 2) keys[out++] = static_cast<uint32_t>(i);
      for (size_t i = n; i-- > 0;) {
        if (i % 2 == 1) keys[out++] = static_cast<uint32_t>(i);
      }
      return keys;
    }
  }
  return keys;
}

double TFromPaperLabel(int paper_t) {
  return paper_t == 0 ? 0.025 : static_cast<double>(paper_t) / 1000.0;
}

}  // namespace approxmem::testing
