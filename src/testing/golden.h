// Precise golden models for the differential oracle.
//
// Everything here is computed with plain std:: containers and algorithms —
// no instrumented arrays, no write models, no randomness — so a divergence
// between an engine run and a golden result always indicts the engine
// stack, never the oracle.
#ifndef APPROXMEM_TESTING_GOLDEN_H_
#define APPROXMEM_TESTING_GOLDEN_H_

#include <cstdint>
#include <vector>

#include "approx/memory_stats.h"
#include "dbops/aggregate.h"
#include "dbops/join.h"
#include "mlc/mlc_config.h"

namespace approxmem::testing {

/// A sorted record: key plus the 0-based input position it came from.
struct GoldenRecord {
  uint32_t key = 0;
  uint32_t id = 0;
};

/// Stable-sorts (key, id) records by key. The key sequence is the unique
/// correct output of any of the engine's sorts; the id sequence is one
/// witness permutation (engines may legally produce another when keys
/// repeat).
std::vector<GoldenRecord> GoldenStableSort(const std::vector<uint32_t>& keys);

/// True iff `ids` is a permutation of 0..n-1.
bool IsIdPermutation(const std::vector<uint32_t>& ids, size_t n);

/// True iff keys[i] == input[ids[i]] for all i (each output key really is
/// the key of the record its id claims).
bool KeysMatchIds(const std::vector<uint32_t>& input,
                  const std::vector<uint32_t>& keys,
                  const std::vector<uint32_t>& ids);

/// Reference GROUP BY: groups in ascending key order, exact count / sum /
/// min / max per group. Must match dbops::GroupByAggregate bit for bit.
std::vector<dbops::GroupRow> GoldenGroupBy(const std::vector<uint32_t>& keys,
                                           const std::vector<uint32_t>& values);

/// Reference equi-join as a canonically ordered pair set (sorted by
/// (left_row, right_row)). Engine output must equal this after
/// CanonicalizeJoinPairs, since within-key pair order is unspecified.
std::vector<dbops::JoinPair> GoldenJoinPairs(
    const std::vector<uint32_t>& left_keys,
    const std::vector<uint32_t>& right_keys);

/// Sorts pairs by (left_row, right_row) for set comparison.
void CanonicalizeJoinPairs(std::vector<dbops::JoinPair>& pairs);

/// Exact cost accounting for a precise-domain MemoryStats ledger: writes
/// cost exactly precise_write_latency_ns each, reads read_latency_ns each,
/// and no write is ever corrupted. Returns true iff the ledger conserves.
bool PreciseCostsConserve(const approx::MemoryStats& stats,
                          const mlc::MlcConfig& mlc);

}  // namespace approxmem::testing

#endif  // APPROXMEM_TESTING_GOLDEN_H_
