// Property-based runner: deterministic case generation, parallel
// execution, and greedy shrinking of failures.
//
// Cases are pure functions of (runner seed, case index), so a failing case
// replays from two numbers. Execution goes through ThreadPool::ParallelFor
// with one result slot per case, which makes verdicts — and the aggregate
// digest — independent of the thread count: --threads=1 and --threads=0
// (hardware) must produce identical digests.
#ifndef APPROXMEM_TESTING_PROPERTY_RUNNER_H_
#define APPROXMEM_TESTING_PROPERTY_RUNNER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sort/sort_common.h"
#include "testing/differential_oracle.h"
#include "testing/generators.h"

namespace approxmem::testing {

/// Checks one case; must be deterministic and thread-safe. Usually wraps
/// RunDifferentialOracle with fixed OracleOptions.
using CaseCheck = std::function<OracleReport(const OracleCase&)>;

struct RunnerOptions {
  /// Root seed for random case generation (and each case's engine seed).
  uint64_t seed = 1;
  /// Total concurrency: 1 runs everything inline (exact serial execution),
  /// 0 uses hardware concurrency. Verdicts are identical either way.
  int threads = 1;
  /// Greedily minimize the first failing case before reporting it.
  bool shrink = true;
  size_t max_shrink_steps = 64;

  /// The pools MakeRandomCase draws from.
  size_t min_n = 4;
  size_t max_n = 512;
  std::vector<int> t_labels = {0, 30, 55, 100};
  std::vector<sort::AlgorithmId> algorithms;  // Empty = StudyAlgorithms().
  std::vector<InputShape> shapes;             // Empty = AllShapes().
  /// Intra-sort thread counts MakeRandomCase draws from (empty keeps the
  /// default of 1). Any value must give the same verdict and digest.
  std::vector<int> sort_thread_pool = {1, 2, 4};
  /// Also randomize the Radsort-style O(sqrt n) LSD arena mode.
  bool randomize_lsd_sqrt_arena = true;
};

struct RunnerResult {
  size_t cases_run = 0;
  size_t cases_failed = 0;
  /// FNV-1a over every case's (index, digest), in index order.
  uint64_t digest = 0;
  /// Reports of failing cases, in index order (pre-shrink).
  std::vector<OracleReport> failures;
  /// The first failure after shrinking, when any case failed and
  /// RunnerOptions.shrink is set; otherwise the first failure as-is.
  std::optional<OracleReport> minimized;

  bool ok() const { return cases_failed == 0; }
  /// One-line repro instructions for the minimized failure.
  std::string ReproLine() const;
};

/// Every algorithm of every sort kind: the Section 3/5 study set plus the
/// Appendix B histogram radix variants (3..6 bits). This is the runner's
/// default pool — correctness tooling covers all six kinds, not just the
/// ones the paper benchmarks.
const std::vector<sort::AlgorithmId>& AllKindAlgorithms();

/// The deterministic random case at (options.seed, index).
OracleCase MakeRandomCase(const RunnerOptions& options, uint64_t index);

/// Runs an explicit case list (e.g. a full shape x T x algorithm matrix).
RunnerResult RunCases(const RunnerOptions& options,
                      const std::vector<OracleCase>& cases,
                      const CaseCheck& check);

/// Runs `count` random cases drawn with MakeRandomCase.
RunnerResult RunRandom(const RunnerOptions& options, size_t count,
                       const CaseCheck& check);

/// Greedy shrink: repeatedly tries smaller variants (halved/decremented n,
/// earlier shape, lower T label, earlier algorithm) and keeps any that
/// still fails, until a local minimum or `max_steps`. Returns the report
/// of the minimized case.
OracleReport ShrinkFailure(const OracleCase& failing, const CaseCheck& check,
                           size_t max_steps);

/// The full deterministic matrix: every (algorithm, shape, T) combination
/// at size `n`, seeded per-case from `seed`.
std::vector<OracleCase> MatrixCases(const RunnerOptions& options, size_t n);

}  // namespace approxmem::testing

#endif  // APPROXMEM_TESTING_PROPERTY_RUNNER_H_
