// Differential oracle: one engine workload vs. the precise golden model.
//
// The oracle runs core::ApproxSortEngine::SortApproxRefine on a generated
// input and checks every invariant the paper's mechanism promises,
// regardless of how much the approximate stage was corrupted (including by
// an attached FaultInjector):
//
//   refine-verified          the pipeline's own verification passed;
//   golden-keys              final keys == std::stable_sort of the input;
//   ids-permutation          final IDs are a permutation of 0..n-1;
//   keys-match-ids           finalKey[i] == input[finalID[i]];
//   precise-cost-accounting  every precise-domain ledger costs exactly
//                            (writes x 1 us + reads x 50 ns), uncorrupted;
//   t0-bit-identical         at the precise operating point the approx-only
//                            sort output already equals the golden keys
//                            with zero corrupted writes;
//   trace-conservation       replaying the access trace through
//                            mem::MemorySystem conserves accesses across
//                            the cache hierarchy and PCM (hits + misses ==
//                            reads in; PCM writes == writes in).
//
// Faults injected into the *approximate* domain must never produce a
// failure (that is the refine guarantee under test); faults injected into
// the *precise* domain must produce one (the oracle's own negative test).
#ifndef APPROXMEM_TESTING_DIFFERENTIAL_ORACLE_H_
#define APPROXMEM_TESTING_DIFFERENTIAL_ORACLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "approx/approx_memory.h"
#include "mlc/calibration.h"
#include "sort/sort_common.h"
#include "testing/fault_injection.h"
#include "testing/generators.h"

namespace approxmem::testing {

/// One oracle case: everything needed to reproduce a run, as a tuple the
/// shrinker can minimize.
struct OracleCase {
  uint64_t seed = 1;
  size_t n = 256;
  /// Paper T label: 0 (precise point), 30, 55, 100, ... (t = label/1000).
  int paper_t = 55;
  sort::AlgorithmId algorithm;
  InputShape shape = InputShape::kUniform;
  /// Intra-sort workers for the striped radix passes (1 = serial). Any
  /// value must give the same verdict and digest.
  int sort_threads = 1;
  /// Radsort-style O(sqrt n) LSD scratch arena.
  bool lsd_sqrt_arena = false;

  /// "quicksort/uniform n=256 T=55 seed=1" — paste-able repro label
  /// (annotated with st=/sqrt when the tuning is non-default).
  std::string Name() const;
};

struct OracleOptions {
  /// Monte-Carlo trials per calibration; small values keep the suite fast.
  uint64_t calibration_trials = 5000;
  approx::SimulationMode mode = approx::SimulationMode::kFast;
  /// Share one cache across many cases so each T calibrates once.
  std::shared_ptr<mlc::CalibrationCache> shared_calibration;
  /// Optional fault injector attached to the engine. Not owned.
  FaultInjector* injector = nullptr;
  /// Replay the full access trace through mem::MemorySystem and check
  /// conservation. Costs memory proportional to the access count.
  bool check_trace_conservation = false;
  /// Run the approx-only bit-identical check when paper_t == 0 and no
  /// injector is attached.
  bool check_bit_identical_at_t0 = true;
};

/// One violated invariant.
struct OracleFailure {
  std::string invariant;  // One of the names in the header comment.
  std::string detail;
};

struct OracleReport {
  OracleCase oracle_case;
  bool ok = false;
  std::vector<OracleFailure> failures;
  /// FNV-1a digest of the outputs and verdict; equal digests across runs
  /// and thread counts demonstrate determinism.
  uint64_t digest = 0;
  /// Ledger extracts for reporting.
  size_t rem_estimate = 0;
  double write_reduction = 0.0;

  std::string FailureSummary() const;
};

/// Runs one case against the golden model. Deterministic in (case,
/// options, injector plan).
OracleReport RunDifferentialOracle(const OracleCase& oracle_case,
                                   const OracleOptions& options);

/// FNV-1a 64-bit, the digest primitive used across the test framework.
uint64_t Fnv1a64(const void* data, size_t bytes, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace approxmem::testing

#endif  // APPROXMEM_TESTING_DIFFERENTIAL_ORACLE_H_
