#include "testing/property_runner.h"

#include <algorithm>
#include <sstream>

#include "common/random.h"
#include "common/thread_pool.h"
#include "sort/sort_common.h"

namespace approxmem::testing {

const std::vector<sort::AlgorithmId>& AllKindAlgorithms() {
  static const std::vector<sort::AlgorithmId> kAll = [] {
    std::vector<sort::AlgorithmId> all = sort::StudyAlgorithms();
    for (int bits = 3; bits <= 6; ++bits) {
      all.push_back(sort::AlgorithmId{sort::SortKind::kLsdHistogram, bits});
    }
    for (int bits = 3; bits <= 6; ++bits) {
      all.push_back(sort::AlgorithmId{sort::SortKind::kMsdHistogram, bits});
    }
    return all;
  }();
  return kAll;
}

namespace {

const std::vector<sort::AlgorithmId>& AlgorithmPool(
    const RunnerOptions& options) {
  return options.algorithms.empty() ? AllKindAlgorithms()
                                    : options.algorithms;
}

const std::vector<InputShape>& ShapePool(const RunnerOptions& options) {
  return options.shapes.empty() ? AllShapes() : options.shapes;
}

/// Seed for case `index` under root `seed`; also the engine seed, so the
/// whole run replays from the pair alone.
uint64_t CaseSeed(uint64_t seed, uint64_t index) {
  return Fnv1a64(&index, sizeof(index), seed ^ 0x9e3779b97f4a7c15ULL) | 1u;
}

}  // namespace

std::string RunnerResult::ReproLine() const {
  if (!minimized.has_value()) return "all cases passed";
  std::ostringstream out;
  out << "minimized failure: " << minimized->oracle_case.Name()
      << " — rerun with these exact values to replay";
  return out.str();
}

OracleCase MakeRandomCase(const RunnerOptions& options, uint64_t index) {
  Rng rng(CaseSeed(options.seed, index));
  const auto& algorithms = AlgorithmPool(options);
  const auto& shapes = ShapePool(options);
  OracleCase oracle_case;
  oracle_case.seed = CaseSeed(options.seed, index);
  oracle_case.n = options.min_n + rng.UniformInt(options.max_n -
                                                 options.min_n + 1);
  oracle_case.paper_t =
      options.t_labels[rng.UniformInt(options.t_labels.size())];
  oracle_case.algorithm = algorithms[rng.UniformInt(algorithms.size())];
  oracle_case.shape = shapes[rng.UniformInt(shapes.size())];
  if (!options.sort_thread_pool.empty()) {
    oracle_case.sort_threads = options.sort_thread_pool[rng.UniformInt(
        options.sort_thread_pool.size())];
  }
  if (options.randomize_lsd_sqrt_arena) {
    oracle_case.lsd_sqrt_arena = rng.UniformInt(2) == 1;
  }
  return oracle_case;
}

std::vector<OracleCase> MatrixCases(const RunnerOptions& options, size_t n) {
  std::vector<OracleCase> cases;
  uint64_t index = 0;
  for (const sort::AlgorithmId& algorithm : AlgorithmPool(options)) {
    for (const InputShape shape : ShapePool(options)) {
      for (const int paper_t : options.t_labels) {
        OracleCase oracle_case;
        oracle_case.seed = CaseSeed(options.seed, index++);
        oracle_case.n = n;
        oracle_case.paper_t = paper_t;
        oracle_case.algorithm = algorithm;
        oracle_case.shape = shape;
        cases.push_back(oracle_case);
      }
    }
  }
  return cases;
}

RunnerResult RunCases(const RunnerOptions& options,
                      const std::vector<OracleCase>& cases,
                      const CaseCheck& check) {
  RunnerResult result;
  result.cases_run = cases.size();
  std::vector<OracleReport> reports(cases.size());

  ThreadPool pool(options.threads);
  pool.ParallelFor(0, cases.size(), [&](size_t i) {
    reports[i] = check(cases[i]);
  });

  // Aggregate in index order so the digest is independent of scheduling.
  result.digest = Fnv1a64(nullptr, 0);
  for (size_t i = 0; i < reports.size(); ++i) {
    const uint64_t slot[2] = {static_cast<uint64_t>(i), reports[i].digest};
    result.digest = Fnv1a64(slot, sizeof(slot), result.digest);
    if (!reports[i].ok) {
      ++result.cases_failed;
      result.failures.push_back(reports[i]);
    }
  }

  if (!result.failures.empty()) {
    if (options.shrink) {
      result.minimized = ShrinkFailure(result.failures.front().oracle_case,
                                       check, options.max_shrink_steps);
    } else {
      result.minimized = result.failures.front();
    }
  }
  return result;
}

RunnerResult RunRandom(const RunnerOptions& options, size_t count,
                       const CaseCheck& check) {
  std::vector<OracleCase> cases(count);
  for (size_t i = 0; i < count; ++i) {
    cases[i] = MakeRandomCase(options, i);
  }
  return RunCases(options, cases, check);
}

OracleReport ShrinkFailure(const OracleCase& failing, const CaseCheck& check,
                           size_t max_steps) {
  OracleCase best = failing;
  OracleReport best_report = check(best);
  if (best_report.ok) return best_report;  // Flaky input; nothing to do.

  size_t steps = 0;
  bool improved = true;
  while (improved && steps < max_steps) {
    improved = false;

    std::vector<OracleCase> candidates;
    if (best.n > 2) {
      OracleCase halved = best;
      halved.n = best.n / 2;
      candidates.push_back(halved);
      OracleCase decremented = best;
      decremented.n = best.n - 1;
      candidates.push_back(decremented);
    }
    {
      const auto& shapes = AllShapes();
      const auto it = std::find(shapes.begin(), shapes.end(), best.shape);
      if (it != shapes.begin() && it != shapes.end()) {
        OracleCase simpler = best;
        simpler.shape = *(it - 1);
        candidates.push_back(simpler);
      }
    }
    if (best.paper_t > 0) {
      OracleCase cooler = best;
      cooler.paper_t = best.paper_t > 55 ? 55 : (best.paper_t > 30 ? 30 : 0);
      candidates.push_back(cooler);
    }

    for (const OracleCase& candidate : candidates) {
      if (steps >= max_steps) break;
      ++steps;
      OracleReport report = check(candidate);
      if (!report.ok) {
        best = candidate;
        best_report = std::move(report);
        improved = true;
        break;  // Restart from the smaller case.
      }
    }
  }
  return best_report;
}

}  // namespace approxmem::testing
