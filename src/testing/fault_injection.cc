#include "testing/fault_injection.h"

namespace approxmem::testing {

FaultPlan FaultPlan::ApproxStorm(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed ^ 0xfa017570a3ULL);
  TransientReadFault flips;
  flips.domain = FaultDomain::kApproxOnly;
  flips.probability = rng.UniformDouble(1e-4, 2e-3);
  plan.read_flips.push_back(flips);
  DriftBurstFault burst;
  burst.domain = FaultDomain::kApproxOnly;
  burst.start_write = rng.UniformInt(4096);
  burst.length = 512 + rng.UniformInt(4096);
  burst.probability = rng.UniformDouble(0.01, 0.2);
  plan.drift_bursts.push_back(burst);
  ErrorRateOverride over;
  over.domain = FaultDomain::kApproxOnly;
  over.probability = rng.UniformDouble(1e-4, 5e-3);
  plan.rate_overrides.push_back(over);
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), write_rng_(0), read_rng_(0) {
  Rng root(plan.seed);
  write_rng_ = root.Split();
  read_rng_ = root.Split();
}

uint32_t FaultInjector::OnWrite(uint64_t address, bool precise_domain,
                                uint32_t intended, uint32_t stored) {
  (void)intended;
  const uint64_t write_index = writes_seen_++;
  uint32_t out = stored;
  for (const DriftBurstFault& burst : plan_.drift_bursts) {
    if (!DomainMatches(burst.domain, precise_domain)) continue;
    if (write_index < burst.start_write ||
        write_index >= burst.start_write + burst.length) {
      continue;
    }
    if (write_rng_.UniformDouble() < burst.probability) {
      out = FlipRandomBit(out, write_rng_);
    }
  }
  for (const ErrorRateOverride& over : plan_.rate_overrides) {
    if (!DomainMatches(over.domain, precise_domain)) continue;
    if (!over.region.Contains(address)) continue;
    if (write_rng_.UniformDouble() < over.probability) {
      out = FlipRandomBit(out, write_rng_);
    }
  }
  for (const StuckAtFault& stuck : plan_.stuck_at) {
    if (!DomainMatches(stuck.domain, precise_domain)) continue;
    if (!stuck.region.Contains(address)) continue;
    out = (out & ~stuck.mask) | (stuck.value & stuck.mask);
  }
  if (out != stored) ++injected_write_faults_;
  return out;
}

uint32_t FaultInjector::OnRead(uint64_t address, bool precise_domain,
                               uint32_t value) {
  ++reads_seen_;
  uint32_t out = value;
  for (const TransientReadFault& flip : plan_.read_flips) {
    if (!DomainMatches(flip.domain, precise_domain)) continue;
    if (!flip.region.Contains(address)) continue;
    if (read_rng_.UniformDouble() < flip.probability) {
      out = FlipRandomBit(out, read_rng_);
    }
  }
  // Stuck-at applies to reads as well so the fault is visible even for
  // cells written before the injector was attached.
  for (const StuckAtFault& stuck : plan_.stuck_at) {
    if (!DomainMatches(stuck.domain, precise_domain)) continue;
    if (!stuck.region.Contains(address)) continue;
    out = (out & ~stuck.mask) | (stuck.value & stuck.mask);
  }
  if (out != value) ++injected_read_faults_;
  return out;
}

bool FaultInjector::InDegradedRegion(uint64_t address) const {
  for (const StuckAtFault& stuck : plan_.stuck_at) {
    if (stuck.region.Contains(address)) return true;
  }
  for (const ErrorRateOverride& over : plan_.rate_overrides) {
    if (over.region.Contains(address)) return true;
  }
  return false;
}

double FaultInjector::OnPcmAccess(uint64_t address, mem::AccessKind kind) {
  (void)kind;
  if (plan_.pcm_latency_factor == 1.0) return 1.0;
  return InDegradedRegion(address) ? plan_.pcm_latency_factor : 1.0;
}

}  // namespace approxmem::testing
