// Input-shape generators for the property-based correctness tooling.
//
// The paper's experiments use uniform keys; correctness of the refine
// guarantee must hold for *every* input, so the test framework sweeps a
// wider family of shapes, including patterns adversarial for specific
// algorithms (pivot killers for quicksort, heavy duplicates for the radix
// bucket logic). All generators are pure functions of (shape, n, seed).
#ifndef APPROXMEM_TESTING_GENERATORS_H_
#define APPROXMEM_TESTING_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace approxmem::testing {

/// Input shapes swept by the property runner and the fuzzer.
enum class InputShape {
  kUniform,           // Uniform over the full 32-bit range.
  kZipf,              // Power-law skew (many duplicates, heavy head).
  kPresorted,         // Already sorted ascending (Rem = 0 on entry).
  kReverse,           // Strictly descending (worst case for Rem).
  kDupHeavy,          // Very few distinct values (duplicate handling).
  kAdversarialPivot,  // Median-of-3-killer-style organ pipe permutation.
};

/// All shapes, in a stable order (index 0 is the simplest for shrinking).
const std::vector<InputShape>& AllShapes();

/// Human-readable name ("uniform", "zipf", ...).
std::string ShapeName(InputShape shape);

/// Parses a name produced by ShapeName.
StatusOr<InputShape> ParseShapeName(const std::string& name);

/// Generates `n` keys of the given shape, deterministic in `seed`.
std::vector<uint32_t> MakeInput(InputShape shape, size_t n, uint64_t seed);

/// Maps the paper's integer T label to a target-range half-width t:
/// T == 0 is the precise operating point (t = 0.025, error-free in
/// practice); any other label is T/1000 (55 -> 0.055).
double TFromPaperLabel(int paper_t);

}  // namespace approxmem::testing

#endif  // APPROXMEM_TESTING_GENERATORS_H_
