#include "testing/differential_oracle.h"

#include <algorithm>
#include <sstream>

#include "core/engine.h"
#include "mem/memory_system.h"
#include "testing/golden.h"

namespace approxmem::testing {

namespace {

void Fail(OracleReport& report, const std::string& invariant,
          const std::string& detail) {
  report.failures.push_back(OracleFailure{invariant, detail});
}

void DigestU64(uint64_t& digest, uint64_t value) {
  digest = Fnv1a64(&value, sizeof(value), digest);
}

void DigestVec(uint64_t& digest, const std::vector<uint32_t>& values) {
  DigestU64(digest, values.size());
  if (!values.empty()) {
    digest = Fnv1a64(values.data(), values.size() * sizeof(uint32_t), digest);
  }
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t bytes, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string OracleCase::Name() const {
  std::ostringstream out;
  out << algorithm.Name() << "/" << ShapeName(shape) << " n=" << n
      << " T=" << paper_t << " seed=" << seed;
  if (sort_threads != 1) out << " st=" << sort_threads;
  if (lsd_sqrt_arena) out << " sqrt";
  return out.str();
}

std::string OracleReport::FailureSummary() const {
  std::ostringstream out;
  out << oracle_case.Name() << ":";
  for (const OracleFailure& failure : failures) {
    out << " [" << failure.invariant << "] " << failure.detail;
  }
  return out.str();
}

OracleReport RunDifferentialOracle(const OracleCase& oracle_case,
                                   const OracleOptions& options) {
  OracleReport report;
  report.oracle_case = oracle_case;
  report.digest = Fnv1a64(nullptr, 0);
  DigestU64(report.digest, oracle_case.seed);
  DigestU64(report.digest, oracle_case.n);

  const double t = TFromPaperLabel(oracle_case.paper_t);
  const std::vector<uint32_t> input =
      MakeInput(oracle_case.shape, oracle_case.n, oracle_case.seed);

  mem::TraceBuffer trace;
  core::EngineOptions engine_options;
  engine_options.calibration_trials = options.calibration_trials;
  engine_options.mode = options.mode;
  engine_options.seed = oracle_case.seed;
  engine_options.shared_calibration = options.shared_calibration;
  engine_options.sort_threads = oracle_case.sort_threads;
  engine_options.lsd_sqrt_arena = oracle_case.lsd_sqrt_arena;
  if (options.check_trace_conservation) engine_options.trace = &trace;
  if (options.injector != nullptr) {
    engine_options.fault_hook = options.injector;
  }
  core::ApproxSortEngine engine(engine_options);

  std::vector<uint32_t> final_keys;
  std::vector<uint32_t> final_ids;
  const auto outcome = engine.SortApproxRefine(
      input, oracle_case.algorithm, t, &final_keys, &final_ids);
  if (!outcome.ok()) {
    Fail(report, "engine-status", outcome.status().ToString());
    report.ok = false;
    return report;
  }
  report.rem_estimate = outcome->refine.rem_estimate;
  report.write_reduction = outcome->write_reduction;

  if (!outcome->refine.verified()) {
    Fail(report, "refine-verified",
         "the pipeline's own output verification failed");
  }

  const std::vector<GoldenRecord> golden = GoldenStableSort(input);
  if (final_keys.size() != golden.size()) {
    std::ostringstream detail;
    detail << "output size " << final_keys.size() << " != " << golden.size();
    Fail(report, "golden-keys", detail.str());
  } else {
    for (size_t i = 0; i < golden.size(); ++i) {
      if (final_keys[i] != golden[i].key) {
        std::ostringstream detail;
        detail << "keys[" << i << "] = " << final_keys[i]
               << ", golden = " << golden[i].key;
        Fail(report, "golden-keys", detail.str());
        break;
      }
    }
  }

  if (!IsIdPermutation(final_ids, input.size())) {
    Fail(report, "ids-permutation",
         "final IDs are not a permutation of 0..n-1");
  } else if (!KeysMatchIds(input, final_keys, final_ids)) {
    Fail(report, "keys-match-ids",
         "some finalKey[i] != input[finalID[i]]");
  }

  const mlc::MlcConfig& mlc = engine.memory().mlc_config();
  const struct {
    const char* name;
    const approx::MemoryStats& stats;
  } precise_ledgers[] = {
      {"baseline.keys", outcome->baseline.keys},
      {"baseline.ids", outcome->baseline.ids},
      {"refine.prep_precise", outcome->refine.prep_precise},
      {"refine.sort_precise", outcome->refine.sort_precise},
      {"refine.refine_precise", outcome->refine.refine_precise},
  };
  for (const auto& ledger : precise_ledgers) {
    if (!PreciseCostsConserve(ledger.stats, mlc)) {
      std::ostringstream detail;
      detail << ledger.name << ": writes=" << ledger.stats.word_writes
             << " cost=" << ledger.stats.write_cost
             << " reads=" << ledger.stats.word_reads
             << " read_cost=" << ledger.stats.read_cost
             << " corrupted=" << ledger.stats.corrupted_writes;
      Fail(report, "precise-cost-accounting", detail.str());
    }
  }

  if (oracle_case.paper_t == 0 && options.check_bit_identical_at_t0 &&
      options.injector == nullptr) {
    std::vector<uint32_t> approx_output;
    const auto only = engine.SortApproxOnly(input, oracle_case.algorithm, t,
                                            &approx_output);
    if (!only.ok()) {
      Fail(report, "t0-bit-identical", only.status().ToString());
    } else if (only->approx_stats.corrupted_writes != 0) {
      std::ostringstream detail;
      detail << only->approx_stats.corrupted_writes
             << " corrupted writes at the precise operating point";
      Fail(report, "t0-bit-identical", detail.str());
    } else {
      for (size_t i = 0; i < golden.size(); ++i) {
        if (approx_output[i] != golden[i].key) {
          std::ostringstream detail;
          detail << "approx-only[" << i << "] = " << approx_output[i]
                 << ", golden = " << golden[i].key;
          Fail(report, "t0-bit-identical", detail.str());
          break;
        }
      }
    }
    DigestVec(report.digest, approx_output);
  }

  if (options.check_trace_conservation) {
    mem::MemorySystem system = mem::MemorySystem::PaperDefault();
    const mem::MemorySystemStats stats = system.Replay(trace);
    const mem::PcmStats& pcm = system.pcm().Stats();
    std::ostringstream detail;
    if (stats.reads != trace.read_count() ||
        stats.writes != trace.write_count()) {
      detail << "replayed " << stats.reads << "r/" << stats.writes
             << "w of " << trace.read_count() << "r/" << trace.write_count()
             << "w traced";
      Fail(report, "trace-conservation", detail.str());
    } else if (stats.l1_read_hits + stats.l2_read_hits + stats.l3_read_hits +
                   stats.memory_reads !=
               stats.reads) {
      detail << "cache hits + PCM reads = "
             << stats.l1_read_hits + stats.l2_read_hits + stats.l3_read_hits +
                    stats.memory_reads
             << " != reads in = " << stats.reads;
      Fail(report, "trace-conservation", detail.str());
    } else if (pcm.reads != stats.memory_reads || pcm.writes != stats.writes) {
      detail << "PCM saw " << pcm.reads << "r/" << pcm.writes
             << "w, expected " << stats.memory_reads << "r/" << stats.writes
             << "w";
      Fail(report, "trace-conservation", detail.str());
    }
  }

  DigestVec(report.digest, final_keys);
  DigestVec(report.digest, final_ids);
  DigestU64(report.digest, report.rem_estimate);
  DigestU64(report.digest, report.failures.size());
  report.ok = report.failures.empty();
  return report;
}

}  // namespace approxmem::testing
