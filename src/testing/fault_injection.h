// Deterministic fault injection for the approximate-memory engine.
//
// A FaultPlan describes a set of substrate faults; a FaultInjector realizes
// the plan as an approx::MemoryFaultHook (value corruption on the array
// facade) and a mem::PcmFaultListener (latency degradation on the banked
// device model). Everything stochastic flows through two Rng::Split
// substreams of one uint64 seed, so any failure an injected run produces is
// replayable from (plan, workload seed) alone.
//
// Fault kinds (all scoped by address region and precision domain):
//   * stuck-at cells   — bits in a region permanently forced to a value,
//                        applied to every write and read of the region;
//   * transient read flips — a read observes a flipped bit with some
//                        probability; the stored value is untouched;
//   * drift bursts     — a window of the write sequence (e.g. "writes
//                        10'000 to 20'000") during which writes suffer an
//                        extra error probability, modeling a burst of
//                        resistance drift;
//   * error-rate overrides — a region whose writes suffer an extra word
//                        error probability regardless of the write model's
//                        own calibrated rate.
#ifndef APPROXMEM_TESTING_FAULT_INJECTION_H_
#define APPROXMEM_TESTING_FAULT_INJECTION_H_

#include <cstdint>
#include <vector>

#include "approx/fault_hook.h"
#include "common/random.h"
#include "mem/pcm.h"

namespace approxmem::testing {

/// Which precision domain a fault applies to. Faults in the approximate
/// domain are covered by the paper's refine guarantee; faults in the
/// precise domain break it and must be caught by the differential oracle.
enum class FaultDomain {
  kAny,
  kPreciseOnly,
  kApproxOnly,
};

/// Half-open byte-address region [begin, end) in the flat simulated space.
struct AddressRegion {
  uint64_t begin = 0;
  uint64_t end = ~uint64_t{0};

  bool Contains(uint64_t address) const {
    return address >= begin && address < end;
  }
  static AddressRegion All() { return AddressRegion{}; }
};

/// Bits under `mask` in the region permanently read/write as `value`.
struct StuckAtFault {
  AddressRegion region;
  FaultDomain domain = FaultDomain::kAny;
  uint32_t mask = 1;
  uint32_t value = 0;
};

/// Reads in the region observe a random single-bit flip with `probability`.
struct TransientReadFault {
  AddressRegion region;
  FaultDomain domain = FaultDomain::kApproxOnly;
  double probability = 0.0;
};

/// Writes number [start_write, start_write + length) seen by the injector
/// (counted across all matching arrays) suffer an extra single-bit error
/// with `probability` each.
struct DriftBurstFault {
  FaultDomain domain = FaultDomain::kApproxOnly;
  uint64_t start_write = 0;
  uint64_t length = 0;
  double probability = 0.0;
};

/// Writes in the region suffer an extra single-bit error with
/// `probability`, on top of the write model's own calibrated error rate.
struct ErrorRateOverride {
  AddressRegion region;
  FaultDomain domain = FaultDomain::kApproxOnly;
  double probability = 0.0;
};

/// A complete, replayable fault scenario.
struct FaultPlan {
  /// Seeds the injector's substreams; one uint64 replays everything.
  uint64_t seed = 1;
  /// PCM service-latency multiplier for accesses inside any stuck-at or
  /// override region (the timing half of a degraded cell region).
  double pcm_latency_factor = 1.0;

  std::vector<StuckAtFault> stuck_at;
  std::vector<TransientReadFault> read_flips;
  std::vector<DriftBurstFault> drift_bursts;
  std::vector<ErrorRateOverride> rate_overrides;

  bool Empty() const {
    return stuck_at.empty() && read_flips.empty() && drift_bursts.empty() &&
           rate_overrides.empty();
  }

  /// A moderate approx-domain fault storm (read flips + drift burst +
  /// write-error override), used by the fuzzer. The refine guarantee must
  /// hold under any plan this returns.
  static FaultPlan ApproxStorm(uint64_t seed);
};

/// Realizes a FaultPlan. Deterministic: two injectors with equal plans fed
/// the same access sequence make identical decisions.
class FaultInjector final : public approx::MemoryFaultHook,
                            public mem::PcmFaultListener {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // approx::MemoryFaultHook:
  uint32_t OnWrite(uint64_t address, bool precise_domain, uint32_t intended,
                   uint32_t stored) override;
  uint32_t OnRead(uint64_t address, bool precise_domain,
                  uint32_t value) override;

  // mem::PcmFaultListener:
  double OnPcmAccess(uint64_t address, mem::AccessKind kind) override;

  const FaultPlan& plan() const { return plan_; }

  /// Counters for tests and fuzzer reporting.
  uint64_t writes_seen() const { return writes_seen_; }
  uint64_t reads_seen() const { return reads_seen_; }
  uint64_t injected_write_faults() const { return injected_write_faults_; }
  uint64_t injected_read_faults() const { return injected_read_faults_; }

 private:
  static bool DomainMatches(FaultDomain domain, bool precise_domain) {
    switch (domain) {
      case FaultDomain::kAny:
        return true;
      case FaultDomain::kPreciseOnly:
        return precise_domain;
      case FaultDomain::kApproxOnly:
        return !precise_domain;
    }
    return false;
  }

  uint32_t FlipRandomBit(uint32_t value, Rng& rng) {
    return value ^ (1u << rng.UniformInt(32));
  }

  bool InDegradedRegion(uint64_t address) const;

  FaultPlan plan_;
  Rng write_rng_;
  Rng read_rng_;
  uint64_t writes_seen_ = 0;
  uint64_t reads_seen_ = 0;
  uint64_t injected_write_faults_ = 0;
  uint64_t injected_read_faults_ = 0;
};

}  // namespace approxmem::testing

#endif  // APPROXMEM_TESTING_FAULT_INJECTION_H_
