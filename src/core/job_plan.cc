#include "core/job_plan.h"

#include <utility>
#include <vector>

#include "testing/differential_oracle.h"

namespace approxmem::core {
namespace {

uint64_t VectorDigest(const std::vector<uint32_t>& values) {
  if (values.empty()) return 0;
  return testing::Fnv1a64(values.data(), values.size() * sizeof(uint32_t));
}

}  // namespace

std::string_view JobClassName(JobClass job_class) {
  switch (job_class) {
    case JobClass::kInMemory:
      return "in-memory";
    case JobClass::kExtSort:
      return "extsort";
  }
  return "unknown";
}

JobOutcome InMemoryJobPlan::Execute(const JobContext& context) {
  JobOutcome outcome;
  ApproxSortEngine& engine = *context.engine;
  // Key every allocation stream of this job by its ticket alone: the job's
  // simulated error draws no longer depend on how many allocations earlier
  // jobs on this substrate consumed.
  engine.memory().BeginJobStream(context.ticket);
  const std::vector<uint32_t> keys =
      MakeKeys(job_.workload, job_.n, job_.seed);

  std::vector<uint32_t> final_keys;
  std::vector<uint32_t> final_ids;
  if (context.resilient) {
    const StatusOr<ResilienceReport> report =
        SortResilient(engine, keys, job_.algorithm, context.knob,
                      context.resilience, &final_keys, &final_ids);
    if (!report.ok()) {
      outcome.status = report.status();
    } else {
      outcome.attempts = report->attempts.size();
      outcome.verified = report->verified;
      outcome.cost = report->cumulative;
      outcome.baseline_write_cost = report->baseline.TotalWriteCost();
      outcome.write_reduction = report->write_reduction;
      outcome.status = report->verified
                           ? Status::Ok()
                           : Status::Unavailable(
                                 "resilience ladder exhausted unverified");
    }
  } else {
    const StatusOr<RefineOutcome> refined = engine.SortApproxRefine(
        keys, job_.algorithm, context.knob, &final_keys, &final_ids);
    if (!refined.ok()) {
      outcome.status = refined.status();
    } else {
      outcome.attempts = 1;
      outcome.verified = refined->refine.verified();
      outcome.cost = refined->refine.TotalStats();
      outcome.baseline_write_cost = refined->baseline.TotalWriteCost();
      outcome.write_reduction = refined->write_reduction;
      outcome.status =
          outcome.verified
              ? Status::Ok()
              : Status::Unavailable(
                    "refine output unverified: " +
                    refined->refine.verification.ToString());
    }
  }
  outcome.keys_digest = VectorDigest(final_keys);
  outcome.ids_digest = VectorDigest(final_ids);
  // Modeled service time: the simulated memory traffic (ns) this job cost,
  // on the shard's single modeled execution unit.
  outcome.service_us =
      (outcome.cost.write_cost + outcome.cost.read_cost) / 1000.0;
  return outcome;
}

}  // namespace approxmem::core
