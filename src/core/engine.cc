#include "core/engine.h"

#include <utility>

#include "refine/cost_model.h"

namespace approxmem::core {
namespace {

approx::ApproxMemory::Options ToMemoryOptions(const EngineOptions& options) {
  approx::ApproxMemory::Options memory_options;
  memory_options.backend = options.backend;
  memory_options.mlc = options.mlc;
  memory_options.mode = options.mode;
  memory_options.calibration_trials = options.calibration_trials;
  memory_options.seed = options.seed;
  memory_options.shared_calibration = options.shared_calibration;
  memory_options.sequential_write_discount =
      options.sequential_write_discount;
  memory_options.trace = options.trace;
  memory_options.fault_hook = options.fault_hook;
  memory_options.health = options.health;
  memory_options.placement = options.placement;
  return memory_options;
}

}  // namespace

ApproxSortEngine::ApproxSortEngine(const EngineOptions& options)
    : options_(options), memory_(ToMemoryOptions(options)) {}

sort::SortTuning ApproxSortEngine::SortTuningForRuns() {
  sort::SortTuning tuning;
  tuning.lsd_sqrt_arena = options_.lsd_sqrt_arena;
  if (options_.sort_pool != nullptr) {
    tuning.pool = options_.sort_pool;
  } else if (options_.sort_threads != 1) {
    if (owned_sort_pool_ == nullptr) {
      owned_sort_pool_ = std::make_unique<ThreadPool>(options_.sort_threads);
    }
    tuning.pool = owned_sort_pool_.get();
  }
  return tuning;
}

StatusOr<ApproxOnlyResult> ApproxSortEngine::SortOnlyImpl(
    const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
    const refine::ArrayAlloc& approx_alloc,
    const refine::ArrayAlloc& precise_alloc, std::vector<uint32_t>* output) {
  ApproxOnlyResult result;
  const sort::SortTuning tuning = SortTuningForRuns();

  // Approximate run. The input already resides in approximate memory in the
  // Section 3 setup, so loading it is not part of the measured cost.
  {
    approx::ApproxArrayU32 array = approx_alloc(keys.size());
    array.Store(keys);
    array.ResetStats();
    approx::MemoryStats scratch_stats;
    sort::SortSpec spec;
    spec.keys = &array;
    spec.ids = nullptr;
    spec.alloc_key_buffer = [&](size_t n) {
      approx::ApproxArrayU32 buffer = approx_alloc(n);
      buffer.SetStatsSink(&scratch_stats);
      return buffer;
    };
    spec.tuning = tuning;
    Rng rng(options_.seed ^ 0x5047ULL);
    const Status status = sort::RunSort(spec, algorithm, rng);
    if (!status.ok()) return status;
    result.sortedness = sortedness::Measure(array);
    result.approx_stats = array.stats() + scratch_stats;
    if (output != nullptr) *output = array.Snapshot();
  }

  // Precise baseline run (same algorithm, same input, no payload).
  {
    StatusOr<refine::PreciseBaselineReport> baseline =
        refine::PreciseSortBaseline(keys, algorithm, precise_alloc,
                                    options_.seed ^ 0x5047ULL,
                                    /*with_ids=*/false,
                                    /*sorted_keys=*/nullptr, tuning);
    if (!baseline.ok()) return baseline.status();
    result.precise_stats = baseline->keys + baseline->ids;
  }

  result.write_reduction =
      result.precise_stats.write_cost > 0.0
          ? 1.0 - result.approx_stats.write_cost /
                      result.precise_stats.write_cost
          : 0.0;
  return result;
}

StatusOr<ApproxOnlyResult> ApproxSortEngine::SortApproxOnly(
    const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
    double knob, std::vector<uint32_t>* output) {
  const Status valid = memory_.backend().Validate(
      approx::AllocSpec::Approx(knob, keys.size()));
  if (!valid.ok()) return valid;
  return SortOnlyImpl(
      keys, algorithm,
      [this, knob](size_t n) { return memory_.NewApproxArray(n, knob); },
      [this](size_t n) { return memory_.NewPreciseArray(n); }, output);
}

StatusOr<RefineOutcome> ApproxSortEngine::RefineImpl(
    const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
    const refine::ArrayAlloc& approx_alloc,
    const refine::ArrayAlloc& precise_alloc, double pv_ratio,
    std::vector<uint32_t>* final_keys, std::vector<uint32_t>* final_ids) {
  RefineOutcome outcome;

  refine::RefineOptions refine_options;
  refine_options.algorithm = algorithm;
  refine_options.approx_alloc = approx_alloc;
  refine_options.precise_alloc = precise_alloc;
  refine_options.sort_seed = options_.seed ^ 0x4e414cULL;
  refine_options.tuning = SortTuningForRuns();
  StatusOr<refine::RefineReport> report = refine::ApproxRefineSort(
      keys, refine_options, final_keys, final_ids);
  if (!report.ok()) return report.status();
  outcome.refine = std::move(report.value());

  StatusOr<refine::PreciseBaselineReport> baseline =
      refine::PreciseSortBaseline(keys, algorithm, precise_alloc,
                                  refine_options.sort_seed,
                                  /*with_ids=*/true,
                                  /*sorted_keys=*/nullptr,
                                  refine_options.tuning);
  if (!baseline.ok()) return baseline.status();
  outcome.baseline = std::move(baseline.value());

  outcome.write_reduction = refine::WriteReduction(outcome.refine,
                                                   outcome.baseline);
  outcome.predicted_write_reduction = refine::PredictWriteReduction(
      algorithm, keys.size(), pv_ratio, outcome.refine.rem_estimate);
  return outcome;
}

StatusOr<RefineOutcome> ApproxSortEngine::SortApproxRefine(
    const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
    double knob, std::vector<uint32_t>* final_keys,
    std::vector<uint32_t>* final_ids) {
  const Status valid = memory_.backend().Validate(
      approx::AllocSpec::Approx(knob, keys.size()));
  if (!valid.ok()) return valid;
  // The cost model's p(t) generalizes to the backend's approx-to-precise
  // write-cost ratio (the per-write energy ratio under the energy model).
  return RefineImpl(
      keys, algorithm,
      [this, knob](size_t n) { return memory_.NewApproxArray(n, knob); },
      [this](size_t n) { return memory_.NewPreciseArray(n); },
      memory_.WriteCostRatio(knob), final_keys, final_ids);
}

namespace {

// SplitMix64 finalizer: decorrelates consecutive run indices into
// independent-looking pivot seeds.
uint64_t MixStreamKey(uint64_t seed, uint64_t stream_key) {
  uint64_t z = seed ^ (stream_key + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

StatusOr<refine::RefineReport> ApproxSortEngine::SortRunApproxRefine(
    const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
    double knob, uint64_t stream_key, std::vector<uint32_t>* final_keys,
    std::vector<uint32_t>* final_ids) {
  const Status valid = memory_.backend().Validate(
      approx::AllocSpec::Approx(knob, keys.size()));
  if (!valid.ok()) return valid;
  memory_.BeginJobStream(stream_key);
  refine::RefineOptions refine_options;
  refine_options.algorithm = algorithm;
  refine_options.approx_alloc = [this, knob](size_t n) {
    return memory_.NewApproxArray(n, knob);
  };
  refine_options.precise_alloc = [this](size_t n) {
    return memory_.NewPreciseArray(n);
  };
  refine_options.sort_seed =
      MixStreamKey(options_.seed ^ 0x4e414cULL, stream_key);
  // Runs are large and numerous; the exact-sortedness LIS pass is a
  // diagnostic the external sort does not read.
  refine_options.measure_approx_sortedness = false;
  refine_options.tuning = SortTuningForRuns();
  return refine::ApproxRefineSort(keys, refine_options, final_keys,
                                  final_ids);
}

StatusOr<refine::PreciseBaselineReport> ApproxSortEngine::SortRunPrecise(
    const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
    uint64_t stream_key, std::vector<uint32_t>* sorted_keys,
    std::vector<uint32_t>* sorted_ids) {
  memory_.BeginJobStream(stream_key);
  return refine::PreciseSortBaseline(
      keys, algorithm,
      [this](size_t n) { return memory_.NewPreciseArray(n); },
      MixStreamKey(options_.seed ^ 0x4e414cULL, stream_key),
      /*with_ids=*/true, sorted_keys, SortTuningForRuns(), sorted_ids);
}

bool ApproxSortEngine::RecommendApproxRefine(
    const sort::AlgorithmId& algorithm, size_t n, double knob,
    size_t expected_rem) {
  return refine::ShouldUseApproxRefine(algorithm, n,
                                       memory_.WriteCostRatio(knob),
                                       expected_rem);
}

}  // namespace approxmem::core
