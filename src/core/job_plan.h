// The common job abstraction both sorting execution paths implement.
//
// A SortJob is a client-phrased description of one sort: which class of
// execution it needs (in-memory approx-refine, or the out-of-core external
// sort), which algorithm, and which generated workload. A JobPlan is the
// executable form of one class: the service (or any other scheduler) picks
// the concrete plan for a job and drives it through the single Execute()
// entry point, so admission control, wear accounting, and the Eq. 2 tenant
// ledgers never need to know which path ran underneath.
//
// Determinism contract, inherited by every plan: Execute must derive all
// RNG streams from (engine seed, context.ticket, job.seed) alone — the
// in-memory plan rebases the hybrid memory onto the ticket
// (ApproxMemory::BeginJobStream), the out-of-core plan rebases each run
// onto a ticket-keyed stream salt — and JobOutcome::service_us must be a
// pure function of the modeled cost ledgers, never of wall clock. That is
// what keeps every digest and the service's virtual-time latencies
// byte-identical at any thread count.
//
// The out-of-core plan lives in src/extsort/extsort_plan.h (extsort depends
// on core, so the concrete plan cannot live here); the in-memory plan is
// below.
#ifndef APPROXMEM_CORE_JOB_PLAN_H_
#define APPROXMEM_CORE_JOB_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "approx/memory_stats.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/resilience.h"
#include "core/workload.h"
#include "sort/sort_common.h"

namespace approxmem::core {

/// Which execution path a job runs on.
enum class JobClass : uint8_t {
  /// The whole input fits the substrate: resilient approx-refine
  /// (core/resilience.h) or plain SortApproxRefine.
  kInMemory = 0,
  /// Out-of-core: the external sort under a modeled MemoryBudget lease,
  /// spilling key+rowid records to an async block device.
  kExtSort = 1,
};

/// "in-memory" / "extsort".
std::string_view JobClassName(JobClass job_class);

/// One sort job as a client would phrase it. Inputs are generated from
/// (workload, n, seed) — callers ship no payload bytes.
struct SortJob {
  JobClass job_class = JobClass::kInMemory;
  sort::AlgorithmId algorithm{sort::SortKind::kLsdRadix, 3};
  WorkloadKind workload = WorkloadKind::kUniform;
  size_t n = 1024;
  /// Seeds the key generator for this job.
  uint64_t seed = 1;
};

/// Everything a plan needs from whoever schedules it. The engine is the
/// substrate the job runs on (owned by the caller; for the service, by the
/// shard); the ticket keys every RNG stream the job consumes.
struct JobContext {
  ApproxSortEngine* engine = nullptr;
  uint64_t ticket = 0;
  /// Effective approximation knob, after any aging-driven tightening.
  double knob = 0.0;
  /// Run under the verified-retry ladder where the plan supports it.
  bool resilient = true;
  ResilienceOptions resilience;
};

/// Class-agnostic outcome of one executed job: everything the scheduler
/// needs for terminal-state bookkeeping, the Eq. 2 tenant ledgers, wear
/// charging, and the virtual-time SLO clock.
struct JobOutcome {
  Status status = Status::Ok();
  /// Output verified exactly sorted (and, for record payloads, a
  /// permutation certificate against the input).
  bool verified = false;
  /// Resilience-ladder attempts consumed (1 = first try verified).
  size_t attempts = 0;
  /// FNV-1a digests of the final keys / final record IDs.
  uint64_t keys_digest = 0;
  uint64_t ids_digest = 0;
  /// The job's honest cumulative simulated-memory cost (every attempt, or
  /// every run of the external sort).
  approx::MemoryStats cost;
  /// Precise-baseline write cost (Equation 2's denominator).
  double baseline_write_cost = 0.0;
  /// Equation 2 over the job's cumulative cost.
  double write_reduction = 0.0;
  /// Deterministic modeled service time in virtual µs — memory cost for
  /// the in-memory plan, the device makespan for the out-of-core plan.
  /// Feeds the service's virtual-time latency ledger, never wall clock.
  double service_us = 0.0;
  // Out-of-core extras; zero for in-memory jobs.
  uint64_t bytes_spilled = 0;
  size_t merge_passes = 0;
  size_t initial_runs = 0;
};

/// The executable form of one job class.
class JobPlan {
 public:
  virtual ~JobPlan() = default;
  virtual JobClass job_class() const = 0;
  /// Runs the job on context.engine and returns the full outcome. Errors
  /// are reported in JobOutcome::status (with whatever cost was paid
  /// before the failure still accounted), never thrown.
  virtual JobOutcome Execute(const JobContext& context) = 0;
};

/// The in-memory path: today's ApproxSortEngine execution — resilient
/// ladder when context.resilient, plain approx-refine otherwise — with the
/// per-job precise baseline both variants already pay.
class InMemoryJobPlan : public JobPlan {
 public:
  explicit InMemoryJobPlan(const SortJob& job) : job_(job) {}

  JobClass job_class() const override { return JobClass::kInMemory; }
  JobOutcome Execute(const JobContext& context) override;

 private:
  SortJob job_;
};

}  // namespace approxmem::core

#endif  // APPROXMEM_CORE_JOB_PLAN_H_
