#include "core/resilience.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <utility>

namespace approxmem::core {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::string_view AttemptPolicyName(AttemptPolicy policy) {
  switch (policy) {
    case AttemptPolicy::kInitial:
      return "INITIAL";
    case AttemptPolicy::kRefineRetry:
      return "REFINE_RETRY";
    case AttemptPolicy::kGuardBandEscalation:
      return "GUARD_BAND_ESCALATION";
    case AttemptPolicy::kPreciseFallback:
      return "PRECISE_FALLBACK";
  }
  return "UNKNOWN";
}

uint64_t ResilienceReport::AttemptDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(attempts.size()));
  for (const AttemptRecord& a : attempts) {
    h = FnvMix(h, static_cast<uint64_t>(a.policy));
    h = FnvMix(h, std::bit_cast<uint64_t>(a.t));
    h = FnvMix(h, static_cast<uint64_t>(a.status.code()));
    h = FnvMix(h, a.verified ? 1 : 0);
    h = FnvMix(h, static_cast<uint64_t>(a.verification.failure));
    h = FnvMix(h, static_cast<uint64_t>(a.rem_estimate));
    h = FnvMix(h, a.cost.word_writes);
    h = FnvMix(h, a.cost.word_reads);
  }
  h = FnvMix(h, verified ? 1 : 0);
  h = FnvMix(h, static_cast<uint64_t>(final_policy));
  h = FnvMix(h, std::bit_cast<uint64_t>(final_t));
  return h;
}

StatusOr<ResilienceReport> SortResilient(
    ApproxSortEngine& engine, const std::vector<uint32_t>& keys,
    const sort::AlgorithmId& algorithm, double t,
    const ResilienceOptions& options, std::vector<uint32_t>* final_keys,
    std::vector<uint32_t>* final_ids) {
  approx::ApproxMemory& memory = engine.memory();
  const Status valid =
      memory.backend().Validate(approx::AllocSpec::Approx(t, keys.size()));
  if (!valid.ok()) return valid;
  const refine::ArrayAlloc precise_alloc = [&memory](size_t n) {
    return memory.NewPreciseArray(n);
  };
  const uint64_t base_sort_seed = engine.options().seed ^ 0x4e414cULL;
  // All canary traffic spent during this call (baseline and attempts alike)
  // is charged to the cumulative ledger at the end.
  const approx::MemoryStats canary_before =
      memory.health().stats().canary_costs;

  ResilienceReport report;
  report.n = keys.size();

  // The precise baseline: Equation 2's denominator, same seed as the plain
  // engine path so resilient and plain outcomes are directly comparable.
  {
    StatusOr<refine::PreciseBaselineReport> baseline =
        refine::PreciseSortBaseline(keys, algorithm, precise_alloc,
                                    base_sort_seed, /*with_ids=*/true);
    if (!baseline.ok()) return baseline.status();
    report.baseline = std::move(baseline.value());
  }

  // Each full attempt after the first draws its pivot seed from a split of
  // the ladder RNG — deterministic, replayable, independent streams.
  Rng ladder_rng(engine.options().seed ^ 0x7e511e47ULL);
  const double precise_t = memory.backend().precise_knob();
  const double min_knob = std::isnan(options.min_t)
                              ? memory.backend().min_knob()
                              : options.min_t;

  bool succeeded = false;
  std::vector<uint32_t> out_keys;
  std::vector<uint32_t> out_ids;

  const auto log_failure = [&options](const AttemptRecord& rec) {
    if (!options.log_diagnostics) return;
    std::fprintf(stderr, "[resilience] %s t=%.4f failed: %s\n",
                 AttemptPolicyName(rec.policy).data(), rec.t,
                 rec.status.ok() ? rec.verification.ToString().c_str()
                                 : rec.status.message().c_str());
  };

  // Runs one full attempt (approx stage + refine, with up to
  // max_refine_retries refine-only re-runs). Returns Ok when it verified;
  // a retryable failure lets the ladder climb, anything else aborts.
  const auto full_attempt = [&](AttemptPolicy policy, double attempt_t,
                                uint64_t sort_seed,
                                bool precise_domain) -> Status {
    const uint64_t quarantined_before =
        memory.health().stats().regions_quarantined;
    refine::RefineOptions ro;
    ro.algorithm = algorithm;
    ro.precise_alloc = precise_alloc;
    ro.approx_alloc =
        precise_domain
            ? precise_alloc
            : refine::ArrayAlloc([&memory, attempt_t](size_t n) {
                return memory.NewApproxArray(n, attempt_t);
              });
    ro.sort_seed = sort_seed;
    ro.tuning = engine.SortTuningForRuns();

    refine::ApproxStageState state;
    Status status = refine::RunApproxStage(keys, ro, &state);
    if (!status.ok()) {
      AttemptRecord rec;
      rec.policy = policy;
      rec.t = attempt_t;
      rec.status = status;
      rec.cost = state.report.TotalStats();
      report.cumulative += rec.cost;
      report.attempts.push_back(rec);
      log_failure(report.attempts.back());
      return status;
    }
    for (int run = 0;; ++run) {
      refine::RefineReport rep;
      std::vector<uint32_t> fk;
      std::vector<uint32_t> fi;
      status = refine::RunRefineStage(state, ro, &rep, &fk, &fi);
      AttemptRecord rec;
      rec.policy = run == 0 ? policy : AttemptPolicy::kRefineRetry;
      rec.t = attempt_t;
      rec.status = status;
      rec.verified = status.ok() && rep.verified();
      rec.verification = rep.verification;
      rec.rem_estimate = rep.rem_estimate;
      // A refine-only re-run pays just the refine stage again; the approx
      // stage it reuses was charged by run 0.
      rec.cost = run == 0 ? rep.TotalStats() : rep.refine_precise;
      report.cumulative += rec.cost;
      report.attempts.push_back(rec);
      report.refine = rep;
      report.final_policy = rec.policy;
      report.final_t = attempt_t;
      if (rec.verified) {
        succeeded = true;
        out_keys = std::move(fk);
        out_ids = std::move(fi);
        return Status::Ok();
      }
      log_failure(report.attempts.back());
      if (!status.ok() && !status.IsRetryable()) return status;
      // A quarantine during this attempt means persistent substrate damage
      // under the current placement; when configured, stop re-reading it
      // and let the ladder escalate to a fresh placement instead.
      const bool degraded_mid_attempt =
          options.skip_retry_on_quarantine &&
          memory.health().stats().regions_quarantined > quarantined_before;
      if (run >= options.max_refine_retries || degraded_mid_attempt) {
        // Exhausted this rung; report the unverified output so the caller
        // still has the best effort if the whole ladder runs dry.
        out_keys = std::move(fk);
        out_ids = std::move(fi);
        return status.ok() ? Status::Unavailable("verification failed")
                           : status;
      }
    }
  };

  Status last = full_attempt(AttemptPolicy::kInitial, t, base_sort_seed,
                             /*precise_domain=*/false);
  double current_t = t;
  int escalations = 0;
  bool fell_back = false;
  while (!succeeded) {
    if (!last.ok() && !last.IsRetryable()) return last;
    if (escalations < options.max_escalations) {
      ++escalations;
      current_t =
          std::max(min_knob, current_t * options.escalation_factor);
      last = full_attempt(AttemptPolicy::kGuardBandEscalation, current_t,
                          ladder_rng.Split().Next64(),
                          /*precise_domain=*/false);
    } else if (options.allow_precise_fallback && !fell_back) {
      fell_back = true;
      last = full_attempt(AttemptPolicy::kPreciseFallback, precise_t,
                          ladder_rng.Split().Next64(),
                          /*precise_domain=*/true);
    } else {
      break;  // Ladder exhausted: report honestly with verified == false.
    }
  }

  report.verified = succeeded;
  if (final_keys != nullptr) *final_keys = std::move(out_keys);
  if (final_ids != nullptr) *final_ids = std::move(out_ids);

  report.canary_costs =
      memory.health().stats().canary_costs - canary_before;
  report.health = memory.health().stats();
  report.cumulative += report.canary_costs;
  const double baseline_cost = report.baseline.TotalWriteCost();
  report.write_reduction =
      baseline_cost > 0.0
          ? 1.0 - report.cumulative.write_cost / baseline_cost
          : 0.0;
  return report;
}

}  // namespace approxmem::core
