// Resilient execution: a bounded, deterministic retry/escalation ladder
// around the approx-refine pipeline.
//
// The refine stage guarantees an exactly sorted output for any corruption
// of the *approximate* domain — that is the paper's whole point. What it
// cannot absorb is a misbehaving *precise* domain (modeled here by fault
// injection): corrupted IDs or outputs fail verification. SortResilient
// turns that hard failure into a recovery ladder:
//
//   1. kRefineRetry — re-run the refine stage only, against the same
//      approx-stage output. Cures transient read faults (each replayed
//      read re-samples the fault process) at refine-stage cost only.
//   2. kGuardBandEscalation — re-run the whole approx-refine at a tighter
//      target half-width t (t *= escalation_factor, floored at min_t).
//      Fresh allocations move past degraded address regions (the bump
//      allocator never reuses addresses) and the tighter guard band cuts
//      the approximate error rate itself.
//   3. kPreciseFallback — run the identical pipeline with the approximate
//      domain replaced by precise memory: the write-reduction gain is
//      forfeited, correctness is not.
//
// Every rung is bounded and seeded from a dedicated ladder RNG via
// Rng::Split, so a resilient run is exactly replayable. ALL costs — every
// attempt, aborted or not, plus the health monitor's canary traffic — are
// accumulated into one cumulative ledger, and the reported write reduction
// is computed from that cumulative cost against the precise baseline. That
// keeps Equation 2 honest: resilience never gets to hide the price of its
// retries.
#ifndef APPROXMEM_CORE_RESILIENCE_H_
#define APPROXMEM_CORE_RESILIENCE_H_

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "approx/health_monitor.h"
#include "approx/memory_stats.h"
#include "common/status.h"
#include "core/engine.h"
#include "refine/approx_refine.h"
#include "sort/sort_common.h"

namespace approxmem::core {

/// Which rung of the ladder an attempt ran on.
enum class AttemptPolicy : uint8_t {
  kInitial = 0,
  kRefineRetry,
  kGuardBandEscalation,
  kPreciseFallback,
};

/// "INITIAL", "REFINE_RETRY", "GUARD_BAND_ESCALATION", "PRECISE_FALLBACK".
std::string_view AttemptPolicyName(AttemptPolicy policy);

/// Ladder bounds; the defaults give at most
/// (1 + max_escalations + 1 fallback) full runs, each with up to
/// max_refine_retries refine-only re-runs.
struct ResilienceOptions {
  /// Refine-only re-runs per full attempt (rung 1).
  int max_refine_retries = 1;
  /// Guard-band escalations (rung 2); each multiplies the knob by
  /// escalation_factor, floored at min_t.
  int max_escalations = 2;
  double escalation_factor = 0.5;
  /// Floor of the escalation ladder, in the backend's knob unit. NaN (the
  /// default) means "the backend's own floor" (MemoryBackend::min_knob):
  /// the precise half-width 0.025 on the PCM backends, the most
  /// conservative paper operating point 1e-7 on spintronic.
  double min_t = std::numeric_limits<double>::quiet_NaN();
  /// Whether rung 3 (fully precise re-run) is available.
  bool allow_precise_fallback = true;
  /// End-of-life interaction: when the health monitor quarantined new
  /// regions *during* a failed attempt, the substrate visibly degraded
  /// under it — re-reading the same placement (rung 1) cannot cure
  /// persistent damage, so skip straight to guard-band escalation, whose
  /// fresh allocations route around the dead region. Off by default to
  /// preserve historical ladder digests; the sort service enables it for
  /// endurance-modeled substrates.
  bool skip_retry_on_quarantine = false;
  /// Print a one-line diagnostic to stderr for every failed attempt.
  bool log_diagnostics = false;
};

/// One attempt's outcome: what ran, with what guard band, what it cost,
/// and how it failed (if it did).
struct AttemptRecord {
  AttemptPolicy policy = AttemptPolicy::kInitial;
  /// Target-range half-width of the attempt's approximate domain (the
  /// precise T width for a kPreciseFallback attempt).
  double t = 0.0;
  Status status;
  bool verified = false;
  refine::VerificationReport verification;
  size_t rem_estimate = 0;
  /// Marginal cost of this attempt: a full run charges all five ledgers, a
  /// refine-only retry charges just the refine stage it re-ran.
  approx::MemoryStats cost;
};

/// Outcome of a resilient sort: the final result plus the whole ladder's
/// history and its honest cumulative cost.
struct ResilienceReport {
  size_t n = 0;
  /// True iff some attempt produced a verified, exactly sorted output.
  bool verified = false;
  AttemptPolicy final_policy = AttemptPolicy::kInitial;
  /// Half-width of the attempt that produced the final output.
  double final_t = 0.0;
  std::vector<AttemptRecord> attempts;
  /// Sum of every attempt's marginal cost plus the canary probe traffic
  /// spent during this call — the true price of the resilient execution.
  approx::MemoryStats cumulative;
  /// Canary-probe share of `cumulative` (zero when monitoring is off).
  approx::MemoryStats canary_costs;
  /// Health monitor counters as of the end of the call.
  approx::HealthStats health;
  /// The attempt that produced the final output (last attempt when none
  /// verified).
  refine::RefineReport refine;
  refine::PreciseBaselineReport baseline;
  /// Equation 2 over the CUMULATIVE cost: 1 - cumulative write cost /
  /// precise baseline write cost. Negative when resilience cost more than
  /// sorting precisely outright.
  double write_reduction = 0.0;

  /// FNV-1a 64 digest of the attempt sequence (policy, t, status code,
  /// verification outcome, access counts) — equal digests mean the ladder
  /// replayed identically, e.g. across thread counts.
  uint64_t AttemptDigest() const;
};

/// Sorts `keys` through `engine`'s approx-refine pipeline at half-width
/// `t`, climbing the retry/escalation ladder until an attempt verifies or
/// the ladder is exhausted. Returns an error only for non-retryable
/// failures (bad arguments, unknown algorithm); an exhausted ladder
/// returns a report with verified == false. `final_keys`/`final_ids`
/// receive the final attempt's output when non-null.
StatusOr<ResilienceReport> SortResilient(
    ApproxSortEngine& engine, const std::vector<uint32_t>& keys,
    const sort::AlgorithmId& algorithm, double t,
    const ResilienceOptions& options = {},
    std::vector<uint32_t>* final_keys = nullptr,
    std::vector<uint32_t>* final_ids = nullptr);

}  // namespace approxmem::core

#endif  // APPROXMEM_CORE_RESILIENCE_H_
