// ApproxSortEngine: the library's public facade.
//
// One engine instance owns the simulated hybrid memory (backend, write
// models, calibrations, RNG tree) and exposes the paper's experiment
// families on whichever technology EngineOptions::backend selects:
//   * SortApproxOnly    — Section 3: sort in approximate memory only and
//                         measure sortedness vs. write-cost savings.
//   * SortApproxRefine  — Sections 4-5: the approx-refine mechanism with a
//                         precise-baseline comparison (write reduction).
// The Appendix A spintronic experiments are the same calls with
// backend = "spintronic" and the knob set to a per-bit error probability.
//
// Quickstart:
//   core::ApproxSortEngine engine({});
//   auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 1 << 20, 7);
//   auto result = engine.SortApproxRefine(
//       keys, sort::AlgorithmId{sort::SortKind::kLsdRadix, 3}, 0.055);
//   // result->write_reduction, result->refine.verified, ...
#ifndef APPROXMEM_CORE_ENGINE_H_
#define APPROXMEM_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "approx/approx_memory.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "refine/approx_refine.h"
#include "sort/sort_common.h"
#include "sortedness/measures.h"

namespace approxmem::core {

/// Engine-wide configuration; defaults reproduce the paper's Tables 1-2.
struct EngineOptions {
  /// Registry name of the memory technology (see approx/memory_backend.h);
  /// every allocation the engine makes goes through this backend.
  std::string backend = std::string(approx::kPcmBackendName);
  mlc::MlcConfig mlc;
  approx::SimulationMode mode = approx::SimulationMode::kFast;
  uint64_t calibration_trials = 200000;
  uint64_t seed = 42;
  /// Optional calibration cache shared between engines (thread-safe; see
  /// approx::ApproxMemory::Options::shared_calibration). A parallel sweep
  /// gives every (algorithm x T) cell its own engine/seed but one shared
  /// cache, so each T calibrates once and results stay deterministic.
  std::shared_ptr<mlc::CalibrationCache> shared_calibration;
  /// See approx::ApproxMemory::Options::sequential_write_discount; 1.0
  /// reproduces the paper's uniform write-latency model.
  double sequential_write_discount = 1.0;
  /// Optional trace sink recording every array access for replay through
  /// mem::MemorySystem (used by the differential oracle's conservation
  /// check). Not owned.
  mem::TraceBuffer* trace = nullptr;
  /// Optional fault-injection hook (see approx/fault_hook.h). Not owned.
  approx::MemoryFaultHook* fault_hook = nullptr;
  /// Online substrate health monitoring: allocation-time canary probes and
  /// region quarantine (see approx/health_monitor.h). Off by default so
  /// unmonitored experiments keep their exact RNG stream assignment.
  approx::HealthOptions health;
  /// Optional allocation-placement policy (wear-aware bank rotation in the
  /// service layer); null keeps the bump allocator. Not owned.
  approx::PlacementPolicy* placement = nullptr;
  /// Intra-sort parallelism: worker threads for the striped radix passes
  /// (1 = serial). Output, write counts, and cost ledgers are identical at
  /// any setting — only wall-clock changes. <= 0 means hardware
  /// concurrency.
  int sort_threads = 1;
  /// Optional externally owned pool for the intra-sort passes; overrides
  /// sort_threads when set (the engine then spawns no threads). Not owned.
  ThreadPool* sort_pool = nullptr;
  /// Use the Radsort-style O(sqrt n) recycled chunk arena for LSD radix.
  bool lsd_sqrt_arena = false;
};

/// Result of sorting in approximate memory only (no precise output).
struct ApproxOnlyResult {
  sortedness::SortednessReport sortedness;
  /// Accounting of the approximate run (keys and approximate scratch).
  approx::MemoryStats approx_stats;
  /// Accounting of the same sort executed in precise memory.
  approx::MemoryStats precise_stats;
  /// Equation 1: 1 - (approx write cost) / (precise write cost).
  double write_reduction = 0.0;
};

/// Result of one approx-refine execution plus its precise baseline.
struct RefineOutcome {
  refine::RefineReport refine;
  refine::PreciseBaselineReport baseline;
  /// Equation 2, measured.
  double write_reduction = 0.0;
  /// Equation 4, predicted from p(t) and the heuristic Rem~.
  double predicted_write_reduction = 0.0;
};

class ApproxSortEngine {
 public:
  explicit ApproxSortEngine(const EngineOptions& options);

  /// Section 3 study: sorts `keys` in approximate memory at the backend
  /// knob `knob` (target-range half-width T on PCM backends, per-bit error
  /// probability on spintronic; payload untouched, as in the paper) and
  /// measures the sortedness of the output and the write cost against a
  /// precise-run baseline. `output`, when non-null, receives the (possibly
  /// unsorted) result.
  StatusOr<ApproxOnlyResult> SortApproxOnly(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      double knob, std::vector<uint32_t>* output = nullptr);

  /// Sections 4-5: approx-refine at `knob`, compared with the precise-only
  /// baseline on the same backend. Outputs exactly sorted <Key, ID> pairs.
  StatusOr<RefineOutcome> SortApproxRefine(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      double knob, std::vector<uint32_t>* final_keys = nullptr,
      std::vector<uint32_t>* final_ids = nullptr);

  /// Out-of-core run formation handoff: approx-refine sort of one run
  /// WITHOUT the per-run precise baseline that SortApproxRefine always
  /// pays (the external sort compares whole configurations instead, so a
  /// per-run baseline would double every run's cost for nothing). Before
  /// sorting, the hybrid memory's allocation RNG is rebased onto
  /// (seed, stream_key) — the same BeginJobStream trick the multi-tenant
  /// service uses — so the run's simulated error draws depend only on the
  /// experiment seed and the run's own key, never on how many runs (or
  /// which configurations) executed on the substrate before it. That is
  /// what keeps the external sort's spill digests byte-identical at any
  /// thread count.
  StatusOr<refine::RefineReport> SortRunApproxRefine(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      double knob, uint64_t stream_key, std::vector<uint32_t>* final_keys,
      std::vector<uint32_t>* final_ids = nullptr);

  /// Precise-domain counterpart for the external sort's baseline
  /// configuration: same RNG rebasing, same absence of a second baseline.
  /// `sorted_ids`, when non-null, receives the record-ID permutation (the
  /// record-payload spill format needs it).
  StatusOr<refine::PreciseBaselineReport> SortRunPrecise(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      uint64_t stream_key, std::vector<uint32_t>* sorted_keys,
      std::vector<uint32_t>* sorted_ids = nullptr);

  /// p(t) — the calibrated PCM write-latency ratio (Section 2.2).
  double PvRatio(double t) { return memory_.PvRatio(t); }

  /// Backend-generic approximate-to-precise write-cost ratio at `knob`
  /// (equals PvRatio on the PCM backends, the energy ratio on spintronic).
  double WriteCostRatio(double knob) { return memory_.WriteCostRatio(knob); }

  /// Decision helper: should approx-refine be used for this workload?
  /// Uses Equation 4 with the backend's write-cost ratio and an expected
  /// Rem~.
  bool RecommendApproxRefine(const sort::AlgorithmId& algorithm, size_t n,
                             double knob, size_t expected_rem);

  approx::ApproxMemory& memory() { return memory_; }
  const EngineOptions& options() const { return options_; }

  /// The tuning handed to every sort this engine runs: resolves sort_pool /
  /// sort_threads (lazily spawning an owned pool on first use when
  /// sort_threads != 1 and no external pool was given) and the LSD arena
  /// mode.
  sort::SortTuning SortTuningForRuns();

 private:
  StatusOr<ApproxOnlyResult> SortOnlyImpl(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      const refine::ArrayAlloc& approx_alloc,
      const refine::ArrayAlloc& precise_alloc,
      std::vector<uint32_t>* output);

  StatusOr<RefineOutcome> RefineImpl(const std::vector<uint32_t>& keys,
                                     const sort::AlgorithmId& algorithm,
                                     const refine::ArrayAlloc& approx_alloc,
                                     const refine::ArrayAlloc& precise_alloc,
                                     double pv_ratio,
                                     std::vector<uint32_t>* final_keys,
                                     std::vector<uint32_t>* final_ids);

  EngineOptions options_;
  approx::ApproxMemory memory_;
  /// Lazily created when sort_threads != 1 and no sort_pool was provided.
  std::unique_ptr<ThreadPool> owned_sort_pool_;
};

}  // namespace approxmem::core

#endif  // APPROXMEM_CORE_ENGINE_H_
