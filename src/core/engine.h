// ApproxSortEngine: the library's public facade.
//
// One engine instance owns the simulated hybrid memory (calibrations, write
// models, RNG tree) and exposes the paper's three experiment families:
//   * SortApproxOnly    — Section 3: sort in approximate memory only and
//                         measure sortedness vs. write-latency savings.
//   * SortApproxRefine  — Sections 4-5: the approx-refine mechanism with a
//                         precise-baseline comparison (write reduction).
//   * Spintronic variants of both — Appendix A (energy instead of latency).
//
// Quickstart:
//   core::ApproxSortEngine engine({});
//   auto keys = core::MakeKeys(core::WorkloadKind::kUniform, 1 << 20, 7);
//   auto result = engine.SortApproxRefine(
//       keys, sort::AlgorithmId{sort::SortKind::kLsdRadix, 3}, 0.055);
//   // result->write_reduction, result->refine.verified, ...
#ifndef APPROXMEM_CORE_ENGINE_H_
#define APPROXMEM_CORE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "approx/approx_memory.h"
#include "approx/spintronic.h"
#include "common/status.h"
#include "refine/approx_refine.h"
#include "sort/sort_common.h"
#include "sortedness/measures.h"

namespace approxmem::core {

/// Engine-wide configuration; defaults reproduce the paper's Tables 1-2.
struct EngineOptions {
  mlc::MlcConfig mlc;
  approx::SimulationMode mode = approx::SimulationMode::kFast;
  uint64_t calibration_trials = 200000;
  uint64_t seed = 42;
  /// Optional calibration cache shared between engines (thread-safe; see
  /// approx::ApproxMemory::Options::shared_calibration). A parallel sweep
  /// gives every (algorithm x T) cell its own engine/seed but one shared
  /// cache, so each T calibrates once and results stay deterministic.
  std::shared_ptr<mlc::CalibrationCache> shared_calibration;
  /// See approx::ApproxMemory::Options::sequential_write_discount; 1.0
  /// reproduces the paper's uniform write-latency model.
  double sequential_write_discount = 1.0;
  /// Optional trace sink recording every array access for replay through
  /// mem::MemorySystem (used by the differential oracle's conservation
  /// check). Not owned.
  mem::TraceBuffer* trace = nullptr;
  /// Optional fault-injection hook (see approx/fault_hook.h). Not owned.
  approx::MemoryFaultHook* fault_hook = nullptr;
  /// Online substrate health monitoring: allocation-time canary probes and
  /// region quarantine (see approx/health_monitor.h). Off by default so
  /// unmonitored experiments keep their exact RNG stream assignment.
  approx::HealthOptions health;
};

/// Result of sorting in approximate memory only (no precise output).
struct ApproxOnlyResult {
  sortedness::SortednessReport sortedness;
  /// Accounting of the approximate run (keys and approximate scratch).
  approx::MemoryStats approx_stats;
  /// Accounting of the same sort executed in precise memory.
  approx::MemoryStats precise_stats;
  /// Equation 1: 1 - (approx write cost) / (precise write cost).
  double write_reduction = 0.0;
};

/// Result of one approx-refine execution plus its precise baseline.
struct RefineOutcome {
  refine::RefineReport refine;
  refine::PreciseBaselineReport baseline;
  /// Equation 2, measured.
  double write_reduction = 0.0;
  /// Equation 4, predicted from p(t) and the heuristic Rem~.
  double predicted_write_reduction = 0.0;
};

class ApproxSortEngine {
 public:
  explicit ApproxSortEngine(const EngineOptions& options);

  /// Section 3 study: sorts `keys` in approximate PCM at half-width `t`
  /// (payload untouched, as in the paper) and measures the sortedness of
  /// the output and the write cost against a precise-run baseline.
  /// `output`, when non-null, receives the (possibly unsorted) result.
  StatusOr<ApproxOnlyResult> SortApproxOnly(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      double t, std::vector<uint32_t>* output = nullptr);

  /// Appendix A variant of SortApproxOnly on spintronic memory.
  StatusOr<ApproxOnlyResult> SortSpintronicOnly(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      const approx::SpintronicConfig& config,
      std::vector<uint32_t>* output = nullptr);

  /// Sections 4-5: approx-refine on PCM at half-width `t`, compared with
  /// the precise-only baseline. Outputs exactly sorted <Key, ID> pairs.
  StatusOr<RefineOutcome> SortApproxRefine(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      double t, std::vector<uint32_t>* final_keys = nullptr,
      std::vector<uint32_t>* final_ids = nullptr);

  /// Appendix A: approx-refine on spintronic memory (energy accounting).
  StatusOr<RefineOutcome> SortSpintronicRefine(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      const approx::SpintronicConfig& config,
      std::vector<uint32_t>* final_keys = nullptr,
      std::vector<uint32_t>* final_ids = nullptr);

  /// p(t) — the calibrated write-latency ratio (Section 2.2).
  double PvRatio(double t) { return memory_.PvRatio(t); }

  /// Decision helper: should approx-refine be used for this workload?
  /// Uses Equation 4 with the calibrated p(t) and an expected Rem~.
  bool RecommendApproxRefine(const sort::AlgorithmId& algorithm, size_t n,
                             double t, size_t expected_rem);

  approx::ApproxMemory& memory() { return memory_; }
  const EngineOptions& options() const { return options_; }

 private:
  StatusOr<ApproxOnlyResult> SortOnlyImpl(
      const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
      const refine::ArrayAlloc& approx_alloc,
      const refine::ArrayAlloc& precise_alloc,
      std::vector<uint32_t>* output);

  StatusOr<RefineOutcome> RefineImpl(const std::vector<uint32_t>& keys,
                                     const sort::AlgorithmId& algorithm,
                                     const refine::ArrayAlloc& approx_alloc,
                                     const refine::ArrayAlloc& precise_alloc,
                                     double pv_ratio,
                                     std::vector<uint32_t>* final_keys,
                                     std::vector<uint32_t>* final_ids);

  EngineOptions options_;
  approx::ApproxMemory memory_;
};

}  // namespace approxmem::core

#endif  // APPROXMEM_CORE_ENGINE_H_
