#include "core/workload.h"

#include <algorithm>

#include "common/random.h"

namespace approxmem::core {

StatusOr<WorkloadKind> ParseWorkloadKind(const std::string& name) {
  if (name == "uniform") return WorkloadKind::kUniform;
  if (name == "skewed") return WorkloadKind::kSkewed;
  if (name == "nearly_sorted") return WorkloadKind::kNearlySorted;
  if (name == "reversed") return WorkloadKind::kReversed;
  if (name == "all_equal") return WorkloadKind::kAllEqual;
  return Status::InvalidArgument("unknown workload: " + name);
}

std::string WorkloadName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kUniform:
      return "uniform";
    case WorkloadKind::kSkewed:
      return "skewed";
    case WorkloadKind::kNearlySorted:
      return "nearly_sorted";
    case WorkloadKind::kReversed:
      return "reversed";
    case WorkloadKind::kAllEqual:
      return "all_equal";
  }
  return "unknown";
}

std::vector<uint32_t> MakeKeys(WorkloadKind kind, size_t n, uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case WorkloadKind::kUniform:
      return UniformKeys(n, rng);
    case WorkloadKind::kSkewed:
      return SkewedKeys(n, /*skew=*/0.5, rng);
    case WorkloadKind::kNearlySorted:
      return NearlySortedKeys(n, /*swaps=*/n / 100 + 1, rng);
    case WorkloadKind::kReversed: {
      std::vector<uint32_t> keys = UniformKeys(n, rng);
      std::sort(keys.begin(), keys.end(), std::greater<uint32_t>());
      return keys;
    }
    case WorkloadKind::kAllEqual:
      return std::vector<uint32_t>(n, 0xDEADBEEF);
  }
  return {};
}

}  // namespace approxmem::core
