// Workload generators for experiments and examples.
//
// The paper evaluates uniformly distributed 32-bit keys; the extra
// distributions exercise the algorithms' adaptivity and are used by the
// ablation benches and examples.
#ifndef APPROXMEM_CORE_WORKLOAD_H_
#define APPROXMEM_CORE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace approxmem::core {

enum class WorkloadKind {
  kUniform,       // Uniform over the full 32-bit range (the paper's input).
  kSkewed,        // Heavy-duplicate power-law keys.
  kNearlySorted,  // Sorted plus a few random transpositions.
  kReversed,      // Strictly decreasing (adversarial for Rem).
  kAllEqual,      // One repeated value (duplicate-handling edge case).
};

/// Parses "uniform" / "skewed" / "nearly_sorted" / "reversed" / "all_equal".
StatusOr<WorkloadKind> ParseWorkloadKind(const std::string& name);

/// Human-readable name of `kind`.
std::string WorkloadName(WorkloadKind kind);

/// Generates `n` keys of the given distribution, deterministic in `seed`.
std::vector<uint32_t> MakeKeys(WorkloadKind kind, size_t n, uint64_t seed);

}  // namespace approxmem::core

#endif  // APPROXMEM_CORE_WORKLOAD_H_
