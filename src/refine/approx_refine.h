// The approx-refine execution mechanism (Section 4).
//
// Five stages: warm-up (inputs in precise memory), approx preparation (copy
// keys to approximate memory), approx stage (sort keys approximately, IDs
// precisely), refine preparation (notation only — Key~ is always recovered
// through Key0[ID[i]] reads to save writes), and the refine stage:
//   1. one linear scan extracting an approximate longest increasing
//      subsequence and the leftover REMID (Listing 1),
//   2. sort REMID by key value with the same algorithm, in precise memory,
//   3. one write-limited merge producing finalKey/finalID (Listing 2).
// The output is exactly sorted regardless of how much the approx stage was
// corrupted; only its cost depends on the corruption.
#ifndef APPROXMEM_REFINE_APPROX_REFINE_H_
#define APPROXMEM_REFINE_APPROX_REFINE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "approx/approx_array.h"
#include "approx/memory_stats.h"
#include "common/random.h"
#include "common/status.h"
#include "sort/sort_common.h"
#include "sortedness/measures.h"

namespace approxmem::refine {

/// Allocator of arrays in some precision domain.
using ArrayAlloc = std::function<approx::ApproxArrayU32(size_t)>;

/// How step 1 of the refine stage extracts the sorted subsequence.
enum class LisMode {
  /// Listing 1's one-pass heuristic: O(n) time, ~Rem~ intermediate writes.
  kHeuristic,
  /// Exact patience LIS: finds the true minimum REM but pays O(n log n)
  /// time and ~2n intermediate precise writes for predecessor state — the
  /// trade-off the paper rejects in Section 4.2. Provided as an ablation.
  kExact,
};

/// Configuration of one approx-refine execution.
struct RefineOptions {
  sort::AlgorithmId algorithm;
  LisMode lis_mode = LisMode::kHeuristic;
  /// Allocates arrays in the approximate key domain (PCM at some T, or
  /// spintronic at some operating point).
  ArrayAlloc approx_alloc;
  /// Allocates arrays in the precise domain of the same technology.
  ArrayAlloc precise_alloc;
  /// Pivot randomness for the sorts.
  uint64_t sort_seed = 1;
  /// When true, compute the exact Rem / sortedness of the approx-stage
  /// output (costs an LIS pass; off for large sweeps if undesired).
  bool measure_approx_sortedness = true;
  /// Intra-sort execution tuning (worker pool, LSD arena mode), applied to
  /// every sort the pipeline runs. Never changes results — see SortTuning.
  sort::SortTuning tuning;
};

/// How the final <Key, ID> output violated the exactly-sorted contract.
enum class VerifyFailureKind : uint8_t {
  kNone = 0,
  /// finalKey is not non-decreasing.
  kOrderViolation,
  /// finalID is not a permutation of 0..n-1 (out-of-range or duplicated
  /// IDs, or a merge that emitted the wrong number of elements).
  kIdPermutationLoss,
  /// finalKey[i] != Key0[finalID[i]] for some i.
  kKeyIdMismatch,
};

/// "NONE", "ORDER_VIOLATION", "ID_PERMUTATION_LOSS", "KEY_ID_MISMATCH".
std::string_view VerifyFailureKindName(VerifyFailureKind kind);

/// Structured outcome of output verification: the category of the first
/// violation, where it happened, and how many violations there are in
/// total — the diagnostics a retry policy needs to decide how to recover.
struct VerificationReport {
  VerifyFailureKind failure = VerifyFailureKind::kNone;
  /// Index of the first violating output element (n for a merge that lost
  /// conservation without any per-element violation).
  size_t first_violation = 0;
  /// Total violations across all checks (order, permutation, key-ID).
  size_t violation_count = 0;

  bool ok() const { return failure == VerifyFailureKind::kNone; }
  /// "ok" or e.g. "ORDER_VIOLATION first at 37 (3 violations)".
  std::string ToString() const;
};

/// Verifies a <Key, ID> output against the original keys: non-decreasing
/// keys, IDs a permutation of 0..n-1, and finalKey[i] == Key0[finalID[i]].
/// `merge_conserved` is false when the producing merge already lost
/// element conservation (counted as an ID-permutation loss).
VerificationReport VerifyRefineOutput(const std::vector<uint32_t>& input_keys,
                                      const std::vector<uint32_t>& out_keys,
                                      const std::vector<uint32_t>& out_ids,
                                      bool merge_conserved = true);

/// Cost ledger and verification outcome of one approx-refine execution.
struct RefineReport {
  size_t n = 0;

  // Per-stage accounting. "approx" covers the approximate key array and all
  // approximate scratch; "precise" covers IDs, Key0, outputs and precise
  // scratch. Units follow the domain's write model (ns or energy).
  approx::MemoryStats prep_approx;     // Approx preparation: Key0 -> Key~.
  approx::MemoryStats prep_precise;    // Approx preparation: Key0 reads.
  approx::MemoryStats sort_approx;     // Approx stage, approximate side.
  approx::MemoryStats sort_precise;    // Approx stage, ID movements.
  approx::MemoryStats refine_precise;  // Refine stage (entirely precise).

  /// |REMID| found by the Listing 1 heuristic (Rem~ in the paper).
  size_t rem_estimate = 0;
  /// Sortedness of Key~ right after the approx stage (exact Rem etc.),
  /// filled when RefineOptions.measure_approx_sortedness is set.
  sortedness::SortednessReport approx_sortedness;

  /// Structured verification diagnostics: failure category, first
  /// violating index, and violation count (see VerificationReport).
  VerificationReport verification;

  /// Derived accessor kept for compatibility: true iff finalKey is
  /// non-decreasing, finalID is a permutation of the input IDs, and
  /// finalKey[i] == Key0[finalID[i]] for all i.
  bool verified() const { return verification.ok(); }

  /// Total write cost across all stages (the paper's TMWL under
  /// approx-refine when the domain is PCM).
  double TotalWriteCost() const;
  double TotalReadCost() const;
  double ApproxStageWriteCost() const;
  double RefineStageWriteCost() const;
  /// Total precise-domain write *operations* in the refine stage; the paper
  /// shows this stays below 3n + alpha(Rem~), near the 2n lower bound.
  uint64_t RefineWriteOps() const { return refine_precise.word_writes; }
  /// All five ledgers summed: the attempt's total traffic in one place
  /// (what a resilient execution accumulates per attempt).
  approx::MemoryStats TotalStats() const;
};

/// Listing 1's heuristic on a plain value sequence: returns the positions
/// NOT in the approximate LIS (an element stays iff it is >= the running
/// tail and <= its right neighbour; the first element always stays; the
/// last stays unless it is below the tail). Exposed for tests; the pipeline
/// runs it over values read back through Key0[ID[i]].
std::vector<size_t> HeuristicRemPositions(const std::vector<uint32_t>& values);

/// State handed from the approx stage to the refine stage when the pipeline
/// is run in two halves (RunApproxStage + RunRefineStage). A resilient
/// executor keeps this alive so a failed refine stage can be re-run against
/// the same approx-stage output without paying the approx stage again.
struct ApproxStageState {
  size_t n = 0;
  /// The original input keys (host copy, not instrumented memory) — the
  /// ground truth that verification checks the output against.
  std::vector<uint32_t> input_keys;
  /// Key0, ID, and Key~ as left by the approx stage. optional<> because
  /// ApproxArrayU32 is move-only without a default state.
  std::optional<approx::ApproxArrayU32> key0;
  std::optional<approx::ApproxArrayU32> id;
  std::optional<approx::ApproxArrayU32> key_approx;
  /// Pivot RNG exactly as the approx-stage sort left it; each refine run
  /// resumes from a copy, so split execution consumes the same stream the
  /// monolithic ApproxRefineSort would (and retries are replayable).
  Rng sort_rng;
  /// Ledger through the approx stage (warm-up, prep, approx sort). Filled
  /// even when RunApproxStage fails mid-sort, so callers can account for
  /// an aborted attempt's traffic instead of dropping it.
  RefineReport report;

  /// True when the state can feed RunRefineStage (n == 0 needs no arrays).
  bool ready() const { return n == 0 || key0.has_value(); }
};

/// Runs warm-up, approx preparation, and the approx stage over `keys`,
/// leaving everything the refine stage needs in `*state` (overwritten).
/// On error, `state->report` still holds all costs paid so far, including
/// the aborted sort's traffic.
Status RunApproxStage(const std::vector<uint32_t>& keys,
                      const RefineOptions& options, ApproxStageState* state);

/// Runs the refine stage (steps 1-3) plus verification against the approx-
/// stage output in `state`. `*report` receives a copy of `state.report`
/// with this run's refine costs and verification added; the ledger closes
/// even when the REMID sort fails. Repeatable: Key0/ID/Key~ are only read,
/// their access costs are charged to this run's ledger and then reset, and
/// the pivot stream restarts from `state.sort_rng` each call.
Status RunRefineStage(ApproxStageState& state, const RefineOptions& options,
                      RefineReport* report, std::vector<uint32_t>* final_keys,
                      std::vector<uint32_t>* final_ids);

/// Runs approx-refine over `keys` (record IDs are 0..n-1). Outputs the
/// exactly sorted keys and the matching permutation of record IDs when the
/// out-pointers are non-null. Equivalent to RunApproxStage + RunRefineStage
/// over a throwaway state.
StatusOr<RefineReport> ApproxRefineSort(const std::vector<uint32_t>& keys,
                                        const RefineOptions& options,
                                        std::vector<uint32_t>* final_keys,
                                        std::vector<uint32_t>* final_ids);

/// Cost ledger of the traditional baseline: the same algorithm run entirely
/// in precise memory over <Key, ID> pairs.
struct PreciseBaselineReport {
  size_t n = 0;
  approx::MemoryStats keys;
  approx::MemoryStats ids;
  bool verified = false;

  double TotalWriteCost() const { return keys.write_cost + ids.write_cost; }
  uint64_t TotalWriteOps() const {
    return keys.word_writes + ids.word_writes;
  }
};

/// Runs the precise-only baseline (Equation 2's denominator). When
/// `sorted_keys` is non-null it receives the sorted output (used by the
/// external-sort baseline configuration); `sorted_ids` likewise receives
/// the matching record-ID permutation (requires with_ids).
StatusOr<PreciseBaselineReport> PreciseSortBaseline(
    const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
    const ArrayAlloc& precise_alloc, uint64_t sort_seed, bool with_ids = true,
    std::vector<uint32_t>* sorted_keys = nullptr,
    const sort::SortTuning& tuning = {},
    std::vector<uint32_t>* sorted_ids = nullptr);

/// Write reduction of approx-refine relative to the precise baseline
/// (Equation 2): 1 - TMWL(approx-refine) / TMWL(precise).
double WriteReduction(const RefineReport& refine,
                      const PreciseBaselineReport& baseline);

}  // namespace approxmem::refine

#endif  // APPROXMEM_REFINE_APPROX_REFINE_H_
