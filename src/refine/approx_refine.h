// The approx-refine execution mechanism (Section 4).
//
// Five stages: warm-up (inputs in precise memory), approx preparation (copy
// keys to approximate memory), approx stage (sort keys approximately, IDs
// precisely), refine preparation (notation only — Key~ is always recovered
// through Key0[ID[i]] reads to save writes), and the refine stage:
//   1. one linear scan extracting an approximate longest increasing
//      subsequence and the leftover REMID (Listing 1),
//   2. sort REMID by key value with the same algorithm, in precise memory,
//   3. one write-limited merge producing finalKey/finalID (Listing 2).
// The output is exactly sorted regardless of how much the approx stage was
// corrupted; only its cost depends on the corruption.
#ifndef APPROXMEM_REFINE_APPROX_REFINE_H_
#define APPROXMEM_REFINE_APPROX_REFINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "approx/approx_array.h"
#include "approx/memory_stats.h"
#include "common/random.h"
#include "common/status.h"
#include "sort/sort_common.h"
#include "sortedness/measures.h"

namespace approxmem::refine {

/// Allocator of arrays in some precision domain.
using ArrayAlloc = std::function<approx::ApproxArrayU32(size_t)>;

/// How step 1 of the refine stage extracts the sorted subsequence.
enum class LisMode {
  /// Listing 1's one-pass heuristic: O(n) time, ~Rem~ intermediate writes.
  kHeuristic,
  /// Exact patience LIS: finds the true minimum REM but pays O(n log n)
  /// time and ~2n intermediate precise writes for predecessor state — the
  /// trade-off the paper rejects in Section 4.2. Provided as an ablation.
  kExact,
};

/// Configuration of one approx-refine execution.
struct RefineOptions {
  sort::AlgorithmId algorithm;
  LisMode lis_mode = LisMode::kHeuristic;
  /// Allocates arrays in the approximate key domain (PCM at some T, or
  /// spintronic at some operating point).
  ArrayAlloc approx_alloc;
  /// Allocates arrays in the precise domain of the same technology.
  ArrayAlloc precise_alloc;
  /// Pivot randomness for the sorts.
  uint64_t sort_seed = 1;
  /// When true, compute the exact Rem / sortedness of the approx-stage
  /// output (costs an LIS pass; off for large sweeps if undesired).
  bool measure_approx_sortedness = true;
};

/// Cost ledger and verification outcome of one approx-refine execution.
struct RefineReport {
  size_t n = 0;

  // Per-stage accounting. "approx" covers the approximate key array and all
  // approximate scratch; "precise" covers IDs, Key0, outputs and precise
  // scratch. Units follow the domain's write model (ns or energy).
  approx::MemoryStats prep_approx;     // Approx preparation: Key0 -> Key~.
  approx::MemoryStats prep_precise;    // Approx preparation: Key0 reads.
  approx::MemoryStats sort_approx;     // Approx stage, approximate side.
  approx::MemoryStats sort_precise;    // Approx stage, ID movements.
  approx::MemoryStats refine_precise;  // Refine stage (entirely precise).

  /// |REMID| found by the Listing 1 heuristic (Rem~ in the paper).
  size_t rem_estimate = 0;
  /// Sortedness of Key~ right after the approx stage (exact Rem etc.),
  /// filled when RefineOptions.measure_approx_sortedness is set.
  sortedness::SortednessReport approx_sortedness;

  /// True iff finalKey is non-decreasing, finalID is a permutation of the
  /// input IDs, and finalKey[i] == Key0[finalID[i]] for all i.
  bool verified = false;

  /// Total write cost across all stages (the paper's TMWL under
  /// approx-refine when the domain is PCM).
  double TotalWriteCost() const;
  double TotalReadCost() const;
  double ApproxStageWriteCost() const;
  double RefineStageWriteCost() const;
  /// Total precise-domain write *operations* in the refine stage; the paper
  /// shows this stays below 3n + alpha(Rem~), near the 2n lower bound.
  uint64_t RefineWriteOps() const { return refine_precise.word_writes; }
};

/// Listing 1's heuristic on a plain value sequence: returns the positions
/// NOT in the approximate LIS (an element stays iff it is >= the running
/// tail and <= its right neighbour; the first element always stays; the
/// last stays unless it is below the tail). Exposed for tests; the pipeline
/// runs it over values read back through Key0[ID[i]].
std::vector<size_t> HeuristicRemPositions(const std::vector<uint32_t>& values);

/// Runs approx-refine over `keys` (record IDs are 0..n-1). Outputs the
/// exactly sorted keys and the matching permutation of record IDs when the
/// out-pointers are non-null.
StatusOr<RefineReport> ApproxRefineSort(const std::vector<uint32_t>& keys,
                                        const RefineOptions& options,
                                        std::vector<uint32_t>* final_keys,
                                        std::vector<uint32_t>* final_ids);

/// Cost ledger of the traditional baseline: the same algorithm run entirely
/// in precise memory over <Key, ID> pairs.
struct PreciseBaselineReport {
  size_t n = 0;
  approx::MemoryStats keys;
  approx::MemoryStats ids;
  bool verified = false;

  double TotalWriteCost() const { return keys.write_cost + ids.write_cost; }
  uint64_t TotalWriteOps() const {
    return keys.word_writes + ids.word_writes;
  }
};

/// Runs the precise-only baseline (Equation 2's denominator). When
/// `sorted_keys` is non-null it receives the sorted output (used by the
/// external-sort baseline configuration).
StatusOr<PreciseBaselineReport> PreciseSortBaseline(
    const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
    const ArrayAlloc& precise_alloc, uint64_t sort_seed, bool with_ids = true,
    std::vector<uint32_t>* sorted_keys = nullptr);

/// Write reduction of approx-refine relative to the precise baseline
/// (Equation 2): 1 - TMWL(approx-refine) / TMWL(precise).
double WriteReduction(const RefineReport& refine,
                      const PreciseBaselineReport& baseline);

}  // namespace approxmem::refine

#endif  // APPROXMEM_REFINE_APPROX_REFINE_H_
