// Analytical cost model of Section 4.3.
//
// Predicts the write reduction of approx-refine from the algorithm's write
// count alpha_alg(n), the calibrated latency ratio p(t), and the (expected)
// Rem~ of the approx-stage output — Equation 4:
//
//   WR(n, t) = (1 - p(t))/2
//            - (Rem~ + (1 + 0.5 p(t)) n) / alpha(n)
//            - alpha(Rem~) / (2 alpha(n))
//
// The model is used to cross-check the measured pipeline and to decide at
// run time whether approx-refine beats sorting in precise memory only.
#ifndef APPROXMEM_REFINE_COST_MODEL_H_
#define APPROXMEM_REFINE_COST_MODEL_H_

#include <cstddef>

#include "sort/sort_common.h"

namespace approxmem::refine {

/// Expected number of key write operations alpha_alg(n) of one execution of
/// `algorithm` on n uniformly random keys (Section 4.3's accounting:
/// quicksort ~ n log2 n / 2, mergesort ~ n log2 n, queue radix ~ 2n passes,
/// histogram radix ~ n passes).
double AlphaWrites(const sort::AlgorithmId& algorithm, size_t n);

/// Equation 4. `pv_ratio` is p(t); `rem` is Rem~ (heuristic or measured).
double PredictWriteReduction(const sort::AlgorithmId& algorithm, size_t n,
                             double pv_ratio, size_t rem);

/// Total equivalent precise write operations of approx-refine (numerator of
/// Equation 3): (p+1) alpha(n) + 2 Rem~ + (2+p) n + alpha(Rem~).
double PredictRefineWrites(const sort::AlgorithmId& algorithm, size_t n,
                           double pv_ratio, size_t rem);

/// Write operations of the traditional precise execution: 2 alpha(n).
double PredictPreciseWrites(const sort::AlgorithmId& algorithm, size_t n);

/// Decision procedure the paper sketches at the end of Section 4.3:
/// approx-refine is worth switching to iff the predicted WR is positive.
bool ShouldUseApproxRefine(const sort::AlgorithmId& algorithm, size_t n,
                           double pv_ratio, size_t rem);

}  // namespace approxmem::refine

#endif  // APPROXMEM_REFINE_COST_MODEL_H_
