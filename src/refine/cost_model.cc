#include "refine/cost_model.h"

#include <algorithm>
#include <cmath>

namespace approxmem::refine {
namespace {

double Log2(double x) { return std::log2(std::max(x, 2.0)); }

}  // namespace

double AlphaWrites(const sort::AlgorithmId& algorithm, size_t n) {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const int bits = std::max(algorithm.radix_bits, 1);
  const int passes = (32 + bits - 1) / bits;
  // MSD recursions stop once buckets reach the insertion cutoff (~32), so
  // the effective depth is bounded by both the digit count and log_b(n/32).
  const double msd_levels =
      std::min<double>(passes, std::ceil(Log2(dn / 32.0) / bits) + 1.0);
  switch (algorithm.kind) {
    case sort::SortKind::kQuicksort:
      return dn * Log2(dn) / 2.0;
    case sort::SortKind::kMergesort:
      return dn * std::ceil(Log2(dn));
    case sort::SortKind::kLsdRadix:
      // Queue buckets: one write on push, one on drain, per pass.
      return 2.0 * dn * passes;
    case sort::SortKind::kMsdRadix:
      return 2.0 * dn * msd_levels;
    case sort::SortKind::kLsdHistogram:
      // One scatter write per pass, plus the final parity copy.
      return dn * passes + dn;
    case sort::SortKind::kMsdHistogram:
      return dn * msd_levels + dn;
  }
  return dn * Log2(dn);
}

double PredictRefineWrites(const sort::AlgorithmId& algorithm, size_t n,
                           double pv_ratio, size_t rem) {
  const double alpha_n = AlphaWrites(algorithm, n);
  const double alpha_rem = AlphaWrites(algorithm, rem);
  const double dn = static_cast<double>(n);
  const double drem = static_cast<double>(rem);
  return (pv_ratio + 1.0) * alpha_n + 2.0 * drem + (2.0 + pv_ratio) * dn +
         alpha_rem;
}

double PredictPreciseWrites(const sort::AlgorithmId& algorithm, size_t n) {
  return 2.0 * AlphaWrites(algorithm, n);
}

double PredictWriteReduction(const sort::AlgorithmId& algorithm, size_t n,
                             double pv_ratio, size_t rem) {
  const double precise = PredictPreciseWrites(algorithm, n);
  if (precise <= 0.0) return 0.0;
  return 1.0 -
         PredictRefineWrites(algorithm, n, pv_ratio, rem) / precise;
}

bool ShouldUseApproxRefine(const sort::AlgorithmId& algorithm, size_t n,
                           double pv_ratio, size_t rem) {
  return PredictWriteReduction(algorithm, n, pv_ratio, rem) > 0.0;
}

}  // namespace approxmem::refine
