#include "refine/approx_refine.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "sortedness/lis.h"

namespace approxmem::refine {
namespace {

// Wraps an allocator so scratch arrays report their accounting into `sink`
// when the sort that allocated them drops them.
ArrayAlloc WithSink(const ArrayAlloc& alloc, approx::MemoryStats* sink) {
  return [&alloc, sink](size_t n) {
    approx::ApproxArrayU32 array = alloc(n);
    array.SetStatsSink(sink);
    return array;
  };
}

}  // namespace

std::string_view VerifyFailureKindName(VerifyFailureKind kind) {
  switch (kind) {
    case VerifyFailureKind::kNone:
      return "NONE";
    case VerifyFailureKind::kOrderViolation:
      return "ORDER_VIOLATION";
    case VerifyFailureKind::kIdPermutationLoss:
      return "ID_PERMUTATION_LOSS";
    case VerifyFailureKind::kKeyIdMismatch:
      return "KEY_ID_MISMATCH";
  }
  return "UNKNOWN";
}

std::string VerificationReport::ToString() const {
  if (ok()) return "ok";
  return std::string(VerifyFailureKindName(failure)) + " first at " +
         std::to_string(first_violation) + " (" +
         std::to_string(violation_count) + " violations)";
}

VerificationReport VerifyRefineOutput(const std::vector<uint32_t>& input_keys,
                                      const std::vector<uint32_t>& out_keys,
                                      const std::vector<uint32_t>& out_ids,
                                      bool merge_conserved) {
  VerificationReport v;
  const size_t n = input_keys.size();
  const auto note = [&v](VerifyFailureKind kind, size_t index) {
    if (v.failure == VerifyFailureKind::kNone) {
      v.failure = kind;
      v.first_violation = index;
    }
    ++v.violation_count;
  };
  // Element conservation: a merge that lost or duplicated elements cannot
  // have produced a permutation, whatever the element-wise checks say.
  if (!merge_conserved || out_keys.size() != n || out_ids.size() != n) {
    note(VerifyFailureKind::kIdPermutationLoss, n);
  }
  for (size_t i = 1; i < out_keys.size(); ++i) {
    if (out_keys[i - 1] > out_keys[i]) {
      note(VerifyFailureKind::kOrderViolation, i);
    }
  }
  const size_t m = std::min(out_keys.size(), out_ids.size());
  std::vector<bool> seen(n, false);
  for (size_t i = 0; i < m; ++i) {
    const uint32_t rid = out_ids[i];
    if (rid >= n || seen[rid]) {
      note(VerifyFailureKind::kIdPermutationLoss, i);
      continue;
    }
    seen[rid] = true;
    if (out_keys[i] != input_keys[rid]) {
      note(VerifyFailureKind::kKeyIdMismatch, i);
    }
  }
  return v;
}

std::vector<size_t> HeuristicRemPositions(const std::vector<uint32_t>& values) {
  std::vector<size_t> rem;
  const size_t n = values.size();
  if (n < 2) return rem;
  uint32_t lis_tail = values[0];  // The first element is assumed in the LIS.
  for (size_t i = 1; i + 1 < n; ++i) {
    if (values[i] >= lis_tail && values[i] <= values[i + 1]) {
      lis_tail = values[i];
    } else {
      rem.push_back(i);
    }
  }
  if (lis_tail > values[n - 1]) rem.push_back(n - 1);
  return rem;
}

double RefineReport::TotalWriteCost() const {
  return prep_approx.write_cost + prep_precise.write_cost +
         sort_approx.write_cost + sort_precise.write_cost +
         refine_precise.write_cost;
}

double RefineReport::TotalReadCost() const {
  return prep_approx.read_cost + prep_precise.read_cost +
         sort_approx.read_cost + sort_precise.read_cost +
         refine_precise.read_cost;
}

double RefineReport::ApproxStageWriteCost() const {
  return prep_approx.write_cost + prep_precise.write_cost +
         sort_approx.write_cost + sort_precise.write_cost;
}

double RefineReport::RefineStageWriteCost() const {
  return refine_precise.write_cost;
}

approx::MemoryStats RefineReport::TotalStats() const {
  approx::MemoryStats total;
  total += prep_approx;
  total += prep_precise;
  total += sort_approx;
  total += sort_precise;
  total += refine_precise;
  return total;
}

Status RunApproxStage(const std::vector<uint32_t>& keys,
                      const RefineOptions& options, ApproxStageState* state) {
  if (!options.approx_alloc || !options.precise_alloc) {
    return Status::InvalidArgument(
        "approx_alloc and precise_alloc must be set");
  }
  const size_t n = keys.size();
  *state = ApproxStageState();
  state->n = n;
  state->input_keys = keys;
  state->report.n = n;
  if (n == 0) return Status::Ok();

  state->sort_rng = Rng(options.sort_seed);
  RefineReport& report = state->report;

  // ---- Warm-up: Key0 and ID live in precise memory; loading the inputs is
  // not part of the measured cost (the data is given).
  state->key0.emplace(options.precise_alloc(n));
  approx::ApproxArrayU32& key0 = *state->key0;
  key0.Store(keys);
  state->id.emplace(options.precise_alloc(n));
  approx::ApproxArrayU32& id = *state->id;
  for (size_t i = 0; i < n; ++i) id.Set(i, static_cast<uint32_t>(i));
  key0.ResetStats();
  id.ResetStats();

  // ---- Approx preparation: copy Key0 into the approximate domain.
  state->key_approx.emplace(options.approx_alloc(n));
  approx::ApproxArrayU32& key_approx = *state->key_approx;
  key_approx.CopyFrom(key0);
  report.prep_approx = key_approx.stats();
  report.prep_precise = key0.stats();
  key_approx.ResetStats();
  key0.ResetStats();

  // ---- Approx stage: sort <Key~, ID>; key traffic is approximate, ID
  // traffic precise, and scratch follows suit.
  Status sort_status = Status::Ok();
  {
    sort::SortSpec spec;
    spec.keys = &key_approx;
    spec.ids = &id;
    spec.alloc_key_buffer = WithSink(options.approx_alloc,
                                     &report.sort_approx);
    spec.alloc_id_buffer = WithSink(options.precise_alloc,
                                    &report.sort_precise);
    spec.tuning = options.tuning;
    sort_status = sort::RunSort(spec, options.algorithm, state->sort_rng);
  }
  // Accumulate before propagating any error: an aborted sort's traffic must
  // stay on the ledger so callers that retry account for the full cost.
  report.sort_approx += key_approx.stats();
  report.sort_precise += id.stats();
  key_approx.ResetStats();
  id.ResetStats();
  if (!sort_status.ok()) return sort_status;

  if (options.measure_approx_sortedness) {
    report.approx_sortedness = sortedness::Measure(key_approx);
  }
  return Status::Ok();
}

Status RunRefineStage(ApproxStageState& state, const RefineOptions& options,
                      RefineReport* report, std::vector<uint32_t>* final_keys,
                      std::vector<uint32_t>* final_ids) {
  if (!options.precise_alloc) {
    return Status::InvalidArgument("precise_alloc must be set");
  }
  if (!state.ready()) {
    return Status::FailedPrecondition(
        "RunRefineStage needs a state produced by RunApproxStage");
  }
  const size_t n = state.n;
  *report = state.report;
  report->verification = VerificationReport{};
  if (n == 0) {
    if (final_keys != nullptr) final_keys->clear();
    if (final_ids != nullptr) final_ids->clear();
    return Status::Ok();
  }
  approx::ApproxArrayU32& key0 = *state.key0;
  approx::ApproxArrayU32& id = *state.id;
  // Re-runs restart the pivot stream exactly where the approx stage left
  // it, so a retry is a replay, not a new random experiment.
  Rng sort_rng = state.sort_rng;

  // Charges this run's Key0/ID access costs to `report` and zeroes the
  // arrays' counters so a subsequent retry starts from a clean ledger.
  const auto close_ledger = [&]() {
    report->refine_precise += key0.stats();
    report->refine_precise += id.stats();
    key0.ResetStats();
    id.ResetStats();
  };

  // ---- Refine preparation: nothing is materialized; Key~ is recovered via
  // Key0[ID[i]] reads throughout the refine stage (writes saved by reads).

  // ---- Refine stage, step 1: extract a sorted subsequence of Key~ (read
  // back through Key0[ID[i]]); leftovers land in REMID. The scan reads ID
  // once and Key0 once per element (Listing 1's single pass).
  // IDs read back from precise memory are contracted to be < n, but a
  // fault-injection harness can corrupt them in storage; clamp untrusted
  // indices so the lookups stay in bounds and verification (which checks
  // the ID column against the original keys) reports the corruption
  // instead of the process aborting on a bounds CHECK.
  const auto key0_at = [&key0, n](uint32_t index) {
    return key0.Get(index < n ? index : index % n);
  };
  std::vector<uint32_t> ids(n);
  std::vector<uint32_t> current(n);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = id.Get(i);
    current[i] = key0_at(ids[i]);
  }
  std::vector<uint32_t> rem_ids;
  if (options.lis_mode == LisMode::kHeuristic) {
    for (const size_t pos : HeuristicRemPositions(current)) {
      rem_ids.push_back(ids[pos]);
    }
  } else {
    // Exact patience LIS. The classical algorithm keeps predecessor links
    // and pile tails — ~2n words of intermediate state, which we charge as
    // precise writes (the cost Section 4.2 argues against paying).
    approx::ApproxArrayU32 prev_state = options.precise_alloc(n);
    approx::ApproxArrayU32 pile_state = options.precise_alloc(n);
    const std::vector<uint8_t> member =
        sortedness::LongestNonDecreasingMembership(current);
    for (size_t i = 0; i < n; ++i) {
      // Model the predecessor-link and pile bookkeeping writes.
      prev_state.Set(i, static_cast<uint32_t>(i));
      pile_state.Set(i, member[i]);
      if (member[i] == 0) rem_ids.push_back(ids[i]);
    }
    report->refine_precise += prev_state.stats();
    report->refine_precise += pile_state.stats();
  }
  report->rem_estimate = rem_ids.size();
  const size_t rem = rem_ids.size();

  // Materialize REMID (Rem~ precise writes, as in the paper's ledger).
  approx::ApproxArrayU32 remid = options.precise_alloc(rem);
  remid.Store(rem_ids);

  // ---- Refine stage, step 2: sort REMID by key value with the same
  // algorithm, entirely in precise memory. The key column is materialized
  // from Key0 (Rem~ additional precise writes; slightly conservative
  // relative to the paper's alpha(Rem~)-only ledger, see DESIGN.md).
  approx::ApproxArrayU32 rem_keys = options.precise_alloc(rem);
  for (size_t j = 0; j < rem; ++j) {
    rem_keys.Set(j, key0_at(remid.Get(j)));
  }
  {
    sort::SortSpec spec;
    spec.keys = &rem_keys;
    spec.ids = &remid;
    spec.alloc_key_buffer = WithSink(options.precise_alloc,
                                     &report->refine_precise);
    spec.alloc_id_buffer = WithSink(options.precise_alloc,
                                    &report->refine_precise);
    spec.tuning = options.tuning;
    const Status status = sort::RunSort(spec, options.algorithm, sort_rng);
    if (!status.ok()) {
      // Close the ledger before propagating: the aborted attempt's costs
      // stay accounted (REMID/RemKeys traffic plus Key0/ID reads so far).
      report->refine_precise += remid.stats();
      report->refine_precise += rem_keys.stats();
      close_ledger();
      return status;
    }
  }

  // ---- Refine stage, step 3 (Listing 2): merge the approximate LIS (re-
  // scanned from ID, skipping REMID members) with the sorted REMID.
  // Materializing REMIDset costs Rem~ writes, as in the listing.
  std::unordered_set<uint32_t> remid_set(rem_ids.begin(), rem_ids.end());
  approx::ApproxArrayU32 remid_set_storage = options.precise_alloc(rem);
  remid_set_storage.Store(rem_ids);

  approx::ApproxArrayU32 final_key_array = options.precise_alloc(n);
  approx::ApproxArrayU32 final_id_array = options.precise_alloc(n);
  // The merge emits exactly n elements when ID is the permutation the
  // approx stage is contracted to preserve. A corrupted ID column (e.g.
  // faults injected into precise memory) can make it emit more or fewer;
  // clamp the writes and let verification fail instead of aborting, so a
  // fault-injection harness can observe the failure.
  bool merge_conserved = true;
  {
    size_t lis_ptr = 0;
    size_t rem_ptr = 0;
    size_t final_ptr = 0;
    while (lis_ptr < n) {
      // Find the next element of the approximate LIS.
      uint32_t lis_id = 0;
      bool have_lis = false;
      while (lis_ptr < n) {
        lis_id = id.Get(lis_ptr);
        if (remid_set.count(lis_id) == 0) {
          have_lis = true;
          break;
        }
        ++lis_ptr;
      }
      if (!have_lis) break;
      const uint32_t lis_key = key0_at(lis_id);
      // Merge: emit REMID entries smaller than the LIS head first.
      while (rem_ptr < rem && final_ptr < n) {
        const uint32_t rem_id = remid.Get(rem_ptr);
        const uint32_t rem_key = key0_at(rem_id);
        if (rem_key >= lis_key) break;
        final_id_array.Set(final_ptr, rem_id);
        final_key_array.Set(final_ptr, rem_key);
        ++final_ptr;
        ++rem_ptr;
      }
      if (final_ptr >= n) {
        merge_conserved = false;
        break;
      }
      final_id_array.Set(final_ptr, lis_id);
      final_key_array.Set(final_ptr, lis_key);
      ++final_ptr;
      ++lis_ptr;
    }
    while (rem_ptr < rem && final_ptr < n) {
      const uint32_t rem_id = remid.Get(rem_ptr);
      final_id_array.Set(final_ptr, rem_id);
      final_key_array.Set(final_ptr, key0_at(rem_id));
      ++final_ptr;
      ++rem_ptr;
    }
    if (final_ptr != n || rem_ptr != rem) merge_conserved = false;
  }

  // ---- Verification: exactly sorted, consistent, and a permutation.
  {
    const std::vector<uint32_t> out_keys = final_key_array.Snapshot();
    const std::vector<uint32_t> out_ids = final_id_array.Snapshot();
    report->verification = VerifyRefineOutput(state.input_keys, out_keys,
                                              out_ids, merge_conserved);
    if (final_keys != nullptr) *final_keys = out_keys;
    if (final_ids != nullptr) *final_ids = out_ids;
  }

  // ---- Close the ledger: everything the refine stage touched in precise
  // memory (Key0/ID reads, REMID, RemKeys, set storage, outputs).
  report->refine_precise += remid.stats();
  report->refine_precise += rem_keys.stats();
  report->refine_precise += remid_set_storage.stats();
  report->refine_precise += final_key_array.stats();
  report->refine_precise += final_id_array.stats();
  close_ledger();
  return Status::Ok();
}

StatusOr<RefineReport> ApproxRefineSort(const std::vector<uint32_t>& keys,
                                        const RefineOptions& options,
                                        std::vector<uint32_t>* final_keys,
                                        std::vector<uint32_t>* final_ids) {
  ApproxStageState state;
  Status status = RunApproxStage(keys, options, &state);
  if (!status.ok()) return status;
  RefineReport report;
  status = RunRefineStage(state, options, &report, final_keys, final_ids);
  if (!status.ok()) return status;
  return report;
}

StatusOr<PreciseBaselineReport> PreciseSortBaseline(
    const std::vector<uint32_t>& keys, const sort::AlgorithmId& algorithm,
    const ArrayAlloc& precise_alloc, uint64_t sort_seed, bool with_ids,
    std::vector<uint32_t>* sorted_keys, const sort::SortTuning& tuning,
    std::vector<uint32_t>* sorted_ids) {
  if (!precise_alloc) {
    return Status::InvalidArgument("precise_alloc must be set");
  }
  if (sorted_ids != nullptr && !with_ids) {
    return Status::InvalidArgument("sorted_ids requires with_ids");
  }
  const size_t n = keys.size();
  PreciseBaselineReport report;
  report.n = n;

  approx::ApproxArrayU32 key_array = precise_alloc(n);
  key_array.Store(keys);
  approx::ApproxArrayU32 id_array = precise_alloc(with_ids ? n : 0);
  for (size_t i = 0; i < n && with_ids; ++i) {
    id_array.Set(i, static_cast<uint32_t>(i));
  }
  key_array.ResetStats();
  id_array.ResetStats();

  approx::MemoryStats key_scratch;
  approx::MemoryStats id_scratch;
  {
    sort::SortSpec spec;
    spec.keys = &key_array;
    spec.ids = with_ids ? &id_array : nullptr;
    spec.alloc_key_buffer = WithSink(precise_alloc, &key_scratch);
    spec.alloc_id_buffer = WithSink(precise_alloc, &id_scratch);
    spec.tuning = tuning;
    Rng rng(sort_seed);
    const Status status = sort::RunSort(spec, algorithm, rng);
    if (!status.ok()) return status;
  }
  report.keys = key_array.stats() + key_scratch;
  report.ids = id_array.stats() + id_scratch;
  std::vector<uint32_t> out = key_array.Snapshot();
  report.verified = sortedness::IsSorted(out);
  if (sorted_keys != nullptr) *sorted_keys = std::move(out);
  if (sorted_ids != nullptr) *sorted_ids = id_array.Snapshot();
  return report;
}

double WriteReduction(const RefineReport& refine,
                      const PreciseBaselineReport& baseline) {
  const double precise_cost = baseline.TotalWriteCost();
  if (precise_cost <= 0.0) return 0.0;
  return 1.0 - refine.TotalWriteCost() / precise_cost;
}

}  // namespace approxmem::refine
